// Quickstart: build the simulated Hyper-Threading machine, run one Java
// benchmark on it, and read the performance counters — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

func main() {
	// Pick a benchmark from the paper's Table 1 suite.
	compress, ok := bench.ByName("compress")
	if !ok {
		log.Fatal("compress not registered")
	}

	// Run it twice: Hyper-Threading off, then on. The program is the
	// same; only the processor configuration changes — exactly the
	// paper's methodology.
	for _, ht := range []bool{false, true} {
		res, err := harness.Run(compress, harness.Options{
			HT:      ht,
			Threads: 1,
			Scale:   bench.Tiny,
			Verify:  true, // re-check program output against the Go mirror
		})
		if err != nil {
			log.Fatal(err)
		}
		f := &res.Counters
		fmt.Printf("HT=%-5v cycles=%-9d IPC=%.3f  TC miss/1k=%.2f  L1D miss/1k=%.2f\n",
			ht, res.Cycles, f.IPC(),
			f.PerKiloInstr(counters.TCMisses),
			f.PerKiloInstr(counters.L1DMisses))
	}
	fmt.Println("\nNote the single-threaded slowdown with HT merely enabled —")
	fmt.Println("the static resource partition tax of paper §4.3 (Figure 10).")
}

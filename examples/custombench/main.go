// custombench: writing your own workload against the public API — a
// bytecode program built with the assembler, run on the simulated SMT
// machine, with its own results verified and its counters read out.
//
// The program is a string-hashing microbenchmark: it fills a table with
// FNV-style hashes of synthetic keys and probes it, then publishes a
// checksum in global 0.
package main

import (
	"fmt"
	"log"

	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"
)

// buildProgram assembles the workload: see internal/bench for the ten
// full-size examples of this pattern.
func buildProgram(keys int32) *bytecode.Program {
	pb := bytecode.NewProgram("hashbench")
	pb.Globals(1, 0)

	// hash(k): int — a few rounds of integer mixing.
	h := bytecode.NewMethod("hash", 1, 4)
	const hK, hV = 0, 1
	h.Load(hK).Store(hV)
	for round := 0; round < 4; round++ {
		h.Load(hV).Const(16777619).Op(bytecode.Imul)
		h.Load(hV).Const(13).Op(bytecode.Ishr)
		h.Op(bytecode.Ixor).Store(hV)
	}
	h.Load(hV).Const(0x7FFFFFFF).Op(bytecode.Iand)
	h.Op(bytecode.RetVal)
	hashIdx := pb.Add(h.Finish())

	// main: table[hash(i) % n] += i, then checksum the table.
	b := bytecode.NewMethod("main", 0, 8)
	const (
		lTab, lI, lChk, lSlot = 0, 1, 2, 3
	)
	b.Const(keys).Op(bytecode.NewArray, bytecode.KindInt).Store(lTab)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(lI)
	b.Bind(loop)
	b.Load(lI).Const(keys * 8)
	b.Br(bytecode.IfGe, done)
	b.Load(lI).Op(bytecode.Call, hashIdx)
	b.Const(keys).Op(bytecode.Irem).Store(lSlot)
	b.Load(lTab).Load(lSlot)
	b.Load(lTab).Load(lSlot).Op(bytecode.ALoad)
	b.Load(lI).Op(bytecode.Iadd)
	b.Op(bytecode.AStore)
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Const(0).Store(lChk)
	sum, fin := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(lI)
	b.Bind(sum)
	b.Load(lI).Const(keys)
	b.Br(bytecode.IfGe, fin)
	b.Load(lChk).Const(31).Op(bytecode.Imul)
	b.Load(lTab).Load(lI).Op(bytecode.ALoad)
	b.Op(bytecode.Iadd).Store(lChk)
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, sum)
	b.Bind(fin)
	b.Load(lChk).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(0)
}

// mirror computes the expected checksum in Go.
func mirror(keys int32) int64 {
	hash := func(k int64) int64 {
		v := k
		for round := 0; round < 4; round++ {
			v = (v * 16777619) ^ (v >> 13)
		}
		return v & 0x7FFFFFFF
	}
	tab := make([]int64, keys)
	for i := int64(0); i < int64(keys)*8; i++ {
		tab[hash(i)%int64(keys)] += i
	}
	chk := int64(0)
	for _, v := range tab {
		chk = chk*31 + v
	}
	return chk
}

func main() {
	const keys = 4096
	prog := buildProgram(keys)
	fmt.Printf("assembled %d methods, %d µops of code\n", len(prog.Methods), prog.CodeUops)

	cpu := core.New(core.DefaultConfig(true))
	kernel := simos.New(cpu, simos.Options{})
	vm := jvm.New(prog, kernel, jvm.DefaultConfig())
	vm.Start()
	cycles, err := cpu.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	got, want := int64(vm.Global(0)), mirror(keys)
	if got != want {
		log.Fatalf("checksum mismatch: simulated %d, expected %d", got, want)
	}
	f := cpu.Counters()
	fmt.Printf("checksum ok (%d)\n", got)
	fmt.Printf("cycles=%d IPC=%.3f L1D miss/1k=%.2f branches=%d\n",
		cycles, f.IPC(), f.PerKiloInstr(counters.L1DMisses), f.Get(counters.Branches))
}

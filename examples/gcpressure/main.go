// gcpressure: how the JVM's collector helper thread interacts with
// Hyper-Threading. Even a "single-threaded" Java program is a
// multithreaded process (main + GC), so an HT processor can run the
// collector on the second context — one of the paper's motivations for
// studying Java on SMT specifically.
//
// This example runs PseudoJBB (the suite's allocation-heavy benchmark)
// on shrinking heaps, showing collections becoming more frequent and the
// GC-attributed work growing, then compares HT off/on under heavy GC.
package main

import (
	"fmt"
	"log"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"
)

// run executes PseudoJBB with an explicit heap size and returns cycles,
// collection count and GC-attributed µops.
func run(heapBytes int, ht bool) (uint64, int, uint64) {
	b, _ := bench.ByName("PseudoJBB")
	prog := b.Build(1, bench.Small, 0)
	cpu := core.New(core.DefaultConfig(ht))
	k := simos.New(cpu, simos.Options{})
	cfg := jvm.DefaultConfig()
	cfg.HeapBytes = heapBytes
	vm := jvm.New(prog, k, cfg)
	vm.Start()
	cycles, err := cpu.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Verify(vm, 1, bench.Small); err != nil {
		log.Fatal(err) // GC pressure must never corrupt results
	}
	return cycles, vm.GCCount(), cpu.Counters().Get(counters.GCCycles)
}

func main() {
	fmt.Println("PseudoJBB under shrinking heaps (HT off):")
	fmt.Printf("%10s %12s %6s %10s\n", "heap", "cycles", "GCs", "gc µops")
	for _, heap := range []int{4 << 20, 1536 << 10, 1024 << 10, 960 << 10} {
		cycles, gcs, gcWork := run(heap, false)
		fmt.Printf("%9dK %12d %6d %10d\n", heap>>10, cycles, gcs, gcWork)
	}

	fmt.Println("\nSame program, tightest heap, HT off vs on:")
	offCycles, _, _ := run(960<<10, false)
	onCycles, _, _ := run(960<<10, true)
	fmt.Printf("  HT off: %d cycles\n", offCycles)
	fmt.Printf("  HT on:  %d cycles (%+.1f%%)\n", onCycles,
		100*(float64(onCycles)/float64(offCycles)-1))
	fmt.Println("\nWith frequent stop-the-world collections the mutator and")
	fmt.Println("collector serialize, so HT has little to overlap — while the")
	fmt.Println("static partition still halves the lone runner's resources.")
}

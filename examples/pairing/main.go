// pairing: find good and bad co-runners for a workload, using the
// paper's §4.2 multiprogramming protocol. The paper's observation — that
// trace-cache pressure predicts pairing quality — can be reproduced by
// comparing each candidate's code footprint against its combined speedup.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

func main() {
	target := "compress"
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	tb, ok := bench.ByName(target)
	if !ok {
		log.Fatalf("unknown benchmark %q", target)
	}

	opts := harness.DefaultPairOptions()
	opts.Runs = 4 // fewer than the paper's 12, for example brevity

	type row struct {
		partner string
		cab     float64
		tcPerK  float64
	}
	var rows []row
	for _, partner := range bench.SingleThreaded() {
		res, err := harness.RunPair(tb, partner, opts)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			partner: partner.Name,
			cab:     res.CombinedSpeedup(),
			tcPerK:  res.Counters.PerKiloInstr(counters.TCMisses),
		})
		fmt.Fprintf(os.Stderr, "... paired with %s\n", partner.Name)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cab > rows[j].cab })

	fmt.Printf("\nCo-runners for %s, best to worst (C_AB: 1 = time sharing, 2 = ideal SMP):\n", target)
	fmt.Printf("%-12s %10s %14s\n", "partner", "C_AB", "TC miss/1k")
	for _, r := range rows {
		flag := ""
		if r.cab < 1 {
			flag = "  <- slower than time sharing"
		}
		fmt.Printf("%-12s %10.3f %14.2f%s\n", r.partner, r.cab, r.tcPerK, flag)
	}
	fmt.Println("\nAs in the paper, pairing quality tracks trace-cache pressure:")
	fmt.Println("large-code partners (jack, javac, jess) evict the co-runner's traces.")
}

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (see DESIGN.md §3 for the experiment index), plus the ablations
// of DESIGN.md §9. Custom metrics carry the figure's actual quantities;
// ns/op measures the cost of regenerating the figure on this host.
//
//	go test -bench=Fig01 -benchtime=1x .
//	go test -bench=. -benchmem .
package javasmt_test

import (
	"fmt"
	"sync"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
)

// The characterization matrix and the pairing cross product are shared
// by several figures; they are computed once per `go test -bench` process.
var (
	charOnce sync.Once
	charData *harness.Characterization
	charErr  error

	pairOnce sync.Once
	pairData *harness.Pairings
	pairErr  error
)

func characterization(b *testing.B) *harness.Characterization {
	b.Helper()
	charOnce.Do(func() {
		charData, charErr = harness.RunCharacterization(harness.Config{Scale: bench.Tiny})
	})
	if charErr != nil {
		b.Fatal(charErr)
	}
	return charData
}

func pairings(b *testing.B) *harness.Pairings {
	b.Helper()
	pairOnce.Do(func() {
		cfg := harness.DefaultConfig()
		cfg.Runs = 4
		cfg.Jobs = 0 // one worker per CPU; results identical to serial
		pairData, pairErr = harness.RunPairings(cfg)
	})
	if pairErr != nil {
		b.Fatal(pairErr)
	}
	return pairData
}

// BenchmarkTable1 renders the benchmark-suite table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 regenerates CPI / OS-cycle% / DT-mode% for the
// multithreaded benchmarks under Hyper-Threading.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := characterization(b)
		var cpi, dt float64
		n := 0
		for _, r := range c.Runs {
			if r.HT {
				cpi += r.Result.Counters.CPI()
				dt += r.Result.Counters.DTModePercent()
				n++
			}
		}
		b.ReportMetric(cpi/float64(n), "meanCPI")
		b.ReportMetric(dt/float64(n), "meanDT%")
	}
}

// BenchmarkFig01IPC measures the HT-on IPC gain of the multithreaded
// benchmarks (paper: positive but modest).
func BenchmarkFig01IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := characterization(b)
		gain := 0.0
		n := 0
		for _, mt := range bench.Multithreaded() {
			off := findRun(c, mt.Name, 2, false).Counters.IPC()
			on := findRun(c, mt.Name, 2, true).Counters.IPC()
			gain += 100 * (on/off - 1)
			n++
		}
		b.ReportMetric(gain/float64(n), "meanHTgain%")
	}
}

// BenchmarkFig02Retirement measures the retirement-profile shift: HT
// must raise the 1- and 2-µop shares (paper: +47.5% and +50.1%).
func BenchmarkFig02Retirement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := characterization(b)
		var off, on [4]float64
		n := 0.0
		for _, mt := range bench.Multithreaded() {
			po := findRun(c, mt.Name, 2, false).Counters.RetirementProfile()
			pn := findRun(c, mt.Name, 2, true).Counters.RetirementProfile()
			for k := 0; k < 4; k++ {
				off[k] += po[k]
				on[k] += pn[k]
			}
			n++
		}
		b.ReportMetric(100*off[0]/n, "zeroRetireOff%")
		b.ReportMetric(100*on[0]/n, "zeroRetireOn%")
		b.ReportMetric(100*((on[1]+on[2])/(off[1]+off[2])-1), "d12Share%")
	}
}

// ratioBench builds a Figure 3-7 benchmark: the mean HT-on/HT-off ratio
// of one per-1000-instruction metric across the MT benchmarks.
func ratioBench(metric func(*counters.File) float64, name string) func(*testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := characterization(b)
			ratio := 0.0
			n := 0
			for _, mt := range bench.Multithreaded() {
				for _, threads := range []int{2, 8} {
					off := metric(&findRun(c, mt.Name, threads, false).Counters)
					on := metric(&findRun(c, mt.Name, threads, true).Counters)
					if off > 0 {
						ratio += on / off
						n++
					}
				}
			}
			b.ReportMetric(ratio/float64(n), name)
		}
	}
}

// BenchmarkFig03TraceCache: paper shape — ratio > 1 (worse under HT).
func BenchmarkFig03TraceCache(b *testing.B) {
	ratioBench(func(f *counters.File) float64 { return f.PerKiloInstr(counters.TCMisses) }, "tcOn/Off")(b)
}

// BenchmarkFig04L1D: paper shape — ratio > 1 (worse under HT).
func BenchmarkFig04L1D(b *testing.B) {
	ratioBench(func(f *counters.File) float64 { return f.PerKiloInstr(counters.L1DMisses) }, "l1dOn/Off")(b)
}

// BenchmarkFig05L2: paper shape — ratio < 1 for the three in-cache
// benchmarks (constructive sharing), > 1 for PseudoJBB.
func BenchmarkFig05L2(b *testing.B) {
	ratioBench(func(f *counters.File) float64 { return f.PerKiloInstr(counters.L2Misses) }, "l2On/Off")(b)
}

// BenchmarkFig06ITLB: paper shape — slightly worse under HT
// (partitioned), much worse for PseudoJBB.
func BenchmarkFig06ITLB(b *testing.B) {
	ratioBench(func(f *counters.File) float64 { return f.PerKiloInstr(counters.ITLBMisses) }, "itlbOn/Off")(b)
}

// BenchmarkFig07BTB: paper shape — miss ratio worse under HT.
func BenchmarkFig07BTB(b *testing.B) {
	ratioBench(func(f *counters.File) float64 { return f.Rate(counters.BTBMisses, counters.Branches) }, "btbOn/Off")(b)
}

// BenchmarkFig08Pairings reports the cross-product combined-speedup
// distribution (paper: most pairs between 1 and 2).
func BenchmarkFig08Pairings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pairings(b)
		sum, min, n := 0.0, 99.0, 0
		bad := 0
		for r := range p.Combined {
			for c := range p.Combined[r] {
				v := p.Combined[r][c]
				sum += v
				if v < min {
					min = v
				}
				if v < 1 {
					bad++
				}
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "meanC_AB")
		b.ReportMetric(min, "minC_AB")
		b.ReportMetric(float64(bad), "slowdownCells")
	}
}

// BenchmarkFig09ColorMap renders the 9x9 map and reports how many of the
// slowdown cells involve the three big-code programs (paper: all nine).
func BenchmarkFig09ColorMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pairings(b)
		if p.Fig9() == "" {
			b.Fatal("empty figure")
		}
		badPartner := map[string]bool{"jack": true, "javac": true, "jess": true}
		onBad, total := 0, 0
		for r := range p.Combined {
			for c := range p.Combined[r] {
				if c < r || p.Combined[r][c] >= 1 {
					continue
				}
				total++
				if badPartner[p.Names[r]] || badPartner[p.Names[c]] {
					onBad++
				}
			}
		}
		b.ReportMetric(float64(total), "slowdownPairs")
		b.ReportMetric(float64(onBad), "onBadPartners")
	}
}

// BenchmarkFig10SingleThread measures the static-partition tax (paper:
// 7 of 9 programs slower, 0.15%-62%).
func BenchmarkFig10SingleThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig10(harness.Config{Scale: bench.Tiny})
		if err != nil {
			b.Fatal(err)
		}
		slower, worst := 0, 0.0
		for _, r := range rows {
			if r.CyclesOn > r.CyclesOff {
				slower++
			}
			if s := r.SlowdownPct(); s > worst {
				worst = s
			}
		}
		b.ReportMetric(float64(slower), "slowerOf9")
		b.ReportMetric(worst, "worstSlowdown%")
	}
}

// BenchmarkFig11SelfPair measures two identical copies under HT (paper:
// dramatic improvement except for the bad partners).
func BenchmarkFig11SelfPair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := pairings(b)
		sum := 0.0
		for j := range p.Names {
			sum += p.Combined[j][j]
		}
		b.ReportMetric(sum/float64(len(p.Names)), "meanSelfC_AB")
	}
}

// BenchmarkFig12ThreadSweep sweeps thread counts (paper: IPC saturates
// at 2 threads; MolDyn dips at 4 on L1D misses).
func BenchmarkFig12ThreadSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig12(harness.Config{Scale: bench.Tiny}, []int{1, 2, 4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		var gain12, drop24 float64
		for _, mt := range bench.Multithreaded() {
			byThreads := map[int]harness.Fig12Row{}
			for _, r := range rows {
				if r.Benchmark == mt.Name {
					byThreads[r.Threads] = r
				}
			}
			gain12 += byThreads[2].IPC / byThreads[1].IPC
			drop24 += byThreads[4].IPC / byThreads[2].IPC
		}
		n := float64(len(bench.Multithreaded()))
		b.ReportMetric(gain12/n, "ipc2/ipc1")
		b.ReportMetric(drop24/n, "ipc4/ipc2")
	}
}

// BenchmarkAblationPartition compares the single-thread HT tax under
// static vs dynamic partitioning (DESIGN.md §9: the paper's proposed fix).
func BenchmarkAblationPartition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig10(harness.Config{Scale: bench.Tiny})
		if err != nil {
			b.Fatal(err)
		}
		var static, dynamic float64
		for _, r := range rows {
			static += r.SlowdownPct()
			dynamic += r.DynSlowdownPct()
		}
		n := float64(len(rows))
		b.ReportMetric(static/n, "staticTax%")
		b.ReportMetric(dynamic/n, "dynamicTax%")
	}
}

// BenchmarkAblationTCSharing measures how much of jack's HT trace-cache
// degradation is the per-context line tagging (DESIGN.md §9).
func BenchmarkAblationTCSharing(b *testing.B) {
	jack, _ := bench.ByName("jack")
	for i := 0; i < b.N; i++ {
		run := func(shared bool) float64 {
			res, err := harness.Run(jack, harness.Options{
				HT: true, Threads: 1, Scale: bench.Tiny, TCSharedTags: shared,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Counters.PerKiloInstr(counters.TCMisses)
		}
		b.ReportMetric(run(false), "tc/1k-tagged")
		b.ReportMetric(run(true), "tc/1k-shared")
	}
}

// BenchmarkAblationL1Size revisits the paper's suggestion that a larger
// L1 would ease the multithreaded L1D pressure.
func BenchmarkAblationL1Size(b *testing.B) {
	md, _ := bench.ByName("MolDyn")
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{8, 32} {
			cfg := core.DefaultConfig(true)
			cfg.Hier.L1D.Size = kb << 10
			res, err := harness.RunWithCPUConfig(md, harness.Options{HT: true, Threads: 4, Scale: bench.Tiny}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Counters.PerKiloInstr(counters.L1DMisses), fmt.Sprintf("l1d/1k@%dKB", kb))
		}
	}
}

// findRun locates one characterization cell.
func findRun(c *harness.Characterization, name string, threads int, ht bool) *harness.Result {
	for _, r := range c.Runs {
		if r.Benchmark == name && r.Threads == threads && r.HT == ht {
			return r.Result
		}
	}
	panic("missing characterization run " + name)
}

// Package javasmt reproduces "Performance Characterization of Java
// Applications on SMT Processors" (Huang, Lin, Zhang, Chang — ISPASS
// 2005) as a self-contained simulation stack: a cycle-level Pentium 4
// Hyper-Threading processor model, an operating-system scheduler, a JVM
// with a garbage collector and Java threads, the paper's ten benchmarks
// as real bytecode programs, and a harness that regenerates every table
// and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The top-level bench_test.go exposes one testing.B benchmark per table
// and figure.
package javasmt

#!/bin/sh
# bench_core.sh — run the core cycle-loop, cache-lookup, functional-mode
# and sampled-campaign benchmarks with -benchmem and write the results to
# BENCH_core.json at the repo root. Pass a count as $1 to average over
# multiple runs (default 1).
#
# Every simulation benchmark reports MB/s at 1 byte per µop, so the MB/s
# columns are directly comparable across entries and against the seed
# baseline; the derived "speedups" object at the end of the JSON records
# the ratios the sampling work is accountable to (DESIGN.md §10).
set -eu
cd "$(dirname "$0")/.."

count="${1:-1}"
raw="$(go test -run '^$' -bench 'BenchmarkSimSpeed|BenchmarkCacheAccess|BenchmarkHierarchyData|BenchmarkFunctionalSpeed|BenchmarkSampledCampaign|BenchmarkGeometryScaling|BenchmarkPolicySweep|BenchmarkSyncStress' \
	-benchmem -count="$count" ./internal/core/ ./internal/cache/ ./internal/sampling/ ./internal/harness/)"
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] += $3; n[name]++
	for (i = 4; i <= NF; i++) {
		if ($(i+1) == "B/op")       bop[name] += $i
		if ($(i+1) == "allocs/op")  aop[name] += $i
		if ($(i+1) == "MB/s")       mbs[name] += $i
	}
}
END {
	# Seed-commit baseline (same machine class), kept here so the file
	# always carries the before/after comparison.
	printf "  \"seed_BenchmarkSimSpeed\": {\"ns_per_op\": 187330123, \"bytes_per_op\": 1350786, \"allocs_per_op\": 44.0, \"mb_per_s\": 10.68}"
	first = 0
	for (name in ns) {
		if (!first) printf ",\n"
		first = 0
		printf "  \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f",
			name, ns[name]/n[name], bop[name]/n[name], aop[name]/n[name]
		if (mbs[name] > 0) printf ", \"mb_per_s\": %.2f", mbs[name]/n[name]
		printf "}"
	}
	# Derived ratios: every MB/s figure is 1 byte/µop, so these are
	# µop-rate speedups. seed_mb is the seed-commit detailed-mode rate.
	seed_mb = 10.68
	camp_full = mbs["BenchmarkSampledCampaign/full"] / n["BenchmarkSampledCampaign/full"]
	camp_samp = mbs["BenchmarkSampledCampaign/sampled"] / n["BenchmarkSampledCampaign/sampled"]
	func_warm = mbs["BenchmarkFunctionalSpeed/warm"] / n["BenchmarkFunctionalSpeed/warm"]
	func_ff = mbs["BenchmarkFunctionalSpeed/ff"] / n["BenchmarkFunctionalSpeed/ff"]
	if (camp_full > 0 && camp_samp > 0) {
		printf ",\n  \"speedups\": {"
		printf "\"sampled_vs_full\": %.2f", camp_samp / camp_full
		printf ", \"sampled_vs_seed\": %.2f", camp_samp / seed_mb
		if (func_warm > 0) printf ", \"functional_warm_vs_seed\": %.2f", func_warm / seed_mb
		if (func_ff > 0) printf ", \"functional_ff_vs_seed\": %.2f", func_ff / seed_mb
		# Geometry cost ratio: µop-rate at the 16-context CMP relative to
		# the paper HT shape (below 1.0 = per-µop slowdown from width).
		geo_ht = mbs["BenchmarkGeometryScaling/1x2"] / n["BenchmarkGeometryScaling/1x2"]
		geo_cmp = mbs["BenchmarkGeometryScaling/4x4"] / n["BenchmarkGeometryScaling/4x4"]
		if (geo_ht > 0 && geo_cmp > 0) printf ", \"geometry_4x4_vs_1x2\": %.2f", geo_cmp / geo_ht
		# Policy-path tax: metric-driven seating relative to the naive
		# fast path on the same mix (below 1.0 = SchedView scan cost).
		pol_naive = mbs["BenchmarkPolicySweep/naive"] / n["BenchmarkPolicySweep/naive"]
		pol_symb = mbs["BenchmarkPolicySweep/symbiotic-ipc"] / n["BenchmarkPolicySweep/symbiotic-ipc"]
		if (pol_naive > 0 && pol_symb > 0) printf ", \"policy_symbiotic_vs_naive\": %.2f", pol_symb / pol_naive
		printf "}"
	}
	print "\n}"
}' >BENCH_core.json

echo "wrote BENCH_core.json"

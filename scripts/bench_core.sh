#!/bin/sh
# bench_core.sh — run the core cycle-loop and cache-lookup benchmarks
# with -benchmem and write the results to BENCH_core.json at the repo
# root. Pass a count as $1 to average over multiple runs (default 1).
set -eu
cd "$(dirname "$0")/.."

count="${1:-1}"
raw="$(go test -run '^$' -bench 'BenchmarkSimSpeed|BenchmarkCacheAccess|BenchmarkHierarchyData' \
	-benchmem -count="$count" ./internal/core/ ./internal/cache/)"
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns[name] += $3; n[name]++
	for (i = 4; i <= NF; i++) {
		if ($(i+1) == "B/op")       bop[name] += $i
		if ($(i+1) == "allocs/op")  aop[name] += $i
		if ($(i+1) == "MB/s")       mbs[name] += $i
	}
}
END {
	# Seed-commit baseline (same machine class), kept here so the file
	# always carries the before/after comparison.
	printf "  \"seed_BenchmarkSimSpeed\": {\"ns_per_op\": 187330123, \"bytes_per_op\": 1350786, \"allocs_per_op\": 44.0, \"mb_per_s\": 10.68}"
	first = 0
	for (name in ns) {
		if (!first) printf ",\n"
		first = 0
		printf "  \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f",
			name, ns[name]/n[name], bop[name]/n[name], aop[name]/n[name]
		if (mbs[name] > 0) printf ", \"mb_per_s\": %.2f", mbs[name]/n[name]
		printf "}"
	}
	print "\n}"
}' >BENCH_core.json

echo "wrote BENCH_core.json"

#!/bin/sh
# verify.sh — the repo's tier-1 gate plus the concurrency gate.
#
# Tier 1 (ROADMAP.md): everything must build and the full test suite
# must pass. On top of that, the packages that share state across
# goroutines — the harness (solo-time singleflight, pooled CPUs) and
# the scheduler — must pass under the race detector at short scale,
# the instrumented build (-tags checks, DESIGN.md §6) must pass its
# probe suite with every invariant armed, the fault-injection build
# (-tags faults, DESIGN.md §8) must pass its recovery suite, and an
# interrupted journaled campaign must resume byte-identically.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== obs disabled path allocates nothing =="
go test ./internal/core -run TestObsDisabledAllocFree -count=1

echo "== race (harness + sched, short) =="
go test -race -short ./internal/harness/... ./internal/sched/...

echo "== invariant probes (-tags checks, short) =="
go build -tags checks ./...
go test -tags checks -short ./...

echo "== fault injection (-tags faults, short) =="
go build -tags faults ./...
go test -tags faults -short ./...

echo "== journal/resume smoke (interrupt + resume is byte-identical) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/pairings" ./cmd/pairings
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    > "$tmp/want.txt"
# Journaled run, interrupted mid-campaign. If the machine is fast
# enough that it finishes before the signal, the resume below still
# exercises the all-cells-cached path, so the check stays meaningful.
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    -journal "$tmp/journal" > /dev/null 2>&1 &
camp=$!
sleep 2
kill -INT "$camp" 2>/dev/null || true
wait "$camp" 2>/dev/null || true
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    -journal "$tmp/journal" -resume > "$tmp/got.txt"
diff -u "$tmp/want.txt" "$tmp/got.txt"

echo "verify: OK"

#!/bin/sh
# verify.sh — the repo's tier-1 gate plus the concurrency gate.
#
# Tier 1 (ROADMAP.md): everything must build and the full test suite
# must pass. On top of that, the packages that share state across
# goroutines — the harness (solo-time singleflight, pooled CPUs) and
# the scheduler — must pass under the race detector at short scale,
# the instrumented build (-tags checks, DESIGN.md §6) must pass its
# probe suite with every invariant armed, the fault-injection build
# (-tags faults, DESIGN.md §8) must pass its recovery suite, an
# interrupted journaled campaign must resume byte-identically, the
# seating-policy subsystem (DESIGN.md §12) must be deterministic with
# -policy naive byte-identical to the seed scheduler, and the campaign
# daemon (DESIGN.md §13) must survive kill -9 with a byte-identical
# resume, serve identical resubmissions from its cache, and reject
# overload with 429 (scripts/service_smoke.sh), and the JVM memory
# model (DESIGN.md §14) must hold its litmus matrix — forbidden
# outcomes never, TSO relaxations in the fence-free controls — under
# the race detector (scripts/litmus.sh).
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== obs disabled path allocates nothing =="
go test ./internal/core -run TestObsDisabledAllocFree -count=1

echo "== sampled accuracy (goldens within declared tolerance) =="
go test ./internal/harness ./internal/sampling -run Sampled -count=1

echo "== race (harness + sched, short) =="
go test -race -short ./internal/harness/... ./internal/sched/...

echo "== invariant probes (-tags checks, short) =="
go build -tags checks ./...
go test -tags checks -short ./...

echo "== fault injection (-tags faults, short) =="
go build -tags faults ./...
go test -tags faults -short ./...

echo "== journal/resume smoke (interrupt + resume is byte-identical) =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/pairings" ./cmd/pairings
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    > "$tmp/want.txt"
# Journaled run, interrupted mid-campaign. If the machine is fast
# enough that it finishes before the signal, the resume below still
# exercises the all-cells-cached path, so the check stays meaningful.
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    -journal "$tmp/journal" > /dev/null 2>&1 &
camp=$!
sleep 2
kill -INT "$camp" 2>/dev/null || true
wait "$camp" 2>/dev/null || true
"$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    -journal "$tmp/journal" -resume > "$tmp/got.txt"
diff -u "$tmp/want.txt" "$tmp/got.txt"

echo "== scheduling (policy determinism + naive equivalence, -tags checks) =="
go test -tags checks ./internal/simos -run 'Policy|Runq|Migrations|Symbiotic|RoundRobin|Novices|Done' -count=1
go test -tags checks ./internal/harness -run 'TestPolicyNaiveEquivalence|TestPolicySweepDeterminism|TestPolicySweepJournalResume|TestServerMixShape|TestRunMix' -count=1

echo "== policy sweep smoke (2x2 server mix, all policies) =="
go run ./cmd/sweep -policies all -mixes 8 -geos 2x2

echo "== sampled journal smoke (resume works, cross-mode refused) =="
"$tmp/pairings" -all -benches compress,mpegaudio -runs 2 -j 8 -q \
    -sim-mode sampled > "$tmp/swant.txt"
"$tmp/pairings" -all -benches compress,mpegaudio -runs 2 -j 8 -q \
    -sim-mode sampled -journal "$tmp/sjournal" > /dev/null 2>&1 &
camp=$!
sleep 1
kill -INT "$camp" 2>/dev/null || true
wait "$camp" 2>/dev/null || true
"$tmp/pairings" -all -benches compress,mpegaudio -runs 2 -j 8 -q \
    -sim-mode sampled -journal "$tmp/sjournal" -resume > "$tmp/sgot.txt"
diff -u "$tmp/swant.txt" "$tmp/sgot.txt"
# A full-mode resume against the sampled journal, and a sampled resume
# against the full-mode journal above, must both be refused: counters
# from the two modes must never mix in one campaign.
if "$tmp/pairings" -all -benches compress,mpegaudio -runs 2 -j 8 -q \
    -journal "$tmp/sjournal" -resume > /dev/null 2>&1; then
	echo "verify: full-mode resume of a sampled journal was not refused" >&2
	exit 1
fi
if "$tmp/pairings" -all -benches compress,mpegaudio,db -runs 2 -j 8 -q \
    -sim-mode sampled -journal "$tmp/journal" -resume > /dev/null 2>&1; then
	echo "verify: sampled resume of a full-mode journal was not refused" >&2
	exit 1
fi

echo "== campaign service smoke (kill -9 resume, cache, backpressure) =="
sh scripts/service_smoke.sh

echo "== memory model (litmus matrix + sync-stress smoke) =="
sh scripts/litmus.sh

echo "verify: OK"

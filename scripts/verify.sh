#!/bin/sh
# verify.sh — the repo's tier-1 gate plus the concurrency gate.
#
# Tier 1 (ROADMAP.md): everything must build and the full test suite
# must pass. On top of that, the packages that share state across
# goroutines — the harness (solo-time singleflight, pooled CPUs) and
# the scheduler — must pass under the race detector at short scale,
# and the instrumented build (-tags checks, DESIGN.md §6) must pass
# its probe suite with every invariant armed.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== obs disabled path allocates nothing =="
go test ./internal/core -run TestObsDisabledAllocFree -count=1

echo "== race (harness + sched, short) =="
go test -race -short ./internal/harness/... ./internal/sched/...

echo "== invariant probes (-tags checks, short) =="
go build -tags checks ./...
go test -tags checks -short ./...

echo "verify: OK"

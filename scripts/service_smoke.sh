#!/bin/sh
# service_smoke.sh — end-to-end smoke for the campaign daemon
# (cmd/javasmtd, DESIGN.md §13), run by scripts/verify.sh and the CI
# `service` job:
#
#   1. Run a reference sweep single-process with a journal.
#   2. Start the daemon, submit the same campaign over HTTP, kill -9
#      the daemon mid-campaign.
#   3. Restart the daemon over the same data directory, wait for the
#      resumed job to finish, and require its ledger to be
#      byte-identical (as a line set) to the reference journal.
#   4. Re-submit the identical campaign and require every cell to be
#      served from the digest cache.
#   5. Drain the daemon with SIGTERM and check its clean shutdown.
#   6. Start a daemon with -max-jobs 1 and require the second
#      concurrent submission to be rejected with HTTP 429 while the
#      first keeps running.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
dpid=""
cleanup() {
	[ -n "$dpid" ] && kill -9 "$dpid" 2>/dev/null
	rm -rf "$tmp"
}
trap cleanup EXIT

SPEC='{"kind":"sweep","benchmarks":["MolDyn"],"threads":[1,2,4,8],"scale":"small"}'

go build -o "$tmp/javasmtd" ./cmd/javasmtd
go build -o "$tmp/sweep" ./cmd/sweep

echo "-- reference single-process run"
"$tmp/sweep" -bench MolDyn -threads 1,2,4,8 -scale small \
    -journal "$tmp/ref" > /dev/null

# start_daemon DATA_DIR [extra flags...]: starts javasmtd, waits for
# the addr file, sets $dpid and $addr.
start_daemon() {
	data=$1; shift
	rm -f "$data/addr"
	"$tmp/javasmtd" -data "$data" -addr 127.0.0.1:0 -workers 1 -q "$@" &
	dpid=$!
	i=0
	while [ ! -s "$data/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "service_smoke: daemon did not write $data/addr" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$data/addr")
}

# job_field ID FIELD: one field of GET /jobs/ID.
job_field() {
	curl -sf "http://$addr/jobs/$1" |
		python3 -c "import sys,json; print(json.load(sys.stdin)[\"$2\"])"
}

# wait_done ID: polls until the job's state is terminal.
wait_done() {
	i=0
	while :; do
		state=$(job_field "$1" state)
		[ "$state" = running ] || break
		i=$((i + 1))
		if [ "$i" -gt 600 ]; then
			echo "service_smoke: job $1 did not finish" >&2
			exit 1
		fi
		sleep 0.5
	done
	if [ "$state" != done ]; then
		echo "service_smoke: job $1 ended $state" >&2
		exit 1
	fi
}

echo "-- daemon run, killed -9 mid-campaign"
start_daemon "$tmp/svc"
curl -sf -X POST "http://$addr/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" > /dev/null
sleep 1
kill -9 "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=""

echo "-- restart resumes the job from its ledger"
start_daemon "$tmp/svc"
wait_done j0001
resumed=$(job_field j0001 resumed 2>/dev/null || echo 0)
echo "   resumed $resumed ledgered cells, re-simulated the rest"

sort "$tmp/ref/journal.jsonl" > "$tmp/ref.sorted"
sort "$tmp/svc/jobs/j0001/journal.jsonl" > "$tmp/job.sorted"
diff -u "$tmp/ref.sorted" "$tmp/job.sorted"
echo "   resumed ledger is byte-identical to the single-process reference"

echo "-- identical resubmission is served from the digest cache"
id=$(curl -sf -X POST "http://$addr/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" | python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])')
wait_done "$id"
cached=$(job_field "$id" cached)
total=$(job_field "$id" total)
if [ "$cached" != "$total" ]; then
	echo "service_smoke: $cached/$total cells cached, want all" >&2
	exit 1
fi

echo "-- SIGTERM drains cleanly"
kill -TERM "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=""
if [ -f "$tmp/svc/addr" ]; then
	echo "service_smoke: addr file survived clean shutdown" >&2
	exit 1
fi

echo "-- overload is rejected with 429 while admitted work progresses"
start_daemon "$tmp/svc2" -max-jobs 1
curl -sf -X POST "http://$addr/jobs" -H 'Content-Type: application/json' \
    -d "$SPEC" > /dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/jobs" \
    -H 'Content-Type: application/json' -d "$SPEC")
if [ "$code" != 429 ]; then
	echo "service_smoke: over-capacity submit returned HTTP $code, want 429" >&2
	exit 1
fi
wait_done j0001
kill -TERM "$dpid"
wait "$dpid" 2>/dev/null || true
dpid=""

echo "service_smoke: OK"

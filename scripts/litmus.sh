#!/bin/sh
# litmus.sh — the memory-model gate (DESIGN.md §14).
#
# Runs the JMM litmus matrix under the race detector — the forbidden
# outcomes must never appear on any seed/geometry/policy/mode cell, and
# the fence-free control variants must still exhibit their TSO
# relaxations — then smoke-runs the synchronization-stress benchmarks
# through the sweep front end, requiring live lock-contention and
# fence-stall counters in the table it prints.
set -eu
cd "$(dirname "$0")/.."

echo "== litmus matrix (race) =="
go test -race ./internal/litmus -count=1

echo "== sync-stress smoke (sweep front end) =="
out=$(go run ./cmd/sweep -benches SyncLock,SyncCAS -threads 4)
echo "$out"
echo "$out" | awk '
$1 == "SyncLock" { lock = $7 }
$1 == "SyncCAS"  { fence = $8 }
END {
	if (lock + 0 <= 0)  { print "litmus.sh: SyncLock lockCont is zero" | "cat >&2"; exit 1 }
	if (fence + 0 <= 0) { print "litmus.sh: SyncCAS fenceStall is zero" | "cat >&2"; exit 1 }
}'

echo "litmus: OK"

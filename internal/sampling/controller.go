package sampling

import (
	"math"

	"javasmt/internal/core"
	"javasmt/internal/counters"
)

// phase indices of the repeating interval cycle. Every cell starts with a
// detailed window: the machine is genuinely cold at cycle 0, so the first
// window correctly measures the cold-start phase, every functional span
// is clocked by a window that just closed (never by the default CPI), and
// a cell shorter than one window degenerates to 100% detailed execution.
// The warmup span sits immediately before the next window, so each
// window after the first measures freshly warmed structures.
const (
	phWindow = iota // detailed pipeline window
	phFF            // unwarmed fast-forward
	phWarmup        // warmed functional execution
)

// rampFactor bounds extrapolation: no single functional span may exceed
// this multiple of the µops the most recent detailed window retired. The
// rule is self-regulating. In a fast stable phase a window covers more
// µops than a whole plan interval, so the plan's span lengths govern; in
// a slow or unstable regime — the cold-start ramp, a GC storm, jack's
// phase churn — windows retire few µops, so the spans between them
// shrink and sampling densifies exactly where the program is least
// extrapolatable. Cells much shorter than one plan interval (which would
// otherwise be one unrepresentative cold window extrapolated over
// everything) never get the chance to extrapolate far.
const rampFactor = 4

// rampFactorMax and rampRelaxRelStdErr are the ramp's confidence-based
// release, symmetric to the error clamp below: once the running relative
// standard error of the window IPCs is this tight (with at least
// errClampMinWindows samples behind it), consecutive windows are
// provably interchangeable and the budget stretches to rampFactorMax —
// this is what lets a steady workload reach the 10–50× regime. Any
// later disagreement raises the error and the budget snaps back to
// rampFactor.
const (
	rampFactorMax      = 512
	rampRelaxRelStdErr = 0.02
)

// rateFeatures is the per-µop structure-event rate vector used to place
// a functional span between its two bracketing windows: trace-cache
// misses, L1D misses, branch mispredicts and L2 misses per kµop. The
// warmed functional tier performs every structure access, so a span's
// vector is measured exactly, not estimated.
const rateFeatures = 4

// winSettleCycles is how many detailed cycles run after a functional
// span before the window's counter base is snapshotted. The functional
// tiers hand over a drained pipeline, so the first few dozen cycles of
// detailed execution retire almost nothing while the front end refills
// the ROB and queues; measuring them would inflate every window's CPI by
// roughly refill/window — a systematic overcharge that grows as windows
// shrink. The settle cycles are real detailed execution and stay in the
// exact totals; they are only excluded from the window's CPI sample.
const winSettleCycles = 256

// Span-scale bounds for the stability feedback (see closeWindow): when
// consecutive windows disagree about CPI, the program is moving through
// phases faster than the plan's interval can track, so the next spans
// shrink multiplicatively; agreement grows them back toward the plan
// lengths. Phase-churning workloads (jack's parse/GC alternation) thus
// run near-detailed while stable ones keep the plan's full speedup.
const (
	spanScaleMin    = 1.0 / 8
	unstableCPIFrac = 1.5 // windows differing by more than this ratio count as unstable
)

// errClampRelStdErr keeps the spans at spanScaleMin while the running
// relative standard error of the window IPCs (the estimate the cell
// ultimately reports as its confidence, excluding the known-cold first
// window) is above this threshold: the controller spends detail exactly
// where its own error estimate says the extrapolation is untrustworthy.
// The clamp deliberately uses ALL-HISTORY moments — it is an accuracy
// mechanism, and a cell that has ever shown real variability (jack's
// phase churn) should stay conservative for its whole run.
const errClampRelStdErr = 0.10

// errClampMinWindows is how many windows the running error needs before
// it is trusted to impose the clamp.
const errClampMinWindows = 8

// errWindows is how many recent windows the ramp RELEASE judges
// confidence over. Unlike the clamp, the release uses a sliding ring:
// it is a speed mechanism answering a local question — is the machine
// steady right now? — and the 0.02 bar is so tight that the cold-start
// windows would otherwise hold the all-history error above it for
// essentially any run length, permanently starving the release.
const errWindows = 8

// Controller drives one CPU through the sampling phase cycle. It exposes
// the same Run contract as core.CPU.Run, so the harness's run loops work
// identically in either mode; in Full mode every call is forwarded to the
// CPU untouched and the controller is a zero-cost shim.
//
// After the run loop finishes (and before reading the counter file), the
// owner must call Finish exactly once: it closes any open window, folds
// the functional tiers' estimated cycles into the counter file (keeping
// every cross-counter conservation law exact), and returns the Estimate.
type Controller struct {
	cpu  *core.CPU
	plan Plan

	phase int
	left  uint64 // µops (warmup/ff) or cycles (window) left in the phase

	winOpen    bool
	settleLeft uint64        // detailed cycles to run before the window sample starts
	winBase    counters.File // counter snapshot at window open
	winIPCs    []float64
	winUops    uint64   // µops retired across closed windows
	winCycles  uint64   // cycles spent across closed windows
	lpBase     []uint64 // per-context retirement snapshot at window open
	lpCur      []uint64 // scratch for the close-time snapshot
	lpUops     []uint64 // per-context µops retired across closed windows
	warmUops   uint64
	ffUops     uint64
	funcCycles uint64 // non-halted clock advance of functional spans
	funcHalt   uint64 // all-blocked cycles during functional spans

	// winCPIs[i] is the CPI of closed window i and spans[i] the functional
	// µops of the span that led into it (spans[0] is zero: every cell
	// opens with a window). winRates[i] and spanRates[i] are the matching
	// per-µop structure-event vectors, and prevClose the counter snapshot
	// at the last window close (the base of the next span's vector).
	// spannedUops is the spans' running sum. Charging happens at Finish
	// time, when every span's two bracketing windows are known.
	winCPIs     []float64
	winRates    [][rateFeatures]float64
	spans       []uint64
	spanRates   [][rateFeatures]float64
	prevClose   counters.File
	spannedUops uint64
	lastWinUops uint64  // µops retired by the most recent closed window
	spanScale   float64 // stability feedback: fraction of the plan's span lengths to use

	// Window-IPC statistics past the first (cold) window: all-history
	// running moments for the error clamp, and a sliding ring of the
	// most recent samples for the ramp release.
	ipcN     int
	ipcSum   float64
	ipcSumSq float64
	ipcRing  [errWindows]float64
	ipcRingN int

	done     bool // every feed completed
	finished bool
	est      Estimate
}

// NewController wraps cpu in the given sampling plan. The plan must have
// passed Validate.
func NewController(cpu *core.CPU, plan Plan) *Controller {
	c := &Controller{cpu: cpu, plan: plan, phase: phWindow, spanScale: 1}
	if plan.Sampled() {
		c.left = plan.WindowCycles
		c.settleLeft = winSettleCycles
	}
	return c
}

// Plan returns the controller's sampling plan.
func (s *Controller) Plan() Plan { return s.plan }

// CPU returns the wrapped machine.
func (s *Controller) CPU() *core.CPU { return s.cpu }

// advance moves to the next phase of the interval cycle, skipping phases
// whose span is zero (a plan with FFUops == 0 and WarmupUops == 0 is
// 100% detailed). The window phase is never skipped: Validate requires a
// positive window, so the cycle always makes progress.
func (s *Controller) advance() {
	for {
		s.phase = (s.phase + 1) % 3
		switch s.phase {
		case phWindow:
			s.left = s.plan.WindowCycles
			s.settleLeft = winSettleCycles
			return
		case phFF:
			// The ramp budget goes to warmup first: its structure
			// statistics are exact, fast-forward's are extrapolated.
			s.left = min(s.scaled(s.plan.FFUops), s.rampBudget(s.warmupSpan()))
		case phWarmup:
			s.left = min(s.warmupSpan(), s.rampBudget(0))
		}
		if s.left > 0 {
			return
		}
	}
}

// scaled applies the stability feedback to a plan span length.
func (s *Controller) scaled(n uint64) uint64 {
	return uint64(s.spanScale * float64(n))
}

// warmupSpan is the warmup length currently in force. In a plan without
// fast-forward the warmup IS the skip span (exact structure statistics,
// extrapolated cycles), so the stability feedback scales it to densify
// sampling. With fast-forward present the warmup is instead the
// rewarming preamble that makes the next window valid — shrinking it
// under instability would produce half-warmed windows whose spurious
// IPC swings feed back into more instability, so only the ff span
// scales.
func (s *Controller) warmupSpan() uint64 {
	if s.plan.FFUops > 0 {
		return s.plan.WarmupUops
	}
	return s.scaled(s.plan.WarmupUops)
}

// rampFactorNow returns the extrapolation bound currently in force:
// rampFactor until the recent windows agree tightly, rampFactorMax while
// they do. Any fresh disagreement raises the recent error and the budget
// snaps back within a window.
func (s *Controller) rampFactorNow() uint64 {
	if e, ok := s.recentRelStdErr(); ok && e < rampRelaxRelStdErr {
		return rampFactorMax
	}
	return rampFactor
}

// recentRelStdErr returns the relative standard error of the last
// errWindows window IPCs, and whether the ring has filled enough to be
// trusted.
func (s *Controller) recentRelStdErr() (float64, bool) {
	if s.ipcRingN < errWindows {
		return 0, false
	}
	return relStdErr(s.ipcRing[:]), true
}

// runningRelStdErr computes stdev/(mean·√n) from running moments.
func runningRelStdErr(n int, sum, sumSq float64) float64 {
	if n < 2 || sum <= 0 {
		return 0
	}
	mean := sum / float64(n)
	varsum := sumSq - float64(n)*mean*mean
	if varsum <= 0 {
		return 0
	}
	sd := math.Sqrt(varsum / float64(n-1))
	return sd / (mean * math.Sqrt(float64(n)))
}

// rampBudget returns how many functional µops the current span may run
// under the rampFactor bound, keeping reserve µops of it for a later
// phase of the same interval.
func (s *Controller) rampBudget(reserve uint64) uint64 {
	budget := s.rampFactorNow() * s.lastWinUops
	if reserve >= budget {
		return 0
	}
	return budget - reserve
}

func (s *Controller) openWindow() {
	s.winBase = *s.cpu.Counters()
	s.lpBase = s.cpu.RetiredByLP(s.lpBase)
	s.winOpen = true
}

// closeWindow banks the window's IPC sample, records the functional span
// that led into it for Finish-time charging, and feeds the window's CPI
// into the functional clock for the span that follows. The live clock
// (SetFuncCPI) necessarily uses the latest closed window — the future one
// isn't known while time must advance — so the counter reconstruction
// charges spans separately, once both bracketing windows are known.
func (s *Controller) closeWindow() {
	if !s.winOpen {
		return
	}
	s.winOpen = false
	win := s.cpu.Counters().Sub(&s.winBase)
	uops, cycles := win.Get(counters.Instructions), win.Get(counters.Cycles)
	if uops == 0 || cycles == 0 {
		return
	}
	s.winUops += uops
	s.winCycles += cycles
	s.lpCur = s.cpu.RetiredByLP(s.lpCur)
	if len(s.lpUops) < len(s.lpCur) {
		s.lpUops = append(s.lpUops, make([]uint64, len(s.lpCur)-len(s.lpUops))...)
	}
	for i, cur := range s.lpCur {
		s.lpUops[i] += cur - s.lpBase[i]
	}
	cpi := float64(cycles) / float64(uops)
	s.winIPCs = append(s.winIPCs, float64(uops)/float64(cycles))
	span := s.warmUops + s.ffUops - s.spannedUops
	spanDelta := s.winBase.Sub(&s.prevClose)
	if n := len(s.winCPIs); n > 0 {
		// Stability feedback: consecutive windows that disagree mean the
		// interval is aliasing over phase changes — back off fast, and
		// only re-grow the spans once windows agree again.
		if prev := s.winCPIs[n-1]; cpi > unstableCPIFrac*prev || prev > unstableCPIFrac*cpi {
			s.spanScale = max(s.spanScale/4, spanScaleMin)
		} else {
			s.spanScale = min(s.spanScale*2, 1)
		}
		ipc := float64(uops) / float64(cycles)
		s.ipcN++
		s.ipcSum += ipc
		s.ipcSumSq += ipc * ipc
		s.ipcRing[s.ipcRingN%errWindows] = ipc
		s.ipcRingN++
		if s.ipcN >= errClampMinWindows && runningRelStdErr(s.ipcN, s.ipcSum, s.ipcSumSq) > errClampRelStdErr {
			s.spanScale = spanScaleMin
		}
	}
	s.winCPIs = append(s.winCPIs, cpi)
	s.winRates = append(s.winRates, rateVec(&win))
	s.spans = append(s.spans, span)
	s.spanRates = append(s.spanRates, rateVec(&spanDelta))
	s.spannedUops += span
	s.lastWinUops = uops
	s.prevClose = *s.cpu.Counters()
	s.cpu.SetFuncCPI(cpi)
}

// Run advances the machine by up to maxCycles cycles (0 = no limit) of
// combined detailed and functional execution, returning the clock advance
// like core.CPU.Run. A return of 0 with a nil error means every feed has
// completed.
func (s *Controller) Run(maxCycles uint64) (uint64, error) {
	if !s.plan.Sampled() {
		return s.cpu.Run(maxCycles)
	}
	if err := s.plan.Validate(); err != nil {
		return 0, err
	}
	start := s.cpu.Now()
	for !s.done {
		if maxCycles > 0 && s.cpu.Now()-start >= maxCycles {
			break
		}
		var remaining uint64 // 0 = unlimited
		if maxCycles > 0 {
			remaining = maxCycles - (s.cpu.Now() - start)
		}
		var err error
		if s.phase == phWindow {
			err = s.runWindow(remaining)
		} else {
			err = s.runFunctional(remaining)
		}
		if err != nil {
			return s.cpu.Now() - start, err
		}
	}
	return s.cpu.Now() - start, nil
}

// runWindow runs up to `remaining` cycles (0 = unlimited) of the current
// detailed window, first letting the pipeline settle (see
// winSettleCycles) before opening the counter sample.
func (s *Controller) runWindow(remaining uint64) error {
	if s.settleLeft > 0 {
		span := s.settleLeft
		if remaining > 0 && remaining < span {
			span = remaining
		}
		n, err := s.cpu.Run(span)
		if err != nil {
			return err
		}
		if n == 0 {
			// Drained while settling: nothing left to sample.
			s.done = true
			return nil
		}
		if n >= s.settleLeft {
			s.settleLeft = 0
			s.openWindow()
		} else {
			s.settleLeft -= n
		}
		return nil
	}
	span := s.left
	if remaining > 0 && remaining < span {
		span = remaining
	}
	n, err := s.cpu.Run(span)
	if err != nil {
		return err
	}
	if n == 0 {
		// Drained: the machine has nothing left to do.
		s.closeWindow()
		s.done = true
		return nil
	}
	if n >= s.left {
		s.closeWindow()
		s.advance()
	} else {
		s.left -= n
	}
	return nil
}

// runFunctional runs the current warmup or fast-forward span, bounded by
// the caller's remaining cycle budget.
func (s *Controller) runFunctional(remaining uint64) error {
	warm := s.phase == phWarmup
	want := s.left
	if remaining > 0 {
		// Convert the cycle budget to a µop bound via the current clock
		// rate; generous rounding is fine, the outer loop re-checks.
		if cap := remaining; cap < want {
			want = cap
		}
	}
	before := s.cpu.Now()
	exec, halted, err := s.cpu.RunFunctional(want, warm)
	adv := s.cpu.Now() - before
	s.funcHalt += halted
	s.funcCycles += adv - halted
	if warm {
		s.warmUops += exec
	} else {
		s.ffUops += exec
	}
	if err != nil {
		return err
	}
	if exec >= s.left {
		s.advance()
	} else {
		s.left -= exec
		if exec < want {
			// Fewer µops than asked with no error: every feed completed.
			s.done = true
		}
	}
	return nil
}

// Finish closes any open window, reconstructs the whole-run counter file
// from the sampled tiers and returns the Estimate. It must be called
// exactly once, after the run loop and before reading counters; calling
// it on a Full-mode controller is a no-op returning nil.
func (s *Controller) Finish() *Estimate {
	if !s.plan.Sampled() {
		return nil
	}
	if s.finished {
		return &s.est
	}
	s.finished = true
	s.closeWindow()

	file := s.cpu.Counters()
	e := &s.est
	e.Mode = Sampled.String()
	e.WarmUops, e.FFUops = s.warmUops, s.ffUops
	e.DetailedCycles = file.Get(counters.Cycles)
	e.DetailedUops = file.Get(counters.Instructions) - s.warmUops - s.ffUops
	e.HaltCycles = s.funcHalt
	e.Windows = len(s.winIPCs)
	if s.winCycles > 0 {
		e.WindowIPC = float64(s.winUops) / float64(s.winCycles)
		e.ContextWindowIPC = make([]float64, len(s.lpUops))
		for i, u := range s.lpUops {
			e.ContextWindowIPC[i] = float64(u) / float64(s.winCycles)
		}
	}
	e.IPCRelErr = relStdErr(s.winIPCs)
	if tot := e.TotalUops(); tot > 0 {
		e.DetailPct = 100 * float64(e.DetailedUops) / float64(tot)
		e.MeasuredPct = 100 * float64(e.DetailedUops+e.WarmUops) / float64(tot)
	}
	s.reconstruct(file, e)
	return e
}

// reconstruct folds the functional tiers into the counter file so that
// whole-run derived metrics (IPC, MPKI, miss rates, mode percentages) are
// estimates of what a full detailed run would report, while every
// CheckConservation law stays exactly satisfied:
//
//   - The functional µops' cycle cost (clocked at the live window CPI) is
//     added to Cycles and spread over the retirement histogram as two
//     adjacent buckets whose cycle sum and µop-weighted sum are exact.
//   - All-blocked functional cycles land in both Cycles and CyclesHalted,
//     mirroring how the detailed engine bills halted cycles.
//   - Cycle-denominated counters (OS/DT mode, stall cycles) are scaled
//     from their measured per-cycle rates and clamped by their laws.
//   - When an unwarmed fast-forward tier ran, structure counters are
//     scaled from the measured (detailed + warmed) µops to the whole run
//     bottom-up: L2 accesses are re-derived from the scaled L1D and TC
//     misses, then DRAM traffic from the scaled L2 misses, so the exact
//     hierarchy laws hold by construction.
func (s *Controller) reconstruct(file *counters.File, e *Estimate) {
	F := s.warmUops + s.ffUops
	if F == 0 {
		return
	}
	// Cycle cost of the functional tiers: every span charged at a mix of
	// its two bracketing windows' CPIs, weighted by where the span's own
	// measured structure-event rates fall between the two windows'
	// vectors (rateMix) — a span straddling a phase boundary is charged
	// by its actual phase mixture rather than an assumed 50/50, and a
	// one-off transient caught inside a window (whose neighbors' rates
	// look normal) is never extrapolated over the spans around it. The
	// tail span after the last window is charged at that window's CPI
	// (with no window at all — a cell that ended mid-span — the live
	// clock's advance is the only estimate there is). The retire-bandwidth
	// floor guards the histogram: the machine retires at most
	// MaxRetirePerCycle (RetireWidth per core) µops per cycle, so F µops
	// need at least ceil(F/that) cycles.
	recon := 0.0
	for i, span := range s.spans {
		cpi := s.winCPIs[i]
		if i > 0 {
			if s.ffUops == 0 {
				// The warmed tier measured this span's structure-event
				// rates exactly; charge it on the CPI segment between its
				// bracketing windows at the point matching those rates.
				// (An unwarmed tier would leave holes in the rate vector.)
				t := rateMix(s.spanRates[i], s.winRates[i-1], s.winRates[i])
				cpi = (1-t)*s.winCPIs[i-1] + t*s.winCPIs[i]
			} else {
				// With fast-forward in play the span's rates are not
				// comparable, so charge it at the window that follows it:
				// that window measures the freshly warmed machine in the
				// span's own neighborhood (the SMARTS convention), whereas
				// the window before it may still be the cold-start sample.
				cpi = s.winCPIs[i]
			}
		}
		recon += float64(span) * cpi
	}
	if tail := F - s.spannedUops; tail > 0 {
		if n := len(s.winCPIs); n > 0 {
			recon += float64(tail) * s.winCPIs[n-1]
		} else {
			recon += float64(s.funcCycles)
		}
	}
	C := uint64(recon + 0.5)
	w := uint64(s.cpu.Config().MaxRetirePerCycle())
	if minC := (F + w - 1) / w; C < minC {
		C = minC
	}
	e.FuncCycles = C

	dCycles := file.Get(counters.Cycles)
	dHalted := file.Get(counters.CyclesHalted)

	// Retirement histogram: q µops on C-r cycles, q+1 µops on r cycles
	// sums to C cycles and F µops exactly. On machines retiring more than
	// three µops per cycle (several cores) the buckets clamp into Retire3,
	// matching the detailed engine's machine-wide histogram, so the cycle
	// law stays exact and the µop-weighted law its usual lower bound.
	q, r := F/C, F%C
	retire := [4]counters.Event{counters.Retire0, counters.Retire1, counters.Retire2, counters.Retire3}
	file.Add(retire[min(q, 3)], C-r)
	if r > 0 {
		file.Add(retire[min(q+1, 3)], r)
	}
	file.Add(counters.Cycles, C+s.funcHalt)
	file.Add(counters.CyclesHalted, s.funcHalt)

	// Cycle-denominated counters: scale the measured per-cycle rate over
	// the reconstructed non-halted cycles, clamped by the ≤ cycles laws.
	if dNH := dCycles - dHalted; dNH > 0 {
		tNH := dNH + C
		total := file.Get(counters.Cycles)
		for _, ev := range []counters.Event{
			counters.CyclesDT, counters.CyclesOS,
			counters.ROBStallCycles, counters.IQStallCycles,
			counters.LSQStallCycles, counters.FetchStallCycles,
			counters.FenceStallCycles,
		} {
			v := scaleClamp(file.Get(ev), tNH, dNH, total)
			file.Set(ev, v)
		}
	}

	// Structure counters: exact unless an unwarmed tier ran.
	if s.ffUops == 0 {
		return
	}
	I := file.Get(counters.Instructions)
	M := I - s.ffUops // µops whose structure accesses were performed
	if M == 0 {
		return
	}
	for _, ev := range []counters.Event{
		counters.TCAccesses, counters.L1DAccesses,
		counters.ITLBAccesses, counters.DTLBAccesses,
		counters.Branches,
	} {
		file.Set(ev, scaleClamp(file.Get(ev), I, M, ^uint64(0)))
	}
	file.Set(counters.TCMisses, scaleClamp(file.Get(counters.TCMisses), I, M, file.Get(counters.TCAccesses)))
	file.Set(counters.L1DMisses, scaleClamp(file.Get(counters.L1DMisses), I, M, file.Get(counters.L1DAccesses)))
	file.Set(counters.ITLBMisses, scaleClamp(file.Get(counters.ITLBMisses), I, M, file.Get(counters.ITLBAccesses)))
	file.Set(counters.DTLBMisses, scaleClamp(file.Get(counters.DTLBMisses), I, M, file.Get(counters.DTLBAccesses)))
	file.Set(counters.BTBMisses, scaleClamp(file.Get(counters.BTBMisses), I, M, file.Get(counters.Branches)))
	file.Set(counters.BranchMispredicts, scaleClamp(file.Get(counters.BranchMispredicts), I, M, file.Get(counters.Branches)))

	// Hierarchy laws, bottom-up: L2 demand is the scaled upper-level miss
	// streams; DRAM traffic is the scaled L2 miss stream.
	l2aOld, l2mOld := file.Get(counters.L2Accesses), file.Get(counters.L2Misses)
	l2a := file.Get(counters.L1DMisses) + file.Get(counters.TCMisses)
	l2m := scaleClamp(l2mOld, l2a, max(l2aOld, 1), l2a)
	file.Set(counters.L2Accesses, l2a)
	file.Set(counters.L2Misses, l2m)
	rdOld, wrOld := file.Get(counters.MemReads), file.Get(counters.MemWrites)
	rd := l2m
	if t := rdOld + wrOld; t > 0 {
		rd = scaleClamp(rdOld, l2m, t, l2m)
	}
	file.Set(counters.MemReads, rd)
	file.Set(counters.MemWrites, l2m-rd)
}

// rateVec extracts the per-kµop structure-event vector of a counter
// delta.
func rateVec(d *counters.File) [rateFeatures]float64 {
	ku := float64(d.Get(counters.Instructions)) / 1000
	if ku == 0 {
		return [rateFeatures]float64{}
	}
	return [rateFeatures]float64{
		float64(d.Get(counters.TCMisses)) / ku,
		float64(d.Get(counters.L1DMisses)) / ku,
		float64(d.Get(counters.BranchMispredicts)) / ku,
		float64(d.Get(counters.L2Misses)) / ku,
	}
}

// rateMix places a span between its two bracketing windows: it projects
// the span's measured rate vector onto the segment from the left
// window's vector to the right window's and returns the mixture fraction
// t ∈ [0,1] (0 = entirely left-like, 1 = entirely right-like). Each
// feature is normalized by its local magnitude so no single rate
// dominates the distance. When the brackets are too similar to carry a
// signal, it falls back to ½ — the plain bracket mean.
func rateMix(span, l, r [rateFeatures]float64) float64 {
	var num, den float64
	for k := range span {
		scale := l[k] + r[k]
		if scale <= 0 {
			continue
		}
		a := (span[k] - l[k]) / scale
		b := (r[k] - l[k]) / scale
		num += a * b
		den += b * b
	}
	if den < 1e-4 {
		return 0.5
	}
	return min(max(num/den, 0), 1)
}

// scaleClamp returns round(v · num/den) capped at limit.
func scaleClamp(v, num, den, limit uint64) uint64 {
	if den == 0 {
		return 0
	}
	scaled := uint64(float64(v)*float64(num)/float64(den) + 0.5)
	if scaled > limit {
		return limit
	}
	return scaled
}

package sampling

import (
	"math"
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": Full, "full": Full, "FULL": Full,
		"sampled": Sampled, "Sampled": Sampled,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	if Full.String() != "full" || Sampled.String() != "sampled" {
		t.Errorf("mode spellings: %q, %q", Full.String(), Sampled.String())
	}
}

func TestPlanValidate(t *testing.T) {
	if err := FullPlan().Validate(); err != nil {
		t.Errorf("full plan invalid: %v", err)
	}
	if err := DefaultSampledPlan().Validate(); err != nil {
		t.Errorf("default sampled plan invalid: %v", err)
	}
	if err := (Plan{Mode: Sampled}).Validate(); err == nil {
		t.Error("sampled plan with no window accepted")
	}
	if err := (Plan{Mode: Mode(7)}).Validate(); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestDefaultSampledPlanIsExact pins the property the accuracy suite
// relies on: the default regime has no unwarmed fast-forward, so every
// structure counter of a default sampled run is exact, not scaled.
func TestDefaultSampledPlanIsExact(t *testing.T) {
	p := DefaultSampledPlan()
	if !p.Sampled() {
		t.Fatal("default sampled plan is not sampled")
	}
	if p.FFUops != 0 {
		t.Errorf("default plan has FFUops = %d; structure counters would become estimates", p.FFUops)
	}
	if p.WarmupUops == 0 || p.WindowCycles == 0 {
		t.Errorf("default plan degenerate: %+v", p)
	}
}

// TestPlanTag pins the journal-config clause: empty for full mode (old
// journals keep resuming), canonical and regime-unique for sampled mode.
func TestPlanTag(t *testing.T) {
	if got := FullPlan().Tag(); got != "" {
		t.Errorf("full tag = %q, want empty", got)
	}
	a := Plan{Mode: Sampled, FFUops: 1, WarmupUops: 2, WindowCycles: 3}.Tag()
	if !strings.Contains(a, "sim=sampled") {
		t.Errorf("sampled tag = %q", a)
	}
	b := Plan{Mode: Sampled, FFUops: 1, WarmupUops: 2, WindowCycles: 4}.Tag()
	if a == b {
		t.Error("different regimes share a tag; -resume would silently mix them")
	}
}

func TestRelStdErr(t *testing.T) {
	if got := relStdErr(nil); got != 0 {
		t.Errorf("relStdErr(nil) = %v", got)
	}
	if got := relStdErr([]float64{1.5}); got != 0 {
		t.Errorf("one sample carries no spread; got %v", got)
	}
	if got := relStdErr([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("identical samples: got %v, want 0", got)
	}
	// Known case: {1, 3} has mean 2, sd √2, n 2 → rse = √2/(2·√2) = 0.5.
	if got := relStdErr([]float64{1, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("relStdErr({1,3}) = %v, want 0.5", got)
	}
}

// TestRunningRelStdErr: the incremental-moment form the clamp uses must
// agree with the direct slice computation the release and report use.
func TestRunningRelStdErr(t *testing.T) {
	xs := []float64{1.1, 0.9, 1.4, 0.7, 1.05, 1.2}
	sum, sumSq := 0.0, 0.0
	for i, x := range xs {
		sum += x
		sumSq += x * x
		got := runningRelStdErr(i+1, sum, sumSq)
		want := relStdErr(xs[:i+1])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: running %v != direct %v", i+1, got, want)
		}
	}
	if got := runningRelStdErr(1, 1.0, 1.0); got != 0 {
		t.Errorf("n=1: got %v", got)
	}
	if got := runningRelStdErr(0, 0, 0); got != 0 {
		t.Errorf("n=0: got %v", got)
	}
}

// TestRateMix pins the span-charging projection: a span whose measured
// structure-event rates match one bracketing window lands on that
// window; degenerate geometry falls back to the midpoint; the result is
// always a valid interpolation weight.
func TestRateMix(t *testing.T) {
	l := [rateFeatures]float64{1, 10, 5, 0.5}
	r := [rateFeatures]float64{3, 30, 15, 1.5}
	if got := rateMix(l, l, r); got != 0 {
		t.Errorf("span at left window: t = %v, want 0", got)
	}
	if got := rateMix(r, l, r); got != 1 {
		t.Errorf("span at right window: t = %v, want 1", got)
	}
	mid := [rateFeatures]float64{2, 20, 10, 1.0}
	if got := rateMix(mid, l, r); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("span midway: t = %v, want 0.5", got)
	}
	// Rates beyond either window clamp to the nearer endpoint.
	hot := [rateFeatures]float64{9, 90, 45, 4.5}
	if got := rateMix(hot, l, r); got != 1 {
		t.Errorf("span beyond right window: t = %v, want 1 (clamped)", got)
	}
	// Identical windows give no direction to project on: midpoint.
	if got := rateMix(mid, l, l); got != 0.5 {
		t.Errorf("degenerate bracket: t = %v, want 0.5", got)
	}
	// All-zero vectors (no structure events at all): midpoint.
	var z [rateFeatures]float64
	if got := rateMix(z, z, z); got != 0.5 {
		t.Errorf("all-zero rates: t = %v, want 0.5", got)
	}
}

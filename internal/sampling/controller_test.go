package sampling

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// synthUops builds a uniform, phase-free µop stream: ALU chains, a load
// every fifth µop walking a 32 KB region, a branch every fifth. Against
// it, any sampled-vs-full divergence is mechanical estimator bias, not
// program phase behavior.
func synthUops(n int) []isa.Uop {
	us := make([]isa.Uop, n)
	for i := range us {
		u := isa.Uop{PC: uint64(i % 3000), Class: isa.ALU}
		switch i % 5 {
		case 1:
			u.Class = isa.Load
			u.Addr = uint64(i%4096) * 8
		case 3:
			u.Class = isa.Branch
			u.Taken = i%10 == 3
			u.Target = uint64((i + 7) % 3000)
		}
		us[i] = u
	}
	return us
}

// synthFeed adapts an isa.SliceSource to the core.Feed contract.
type synthFeed struct {
	src  *isa.SliceSource
	done bool
}

func (f *synthFeed) Fill(_ uint64, buf []isa.Uop) int {
	if f.done {
		return 0
	}
	n, done := f.src.Fill(buf)
	if done {
		f.done = true
	}
	return n
}

func (f *synthFeed) Runnable(uint64) bool { return !f.done }
func (f *synthFeed) Done() bool           { return f.done }

// runSynth drives n synthetic µops through a fresh machine under plan and
// returns the final counter file and the reconstruction estimate.
func runSynth(t *testing.T, n int, plan Plan) (*counters.File, *Estimate) {
	t.Helper()
	cpu := core.New(core.DefaultConfig(false))
	cpu.AttachFeed(0, &synthFeed{src: &isa.SliceSource{Uops: synthUops(n)}})
	ctrl := NewController(cpu, plan)
	for {
		adv, err := ctrl.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if adv == 0 {
			break
		}
	}
	est := ctrl.Finish()
	return cpu.Counters(), est
}

// TestFullModePassthrough: a Full-plan controller is a transparent shim —
// identical counters to driving the CPU directly, and no estimate.
func TestFullModePassthrough(t *testing.T) {
	const n = 200_000
	direct := core.New(core.DefaultConfig(false))
	direct.AttachFeed(0, &synthFeed{src: &isa.SliceSource{Uops: synthUops(n)}})
	if _, err := direct.Run(0); err != nil {
		t.Fatal(err)
	}
	got, est := runSynth(t, n, FullPlan())
	if est != nil {
		t.Errorf("full mode produced an estimate: %+v", est)
	}
	if *got != *direct.Counters() {
		t.Errorf("full-mode controller diverged from a bare run:\n got %+v\nwant %+v", got, direct.Counters())
	}
}

// TestDegenerateSampledIsDetailed: a sampled plan with no functional
// spans runs every µop through the detailed pipeline and must reproduce
// the full-mode counter file byte for byte — the metamorphic anchor that
// the window bookkeeping itself (open/close/settle) perturbs nothing.
func TestDegenerateSampledIsDetailed(t *testing.T) {
	const n = 200_000
	full, _ := runSynth(t, n, FullPlan())
	got, est := runSynth(t, n, Plan{Mode: Sampled, WindowCycles: 5_000})
	if *got != *full {
		t.Errorf("degenerate sampled diverged from full:\n got %+v\nwant %+v", got, full)
	}
	if est == nil {
		t.Fatal("sampled run produced no estimate")
	}
	if est.WarmUops != 0 || est.FFUops != 0 {
		t.Errorf("degenerate plan ran functional µops: warm %d, ff %d", est.WarmUops, est.FFUops)
	}
	if est.DetailPct != 100 || est.MeasuredPct != 100 {
		t.Errorf("degenerate plan detail%% = %v, measured%% = %v, want 100", est.DetailPct, est.MeasuredPct)
	}
	if est.Windows == 0 {
		t.Error("no windows closed")
	}
}

// TestSampledReconstruction: under the default (warmed, exact-structure)
// regime the reconstruction must retire every µop, keep every structure
// counter exactly equal to the full run's, keep all conservation laws,
// and land the estimated IPC within the accuracy suite's 2% tolerance
// even on this synthetic stream.
func TestSampledReconstruction(t *testing.T) {
	const n = 2_000_000
	full, _ := runSynth(t, n, FullPlan())
	got, est := runSynth(t, n, DefaultSampledPlan())
	if est == nil {
		t.Fatal("no estimate")
	}
	if err := got.CheckConservation(); err != nil {
		t.Errorf("conservation after reconstruction: %v", err)
	}
	if gu, fu := got.Get(counters.Instructions), full.Get(counters.Instructions); gu != fu {
		t.Errorf("retired µops %d != full %d", gu, fu)
	}
	if est.TotalUops() != full.Get(counters.Instructions) {
		t.Errorf("tier split %d µops != full %d", est.TotalUops(), full.Get(counters.Instructions))
	}
	for _, c := range []counters.Event{
		counters.TCMisses, counters.L1DMisses, counters.L2Misses,
		counters.ITLBMisses, counters.DTLBMisses,
		counters.Branches, counters.BranchMispredicts, counters.BTBMisses,
	} {
		if g, f := got.Get(c), full.Get(c); g != f {
			t.Errorf("%v = %d, full %d; default plan promises exact structure counters", c, g, f)
		}
	}
	gIPC, fIPC := got.IPC(), full.IPC()
	if d := (gIPC - fIPC) / fIPC; d > 0.02 || d < -0.02 {
		t.Errorf("sampled IPC %.4f vs full %.4f: %+.2f%% error, tolerance 2%%", gIPC, fIPC, 100*d)
	}
	if est.Windows < 2 {
		t.Errorf("windows = %d; no spread information", est.Windows)
	}
	if est.IPCRelErr < 0 {
		t.Errorf("negative error estimate %v", est.IPCRelErr)
	}
	if est.WarmUops == 0 {
		t.Error("default plan ran no warmed functional µops; nothing was sampled")
	}
}

// TestSampledFastForwardReconstruction: with an unwarmed fast-forward
// tier in play, structure counters become whole-run estimates — they
// must still satisfy every conservation law, and on a phase-free stream
// the IPC estimate must stay within the declared 2% tolerance.
func TestSampledFastForwardReconstruction(t *testing.T) {
	const n = 2_000_000
	full, _ := runSynth(t, n, FullPlan())
	plan := Plan{Mode: Sampled, FFUops: 100_000, WarmupUops: 20_000, WindowCycles: 5_000}
	got, est := runSynth(t, n, plan)
	if est == nil {
		t.Fatal("no estimate")
	}
	if est.FFUops == 0 {
		t.Fatal("plan with FFUops ran no fast-forward µops")
	}
	if err := got.CheckConservation(); err != nil {
		t.Errorf("conservation after ff reconstruction: %v", err)
	}
	if gu, fu := got.Get(counters.Instructions), full.Get(counters.Instructions); gu != fu {
		t.Errorf("retired µops %d != full %d", gu, fu)
	}
	gIPC, fIPC := got.IPC(), full.IPC()
	if d := (gIPC - fIPC) / fIPC; d > 0.02 || d < -0.02 {
		t.Errorf("ff-sampled IPC %.4f vs full %.4f: %+.2f%% error, tolerance 2%%", gIPC, fIPC, 100*d)
	}
	if est.MeasuredPct >= 100 {
		t.Errorf("measured%% = %v with a fast-forward tier", est.MeasuredPct)
	}
}

// TestFinishIdempotent: the harness contract says Finish is called once,
// but a second call must not re-fold the functional cycles into the
// counter file (double counting) — it returns the same estimate.
func TestFinishIdempotent(t *testing.T) {
	cpu := core.New(core.DefaultConfig(false))
	cpu.AttachFeed(0, &synthFeed{src: &isa.SliceSource{Uops: synthUops(500_000)}})
	ctrl := NewController(cpu, DefaultSampledPlan())
	for {
		adv, err := ctrl.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if adv == 0 {
			break
		}
	}
	first := ctrl.Finish()
	cycles := cpu.Counters().Get(counters.Cycles)
	second := ctrl.Finish()
	if first != second {
		t.Error("second Finish returned a different estimate")
	}
	if got := cpu.Counters().Get(counters.Cycles); got != cycles {
		t.Errorf("second Finish moved the cycle counter %d → %d", cycles, got)
	}
}

// TestControllerCycleBudget: Run's maxCycles contract must hold across
// phase boundaries — the controller never overshoots the budget by more
// than one functional span's rounding.
func TestControllerCycleBudget(t *testing.T) {
	cpu := core.New(core.DefaultConfig(false))
	cpu.AttachFeed(0, &synthFeed{src: &isa.SliceSource{Uops: synthUops(2_000_000)}})
	ctrl := NewController(cpu, DefaultSampledPlan())
	for i := 0; i < 50; i++ {
		before := cpu.Now()
		adv, err := ctrl.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		if adv == 0 {
			break
		}
		if got := cpu.Now() - before; got != adv {
			t.Fatalf("reported advance %d != clock advance %d", adv, got)
		}
	}
	ctrl.Finish()
	if err := cpu.Counters().CheckConservation(); err != nil {
		t.Errorf("conservation after budgeted stepping: %v", err)
	}
}

// Package sampling is the interval-sampling layer over the cycle-accurate
// engine (DESIGN.md §10): the Pac-Sim-style recipe of fast-forwarding
// functionally, warming the stateful structures, taking short detailed
// windows, and extrapolating whole-run counters from the windows with an
// online error estimate.
//
// A cell runs as a repeating phase cycle
//
//	window (detailed) → fast-forward (unwarmed) → warmup (warmed functional)
//
// starting with a detailed window: the machine is genuinely cold at cycle
// 0, so the first window measures the cold-start phase, and every
// functional span is clocked by the CPI of the window that just closed.
// Each later window follows its warmup span, so it measures freshly
// warmed structures. Setting both the fast-forward and warmup spans to
// zero degenerates to 100% detailed execution, which is byte-identical to
// Full mode; Full mode itself bypasses the controller entirely and is the
// default everywhere.
package sampling

import (
	"fmt"
	"math"
	"strings"
)

// Mode selects between the full cycle-accurate engine and interval
// sampling.
type Mode int

const (
	// Full runs every µop through the detailed pipeline model — today's
	// behavior, bit-identical to a build without this package.
	Full Mode = iota
	// Sampled runs the warmup/window/fast-forward phase cycle and
	// reconstructs whole-run counters from the detailed windows.
	Sampled
)

// String returns the -sim-mode spelling of m.
func (m Mode) String() string {
	if m == Sampled {
		return "sampled"
	}
	return "full"
}

// ParseMode maps a -sim-mode argument to a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "full":
		return Full, nil
	case "sampled":
		return Sampled, nil
	}
	return Full, fmt.Errorf("unknown sim mode %q (full|sampled)", s)
}

// Plan is one cell's sampling regime.
type Plan struct {
	// Mode selects full or sampled simulation; the zero value is Full,
	// under which the remaining fields are ignored.
	Mode Mode
	// FFUops is the unwarmed fast-forward span per interval, in µops:
	// purely architectural execution that touches no cache, TLB or
	// predictor state. Zero keeps every functional µop warmed (slower
	// fast-forward, exact structure statistics).
	FFUops uint64
	// WarmupUops is the warmed functional span per interval, in µops:
	// caches, TLBs and predictors see every access so the following
	// detailed window measures a warm machine.
	WarmupUops uint64
	// WindowCycles is the detailed-window length, in cycles of full
	// pipeline simulation per interval.
	WindowCycles uint64
}

// DefaultSampledPlan returns the default sampled regime: no unwarmed
// fast-forward, 2000 warmed functional µops per interval, 1000-cycle
// detailed windows. With FFUops zero every functional µop still performs
// its cache, TLB and predictor accesses, so all structure counters stay
// exact — only cycle counts are estimated — and the accuracy-regression
// suite pins this exact regime to ≤2% IPC error on every golden
// benchmark. It is deliberately conservative: sized for the tiny-scale
// workloads the campaigns run at (roughly 1–15M µops), where a long
// fast-forward interval would leave too few windows to bound the error.
// Long, phase-stable workloads can raise -ff-interval (trading exact
// structure counters for estimates) to reach the 10–50× regime that
// BenchmarkSampledCampaign pins.
func DefaultSampledPlan() Plan {
	return Plan{Mode: Sampled, WarmupUops: 2_000, WindowCycles: 1_000}
}

// FullPlan returns the default full-simulation plan.
func FullPlan() Plan { return Plan{Mode: Full} }

// Sampled reports whether the plan uses interval sampling.
func (p Plan) Sampled() bool { return p.Mode == Sampled }

// Validate rejects nonsensical regimes.
func (p Plan) Validate() error {
	if p.Mode != Full && p.Mode != Sampled {
		return fmt.Errorf("sampling: unknown mode %d", int(p.Mode))
	}
	if p.Mode == Full {
		return nil
	}
	if p.WindowCycles == 0 {
		return fmt.Errorf("sampling: sampled mode needs a detailed window (-window > 0)")
	}
	return nil
}

// Tag returns the journal-config descriptor of the plan: empty for Full
// (so journals written before sampling existed, and journals of full-mode
// campaigns, keep their exact config strings), and a canonical
// "sim=sampled(...)" clause otherwise. Appending it to a tool's journal
// config string is what makes -resume refuse to mix modes or regimes.
func (p Plan) Tag() string {
	if p.Mode != Sampled {
		return ""
	}
	return fmt.Sprintf(" sim=sampled(ff=%d,warm=%d,win=%d)", p.FFUops, p.WarmupUops, p.WindowCycles)
}

// Estimate is the per-cell reconstruction record: how the run was split
// across fidelity tiers and how trustworthy the extrapolation is. It is
// attached to harness results, obs series and journal payloads.
type Estimate struct {
	// Mode is the plan's mode spelling ("sampled").
	Mode string `json:"mode"`
	// DetailedUops/DetailedCycles are the µops retired and cycles spent
	// under the detailed pipeline model (windows plus pipeline drains).
	DetailedUops   uint64 `json:"detailed_uops"`
	DetailedCycles uint64 `json:"detailed_cycles"`
	// WarmUops counts µops executed by the warmed functional tier,
	// FFUops by the unwarmed fast-forward tier.
	WarmUops uint64 `json:"warm_uops"`
	FFUops   uint64 `json:"ff_uops"`
	// FuncCycles is the estimated cycle cost of the functional µops
	// (clocked at the live window CPI); HaltCycles the all-blocked cycles
	// observed during functional execution.
	FuncCycles uint64 `json:"func_cycles"`
	HaltCycles uint64 `json:"halt_cycles"`
	// Windows is how many detailed windows closed; WindowIPC the pooled
	// IPC across them.
	Windows   int     `json:"windows"`
	WindowIPC float64 `json:"window_ipc"`
	// IPCRelErr is the relative standard error of the per-window IPCs
	// (stdev / (mean·√n)): the confidence measure the paper-style ≤2%
	// tolerance is checked against.
	IPCRelErr float64 `json:"ipc_rel_err"`
	// DetailPct is the percentage of all µops retired in detailed mode;
	// MeasuredPct additionally includes the warmed functional tier, whose
	// structure statistics are exact.
	DetailPct   float64 `json:"detail_pct"`
	MeasuredPct float64 `json:"measured_pct"`
	// ContextWindowIPC is the pooled per-logical-processor IPC across the
	// detailed windows, indexed by global context number — the sampled
	// analogue of the per-thread breakdown a full run's per-context
	// retirement gives. Omitted when no window closed.
	ContextWindowIPC []float64 `json:"context_window_ipc,omitempty"`
}

// TotalUops is the whole-run µop count across all tiers.
func (e *Estimate) TotalUops() uint64 { return e.DetailedUops + e.WarmUops + e.FFUops }

// relStdErr returns stdev/(mean·√n) of xs, or 0 with fewer than two
// samples (a single window carries no spread information).
func relStdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	varsum := 0.0
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(xs)-1))
	return sd / (mean * math.Sqrt(float64(len(xs))))
}

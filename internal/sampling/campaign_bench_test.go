package sampling

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/isa"
)

// BenchmarkSampledCampaign pins the acceptance speedup of interval
// sampling: one campaign-scale SMT cell (two contexts × 4M synthetic
// µops, the same stream shape as core's BenchmarkSimSpeed, so MB/s here
// is directly comparable to the seed_BenchmarkSimSpeed entry in
// BENCH_core.json) run end to end in full mode and under a fast-forward
// sampled regime. scripts/bench_core.sh records both and derives the
// full/sampled ratio; the acceptance bar is ≥10×.
//
// The sampled regime is the long-workload one documented in README
// ("Fast campaigns"): -ff-interval 2000000 -warmup 100000 -window 5000.
// It leans on the confidence-released ramp (controller.go): after eight
// agreeing windows the fast-forward spans stretch to rampFactorMax
// windows' worth of µops, which is what clears 10× — the conservative
// default plan stays accuracy-first and much denser.
// campaignUops matches the µop mix, dependency chains and 2MB data
// footprint of core's benchUops — the shape that makes the MB/s figures
// here line up with the seed entry, and a workload on which detailed
// execution actually pays the per-cycle costs sampling is meant to skip —
// but scatters the load addresses with a deterministic LCG instead of
// benchUops's linear wrap. The linear stream's cache behavior is a pure
// function of position modulo the wrap period, so a detailed window's
// hit rate would depend on how the sampling intervals happen to align
// with the wrap; the scattered stream makes every window statistically
// interchangeable, which is the steady-phase property the confidence-
// released ramp is designed to detect.
func campaignUops(n int) []isa.Uop {
	uops := make([]isa.Uop, n)
	lcg := uint64(1)
	for i := range uops {
		c := isa.ALU
		switch i % 5 {
		case 1:
			c = isa.Load
		case 3:
			c = isa.Branch
		}
		lcg = lcg*6364136223846793005 + 1442695040888963407
		uops[i] = isa.Uop{PC: uint64(i % 3000), Class: c, Addr: 0x2000_0000 + (lcg%(1<<21))&^63, DepDist: uint8(i % 3), Taken: i%3 == 0, Target: 5}
	}
	return uops
}

func BenchmarkSampledCampaign(b *testing.B) {
	uops := campaignUops(8_000_000)
	for _, tc := range []struct {
		name string
		plan Plan
	}{
		{"full", FullPlan()},
		{"sampled", Plan{Mode: Sampled, FFUops: 2_000_000, WarmupUops: 100_000, WindowCycles: 5_000}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cpu := core.New(core.DefaultConfig(true))
				cpu.AttachFeed(0, &synthFeed{src: &isa.SliceSource{Uops: uops}})
				cpu.AttachFeed(1, &synthFeed{src: &isa.SliceSource{Uops: uops}})
				ctrl := NewController(cpu, tc.plan)
				for {
					adv, err := ctrl.Run(0)
					if err != nil {
						b.Fatal(err)
					}
					if adv == 0 {
						break
					}
				}
				ctrl.Finish()
			}
			b.SetBytes(16_000_000)
		})
	}
}

// Package isa defines the micro-operation (µop) vocabulary exchanged between
// workload front ends (the JVM interpreter, the OS kernel model) and the SMT
// execution core.
//
// The Pentium 4 decodes IA-32 instructions into µops and its trace cache,
// issue machinery and retirement logic all operate at µop granularity; the
// paper's counters (retired µops, trace-cache misses per 1000 instructions,
// and so on) are likewise µop-denominated. This package is the narrow waist
// of the simulator: everything upstream produces streams of Uop values and
// everything downstream consumes them.
package isa

import "fmt"

// Class partitions µops by the pipeline resources they occupy.
type Class uint8

// µop classes. The execution core maps each class to an execution port
// group and a base latency (see core.Params).
const (
	// Nop occupies a retirement slot but no execution resources.
	Nop Class = iota
	// ALU is a single-cycle integer operation.
	ALU
	// Mul is a multi-cycle integer multiply/divide.
	Mul
	// FP is a floating-point arithmetic operation.
	FP
	// FPDiv is a long-latency floating-point divide/sqrt.
	FPDiv
	// Load reads memory through the data-cache hierarchy.
	Load
	// Store writes memory through the data-cache hierarchy.
	Store
	// Branch is a conditional or unconditional control transfer. Its
	// Taken/Target fields carry the resolved outcome; prediction happens
	// in the front end against that ground truth.
	Branch
	// Call is a control transfer that also pushes a return address; it
	// exercises the BTB like Branch but is always taken.
	Call
	// Ret is an indirect control transfer through the return stack.
	Ret
	// Syscall transfers control to the OS substrate (kernel mode). The
	// core drains the pipeline, then the scheduler bills kernel cycles.
	Syscall
	// Fence serializes: it retires only after all older µops complete
	// and stalls younger µops until it retires (used for monitorenter /
	// monitorexit and GC safepoints).
	Fence
	numClasses
)

// NumClasses is the number of distinct µop classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	Nop:     "nop",
	ALU:     "alu",
	Mul:     "mul",
	FP:      "fp",
	FPDiv:   "fpdiv",
	Load:    "load",
	Store:   "store",
	Branch:  "branch",
	Call:    "call",
	Ret:     "ret",
	Syscall: "syscall",
	Fence:   "fence",
}

// String returns the lower-case mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses the data-cache hierarchy.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsCtl reports whether the class is a control transfer that consults the
// branch predictor and BTB.
func (c Class) IsCtl() bool { return c == Branch || c == Call || c == Ret }

// Uop is one micro-operation. Front ends fill in the resolved outcome of
// the program (addresses, branch directions); the core replays it against
// timing models.
type Uop struct {
	// PC is the virtual address of the µop's parent instruction. It
	// indexes the trace cache, ITLB, predictor and BTB.
	PC uint64
	// Addr is the virtual data address for Load/Store µops.
	Addr uint64
	// Target is the resolved target for control transfers.
	Target uint64
	// Class selects pipeline resources and base latency.
	Class Class
	// DepDist is the distance, in µops within the same thread, to the
	// producer this µop must wait for: 0 means no register dependency,
	// 1 means "depends on the immediately preceding µop", etc. The
	// interpreter derives it from operand-stack dataflow, which is what
	// makes stack-machine workloads serial and low-ILP, exactly as the
	// paper observes for Java code.
	DepDist uint8
	// Taken is the resolved direction for Branch µops.
	Taken bool
	// Indirect marks control transfers whose target varies at run time
	// (virtual dispatch, returns through the stack); the BTB mispredicts
	// them whenever its stored target is stale.
	Indirect bool
	// Kernel marks µops executed in OS mode; cycles during which the
	// oldest in-flight µop of a context is a kernel µop are billed to
	// the OS-cycle counter.
	Kernel bool
}

// Source produces the dynamic µop stream of one software thread.
//
// Fill writes µops into buf and returns the number written. A return of 0
// with done=true means the thread has exited; a return of 0 with done=false
// means the thread is blocked (e.g. waiting on a monitor or on GC) and will
// produce more µops later.
type Source interface {
	// Fill writes the next µops of the thread into buf, returning how
	// many were written and whether the thread has terminated.
	Fill(buf []Uop) (n int, done bool)
}

// SliceSource replays a fixed µop slice once; it is used heavily in tests
// and in the quickstart example.
type SliceSource struct {
	Uops []Uop
	pos  int
}

// Fill implements Source.
func (s *SliceSource) Fill(buf []Uop) (int, bool) {
	n := copy(buf, s.Uops[s.pos:])
	s.pos += n
	return n, s.pos == len(s.Uops)
}

// Reset rewinds the source to the beginning of its slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a function to the Source interface.
type FuncSource func(buf []Uop) (int, bool)

// Fill implements Source.
func (f FuncSource) Fill(buf []Uop) (int, bool) { return f(buf) }

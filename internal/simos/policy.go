package simos

import (
	"fmt"

	"javasmt/internal/core"
)

// Policy decides which runnable thread a hardware context runs next —
// the symbiotic-scheduling hook consulted at every dispatch boundary
// (idle seat, quantum expiry, block, exit). Implementations must be
// deterministic pure functions of the SchedView: the simulation replays
// byte-identically at any worker count and across journal resume, and a
// policy that consulted wall clocks or randomness would break that.
//
// A policy may return nil to leave the seat idle for this dispatch
// round (used to spread threads across cores before sharing contexts);
// it must then accept a thread on some other idle seat, or the machine
// would spin. The returned thread must be on the run queue.
type Policy interface {
	// Name is the registry name, as spelled by cli -policy and recorded
	// in campaign journal identities.
	Name() string
	// Pick selects the next thread for seat from v's run queue, or nil
	// to park the seat this round.
	Pick(v *SchedView, seat Seat) *Thread
}

// SchedView is the read-only machine view a Policy consults: run-queue
// order, per-thread seated metrics (Thread.IPC, Thread.CacheHostility,
// Thread.LastSeat) and live per-seat state sourced from the hardware
// (core.SeatDyn: exact per-context retired µops and ROB occupancy,
// core-level TC/L1D miss totals). Every accessor is a pure read —
// consulting the view never perturbs simulation state — and every value
// is derived from deterministic simulation state, so policy decisions
// are identical in full and sampled mode for the same µop history.
type SchedView struct {
	k   *Kernel
	now uint64
}

// Now returns the dispatch decision's cycle timestamp.
func (v *SchedView) Now() uint64 { return v.now }

// Geometry returns the machine shape being scheduled onto.
func (v *SchedView) Geometry() core.Geometry { return v.k.geo }

// QueueLen returns how many threads are waiting on the run queue.
func (v *SchedView) QueueLen() int { return v.k.runqLen }

// First returns the head of the run queue (the FIFO choice), or nil
// when the queue is empty.
func (v *SchedView) First() *Thread { return v.k.runqHead }

// EachQueued calls fn for each queued thread in FIFO (arrival) order
// until fn returns false. Policies use the stable order for
// deterministic tie-breaking: scans that keep the first of equals pick
// the longest-waiting thread.
func (v *SchedView) EachQueued(fn func(*Thread) bool) {
	for t := v.k.runqHead; t != nil; t = t.next {
		if !fn(t) {
			return
		}
	}
}

// SeatThread returns the thread currently running on seat, or nil when
// the seat is idle.
func (v *SchedView) SeatThread(s Seat) *Thread {
	return v.k.cpus[v.k.geo.Index(s)].current
}

// SeatDyn returns the seat's live hardware metrics (per-context retired
// µops and ROB occupancy, core-level cache-miss totals).
func (v *SchedView) SeatDyn(s Seat) core.SeatDyn { return v.k.cpu.SeatDyn(s) }

// SeatIPC returns the current occupant's retired-µops-per-cycle since
// its dispatch on the seat (0 for an idle seat or a zero-cycle span).
func (v *SchedView) SeatIPC(s Seat) float64 {
	cs := v.k.cpus[v.k.geo.Index(s)]
	if cs.current == nil || v.now <= cs.runStart {
		return 0
	}
	d := v.k.cpu.SeatDyn(s)
	return float64(d.Retired-cs.startRetired) / float64(v.now-cs.runStart)
}

// PolicyNames lists the registered seating policies in presentation
// order: naive (the seed FIFO), roundrobin-core, symbiotic-ipc,
// contention-aware.
func PolicyNames() []string {
	return []string{"naive", "roundrobin-core", "symbiotic-ipc", "contention-aware"}
}

// NewPolicy resolves a registry name to a Policy. The empty string and
// "naive" resolve to nil: the kernel's built-in FIFO fast path is the
// naive policy, and a nil policy keeps it byte-identical to the seed
// timeslicer.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", "naive":
		return nil, nil
	case "roundrobin-core":
		return roundRobinCore{}, nil
	case "symbiotic-ipc":
		return symbioticIPC{}, nil
	case "contention-aware":
		return contentionAware{}, nil
	}
	return nil, fmt.Errorf("simos: unknown scheduling policy %q (have %v)", name, PolicyNames())
}

// PolicyName returns the registry name of p, spelling the nil fast path
// "naive".
func PolicyName(p Policy) string {
	if p == nil {
		return "naive"
	}
	return p.Name()
}

// roundRobinCore spreads threads across cores before sharing SMT
// contexts: while the machine is undersubscribed, only the least-loaded
// cores accept new threads, so two threads land on two different cores
// (each with a whole pipeline and private caches) instead of time-
// sharing one core's contexts. Once the run queue is at least as long
// as the idle-seat count, every seat takes work FIFO — oversubscribed,
// it degenerates to the naive timeslicer.
type roundRobinCore struct{}

func (roundRobinCore) Name() string { return "roundrobin-core" }

func (roundRobinCore) Pick(v *SchedView, seat Seat) *Thread {
	g := v.Geometry()
	idle := 0
	myOcc := 0
	leastOcc := g.ContextsPerCore + 1
	for lp := 0; lp < g.Total(); lp++ {
		s := g.SeatOf(lp)
		if v.SeatThread(s) != nil {
			if s.Core == seat.Core {
				myOcc++
			}
			continue
		}
		idle++
		// Track the lightest load among cores that still have an idle
		// seat (only such a core can absorb a parked thread).
		occ := 0
		for c := 0; c < g.ContextsPerCore; c++ {
			if v.SeatThread(Seat{Core: s.Core, Ctx: c}) != nil {
				occ++
			}
		}
		if occ < leastOcc {
			leastOcc = occ
		}
	}
	if v.QueueLen() >= idle {
		return v.First() // oversubscribed: plain FIFO
	}
	if myOcc > leastOcc {
		// A lighter core with an idle seat exists; park this seat and
		// let that core take the thread.
		return nil
	}
	return v.First()
}

// symbioticIPC pairs high-IPC threads with low-IPC threads on each core
// — the symbiosis heuristic of the SMT-scheduling literature: a thread
// that retires fast saturates issue bandwidth, so its best co-runner is
// one that waits on memory (and vice versa), while two fast threads
// convoy on the pipeline and two slow ones waste it.
type symbioticIPC struct{}

func (symbioticIPC) Name() string { return "symbiotic-ipc" }

func (symbioticIPC) Pick(v *SchedView, seat Seat) *Thread {
	if t := firstNovice(v); t != nil {
		return t // learning phase: seat unknown threads FIFO
	}
	co, known := coRunnerMean(v, seat, (*Thread).IPC)
	if !known {
		return v.First() // no co-runner history: FIFO
	}
	mean := queueMean(v, (*Thread).IPC)
	// A fast core wants a slow partner and a slow core a fast one.
	return extremeQueued(v, (*Thread).IPC, co >= mean)
}

// contentionAware separates cache-hostile threads onto different cores:
// a core whose current occupants are missing heavily in the trace cache
// and L1D gets a cache-friendly thread next (so the hostile working set
// keeps its private caches), while a quiet core absorbs the next
// hostile thread.
type contentionAware struct{}

func (contentionAware) Name() string { return "contention-aware" }

func (contentionAware) Pick(v *SchedView, seat Seat) *Thread {
	if t := firstNovice(v); t != nil {
		return t
	}
	co, known := coRunnerMean(v, seat, (*Thread).CacheHostility)
	if !known {
		return v.First()
	}
	mean := queueMean(v, (*Thread).CacheHostility)
	// A hostile core wants the friendliest queued thread; a quiet core
	// takes the most hostile one off the queue.
	return extremeQueued(v, (*Thread).CacheHostility, co >= mean)
}

// firstNovice returns the first queued thread with no seated history
// (nil if all have history): metric policies seat unknowns FIFO first
// so every thread earns a measurement before being steered.
func firstNovice(v *SchedView) *Thread {
	var novice *Thread
	v.EachQueued(func(t *Thread) bool {
		if !t.HasHistory() {
			novice = t
			return false
		}
		return true
	})
	return novice
}

// coRunnerMean returns the mean of metric over the threads currently
// running on seat's sibling contexts (same core), and whether any
// co-runner with history exists.
func coRunnerMean(v *SchedView, seat Seat, metric func(*Thread) float64) (float64, bool) {
	g := v.Geometry()
	sum, n := 0.0, 0
	for ctx := 0; ctx < g.ContextsPerCore; ctx++ {
		if ctx == seat.Ctx {
			continue
		}
		if t := v.SeatThread(Seat{Core: seat.Core, Ctx: ctx}); t != nil && t.HasHistory() {
			sum += metric(t)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// queueMean returns the mean of metric over every queued thread.
func queueMean(v *SchedView, metric func(*Thread) float64) float64 {
	sum, n := 0.0, 0
	v.EachQueued(func(t *Thread) bool {
		sum += metric(t)
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// extremeQueued returns the queued thread minimizing (wantLow) or
// maximizing metric; strict comparison keeps the earliest of equals, so
// ties break toward the longest-waiting thread (deterministic and
// starvation-resistant).
func extremeQueued(v *SchedView, metric func(*Thread) float64, wantLow bool) *Thread {
	var best *Thread
	var bestVal float64
	v.EachQueued(func(t *Thread) bool {
		m := metric(t)
		if best == nil || (wantLow && m < bestVal) || (!wantLow && m > bestVal) {
			best, bestVal = t, m
		}
		return true
	})
	return best
}

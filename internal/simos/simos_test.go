package simos

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

func aluSource(n int) *isa.SliceSource {
	uops := make([]isa.Uop, n)
	for i := range uops {
		uops[i] = isa.Uop{PC: 0x400000 + uint64(i%900), Class: isa.ALU}
	}
	return &isa.SliceSource{Uops: uops}
}

func newMachine(ht bool) (*core.CPU, *Kernel) {
	cpu := core.New(core.DefaultConfig(ht))
	k := NewKernel(cpu, DefaultParams())
	return cpu, k
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	cpu, k := newMachine(false)
	p := k.NewProcess("app")
	th := p.Spawn("main", aluSource(50_000))
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State() != Exited {
		t.Fatalf("thread state = %v, want exited", th.State())
	}
	f := cpu.Counters()
	if got := f.Get(counters.Instructions); got < 50_000 {
		t.Fatalf("retired %d, want >= 50000 (user work plus kernel switches)", got)
	}
	if f.Get(counters.ContextSwitches) == 0 {
		t.Fatal("at least the initial dispatch should count as a context switch")
	}
}

func TestTwoThreadsShareBothContexts(t *testing.T) {
	cpu, k := newMachine(true)
	p := k.NewProcess("app")
	p.Spawn("t0", aluSource(40_000))
	p.Spawn("t1", aluSource(40_000))
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	f := cpu.Counters()
	if f.DTModePercent() < 50 {
		t.Fatalf("DT mode = %.1f%%, want the two threads to overlap most of the run", f.DTModePercent())
	}
}

func TestTimeslicingMultiplexesManyThreads(t *testing.T) {
	cpu := core.New(core.DefaultConfig(false))
	params := DefaultParams()
	params.Timeslice = 2_000 // several quanta per 30k-µop thread
	k := NewKernel(cpu, params)
	p := k.NewProcess("app")
	threads := make([]*Thread, 4)
	for i := range threads {
		threads[i] = p.Spawn("worker", aluSource(30_000))
	}
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, th := range threads {
		if th.State() != Exited {
			t.Fatalf("thread %d state = %v, want exited", i, th.State())
		}
	}
	f := cpu.Counters()
	// 4 threads x 30k µops at a 30k-cycle quantum must preempt repeatedly.
	if f.Get(counters.ContextSwitches) < 6 {
		t.Fatalf("context switches = %d, want several", f.Get(counters.ContextSwitches))
	}
}

func TestOSShareGrowsWithThreadCount(t *testing.T) {
	osShare := func(nThreads int) float64 {
		cpu, k := newMachine(true)
		p := k.NewProcess("app")
		per := 120_000 / nThreads
		for i := 0; i < nThreads; i++ {
			p.Spawn("worker", aluSource(per))
		}
		if _, err := cpu.Run(0); err != nil {
			t.Fatal(err)
		}
		return cpu.Counters().OSCyclePercent()
	}
	two, eight := osShare(2), osShare(8)
	if eight <= two {
		t.Fatalf("OS cycle share should grow with thread count: 2 threads %.2f%%, 8 threads %.2f%%", two, eight)
	}
}

func TestBlockAndUnblock(t *testing.T) {
	cpu, k := newMachine(false)
	p := k.NewProcess("app")

	var consumer, producer *Thread
	consumed := 0
	// The consumer blocks itself after every µop until the producer has
	// run far enough; the producer unblocks it as it finishes.
	consumer = p.Spawn("consumer", isa.FuncSource(func(buf []isa.Uop) (int, bool) {
		if consumed >= 10 {
			return 0, true
		}
		consumed++
		buf[0] = isa.Uop{PC: 0x400000, Class: isa.ALU}
		k.Block(consumer)
		return 1, false
	}))
	producer = p.Spawn("producer", isa.FuncSource(func(buf []isa.Uop) (int, bool) {
		buf[0] = isa.Uop{PC: 0x500000, Class: isa.ALU}
		k.Unblock(consumer)
		// The producer's job is done once the consumer has made all
		// of its progress; until then it keeps feeding wakeups.
		return 1, consumed >= 10
	}))
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if consumer.State() != Exited || producer.State() != Exited {
		t.Fatalf("states: consumer=%v producer=%v", consumer.State(), producer.State())
	}
	if consumed != 10 {
		t.Fatalf("consumed = %d, want 10", consumed)
	}
	if cpu.Counters().Get(counters.MonitorBlocks) < 10 {
		t.Fatal("blocks should be counted")
	}
}

func TestDeadlockIsDetected(t *testing.T) {
	cpu, k := newMachine(false)
	p := k.NewProcess("app")
	var th *Thread
	th = p.Spawn("selfblock", isa.FuncSource(func(buf []isa.Uop) (int, bool) {
		buf[0] = isa.Uop{PC: 0x400000, Class: isa.ALU}
		k.Block(th)
		return 1, false
	}))
	if _, err := cpu.Run(0); err == nil {
		t.Fatal("a permanently blocked system must be reported")
	}
}

func TestProcessSwitchFlushesFrontEnd(t *testing.T) {
	// Two processes time-sharing one context force repeated address-space
	// switches; the same workload as two threads of one process keeps the
	// front-end state warm, so it must see fewer trace-cache misses.
	run := func(procs int) uint64 {
		cpu := core.New(core.DefaultConfig(false))
		params := DefaultParams()
		params.Timeslice = 5_000
		k := NewKernel(cpu, params)
		if procs == 1 {
			p := k.NewProcess("app")
			p.Spawn("t0", aluSource(100_000))
			p.Spawn("t1", aluSource(100_000))
		} else {
			k.NewProcess("a").Spawn("t0", aluSource(100_000))
			k.NewProcess("b").Spawn("t1", aluSource(100_000))
		}
		if _, err := cpu.Run(0); err != nil {
			t.Fatal(err)
		}
		return cpu.Counters().Get(counters.TCMisses)
	}
	same, diff := run(1), run(2)
	if diff <= same {
		t.Fatalf("cross-process switching should cost trace-cache misses: same-proc %d, cross-proc %d", same, diff)
	}
}

func TestUnblockNonBlockedIsNoop(t *testing.T) {
	cpu, k := newMachine(false)
	p := k.NewProcess("app")
	th := p.Spawn("main", aluSource(100))
	k.Unblock(th) // runnable: no-op
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if th.State() != Exited {
		t.Fatal("thread should still exit normally")
	}
}

func TestBlockExitedPanics(t *testing.T) {
	cpu, k := newMachine(false)
	p := k.NewProcess("app")
	th := p.Spawn("main", aluSource(100))
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Block(th)
}

func TestRunnableCount(t *testing.T) {
	_, k := newMachine(false)
	p := k.NewProcess("app")
	a := p.Spawn("a", aluSource(10))
	p.Spawn("b", aluSource(10))
	if got := k.RunnableCount(); got != 2 {
		t.Fatalf("runnable = %d, want 2", got)
	}
	k.Block(a)
	if got := k.RunnableCount(); got != 1 {
		t.Fatalf("runnable after block = %d, want 1", got)
	}
}

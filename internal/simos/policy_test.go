package simos

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/counters"
)

func TestPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if got := PolicyName(p); got != name {
			t.Fatalf("PolicyName(NewPolicy(%q)) = %q", name, got)
		}
	}
	if p, err := NewPolicy(""); err != nil || p != nil {
		t.Fatalf("NewPolicy(\"\") = %v, %v; want the nil seed FIFO", p, err)
	}
	if p, err := NewPolicy("naive"); err != nil || p != nil {
		t.Fatalf("NewPolicy(naive) = %v, %v; want the nil seed FIFO", p, err)
	}
	if _, err := NewPolicy("bogus"); err == nil {
		t.Fatal("NewPolicy(bogus) succeeded, want an error naming the registry")
	}
}

// TestRunqMatchesReferenceModel drives the intrusive run queue through
// pushes, head pops and arbitrary removals mirrored against a plain
// slice, checking order after every operation.
func TestRunqMatchesReferenceModel(t *testing.T) {
	cpu := core.New(core.DefaultConfig(false))
	k := New(cpu, Options{})
	p := k.NewProcess("app")

	var model []*Thread
	checkOrder := func(step string) {
		t.Helper()
		if k.runqLen != len(model) {
			t.Fatalf("%s: runqLen = %d, model %d", step, k.runqLen, len(model))
		}
		i := 0
		v := &SchedView{k: k}
		v.EachQueued(func(th *Thread) bool {
			if i >= len(model) || model[i] != th {
				t.Fatalf("%s: queue order diverges from model at %d", step, i)
			}
			i++
			return true
		})
		if i != len(model) {
			t.Fatalf("%s: queue has %d entries, model %d", step, i, len(model))
		}
	}

	var ts []*Thread
	for i := 0; i < 8; i++ {
		th := p.Spawn("t", aluSource(10))
		ts = append(ts, th)
		model = append(model, th)
		checkOrder("spawn")
	}
	// Remove from the middle, the head and the tail.
	for _, idx := range []int{3, 0, 5} {
		victim := model[idx]
		k.runqRemove(victim)
		model = append(model[:idx], model[idx+1:]...)
		checkOrder("remove")
	}
	// Re-queue the removed threads; FIFO appends at the tail.
	for _, th := range []*Thread{ts[3], ts[0], ts[7]} {
		k.runqPush(th)
		model = append(model, th)
		checkOrder("repush")
	}
	// Pop every head.
	for len(model) > 0 {
		head := k.runqHead
		if head != model[0] {
			t.Fatalf("head = %v, model %v", head.ID, model[0].ID)
		}
		k.runqRemove(head)
		model = model[1:]
		checkOrder("pop")
	}
	if k.runqHead != nil || k.runqTail != nil {
		t.Fatal("emptied queue still has head/tail links")
	}
}

func TestDoneCountsBlockedThreads(t *testing.T) {
	cpu := core.New(core.DefaultConfig(false))
	k := New(cpu, Options{})
	p := k.NewProcess("app")
	th := p.Spawn("t", aluSource(10))
	if k.cpus[0].Done() {
		t.Fatal("Done with a runnable thread")
	}
	k.Block(th)
	if k.cpus[0].Done() {
		t.Fatal("Done with a blocked thread (it may be unblocked later)")
	}
	// Seed semantics: re-blocking is idempotent on state, so the blocked
	// count must not double-count.
	k.Block(th)
	k.Unblock(th)
	if k.blockedCount != 0 {
		t.Fatalf("blockedCount = %d after unblock, want 0", k.blockedCount)
	}
}

// TestThreadMigrationsCounted oversubscribes a two-context machine so
// preempted threads re-dispatch on the sibling context; the migration
// counter must record those moves even under the seed FIFO (where the
// count is observation-only and the µop stream stays byte-identical).
func TestThreadMigrationsCounted(t *testing.T) {
	cpu := core.New(core.DefaultConfig(true))
	k := New(cpu, Options{Params: Params{Timeslice: 2_000}})
	p := k.NewProcess("app")
	for i := 0; i < 3; i++ {
		p.Spawn("t", aluSource(60_000))
	}
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Counters().Get(counters.ThreadMigrations); got == 0 {
		t.Fatal("no thread migrations counted on an oversubscribed 2-context machine")
	}
}

// fifoPolicy is the seed FIFO spelled as an explicit Policy: the same
// decisions as the nil fast path, but through the policy code path with
// its migration cost model and per-thread metric attribution.
type fifoPolicy struct{}

func (fifoPolicy) Name() string                      { return "fifo-test" }
func (fifoPolicy) Pick(v *SchedView, _ Seat) *Thread { return v.First() }

// TestPolicyPathAttributesThreadMetrics checks that running under a
// non-nil policy populates the per-thread scheduling history that the
// metric-driven policies consult.
func TestPolicyPathAttributesThreadMetrics(t *testing.T) {
	cpu := core.New(core.DefaultConfig(true))
	k := New(cpu, Options{Params: Params{Timeslice: 2_000}, Policy: fifoPolicy{}})
	p := k.NewProcess("app")
	var ts []*Thread
	for i := 0; i < 3; i++ {
		ts = append(ts, p.Spawn("t", aluSource(60_000)))
	}
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, th := range ts {
		if !th.HasHistory() {
			t.Fatalf("thread %d has no seated history after running to completion", th.ID)
		}
		if th.IPC() <= 0 {
			t.Fatalf("thread %d IPC = %v, want > 0", th.ID, th.IPC())
		}
	}
}

// seatThread fakes a running occupant for policy unit tests.
func seatThread(k *Kernel, s Seat, th *Thread) {
	cs := k.cpus[k.geo.Index(s)]
	cs.current = th
	th.state = Running
	th.everRan = true
	th.lastSeat = s
}

// queuedWithHistory spawns a thread and stamps a synthetic scheduling
// history so metric policies treat it as known.
func queuedWithHistory(p *Process, cycles, retired, misses uint64) *Thread {
	th := p.Spawn("t", aluSource(10))
	th.everRan = true
	th.ranCycles = cycles
	th.ranRetired = retired
	th.ranMisses = misses
	return th
}

// geomKernel builds a machine of the given shape under pol.
func geomKernel(g core.Geometry, pol Policy) *Kernel {
	cfg := core.DefaultConfig(false)
	cfg.Geometry = g
	return New(core.New(cfg), Options{Policy: pol})
}

func TestSymbioticIPCPairsFastWithSlow(t *testing.T) {
	k := geomKernel(core.Geometry{Cores: 2, ContextsPerCore: 2}, symbioticIPC{})
	p := k.NewProcess("app")

	fast := queuedWithHistory(p, 1000, 2000, 0) // IPC 2.0
	k.runqRemove(fast)
	seatThread(k, Seat{Core: 0, Ctx: 0}, fast)

	slow := queuedWithHistory(p, 1000, 200, 0) // IPC 0.2
	mid := queuedWithHistory(p, 1000, 1000, 0) // IPC 1.0
	fast2 := queuedWithHistory(p, 1000, 1900, 0)

	v := &SchedView{k: k, now: 1}
	// Seat next to the fast thread: wants the slowest queued thread.
	if got := (symbioticIPC{}).Pick(v, Seat{Core: 0, Ctx: 1}); got != slow {
		t.Fatalf("co-runner of fast thread = %v, want the slowest (IPC %v)", got.IPC(), slow.IPC())
	}
	// Now seat the slow thread alone on core 1 and ask for its partner:
	// wants the fastest queued thread.
	k.runqRemove(slow)
	seatThread(k, Seat{Core: 1, Ctx: 0}, slow)
	if got := (symbioticIPC{}).Pick(v, Seat{Core: 1, Ctx: 1}); got != fast2 {
		t.Fatalf("co-runner of slow thread has IPC %v, want the fastest", got.IPC())
	}
	_ = mid
}

func TestMetricPoliciesSeatNovicesFirst(t *testing.T) {
	k := geomKernel(core.Geometry{Cores: 1, ContextsPerCore: 2}, symbioticIPC{})
	p := k.NewProcess("app")
	veteran := queuedWithHistory(p, 1000, 1000, 0)
	novice := p.Spawn("novice", aluSource(10))
	v := &SchedView{k: k, now: 1}
	if got := (symbioticIPC{}).Pick(v, Seat{Core: 0, Ctx: 0}); got != novice {
		t.Fatalf("picked a veteran over a measurement-less novice")
	}
	_ = veteran
}

func TestRoundRobinCoreSpreadsBeforeSharing(t *testing.T) {
	k := geomKernel(core.Geometry{Cores: 2, ContextsPerCore: 2}, roundRobinCore{})
	p := k.NewProcess("app")

	occupant := p.Spawn("t0", aluSource(10))
	k.runqRemove(occupant)
	seatThread(k, Seat{Core: 0, Ctx: 0}, occupant)
	waiting := p.Spawn("t1", aluSource(10))

	v := &SchedView{k: k, now: 1}
	// Core 0 already has an occupant and core 1 is empty: its second
	// context must park so core 1 takes the thread.
	if got := (roundRobinCore{}).Pick(v, Seat{Core: 0, Ctx: 1}); got != nil {
		t.Fatalf("loaded core accepted %v, want parked seat", got.ID)
	}
	if got := (roundRobinCore{}).Pick(v, Seat{Core: 1, Ctx: 0}); got != waiting {
		t.Fatal("idle core refused the waiting thread")
	}
}

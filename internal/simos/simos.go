// Package simos is the operating-system substrate: a timeslice scheduler
// in the style of the RedHat Linux 9 (2.4-series) kernel the paper ran,
// multiplexing software threads onto the processor's hardware contexts.
//
// It supplies each logical processor's core.Feed. Scheduling work is
// visible to the micro-architecture the same way it was in the paper:
// context-switch paths execute kernel-mode µops from a kernel code region
// (polluting the trace cache, ITLB and BTB), and — true to the O(n)
// 2.4 scheduler — the cost of picking the next thread grows with the run
// queue length, which is what makes the paper's "OS cycle percentage
// increases with the number of threads" observation come out of the
// model rather than being asserted.
//
// The kernel is geometry-aware: threads run on Seats (core × SMT context
// slot, core.Seat) rather than bare logical-processor indices, and a
// pluggable seating Policy (policy.go) is consulted at every dispatch
// boundary. The default nil policy is the seed FIFO timeslicer,
// byte-identical to the pre-policy kernel; metric-driven policies re-seat
// threads across cores, paying an explicit migration cost (the thread's
// tagged front-end state is flushed from its old seat and extra kernel
// µops are charged, counted as counters.ThreadMigrations).
package simos

import (
	"fmt"

	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// Seat is the geometry-aware hardware-context identity threads are
// scheduled onto (core × SMT context slot). It aliases core.Seat: the
// kernel and its policies speak the same coordinates as the machine.
type Seat = core.Seat

// KernelCodeBase is the µop-granular PC base of kernel code. It is far
// from any user code region, so kernel execution drags its own lines into
// the trace cache and its own pages into the ITLB.
const KernelCodeBase = 1 << 31

// kernelDataBase is the byte address of kernel data structures.
const kernelDataBase = 0xF000_0000

// Params tunes the scheduler.
type Params struct {
	// Timeslice is the scheduling quantum in cycles. Real quanta are
	// tens of milliseconds; simulated runs are scaled down (DESIGN.md
	// §5), so the default keeps the switches-per-instruction ratio in
	// a realistic band for runs of 10^6-10^7 µops.
	Timeslice uint64
	// SwitchBaseUops is the fixed µop cost of a context switch.
	SwitchBaseUops int
	// SwitchPerThreadUops is the extra cost per runnable thread —
	// the O(n) goodness() scan of the 2.4 scheduler.
	SwitchPerThreadUops int
	// MigrationUops is the extra kernel-µop cost charged when a seating
	// policy dispatches a thread onto a different seat than it last ran
	// on (task-struct and run-queue rebalancing). It applies only under
	// a non-nil Policy: the seed FIFO timeslicer predates the migration
	// model and stays byte-identical to it.
	MigrationUops int
}

// DefaultParams returns the default scheduler tuning.
func DefaultParams() Params {
	return Params{Timeslice: 30_000, SwitchBaseUops: 120, SwitchPerThreadUops: 12, MigrationUops: 40}
}

// ThreadState is the lifecycle state of a software thread.
type ThreadState int

// Thread lifecycle states.
const (
	Runnable ThreadState = iota
	Running
	Blocked
	Exited
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Process groups threads that share an address space. Switching between
// threads of different processes invalidates the per-context virtually
// tagged front-end state, as a CR3 change did on the paper machine.
type Process struct {
	ID   int
	Name string
	k    *Kernel
}

// Thread is one schedulable software thread.
type Thread struct {
	ID   int
	Name string
	Proc *Process
	Src  isa.Source

	state ThreadState
	done  bool

	// Intrusive run-queue links: the FIFO queue is a doubly linked list
	// threaded through its members, so enqueue, dequeue-head and removal
	// of an arbitrary thread (Block, policy picks from the middle) are
	// all O(1) while preserving exact FIFO order.
	prev, next *Thread
	queued     bool

	// Seating history for policies: where the thread last ran and its
	// accumulated seated metrics (maintained only under a non-nil
	// Policy; the naive fast path skips the accounting).
	lastSeat   Seat
	everRan    bool
	ranCycles  uint64 // cycles spent seated
	ranRetired uint64 // µops retired while seated
	ranMisses  uint64 // core TC+L1D misses while seated (shared blame)
}

// State returns the thread's current lifecycle state.
func (t *Thread) State() ThreadState { return t.state }

// HasRun reports whether the thread has ever been dispatched.
func (t *Thread) HasRun() bool { return t.everRan }

// HasHistory reports whether the thread has accumulated seated metrics
// (at least one descheduled quantum under a metric-tracking policy), so
// IPC and CacheHostility are meaningful.
func (t *Thread) HasHistory() bool { return t.ranCycles > 0 }

// LastSeat returns the seat the thread last ran on (zero before its
// first dispatch; check HasRun).
func (t *Thread) LastSeat() Seat { return t.lastSeat }

// IPC returns the thread's lifetime retired-µops-per-cycle while seated
// — the symbiotic-ipc pairing signal. It is zero before the thread has
// history (and always under the naive fast path, which skips per-thread
// accounting).
func (t *Thread) IPC() float64 {
	if t.ranCycles == 0 {
		return 0
	}
	return float64(t.ranRetired) / float64(t.ranCycles)
}

// CacheHostility returns the TC+L1D misses per kilo-µop attributed to
// the thread while seated. The caches keep core-level miss totals, not
// per-context ones, so co-resident threads share the blame for a core's
// misses; the signal still separates cache-hostile threads from compute-
// bound ones, which is all the contention-aware policy needs.
func (t *Thread) CacheHostility() float64 {
	if t.ranRetired == 0 {
		return 0
	}
	return float64(t.ranMisses) * 1000 / float64(t.ranRetired)
}

// Kernel is the scheduler instance. It is not safe for concurrent use;
// the simulation is single-goroutine by design (deterministic replay).
type Kernel struct {
	cpu     *core.CPU
	file    *counters.File
	geo     core.Geometry
	params  Params
	policy  Policy
	procs   []*Process
	threads []*Thread
	cpus    []*cpuState
	nextTID int

	// FIFO run queue as an intrusive doubly linked list (see Thread).
	runqHead *Thread
	runqTail *Thread
	runqLen  int
	// blockedCount tracks threads in the Blocked state so Done() is O(1)
	// instead of scanning every thread ever spawned.
	blockedCount int

	view SchedView
}

type cpuState struct {
	k          *Kernel
	seat       Seat
	idx        int // flat LP index: the core.AttachFeed / obs-track shim
	current    *Thread
	lastProc   int // process that last ran here; -1 = none
	sliceStart uint64
	switchSeq  uint64 // varies kernel data addresses across switches
	runStart   uint64 // dispatch cycle of current, for the trace track

	// Dispatch-time metric snapshots, diffed at deschedule to attribute
	// retired µops and core misses to the departing thread (maintained
	// only under a non-nil Policy).
	startRetired uint64
	startMisses  uint64
}

// deschedule ends the thread's occupancy of this seat: it reports the
// dispatch-to-switch span to the run tracer (a detached observer makes
// that a no-op) and, under a metric-tracking policy, folds the seat's
// retired-µop and core-miss deltas into the thread's seated history.
func (c *cpuState) deschedule(t *Thread, now uint64) {
	k := c.k
	if r := k.cpu.Obs(); r != nil {
		r.ThreadSlice(c.idx, t.Name, c.runStart, now)
	}
	if k.policy != nil {
		d := k.cpu.SeatDyn(c.seat)
		t.ranCycles += now - c.runStart
		t.ranRetired += d.Retired - c.startRetired
		t.ranMisses += d.CoreTCMisses + d.CoreL1DMisses - c.startMisses
	}
	c.current = nil
}

// Options configures a kernel: scheduler tuning plus the seating policy.
// It is the single constructor-surface for every layer above (the
// harness's newKernel derives one from its own Options); direct Params
// plumbing via NewKernel is deprecated.
type Options struct {
	// Params tunes the timeslicer. Zero fields take their DefaultParams
	// values, so a partial override (say, only Timeslice) keeps the rest
	// of the tuning at the defaults.
	Params Params
	// Policy decides thread seating at dispatch boundaries. nil is the
	// seed FIFO timeslicer (the "naive" registry name), byte-identical
	// to the pre-policy kernel.
	Policy Policy
}

// New builds a kernel driving cpu under opts and wires its feeds into
// every hardware context.
func New(cpu *core.CPU, opts Options) *Kernel {
	def := DefaultParams()
	p := opts.Params
	if p.Timeslice == 0 {
		p.Timeslice = def.Timeslice
	}
	if p.SwitchBaseUops == 0 {
		p.SwitchBaseUops = def.SwitchBaseUops
	}
	if p.SwitchPerThreadUops == 0 {
		p.SwitchPerThreadUops = def.SwitchPerThreadUops
	}
	if p.MigrationUops == 0 {
		p.MigrationUops = def.MigrationUops
	}
	return newKernel(cpu, p, opts.Policy)
}

// NewKernel builds a kernel with params used verbatim (no zero-field
// defaulting) and the seed FIFO timeslicer.
//
// Deprecated: use New, which takes Options and supports seating
// policies. NewKernel remains for existing callers and tests that tune
// raw Params.
func NewKernel(cpu *core.CPU, params Params) *Kernel {
	return newKernel(cpu, params, nil)
}

func newKernel(cpu *core.CPU, params Params, pol Policy) *Kernel {
	geo := cpu.Config().Geo()
	k := &Kernel{cpu: cpu, file: cpu.CountersFile(), geo: geo, params: params, policy: pol}
	k.view.k = k
	for i := 0; i < geo.Total(); i++ {
		cs := &cpuState{k: k, seat: geo.SeatOf(i), idx: i, lastProc: -1}
		k.cpus = append(k.cpus, cs)
		cpu.AttachFeed(i, cs)
	}
	return k
}

// Policy returns the kernel's seating policy (nil for the seed FIFO).
func (k *Kernel) Policy() Policy { return k.policy }

// Geometry returns the machine shape the kernel schedules onto.
func (k *Kernel) Geometry() core.Geometry { return k.geo }

// NewProcess registers a new address space.
func (k *Kernel) NewProcess(name string) *Process {
	p := &Process{ID: len(k.procs), Name: name, k: k}
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a runnable thread in process p fed by src.
func (p *Process) Spawn(name string, src isa.Source) *Thread {
	k := p.k
	t := &Thread{ID: k.nextTID, Name: name, Proc: p, Src: src, state: Runnable}
	k.nextTID++
	k.threads = append(k.threads, t)
	k.runqPush(t)
	return t
}

// Block marks t blocked. Threads call it (through the JVM) from inside
// their own Fill; the scheduler notices at the next feed boundary. It is
// legal to block an already-blocked thread (idempotent).
func (k *Kernel) Block(t *Thread) {
	if t.state == Exited {
		panic("simos: blocking an exited thread")
	}
	if t.state == Runnable {
		k.runqRemove(t)
	}
	if t.state != Blocked {
		k.blockedCount++
	}
	t.state = Blocked
	k.file.Inc(counters.MonitorBlocks)
}

// Unblock makes t runnable again. Unblocking a runnable/running thread is
// a no-op so wakeups can race benignly.
func (k *Kernel) Unblock(t *Thread) {
	if t.state != Blocked {
		return
	}
	t.state = Runnable
	k.blockedCount--
	k.runqPush(t)
}

// runqPush appends t to the run-queue tail (FIFO arrival order).
func (k *Kernel) runqPush(t *Thread) {
	if t.queued {
		panic("simos: thread already queued")
	}
	t.queued = true
	t.prev = k.runqTail
	t.next = nil
	if k.runqTail != nil {
		k.runqTail.next = t
	} else {
		k.runqHead = t
	}
	k.runqTail = t
	k.runqLen++
}

// runqRemove unlinks t from anywhere in the run queue in O(1),
// preserving the order of the remaining threads.
func (k *Kernel) runqRemove(t *Thread) {
	if !t.queued {
		return
	}
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		k.runqHead = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		k.runqTail = t.prev
	}
	t.prev, t.next = nil, nil
	t.queued = false
	k.runqLen--
}

// RunnableCount returns how many threads are runnable or running.
func (k *Kernel) RunnableCount() int {
	n := k.runqLen
	for _, c := range k.cpus {
		if c.current != nil {
			n++
		}
	}
	return n
}

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// File exposes the machine's counter file so runtime layers above the
// kernel (the JVM) can record their own events.
func (k *Kernel) File() *counters.File { return k.file }

// --- core.Feed implementation (one per hardware context) ---

// Fill implements core.Feed.
func (c *cpuState) Fill(now uint64, buf []isa.Uop) int {
	k := c.k
	n := 0

	// Preempt on quantum expiry when someone else is waiting.
	if c.current != nil && k.runqLen > 0 && now-c.sliceStart >= k.params.Timeslice {
		prev := c.current
		c.deschedule(prev, now)
		prev.state = Runnable
		k.runqPush(prev)
	}

	// Dispatch a new thread if the seat is idle.
	if c.current == nil {
		if k.runqLen == 0 {
			return 0
		}
		next := k.runqHead
		if k.policy != nil {
			k.view.now = now
			next = k.policy.Pick(&k.view, c.seat)
			if next == nil {
				// The policy parked the seat (e.g. spreading across
				// cores before sharing contexts). Another idle seat
				// always accepts, so the queue still drains.
				return 0
			}
			if !next.queued {
				panic(fmt.Sprintf("simos: policy %q picked a thread that is not on the run queue", k.policy.Name()))
			}
		}
		k.runqRemove(next)
		extra := 0
		if next.everRan && next.lastSeat != c.seat {
			// Re-seating: the thread last ran somewhere else. The event
			// is counted under every policy; the migration cost model
			// (old-seat flush + extra kernel µops) applies only under a
			// seating policy — the seed FIFO timeslicer predates it and
			// stays byte-identical.
			k.file.Inc(counters.ThreadMigrations)
			if k.policy != nil {
				k.cpu.FlushSeat(next.lastSeat)
				extra = k.params.MigrationUops
			}
		}
		n += c.emitSwitch(buf[n:], k.runqLen+1, extra)
		if c.lastProc != next.Proc.ID {
			// Address-space change: drop this seat's virtually tagged
			// front-end state (trace lines, BTB, ITLB part).
			k.cpu.FlushSeat(c.seat)
		}
		c.lastProc = next.Proc.ID
		c.current = next
		next.state = Running
		next.everRan = true
		next.lastSeat = c.seat
		c.sliceStart = now
		c.runStart = now
		if k.policy != nil {
			d := k.cpu.SeatDyn(c.seat)
			c.startRetired = d.Retired
			c.startMisses = d.CoreTCMisses + d.CoreL1DMisses
		}
		k.file.Inc(counters.ContextSwitches)
	}

	// Run the current thread into the remaining buffer space.
	if n < len(buf) {
		got, done := c.current.Src.Fill(buf[n:])
		n += got
		switch {
		case done:
			cur := c.current
			c.deschedule(cur, now)
			cur.state = Exited
			cur.done = true
		case c.current.state == Blocked:
			// The thread blocked itself mid-fill (monitor, GC wait).
			c.deschedule(c.current, now)
		case got == 0 && n == 0:
			// A source returning 0 into an empty buffer without
			// blocking or finishing would spin the front end forever.
			// (got == 0 after switch µops is fine: sources may need
			// more space than the switch left over.)
			panic(fmt.Sprintf("simos: thread %q produced no µops while runnable", c.current.Name))
		}
	}
	return n
}

// Runnable implements core.Feed.
func (c *cpuState) Runnable(uint64) bool {
	return c.current != nil || c.k.runqLen > 0
}

// Done implements core.Feed. The blocked-thread check is O(1): the
// kernel maintains a count of Blocked threads across Block/Unblock
// instead of scanning every thread ever spawned.
func (c *cpuState) Done() bool {
	return c.current == nil && c.k.runqLen == 0 && c.k.blockedCount == 0
}

// emitSwitch writes the context-switch kernel path: save/restore µops plus
// the O(n) run-queue scan, plus any extra migration µops. All are
// kernel-mode with kernel PCs, so the switch has the same front-end
// footprint consequences as real kernel entry did on the paper machine.
func (c *cpuState) emitSwitch(buf []isa.Uop, queueLen, extra int) int {
	k := c.k
	total := k.params.SwitchBaseUops + k.params.SwitchPerThreadUops*queueLen + extra
	if total > len(buf) {
		total = len(buf)
	}
	c.switchSeq++
	base := uint64(kernelDataBase) + uint64(c.idx)<<16
	n := 0
	for n < total {
		pc := uint64(KernelCodeBase) + uint64(n%512)
		switch n % 8 {
		case 0: // load task struct field
			buf[n] = isa.Uop{PC: pc, Class: isa.Load, Addr: base + (c.switchSeq*64+uint64(n)*8)%4096, Kernel: true}
		case 3: // store register save area
			buf[n] = isa.Uop{PC: pc, Class: isa.Store, Addr: base + 4096 + uint64(n)*8%2048, Kernel: true, DepDist: 1}
		case 6: // loop branch over the run queue scan
			buf[n] = isa.Uop{PC: pc, Class: isa.Branch, Taken: n+8 < total, Target: pc - 6, Kernel: true}
		default:
			buf[n] = isa.Uop{PC: pc, Class: isa.ALU, DepDist: uint8(n % 2), Kernel: true}
		}
		n++
	}
	return n
}

// Package simos is the operating-system substrate: a timeslice scheduler
// in the style of the RedHat Linux 9 (2.4-series) kernel the paper ran,
// multiplexing software threads onto the processor's logical CPUs.
//
// It supplies each logical processor's core.Feed. Scheduling work is
// visible to the micro-architecture the same way it was in the paper:
// context-switch paths execute kernel-mode µops from a kernel code region
// (polluting the trace cache, ITLB and BTB), and — true to the O(n)
// 2.4 scheduler — the cost of picking the next thread grows with the run
// queue length, which is what makes the paper's "OS cycle percentage
// increases with the number of threads" observation come out of the
// model rather than being asserted.
package simos

import (
	"fmt"

	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// KernelCodeBase is the µop-granular PC base of kernel code. It is far
// from any user code region, so kernel execution drags its own lines into
// the trace cache and its own pages into the ITLB.
const KernelCodeBase = 1 << 31

// kernelDataBase is the byte address of kernel data structures.
const kernelDataBase = 0xF000_0000

// Params tunes the scheduler.
type Params struct {
	// Timeslice is the scheduling quantum in cycles. Real quanta are
	// tens of milliseconds; simulated runs are scaled down (DESIGN.md
	// §5), so the default keeps the switches-per-instruction ratio in
	// a realistic band for runs of 10^6-10^7 µops.
	Timeslice uint64
	// SwitchBaseUops is the fixed µop cost of a context switch.
	SwitchBaseUops int
	// SwitchPerThreadUops is the extra cost per runnable thread —
	// the O(n) goodness() scan of the 2.4 scheduler.
	SwitchPerThreadUops int
}

// DefaultParams returns the default scheduler tuning.
func DefaultParams() Params {
	return Params{Timeslice: 30_000, SwitchBaseUops: 120, SwitchPerThreadUops: 12}
}

// ThreadState is the lifecycle state of a software thread.
type ThreadState int

// Thread lifecycle states.
const (
	Runnable ThreadState = iota
	Running
	Blocked
	Exited
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Process groups threads that share an address space. Switching between
// threads of different processes invalidates the per-context virtually
// tagged front-end state, as a CR3 change did on the paper machine.
type Process struct {
	ID   int
	Name string
	k    *Kernel
}

// Thread is one schedulable software thread.
type Thread struct {
	ID    int
	Name  string
	Proc  *Process
	Src   isa.Source
	state ThreadState
	done  bool
}

// State returns the thread's current lifecycle state.
func (t *Thread) State() ThreadState { return t.state }

// Kernel is the scheduler instance. It is not safe for concurrent use;
// the simulation is single-goroutine by design (deterministic replay).
type Kernel struct {
	cpu     *core.CPU
	file    *counters.File
	params  Params
	procs   []*Process
	threads []*Thread
	runq    []*Thread
	cpus    []*cpuState
	nextTID int
}

type cpuState struct {
	k          *Kernel
	idx        int
	current    *Thread
	lastProc   int // process that last ran here; -1 = none
	sliceStart uint64
	switchSeq  uint64 // varies kernel data addresses across switches
	runStart   uint64 // dispatch cycle of current, for the trace track
}

// endSlice reports the just-descheduled thread's occupancy of this
// logical processor to the run tracer (one span per dispatch-to-switch
// interval on the per-LP track). A detached observer makes it a no-op;
// the check costs one pointer read per context switch, never per µop.
func (c *cpuState) endSlice(t *Thread, now uint64) {
	if r := c.k.cpu.Obs(); r != nil {
		r.ThreadSlice(c.idx, t.Name, c.runStart, now)
	}
}

// NewKernel builds a kernel driving cpu and wires its feeds into every
// logical processor.
func NewKernel(cpu *core.CPU, params Params) *Kernel {
	k := &Kernel{cpu: cpu, file: cpu.CountersFile(), params: params}
	for i := 0; i < cpu.Config().NumContexts(); i++ {
		cs := &cpuState{k: k, idx: i, lastProc: -1}
		k.cpus = append(k.cpus, cs)
		cpu.AttachFeed(i, cs)
	}
	return k
}

// NewProcess registers a new address space.
func (k *Kernel) NewProcess(name string) *Process {
	p := &Process{ID: len(k.procs), Name: name, k: k}
	k.procs = append(k.procs, p)
	return p
}

// Spawn creates a runnable thread in process p fed by src.
func (p *Process) Spawn(name string, src isa.Source) *Thread {
	k := p.k
	t := &Thread{ID: k.nextTID, Name: name, Proc: p, Src: src, state: Runnable}
	k.nextTID++
	k.threads = append(k.threads, t)
	k.runq = append(k.runq, t)
	return t
}

// Block marks t blocked. Threads call it (through the JVM) from inside
// their own Fill; the scheduler notices at the next feed boundary. It is
// legal to block an already-blocked thread (idempotent).
func (k *Kernel) Block(t *Thread) {
	if t.state == Exited {
		panic("simos: blocking an exited thread")
	}
	if t.state == Runnable {
		k.removeFromRunq(t)
	}
	t.state = Blocked
	k.file.Inc(counters.MonitorBlocks)
}

// Unblock makes t runnable again. Unblocking a runnable/running thread is
// a no-op so wakeups can race benignly.
func (k *Kernel) Unblock(t *Thread) {
	if t.state != Blocked {
		return
	}
	t.state = Runnable
	k.runq = append(k.runq, t)
}

func (k *Kernel) removeFromRunq(t *Thread) {
	for i, q := range k.runq {
		if q == t {
			k.runq = append(k.runq[:i], k.runq[i+1:]...)
			return
		}
	}
}

// RunnableCount returns how many threads are runnable or running.
func (k *Kernel) RunnableCount() int {
	n := len(k.runq)
	for _, c := range k.cpus {
		if c.current != nil {
			n++
		}
	}
	return n
}

// Threads returns all threads ever spawned.
func (k *Kernel) Threads() []*Thread { return k.threads }

// File exposes the machine's counter file so runtime layers above the
// kernel (the JVM) can record their own events.
func (k *Kernel) File() *counters.File { return k.file }

// --- core.Feed implementation (one per logical CPU) ---

// Fill implements core.Feed.
func (c *cpuState) Fill(now uint64, buf []isa.Uop) int {
	k := c.k
	n := 0

	// Preempt on quantum expiry when someone else is waiting.
	if c.current != nil && len(k.runq) > 0 && now-c.sliceStart >= k.params.Timeslice {
		prev := c.current
		c.endSlice(prev, now)
		c.current = nil
		prev.state = Runnable
		k.runq = append(k.runq, prev)
	}

	// Dispatch a new thread if the CPU is idle.
	if c.current == nil {
		if len(k.runq) == 0 {
			return 0
		}
		next := k.runq[0]
		k.runq = k.runq[1:]
		n += c.emitSwitch(buf[n:], len(k.runq)+1)
		if c.lastProc != next.Proc.ID {
			// Address-space change: drop this context's virtually
			// tagged front-end state (trace lines, BTB, ITLB part).
			k.cpu.FlushThreadState(c.idx)
		}
		c.lastProc = next.Proc.ID
		c.current = next
		next.state = Running
		c.sliceStart = now
		c.runStart = now
		k.file.Inc(counters.ContextSwitches)
	}

	// Run the current thread into the remaining buffer space.
	if n < len(buf) {
		got, done := c.current.Src.Fill(buf[n:])
		n += got
		switch {
		case done:
			c.endSlice(c.current, now)
			c.current.state = Exited
			c.current.done = true
			c.current = nil
		case c.current.state == Blocked:
			// The thread blocked itself mid-fill (monitor, GC wait).
			c.endSlice(c.current, now)
			c.current = nil
		case got == 0 && n == 0:
			// A source returning 0 into an empty buffer without
			// blocking or finishing would spin the front end forever.
			// (got == 0 after switch µops is fine: sources may need
			// more space than the switch left over.)
			panic(fmt.Sprintf("simos: thread %q produced no µops while runnable", c.current.Name))
		}
	}
	return n
}

// Runnable implements core.Feed.
func (c *cpuState) Runnable(uint64) bool {
	return c.current != nil || len(c.k.runq) > 0
}

// Done implements core.Feed.
func (c *cpuState) Done() bool {
	if c.current != nil || len(c.k.runq) > 0 {
		return false
	}
	for _, t := range c.k.threads {
		if t.state == Blocked {
			return false
		}
	}
	return true
}

// emitSwitch writes the context-switch kernel path: save/restore µops plus
// the O(n) run-queue scan. All are kernel-mode with kernel PCs, so the
// switch has the same front-end footprint consequences as real kernel
// entry did on the paper machine.
func (c *cpuState) emitSwitch(buf []isa.Uop, queueLen int) int {
	k := c.k
	total := k.params.SwitchBaseUops + k.params.SwitchPerThreadUops*queueLen
	if total > len(buf) {
		total = len(buf)
	}
	c.switchSeq++
	base := uint64(kernelDataBase) + uint64(c.idx)<<16
	n := 0
	for n < total {
		pc := uint64(KernelCodeBase) + uint64(n%512)
		switch n % 8 {
		case 0: // load task struct field
			buf[n] = isa.Uop{PC: pc, Class: isa.Load, Addr: base + (c.switchSeq*64+uint64(n)*8)%4096, Kernel: true}
		case 3: // store register save area
			buf[n] = isa.Uop{PC: pc, Class: isa.Store, Addr: base + 4096 + uint64(n)*8%2048, Kernel: true, DepDist: 1}
		case 6: // loop branch over the run queue scan
			buf[n] = isa.Uop{PC: pc, Class: isa.Branch, Taken: n+8 < total, Target: pc - 6, Kernel: true}
		default:
			buf[n] = isa.Uop{PC: pc, Class: isa.ALU, DepDist: uint8(n % 2), Kernel: true}
		}
		n++
	}
	return n
}

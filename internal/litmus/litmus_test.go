package litmus

import (
	"reflect"
	"strings"
	"testing"

	"javasmt/internal/core"
)

// The litmus acceptance grid (ISSUE 10): every shape must run across
// ≥2 geometries × ≥4 seating policies × full and sampled modes with
// forbidden outcomes never observed, and the fence-free control
// variants of the store-buffering shapes must exhibit their relaxed
// outcomes — in every simulation mode, under every seating, on every
// geometry. The metamorphic reading: exact outcome tuples are timing-
// dependent and may differ across modes and seatings, but the JMM
// admissibility classification of the observed outcome set (no
// forbidden outcome; relaxation reachable where TSO allows it) is
// invariant under the sim-mode transformation and under context
// permutation (the seating policies place the same threads on
// different contexts).

// testMatrix is the sweep grid; -short trims seeds.
func testMatrix(t *testing.T) Matrix {
	t.Helper()
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	m := DefaultMatrix(seeds)
	m.Jobs = 8
	return m
}

// axisCounts groups relaxed-outcome counts by one key component.
func axisCounts(tst *Test, res *Result, part int) map[string]int {
	out := map[string]int{}
	for k, o := range res.Outcomes {
		parts := strings.Split(k, "/")
		out[parts[part]] += 0
		if tst.Relaxed(o) {
			out[parts[part]]++
		}
	}
	return out
}

// Key components: name/fenced=?/seed=?/geometry/policy/mode.
const (
	keyGeometry = 3
	keyPolicy   = 4
	keyMode     = 5
)

// TestLitmusMatrix sweeps every shape in both variants across the full
// grid: forbidden outcomes must never appear, fenced variants must
// never relax, and the teeth shapes (SB, DekkerLock) must relax
// unfenced — per mode, per policy, and per geometry.
func TestLitmusMatrix(t *testing.T) {
	m := testMatrix(t)
	wantCells := m.Seeds * len(m.Geometries) * len(m.Policies) * len(m.Modes)
	for _, tst := range All() {
		tst := tst
		for _, fenced := range []bool{true, false} {
			fenced := fenced
			name := tst.Name + "/fenced"
			if !fenced {
				name = tst.Name + "/unfenced"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				res, err := Sweep(tst, fenced, m)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Outcomes) != wantCells {
					t.Fatalf("swept %d cells, want %d", len(res.Outcomes), wantCells)
				}
				if len(res.Forbidden) > 0 {
					t.Fatalf("forbidden outcomes observed:\n%s", strings.Join(res.Forbidden, "\n"))
				}
				if fenced && res.RelaxedSeen > 0 {
					t.Fatalf("fenced variant relaxed %d times; the fences are not load-bearing", res.RelaxedSeen)
				}
				if !fenced && tst.TeethExpected {
					if res.RelaxedSeen == 0 {
						t.Fatalf("unfenced %s never exhibited its relaxation (outcome set %v) — the harness has no teeth",
							tst.Name, res.OutcomeSet())
					}
					for _, axis := range []int{keyMode, keyPolicy, keyGeometry} {
						for val, n := range axisCounts(tst, res, axis) {
							if n == 0 {
								t.Errorf("unfenced %s never relaxed under %s", tst.Name, val)
							}
						}
					}
				}
			})
		}
	}
}

// TestLitmusJobsInvariant: farming cells over 8 workers must produce
// the byte-identical outcome map a serial sweep produces — each cell
// simulates an isolated machine, so -j only changes wall clock.
func TestLitmusJobsInvariant(t *testing.T) {
	m := DefaultMatrix(2)
	for _, tst := range []string{"SB", "DekkerLock"} {
		tst := tst
		t.Run(tst, func(t *testing.T) {
			t.Parallel()
			shape, ok := ByName(tst)
			if !ok {
				t.Fatalf("ByName(%q) failed", tst)
			}
			serial, par := m, m
			serial.Jobs = 1
			par.Jobs = 8
			r1, err := Sweep(shape, false, serial)
			if err != nil {
				t.Fatal(err)
			}
			r8, err := Sweep(shape, false, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Outcomes, r8.Outcomes) {
				t.Fatalf("-j 1 and -j 8 sweeps disagree:\nj1: %v\nj8: %v", r1.Outcomes, r8.Outcomes)
			}
		})
	}
}

// TestLitmusDeterminism: the same cell run twice is the same
// experiment — the whole stack (jvm, kernel, machine, sampling) is
// deterministic.
func TestLitmusDeterminism(t *testing.T) {
	shape, _ := ByName("SB")
	for _, sampled := range []bool{false, true} {
		c := Cell{
			Test: "SB", Fenced: false, Seed: 3,
			Geometry: core.Geometry{Cores: 1, ContextsPerCore: 2},
			Policy:   "naive", Sampled: sampled,
		}
		a, err := RunCell(shape, c)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunCell(shape, c)
		if err != nil {
			t.Fatal(err)
		}
		if a.Key() != b.Key() {
			t.Fatalf("cell %s not deterministic: %s vs %s", c.Key(), a.Key(), b.Key())
		}
	}
}

// TestLitmusRegistry pins the suite shape.
func TestLitmusRegistry(t *testing.T) {
	suite := All()
	if len(suite) != 6 {
		t.Fatalf("suite has %d shapes, want 6", len(suite))
	}
	teeth := 0
	for _, tst := range suite {
		if tst.Threads < 2 || tst.Results < 2 {
			t.Fatalf("%s: degenerate shape (%d threads, %d results)", tst.Name, tst.Threads, tst.Results)
		}
		if _, ok := ByName(tst.Name); !ok {
			t.Fatalf("ByName(%q) failed", tst.Name)
		}
		if tst.TeethExpected {
			teeth++
		}
	}
	if teeth != 2 {
		t.Fatalf("%d teeth shapes, want 2 (SB, DekkerLock)", teeth)
	}
	if _, ok := ByName("no-such-shape"); ok {
		t.Fatal("ByName invented a shape")
	}
}

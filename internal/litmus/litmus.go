// Package litmus is a Java-memory-model litmus-test harness for the
// simulated machine (DESIGN.md §14). Each test is a tiny multithreaded
// bytecode program — the classical store-buffering, message-passing,
// load-buffering, IRIW, coherence and Dekker shapes — built in two
// variants: *fenced*, using volatile accesses that lower to buffer
// drains plus Fence µops, and *unfenced*, using plain statics that ride
// the per-thread TSO store buffer. The harness runs each shape across
// seeds × machine geometries × seating policies × simulation modes and
// asserts two things:
//
//   - outcomes the JMM forbids for the fenced variant never appear, and
//     outcomes x86-TSO forbids (MP, LB, IRIW, CoRR relaxations) never
//     appear even unfenced — the machine's memory model is TSO, not
//     something weaker;
//   - the unfenced store-buffering shapes (SB, DekkerLock) DO exhibit
//     their relaxed outcomes, proving the harness has teeth: the fences
//     are load-bearing, not decorative.
//
// Seeds vary spin-delay lengths placed between the interesting accesses
// so thread bodies genuinely interleave across Fill-chunk boundaries in
// both detailed and functional execution; delays stay under the store
// buffer's aging threshold so buffered stores survive them.
package litmus

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// Outcome is the tuple of result globals a litmus program publishes.
type Outcome []int64

// Key renders the outcome as a stable map key like "1,0".
func (o Outcome) Key() string {
	s := ""
	for i, v := range o {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s
}

// Test is one litmus shape.
type Test struct {
	// Name is the classical shape name (SB, MP, ...).
	Name string
	// Threads is how many worker threads the shape spawns.
	Threads int
	// Results is how many result globals the program publishes.
	Results int
	// Build constructs the program. fenced selects volatile accesses for
	// the shape's critical stores/loads; seed varies the interleaving
	// delays; base is the link base.
	Build func(fenced bool, seed int64, base uint64) *bytecode.Program
	// Forbidden reports whether outcome o must never be observed when
	// the variant's fences are in place — and, for the non-store-
	// buffering shapes, even when they are not (TSO forbids them).
	Forbidden func(fenced bool, o Outcome) bool
	// Relaxed reports whether o is the shape's relaxation signature.
	Relaxed func(o Outcome) bool
	// TeethExpected marks shapes whose relaxation is reachable on a TSO
	// machine with the fences removed (SB and DekkerLock); the harness
	// demands the unfenced sweep observes it.
	TeethExpected bool
}

// All returns the litmus suite.
func All() []*Test {
	return []*Test{SB(), MP(), LB(), IRIW(), CoRR(), DekkerLock()}
}

// ByName resolves a litmus test.
func ByName(name string) (*Test, bool) {
	for _, t := range All() {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// --- program-construction helpers ---

type mb = bytecode.MethodBuilder

// Delay calibration. One emitDelay iteration is 8 bytecodes / 9 µops.
// The interpreter executes a whole Fill batch (~88 µops) of bytecodes
// semantically at once, so a delay placed between a store and a load
// only lets another thread's accesses interleave if it spans a batch
// boundary: mid-delays run 11-15 iterations (99-135 µops — always past
// one boundary) while staying well under the store buffer's aging
// threshold (88-120 instructions < 256, so the buffered store survives
// the delay plus the start skew between threads). Pre-delays of 0-6
// iterations vary that skew so different seeds probe different
// alignments. Shapes whose relaxation needs a store to stay buffered
// *past* the thread's last load also place a post-delay between the
// load and Ret — otherwise load, result store and exit-drain share one
// batch and execute atomically.
const (
	minMidIters = 11
	maxMidIters = 15
	maxPreIters = 6
)

// splitmix steps a 64-bit mix; the litmus driver derives per-thread
// delays from the seed with it.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// delayPlan derives n pre-delay and n mid-delay iteration counts from
// seed.
func delayPlan(seed int64, n int) (pre, mid []int32) {
	pre = make([]int32, n)
	mid = make([]int32, n)
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := range pre {
		x = splitmix(x)
		pre[i] = int32(x % (maxPreIters + 1))
		x = splitmix(x)
		mid[i] = minMidIters + int32(x%(maxMidIters-minMidIters+1))
	}
	return pre, mid
}

// emitDelay spins a counted empty loop using the given local.
func emitDelay(b *mb, local, iters int32) {
	if iters <= 0 {
		return
	}
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(local)
	b.Bind(loop)
	b.Load(local).Const(iters)
	b.Br(bytecode.IfGe, done)
	b.Load(local).Const(1).Op(bytecode.Iadd).Store(local)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
}

// emitGet / emitPut emit a global access with or without volatile
// semantics.
func emitGet(b *mb, fenced bool, slot int32) {
	if fenced {
		b.Op(bytecode.GetVolatile, slot)
	} else {
		b.Op(bytecode.GetStatic, slot)
	}
}

func emitPut(b *mb, fenced bool, slot int32) {
	if fenced {
		b.Op(bytecode.PutVolatile, slot)
	} else {
		b.Op(bytecode.PutStatic, slot)
	}
}

// spawnJoin emits main's fan-out/fan-in over argless worker methods.
func spawnJoin(b *mb, workers []int32) {
	const lTids = 0
	b.Const(int32(len(workers))).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	for i, wi := range workers {
		b.Load(lTids).Const(int32(i)).Op(bytecode.ThreadStart, wi).Op(bytecode.AStore)
	}
	for i := range workers {
		b.Load(lTids).Const(int32(i)).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	}
	b.Op(bytecode.Ret)
}

// Extract reads the test's published outcome from the finished VM. All
// worker threads have exited by then, so every plain result store has
// drained.
func (t *Test) Extract(vm *jvm.VM, firstResultSlot int) Outcome {
	out := make(Outcome, t.Results)
	for i := range out {
		out[i] = int64(vm.Global(firstResultSlot + i))
	}
	return out
}

// --- the shapes ---

// Shared-variable and result-slot layout shared by the two-variable
// shapes: globals 0,1 are X,Y and results start at slot 2.
const resultBase = 2

// SB — store buffering, the paper's Dekker core:
//
//	T1: X=1; r1=Y        T2: Y=1; r2=X
//
// SC forbids r1==0 && r2==0; a store buffer exhibits it.
func SB() *Test {
	return &Test{
		Name: "SB", Threads: 2, Results: 2, TeethExpected: true,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 2)
			pb := bytecode.NewProgram("litmus-SB")
			pb.Globals(4, 0) // X, Y, r1, r2
			var ws []int32
			for i := 0; i < 2; i++ {
				w := bytecode.NewMethod(fmt.Sprintf("t%d", i+1), 0, 1)
				mine, other := int32(i), int32(1-i)
				b := w
				emitDelay(b, 0, pre[i])
				b.Const(1)
				emitPut(b, fenced, mine)
				emitDelay(b, 0, mid[i])
				emitGet(b, fenced, other)
				b.Op(bytecode.PutStatic, resultBase+int32(i))
				// Post-delay: keep X buffered past the load so the peer's
				// load can still miss it (the SB relaxation needs both).
				emitDelay(b, 0, mid[1-i])
				b.Op(bytecode.Ret)
				ws = append(ws, pb.Add(w.Finish()))
			}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			// Unfenced, r1==r2==0 is exactly the allowed relaxation.
			return fenced && o[0] == 0 && o[1] == 0
		},
		Relaxed: func(o Outcome) bool { return o[0] == 0 && o[1] == 0 },
	}
}

// MP — message passing:
//
//	T1: X=42; Y=1        T2: r1=Y; r2=X
//
// Forbidden: r1==1 && r2!=42 (saw the flag but not the payload). TSO
// preserves store order, so this is forbidden even unfenced.
func MP() *Test {
	return &Test{
		Name: "MP", Threads: 2, Results: 2,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 2)
			pb := bytecode.NewProgram("litmus-MP")
			pb.Globals(4, 0)
			w1 := bytecode.NewMethod("t1", 0, 1)
			emitDelay(w1, 0, pre[0])
			w1.Const(42).Op(bytecode.PutStatic, 0) // payload: always plain
			emitDelay(w1, 0, mid[0])
			w1.Const(1)
			emitPut(w1, fenced, 1) // flag
			w1.Op(bytecode.Ret)
			w2 := bytecode.NewMethod("t2", 0, 1)
			emitDelay(w2, 0, pre[1])
			emitGet(w2, fenced, 1)
			w2.Op(bytecode.PutStatic, resultBase)
			emitDelay(w2, 0, mid[1])
			w2.Op(bytecode.GetStatic, 0)
			w2.Op(bytecode.PutStatic, resultBase+1)
			w2.Op(bytecode.Ret)
			ws := []int32{pb.Add(w1.Finish()), pb.Add(w2.Finish())}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			return o[0] == 1 && o[1] != 42
		},
		Relaxed: func(o Outcome) bool { return o[0] == 1 && o[1] != 42 },
	}
}

// LB — load buffering:
//
//	T1: r1=Y; X=1        T2: r2=X; Y=1
//
// Forbidden: r1==1 && r2==1 (loads seeing stores that program order
// places after them). The interpreter executes in order, so this is
// unreachable in either variant.
func LB() *Test {
	return &Test{
		Name: "LB", Threads: 2, Results: 2,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 2)
			pb := bytecode.NewProgram("litmus-LB")
			pb.Globals(4, 0)
			var ws []int32
			for i := 0; i < 2; i++ {
				mine, other := int32(i), int32(1-i)
				b := bytecode.NewMethod(fmt.Sprintf("t%d", i+1), 0, 1)
				emitDelay(b, 0, pre[i])
				emitGet(b, fenced, other)
				b.Op(bytecode.PutStatic, resultBase+int32(i))
				emitDelay(b, 0, mid[i])
				b.Const(1)
				emitPut(b, fenced, mine)
				b.Op(bytecode.Ret)
				ws = append(ws, pb.Add(b.Finish()))
			}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			return o[0] == 1 && o[1] == 1
		},
		Relaxed: func(o Outcome) bool { return o[0] == 1 && o[1] == 1 },
	}
}

// IRIW — independent reads of independent writes:
//
//	T1: X=1   T2: Y=1   T3: r1=X; r2=Y   T4: r3=Y; r4=X
//
// Forbidden: the readers disagree about the store order (r1==1,r2==0
// and r3==1,r4==0). TSO's total store order forbids it even unfenced.
func IRIW() *Test {
	return &Test{
		Name: "IRIW", Threads: 4, Results: 4,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 4)
			pb := bytecode.NewProgram("litmus-IRIW")
			pb.Globals(6, 0) // X, Y, r1..r4
			var ws []int32
			for i := 0; i < 2; i++ { // writers
				b := bytecode.NewMethod(fmt.Sprintf("w%d", i+1), 0, 1)
				emitDelay(b, 0, pre[i])
				emitDelay(b, 0, mid[i])
				b.Const(1)
				emitPut(b, fenced, int32(i))
				b.Op(bytecode.Ret)
				ws = append(ws, pb.Add(b.Finish()))
			}
			for i := 0; i < 2; i++ { // readers
				first, second := int32(i), int32(1-i)
				b := bytecode.NewMethod(fmt.Sprintf("r%d", i+1), 0, 1)
				emitDelay(b, 0, pre[2+i])
				emitGet(b, fenced, first)
				b.Op(bytecode.PutStatic, resultBase+int32(2*i))
				emitDelay(b, 0, mid[2+i])
				emitGet(b, fenced, second)
				b.Op(bytecode.PutStatic, resultBase+int32(2*i+1))
				b.Op(bytecode.Ret)
				ws = append(ws, pb.Add(b.Finish()))
			}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			return o[0] == 1 && o[1] == 0 && o[2] == 1 && o[3] == 0
		},
		Relaxed: func(o Outcome) bool {
			return o[0] == 1 && o[1] == 0 && o[2] == 1 && o[3] == 0
		},
	}
}

// CoRR — coherence of read-read:
//
//	T1: X=1; X=2         T2: r1=X; r2=X
//
// Forbidden: r1==2 && r2==1 (the second read travels backwards). Writes
// to one location stay ordered on any coherent machine.
func CoRR() *Test {
	return &Test{
		Name: "CoRR", Threads: 2, Results: 2,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 2)
			pb := bytecode.NewProgram("litmus-CoRR")
			pb.Globals(4, 0)
			w1 := bytecode.NewMethod("t1", 0, 1)
			emitDelay(w1, 0, pre[0])
			w1.Const(1)
			emitPut(w1, fenced, 0)
			emitDelay(w1, 0, mid[0])
			w1.Const(2)
			emitPut(w1, fenced, 0)
			w1.Op(bytecode.Ret)
			w2 := bytecode.NewMethod("t2", 0, 1)
			emitDelay(w2, 0, pre[1])
			emitGet(w2, fenced, 0)
			w2.Op(bytecode.PutStatic, resultBase)
			emitDelay(w2, 0, mid[1])
			emitGet(w2, fenced, 0)
			w2.Op(bytecode.PutStatic, resultBase+1)
			w2.Op(bytecode.Ret)
			ws := []int32{pb.Add(w1.Finish()), pb.Add(w2.Finish())}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			return o[0] == 2 && o[1] == 1
		},
		Relaxed: func(o Outcome) bool { return o[0] == 2 && o[1] == 1 },
	}
}

// dekkerRounds is how many critical-section attempts each DekkerLock
// thread makes.
const dekkerRounds = 6

// DekkerLock — flags-only mutual exclusion guarding a plain counter:
//
//	each thread, per round: flag_me=1; if flag_other==0 { C=C+1 (with a
//	delay between read and write); r_me++ }; flag_me=0
//
// With volatile flags the store buffer drains at every flag write, the
// critical section is exclusive and C == r1+r2 always. With plain
// flags both threads can pass the guard simultaneously (the SB
// relaxation), and the delayed read-modify-write loses updates:
// C < r1+r2. Results: r1, r2, C.
func DekkerLock() *Test {
	return &Test{
		Name: "DekkerLock", Threads: 2, Results: 3, TeethExpected: true,
		Build: func(fenced bool, seed int64, base uint64) *bytecode.Program {
			pre, mid := delayPlan(seed, 4)
			pb := bytecode.NewProgram("litmus-DekkerLock")
			// 0,1 = flags; 2..4 = r1, r2, C published copy
			pb.Globals(5, 0)
			const slotC = 4
			var ws []int32
			for i := 0; i < 2; i++ {
				mine, other := int32(i), int32(1-i)
				b := bytecode.NewMethod(fmt.Sprintf("t%d", i+1), 0, 4)
				const lRound, lEntries, lTmp, lSpin = 0, 1, 2, 3
				b.Const(0).Store(lEntries)
				loop, done, skip := b.NewLabel(), b.NewLabel(), b.NewLabel()
				b.Const(0).Store(lRound)
				b.Bind(loop)
				b.Load(lRound).Const(dekkerRounds)
				b.Br(bytecode.IfGe, done)
				b.Const(1)
				emitPut(b, fenced, mine) // flag_me = 1
				emitGet(b, fenced, other)
				b.Const(0)
				b.Br(bytecode.IfNe, skip) // other flag up: stand down
				// Critical section: C = C + 1 with a racy window.
				b.Op(bytecode.GetStatic, slotC).Store(lTmp)
				emitDelay(b, lSpin, mid[2+i])
				b.Load(lTmp).Const(1).Op(bytecode.Iadd)
				b.Op(bytecode.PutStatic, slotC)
				b.Load(lEntries).Const(1).Op(bytecode.Iadd).Store(lEntries)
				b.Bind(skip)
				b.Const(0)
				emitPut(b, fenced, mine) // flag_me = 0
				emitDelay(b, lSpin, pre[i])
				b.Load(lRound).Const(1).Op(bytecode.Iadd).Store(lRound)
				b.Br(bytecode.Goto, loop)
				b.Bind(done)
				b.Load(lEntries).Op(bytecode.PutStatic, resultBase+int32(i))
				b.Op(bytecode.Ret)
				ws = append(ws, pb.Add(b.Finish()))
			}
			m := bytecode.NewMethod("main", 0, 1)
			spawnJoin(m, ws)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Forbidden: func(fenced bool, o Outcome) bool {
			// Fenced, the guarded counter must equal the entry total; a
			// counter above the entry total is impossible either way.
			if o[2] > o[0]+o[1] {
				return true
			}
			return fenced && o[2] != o[0]+o[1]
		},
		Relaxed: func(o Outcome) bool { return o[2] < o[0]+o[1] },
	}
}

package litmus

import (
	"fmt"
	"sort"
	"sync"

	"javasmt/internal/bench"
	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/harness"
	"javasmt/internal/jvm"
	"javasmt/internal/sampling"
)

// Cell is one point of the litmus matrix.
type Cell struct {
	Test     string
	Fenced   bool
	Seed     int64
	Geometry core.Geometry
	Policy   string
	Sampled  bool
}

// Key renders the cell as a stable identifier.
func (c Cell) Key() string {
	mode := "full"
	if c.Sampled {
		mode = "sampled"
	}
	return fmt.Sprintf("%s/fenced=%v/seed=%d/%dx%d/%s/%s",
		c.Test, c.Fenced, c.Seed, c.Geometry.Cores, c.Geometry.ContextsPerCore, c.Policy, mode)
}

// RunCell executes one litmus cell through the full harness stack and
// returns the observed outcome.
func RunCell(tst *Test, c Cell) (Outcome, error) {
	var out Outcome
	bb := &bench.Benchmark{
		Name:          "litmus-" + tst.Name,
		Description:   "JMM litmus shape " + tst.Name,
		Multithreaded: true,
		Build: func(threads int, scale bench.Scale, base uint64) *bytecode.Program {
			return tst.Build(c.Fenced, c.Seed, base)
		},
		Verify: func(vm *jvm.VM, threads int, scale bench.Scale) error {
			out = tst.Extract(vm, resultBase)
			return nil
		},
	}
	opts := harness.Options{
		Threads:     1,
		Scale:       bench.Tiny,
		Verify:      true, // routes the outcome extraction
		Geometry:    c.Geometry,
		SchedPolicy: c.Policy,
		MaxCycles:   50_000_000,
	}
	if c.Sampled {
		opts.Plan = sampling.DefaultSampledPlan()
	}
	if _, err := harness.Run(bb, opts); err != nil {
		return nil, fmt.Errorf("litmus %s: %w", c.Key(), err)
	}
	if out == nil {
		return nil, fmt.Errorf("litmus %s: no outcome extracted", c.Key())
	}
	return out, nil
}

// Matrix describes a litmus sweep.
type Matrix struct {
	Seeds      int
	Geometries []core.Geometry
	Policies   []string
	Modes      []bool // Sampled values to cover (false = full)
	Jobs       int    // parallel workers; <=1 is serial
}

// DefaultMatrix covers the acceptance grid: both paper-and-beyond
// geometries, all four seating policies, full and sampled simulation.
func DefaultMatrix(seeds int) Matrix {
	return Matrix{
		Seeds: seeds,
		Geometries: []core.Geometry{
			{Cores: 1, ContextsPerCore: 2},
			{Cores: 2, ContextsPerCore: 2},
		},
		Policies: []string{"naive", "roundrobin-core", "symbiotic-ipc", "contention-aware"},
		Modes:    []bool{false, true},
		Jobs:     1,
	}
}

// Cells expands the matrix for one test variant.
func (m Matrix) Cells(test string, fenced bool) []Cell {
	var cells []Cell
	for seed := 0; seed < m.Seeds; seed++ {
		for _, g := range m.Geometries {
			for _, pol := range m.Policies {
				for _, sampled := range m.Modes {
					cells = append(cells, Cell{
						Test: test, Fenced: fenced, Seed: int64(seed + 1),
						Geometry: g, Policy: pol, Sampled: sampled,
					})
				}
			}
		}
	}
	return cells
}

// Result is the aggregate of a variant sweep.
type Result struct {
	// Outcomes maps cell key -> observed outcome.
	Outcomes map[string]Outcome
	// Forbidden lists cells whose outcome the model forbids.
	Forbidden []string
	// RelaxedSeen counts cells exhibiting the shape's relaxation.
	RelaxedSeen int
}

// OutcomeSet returns the distinct outcome keys, sorted.
func (r *Result) OutcomeSet() []string {
	seen := map[string]bool{}
	for _, o := range r.Outcomes {
		seen[o.Key()] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sweep runs the matrix for one test variant, farming cells across
// m.Jobs goroutines (each cell simulates a whole machine, so cells are
// perfectly isolated).
func Sweep(tst *Test, fenced bool, m Matrix) (*Result, error) {
	cells := m.Cells(tst.Name, fenced)
	outs := make([]Outcome, len(cells))
	errs := make([]error, len(cells))
	jobs := m.Jobs
	if jobs < 1 {
		jobs = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				outs[i], errs[i] = RunCell(tst, cells[i])
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()

	res := &Result{Outcomes: make(map[string]Outcome, len(cells))}
	for i, c := range cells {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Outcomes[c.Key()] = outs[i]
		if tst.Forbidden(fenced, outs[i]) {
			res.Forbidden = append(res.Forbidden, c.Key()+" => "+outs[i].Key())
		}
		if tst.Relaxed(outs[i]) {
			res.RelaxedSeen++
		}
	}
	return res, nil
}

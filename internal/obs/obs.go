// Package obs is the observability layer: the simulator-side analogue of
// attaching Brink & Abyss to a *running* machine instead of reading the
// counters once at exit. The paper's whole method is watching P4
// performance counters over time with HT on and off; this package gives
// every experiment the same view of the simulated machine — plus a view
// the paper could not have: the experiment engine itself.
//
// A Sink is the per-experiment hub. It collects two kinds of output:
//
//   - Metrics: interval-sampled time-series of the paper's quantities
//     (IPC, trace-cache/L1D/L2 misses per 1k µops, branch MPKI) together
//     with instantaneous per-context pipeline state (ROB/LSQ occupancy,
//     trace-cache lines and ITLB entries held per logical processor),
//     captured at a configurable cycle stride. One RunSeries per observed
//     simulation; exported as JSON that goldens can pin.
//
//   - Trace: Chrome trace-event JSON (loadable in chrome://tracing or
//     Perfetto) with one track per logical processor showing which
//     software thread occupied it over cycles, counter tracks fed from
//     the metric samples, and experiment-engine tracks showing per-cell
//     wall time and sched worker occupancy.
//
// Everything is nil-safe: a nil *Sink (observability off) makes every
// hook a no-op, and the hot-path cost in the core is a single integer
// compare per cycle (see core.AttachObs). Sinks are safe for concurrent
// use by parallel experiment workers; each RunObs, however, belongs to
// exactly one simulation goroutine.
//
// Two timebases coexist in a trace file: simulation tracks stamp events
// in cycles (reported as microseconds, 1 cycle = 1 µs), while engine
// tracks stamp wall-clock microseconds since the Sink was created. Each
// pid is self-consistent; compare durations within a track, not across
// the simulation/engine boundary.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultStride is the sample interval, in cycles, used when a Config
// leaves Stride zero. At the tiny scale a solo run lasts a few million
// cycles, so the default yields a few dozen samples per run.
const DefaultStride = 100_000

// Config selects which outputs a Sink collects.
type Config struct {
	// Metrics enables time-series sampling.
	Metrics bool
	// Trace enables Chrome trace-event collection.
	Trace bool
	// Stride is the sample interval in cycles (0 = DefaultStride).
	Stride uint64
}

// Sink collects observability output for one experiment. The zero value
// is not useful; build one with New. All methods are safe on a nil
// receiver (everything becomes a no-op), which is how disabled
// observability is represented throughout the repository.
type Sink struct {
	cfg Config
	t0  time.Time

	mu       sync.Mutex
	runs     []*RunSeries
	events   []Event
	failures []CellFailure
	nextPid  int
	workers  map[int]bool // engine worker tids already named
}

// New builds a Sink from cfg. A sink with neither output enabled is
// legal (Run returns nil observers) but pointless; callers normally pass
// nil instead.
func New(cfg Config) *Sink {
	if cfg.Stride == 0 {
		cfg.Stride = DefaultStride
	}
	return &Sink{cfg: cfg, t0: time.Now(), nextPid: simPidBase, workers: map[int]bool{}}
}

// Trace-event pid layout: the experiment engine is pid 1; each observed
// simulation gets its own pid starting at simPidBase.
const (
	enginePid  = 1
	simPidBase = 100
)

// Enabled reports whether the sink collects anything. Nil-safe.
func (s *Sink) Enabled() bool {
	return s != nil && (s.cfg.Metrics || s.cfg.Trace)
}

// MetricsEnabled reports whether time-series sampling is on. Nil-safe.
func (s *Sink) MetricsEnabled() bool { return s != nil && s.cfg.Metrics }

// TraceEnabled reports whether trace collection is on. Nil-safe.
func (s *Sink) TraceEnabled() bool { return s != nil && s.cfg.Trace }

// Stride returns the sample interval in cycles. Nil-safe (a disabled
// sink reports the default, which no one will consult).
func (s *Sink) Stride() uint64 {
	if s == nil || s.cfg.Stride == 0 {
		return DefaultStride
	}
	return s.cfg.Stride
}

// Run registers one simulation with the sink under label and returns its
// observer. Labels should be unique within a sink (the metrics export
// sorts by label so files are deterministic at any worker count).
// Returns nil — a universal no-op observer — when the sink is nil or
// fully disabled. Safe for concurrent use. The trace gets the legacy two
// logical-processor tracks; machines with more contexts use RunFor.
func (s *Sink) Run(label string) *RunObs { return s.RunFor(label, 2) }

// RunFor registers one simulation of a machine with lps logical
// processors (minimum two, keeping the legacy track layout for the
// paper's one- and two-context geometries).
func (s *Sink) RunFor(label string, lps int) *RunObs {
	if !s.Enabled() {
		return nil
	}
	if lps < 2 {
		lps = 2
	}
	r := &RunObs{sink: s, trace: s.cfg.Trace, stride: s.Stride()}
	s.mu.Lock()
	r.pid = s.nextPid
	s.nextPid++
	if s.cfg.Metrics {
		r.series = &RunSeries{Label: label}
		s.runs = append(s.runs, r.series)
	}
	s.mu.Unlock()
	if s.cfg.Trace {
		s.meta(r.pid, 0, "process_name", label)
		for lp := 0; lp < lps; lp++ {
			s.meta(r.pid, lp, "thread_name", fmt.Sprintf("LP%d", lp))
		}
	}
	return r
}

// CellSpan records one experiment-engine cell (a complete simulation job)
// on the given worker's track: a span from start to end wall time. The
// worker occupancy view falls out of the per-worker tracks — gaps between
// spans are idle time. Nil-safe; a no-op unless tracing is on.
func (s *Sink) CellSpan(worker int, label string, start, end time.Time) {
	if !s.TraceEnabled() {
		return
	}
	ts := float64(start.Sub(s.t0).Microseconds())
	dur := float64(end.Sub(start).Microseconds())
	s.mu.Lock()
	if !s.workers[worker] {
		s.workers[worker] = true
		s.events = append(s.events,
			Event{Name: "process_name", Phase: "M", Pid: enginePid, Tid: worker,
				Args: map[string]any{"name": "experiment engine"}},
			Event{Name: "thread_name", Phase: "M", Pid: enginePid, Tid: worker,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", worker)}})
	}
	s.events = append(s.events, Event{
		Name: label, Phase: "X", Ts: ts, Dur: dur, Pid: enginePid, Tid: worker,
	})
	s.mu.Unlock()
}

// CellFailure records one experiment cell the resilience layer gave up
// on: the campaign completed without it, and the metrics export carries
// the failure so a degraded run is distinguishable from a clean one.
type CellFailure struct {
	Cell   string `json:"cell"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
}

// Failure records a failed experiment cell. Nil-safe and safe for
// concurrent workers; the export sorts by cell label so output is
// deterministic at any worker count.
func (s *Sink) Failure(cell, kind, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failures = append(s.failures, CellFailure{Cell: cell, Kind: kind, Reason: reason})
	s.mu.Unlock()
}

// AddSeries registers already-recorded time-series with the sink — how a
// resumed campaign re-injects the series of journaled cells so its
// metrics export is byte-identical to an uninterrupted run. Nil-safe.
func (s *Sink) AddSeries(series ...*RunSeries) {
	if s == nil || !s.cfg.Metrics {
		return
	}
	s.mu.Lock()
	s.runs = append(s.runs, series...)
	s.mu.Unlock()
}

// matchesPrefix reports whether a series label belongs to the cell named
// prefix: the label is prefix itself or extends it past a space.
func matchesPrefix(label, prefix string) bool {
	return label == prefix || strings.HasPrefix(label, prefix+" ")
}

// SeriesByPrefix returns every recorded series whose label is prefix
// itself or begins with prefix+" " — the series belonging to one
// experiment cell (a cell may record several, e.g. "fig10 db ht=off").
// Nil-safe.
func (s *Sink) SeriesByPrefix(prefix string) []*RunSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*RunSeries
	for _, r := range s.runs {
		if matchesPrefix(r.Label, prefix) {
			out = append(out, r)
		}
	}
	return out
}

// DropSeriesByPrefix removes every recorded series belonging to the cell
// named prefix (same matching as SeriesByPrefix). The campaign layer
// uses it to discard the partial series of a failed or retried cell
// attempt — those stop at a wall-clock-dependent cycle, so keeping them
// would make the metrics export nondeterministic. Nil-safe.
func (s *Sink) DropSeriesByPrefix(prefix string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.runs[:0]
	for _, r := range s.runs {
		if !matchesPrefix(r.Label, prefix) {
			kept = append(kept, r)
		}
	}
	s.runs = kept
}

// Series returns the recorded time-series for label, or nil. Nil-safe.
func (s *Sink) Series(label string) *RunSeries {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// metricsExport is the time-series JSON document layout. Failures is
// omitted when empty so clean runs keep their historical byte shape.
type metricsExport struct {
	Stride   uint64        `json:"stride"`
	Runs     []*RunSeries  `json:"runs"`
	Failures []CellFailure `json:"failures,omitempty"`
}

// WriteMetrics writes the sampled time-series as JSON. Runs and failures
// appear sorted by label, so the bytes are identical at any worker
// count. Nil-safe: a nil sink writes an empty document.
func (s *Sink) WriteMetrics(w io.Writer) error {
	doc := metricsExport{Stride: DefaultStride, Runs: []*RunSeries{}}
	if s != nil {
		s.mu.Lock()
		doc.Stride = s.Stride()
		doc.Runs = append(doc.Runs, s.runs...)
		doc.Failures = append(doc.Failures, s.failures...)
		s.mu.Unlock()
		sort.SliceStable(doc.Runs, func(i, j int) bool { return doc.Runs[i].Label < doc.Runs[j].Label })
		sort.SliceStable(doc.Failures, func(i, j int) bool { return doc.Failures[i].Cell < doc.Failures[j].Cell })
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// traceExport is the Chrome trace-event JSON document layout (the
// "JSON Object Format" both chrome://tracing and Perfetto load).
type traceExport struct {
	TraceEvents     []Event        `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace writes the collected trace events as Chrome trace-event
// JSON. Events are ordered by (pid, tid, ts) so output is stable for a
// given event set. Nil-safe: a nil sink writes an empty, loadable trace.
func (s *Sink) WriteTrace(w io.Writer) error {
	doc := traceExport{TraceEvents: []Event{}, DisplayTimeUnit: "ms"}
	if s != nil {
		s.mu.Lock()
		doc.TraceEvents = append(doc.TraceEvents, s.events...)
		s.mu.Unlock()
		sort.SliceStable(doc.TraceEvents, func(i, j int) bool {
			a, b := doc.TraceEvents[i], doc.TraceEvents[j]
			if a.Pid != b.Pid {
				return a.Pid < b.Pid
			}
			if a.Tid != b.Tid {
				return a.Tid < b.Tid
			}
			return a.Ts < b.Ts
		})
		doc.OtherData = map[string]any{
			"source": "javasmt internal/obs",
			"note":   "simulation pids stamp cycles as µs; engine pid 1 stamps wall µs",
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteMetricsFile writes the metrics document to path.
func (s *Sink) WriteMetricsFile(path string) error {
	return s.writeFile(path, s.WriteMetrics)
}

// WriteTraceFile writes the trace document to path.
func (s *Sink) WriteTraceFile(path string) error {
	return s.writeFile(path, s.WriteTrace)
}

func (s *Sink) writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: %s: %w", path, err)
	}
	return f.Close()
}

// meta appends a metadata event naming a process or thread track.
func (s *Sink) meta(pid, tid int, kind, name string) {
	s.mu.Lock()
	s.events = append(s.events, Event{
		Name: kind, Phase: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name},
	})
	s.mu.Unlock()
}

// addEvents appends prepared events under the sink lock.
func (s *Sink) addEvents(evs ...Event) {
	s.mu.Lock()
	s.events = append(s.events, evs...)
	s.mu.Unlock()
}

package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"javasmt/internal/counters"
)

// TestNilSinkIsNoOp pins the disabled-observability contract: every hook
// on a nil *Sink and nil *RunObs must be a safe no-op, and the writers
// must still emit valid (empty) documents.
func TestNilSinkIsNoOp(t *testing.T) {
	var s *Sink
	if s.Enabled() || s.MetricsEnabled() || s.TraceEnabled() {
		t.Fatal("nil sink reports itself enabled")
	}
	if got := s.Stride(); got != DefaultStride {
		t.Fatalf("nil sink stride = %d, want %d", got, DefaultStride)
	}
	if r := s.Run("x"); r != nil {
		t.Fatal("nil sink handed out a non-nil observer")
	}
	s.CellSpan(0, "cell", time.Now(), time.Now())
	if s.Series("x") != nil {
		t.Fatal("nil sink returned a series")
	}

	var r *RunObs
	var f counters.File
	r.Sample(100, &f, &CoreState{})
	r.ThreadSlice(0, "thread", 0, 100)
	if got := r.Stride(); got != DefaultStride {
		t.Fatalf("nil observer stride = %d, want %d", got, DefaultStride)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Stride uint64      `json:"stride"`
		Runs   []RunSeries `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("nil-sink metrics are not valid JSON: %v", err)
	}
	if len(m.Runs) != 0 {
		t.Fatalf("nil-sink metrics contain %d runs", len(m.Runs))
	}

	buf.Reset()
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("nil-sink trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("nil-sink trace contains %d events", len(tr.TraceEvents))
	}
}

// TestDisabledSinkRunIsNil pins that a sink with neither output enabled
// behaves like nil from Run's perspective.
func TestDisabledSinkRunIsNil(t *testing.T) {
	s := New(Config{})
	if s.Enabled() {
		t.Fatal("output-less sink reports itself enabled")
	}
	if r := s.Run("x"); r != nil {
		t.Fatal("output-less sink handed out an observer")
	}
}

// fileAt builds a cumulative counter file with the given totals.
func fileAt(cycles, uops, tc, l1d, l2, mispredicts uint64) counters.File {
	var f counters.File
	f.Set(counters.Cycles, cycles)
	f.Set(counters.Instructions, uops)
	f.Set(counters.TCMisses, tc)
	f.Set(counters.L1DMisses, l1d)
	f.Set(counters.L2Misses, l2)
	f.Set(counters.BranchMispredicts, mispredicts)
	return f
}

// TestSampleWindowedMetrics checks that IPC and the per-1k ratios are
// computed over the interval since the previous sample, not cumulatively,
// while the Cum block stays cumulative.
func TestSampleWindowedMetrics(t *testing.T) {
	s := New(Config{Metrics: true, Stride: 1000})
	r := s.Run("run")
	if r == nil {
		t.Fatal("enabled sink returned nil observer")
	}

	f := fileAt(1000, 2000, 10, 20, 4, 2)
	r.Sample(1000, &f, &CoreState{})
	f = fileAt(2000, 3000, 10, 120, 4, 2) // +1000 uops, +100 L1D, nothing else
	r.Sample(2000, &f, &CoreState{})

	series := s.Series("run")
	if series == nil || len(series.Samples) != 2 {
		t.Fatalf("series = %+v, want 2 samples", series)
	}
	s0, s1 := series.Samples[0], series.Samples[1]
	if s0.IPC != 2.0 {
		t.Errorf("first-sample IPC = %v, want 2 (window starts at zero)", s0.IPC)
	}
	if s1.IPC != 1.0 {
		t.Errorf("second-sample IPC = %v, want 1 (1000 uops over 1000 cycles)", s1.IPC)
	}
	if s1.TCPer1K != 0 {
		t.Errorf("second-sample TC/1k = %v, want 0 (no misses in window)", s1.TCPer1K)
	}
	if s1.L1DPer1K != 100 {
		t.Errorf("second-sample L1D/1k = %v, want 100 (100 misses per 1000 uops)", s1.L1DPer1K)
	}
	if s1.Cum.L1DMisses != 120 || s1.Cum.Uops != 3000 {
		t.Errorf("cumulative block lost totals: %+v", s1.Cum)
	}
}

// TestSampleSameCycleDedupe pins that a flush landing on a stride
// boundary replaces the boundary sample instead of duplicating it.
func TestSampleSameCycleDedupe(t *testing.T) {
	s := New(Config{Metrics: true})
	r := s.Run("run")
	f := fileAt(1000, 100, 0, 0, 0, 0)
	r.Sample(1000, &f, &CoreState{})
	f.Set(counters.Instructions, 150)
	r.Sample(1000, &f, &CoreState{ROB: []int{7, 0}})

	series := s.Series("run")
	if len(series.Samples) != 1 {
		t.Fatalf("%d samples at one cycle, want 1", len(series.Samples))
	}
	got := series.Final()
	if got.Cum.Uops != 150 || got.Core.ROB[0] != 7 {
		t.Fatalf("dedupe kept the stale sample: %+v", got)
	}
}

// TestMetricsExportSortedByLabel pins export determinism: runs appear
// sorted by label no matter the registration order (which is worker-
// scheduling dependent in parallel experiments).
func TestMetricsExportSortedByLabel(t *testing.T) {
	s := New(Config{Metrics: true})
	for _, label := range []string{"zeta", "alpha", "mid"} {
		r := s.Run(label)
		f := fileAt(10, 10, 0, 0, 0, 0)
		r.Sample(10, &f, &CoreState{})
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stride uint64      `json:"stride"`
		Runs   []RunSeries `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(doc.Runs) != len(want) {
		t.Fatalf("%d runs exported, want %d", len(doc.Runs), len(want))
	}
	for i, w := range want {
		if doc.Runs[i].Label != w {
			t.Errorf("runs[%d] = %q, want %q", i, doc.Runs[i].Label, w)
		}
	}
}

// TestTraceExport builds a small trace with every event kind and checks
// the exported document parses, carries the expected phases, and orders
// events by (pid, tid, ts).
func TestTraceExport(t *testing.T) {
	s := New(Config{Metrics: true, Trace: true})
	r := s.Run("compress")
	r.ThreadSlice(0, "main", 100, 500)
	r.ThreadSlice(1, "gc", 200, 400)
	r.ThreadSlice(0, "empty", 300, 300) // zero-length: must be dropped
	f := fileAt(500, 1000, 5, 10, 1, 3)
	r.Sample(500, &f, &CoreState{})
	t0 := time.Now()
	s.CellSpan(2, "cell compress", t0, t0.Add(3*time.Millisecond))

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Phase]++
		if e.Name == "empty" {
			t.Error("zero-length thread slice was emitted")
		}
	}
	if phases["M"] == 0 || phases["X"] == 0 || phases["C"] == 0 {
		t.Fatalf("missing event phases: %v", phases)
	}
	for i := 1; i < len(doc.TraceEvents); i++ {
		a, b := doc.TraceEvents[i-1], doc.TraceEvents[i]
		if a.Pid > b.Pid || (a.Pid == b.Pid && a.Tid > b.Tid) ||
			(a.Pid == b.Pid && a.Tid == b.Tid && a.Ts > b.Ts) {
			t.Fatalf("events out of (pid,tid,ts) order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestRunPidsDistinct pins that every observed run gets its own trace
// process, so per-LP tracks from different simulations never merge.
func TestRunPidsDistinct(t *testing.T) {
	s := New(Config{Trace: true})
	r1, r2 := s.Run("a"), s.Run("b")
	if r1.pid == r2.pid {
		t.Fatalf("two runs share pid %d", r1.pid)
	}
	if r1.pid == enginePid || r2.pid == enginePid {
		t.Fatal("simulation run claimed the engine pid")
	}
}

// TestFailuresExported pins the degraded-campaign contract: recorded
// cell failures appear in the metrics export sorted by cell, and a
// failure-free export omits the field entirely (so historical goldens
// keep their bytes).
func TestFailuresExported(t *testing.T) {
	s := New(Config{Metrics: true})
	s.Failure("pair z+a", "panic", "panic: boom")
	s.Failure("pair a+b", "timeout", "timeout: wall deadline 5s exceeded")
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Failures []CellFailure `json:"failures"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Failures) != 2 || doc.Failures[0].Cell != "pair a+b" || doc.Failures[1].Cell != "pair z+a" {
		t.Fatalf("failures = %+v, want two sorted by cell", doc.Failures)
	}
	if doc.Failures[0].Kind != "timeout" {
		t.Fatalf("failure kind = %q", doc.Failures[0].Kind)
	}

	clean := New(Config{Metrics: true})
	buf.Reset()
	if err := clean.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("failures")) {
		t.Fatal("clean export mentions failures; omitempty broken")
	}

	var nilSink *Sink
	nilSink.Failure("c", "panic", "r") // must not panic
}

// TestAddSeriesAndSeriesByPrefix pins the resume path: series re-added
// from a journal export exactly like freshly recorded ones, and
// SeriesByPrefix groups a cell's series without matching longer labels.
func TestAddSeriesAndSeriesByPrefix(t *testing.T) {
	s := New(Config{Metrics: true})
	s.AddSeries(
		&RunSeries{Label: "fig10 db ht=off"},
		&RunSeries{Label: "fig10 db ht=on"},
		&RunSeries{Label: "fig10 dbx ht=off"},
		&RunSeries{Label: "pair a+b"},
	)
	got := s.SeriesByPrefix("fig10 db")
	if len(got) != 2 {
		t.Fatalf("prefix matched %d series, want 2 (no label-boundary bleed)", len(got))
	}
	if got := s.SeriesByPrefix("pair a+b"); len(got) != 1 || got[0].Label != "pair a+b" {
		t.Fatalf("exact-label prefix = %+v", got)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []RunSeries `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("export holds %d runs, want 4", len(doc.Runs))
	}

	var nilSink *Sink
	nilSink.AddSeries(&RunSeries{Label: "x"}) // must not panic
	if nilSink.SeriesByPrefix("x") != nil {
		t.Fatal("nil sink returned series")
	}
}

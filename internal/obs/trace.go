package obs

// Event is one Chrome trace-event record. The field set is the subset of
// the trace-event format the viewers actually require: complete spans
// ("X", with Ts/Dur), counter samples ("C", Args carry the values) and
// metadata ("M", names a pid/tid track). Timestamps are microseconds;
// simulation tracks substitute cycles one-for-one (see the package
// comment on timebases).
type Event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

package obs

import (
	"fmt"

	"javasmt/internal/counters"
)

// CoreState is the instantaneous pipeline state the CPU reports with
// each sample: per-logical-processor occupancy of the partitioned (or
// dynamically shared) structures, indexed by global logical-processor
// number. Slices are sized max(2, total contexts) — never shorter than
// two, so the serialized form of the paper's one- and two-context
// machines is unchanged from when these were fixed pairs.
type CoreState struct {
	// ROB, Loads and Stores are in-flight µops per context.
	ROB    []int `json:"rob"`
	Loads  []int `json:"loads"`
	Stores []int `json:"stores"`
	// TCLines counts valid trace-cache lines held per context; under HT
	// the split shows the capacity each thread actually claims.
	TCLines []int `json:"tc_lines"`
	// ITLBEntries counts valid ITLB translations per context partition
	// (a core's worth lands in its first context's index when the
	// structure is unpartitioned).
	ITLBEntries []int `json:"itlb_entries"`
}

// NewCoreState allocates a CoreState for a machine with total logical
// processors (minimum two, preserving the legacy two-lane shape).
func NewCoreState(total int) CoreState {
	if total < 2 {
		total = 2
	}
	return CoreState{
		ROB:         make([]int, total),
		Loads:       make([]int, total),
		Stores:      make([]int, total),
		TCLines:     make([]int, total),
		ITLBEntries: make([]int, total),
	}
}

// Sample is one point of a run's time-series. Windowed metrics (IPC,
// per-1k-µop miss ratios, MPKI) are computed over the interval since the
// previous sample — the paper's counter-over-time view; the Cum block is
// the cumulative counter state at the sample cycle, so the final sample
// of a run reproduces its end-of-run counter file exactly.
type Sample struct {
	Cycle uint64 `json:"cycle"`

	// Interval metrics (since the previous sample).
	IPC        float64 `json:"ipc"`
	TCPer1K    float64 `json:"tc_miss_per_1k"`
	L1DPer1K   float64 `json:"l1d_miss_per_1k"`
	L2Per1K    float64 `json:"l2_miss_per_1k"`
	BranchMPKI float64 `json:"branch_mpki"`

	// Instantaneous pipeline state.
	Core CoreState `json:"core"`

	// Cumulative counters at this cycle.
	Cum CumCounters `json:"cum"`
}

// CumCounters is the cumulative slice of the counter file carried on
// every sample — the events behind each of the paper's figures.
type CumCounters struct {
	Cycles      uint64 `json:"cycles"`
	Uops        uint64 `json:"uops"`
	TCMisses    uint64 `json:"tc_misses"`
	L1DMisses   uint64 `json:"l1d_misses"`
	L2Misses    uint64 `json:"l2_misses"`
	ITLBMisses  uint64 `json:"itlb_misses"`
	DTLBMisses  uint64 `json:"dtlb_misses"`
	Branches    uint64 `json:"branches"`
	BTBMisses   uint64 `json:"btb_misses"`
	Mispredicts uint64 `json:"mispredicts"`
	MemReads    uint64 `json:"mem_reads"`
	MemWrites   uint64 `json:"mem_writes"`

	// Synchronization events (ISSUE 10): monitor, fence and CAS
	// activity, so sync-bound runs expose their blocking profile in the
	// same series as their cache profile.
	LockAcquires     uint64 `json:"lock_acquires"`
	LockContended    uint64 `json:"lock_contended"`
	FenceUops        uint64 `json:"fence_uops"`
	FenceStallCycles uint64 `json:"fence_stall_cycles"`
	CASOps           uint64 `json:"cas_ops"`
	CASFailures      uint64 `json:"cas_failures"`
}

// cum extracts the cumulative block from a counter file.
func cum(f *counters.File) CumCounters {
	return CumCounters{
		Cycles:      f.Get(counters.Cycles),
		Uops:        f.Get(counters.Instructions),
		TCMisses:    f.Get(counters.TCMisses),
		L1DMisses:   f.Get(counters.L1DMisses),
		L2Misses:    f.Get(counters.L2Misses),
		ITLBMisses:  f.Get(counters.ITLBMisses),
		DTLBMisses:  f.Get(counters.DTLBMisses),
		Branches:    f.Get(counters.Branches),
		BTBMisses:   f.Get(counters.BTBMisses),
		Mispredicts: f.Get(counters.BranchMispredicts),
		MemReads:    f.Get(counters.MemReads),
		MemWrites:   f.Get(counters.MemWrites),

		LockAcquires:     f.Get(counters.LockAcquires),
		LockContended:    f.Get(counters.LockContended),
		FenceUops:        f.Get(counters.FenceUops),
		FenceStallCycles: f.Get(counters.FenceStallCycles),
		CASOps:           f.Get(counters.CASOps),
		CASFailures:      f.Get(counters.CASFailures),
	}
}

// SamplingInfo is the per-run sampled-simulation record: how much of the
// run was measured in detail and how trustworthy the extrapolation is.
// It mirrors the fields of sampling.Estimate that matter for reading a
// series (obs sits below internal/sampling, so the struct is restated
// here rather than imported). Absent (nil) on full-simulation runs.
type SamplingInfo struct {
	// Mode is the simulation mode ("sampled").
	Mode string `json:"mode"`
	// Windows is the number of detailed windows the run closed.
	Windows int `json:"windows"`
	// WindowIPC is the pooled IPC across those windows.
	WindowIPC float64 `json:"window_ipc"`
	// IPCRelErr is the relative standard error of the per-window IPCs.
	IPCRelErr float64 `json:"ipc_rel_err"`
	// DetailPct is the percentage of µops run through the detailed
	// pipeline; MeasuredPct additionally counts the warmed functional
	// tier, whose structure statistics are exact.
	DetailPct   float64 `json:"detail_pct"`
	MeasuredPct float64 `json:"measured_pct"`
}

// RunSeries is the recorded time-series of one simulation.
type RunSeries struct {
	Label   string   `json:"label"`
	Samples []Sample `json:"samples"`
	// Sampling records the sampled-simulation confidence data when the
	// run used interval sampling; nil (omitted) for full simulation.
	Sampling *SamplingInfo `json:"sampling,omitempty"`
}

// Final returns the last sample (the end-of-run state), or a zero sample
// if nothing was recorded.
func (r *RunSeries) Final() Sample {
	if r == nil || len(r.Samples) == 0 {
		return Sample{}
	}
	return r.Samples[len(r.Samples)-1]
}

// RunObs observes one simulation. It is built by Sink.Run, owned by the
// simulation's goroutine (no locking on the sampling path; only trace
// appends synchronize on the sink), and is nil-safe throughout: a nil
// *RunObs is the disabled observer every hook accepts.
type RunObs struct {
	sink   *Sink
	series *RunSeries // nil when metrics are off
	pid    int
	trace  bool
	stride uint64

	prev counters.File // cumulative state at the previous sample
}

// Sample records one time-series point at the given cycle from the
// machine's cumulative counter file and instantaneous core state.
// Consecutive calls at the same cycle collapse into one sample (the
// final flush often lands on a stride boundary). Nil-safe.
func (r *RunObs) Sample(cycle uint64, f *counters.File, st *CoreState) {
	if r == nil {
		return
	}
	win := f.Sub(&r.prev)
	s := Sample{
		Cycle:      cycle,
		IPC:        win.IPC(),
		TCPer1K:    win.PerKiloInstr(counters.TCMisses),
		L1DPer1K:   win.PerKiloInstr(counters.L1DMisses),
		L2Per1K:    win.PerKiloInstr(counters.L2Misses),
		BranchMPKI: win.PerKiloInstr(counters.BranchMispredicts),
		Core:       *st,
		Cum:        cum(f),
	}
	r.prev = *f
	if r.series != nil {
		if n := len(r.series.Samples); n > 0 && r.series.Samples[n-1].Cycle == cycle {
			r.series.Samples[n-1] = s
		} else {
			r.series.Samples = append(r.series.Samples, s)
		}
	}
	if r.trace {
		ts := float64(cycle)
		robArgs := make(map[string]any, len(st.ROB))
		lsqArgs := make(map[string]any, 2*len(st.Loads))
		for i := range st.ROB {
			robArgs[fmt.Sprintf("lp%d", i)] = st.ROB[i]
			lsqArgs[fmt.Sprintf("loads%d", i)] = st.Loads[i]
			lsqArgs[fmt.Sprintf("stores%d", i)] = st.Stores[i]
		}
		r.sink.addEvents(
			Event{Name: "IPC", Phase: "C", Ts: ts, Pid: r.pid,
				Args: map[string]any{"ipc": s.IPC}},
			Event{Name: "misses/1k", Phase: "C", Ts: ts, Pid: r.pid,
				Args: map[string]any{"tc": s.TCPer1K, "l1d": s.L1DPer1K, "l2": s.L2Per1K}},
			Event{Name: "ROB", Phase: "C", Ts: ts, Pid: r.pid, Args: robArgs},
			Event{Name: "LSQ", Phase: "C", Ts: ts, Pid: r.pid, Args: lsqArgs},
		)
	}
}

// ThreadSlice records that software thread name occupied logical
// processor ctx from cycle start to cycle end — one span on the run's
// per-LP track. The OS substrate calls it at every switch-out. Nil-safe;
// a no-op unless tracing is on.
func (r *RunObs) ThreadSlice(ctx int, name string, start, end uint64) {
	if r == nil || !r.trace || end <= start {
		return
	}
	r.sink.addEvents(Event{
		Name: name, Phase: "X",
		Ts: float64(start), Dur: float64(end - start),
		Pid: r.pid, Tid: ctx,
	})
}

// SetSampling attaches the sampled-simulation record to the run's
// series. Nil-safe; a no-op when metrics are off.
func (r *RunObs) SetSampling(info *SamplingInfo) {
	if r == nil || r.series == nil {
		return
	}
	r.series.Sampling = info
}

// Stride returns the sample interval the observer was built with.
// Nil-safe.
func (r *RunObs) Stride() uint64 {
	if r == nil {
		return DefaultStride
	}
	return r.stride
}

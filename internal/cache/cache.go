// Package cache models the Pentium 4 cache hierarchy used in the paper:
// an 8 KB 4-way set-associative L1 data cache, a 12 Kµop trace cache in
// place of a conventional L1 instruction cache, and a 1 MB 8-way unified
// L2, all with 64-byte lines.
//
// Two sharing disciplines matter for the paper's results and both are
// modelled here:
//
//   - Physically-tagged caches (L1D, L2) are shared by the two logical
//     processors without thread tags, so identical addresses hit for both
//     contexts — this is the constructive interference that makes L2
//     behave *better* under Hyper-Threading for benchmarks whose data fits.
//
//   - The trace cache tags its lines with the logical-processor ID
//     (as the real P4 does), so even two threads running the very same
//     JVM handler code cannot share lines; enabling HT halves the
//     effective capacity and adds conflicts, which is why trace-cache
//     misses consistently rise under HT in the paper.
package cache

import "javasmt/internal/check"

// Config describes one set-associative cache.
type Config struct {
	// Name appears in counter reports ("L1D", "L2", "TC").
	Name string
	// Size is the total capacity in bytes (or in µops for the trace
	// cache, see TraceCacheConfig).
	Size int
	// LineSize is the block size in bytes.
	LineSize int
	// Assoc is the number of ways per set.
	Assoc int
	// HitLatency is the access time in cycles on a hit.
	HitLatency int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.Size / (c.LineSize * c.Assoc) }

// Stats accumulates per-cache event counts. Counters are split by the
// requesting logical processor so the harness can attribute misses.
type Stats struct {
	Accesses [2]uint64
	Misses   [2]uint64
	// Evictions counts lines displaced by fills.
	Evictions uint64
	// CrossHits counts hits on lines most recently touched by the other
	// logical processor: a direct measure of constructive interference.
	CrossHits uint64
}

// TotalAccesses sums accesses over both contexts.
func (s Stats) TotalAccesses() uint64 { return s.Accesses[0] + s.Accesses[1] }

// TotalMisses sums misses over both contexts.
func (s Stats) TotalMisses() uint64 { return s.Misses[0] + s.Misses[1] }

// line is one cache line's bookkeeping. Tags include the line address;
// owner tracks the last toucher for cross-hit accounting; tid is the
// logical-processor tag for thread-tagged caches (-1 = untagged/shared).
type line struct {
	tag   uint64
	lru   uint64
	valid bool
	owner uint8
	tid   int8
}

// Cache is a set-associative cache with true-LRU replacement.
//
// It is a timing/occupancy model only: no data is stored. Lookup returns
// hit/miss; on miss the line is filled immediately (the latency cost is
// applied by the caller, which knows what the next level returned).
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	// tagged selects thread-tagged lines (trace cache style).
	tagged bool
	stats  Stats
	// ckHits counts hit-path exits, maintained only under -tags checks so
	// the hits+misses==accesses invariant can be asserted without adding a
	// counter to the default build's hot path.
	ckHits uint64
}

// New builds a cache from cfg. It panics if the geometry is not a power
// of two, which would indicate a configuration bug rather than a runtime
// condition.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: number of sets must be a positive power of two: " + cfg.Name)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two: " + cfg.Name)
	}
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1)}
	for cfg.LineSize>>c.lineBits > 1 {
		c.lineBits++
	}
	c.sets = make([][]line, sets)
	backing := make([]line, sets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c
}

// NewTagged builds a thread-tagged cache: lines are private to the logical
// processor that filled them, as in the P4 trace cache and BTB.
func NewTagged(cfg Config) *Cache {
	c := New(cfg)
	c.tagged = true
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without touching cache contents, so a
// warmup phase can be excluded from measurement (the paper drops the
// cold-start run for the same reason).
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.ckHits = 0
}

// Reset returns the cache to its just-built state — contents, LRU clock
// and statistics — while keeping the line arrays allocated. Unlike
// Flush it also zeroes each line's LRU stamp: victim selection consults
// the stamps of lines it is about to fill over, so stale values would
// steer fills differently than on a fresh cache.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.tick = 0
	c.stats = Stats{}
	c.ckHits = 0
}

// Flush invalidates every line (used on simulated process teardown).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// FlushThread invalidates all lines belonging to logical processor ctx in
// a thread-tagged cache; untagged caches are unaffected. The OS model
// calls this when a different address space is switched onto a context.
func (c *Cache) FlushThread(ctx int) {
	if !c.tagged {
		return
	}
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].tid == int8(ctx) {
				set[i].valid = false
			}
		}
	}
}

// Access performs a lookup for addr by logical processor ctx, filling the
// line on a miss. It returns true on hit.
func (c *Cache) Access(addr uint64, ctx int) bool {
	c.tick++
	c.stats.Accesses[ctx&1]++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	want := int8(-1)
	if c.tagged {
		want = int8(ctx)
	}
	// Hit path.
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == lineAddr && l.tid == want {
			l.lru = c.tick
			if l.owner != uint8(ctx&1) {
				c.stats.CrossHits++
				l.owner = uint8(ctx & 1)
			}
			if check.Enabled && check.On {
				c.ckHits++
				check.Assert(c.ckHits+c.stats.TotalMisses() == c.stats.TotalAccesses(),
					c.cfg.Name, "hits %d + misses %d != accesses %d",
					c.ckHits, c.stats.TotalMisses(), c.stats.TotalAccesses())
			}
			return true
		}
	}
	// Miss: fill over the LRU way.
	c.stats.Misses[ctx&1]++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid {
		c.stats.Evictions++
	}
	set[victim] = line{tag: lineAddr, lru: c.tick, valid: true, owner: uint8(ctx & 1), tid: want}
	if check.Enabled && check.On {
		check.Assert(c.Probe(addr, ctx), c.cfg.Name,
			"line %#x not resident immediately after a miss fill (ctx %d)", lineAddr, ctx)
		check.Assert(c.ckHits+c.stats.TotalMisses() == c.stats.TotalAccesses(),
			c.cfg.Name, "hits %d + misses %d != accesses %d",
			c.ckHits, c.stats.TotalMisses(), c.stats.TotalAccesses())
	}
	return false
}

// Occupancy returns the number of valid lines currently held by each
// logical processor — by line tag for thread-tagged caches, by last
// toucher (owner) for shared ones. The observability layer samples it to
// show how the two contexts split a structure's capacity over time, the
// mechanism behind the paper's trace-cache degradation under HT.
func (c *Cache) Occupancy() (out [2]int) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				out[set[i].owner&1]++
			}
		}
	}
	return out
}

// Probe reports whether addr would hit without updating LRU state or
// statistics. Tests use it to inspect cache contents.
func (c *Cache) Probe(addr uint64, ctx int) bool {
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	want := int8(-1)
	if c.tagged {
		want = int8(ctx)
	}
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr && set[i].tid == want {
			return true
		}
	}
	return false
}

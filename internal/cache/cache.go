// Package cache models the Pentium 4 cache hierarchy used in the paper:
// an 8 KB 4-way set-associative L1 data cache, a 12 Kµop trace cache in
// place of a conventional L1 instruction cache, and a 1 MB 8-way unified
// L2, all with 64-byte lines.
//
// Two sharing disciplines matter for the paper's results and both are
// modelled here:
//
//   - Physically-tagged caches (L1D, L2) are shared by the two logical
//     processors without thread tags, so identical addresses hit for both
//     contexts — this is the constructive interference that makes L2
//     behave *better* under Hyper-Threading for benchmarks whose data fits.
//
//   - The trace cache tags its lines with the logical-processor ID
//     (as the real P4 does), so even two threads running the very same
//     JVM handler code cannot share lines; enabling HT halves the
//     effective capacity and adds conflicts, which is why trace-cache
//     misses consistently rise under HT in the paper.
package cache

import "javasmt/internal/check"

// Config describes one set-associative cache.
type Config struct {
	// Name appears in counter reports ("L1D", "L2", "TC").
	Name string
	// Size is the total capacity in bytes (or in µops for the trace
	// cache, see TraceCacheConfig).
	Size int
	// LineSize is the block size in bytes.
	LineSize int
	// Assoc is the number of ways per set.
	Assoc int
	// HitLatency is the access time in cycles on a hit.
	HitLatency int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.Size / (c.LineSize * c.Assoc) }

// Stats accumulates per-cache event counts. Counters are split by the
// requesting logical processor so the harness can attribute misses.
type Stats struct {
	Accesses [2]uint64
	Misses   [2]uint64
	// Evictions counts lines displaced by fills.
	Evictions uint64
	// CrossHits counts hits on lines most recently touched by the other
	// logical processor: a direct measure of constructive interference.
	CrossHits uint64
}

// TotalAccesses sums accesses over both contexts.
func (s Stats) TotalAccesses() uint64 { return s.Accesses[0] + s.Accesses[1] }

// TotalMisses sums misses over both contexts.
func (s Stats) TotalMisses() uint64 { return s.Misses[0] + s.Misses[1] }

// line is one cache line's bookkeeping, packed to 16 bytes so a 4-way set
// is exactly one host cache line and an 8-way set two — the structure
// walk is the hottest loop in the whole simulator (every load, store and
// trace refill in both the detailed and functional engines lands here).
// key packs the match state into one comparable word:
//
//	bit 0     valid
//	bits 1-5  logical-processor tag + 1 for thread-tagged caches
//	          (0 = untagged/shared line; up to 16 contexts per core)
//	bits 6-9  owner: last toucher, for cross-hit accounting
//	bits 10+  line address
//
// A lookup compares key with the owner bits masked off, so hit detection
// is a single AND+compare per way. Invalidation clears only the valid
// bit: like the previous representation, the LRU stamp of an invalidated
// line survives and continues to steer victim selection.
type line struct {
	key uint64
	lru uint64
}

const (
	keyValid      = 1
	keyTidShift   = 1
	keyTidMask    = 31 << keyTidShift
	keyOwnerShift = 6
	keyOwnerMask  = 15 << keyOwnerShift
	keyAddrShift  = 10
)

// Cache is a set-associative cache with true-LRU replacement.
//
// It is a timing/occupancy model only: no data is stored. Lookup returns
// hit/miss; on miss the line is filled immediately (the latency cost is
// applied by the caller, which knows what the next level returned).
type Cache struct {
	cfg      Config
	lines    []line // flat [set*assoc+way]
	assoc    int
	setMask  uint64
	lineBits uint
	tick     uint64
	// tagged selects thread-tagged lines (trace cache style).
	tagged bool
	stats  Stats
	// ckHits counts hit-path exits, maintained only under -tags checks so
	// the hits+misses==accesses invariant can be asserted without adding a
	// counter to the default build's hot path.
	ckHits uint64
}

// New builds a cache from cfg. It panics if the geometry is not a power
// of two, which would indicate a configuration bug rather than a runtime
// condition.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: number of sets must be a positive power of two: " + cfg.Name)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: line size must be a power of two: " + cfg.Name)
	}
	c := &Cache{cfg: cfg, assoc: cfg.Assoc, setMask: uint64(sets - 1)}
	for cfg.LineSize>>c.lineBits > 1 {
		c.lineBits++
	}
	c.lines = make([]line, sets*cfg.Assoc)
	return c
}

// NewTagged builds a thread-tagged cache: lines are private to the logical
// processor that filled them, as in the P4 trace cache and BTB.
func NewTagged(cfg Config) *Cache {
	c := New(cfg)
	c.tagged = true
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without touching cache contents, so a
// warmup phase can be excluded from measurement (the paper drops the
// cold-start run for the same reason).
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.ckHits = 0
}

// Reset returns the cache to its just-built state — contents, LRU clock
// and statistics — while keeping the line array allocated. Unlike
// Flush it also zeroes each line's LRU stamp: victim selection consults
// the stamps of lines it is about to fill over, so stale values would
// steer fills differently than on a fresh cache.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.tick = 0
	c.stats = Stats{}
	c.ckHits = 0
}

// Flush invalidates every line (used on simulated process teardown).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i].key &^= keyValid
	}
}

// FlushThread invalidates all lines belonging to logical processor ctx in
// a thread-tagged cache; untagged caches are unaffected. The OS model
// calls this when a different address space is switched onto a context.
func (c *Cache) FlushThread(ctx int) {
	if !c.tagged {
		return
	}
	tid := (uint64(ctx) + 1) << keyTidShift
	for i := range c.lines {
		l := &c.lines[i]
		if l.key&keyValid != 0 && l.key&keyTidMask == tid {
			l.key &^= keyValid
		}
	}
}

// Access performs a lookup for addr by logical processor ctx, filling the
// line on a miss. It returns true on hit.
func (c *Cache) Access(addr uint64, ctx int) bool {
	c.tick++
	c.stats.Accesses[ctx&1]++
	lineAddr := addr >> c.lineBits
	base := int(lineAddr&c.setMask) * c.assoc
	set := c.lines[base : base+c.assoc]
	want := lineAddr<<keyAddrShift | keyValid
	if c.tagged {
		want |= (uint64(ctx) + 1) << keyTidShift
	}
	owner := uint64(ctx&15) << keyOwnerShift
	// Hit path.
	for i := range set {
		l := &set[i]
		if l.key&^uint64(keyOwnerMask) == want {
			l.lru = c.tick
			if l.key&keyOwnerMask != owner {
				c.stats.CrossHits++
				l.key = l.key&^uint64(keyOwnerMask) | owner
			}
			if check.Enabled && check.On {
				c.ckHits++
				check.Assert(c.ckHits+c.stats.TotalMisses() == c.stats.TotalAccesses(),
					c.cfg.Name, "hits %d + misses %d != accesses %d",
					c.ckHits, c.stats.TotalMisses(), c.stats.TotalAccesses())
			}
			return true
		}
	}
	// Miss: fill over the LRU way (invalid ways first, by index).
	c.stats.Misses[ctx&1]++
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].key&keyValid == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].key&keyValid != 0 {
		c.stats.Evictions++
	}
	set[victim] = line{key: want | owner, lru: c.tick}
	if check.Enabled && check.On {
		check.Assert(c.Probe(addr, ctx), c.cfg.Name,
			"line %#x not resident immediately after a miss fill (ctx %d)", lineAddr, ctx)
		check.Assert(c.ckHits+c.stats.TotalMisses() == c.stats.TotalAccesses(),
			c.cfg.Name, "hits %d + misses %d != accesses %d",
			c.ckHits, c.stats.TotalMisses(), c.stats.TotalAccesses())
	}
	return false
}

// Occupancy returns the number of valid lines currently held by each
// logical processor — by line tag for thread-tagged caches, by last
// toucher (owner) for shared ones. The observability layer samples it to
// show how the two contexts split a structure's capacity over time, the
// mechanism behind the paper's trace-cache degradation under HT. Contexts
// beyond the first two fold into the array by parity; wider machines use
// OccupancyInto.
func (c *Cache) Occupancy() (out [2]int) {
	for i := range c.lines {
		if k := c.lines[i].key; k&keyValid != 0 {
			out[(k>>keyOwnerShift)&1]++
		}
	}
	return out
}

// OccupancyInto counts valid lines per owning context into out (indexed
// by the context id used in Access) and returns it. Lines owned by a
// context beyond len(out) are dropped.
func (c *Cache) OccupancyInto(out []int) []int {
	for i := range out {
		out[i] = 0
	}
	for i := range c.lines {
		if k := c.lines[i].key; k&keyValid != 0 {
			if owner := int(k>>keyOwnerShift) & 15; owner < len(out) {
				out[owner]++
			}
		}
	}
	return out
}

// Probe reports whether addr would hit without updating LRU state or
// statistics. Tests use it to inspect cache contents.
func (c *Cache) Probe(addr uint64, ctx int) bool {
	lineAddr := addr >> c.lineBits
	base := int(lineAddr&c.setMask) * c.assoc
	set := c.lines[base : base+c.assoc]
	want := lineAddr<<keyAddrShift | keyValid
	if c.tagged {
		want |= (uint64(ctx) + 1) << keyTidShift
	}
	for i := range set {
		if set[i].key&^uint64(keyOwnerMask) == want {
			return true
		}
	}
	return false
}

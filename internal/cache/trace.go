package cache

// TraceCacheConfig describes the P4-style execution trace cache. The
// Pentium 4 of the paper stores about 12 K decoded µops, organised here as
// lines of LineUops µops, replacing a conventional L1 instruction cache.
type TraceCacheConfig struct {
	// CapacityUops is the total number of µops the trace cache holds
	// (12288 for the paper's machine).
	CapacityUops int
	// LineUops is the number of µops per trace line (6 on the P4).
	LineUops int
	// Assoc is the set associativity (8 on the P4).
	Assoc int
	// SharedTags, when true, drops the per-logical-processor line tags
	// so both contexts can share trace lines. This is the ablation knob
	// from DESIGN.md §9 — the real P4 uses private (tagged) lines.
	SharedTags bool
	// MissPenalty is the extra front-end latency, in cycles, to rebuild
	// a trace from the L2/decoder on a miss.
	MissPenalty int
}

// DefaultTraceCacheConfig returns the paper machine's trace cache geometry.
func DefaultTraceCacheConfig() TraceCacheConfig {
	return TraceCacheConfig{CapacityUops: 12288, LineUops: 6, Assoc: 8, MissPenalty: 36}
}

// TraceCache models trace-line lookups. Internally it reuses the generic
// set-associative Cache with "byte addresses" measured in µop indices:
// a µop at instruction address pc maps to trace line pc/LineUops.
//
// The front end calls Lookup once per fetched line; a miss costs
// MissPenalty cycles and one ITLB translation (performed by the caller,
// matching the paper's description that the ITLB is consulted to access
// the L2 cache when the machine misses the trace cache).
type TraceCache struct {
	cfg   TraceCacheConfig
	inner *Cache
}

// NewTraceCache builds a trace cache from cfg.
//
// Internally the line grouping (pc → pc/LineUops) is done here by integer
// division, because trace lines hold 6 µops — not a power of two — while
// the generic Cache indexes by power-of-two line sizes. The inner cache
// therefore stores one "byte" per trace line (12288/6 = 2048 lines,
// 2048/8 = 256 sets for the paper machine).
func NewTraceCache(cfg TraceCacheConfig) *TraceCache {
	inner := Config{
		Name:       "TC",
		Size:       cfg.CapacityUops / cfg.LineUops,
		LineSize:   1,
		Assoc:      cfg.Assoc,
		HitLatency: 1,
	}
	tc := &TraceCache{cfg: cfg}
	if cfg.SharedTags {
		tc.inner = New(inner)
	} else {
		tc.inner = NewTagged(inner)
	}
	return tc
}

// Config returns the trace cache geometry.
func (t *TraceCache) Config() TraceCacheConfig { return t.cfg }

// Lookup accesses the trace line containing pc for logical processor ctx.
// It returns hit and the front-end latency in cycles.
func (t *TraceCache) Lookup(pc uint64, ctx int) (hit bool, lat int) {
	// PCs advance by one per µop (see the bytecode code layout), so
	// dividing by LineUops groups consecutive µops into one trace line.
	pc /= uint64(t.cfg.LineUops)
	if t.inner.Access(pc, ctx) {
		return true, t.inner.cfg.HitLatency
	}
	return false, t.cfg.MissPenalty
}

// Stats returns the accumulated access/miss statistics.
func (t *TraceCache) Stats() Stats { return t.inner.Stats() }

// Occupancy returns valid trace lines held per logical processor.
func (t *TraceCache) Occupancy() [2]int { return t.inner.Occupancy() }

// OccupancyInto counts valid trace lines per owning context into out.
func (t *TraceCache) OccupancyInto(out []int) []int { return t.inner.OccupancyInto(out) }

// ResetStats zeroes statistics, preserving contents.
func (t *TraceCache) ResetStats() { t.inner.ResetStats() }

// Flush invalidates the whole trace cache.
func (t *TraceCache) Flush() { t.inner.Flush() }

// Reset restores the trace cache to its just-built state (contents and
// statistics), reusing the line array.
func (t *TraceCache) Reset() { t.inner.Reset() }

// FlushThread invalidates context ctx's private trace lines.
func (t *TraceCache) FlushThread(ctx int) { t.inner.FlushThread(ctx) }

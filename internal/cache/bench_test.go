package cache

import "testing"

// BenchmarkCacheAccess measures a raw set-associative lookup on the L1D
// geometry over a footprint that mixes hits, misses and evictions.
func BenchmarkCacheAccess(b *testing.B) {
	c := New(DefaultHierarchyConfig().L1D)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c.Access(0x2000_0000+uint64(n*64)%(1<<15), n&1)
	}
}

// BenchmarkHierarchyData measures the full load path — L1D probe, L2
// probe, flat DRAM on a double miss — as the core's fetchInto sees it.
func BenchmarkHierarchyData(b *testing.B) {
	h := NewHierarchy(DefaultHierarchyConfig(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		h.Data(0x2000_0000+uint64(n*64)%(1<<22), n&3 == 0, n&1, uint64(n))
	}
}

package cache

// Memory is the interface the hierarchy uses to reach DRAM on an L2 miss.
// It returns the access latency in cycles; implementations may model
// front-side-bus queueing (see internal/mem).
type Memory interface {
	Access(addr uint64, write bool, now uint64) int
}

// flatMemory is the fallback DRAM model: a fixed latency.
type flatMemory int

func (f flatMemory) Access(uint64, bool, uint64) int { return int(f) }

// HierarchyConfig assembles the data-side hierarchy of the paper machine.
type HierarchyConfig struct {
	L1D Config
	L2  Config
}

// DefaultHierarchyConfig returns the paper machine's data hierarchy:
// 8 KB 4-way L1D with 64 B lines, 1 MB 8-way unified L2 with 64 B lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D: Config{Name: "L1D", Size: 8 << 10, LineSize: 64, Assoc: 4, HitLatency: 4},
		L2:  Config{Name: "L2", Size: 1 << 20, LineSize: 64, Assoc: 8, HitLatency: 24},
	}
}

// Hierarchy is the unified data/instruction memory hierarchy below the
// level-1 structures: loads and stores probe L1D then L2 then DRAM;
// trace-cache refills probe L2 then DRAM (the P4 L2 is unified).
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
	mem Memory
	// l1Hit/l2Hit are the hit latencies hoisted out of the per-access
	// path (Config() returns the geometry struct by value, which is too
	// expensive to copy on every load and store).
	l1Hit, l2Hit int
}

// NewHierarchy builds the hierarchy; mem may be nil, in which case a flat
// 200-cycle DRAM is used.
func NewHierarchy(cfg HierarchyConfig, mem Memory) *Hierarchy {
	return NewHierarchyShared(cfg, New(cfg.L2), mem)
}

// NewHierarchyShared builds a hierarchy whose L1D is private but whose L2
// is the supplied (possibly shared) cache. Multi-core machines give every
// core its own Hierarchy over one chip-wide L2 and DRAM, matching the
// CMP sharing discipline: level-1 state is per core, the outer levels are
// contended chip resources.
func NewHierarchyShared(cfg HierarchyConfig, l2 *Cache, mem Memory) *Hierarchy {
	if mem == nil {
		mem = flatMemory(200)
	}
	return &Hierarchy{
		L1D: New(cfg.L1D), L2: l2, mem: mem,
		l1Hit: cfg.L1D.HitLatency, l2Hit: l2.cfg.HitLatency,
	}
}

// Data performs a load or store by logical processor ctx at cycle now and
// returns the total access latency in cycles.
func (h *Hierarchy) Data(addr uint64, write bool, ctx int, now uint64) int {
	if h.L1D.Access(addr, ctx) {
		return h.l1Hit
	}
	if h.L2.Access(addr, ctx) {
		return h.l1Hit + h.l2Hit
	}
	return h.l1Hit + h.l2Hit + h.mem.Access(addr, write, now)
}

// Fill performs an instruction-side refill (after a trace-cache miss) and
// returns the latency contributed by L2/DRAM. Instruction addresses live
// in a distinct region of the virtual address space, so code naturally
// contends with data in the unified L2, as on the real machine.
func (h *Hierarchy) Fill(pc uint64, ctx int, now uint64) int {
	if h.L2.Access(pc, ctx) {
		return h.l2Hit
	}
	return h.l2Hit + h.mem.Access(pc, false, now)
}

// Reset restores both levels to their just-built state (contents and
// statistics), reusing the line arrays.
func (h *Hierarchy) Reset() {
	h.L1D.Reset()
	h.L2.Reset()
}

// ResetStats clears statistics on both cache levels.
func (h *Hierarchy) ResetStats() {
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

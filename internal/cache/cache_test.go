package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Name: "T", Size: 1 << 10, LineSize: 64, Assoc: 2, HitLatency: 1}
}

func TestConfigSets(t *testing.T) {
	cfg := smallConfig()
	if got := cfg.Sets(); got != 8 {
		t.Fatalf("Sets() = %d, want 8", got)
	}
	d := DefaultHierarchyConfig()
	if got := d.L1D.Sets(); got != 32 {
		t.Fatalf("L1D sets = %d, want 32", got)
	}
	if got := d.L2.Sets(); got != 2048 {
		t.Fatalf("L2 sets = %d, want 2048", got)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(Config{Name: "bad", Size: 3 * 64, LineSize: 64, Assoc: 1})
}

func TestColdMissThenHit(t *testing.T) {
	c := New(smallConfig())
	if c.Access(0x1000, 0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0x1000, 0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1038, 0) {
		t.Fatal("same-line access should hit")
	}
	s := c.Stats()
	if s.TotalAccesses() != 3 || s.TotalMisses() != 1 {
		t.Fatalf("stats = %+v, want 3 accesses / 1 miss", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(smallConfig()) // 8 sets, 2 ways, 64B lines
	// Three addresses mapping to set 0: 0, 8*64, 16*64.
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a, 0)
	c.Access(b, 0)
	c.Access(a, 0) // a is now MRU, b is LRU
	c.Access(d, 0) // evicts b
	if !c.Probe(a, 0) {
		t.Fatal("a should survive (MRU)")
	}
	if c.Probe(b, 0) {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !c.Probe(d, 0) {
		t.Fatal("d should be resident")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestUntaggedSharingIsConstructive(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x2000, 0)
	if !c.Access(0x2000, 1) {
		t.Fatal("context 1 should hit on a line filled by context 0 in an untagged cache")
	}
	if ch := c.Stats().CrossHits; ch != 1 {
		t.Fatalf("cross hits = %d, want 1", ch)
	}
}

func TestTaggedLinesArePrivate(t *testing.T) {
	c := NewTagged(smallConfig())
	c.Access(0x2000, 0)
	if c.Access(0x2000, 1) {
		t.Fatal("context 1 must miss on context 0's private line in a tagged cache")
	}
	// Both copies coexist afterwards.
	if !c.Probe(0x2000, 0) || !c.Probe(0x2000, 1) {
		t.Fatal("both contexts should now have private copies")
	}
}

func TestFlushThread(t *testing.T) {
	c := NewTagged(smallConfig())
	c.Access(0x1000, 0)
	c.Access(0x2000, 1)
	c.FlushThread(0)
	if c.Probe(0x1000, 0) {
		t.Fatal("context 0 line should be flushed")
	}
	if !c.Probe(0x2000, 1) {
		t.Fatal("context 1 line should survive a context-0 flush")
	}
	// Untagged caches ignore FlushThread.
	u := New(smallConfig())
	u.Access(0x1000, 0)
	u.FlushThread(0)
	if !u.Probe(0x1000, 0) {
		t.Fatal("FlushThread must not touch untagged caches")
	}
}

func TestFlushAndResetStats(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x1000, 0)
	c.Flush()
	if c.Probe(0x1000, 0) {
		t.Fatal("line should be gone after Flush")
	}
	c.ResetStats()
	if s := c.Stats(); s.TotalAccesses() != 0 || s.TotalMisses() != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// Property: misses never exceed accesses, per context and in total.
func TestMissesNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint16, ctxBits uint64) bool {
		c := New(smallConfig())
		for i, a := range addrs {
			c.Access(uint64(a)<<3, int(ctxBits>>uint(i%64))&1)
		}
		s := c.Stats()
		return s.Misses[0] <= s.Accesses[0] && s.Misses[1] <= s.Accesses[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the working set of at most Assoc lines per set always hits
// after the first touch (LRU never evicts within-capacity working sets).
func TestWithinSetCapacityAlwaysHits(t *testing.T) {
	c := New(smallConfig()) // 2 ways
	a, b := uint64(0x0), uint64(8*64)
	c.Access(a, 0)
	c.Access(b, 0)
	for i := 0; i < 100; i++ {
		if !c.Access(a, 0) || !c.Access(b, 0) {
			t.Fatal("within-capacity working set must not miss")
		}
	}
}

// Tagged caches share physical ways but cannot share lines, so a second
// context replaying the very same address trace *increases* the first
// context's misses — the destructive interference the paper measures in
// the trace cache. An untagged cache sees no such increase.
func TestTaggedSharingIsDestructive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := make([]uint64, 400)
	for i := range trace {
		trace[i] = uint64(rng.Intn(64)) * 64
	}
	run := func(tagged bool) (solo, both uint64) {
		mk := New
		if tagged {
			mk = NewTagged
		}
		s := mk(smallConfig())
		for _, a := range trace {
			s.Access(a, 0)
		}
		b := mk(smallConfig())
		for _, a := range trace {
			b.Access(a, 0)
			b.Access(a, 1)
		}
		return s.Stats().Misses[0], b.Stats().Misses[0]
	}
	if solo, both := run(true); both <= solo {
		t.Fatalf("tagged: interleaving should increase misses, solo=%d both=%d", solo, both)
	}
	if solo, both := run(false); both != solo {
		t.Fatalf("untagged: identical traces should share perfectly, solo=%d both=%d", solo, both)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg, flatMemory(200))
	l1, l2 := cfg.L1D.HitLatency, cfg.L2.HitLatency
	// Cold: L1 miss + L2 miss + DRAM.
	lat := h.Data(0x10000, false, 0, 0)
	if want := l1 + l2 + 200; lat != want {
		t.Fatalf("cold load latency = %d, want %d", lat, want)
	}
	// Warm L1.
	if lat := h.Data(0x10000, false, 0, 1); lat != l1 {
		t.Fatalf("L1 hit latency = %d, want %d", lat, l1)
	}
	// Evict from L1 by sweeping its capacity; should then hit in L2.
	for i := 0; i < 4096; i++ {
		h.Data(0x100000+uint64(i)*64, false, 0, 2)
	}
	if lat := h.Data(0x10000, false, 0, 3); lat != l1+l2 {
		t.Fatalf("L2 hit latency = %d, want %d", lat, l1+l2)
	}
}

func TestHierarchyFillUsesL2(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg, flatMemory(200))
	if lat := h.Fill(0x400000, 0, 0); lat != cfg.L2.HitLatency+200 {
		t.Fatalf("cold fill latency = %d, want %d", lat, cfg.L2.HitLatency+200)
	}
	if lat := h.Fill(0x400000, 0, 1); lat != cfg.L2.HitLatency {
		t.Fatalf("warm fill latency = %d, want %d", lat, cfg.L2.HitLatency)
	}
}

func TestTraceCacheGeometry(t *testing.T) {
	tc := NewTraceCache(DefaultTraceCacheConfig())
	if got := tc.inner.cfg.Sets(); got != 256 {
		t.Fatalf("trace cache sets = %d, want 256", got)
	}
}

func TestTraceCacheHitMissLatency(t *testing.T) {
	tc := NewTraceCache(DefaultTraceCacheConfig())
	hit, lat := tc.Lookup(100, 0)
	if hit || lat != DefaultTraceCacheConfig().MissPenalty {
		t.Fatalf("cold lookup = (%v,%d), want (false,%d)", hit, lat, DefaultTraceCacheConfig().MissPenalty)
	}
	hit, lat = tc.Lookup(100, 0)
	if !hit || lat != 1 {
		t.Fatalf("warm lookup = (%v,%d), want (true,1)", hit, lat)
	}
}

func TestTraceCacheLineGrouping(t *testing.T) {
	tc := NewTraceCache(DefaultTraceCacheConfig())
	tc.Lookup(96, 0) // line 16 covers PCs 96..101
	for pc := uint64(97); pc <= 101; pc++ {
		if hit, _ := tc.Lookup(pc, 0); !hit {
			t.Fatalf("pc %d should share the trace line of pc 96", pc)
		}
	}
	if hit, _ := tc.Lookup(102, 0); hit {
		t.Fatal("pc 102 starts a new trace line and must miss")
	}
}

func TestTraceCacheTagsPrivatePerContext(t *testing.T) {
	tc := NewTraceCache(DefaultTraceCacheConfig())
	tc.Lookup(500, 0)
	hit, _ := tc.Lookup(500, 1)
	if hit {
		t.Fatal("default trace cache must not share lines across contexts")
	}
	shared := NewTraceCache(TraceCacheConfig{CapacityUops: 12288, LineUops: 6, Assoc: 8, SharedTags: true, MissPenalty: 22})
	shared.Lookup(500, 0)
	if hit, _ := shared.Lookup(500, 1); !hit {
		t.Fatal("SharedTags trace cache should hit across contexts")
	}
}

func TestTraceCacheFlushThread(t *testing.T) {
	tc := NewTraceCache(DefaultTraceCacheConfig())
	tc.Lookup(64, 0)
	tc.Lookup(4096, 1)
	tc.FlushThread(0)
	if hit, _ := tc.Lookup(64, 0); hit {
		t.Fatal("context 0 trace line should be flushed")
	}
	if hit, _ := tc.Lookup(4096, 1); !hit {
		t.Fatal("context 1 trace line should survive")
	}
}

//go:build checks

package check

// Enabled reports that this binary was compiled with invariant probes.
// It is a constant so that in the other build flavor every
// `if check.Enabled && ...` probe is eliminated by the compiler.
const Enabled = true

package check

import (
	"strings"
	"testing"
)

func TestSetOn(t *testing.T) {
	defer func() { On = Enabled }()

	if err := SetOn(false); err != nil {
		t.Fatalf("SetOn(false) must always succeed: %v", err)
	}
	if On {
		t.Fatal("SetOn(false) left On true")
	}
	err := SetOn(true)
	if Enabled {
		if err != nil {
			t.Fatalf("SetOn(true) in a checks build: %v", err)
		}
		if !On {
			t.Fatal("SetOn(true) left On false")
		}
	} else {
		if err == nil {
			t.Fatal("SetOn(true) without the checks tag must refuse")
		}
		if !strings.Contains(err.Error(), "-tags checks") {
			t.Fatalf("error should tell the user how to rebuild, got %q", err)
		}
	}
}

func TestAssertCountsAndPanics(t *testing.T) {
	ResetProbes()
	Assert(true, "test", "fine")
	if got := Probes(); got != 1 {
		t.Fatalf("Probes() = %d, want 1", got)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "check[core]: ") {
			t.Fatalf("panic value %v lacks check[component] tag", r)
		}
		if !strings.Contains(msg, "rob 7 over cap 3") {
			t.Fatalf("panic message %q did not format args", msg)
		}
	}()
	Assert(false, "core", "rob %d over cap %d", 7, 3)
}

// Package check is the simulator's runtime invariant layer. Probes woven
// through the core pipeline, caches, TLBs and counters verify structural
// invariants (partition caps respected, incremental totals consistent with
// recounts, conservation laws between counters) while a simulation runs.
//
// Probes are written as
//
//	if check.Enabled && check.On {
//		check.Assert(cond, "component", "message %d", v)
//	}
//
// Enabled is a build-tag constant: false in default builds (the whole
// branch is dead code and costs nothing — BENCH_core.json SimSpeed is
// unaffected), true under `-tags checks`. On is the runtime switch within
// a checks build; it defaults to true so `go test -tags checks ./...`
// exercises every probe, and the cmds expose it as a -checks flag.
package check

import (
	"fmt"
	"sync/atomic"
)

// On is the runtime enable switch. It is meaningful only when the package
// is compiled with the `checks` build tag (Enabled == true); default
// builds eliminate every probe at compile time regardless of On.
var On = Enabled

// SetOn switches runtime checking. Requesting checks in a binary compiled
// without the `checks` tag is an error — the probes do not exist in that
// build, so silently "enabling" them would be a lie.
func SetOn(v bool) error {
	if v && !Enabled {
		return fmt.Errorf("check: this binary was built without invariant probes; rebuild with -tags checks")
	}
	On = v
	return nil
}

// probes counts assertion evaluations, so tests can prove the probes
// actually executed (a checks-tagged test that silently skipped every
// probe would be vacuous).
var probes atomic.Uint64

// Probes returns the number of probe evaluations since the last
// ResetProbes.
func Probes() uint64 { return probes.Load() }

// ResetProbes zeroes the probe counter.
func ResetProbes() { probes.Store(0) }

// Assert panics with a tagged diagnostic when cond is false. Callers must
// guard with `check.Enabled && check.On` so the call (and its argument
// evaluation) vanishes from default builds.
func Assert(cond bool, component, format string, args ...any) {
	probes.Add(1)
	if !cond {
		Failf(component, format, args...)
	}
}

// Failf reports an invariant violation. A violated invariant means the
// simulator's state — and therefore every counter it reports — can no
// longer be trusted, so the only safe response is to stop immediately.
func Failf(component, format string, args ...any) {
	panic(fmt.Sprintf("check[%s]: %s", component, fmt.Sprintf(format, args...)))
}

//go:build !checks

package check

// Enabled reports that this binary was compiled without invariant
// probes: every `if check.Enabled && ...` branch is dead code and the
// hot path pays nothing for the validation layer.
const Enabled = false

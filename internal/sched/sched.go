// Package sched is the parallel experiment engine: a bounded worker
// pool that fans independent simulations out across OS threads while
// keeping results in submission order.
//
// Every simulation in this repository is a single deterministic
// goroutine that owns its whole machine (CPU, kernel, VM), so
// experiments parallelize with no shared state beyond the harness's
// solo-time cache (which is singleflight-guarded). The pool guarantees:
//
//  1. results come back in job-index order, so figure tables built from
//     them are byte-identical to a serial run;
//  2. at most `workers` jobs execute at once (bounded concurrency);
//  3. after the first failure no new job starts, in-flight jobs drain,
//     and the failure comes back as a *JobError naming the
//     lowest-indexed failed job, with any other in-flight failures
//     attached rather than silently dropped.
package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"javasmt/internal/obs"
)

// JobError identifies which job of a Map failed. The pool drains
// in-flight work after a failure, so several jobs may fail in one call;
// the reported error is the lowest-indexed one, and the rest ride along
// in Dropped so no failure loses its identity. Unwrap exposes the
// underlying error, keeping errors.Is/As working through the wrapper.
type JobError struct {
	// Index is the job index passed to fn.
	Index int
	// Err is the job's own error.
	Err error
	// Dropped holds the other jobs that failed in the same Map call
	// (higher indices, sorted ascending). Set only on the reported error.
	Dropped []*JobError
}

func (e *JobError) Error() string {
	msg := fmt.Sprintf("sched: job %d: %v", e.Index, e.Err)
	if n := len(e.Dropped); n > 0 {
		msg += fmt.Sprintf(" (+%d more failed)", n)
	}
	return msg
}

func (e *JobError) Unwrap() error { return e.Err }

// DefaultWorkers is the worker count substituted when a caller passes
// workers <= 0: one worker per available logical CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(0) .. fn(n-1) on up to `workers` goroutines and returns
// the n results in index order. workers <= 0 means DefaultWorkers();
// workers == 1 (or n < 2) runs serially on the calling goroutine with
// no synchronization overhead — the reference ordering the parallel
// path must reproduce exactly.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorker(n, workers, func(_, i int) (T, error) { return fn(i) })
}

// MapWorker is Map with the executing worker's index (0..workers-1)
// passed to fn alongside the job index. The serial path always reports
// worker 0. Which worker runs which job is nondeterministic in the
// parallel path, so fn must not let the worker index influence results —
// it exists for attribution (occupancy tracks in the run trace), not
// for logic.
func MapWorker[T any](n, workers int, fn func(worker, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(0, i)
			if err != nil {
				return nil, &JobError{Index: i, Err: err}
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next  atomic.Int64 // next job index to dispatch
		mu    sync.Mutex   // guards fails
		wg    sync.WaitGroup
		fails []*JobError // every failed in-flight job
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fails) > 0
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed() {
					return
				}
				v, err := fn(worker, i)
				if err != nil {
					mu.Lock()
					fails = append(fails, &JobError{Index: i, Err: err})
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	if len(fails) > 0 {
		sort.Slice(fails, func(a, b int) bool { return fails[a].Index < fails[b].Index })
		first := fails[0]
		first.Dropped = fails[1:]
		return nil, first
	}
	return out, nil
}

// MapObserved is Map with per-job wall-time spans reported to the
// observability sink's experiment-engine tracks: each job becomes one
// slice on its worker's track, labelled by label(i). A nil or
// trace-disabled sink degrades to plain Map — label is then never
// called, so callers may format labels unconditionally without paying
// for them on untraced runs.
//
// Spans carry wall-clock time (they measure the engine, not the
// simulated machine) and are therefore not deterministic across runs;
// the job results still are.
func MapObserved[T any](n, workers int, sink *obs.Sink, label func(i int) string, fn func(i int) (T, error)) ([]T, error) {
	if !sink.TraceEnabled() {
		return Map(n, workers, fn)
	}
	return MapWorker(n, workers, func(worker, i int) (T, error) {
		start := time.Now()
		v, err := fn(i)
		sink.CellSpan(worker, label(i), start, time.Now())
		return v, err
	})
}

// ForEach is Map for jobs with no result value.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Progress wraps a progress callback so concurrent workers may call it
// without interleaving partial lines; a nil callback yields a no-op.
// Callers should make each message self-describing (e.g. prefixed with
// the experiment name) since messages from different workers interleave
// at line granularity.
func Progress(f func(string)) func(string) {
	if f == nil {
		return func(string) {}
	}
	var mu sync.Mutex
	return func(msg string) {
		mu.Lock()
		defer mu.Unlock()
		f(msg)
	}
}

// Package sched is the parallel experiment engine: a bounded worker
// pool that fans independent simulations out across OS threads while
// keeping results in submission order.
//
// Every simulation in this repository is a single deterministic
// goroutine that owns its whole machine (CPU, kernel, VM), so
// experiments parallelize with no shared state beyond the harness's
// solo-time cache (which is singleflight-guarded). The pool guarantees:
//
//  1. results come back in job-index order, so figure tables built from
//     them are byte-identical to a serial run;
//  2. at most `workers` jobs execute at once (bounded concurrency);
//  3. after the first failure no new job starts, in-flight jobs drain,
//     and the error from the lowest-indexed failed job is reported.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count substituted when a caller passes
// workers <= 0: one worker per available logical CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(0) .. fn(n-1) on up to `workers` goroutines and returns
// the n results in index order. workers <= 0 means DefaultWorkers();
// workers == 1 (or n < 2) runs serially on the calling goroutine with
// no synchronization overhead — the reference ordering the parallel
// path must reproduce exactly.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next atomic.Int64 // next job index to dispatch
		mu   sync.Mutex   // guards errIdx/firstErr
		wg   sync.WaitGroup
	)
	errIdx := n // lowest failed index so far; n = none
	var firstErr error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return errIdx < n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed() {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errIdx < n {
		return nil, firstErr
	}
	return out, nil
}

// ForEach is Map for jobs with no result value.
func ForEach(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Progress wraps a progress callback so concurrent workers may call it
// without interleaving partial lines; a nil callback yields a no-op.
// Callers should make each message self-describing (e.g. prefixed with
// the experiment name) since messages from different workers interleave
// at line granularity.
func Progress(f func(string)) func(string) {
	if f == nil {
		return func(string) {}
	}
	var mu sync.Mutex
	return func(msg string) {
		mu.Lock()
		defer mu.Unlock()
		f(msg)
	}
}

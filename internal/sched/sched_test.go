package sched

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(n, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	// The parallel path must produce exactly what the serial path does.
	fn := func(i int) (string, error) { return string(rune('a' + i%26)), nil }
	serial, _ := Map(64, 1, fn)
	parallel, err := Map(64, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("divergence at %d: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(24, workers, func(i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestMapCancelsOnError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(1000, 2, func(i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if s := started.Load(); s > 100 {
		t.Fatalf("%d jobs started after failure; pool did not cancel", s)
	}
}

func TestMapReportsLowestIndexedError(t *testing.T) {
	// Serial path: deterministic first error.
	errA, errB := errors.New("a"), errors.New("b")
	_, err := Map(10, 1, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, errA
		case 5:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("serial err = %v, want %v", err, errA)
	}
	// Parallel path: when several jobs fail, the lowest index wins among
	// those that ran. Force both to fail by gating on a barrier.
	var gate sync.WaitGroup
	gate.Add(2)
	_, err = Map(2, 2, func(i int) (int, error) {
		gate.Done()
		gate.Wait() // both jobs fail "simultaneously"
		if i == 0 {
			return 0, errA
		}
		return 0, errB
	})
	if !errors.Is(err, errA) {
		t.Fatalf("parallel err = %v, want %v (lowest index)", err, errA)
	}
}

// TestSchedErrorIdentity pins that a Map failure names the failing job
// and that concurrent failures are attached to the reported error rather
// than silently dropped — the identity a campaign needs to report which
// cell aborted it.
func TestSchedErrorIdentity(t *testing.T) {
	boom := errors.New("boom")

	// Serial: the error wraps the job index.
	_, err := Map(10, 1, func(i int) (int, error) {
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	var je *JobError
	if !errors.As(err, &je) || je.Index != 4 {
		t.Fatalf("serial err = %#v, want JobError{Index: 4}", err)
	}
	if !errors.Is(err, boom) {
		t.Fatal("JobError broke the unwrap chain")
	}
	if msg := err.Error(); !strings.Contains(msg, "job 4") || !strings.Contains(msg, "boom") {
		t.Fatalf("err message %q lacks job identity", msg)
	}

	// Parallel: all simultaneous failures survive, lowest index reported,
	// the rest sorted ascending in Dropped.
	errs := []error{errors.New("e0"), errors.New("e1"), errors.New("e2")}
	var gate sync.WaitGroup
	gate.Add(3)
	_, err = Map(3, 3, func(i int) (int, error) {
		gate.Done()
		gate.Wait() // all three fail "simultaneously"
		return 0, errs[i]
	})
	je = nil
	if !errors.As(err, &je) || je.Index != 0 {
		t.Fatalf("parallel err = %v, want job 0 reported", err)
	}
	if len(je.Dropped) != 2 || je.Dropped[0].Index != 1 || je.Dropped[1].Index != 2 {
		t.Fatalf("dropped = %+v, want jobs 1 and 2 in order", je.Dropped)
	}
	if !errors.Is(je.Dropped[1], errs[2]) {
		t.Fatal("dropped failure lost its underlying error")
	}
	if !strings.Contains(err.Error(), "+2 more failed") {
		t.Fatalf("err message %q does not surface the dropped count", err.Error())
	}
}

func TestMapEmptyAndSmall(t *testing.T) {
	out, err := Map(0, 8, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: %v %v", out, err)
	}
	out, err = Map(1, 8, func(i int) (int, error) { return 7, nil })
	if err != nil || len(out) != 1 || out[0] != 7 {
		t.Fatalf("single map: %v %v", out, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(10, 4, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

func TestProgressSerializesAndHandlesNil(t *testing.T) {
	Progress(nil)("ignored") // must not panic
	var lines []string
	p := Progress(func(s string) { lines = append(lines, s) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p("x")
			}
		}()
	}
	wg.Wait()
	if len(lines) != 400 {
		t.Fatalf("%d lines recorded, want 400 (lost updates => unsynchronized)", len(lines))
	}
}

package counters

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddIncGet(t *testing.T) {
	var f File
	f.Inc(Cycles)
	f.Add(Cycles, 9)
	f.Add(Instructions, 5)
	if f.Get(Cycles) != 10 || f.Get(Instructions) != 5 {
		t.Fatalf("cycles=%d instr=%d", f.Get(Cycles), f.Get(Instructions))
	}
	if got := f.IPC(); got != 0.5 {
		t.Fatalf("IPC = %v, want 0.5", got)
	}
	if got := f.CPI(); got != 2.0 {
		t.Fatalf("CPI = %v, want 2.0", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var f File
	if f.IPC() != 0 || f.CPI() != 0 || f.PerKiloInstr(TCMisses) != 0 ||
		f.Rate(BTBMisses, Branches) != 0 || f.OSCyclePercent() != 0 || f.DTModePercent() != 0 {
		t.Fatal("all derived metrics must be 0 on an empty file")
	}
	p := f.RetirementProfile()
	if p != [4]float64{} {
		t.Fatal("empty retirement profile must be all zeros")
	}
}

func TestPerKiloInstr(t *testing.T) {
	var f File
	f.Add(Instructions, 10_000)
	f.Add(TCMisses, 15)
	if got := f.PerKiloInstr(TCMisses); got != 1.5 {
		t.Fatalf("TC misses/1k = %v, want 1.5", got)
	}
}

func TestPercents(t *testing.T) {
	var f File
	f.Add(Cycles, 200)
	f.Add(CyclesOS, 10)
	f.Add(CyclesDT, 180)
	if got := f.OSCyclePercent(); got != 5 {
		t.Fatalf("OS%% = %v, want 5", got)
	}
	if got := f.DTModePercent(); got != 90 {
		t.Fatalf("DT%% = %v, want 90", got)
	}
}

func TestRetirementProfileSumsToOne(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		var file File
		file.Add(Retire0, uint64(a))
		file.Add(Retire1, uint64(b))
		file.Add(Retire2, uint64(c))
		file.Add(Retire3, uint64(d))
		p := file.RetirementProfile()
		sum := p[0] + p[1] + p[2] + p[3]
		if a == 0 && b == 0 && c == 0 && d == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubSaturates(t *testing.T) {
	var a, b File
	a.Add(Cycles, 5)
	b.Add(Cycles, 7)
	b.Add(Instructions, 3)
	d := b.Sub(&a)
	if d.Get(Cycles) != 2 || d.Get(Instructions) != 3 {
		t.Fatalf("delta = %d/%d", d.Get(Cycles), d.Get(Instructions))
	}
	d2 := a.Sub(&b)
	if d2.Get(Cycles) != 0 {
		t.Fatal("Sub must saturate at zero")
	}
}

func TestAddFileAndReset(t *testing.T) {
	var a, b File
	a.Add(Branches, 4)
	b.Add(Branches, 6)
	b.Add(Cycles, 1)
	a.AddFile(&b)
	if a.Get(Branches) != 10 || a.Get(Cycles) != 1 {
		t.Fatal("AddFile mis-accumulated")
	}
	a.Reset()
	if a.Get(Branches) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestEventNamesRoundTrip(t *testing.T) {
	for e := Event(0); int(e) < NumEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Fatalf("event %d has no name", e)
		}
		back, ok := EventByName(name)
		if !ok || back != e {
			t.Fatalf("round trip failed for %q", name)
		}
	}
	if _, ok := EventByName("definitely-not-an-event"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestReportContainsRequestedEvents(t *testing.T) {
	var f File
	f.Add(Cycles, 123)
	f.Add(TCMisses, 7)
	r := f.Report([]Event{TCMisses, Cycles})
	if !strings.Contains(r, "cycles") || !strings.Contains(r, "tc_misses") || !strings.Contains(r, "123") {
		t.Fatalf("report missing content:\n%s", r)
	}
	// nil selects nonzero counters only.
	auto := f.Report(nil)
	if strings.Contains(auto, "l2_misses") {
		t.Fatal("nil report should omit zero counters")
	}
}

func TestSessionSingleGroupIsExact(t *testing.T) {
	var src File
	sess, err := NewSession(&src, []Event{Instructions, TCMisses})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Groups()) != 1 {
		t.Fatalf("groups = %d, want 1", len(sess.Groups()))
	}
	for i := 0; i < 10; i++ {
		src.Add(Cycles, 100)
		src.Add(Instructions, 50)
		src.Add(TCMisses, 2)
		sess.Rotate()
	}
	est := sess.Estimate()
	if est.Get(Cycles) != 1000 || est.Get(Instructions) != 500 || est.Get(TCMisses) != 20 {
		t.Fatalf("estimate = %d/%d/%d", est.Get(Cycles), est.Get(Instructions), est.Get(TCMisses))
	}
}

func TestSessionMultiplexingConverges(t *testing.T) {
	var src File
	// Request more events than MaxHW so at least two groups rotate.
	events := make([]Event, 0, NumEvents-1)
	for e := Event(1); int(e) < NumEvents; e++ {
		events = append(events, e)
	}
	sess, err := NewSession(&src, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Groups()) < 2 {
		t.Fatalf("expected multiplexing, got %d group(s)", len(sess.Groups()))
	}
	// Steady workload: every event advances at a fixed rate per window.
	const windows = 400
	for i := 0; i < windows; i++ {
		src.Add(Cycles, 1000)
		src.Add(Instructions, 700)
		src.Add(TCMisses, 3)
		src.Add(Branches, 90)
		sess.Rotate()
	}
	est := sess.Estimate()
	for _, e := range []Event{Instructions, TCMisses, Branches} {
		truth := src.Get(e)
		got := est.Get(e)
		relErr := math.Abs(float64(got)-float64(truth)) / float64(truth)
		if relErr > 0.02 {
			t.Fatalf("%v estimate %d vs truth %d (err %.3f)", e, got, truth, relErr)
		}
	}
}

// conservingFile builds a synthetic file satisfying every conservation
// law: 1000 cycles = 100 halted + 900 retiring cycles, a consistent
// memory pyramid, and subset relations everywhere.
func conservingFile() File {
	var f File
	f.Set(Cycles, 1000)
	f.Set(CyclesHalted, 100)
	f.Set(Retire0, 300)
	f.Set(Retire1, 200)
	f.Set(Retire2, 250)
	f.Set(Retire3, 150)
	f.Set(Instructions, 200+2*250+3*150) // width-3 machine: histogram is exact
	f.Set(InstructionsOS, 90)
	f.Set(CyclesDT, 400)
	f.Set(CyclesOS, 50)
	f.Set(TCAccesses, 500)
	f.Set(TCMisses, 40)
	f.Set(L1DAccesses, 300)
	f.Set(L1DMisses, 60)
	f.Set(L2Accesses, 100) // = l1d_misses 60 + tc_misses 40
	f.Set(L2Misses, 25)
	f.Set(MemReads, 20)
	f.Set(MemWrites, 5) // reads+writes = l2_misses
	f.Set(ITLBAccesses, 80)
	f.Set(ITLBMisses, 8)
	f.Set(DTLBAccesses, 280)
	f.Set(DTLBMisses, 12)
	f.Set(Branches, 150)
	f.Set(BTBMisses, 30)
	f.Set(BranchMispredicts, 15)
	return f
}

func TestCheckConservationHolds(t *testing.T) {
	f := conservingFile()
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	// The laws are linear: doubling the file (AddFile with itself) and
	// windowing (Sub of a half) must preserve them.
	double := f
	double.AddFile(&f)
	if err := double.CheckConservation(); err != nil {
		t.Fatalf("doubled file rejected: %v", err)
	}
	window := double.Sub(&f)
	if err := window.CheckConservation(); err != nil {
		t.Fatalf("windowed file rejected: %v", err)
	}
	var empty File
	if err := empty.CheckConservation(); err != nil {
		t.Fatalf("empty file rejected: %v", err)
	}
}

func TestCheckConservationCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
		law    string
	}{
		{"lost cycle", func(f *File) { f.Add(Cycles, 1) }, "retire histogram"},
		{"halted overflow", func(f *File) { f.Set(CyclesHalted, 2000) }, "retire histogram"},
		{"dt over cycles", func(f *File) { f.Set(CyclesDT, 1001) }, "cycles_dt"},
		{"os instr over instr", func(f *File) { f.Set(InstructionsOS, 1e6) }, "uops_retired_os"},
		{"histogram over instr", func(f *File) { f.Set(Instructions, 10); f.Set(InstructionsOS, 5) }, "lower-bounds"},
		{"tc misses over accesses", func(f *File) { f.Set(TCMisses, 501) }, "tc_misses"},
		{"phantom l2 access", func(f *File) { f.Add(L2Accesses, 1) }, "l2_accesses"},
		{"phantom dram read", func(f *File) { f.Add(MemReads, 1) }, "mem traffic"},
		{"mispredicts over branches", func(f *File) { f.Set(BranchMispredicts, 151) }, "branch_mispredicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := conservingFile()
			tc.mutate(&f)
			err := f.CheckConservation()
			if err == nil {
				t.Fatalf("violation %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.law) {
				t.Fatalf("error %q does not name the %q law", err, tc.law)
			}
		})
	}
}

// TestSessionMultiplexingUnevenWindows drives the rotation with per-window
// rates that vary by ±50% (deterministic LCG), the realistic case where
// a group's residency windows are not identical. The scaled estimates
// must still converge on the full-precision file.
func TestSessionMultiplexingUnevenWindows(t *testing.T) {
	var src File
	events := make([]Event, 0, NumEvents-1)
	for e := Event(1); int(e) < NumEvents; e++ {
		events = append(events, e)
	}
	sess, err := NewSession(&src, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Groups()) < 2 {
		t.Fatalf("expected multiplexing, got %d group(s)", len(sess.Groups()))
	}
	lcg := uint64(12345)
	const windows = 4000
	for i := 0; i < windows; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		jitter := 500 + lcg%1001 // 500..1500 cycles per window
		src.Add(Cycles, jitter)
		src.Add(Instructions, jitter*7/10)
		src.Add(TCMisses, jitter/250)
		src.Add(Branches, jitter/11)
		sess.Rotate()
	}
	est := sess.Estimate()
	// The estimate's timebase is exact: every cycle was observed by the
	// resident group.
	if est.Get(Cycles) != src.Get(Cycles) {
		t.Fatalf("estimated cycles %d != true cycles %d", est.Get(Cycles), src.Get(Cycles))
	}
	for _, e := range []Event{Instructions, TCMisses, Branches} {
		truth := src.Get(e)
		got := est.Get(e)
		relErr := math.Abs(float64(got)-float64(truth)) / float64(truth)
		if relErr > 0.05 {
			t.Fatalf("%v estimate %d vs truth %d (err %.3f)", e, got, truth, relErr)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	var src File
	if _, err := NewSession(&src, nil); err == nil {
		t.Fatal("empty event list must error")
	}
	if _, err := NewSession(&src, []Event{Event(200)}); err == nil {
		t.Fatal("unknown event must error")
	}
}

func TestFileJSONRoundTrip(t *testing.T) {
	var f File
	f.Set(Cycles, 123456789)
	f.Set(Instructions, 98765)
	f.Set(Retire3, 42)
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", f, back)
	}
	// Marshaling is deterministic (object keys sorted by encoding/json).
	again, _ := json.Marshal(f)
	if string(again) != string(data) {
		t.Fatal("marshaled bytes unstable across calls")
	}
	if err := json.Unmarshal([]byte(`{"no_such_event":1}`), &back); err == nil {
		t.Fatal("unknown event name accepted")
	}
}

package counters

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddIncGet(t *testing.T) {
	var f File
	f.Inc(Cycles)
	f.Add(Cycles, 9)
	f.Add(Instructions, 5)
	if f.Get(Cycles) != 10 || f.Get(Instructions) != 5 {
		t.Fatalf("cycles=%d instr=%d", f.Get(Cycles), f.Get(Instructions))
	}
	if got := f.IPC(); got != 0.5 {
		t.Fatalf("IPC = %v, want 0.5", got)
	}
	if got := f.CPI(); got != 2.0 {
		t.Fatalf("CPI = %v, want 2.0", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var f File
	if f.IPC() != 0 || f.CPI() != 0 || f.PerKiloInstr(TCMisses) != 0 ||
		f.Rate(BTBMisses, Branches) != 0 || f.OSCyclePercent() != 0 || f.DTModePercent() != 0 {
		t.Fatal("all derived metrics must be 0 on an empty file")
	}
	p := f.RetirementProfile()
	if p != [4]float64{} {
		t.Fatal("empty retirement profile must be all zeros")
	}
}

func TestPerKiloInstr(t *testing.T) {
	var f File
	f.Add(Instructions, 10_000)
	f.Add(TCMisses, 15)
	if got := f.PerKiloInstr(TCMisses); got != 1.5 {
		t.Fatalf("TC misses/1k = %v, want 1.5", got)
	}
}

func TestPercents(t *testing.T) {
	var f File
	f.Add(Cycles, 200)
	f.Add(CyclesOS, 10)
	f.Add(CyclesDT, 180)
	if got := f.OSCyclePercent(); got != 5 {
		t.Fatalf("OS%% = %v, want 5", got)
	}
	if got := f.DTModePercent(); got != 90 {
		t.Fatalf("DT%% = %v, want 90", got)
	}
}

func TestRetirementProfileSumsToOne(t *testing.T) {
	f := func(a, b, c, d uint32) bool {
		var file File
		file.Add(Retire0, uint64(a))
		file.Add(Retire1, uint64(b))
		file.Add(Retire2, uint64(c))
		file.Add(Retire3, uint64(d))
		p := file.RetirementProfile()
		sum := p[0] + p[1] + p[2] + p[3]
		if a == 0 && b == 0 && c == 0 && d == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubSaturates(t *testing.T) {
	var a, b File
	a.Add(Cycles, 5)
	b.Add(Cycles, 7)
	b.Add(Instructions, 3)
	d := b.Sub(&a)
	if d.Get(Cycles) != 2 || d.Get(Instructions) != 3 {
		t.Fatalf("delta = %d/%d", d.Get(Cycles), d.Get(Instructions))
	}
	d2 := a.Sub(&b)
	if d2.Get(Cycles) != 0 {
		t.Fatal("Sub must saturate at zero")
	}
}

func TestAddFileAndReset(t *testing.T) {
	var a, b File
	a.Add(Branches, 4)
	b.Add(Branches, 6)
	b.Add(Cycles, 1)
	a.AddFile(&b)
	if a.Get(Branches) != 10 || a.Get(Cycles) != 1 {
		t.Fatal("AddFile mis-accumulated")
	}
	a.Reset()
	if a.Get(Branches) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestEventNamesRoundTrip(t *testing.T) {
	for e := Event(0); int(e) < NumEvents; e++ {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Fatalf("event %d has no name", e)
		}
		back, ok := EventByName(name)
		if !ok || back != e {
			t.Fatalf("round trip failed for %q", name)
		}
	}
	if _, ok := EventByName("definitely-not-an-event"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestReportContainsRequestedEvents(t *testing.T) {
	var f File
	f.Add(Cycles, 123)
	f.Add(TCMisses, 7)
	r := f.Report([]Event{TCMisses, Cycles})
	if !strings.Contains(r, "cycles") || !strings.Contains(r, "tc_misses") || !strings.Contains(r, "123") {
		t.Fatalf("report missing content:\n%s", r)
	}
	// nil selects nonzero counters only.
	auto := f.Report(nil)
	if strings.Contains(auto, "l2_misses") {
		t.Fatal("nil report should omit zero counters")
	}
}

func TestSessionSingleGroupIsExact(t *testing.T) {
	var src File
	sess, err := NewSession(&src, []Event{Instructions, TCMisses})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Groups()) != 1 {
		t.Fatalf("groups = %d, want 1", len(sess.Groups()))
	}
	for i := 0; i < 10; i++ {
		src.Add(Cycles, 100)
		src.Add(Instructions, 50)
		src.Add(TCMisses, 2)
		sess.Rotate()
	}
	est := sess.Estimate()
	if est.Get(Cycles) != 1000 || est.Get(Instructions) != 500 || est.Get(TCMisses) != 20 {
		t.Fatalf("estimate = %d/%d/%d", est.Get(Cycles), est.Get(Instructions), est.Get(TCMisses))
	}
}

func TestSessionMultiplexingConverges(t *testing.T) {
	var src File
	// Request more events than MaxHW so at least two groups rotate.
	events := make([]Event, 0, NumEvents-1)
	for e := Event(1); int(e) < NumEvents; e++ {
		events = append(events, e)
	}
	sess, err := NewSession(&src, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Groups()) < 2 {
		t.Fatalf("expected multiplexing, got %d group(s)", len(sess.Groups()))
	}
	// Steady workload: every event advances at a fixed rate per window.
	const windows = 400
	for i := 0; i < windows; i++ {
		src.Add(Cycles, 1000)
		src.Add(Instructions, 700)
		src.Add(TCMisses, 3)
		src.Add(Branches, 90)
		sess.Rotate()
	}
	est := sess.Estimate()
	for _, e := range []Event{Instructions, TCMisses, Branches} {
		truth := src.Get(e)
		got := est.Get(e)
		relErr := math.Abs(float64(got)-float64(truth)) / float64(truth)
		if relErr > 0.02 {
			t.Fatalf("%v estimate %d vs truth %d (err %.3f)", e, got, truth, relErr)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	var src File
	if _, err := NewSession(&src, nil); err == nil {
		t.Fatal("empty event list must error")
	}
	if _, err := NewSession(&src, []Event{Event(200)}); err == nil {
		t.Fatal("unknown event must error")
	}
}

package counters

import (
	"fmt"
	"sort"
)

// Session models the event-multiplexing discipline of a real counter tool
// (Brink & Abyss): at most MaxHW events can be counted simultaneously, so
// a request for more events is served by rotating groups of counters over
// the run and scaling each group's counts by the fraction of time it was
// scheduled.
//
// A Session samples a live *File (the ground truth the simulator always
// maintains) at rotation boundaries; Estimate extrapolates each event's
// true total from the slices during which its group was resident. Tests
// verify the estimates converge on the truth for steady workloads, and
// the harness uses Sessions so that reported numbers flow through the
// same machinery a perf tool would impose.
type Session struct {
	src    *File
	groups [][]Event
	// perGroup accumulates observed deltas and observed cycles per group.
	perGroup []groupWindow
	active   int
	lastSnap File
}

type groupWindow struct {
	deltas      [NumEvents]uint64
	cyclesSeen  uint64
	activations uint64
}

// NewSession builds a session over src counting the requested events.
// Events are packed greedily into groups of at most MaxHW; Cycles is
// implicitly added to every group because scaling needs a timebase.
func NewSession(src *File, events []Event) (*Session, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("counters: session needs at least one event")
	}
	seen := map[Event]bool{Cycles: true}
	var uniq []Event
	for _, e := range events {
		if int(e) >= NumEvents {
			return nil, fmt.Errorf("counters: unknown event %d", e)
		}
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	var groups [][]Event
	per := MaxHW - 1 // reserve one slot for Cycles
	for len(uniq) > 0 {
		n := per
		if n > len(uniq) {
			n = len(uniq)
		}
		g := append([]Event{Cycles}, uniq[:n]...)
		groups = append(groups, g)
		uniq = uniq[n:]
	}
	s := &Session{src: src, groups: groups, perGroup: make([]groupWindow, len(groups))}
	s.lastSnap = *src
	return s, nil
}

// Groups returns the event groups the session rotates through.
func (s *Session) Groups() [][]Event { return s.groups }

// Rotate closes the current measurement window, attributing the counter
// deltas since the previous rotation to the active group, then advances
// to the next group. Call it periodically (the harness does so on OS
// timer ticks).
func (s *Session) Rotate() {
	delta := s.src.Sub(&s.lastSnap)
	w := &s.perGroup[s.active]
	for _, e := range s.groups[s.active] {
		w.deltas[e] += delta.Get(e)
	}
	w.cyclesSeen += delta.Get(Cycles)
	w.activations++
	s.lastSnap = *s.src
	s.active = (s.active + 1) % len(s.groups)
}

// Estimate returns the multiplex-scaled counter file: each event's
// observed count divided by the fraction of total cycles its group was
// resident. With a single group the estimate is exact.
func (s *Session) Estimate() File {
	// Flush the open window first so recent activity is attributed.
	s.Rotate()
	var total uint64
	for i := range s.perGroup {
		total += s.perGroup[i].cyclesSeen
	}
	var out File
	if total == 0 {
		return out
	}
	out.Set(Cycles, total)
	for gi, g := range s.groups {
		w := &s.perGroup[gi]
		if w.cyclesSeen == 0 {
			continue
		}
		scale := float64(total) / float64(w.cyclesSeen)
		for _, e := range g {
			if e == Cycles {
				continue
			}
			out.Set(e, uint64(float64(w.deltas[e])*scale+0.5))
		}
	}
	return out
}

// Package counters is the performance-monitoring layer of the simulator —
// the stand-in for the Pentium 4 hardware counters driven by Sprunt's
// Brink & Abyss tool in the paper.
//
// The real machine exposes 18 counters over 48 events; the simulator can
// afford to count everything all the time, but the package still models
// the *discipline* of event selection: a Session selects up to MaxHW
// events per rotation and multiplexes rotations over the run, scaling the
// observed counts, exactly as sampling tools must on real silicon. The
// full-precision counts remain available to tests via File.
package counters

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Event identifies one countable micro-architectural event.
type Event uint8

// The event vocabulary. Comments give the closest P4/Brink&Abyss analogue.
const (
	// Cycles is elapsed core clock cycles (global_power_events).
	Cycles Event = iota
	// CyclesDT counts cycles during which both logical processors were
	// executing instructions — the paper's "CPU DT mode percent".
	CyclesDT
	// CyclesOS counts cycles whose oldest in-flight µop was in kernel
	// mode — the paper's "OS cycle percent".
	CyclesOS
	// CyclesHalted counts cycles with no runnable thread on any context.
	CyclesHalted
	// Instructions counts retired µops (uops_retired).
	Instructions
	// InstructionsOS counts retired kernel-mode µops.
	InstructionsOS
	// Retire0/1/2/3 histogram cycles by the number of µops retired that
	// cycle (the Figure 2 retirement profile).
	Retire0
	Retire1
	Retire2
	Retire3
	// TCAccesses/TCMisses are trace-cache lookups and misses (Figure 3).
	TCAccesses
	TCMisses
	// L1DAccesses/L1DMisses are L1 data-cache events (Figure 4).
	L1DAccesses
	L1DMisses
	// L2Accesses/L2Misses are unified L2 events (Figure 5).
	L2Accesses
	L2Misses
	// ITLBAccesses/ITLBMisses are instruction-TLB events (Figure 6).
	ITLBAccesses
	ITLBMisses
	// DTLBAccesses/DTLBMisses are data-TLB events.
	DTLBAccesses
	DTLBMisses
	// Branches/BTBMisses/BranchMispredicts are front-end control-flow
	// events (Figure 7 is BTBMisses/Branches).
	Branches
	BTBMisses
	BranchMispredicts
	// MemReads/MemWrites are DRAM transfers.
	MemReads
	MemWrites
	// ROBStallCycles counts allocation stalls due to a full ROB
	// partition; IQStallCycles likewise for the issue queue; LSQStall
	// for load/store buffers. These quantify the paper's "resource
	// contention" diagnosis.
	ROBStallCycles
	IQStallCycles
	LSQStallCycles
	// FetchStallCycles counts cycles the front end delivered no µops.
	FetchStallCycles
	// ContextSwitches counts OS thread reschedules.
	ContextSwitches
	// ThreadMigrations counts dispatches of a thread onto a different
	// hardware context than the one it last ran on (simos seating
	// policies re-seat threads at quantum boundaries).
	ThreadMigrations
	// Syscalls counts kernel entries.
	Syscalls
	// GCCycles counts cycles retired by the JVM garbage-collector
	// thread (attributed via thread tags).
	GCCycles
	// MonitorBlocks counts times a thread blocked on a Java monitor.
	MonitorBlocks
	// LockAcquires counts successful Java monitor acquisitions
	// (including reentrant ones); LockContended counts acquisitions that
	// had to block first. Both come from the JVM's monitor table, so
	// they are µop-stream facts, exact in full and sampled modes alike.
	LockAcquires
	LockContended
	// FenceUops counts memory-fence µops entering the machine;
	// FenceStallCycles counts front-end cycles lost to a serializing
	// fence or syscall draining the ROB before younger µops may
	// allocate.
	FenceUops
	FenceStallCycles
	// CASOps counts executed compare-and-swap bytecodes; CASFailures
	// counts the ones that lost the race and returned 0.
	CASOps
	CASFailures
	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

// MaxHW is the number of simultaneously-programmable hardware counters on
// the paper's Pentium 4.
const MaxHW = 18

var eventNames = [...]string{
	Cycles:            "cycles",
	CyclesDT:          "cycles_dt",
	CyclesOS:          "cycles_os",
	CyclesHalted:      "cycles_halted",
	Instructions:      "uops_retired",
	InstructionsOS:    "uops_retired_os",
	Retire0:           "retire_0",
	Retire1:           "retire_1",
	Retire2:           "retire_2",
	Retire3:           "retire_3",
	TCAccesses:        "tc_accesses",
	TCMisses:          "tc_misses",
	L1DAccesses:       "l1d_accesses",
	L1DMisses:         "l1d_misses",
	L2Accesses:        "l2_accesses",
	L2Misses:          "l2_misses",
	ITLBAccesses:      "itlb_accesses",
	ITLBMisses:        "itlb_misses",
	DTLBAccesses:      "dtlb_accesses",
	DTLBMisses:        "dtlb_misses",
	Branches:          "branches",
	BTBMisses:         "btb_misses",
	BranchMispredicts: "branch_mispredicts",
	MemReads:          "mem_reads",
	MemWrites:         "mem_writes",
	ROBStallCycles:    "rob_stall_cycles",
	IQStallCycles:     "iq_stall_cycles",
	LSQStallCycles:    "lsq_stall_cycles",
	FetchStallCycles:  "fetch_stall_cycles",
	ContextSwitches:   "context_switches",
	ThreadMigrations:  "thread_migrations",
	Syscalls:          "syscalls",
	GCCycles:          "gc_cycles",
	MonitorBlocks:     "monitor_blocks",
	LockAcquires:      "lock_acquires",
	LockContended:     "lock_contended",
	FenceUops:         "fence_uops",
	FenceStallCycles:  "fence_stall_cycles",
	CASOps:            "cas_ops",
	CASFailures:       "cas_failures",
}

// String returns the event's report name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// EventByName resolves a report name back to its Event, for CLI flag
// parsing. The second result is false if the name is unknown.
func EventByName(name string) (Event, bool) {
	for i, n := range eventNames {
		if n == name {
			return Event(i), true
		}
	}
	return 0, false
}

// File is a full-precision counter file: one uint64 per event.
type File struct {
	counts [NumEvents]uint64
}

// Add increments event e by delta.
func (f *File) Add(e Event, delta uint64) { f.counts[e] += delta }

// Inc increments event e by one.
func (f *File) Inc(e Event) { f.counts[e]++ }

// Get returns the count of event e.
func (f *File) Get(e Event) uint64 { return f.counts[e] }

// Set overwrites the count of event e (used when importing structure
// statistics gathered elsewhere, e.g. cache.Stats).
func (f *File) Set(e Event, v uint64) { f.counts[e] = v }

// Reset zeroes every counter.
func (f *File) Reset() { f.counts = [NumEvents]uint64{} }

// MarshalJSON encodes the file as a name→count object over every event
// (zeros included, so the shape is stable). encoding/json emits object
// keys sorted, making the bytes deterministic — campaign journals digest
// them to detect corrupted checkpoints.
func (f File) MarshalJSON() ([]byte, error) {
	m := make(map[string]uint64, NumEvents)
	for e := Event(0); int(e) < NumEvents; e++ {
		m[e.String()] = f.counts[e]
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a name→count object produced by MarshalJSON.
// Unknown event names are an error: a journal written by a different
// counter vocabulary must not be silently reinterpreted.
func (f *File) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	f.Reset()
	for name, v := range m {
		e, ok := EventByName(name)
		if !ok {
			return fmt.Errorf("counters: unknown event %q", name)
		}
		f.counts[e] = v
	}
	return nil
}

// AddFile accumulates another file into this one.
func (f *File) AddFile(o *File) {
	for i := range f.counts {
		f.counts[i] += o.counts[i]
	}
}

// Sub returns f minus o, saturating at zero; used to window a measurement
// interval out of cumulative counts.
func (f *File) Sub(o *File) File {
	var out File
	for i := range f.counts {
		if f.counts[i] >= o.counts[i] {
			out.counts[i] = f.counts[i] - o.counts[i]
		}
	}
	return out
}

// --- Derived metrics (the quantities the paper reports) ---

// IPC returns retired µops per cycle.
func (f *File) IPC() float64 { return ratio(f.Get(Instructions), f.Get(Cycles)) }

// CPI returns cycles per retired µop (Table 2).
func (f *File) CPI() float64 { return ratio(f.Get(Cycles), f.Get(Instructions)) }

// PerKiloInstr returns event e per 1000 retired µops (Figures 3-6).
func (f *File) PerKiloInstr(e Event) float64 {
	return 1000 * ratio(f.Get(e), f.Get(Instructions))
}

// Rate returns num/den as a float ratio (Figure 7 is
// Rate(BTBMisses, Branches)).
func (f *File) Rate(num, den Event) float64 { return ratio(f.Get(num), f.Get(den)) }

// OSCyclePercent returns the share of cycles spent in OS mode (Table 2).
func (f *File) OSCyclePercent() float64 { return 100 * ratio(f.Get(CyclesOS), f.Get(Cycles)) }

// DTModePercent returns the share of cycles with both contexts executing
// (Table 2).
func (f *File) DTModePercent() float64 { return 100 * ratio(f.Get(CyclesDT), f.Get(Cycles)) }

// RetirementProfile returns the fraction of cycles retiring 0, 1, 2 and 3
// µops (Figure 2). The four shares sum to 1 when any cycles elapsed.
func (f *File) RetirementProfile() [4]float64 {
	var out [4]float64
	total := f.Get(Retire0) + f.Get(Retire1) + f.Get(Retire2) + f.Get(Retire3)
	if total == 0 {
		return out
	}
	for i, e := range []Event{Retire0, Retire1, Retire2, Retire3} {
		out[i] = float64(f.Get(e)) / float64(total)
	}
	return out
}

// CheckConservation verifies the cross-counter conservation laws that any
// full-precision counter file produced by the simulator must satisfy, and
// returns the first violated law (nil if all hold). The laws are exact
// consequences of how the core populates the file:
//
//   - every cycle is either halted or retires into exactly one histogram
//     bucket, so cycles == cycles_halted + Σ retire_i;
//   - cycles_dt, cycles_os and cycles_halted are subsets of cycles;
//   - kernel-mode retirement is a subset of retirement, and the retirement
//     histogram bounds retired µops from below (retire_3 means "3 or more");
//   - misses never exceed accesses for any cache, TLB or the BTB;
//   - the unified L2 is reached only by L1D misses and trace rebuilds, so
//     l2_accesses == l1d_misses + tc_misses;
//   - DRAM is reached only by L2 misses, so mem_reads + mem_writes == l2_misses.
//
// The laws are linear, so they also hold for windowed files produced by
// Sub and for sums produced by AddFile. They do not apply to the scaled
// estimates of a multiplexed Session, which are approximate by design.
func (f *File) CheckConservation() error {
	type law struct {
		name     string
		lhs, rhs uint64
		exact    bool // lhs == rhs; otherwise lhs <= rhs
	}
	retireSum := f.Get(Retire0) + f.Get(Retire1) + f.Get(Retire2) + f.Get(Retire3)
	laws := []law{
		{"cycles == cycles_halted + retire histogram", f.Get(Cycles), f.Get(CyclesHalted) + retireSum, true},
		{"cycles_dt <= cycles", f.Get(CyclesDT), f.Get(Cycles), false},
		{"cycles_os <= cycles", f.Get(CyclesOS), f.Get(Cycles), false},
		{"cycles_halted <= cycles", f.Get(CyclesHalted), f.Get(Cycles), false},
		{"uops_retired_os <= uops_retired", f.Get(InstructionsOS), f.Get(Instructions), false},
		{"retire histogram lower-bounds uops_retired", f.Get(Retire1) + 2*f.Get(Retire2) + 3*f.Get(Retire3), f.Get(Instructions), false},
		{"tc_misses <= tc_accesses", f.Get(TCMisses), f.Get(TCAccesses), false},
		{"l1d_misses <= l1d_accesses", f.Get(L1DMisses), f.Get(L1DAccesses), false},
		{"l2_misses <= l2_accesses", f.Get(L2Misses), f.Get(L2Accesses), false},
		{"itlb_misses <= itlb_accesses", f.Get(ITLBMisses), f.Get(ITLBAccesses), false},
		{"dtlb_misses <= dtlb_accesses", f.Get(DTLBMisses), f.Get(DTLBAccesses), false},
		{"btb_misses <= branches", f.Get(BTBMisses), f.Get(Branches), false},
		{"branch_mispredicts <= branches", f.Get(BranchMispredicts), f.Get(Branches), false},
		{"l2_accesses == l1d_misses + tc_misses", f.Get(L2Accesses), f.Get(L1DMisses) + f.Get(TCMisses), true},
		{"mem traffic == l2_misses", f.Get(MemReads) + f.Get(MemWrites), f.Get(L2Misses), true},
		// Synchronization laws. Each pair is incremented at the same
		// instant (a failed CAS bumps cas_ops in the same interpreter
		// step; a fence stall is one flavor of fetch stall, counted in
		// the same front-end cycle; a contended acquisition blocks the
		// thread, which is what monitor_blocks counts), so the laws
		// hold for windowed files too.
		{"cas_failures <= cas_ops", f.Get(CASFailures), f.Get(CASOps), false},
		{"fence_stall_cycles <= fetch_stall_cycles", f.Get(FenceStallCycles), f.Get(FetchStallCycles), false},
		{"lock_contended <= monitor_blocks", f.Get(LockContended), f.Get(MonitorBlocks), false},
	}
	for _, l := range laws {
		if l.exact && l.lhs != l.rhs {
			return fmt.Errorf("counters: conservation violated: %s (%d vs %d)", l.name, l.lhs, l.rhs)
		}
		if !l.exact && l.lhs > l.rhs {
			return fmt.Errorf("counters: conservation violated: %s (%d vs %d)", l.name, l.lhs, l.rhs)
		}
	}
	return nil
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Report renders the file as an aligned name/value table, optionally
// restricted to the given events (nil means every nonzero counter).
func (f *File) Report(events []Event) string {
	if events == nil {
		for e := Event(0); int(e) < NumEvents; e++ {
			if f.counts[e] != 0 {
				events = append(events, e)
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%-20s %14d\n", e.String(), f.Get(e))
	}
	return b.String()
}

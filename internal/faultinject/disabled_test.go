//go:build !faults

package faultinject

import (
	"strings"
	"testing"
)

// TestParseRefusesWithoutTag pins the safety property of the build-tag
// gate: a binary compiled without -tags faults must reject any -inject
// spec outright, never silently run uninjected.
func TestParseRefusesWithoutTag(t *testing.T) {
	if _, err := Parse("seed=42,panic=0.1"); err == nil {
		t.Fatal("untagged build accepted an -inject spec")
	} else if !strings.Contains(err.Error(), "faults") {
		t.Fatalf("err = %v, want a pointer at -tags faults", err)
	}
}

func TestParseEmptySpecIsNil(t *testing.T) {
	in, err := Parse("")
	if in != nil || err != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
}

// TestNilInjectorIsInert pins that the nil injector (the only one an
// untagged build can hold) makes no decisions.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if got := in.Decide("pair a+b"); got != None {
		t.Fatalf("nil injector decided %v", got)
	}
	if in.String() != "" {
		t.Fatalf("nil injector spec = %q", in.String())
	}
}

// Package faultinject is a deterministic fault injector for exercising
// the resilience layer end to end. A seed-driven Injector decides, per
// experiment cell, whether to force a panic, an infinite stall (the
// watchdog must kill it), a slow cell, corrupted counters (the
// conservation check must catch them), or a transient failure (the retry
// policy must absorb it). Decisions are a pure hash of (seed, cell), so
// a faulty campaign is exactly reproducible from its -inject spec.
//
// The injector lives behind the `faults` build tag: in ordinary builds
// Enabled is a false constant, every hook compiles away, and Parse
// refuses non-empty specs so asking a production binary to inject faults
// is a hard error rather than a silent no-op.
package faultinject

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault is the per-cell injection decision.
type Fault int

const (
	// None leaves the cell alone.
	None Fault = iota
	// Panic panics inside the cell's simulation.
	Panic
	// Stall blocks the cell until its watchdog cancels it.
	Stall
	// Slow delays the cell by the injector's SlowDelay before it runs.
	Slow
	// Corrupt perturbs the cell's result counters after the simulation,
	// violating cycle conservation.
	Corrupt
	// Transient fails the cell's first FailFor attempts with a
	// retryable error.
	Transient
)

// String names the fault for reasons and logs.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	case Transient:
		return "transient"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// faultKeys maps -inject spec keys to faults, in cumulative-probability
// order (the order the hash interval is partitioned in).
var faultKeys = []struct {
	key   string
	fault Fault
}{
	{"panic", Panic},
	{"stall", Stall},
	{"slow", Slow},
	{"corrupt", Corrupt},
	{"transient", Transient},
}

// Injector makes deterministic per-cell fault decisions. A nil Injector
// injects nothing, so call sites need no guards beyond the Enabled
// constant.
type Injector struct {
	// Seed drives the per-cell hash.
	Seed uint64
	// Rates holds the probability of each fault, keyed by Fault; their
	// sum must be <= 1.
	Rates map[Fault]float64
	// SlowDelay is how long a Slow cell sleeps before running.
	SlowDelay time.Duration
	// FailFor is how many leading attempts of a Transient cell fail.
	FailFor int

	mu       sync.Mutex
	attempts map[string]int
}

// Parse builds an Injector from an -inject spec, e.g.
//
//	seed=42,panic=0.1,stall=0.02,slow=0.05,corrupt=0.1,transient=0.25,slowms=50,failfor=2
//
// An empty spec returns (nil, nil). A non-empty spec in a binary built
// without -tags faults is an error: injection silently not happening
// would invalidate any conclusion drawn from the run.
func Parse(spec string) (*Injector, error) {
	if spec == "" {
		return nil, nil
	}
	if !Enabled {
		return nil, fmt.Errorf("faultinject: this binary was built without -tags faults; -inject %q unavailable", spec)
	}
	in := &Injector{
		Seed:      1,
		Rates:     map[Fault]float64{},
		SlowDelay: 50 * time.Millisecond,
		FailFor:   1,
		attempts:  map[string]int{},
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: bad field %q in -inject spec (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: seed: %w", err)
			}
			in.Seed = n
		case "slowms":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: slowms: bad value %q", v)
			}
			in.SlowDelay = time.Duration(n) * time.Millisecond
		case "failfor":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faultinject: failfor: bad value %q", v)
			}
			in.FailFor = n
		default:
			fault := None
			for _, fk := range faultKeys {
				if fk.key == k {
					fault = fk.fault
				}
			}
			if fault == None {
				return nil, fmt.Errorf("faultinject: unknown key %q in -inject spec", k)
			}
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("faultinject: %s: bad rate %q (want 0..1)", k, v)
			}
			in.Rates[fault] = r
		}
	}
	total := 0.0
	for _, r := range in.Rates {
		total += r
	}
	if total > 1 {
		return nil, fmt.Errorf("faultinject: fault rates sum to %g > 1", total)
	}
	return in, nil
}

// String renders the injector back into canonical spec form (fields in
// fixed order), used to stamp campaign journals so a resumed faulty run
// must carry the same injection config.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", in.Seed)}
	keys := make([]string, 0, len(in.Rates))
	byKey := map[string]float64{}
	for _, fk := range faultKeys {
		if r, ok := in.Rates[fk.fault]; ok && r > 0 {
			keys = append(keys, fk.key)
			byKey[fk.key] = r
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, byKey[k]))
	}
	parts = append(parts,
		fmt.Sprintf("slowms=%d", in.SlowDelay/time.Millisecond),
		fmt.Sprintf("failfor=%d", in.FailFor))
	return strings.Join(parts, ",")
}

// Decide returns the fault injected into cell, None for most cells. The
// decision is a pure function of (Seed, cell): the FNV-64a hash is
// mapped to a uniform point in [0, 1) and compared against the
// cumulative fault rates in faultKeys order.
func (in *Injector) Decide(cell string) Fault {
	if in == nil {
		return None
	}
	h := fnv.New64a()
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], in.Seed)
	h.Write(seed[:])
	h.Write([]byte(cell))
	u := float64(h.Sum64()>>11) / (1 << 53)
	cum := 0.0
	for _, fk := range faultKeys {
		cum += in.Rates[fk.fault]
		if u < cum {
			return fk.fault
		}
	}
	return None
}

// Attempt records one attempt of cell and returns its 1-based count,
// letting Transient cells fail deterministically for exactly FailFor
// attempts. Safe for concurrent workers.
func (in *Injector) Attempt(cell string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.attempts == nil {
		in.attempts = map[string]int{}
	}
	in.attempts[cell]++
	return in.attempts[cell]
}

// StallUntil blocks until canceled reports true — the injected version
// of a wedged simulation, killable only by the watchdog.
func (in *Injector) StallUntil(canceled func() bool) {
	for !canceled() {
		time.Sleep(time.Millisecond)
	}
}

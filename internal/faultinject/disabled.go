//go:build !faults

package faultinject

// Enabled reports that this binary was compiled without the
// fault-injection harness: every `if faultinject.Enabled && ...` hook is
// dead code, and Parse refuses -inject specs so a production binary
// cannot silently ignore a request to inject faults.
const Enabled = false

//go:build faults

package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	in, err := Parse("seed=42,panic=0.1,stall=0.02,slow=0.05,corrupt=0.1,transient=0.25,slowms=75,failfor=2")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed != 42 || in.SlowDelay != 75*time.Millisecond || in.FailFor != 2 {
		t.Fatalf("parsed %+v", in)
	}
	want := map[Fault]float64{Panic: 0.1, Stall: 0.02, Slow: 0.05, Corrupt: 0.1, Transient: 0.25}
	for f, r := range want {
		if in.Rates[f] != r {
			t.Errorf("rate[%v] = %g, want %g", f, in.Rates[f], r)
		}
	}
	// String renders a canonical spec that reparses to the same injector.
	again, err := Parse(in.String())
	if err != nil {
		t.Fatalf("canonical spec %q does not reparse: %v", in.String(), err)
	}
	if again.String() != in.String() {
		t.Fatalf("canonical form unstable: %q vs %q", again.String(), in.String())
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"panic",               // no value
		"panic=2",             // rate out of range
		"panic=-0.5",          // negative rate
		"warp=0.5",            // unknown key
		"seed=x",              // non-numeric seed
		"slowms=-3",           // negative delay
		"failfor=x",           // non-numeric
		"panic=0.6,stall=0.6", // rates sum > 1
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestDecideDeterministicAndSeedSensitive(t *testing.T) {
	in, _ := Parse("seed=42,panic=0.5")
	cells := []string{"pair a+b", "pair a+c", "pair b+c", "fig10 db", "solo jack"}
	first := map[string]Fault{}
	for _, c := range cells {
		first[c] = in.Decide(c)
	}
	for trial := 0; trial < 3; trial++ {
		for _, c := range cells {
			if got := in.Decide(c); got != first[c] {
				t.Fatalf("Decide(%q) flapped: %v then %v", c, first[c], got)
			}
		}
	}
	// A different seed must eventually make a different decision.
	other, _ := Parse("seed=43,panic=0.5")
	diverged := false
	for i := 0; i < 64 && !diverged; i++ {
		c := "cell-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if in.Decide(c) != other.Decide(c) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 decide identically over 64 cells")
	}
}

func TestDecideRateOneHitsEveryCell(t *testing.T) {
	in, _ := Parse("seed=7,stall=1")
	for _, c := range []string{"a", "b", "c", "pair x+y"} {
		if got := in.Decide(c); got != Stall {
			t.Fatalf("Decide(%q) = %v with stall=1", c, got)
		}
	}
	none, _ := Parse("seed=7")
	if got := none.Decide("a"); got != None {
		t.Fatalf("rateless injector decided %v", got)
	}
}

func TestDecideApproximatesRates(t *testing.T) {
	in, _ := Parse("seed=99,panic=0.3")
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.Decide(fmt8(i)) == Panic {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.2 || frac > 0.4 {
		t.Fatalf("panic rate 0.3 hit %.3f of cells", frac)
	}
}

func fmt8(i int) string {
	b := [8]byte{}
	for k := 7; k >= 0; k-- {
		b[k] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

func TestAttemptCountsConcurrently(t *testing.T) {
	in, _ := Parse("seed=1,transient=1,failfor=2")
	var wg sync.WaitGroup
	const workers = 8
	counts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts[w] = in.Attempt("shared-cell")
		}(w)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, c := range counts {
		if c < 1 || c > workers || seen[c] {
			t.Fatalf("attempt counts %v not a permutation of 1..%d", counts, workers)
		}
		seen[c] = true
	}
	if next := in.Attempt("shared-cell"); next != workers+1 {
		t.Fatalf("next attempt = %d, want %d", next, workers+1)
	}
	if other := in.Attempt("other-cell"); other != 1 {
		t.Fatalf("independent cell attempt = %d, want 1", other)
	}
}

func TestStallUntilHonorsCancel(t *testing.T) {
	in, _ := Parse("seed=1,stall=1")
	done := make(chan struct{})
	var canceled sync.Once
	flag := make(chan struct{})
	go func() {
		in.StallUntil(func() bool {
			select {
			case <-flag:
				return true
			default:
				return false
			}
		})
		close(done)
	}()
	canceled.Do(func() { close(flag) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("StallUntil ignored cancellation")
	}
}

//go:build faults

package faultinject

// Enabled reports that this binary was compiled with the fault-injection
// harness. It is a constant so that in the ordinary build flavor every
// `if faultinject.Enabled && ...` hook is eliminated by the compiler and
// production campaigns carry no injection code at all.
const Enabled = true

// Cell enumeration: every campaign type (characterization, pairings,
// fig10, fig12, counter/geometry/policy sweeps) enumerates its grid as
// a flat list of independently schedulable cells before anything runs.
// The CLI drivers in experiments.go/policy.go iterate these cells
// through the sched worker pool; the campaign service (internal/
// service) shards the same cells across its dispatcher. One enumerator
// per campaign type is the single source of truth for cell labels and
// per-cell simulation options, so a daemon job and a one-shot CLI run
// of the same spec produce byte-identical journal entries — the
// property the service's crash-recovery and result-cache layers rest
// on.

package harness

import (
	"encoding/json"
	"fmt"
	"sync"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/resilience"
	"javasmt/internal/sched"
)

// pairPool holds reusable pairing machines shared by every pairing
// campaign in the process (CLI drivers and service workers alike).
var pairPool = sync.Pool{New: func() any { return core.New(pairCPUConfig()) }}

// cellFn is one cell's simulation: it receives the campaign Config and
// the attempt's armed Watch and returns the typed result.
type cellFn[T any] func(cfg Config, w *resilience.Watch) (T, error)

// typedCell is one enumerated cell of a campaign: a stable label (the
// journal identity), the simulation, and the FAILED-row constructor
// drivers fall back to when the campaign gives the cell up.
type typedCell[T any] struct {
	label  string
	fn     cellFn[T]
	failed func(reason string) T
}

// runTyped executes one enumerated cell through runCell: journal
// lookup, resilience policy, conservation validation, journaling.
func runTyped[T any](cfg Config, c typedCell[T]) (outcome[T], error) {
	return runCell(cfg, c.label, func(w *resilience.Watch) (T, error) { return c.fn(cfg, w) })
}

// mapCells fans enumerated cells across the engine, reporting each
// cell's label as progress; outcomes come back in cell order.
func mapCells[T any](cfg Config, cells []typedCell[T]) ([]outcome[T], error) {
	report := sched.Progress(cfg.Progress)
	label := func(i int) string { return cells[i].label }
	return sched.MapObserved(len(cells), cfg.Jobs, cfg.Obs, label, func(i int) (outcome[T], error) {
		report(cells[i].label)
		return runTyped(cfg, cells[i])
	})
}

// characterizationCells enumerates the §4.1 run matrix: every
// multithreaded benchmark at 2 and 8 threads, HT off and on.
func characterizationCells() []typedCell[CharRun] {
	var cells []typedCell[CharRun]
	for _, b := range bench.Multithreaded() {
		for _, threads := range []int{2, 8} {
			for _, ht := range []bool{false, true} {
				label := fmt.Sprintf("%s t=%d ht=%v", b.Name, threads, ht)
				cells = append(cells, typedCell[CharRun]{
					label: label,
					fn: func(cfg Config, w *resilience.Watch) (CharRun, error) {
						opt := Options{HT: ht, Threads: threads, Scale: cfg.Scale, Verify: true,
							MaxCycles: cfg.Policy.CycleBudget, Cancel: w.Flag(), Plan: cfg.Plan,
							SchedPolicy: cfg.SchedPolicy, SchedParams: cfg.SchedParams}
						if cfg.Obs.Enabled() {
							opt.Obs, opt.ObsLabel = cfg.Obs, label
						}
						res, err := Run(b, opt)
						if err != nil {
							return CharRun{}, err
						}
						return CharRun{Benchmark: b.Name, Threads: threads, HT: ht, Result: res}, nil
					},
				})
			}
		}
	}
	return cells
}

// pairGrid enumerates the upper-triangle (i ≤ j) pair coordinates of
// progs — the cells RunPairings measures; the mirrored (j, i) matrix
// entries are filled from the same runs.
func pairGrid(progs []*bench.Benchmark) [][2]int {
	var grid [][2]int
	for i := 0; i < len(progs); i++ {
		for j := i; j < len(progs); j++ {
			grid = append(grid, [2]int{i, j})
		}
	}
	return grid
}

// pairCell enumerates one §4.2 pairing cell. Workers draw reusable
// machines from the shared pool: a Reset CPU behaves bit-identically to
// a fresh one (asserted by the determinism test) but keeps its calendar
// rings, ROB rings and cache arrays.
func pairCell(a, b *bench.Benchmark) typedCell[*PairResult] {
	return typedCell[*PairResult]{
		label: "pair " + a.Name + "+" + b.Name,
		fn: func(cfg Config, w *resilience.Watch) (*PairResult, error) {
			// A panicking cell unwinds past the Put, so its machine —
			// possibly mid-corruption — is never pooled; canceled or
			// over-budget machines are safe to reuse after Reset.
			cpu := pairPool.Get().(*core.CPU)
			cpu.Reset()
			o := cfg.pairOptions()
			o.Cancel = w.Flag()
			res, err := runPairOn(cpu, a, b, o)
			pairPool.Put(cpu)
			return res, err
		},
	}
}

// fig10Cells enumerates the per-benchmark HT-tax measurements (§4.3):
// HT off, HT on, and the dynamic-partition ablation in one cell.
func fig10Cells() []typedCell[Fig10Row] {
	var cells []typedCell[Fig10Row]
	for _, b := range bench.SingleThreaded() {
		label := "fig10 " + b.Name
		cells = append(cells, typedCell[Fig10Row]{
			label:  label,
			failed: func(reason string) Fig10Row { return Fig10Row{Benchmark: b.Name, Failed: reason} },
			fn: func(cfg Config, w *resilience.Watch) (Fig10Row, error) {
				run := func(mode string, opt Options) (*Result, error) {
					opt.MaxCycles = cfg.Policy.CycleBudget
					opt.Cancel = w.Flag()
					opt.Plan = cfg.Plan
					opt.SchedPolicy = cfg.SchedPolicy
					opt.SchedParams = cfg.SchedParams
					if cfg.Obs.Enabled() {
						opt.Obs, opt.ObsLabel = cfg.Obs, fmt.Sprintf("fig10 %s %s", b.Name, mode)
					}
					return Run(b, opt)
				}
				off, err := run("ht=off", Options{Threads: 1, Scale: cfg.Scale, Verify: true})
				if err != nil {
					return Fig10Row{}, err
				}
				on, err := run("ht=on", Options{HT: true, Threads: 1, Scale: cfg.Scale})
				if err != nil {
					return Fig10Row{}, err
				}
				dyn, err := run("ht=on dyn", Options{HT: true, Threads: 1, Scale: cfg.Scale, Partition: core.DynamicPartition})
				if err != nil {
					return Fig10Row{}, err
				}
				return Fig10Row{Benchmark: b.Name, CyclesOff: off.Cycles, CyclesOn: on.Cycles, CyclesDyn: dyn.Cycles}, nil
			},
		})
	}
	return cells
}

// fig12Cells enumerates the thread-count sweep grid (§4.4).
func fig12Cells(threadCounts []int) []typedCell[Fig12Row] {
	var cells []typedCell[Fig12Row]
	for _, b := range bench.Multithreaded() {
		for _, t := range threadCounts {
			label := fmt.Sprintf("fig12 %s t=%d", b.Name, t)
			cells = append(cells, typedCell[Fig12Row]{
				label: label,
				failed: func(reason string) Fig12Row {
					return Fig12Row{Benchmark: b.Name, Threads: t, Failed: reason}
				},
				fn: func(cfg Config, w *resilience.Watch) (Fig12Row, error) {
					opt := Options{HT: true, Threads: t, Scale: cfg.Scale, Verify: true,
						MaxCycles: cfg.Policy.CycleBudget, Cancel: w.Flag(), Plan: cfg.Plan,
						SchedPolicy: cfg.SchedPolicy, SchedParams: cfg.SchedParams}
					if cfg.Obs.Enabled() {
						opt.Obs, opt.ObsLabel = cfg.Obs, label
					}
					res, err := Run(b, opt)
					if err != nil {
						return Fig12Row{}, err
					}
					return Fig12Row{
						Benchmark: b.Name, Threads: t,
						IPC:     res.Counters.IPC(),
						L1DPerK: res.Counters.PerKiloInstr(counters.L1DMisses),
					}, nil
				},
			})
		}
	}
	return cells
}

// sweepCells enumerates the counter-sweep grid (cmd/sweep): each target
// benchmark at each thread count on the HT processor.
func sweepCells(targets []*bench.Benchmark, threadCounts []int) []typedCell[SweepCell] {
	var cells []typedCell[SweepCell]
	for _, b := range targets {
		for _, t := range threadCounts {
			if t > 1 && !b.Multithreaded {
				continue
			}
			label := fmt.Sprintf("%s t=%d", b.Name, t)
			cells = append(cells, typedCell[SweepCell]{
				label: label,
				failed: func(reason string) SweepCell {
					return SweepCell{Benchmark: b.Name, Threads: t, Failed: reason}
				},
				fn: func(cfg Config, w *resilience.Watch) (SweepCell, error) {
					opt := Options{HT: true, Threads: t, Scale: cfg.Scale, Verify: true,
						MaxCycles: cfg.Policy.CycleBudget, Cancel: w.Flag(), Plan: cfg.Plan,
						SchedPolicy: cfg.SchedPolicy, SchedParams: cfg.SchedParams}
					if cfg.Obs.Enabled() {
						opt.Obs, opt.ObsLabel = cfg.Obs, label
					}
					res, err := Run(b, opt)
					if err != nil {
						return SweepCell{}, err
					}
					return SweepCell{Benchmark: b.Name, Threads: t, Counters: res.Counters}, nil
				},
			})
		}
	}
	return cells
}

// geometryCells enumerates the machine-shape sweep grid (cmd/sweep
// -geos): each target benchmark on each M×N geometry, multithreaded
// benchmarks seating one software thread per hardware context.
func geometryCells(targets []*bench.Benchmark, geos []core.Geometry) []typedCell[GeometryCell] {
	var cells []typedCell[GeometryCell]
	for _, b := range targets {
		for _, g := range geos {
			label := fmt.Sprintf("%s geo=%v", b.Name, g)
			cells = append(cells, typedCell[GeometryCell]{
				label: label,
				failed: func(reason string) GeometryCell {
					return GeometryCell{Benchmark: b.Name, Geometry: g, Failed: reason}
				},
				fn: func(cfg Config, w *resilience.Watch) (GeometryCell, error) {
					threads := 1
					if b.Multithreaded {
						threads = g.Total()
					}
					opt := Options{Geometry: g, Threads: threads, Scale: cfg.Scale, Verify: true,
						MaxCycles: cfg.Policy.CycleBudget, Cancel: w.Flag(), Plan: cfg.Plan,
						SchedPolicy: cfg.SchedPolicy, SchedParams: cfg.SchedParams}
					if cfg.Obs.Enabled() {
						opt.Obs, opt.ObsLabel = cfg.Obs, label
					}
					res, err := Run(b, opt)
					if err != nil {
						return GeometryCell{}, err
					}
					return GeometryCell{Benchmark: b.Name, Geometry: g, Threads: threads, Counters: res.Counters}, nil
				},
			})
		}
	}
	return cells
}

// policyCells enumerates the policy × mix × geometry grid (cmd/sweep
// -policies), policy-major within mix×geometry so rendered rows group
// naturally.
func policyCells(policies []string, mixes []Mix, geos []core.Geometry) []typedCell[PolicyCell] {
	var cells []typedCell[PolicyCell]
	for _, m := range mixes {
		for _, g := range geos {
			for _, pol := range policies {
				label := fmt.Sprintf("%s policy=%s geo=%v", m.Name, pol, g)
				cells = append(cells, typedCell[PolicyCell]{
					label: label,
					failed: func(reason string) PolicyCell {
						return PolicyCell{Mix: m.Name, Threads: m.Threads(), Policy: pol, Geometry: g, Failed: reason}
					},
					fn: func(cfg Config, w *resilience.Watch) (PolicyCell, error) {
						opt := Options{Geometry: g, Scale: cfg.Scale, Verify: true,
							MaxCycles: cfg.Policy.CycleBudget, Cancel: w.Flag(), Plan: cfg.Plan,
							SchedPolicy: pol, SchedParams: cfg.SchedParams}
						if cfg.Obs.Enabled() {
							opt.Obs, opt.ObsLabel = cfg.Obs, label
						}
						res, err := RunMix(m, opt)
						if err != nil {
							return PolicyCell{}, err
						}
						return PolicyCell{
							Mix: m.Name, Threads: res.Threads, Policy: pol, Geometry: g,
							Cycles: res.Cycles, Migrations: res.Migrations, Counters: res.Counters,
						}, nil
					},
				})
			}
		}
	}
	return cells
}

// CellOutcome is the service-facing result of one executed cell:
// exactly one of Payload (the completed cell's journal-payload JSON —
// the cellRecord bytes a single-process campaign writes) or Fail is
// set.
type CellOutcome struct {
	Label   string
	Payload json.RawMessage
	Fail    *resilience.CellError
}

// CellSpec is one independently schedulable cell of an enumerated
// campaign, as consumed by the campaign service's dispatcher. Label is
// the cell's stable identity — the same string the CLI drivers journal,
// so a service ledger and a CLI journal for the same spec are
// interchangeable byte for byte.
type CellSpec struct {
	Label string
	exec  func(cfg Config) (CellOutcome, error)
}

// Run executes the cell under cfg's full campaign stack — journal
// lookup (a ledgered cell is never re-simulated), resilience policy,
// conservation validation, journaling. The error return is
// campaign-level (broken journal) only; the cell's own failure comes
// back in the outcome.
func (c CellSpec) Run(cfg Config) (CellOutcome, error) { return c.exec(cfg) }

// toSpecs adapts enumerated typed cells to the service-facing form.
func toSpecs[T any](cells []typedCell[T]) []CellSpec {
	specs := make([]CellSpec, len(cells))
	for i, c := range cells {
		specs[i] = CellSpec{Label: c.label, exec: func(cfg Config) (CellOutcome, error) {
			out, err := runTyped(cfg, c)
			if err != nil {
				return CellOutcome{}, err
			}
			return CellOutcome{Label: c.label, Payload: out.payload, Fail: out.fail}, nil
		}}
	}
	return specs
}

// CharacterizationCellSpecs enumerates the §4.1 run matrix for the
// campaign service.
func CharacterizationCellSpecs() []CellSpec { return toSpecs(characterizationCells()) }

// PairingCellSpecs enumerates the §4.2 pairing cells of progs for the
// campaign service.
func PairingCellSpecs(progs []*bench.Benchmark) []CellSpec {
	grid := pairGrid(progs)
	cells := make([]typedCell[*PairResult], len(grid))
	for i, ij := range grid {
		cells[i] = pairCell(progs[ij[0]], progs[ij[1]])
	}
	return toSpecs(cells)
}

// Fig10CellSpecs enumerates the HT-tax cells (§4.3) for the campaign
// service.
func Fig10CellSpecs() []CellSpec { return toSpecs(fig10Cells()) }

// Fig12CellSpecs enumerates the thread-sweep cells (§4.4) for the
// campaign service.
func Fig12CellSpecs(threadCounts []int) []CellSpec { return toSpecs(fig12Cells(threadCounts)) }

// SweepCellSpecs enumerates the counter-sweep cells for the campaign
// service.
func SweepCellSpecs(targets []*bench.Benchmark, threadCounts []int) []CellSpec {
	return toSpecs(sweepCells(targets, threadCounts))
}

// GeometryCellSpecs enumerates the machine-shape sweep cells for the
// campaign service.
func GeometryCellSpecs(targets []*bench.Benchmark, geos []core.Geometry) []CellSpec {
	return toSpecs(geometryCells(targets, geos))
}

// PolicyCellSpecs enumerates the policy × mix × geometry cells for the
// campaign service.
func PolicyCellSpecs(policies []string, mixes []Mix, geos []core.Geometry) []CellSpec {
	return toSpecs(policyCells(policies, mixes, geos))
}

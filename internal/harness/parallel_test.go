package harness

import (
	"sync"
	"testing"

	"javasmt/internal/bench"
)

// resetSoloCache clears the solo-time cache so a test can observe cold
// computations.
func resetSoloCache() {
	soloMu.Lock()
	soloCache = map[string]*soloEntry{}
	soloMu.Unlock()
}

// TestSoloTimeSingleflight asserts the singleflight property: many
// concurrent SoloTime calls for the same key run exactly one simulation
// and all see the same value.
func TestSoloTimeSingleflight(t *testing.T) {
	b, _ := bench.ByName("mpegaudio")
	resetSoloCache()
	before := soloSims.Load()

	const callers = 8
	vals := make([]float64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = SoloTime(b, bench.Tiny, 3)
		}(i)
	}
	wg.Wait()

	if sims := soloSims.Load() - before; sims != 1 {
		t.Fatalf("%d solo simulations for one key, want exactly 1 (singleflight)", sims)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != vals[0] || vals[i] == 0 {
			t.Fatalf("caller %d saw %v, caller 0 saw %v", i, vals[i], vals[0])
		}
	}
}

// TestRunPairingsParallelDeterminism asserts the engine's core
// guarantee: the parallel cross product — pooled, Reset-reused CPUs and
// all — renders byte-identical figure tables to the serial reference.
func TestRunPairingsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var progs []*bench.Benchmark
	for _, name := range []string{"compress", "mpegaudio", "db"} {
		b, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		progs = append(progs, b)
	}
	cfg := DefaultConfig()
	cfg.Runs = 3

	cfg.Jobs = 1
	serial, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 4
	parallel, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, cmp := range []struct {
		name           string
		serial, parall string
	}{
		{"Fig8", serial.Fig8(), parallel.Fig8()},
		{"Fig9", serial.Fig9(), parallel.Fig9()},
		{"Fig11", serial.Fig11(), parallel.Fig11()},
	} {
		if cmp.serial != cmp.parall {
			t.Errorf("%s diverges between -j 1 and -j 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				cmp.name, cmp.serial, cmp.parall)
		}
	}
}

// TestRunFig12ParallelMatchesSerial spot-checks the grid fan-out path:
// rows come back in grid order with identical values at any job count.
func TestRunFig12ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial, err := RunFig12(Config{Scale: bench.Tiny, Jobs: 1}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig12(Config{Scale: bench.Tiny, Jobs: 4}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := RenderFig12(serial), RenderFig12(parallel); s != p {
		t.Errorf("Fig12 diverges:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// Package harness runs the paper's experiments: single benchmarks in
// either HT mode, multithreaded runs, and the multiprogrammed pairing
// protocol of §4.2 with its repeat-relaunch-and-average measurement.
package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"javasmt/internal/bench"
	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/faultinject"
	"javasmt/internal/jvm"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
	"javasmt/internal/sampling"
	"javasmt/internal/simos"
)

// Config configures an experiment driver (RunCharacterization,
// RunPairings, RunFig10, RunFig12): input scale, engine parallelism,
// pairing protocol depth, progress reporting and observability. The
// zero value is usable; DefaultConfig fills in the pairing defaults.
type Config struct {
	// Scale selects input sizes for every cell.
	Scale bench.Scale
	// Jobs bounds how many cells simulate concurrently: 0 or negative
	// means one worker per CPU, 1 runs serially. Each simulation owns
	// its whole machine, so results are byte-identical at any job count.
	Jobs int
	// Runs is the minimum completed runs per program in pairing cells
	// (the paper uses 12 and drops the first and last; we default lower
	// to bound simulation time — see DESIGN.md §5).
	Runs int
	// MaxCycles bounds each pairing experiment (0 = unlimited).
	MaxCycles uint64
	// Progress receives one self-describing line per cell; nil disables
	// reporting.
	Progress func(string)
	// Obs receives per-run metrics series and trace spans; nil disables
	// observability entirely (the zero-overhead default).
	Obs *obs.Sink
	// Policy is the per-cell resilience policy: wall-clock deadline,
	// cycle budget and retries. The zero value recovers panics and
	// validates counters but sets no bounds and never retries.
	Policy resilience.CellPolicy
	// Journal, when non-nil, checkpoints every cell outcome so an
	// interrupted campaign resumes without re-simulating finished cells.
	Journal *resilience.Journal
	// Inject, when non-nil on a `faults`-tagged build, injects
	// deterministic faults into cells to exercise the recovery paths.
	Inject *faultinject.Injector
	// Plan selects full or interval-sampled simulation for every cell
	// (internal/sampling). The zero value is full detailed simulation,
	// byte-identical to a configuration without the field.
	Plan sampling.Plan
	// SchedPolicy names the simos seating policy every cell's kernel
	// runs under ("" or "naive" = the seed FIFO timeslicer,
	// byte-identical to a configuration without the field). Solo
	// reference runs stay policy-free: a lone thread's seating cannot
	// matter, and the singleflight solo cache is keyed without it.
	SchedPolicy string
	// SchedParams overrides the scheduler tuning (zero fields take the
	// simos defaults).
	SchedParams simos.Params
}

// DefaultConfig returns the serial Tiny-scale configuration with the
// default pairing protocol depth.
func DefaultConfig() Config {
	return Config{Scale: bench.Tiny, Jobs: 1, Runs: 6, MaxCycles: 2_000_000_000}
}

// pairOptions derives the per-pairing protocol options from cfg.
func (c Config) pairOptions() PairOptions {
	return PairOptions{Scale: c.Scale, Runs: c.Runs, MaxCycles: c.cellMaxCycles(), Obs: c.Obs, Plan: c.Plan,
		SchedPolicy: c.SchedPolicy, SchedParams: c.SchedParams}
}

// Options configures a run.
type Options struct {
	// HT enables Hyper-Threading.
	HT bool
	// Geometry, when non-zero, selects an explicit machine shape
	// (cores × contexts per core) instead of the HT flag: the paper's
	// HT-off machine is {1,1} and its HT machine {1,2}, and those two
	// geometries reproduce the HT flag's counters byte for byte
	// (TestGeometryEquivalence). Larger shapes model wider SMT or CMP
	// machines. When set, HT is ignored.
	Geometry core.Geometry
	// Partition selects the partition policy (ablation: dynamic).
	Partition core.PartitionPolicy
	// Threads for multithreaded benchmarks (1 = single-threaded use).
	Threads int
	// Scale selects input sizes.
	Scale bench.Scale
	// Verify re-checks program results against the Go mirrors.
	Verify bool
	// TCSharedTags enables the trace-cache sharing ablation.
	TCSharedTags bool
	// MaxCycles aborts runaway runs (0 = unlimited).
	MaxCycles uint64
	// Obs, when non-nil and enabled, records this run as one metrics
	// series and one trace track. nil costs nothing on the cycle loop.
	Obs *obs.Sink
	// ObsLabel names the run in metrics/trace output; empty defaults to
	// the benchmark name. Experiment drivers set cell-unique labels so
	// exported series order (sorted by label) is deterministic.
	ObsLabel string
	// Cancel, when non-nil, is polled from inside the cycle loop (via
	// core.AttachCancel); setting it aborts the run with core.ErrCanceled
	// within a few thousand simulated cycles. The resilience watchdog
	// plugs its expiry flag in here.
	Cancel *atomic.Bool
	// Plan selects full or interval-sampled simulation (internal/
	// sampling); the zero value is full detailed simulation.
	Plan sampling.Plan
	// SchedPolicy names the simos seating policy for the run's kernel.
	// "" and "naive" select the seed FIFO timeslicer — byte-identical
	// to a configuration without the field (TestPolicyNaiveEquivalence).
	SchedPolicy string
	// SchedParams overrides the scheduler tuning; zero fields take the
	// simos defaults, so setting only Timeslice keeps the switch-cost
	// model untouched.
	SchedParams simos.Params
}

// DefaultOptions returns a single-threaded HT-off Tiny run with
// verification on.
func DefaultOptions() Options {
	return Options{Threads: 1, Scale: bench.Tiny, Verify: true}
}

// cpuConfig builds the processor configuration for opts.
func cpuConfig(opts Options) core.Config {
	cfg := core.DefaultConfig(opts.HT)
	if (opts.Geometry != core.Geometry{}) {
		cfg.Geometry = opts.Geometry
	}
	cfg.Partition = opts.Partition
	cfg.TC.SharedTags = opts.TCSharedTags
	return cfg
}

// newKernel builds the simulated OS for a run — the single place
// scheduler tuning and the seating policy enter a simulation. Every
// kernel the harness creates (characterization runs, solo reference
// measurements, pairings, mixes) comes through here, so an Options
// change reaches all of them; the old pattern of calling
// simos.NewKernel(cpu, simos.DefaultParams()) at each call site is gone.
func newKernel(cpu *core.CPU, opts Options) (*simos.Kernel, error) {
	pol, err := simos.NewPolicy(opts.SchedPolicy)
	if err != nil {
		return nil, err
	}
	return simos.New(cpu, simos.Options{Params: opts.SchedParams, Policy: pol}), nil
}

// vmConfig scales the collected heap with the input size so GC activity
// stays in a realistic band (the paper configured a 512 MB heap for its
// full-size inputs; see DESIGN.md §5 on scaling).
func vmConfig(scale bench.Scale, slot int) jvm.Config {
	cfg := jvm.DefaultConfig()
	switch scale {
	case bench.Tiny:
		cfg.HeapBytes = 2 << 20
	case bench.Small:
		cfg.HeapBytes = 6 << 20
	default:
		cfg.HeapBytes = 24 << 20
	}
	// Distinct address spaces per co-scheduled program.
	cfg.HeapBase = 0x2000_0000 + uint64(slot)*0x4000_0000
	return cfg
}

// Result is one run's outcome.
type Result struct {
	Benchmark string
	Cycles    uint64
	Counters  counters.File
	GCCount   int
	// Sampling carries the reconstruction record of a sampled run (nil
	// for full simulation): tier split, window count, pooled window IPC
	// and the relative-error estimate. It rides into journal payloads.
	Sampling *sampling.Estimate `json:",omitempty"`
}

// IPC returns the run's retired µops per cycle.
func (r *Result) IPC() float64 { return r.Counters.IPC() }

// Run executes one benchmark under opts and returns its measurements.
func Run(b *bench.Benchmark, opts Options) (*Result, error) {
	return RunWithCPUConfig(b, opts, cpuConfig(opts))
}

// RunWithCPUConfig is Run with an explicit processor configuration, for
// hardware ablations (cache sizes, penalties) beyond the Options knobs.
func RunWithCPUConfig(b *bench.Benchmark, opts Options, cfg core.Config) (*Result, error) {
	threads := opts.Threads
	if !b.Multithreaded {
		threads = 1
	}
	prog := b.Build(threads, opts.Scale, 0)
	cpu := core.New(cfg)
	k, err := newKernel(cpu, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	vm := jvm.New(prog, k, vmConfig(opts.Scale, 0))
	vm.Start()
	var ro *obs.RunObs
	if opts.Obs.Enabled() {
		label := opts.ObsLabel
		if label == "" {
			label = b.Name
		}
		ro = opts.Obs.RunFor(label, cfg.NumContexts())
		cpu.AttachObs(ro, 0)
	}
	if opts.Cancel != nil {
		cpu.AttachCancel(opts.Cancel)
	}
	ctrl := sampling.NewController(cpu, opts.Plan)
	cycles, err := ctrl.Run(opts.MaxCycles)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", b.Name, err)
	}
	if opts.MaxCycles > 0 && !cpu.Drained() {
		return nil, resilience.MarkKind(
			fmt.Errorf("harness: %s exceeded cycle budget of %d cycles", b.Name, opts.MaxCycles),
			resilience.KindCycleBudget)
	}
	// Reconstruction must land before the final observability flush and
	// the counter snapshot, so both report whole-run estimates.
	est := ctrl.Finish()
	if est != nil {
		cycles = cpu.Counters().Get(counters.Cycles)
		ro.SetSampling(samplingInfo(est))
	}
	cpu.FinishObs()
	if opts.Verify {
		if err := b.Verify(vm, threads, opts.Scale); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &Result{
		Benchmark: b.Name,
		Cycles:    cycles,
		Counters:  *cpu.Counters(),
		GCCount:   vm.GCCount(),
		Sampling:  est,
	}, nil
}

// samplingInfo converts a reconstruction estimate into the obs layer's
// plain record (obs cannot import sampling: it sits below it).
func samplingInfo(e *sampling.Estimate) *obs.SamplingInfo {
	return &obs.SamplingInfo{
		Mode:        e.Mode,
		Windows:     e.Windows,
		WindowIPC:   e.WindowIPC,
		IPCRelErr:   e.IPCRelErr,
		DetailPct:   e.DetailPct,
		MeasuredPct: e.MeasuredPct,
	}
}

// PairResult is the outcome of one multiprogrammed pairing (§4.2).
type PairResult struct {
	A, B string
	// TimeA/TimeB are the averaged simultaneous execution times; SoloA
	// and SoloB the HT-off solo times of the same programs.
	TimeA, TimeB float64
	SoloA, SoloB float64
	// RunsA/RunsB are how many completed runs were averaged.
	RunsA, RunsB int
	// Counters accumulates over the whole co-scheduled interval.
	Counters counters.File
	// Sampling carries the reconstruction record of a sampled pairing
	// (nil for full simulation).
	Sampling *sampling.Estimate `json:",omitempty"`
}

// CombinedSpeedup returns C_AB = SoloA/TimeA + SoloB/TimeB, the paper's
// pairing metric: 1 on a perfect time-sharing uniprocessor, 2 on a
// perfect 2-way SMP.
func (p *PairResult) CombinedSpeedup() float64 {
	if p.TimeA == 0 || p.TimeB == 0 {
		return 0
	}
	return p.SoloA/p.TimeA + p.SoloB/p.TimeB
}

// SpeedupA returns A's individual share SoloA/TimeA (the Figure 9 cell
// value is the whole pair's combined speedup; per-program shares feed the
// symmetry analysis).
func (p *PairResult) SpeedupA() float64 {
	if p.TimeA == 0 {
		return 0
	}
	return p.SoloA / p.TimeA
}

// SpeedupB returns B's individual share.
func (p *PairResult) SpeedupB() float64 {
	if p.TimeB == 0 {
		return 0
	}
	return p.SoloB / p.TimeB
}

// repeatingFeeder relaunches a benchmark program each time it exits, as
// the paper's utility program does, recording each completion time.
type repeatingFeeder struct {
	b     *bench.Benchmark
	scale bench.Scale
	slot  int
	k     *simos.Kernel
	cpu   *core.CPU

	// prog is built once on the first launch and reused for every
	// relaunch: a linked program is immutable during execution (all
	// mutable state lives in the VM), and rebuilding it dominated the
	// per-relaunch cost.
	prog *bytecode.Program

	lastStart   uint64
	completions []uint64
	maxRuns     int
	partner     *repeatingFeeder
	stopped     bool
}

// quotaMet reports whether this side has completed its runs.
func (rf *repeatingFeeder) quotaMet() bool { return len(rf.completions) >= rf.maxRuns }

// partnerDone reports whether the co-scheduled program (if any) has met
// its quota; solo measurement runs have no partner.
func (rf *repeatingFeeder) partnerDone() bool {
	return rf.partner == nil || rf.partner.quotaMet()
}

// launch starts one fresh instance of the benchmark program. Per the
// paper's footnote, the shorter benchmark keeps relaunching past its own
// quota until the partner finishes, so neither program's measured runs
// include solo execution.
func (rf *repeatingFeeder) launch() {
	if rf.prog == nil {
		rf.prog = rf.b.Build(1, rf.scale, uint64(1+rf.slot)<<26)
	}
	vm := jvm.New(rf.prog, rf.k, vmConfig(rf.scale, rf.slot))
	rf.lastStart = rf.cpu.Now()
	main := vm.Start()
	jvm.OnExit(main, func() {
		rf.completions = append(rf.completions, rf.cpu.Now()-rf.lastStart)
		if !rf.quotaMet() || !rf.partnerDone() {
			rf.launch()
			return
		}
		rf.stopped = true
	})
}

// PairOptions configures the pairing protocol for one pairing. Engine
// concerns (parallelism, progress) live on Config, which derives a
// PairOptions per cell.
type PairOptions struct {
	Scale bench.Scale
	// Runs is the minimum completed runs per program (the paper uses 12
	// and drops the first and last; we default lower to bound
	// simulation time — see DESIGN.md §5).
	Runs int
	// MaxCycles bounds the whole experiment.
	MaxCycles uint64
	// Obs, when non-nil and enabled, records the co-scheduled interval
	// as one metrics series and trace track labelled "pair A+B". Solo
	// reference runs are never observed: they are singleflight-cached
	// across experiments, so which pairing triggers one is scheduling-
	// dependent and observing them would break export determinism.
	Obs *obs.Sink
	// Cancel, when non-nil, aborts the pairing from inside the cycle
	// loop; see Options.Cancel. Solo reference runs are deliberately not
	// guarded: they are singleflight-cached across cells, so canceling
	// one on behalf of a single timed-out cell would poison the cache
	// for every other cell sharing it.
	Cancel *atomic.Bool
	// Plan selects full or interval-sampled simulation for the pairing
	// and its solo reference runs (internal/sampling); the zero value is
	// full detailed simulation.
	Plan sampling.Plan
	// SchedPolicy and SchedParams select the seating policy and
	// scheduler tuning of the co-scheduled interval (see
	// Options.SchedPolicy). Solo reference runs stay policy-free.
	SchedPolicy string
	SchedParams simos.Params
}

// DefaultPairOptions returns the default pairing protocol settings.
func DefaultPairOptions() PairOptions {
	return PairOptions{Scale: bench.Tiny, Runs: 6, MaxCycles: 2_000_000_000}
}

// soloEntry is one singleflight-guarded solo-time computation: the
// first caller simulates inside the Once, every concurrent or later
// caller waits on it and shares the result.
type soloEntry struct {
	once sync.Once
	val  float64
	err  error
}

// soloCache caches HT-off solo times per (benchmark, scale, runs). The
// map itself is guarded by soloMu; each entry's computation is guarded
// by its Once, so two pairings needing the same solo time never
// simulate it twice and never race.
var (
	soloMu    sync.Mutex
	soloCache = map[string]*soloEntry{}
	// soloSims counts actual solo simulations (not cache hits); tests
	// use it to assert the singleflight property.
	soloSims atomic.Uint64
)

// SoloTime returns the benchmark's HT-off execution time in cycles,
// measured with the same relaunch-and-average protocol as the paired
// runs (so cold-start effects cancel out of the speedup ratios, as they
// do in the paper's long-running measurements), and cached across
// calls. It is safe for concurrent use: the first caller for a given
// (benchmark, scale, runs) key simulates, everyone else shares the
// cached result (including a cached error).
func SoloTime(b *bench.Benchmark, scale bench.Scale, runs int) (float64, error) {
	return SoloTimePlan(b, scale, runs, sampling.FullPlan())
}

// SoloTimePlan is SoloTime under an explicit sampling plan. Solo times
// measured under different plans are cached separately (the plan's Tag
// joins the cache key): a sampled campaign's speedup ratios must divide
// sampled solo times by sampled pair times, never mix modes.
func SoloTimePlan(b *bench.Benchmark, scale bench.Scale, runs int, plan sampling.Plan) (float64, error) {
	key := fmt.Sprintf("%s/%v/%d%s", b.Name, scale, runs, plan.Tag())
	soloMu.Lock()
	e := soloCache[key]
	if e == nil {
		e = &soloEntry{}
		soloCache[key] = e
	}
	soloMu.Unlock()
	e.once.Do(func() { e.val, e.err = measureSolo(b, scale, runs, plan) })
	return e.val, e.err
}

// measureSolo runs the relaunch-and-average solo measurement itself.
func measureSolo(b *bench.Benchmark, scale bench.Scale, runs int, plan sampling.Plan) (float64, error) {
	soloSims.Add(1)
	cpu := core.New(cpuConfig(Options{}))
	// Solo reference runs are deliberately policy-free (default
	// Options): a single thread's seating cannot matter, and the
	// singleflight cache key above carries no policy component.
	k, err := newKernel(cpu, Options{})
	if err != nil {
		return 0, err
	}
	rf := &repeatingFeeder{b: b, scale: scale, slot: 0, k: k, cpu: cpu, maxRuns: runs + 2}
	rf.launch()
	ctrl := sampling.NewController(cpu, plan)
	for !rf.stopped {
		n, err := ctrl.Run(10_000_000)
		if err != nil {
			return 0, fmt.Errorf("harness: solo %s: %w", b.Name, err)
		}
		if n == 0 {
			break
		}
	}
	ctrl.Finish()
	v, kept := avgDroppingEnds(rf.completions)
	if kept == 0 {
		return 0, fmt.Errorf("harness: solo %s completed no measurable runs", b.Name)
	}
	return v, nil
}

// avgDroppingEnds averages completion times, dropping the first (cold
// start) and last (possibly truncated) runs, per the paper's protocol.
func avgDroppingEnds(times []uint64) (float64, int) {
	if len(times) <= 2 {
		return 0, 0
	}
	kept := times[1 : len(times)-1]
	sum := 0.0
	for _, t := range kept {
		sum += float64(t)
	}
	return sum / float64(len(kept)), len(kept)
}

// RunPair co-schedules two benchmarks on one HT processor using the
// paper's §4.2 protocol: both repeat until each has completed at least
// opts.Runs runs, the first and last runs are dropped, and the remaining
// completion times are averaged.
func RunPair(a, b *bench.Benchmark, opts PairOptions) (*PairResult, error) {
	return runPairOn(core.New(pairCPUConfig()), a, b, opts)
}

// pairCPUConfig is the processor configuration every pairing runs under.
func pairCPUConfig() core.Config { return cpuConfig(Options{HT: true}) }

// runPairOn is RunPair on a caller-supplied CPU, which must be freshly
// built (or Reset) with pairCPUConfig. The parallel engine uses it to
// reuse one machine's allocations across a worker's successive pairs.
func runPairOn(cpu *core.CPU, a, b *bench.Benchmark, opts PairOptions) (*PairResult, error) {
	soloA, err := SoloTimePlan(a, opts.Scale, opts.Runs, opts.Plan)
	if err != nil {
		return nil, err
	}
	soloB, err := SoloTimePlan(b, opts.Scale, opts.Runs, opts.Plan)
	if err != nil {
		return nil, err
	}

	k, err := newKernel(cpu, Options{SchedPolicy: opts.SchedPolicy, SchedParams: opts.SchedParams})
	if err != nil {
		return nil, err
	}
	// +2: the first (cold) and last (possibly truncated) runs are
	// dropped, as in the paper.
	fa := &repeatingFeeder{b: a, scale: opts.Scale, slot: 0, k: k, cpu: cpu, maxRuns: opts.Runs + 2}
	fb := &repeatingFeeder{b: b, scale: opts.Scale, slot: 1, k: k, cpu: cpu, maxRuns: opts.Runs + 2}
	fa.partner, fb.partner = fb, fa
	fa.launch()
	fb.launch()
	var ro *obs.RunObs
	if opts.Obs.Enabled() {
		ro = opts.Obs.Run("pair " + a.Name + "+" + b.Name)
		cpu.AttachObs(ro, 0)
	}
	if opts.Cancel != nil {
		cpu.AttachCancel(opts.Cancel)
	}

	ctrl := sampling.NewController(cpu, opts.Plan)
	for !fa.stopped || !fb.stopped {
		n, err := ctrl.Run(10_000_000)
		if err != nil {
			return nil, fmt.Errorf("harness: pair %s+%s: %w", a.Name, b.Name, err)
		}
		if n == 0 {
			break // machine drained (both sides done)
		}
		if opts.MaxCycles > 0 && cpu.Now() > opts.MaxCycles {
			return nil, resilience.MarkKind(
				fmt.Errorf("harness: pair %s+%s exceeded %d cycles", a.Name, b.Name, opts.MaxCycles),
				resilience.KindCycleBudget)
		}
	}

	est := ctrl.Finish()
	if est != nil {
		ro.SetSampling(samplingInfo(est))
	}
	cpu.FinishObs()
	ta, na := avgDroppingEnds(fa.completions)
	tb, nb := avgDroppingEnds(fb.completions)
	return &PairResult{
		A: a.Name, B: b.Name,
		TimeA: ta, TimeB: tb,
		SoloA: soloA, SoloB: soloB,
		RunsA: na, RunsB: nb,
		Counters: *cpu.Counters(),
		Sampling: est,
	}, nil
}

//go:build checks

package harness

import (
	"testing"

	"javasmt/internal/check"
	"javasmt/internal/sampling"
)

// TestSampledProbesScoped is the -sim-mode sampled + -checks guard: the
// invariant probes must stay armed and exact through a sampled run. The
// flow audit scopes its retirement-histogram law to detailed cycles by
// accounting functional µops explicitly (core/invariants.go), so a
// sampled run under the instrumented build passes every probe rather
// than tripping or silently skipping them. A probe regression here
// would mean sampled campaigns lose the invariant safety net exactly
// when their counters are hardest to eyeball.
func TestSampledProbesScoped(t *testing.T) {
	if !check.On {
		if err := check.SetOn(true); err != nil {
			t.Fatal(err)
		}
		defer check.SetOn(false)
	}
	check.ResetProbes()
	opts := DefaultOptions()
	opts.Plan = sampling.DefaultSampledPlan()
	res, err := Run(mustBench(t, "compress"), opts)
	if err != nil {
		t.Fatalf("sampled run under -tags checks: %v", err)
	}
	if got := check.Probes(); got < 1000 {
		t.Fatalf("only %d probe evaluations in a sampled run; probes are not firing", got)
	}
	if res.Sampling == nil || res.Sampling.WarmUops == 0 {
		t.Fatalf("run did not actually sample: %+v", res.Sampling)
	}
	if err := res.Counters.CheckConservation(); err != nil {
		t.Errorf("conservation under checks: %v", err)
	}
}

package harness

import (
	"strings"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/bytecode"
	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/resilience"
)

// syncSnapshot is the golden record of one synchronization-stress run:
// the broad machine counters plus the JMM-specific ones (ISSUE 10) —
// any change to the monitor table, the store buffer, fence costing or
// the CAS path moves one of these.
type syncSnapshot struct {
	Benchmark        string
	Cycles           uint64
	Uops             uint64
	LockAcquires     uint64
	LockContended    uint64
	MonitorBlocks    uint64
	FenceUops        uint64
	FenceStallCycles uint64
	CASOps           uint64
	CASFailures      uint64
	CtxSwitches      uint64
}

// TestGoldenSyncCounters snapshots the four sync-stress benchmarks at
// tiny scale, four threads on the paper's HT machine — enough pressure
// that every sync counter is live.
func TestGoldenSyncCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := DefaultOptions()
	opts.HT = true
	opts.Threads = 4
	var snaps []syncSnapshot
	for _, b := range bench.Sync() {
		res, err := Run(b, opts)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		f := res.Counters
		snaps = append(snaps, syncSnapshot{
			Benchmark:        b.Name,
			Cycles:           res.Cycles,
			Uops:             f.Get(counters.Instructions),
			LockAcquires:     f.Get(counters.LockAcquires),
			LockContended:    f.Get(counters.LockContended),
			MonitorBlocks:    f.Get(counters.MonitorBlocks),
			FenceUops:        f.Get(counters.FenceUops),
			FenceStallCycles: f.Get(counters.FenceStallCycles),
			CASOps:           f.Get(counters.CASOps),
			CASFailures:      f.Get(counters.CASFailures),
			CtxSwitches:      f.Get(counters.ContextSwitches),
		})
		if err := f.CheckConservation(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	compareGolden(t, "sync_counters.json", snaps)
}

// deadlockBench wraps an intentionally deadlocking program (main locks
// A then B, a worker locks B then A, with a volatile handshake forcing
// the interleaving) as a benchmark, so the campaign layer can run it.
func deadlockBench() *bench.Benchmark {
	return &bench.Benchmark{
		Name:          "deadlock-probe",
		Description:   "intentional lock-order inversion",
		Multithreaded: true,
		Build: func(threads int, scale bench.Scale, base uint64) *bytecode.Program {
			pb := bytecode.NewProgram("deadlock-probe")
			cls := pb.Class("O", 1, 0)
			pb.Globals(3, 0b11) // 0=objA(ref), 1=objB(ref), 2=flag

			w := bytecode.NewMethod("w", 0, 0)
			w.Op(bytecode.GetVolatile, 1).Op(bytecode.MonEnter)
			w.Const(1).Op(bytecode.PutVolatile, 2)
			w.Op(bytecode.GetVolatile, 0).Op(bytecode.MonEnter)
			w.Op(bytecode.GetVolatile, 0).Op(bytecode.MonExit)
			w.Op(bytecode.GetVolatile, 1).Op(bytecode.MonExit)
			w.Op(bytecode.Ret)
			wi := pb.Add(w.Finish())

			m := bytecode.NewMethod("main", 0, 1)
			m.Op(bytecode.New, cls).Op(bytecode.PutVolatile, 0)
			m.Op(bytecode.New, cls).Op(bytecode.PutVolatile, 1)
			m.Op(bytecode.GetVolatile, 0).Op(bytecode.MonEnter)
			m.Op(bytecode.ThreadStart, wi).Store(0)
			spin := m.NewLabel()
			m.Bind(spin)
			m.Op(bytecode.GetVolatile, 2).Const(1)
			m.Br(bytecode.IfNe, spin)
			m.Op(bytecode.GetVolatile, 1).Op(bytecode.MonEnter)
			m.Op(bytecode.GetVolatile, 1).Op(bytecode.MonExit)
			m.Op(bytecode.GetVolatile, 0).Op(bytecode.MonExit)
			m.Op(bytecode.Ret)
			pb.Entry(pb.Add(m.Finish()))
			return pb.MustLink(base)
		},
		Verify: func(vm *jvm.VM, threads int, scale bench.Scale) error { return nil },
	}
}

// BenchmarkSyncStress measures the synchronization-heavy simulation
// rate (MB/s at 1 byte per µop, comparable to BenchmarkSimSpeed): four
// threads contending on the HT machine, so the monitor table, fence
// drains and CAS retries all sit on the measured path.
func BenchmarkSyncStress(b *testing.B) {
	opts := DefaultOptions()
	opts.HT = true
	opts.Threads = 4
	for _, bm := range bench.Sync() {
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(bm, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(res.Counters.Get(counters.Instructions)))
			}
		})
	}
}

// TestDeadlockBecomesCellError: a waits-for cycle in the monitor table
// is detected at block time and surfaces through the campaign layer as
// a structured panic-kind CellError naming the deadlock — not a cell
// hung until its cycle budget expires.
func TestDeadlockBecomesCellError(t *testing.T) {
	opts := DefaultOptions()
	opts.HT = true
	cfg := DefaultConfig()
	cfg.Policy.Retries = 0
	res, fail, err := RunResilient(deadlockBench(), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || fail == nil {
		t.Fatalf("res=%v fail=%v, want a CellError", res, fail)
	}
	if fail.Kind != resilience.KindPanic {
		t.Fatalf("CellError kind = %v, want %v (detection, not budget expiry)", fail.Kind, resilience.KindPanic)
	}
	if !strings.Contains(fail.Reason(), "deadlock") {
		t.Fatalf("CellError reason %q does not name the deadlock", fail.Reason())
	}
}

//go:build checks

package harness

import (
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/check"
	"javasmt/internal/sampling"
)

// TestSyncStressConservationChecks is the sync-stress half of the
// -tags checks metamorphic tier (ISSUE 10): the four synchronization
// benchmarks — monitor blocking, store-buffer drains, fence µops and
// spin-then-block CAS all active — must hold every armed invariant
// probe and the counter conservation laws, in full and sampled modes.
// The compute benchmarks never blocked mid-store-buffer or charged a
// fence stall, so this is the first time the probes see those paths.
func TestSyncStressConservationChecks(t *testing.T) {
	if !check.On {
		if err := check.SetOn(true); err != nil {
			t.Fatal(err)
		}
		defer check.SetOn(false)
	}
	for _, sampled := range []bool{false, true} {
		name := "full"
		if sampled {
			name = "sampled"
		}
		t.Run(name, func(t *testing.T) {
			for _, b := range bench.Sync() {
				check.ResetProbes()
				opts := DefaultOptions()
				opts.HT = true
				opts.Threads = 4
				if sampled {
					opts.Plan = sampling.DefaultSampledPlan()
				}
				res, err := Run(b, opts)
				if err != nil {
					t.Fatalf("%s: %v", b.Name, err)
				}
				if got := check.Probes(); got == 0 {
					t.Fatalf("%s: no probe evaluations; probes are not firing", b.Name)
				}
				if err := res.Counters.CheckConservation(); err != nil {
					t.Errorf("%s: conservation: %v", b.Name, err)
				}
			}
		})
	}
}

// Experiment drivers: one entry point per table/figure of the paper.
// cmd/report and the top-level benchmark harness both build on these.

package harness

import (
	"fmt"
	"sort"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/sched"
	"javasmt/internal/stats"
)

// CharRun is one characterization run of a multithreaded benchmark.
type CharRun struct {
	Benchmark string
	Threads   int
	HT        bool
	Result    *Result
}

// Characterization holds the run matrix behind Table 2 and Figures 1-7:
// every multithreaded benchmark at 2 and 8 threads, HT off and on.
// Cells the campaign gave up on are absent from Runs and listed in
// Failed; the renderers print them as FAILED(reason) rows.
type Characterization struct {
	Scale  bench.Scale
	Runs   []CharRun
	Failed []Failure
}

// RunCharacterization executes the §4.1 run matrix, fanning the
// independent cells across up to cfg.Jobs workers. Cell order in the
// result is fixed regardless of parallelism.
func RunCharacterization(cfg Config) (*Characterization, error) {
	outs, err := mapCells(cfg, characterizationCells())
	if err != nil {
		return nil, err
	}
	c := &Characterization{Scale: cfg.Scale}
	for _, o := range outs {
		if o.fail != nil {
			c.Failed = append(c.Failed, failureOf(o.fail))
			continue
		}
		c.Runs = append(c.Runs, o.v)
	}
	return c, nil
}

// find returns the run for (name, threads, ht), or nil if that cell
// failed (its reason is then available via reason).
func (c *Characterization) find(name string, threads int, ht bool) *Result {
	for _, r := range c.Runs {
		if r.Benchmark == name && r.Threads == threads && r.HT == ht {
			return r.Result
		}
	}
	return nil
}

// reason returns the failure reason recorded for cell (name, threads, ht).
func (c *Characterization) reason(name string, threads int, ht bool) string {
	cell := fmt.Sprintf("%s t=%d ht=%v", name, threads, ht)
	for _, f := range c.Failed {
		if f.Cell == cell {
			return f.Reason
		}
	}
	return "cell missing"
}

// Table1 renders the paper's benchmark-description table.
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Java benchmarks\n")
	fmt.Fprintf(&sb, "%-11s %-72s %s\n", "Benchmark", "Description", "Input")
	for _, b := range bench.All() {
		kind := "single-threaded"
		if b.Multithreaded {
			kind = "multithreaded"
		}
		fmt.Fprintf(&sb, "%-11s %-72s %s (%s)\n", b.Name, b.Description, b.Input, kind)
	}
	return sb.String()
}

// Table2 renders CPI / OS-cycle% / DT-mode% for the HT-on runs.
func (c *Characterization) Table2() string {
	var sb strings.Builder
	sb.WriteString("Table 2. Characterization of multithreaded benchmarks on Hyper-Threading processor\n")
	fmt.Fprintf(&sb, "%-12s %-8s %8s %10s %12s\n", "Benchmark", "Threads", "CPI", "OS cyc %", "CPU DT %")
	for _, b := range bench.Multithreaded() {
		for _, threads := range []int{2, 8} {
			r := c.find(b.Name, threads, true)
			if r == nil {
				fmt.Fprintf(&sb, "%-12s %-8d FAILED(%s)\n", b.Name, threads, c.reason(b.Name, threads, true))
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-8d %8.2f %10.2f %12.2f\n",
				b.Name, threads, r.Counters.CPI(), r.Counters.OSCyclePercent(), r.Counters.DTModePercent())
		}
	}
	return sb.String()
}

// Fig1 renders IPC with HT disabled/enabled (2 threads).
func (c *Characterization) Fig1() string {
	var sb strings.Builder
	sb.WriteString("Figure 1. IPCs of multithreaded benchmarks on Pentium 4 processors\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %9s\n", "Benchmark", "HT off", "HT on", "gain")
	for _, b := range bench.Multithreaded() {
		roff, ron := c.find(b.Name, 2, false), c.find(b.Name, 2, true)
		if roff == nil || ron == nil {
			fmt.Fprintf(&sb, "%-12s FAILED(%s)\n", b.Name, c.firstReason(b.Name, 2))
			continue
		}
		off, on := roff.Counters.IPC(), ron.Counters.IPC()
		fmt.Fprintf(&sb, "%-12s %10.3f %10.3f %8.1f%%\n", b.Name, off, on, 100*(on/off-1))
	}
	return sb.String()
}

// firstReason returns the failure reason of the first failed HT mode of
// (name, threads) — for figures whose rows need both modes.
func (c *Characterization) firstReason(name string, threads int) string {
	if c.find(name, threads, false) == nil {
		return c.reason(name, threads, false)
	}
	return c.reason(name, threads, true)
}

// Fig2 renders the retirement profile (share of cycles retiring 0-3 µops).
func (c *Characterization) Fig2() string {
	var sb strings.Builder
	sb.WriteString("Figure 2. Instruction retirement profile (fraction of cycles retiring 0/1/2/3 µops)\n")
	fmt.Fprintf(&sb, "%-12s %-6s %7s %7s %7s %7s\n", "Benchmark", "HT", "0", "1", "2", "3")
	var avg [2][4]float64
	var n [2]int
	for _, b := range bench.Multithreaded() {
		for hi, ht := range []bool{false, true} {
			mode := "off"
			if ht {
				mode = "on"
			}
			r := c.find(b.Name, 2, ht)
			if r == nil {
				fmt.Fprintf(&sb, "%-12s %-6s FAILED(%s)\n", b.Name, mode, c.reason(b.Name, 2, ht))
				continue
			}
			p := r.Counters.RetirementProfile()
			fmt.Fprintf(&sb, "%-12s %-6s %7.3f %7.3f %7.3f %7.3f\n", b.Name, mode, p[0], p[1], p[2], p[3])
			for i := range p {
				avg[hi][i] += p[i]
			}
			n[hi]++
		}
	}
	for hi, mode := range []string{"off", "on"} {
		if n[hi] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-12s %-6s %7.3f %7.3f %7.3f %7.3f\n", "average", mode,
			avg[hi][0]/float64(n[hi]), avg[hi][1]/float64(n[hi]), avg[hi][2]/float64(n[hi]), avg[hi][3]/float64(n[hi]))
	}
	return sb.String()
}

// ratioFigure renders one misses-per-1000-instructions figure.
func (c *Characterization) ratioFigure(title string, metric func(*counters.File) float64) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-14s %10s %10s\n", "Benchmark", "HT off", "HT on")
	for _, b := range bench.Multithreaded() {
		for _, threads := range []int{2, 8} {
			roff, ron := c.find(b.Name, threads, false), c.find(b.Name, threads, true)
			if roff == nil || ron == nil {
				fmt.Fprintf(&sb, "%-14s FAILED(%s)\n", fmt.Sprintf("%s%02d", b.Name, threads), c.firstReason(b.Name, threads))
				continue
			}
			fmt.Fprintf(&sb, "%-14s %10.3f %10.3f\n", fmt.Sprintf("%s%02d", b.Name, threads),
				metric(&roff.Counters), metric(&ron.Counters))
		}
	}
	return sb.String()
}

// Fig3 is trace-cache misses per 1000 µops.
func (c *Characterization) Fig3() string {
	return c.ratioFigure("Figure 3. Trace cache misses per 1,000 instructions",
		func(f *counters.File) float64 { return f.PerKiloInstr(counters.TCMisses) })
}

// Fig4 is L1 data-cache misses per 1000 µops.
func (c *Characterization) Fig4() string {
	return c.ratioFigure("Figure 4. L1 data cache misses per 1,000 instructions",
		func(f *counters.File) float64 { return f.PerKiloInstr(counters.L1DMisses) })
}

// Fig5 is L2 misses per 1000 µops.
func (c *Characterization) Fig5() string {
	return c.ratioFigure("Figure 5. L2 cache misses per 1,000 instructions",
		func(f *counters.File) float64 { return f.PerKiloInstr(counters.L2Misses) })
}

// Fig6 is ITLB misses per 1000 µops.
func (c *Characterization) Fig6() string {
	return c.ratioFigure("Figure 6. Instruction TLB misses per 1,000 instructions",
		func(f *counters.File) float64 { return f.PerKiloInstr(counters.ITLBMisses) })
}

// Fig7 is the BTB miss ratio.
func (c *Characterization) Fig7() string {
	return c.ratioFigure("Figure 7. BTB miss ratios",
		func(f *counters.File) float64 { return f.Rate(counters.BTBMisses, counters.Branches) })
}

// Pairings is the 9x9 multiprogramming cross product behind Figures 8, 9
// and 11. Cells the campaign gave up on leave nil in Results (and 0 in
// Combined) and are listed in Failed; renderers skip them in statistics
// and append a FAILED-cells trailer.
type Pairings struct {
	Names []string
	// Combined[i][j] is C_AB for row benchmark i paired with column j.
	Combined [][]float64
	Results  [][]*PairResult
	Failed   []Failure
}

// RunPairings executes the cross product of the nine single-threaded
// programs (§4.2). Pairs are measured in both (A,B) and (B,A) roles —
// the full 81-cell map, like the paper's Figure 9. cfg.Jobs pairings
// run concurrently (each on its own machine); the result matrix is
// byte-identical at every job count.
func RunPairings(cfg Config) (*Pairings, error) {
	return RunPairingsOf(bench.SingleThreaded(), cfg)
}

// RunPairingsOf is RunPairings over an explicit program list — tests and
// cmd/pairings -benches use reduced lists for fast smoke campaigns.
func RunPairingsOf(progs []*bench.Benchmark, cfg Config) (*Pairings, error) {
	p := &Pairings{}
	for _, b := range progs {
		p.Names = append(p.Names, b.Name)
	}
	n := len(progs)
	p.Combined = make([][]float64, n)
	p.Results = make([][]*PairResult, n)
	for i := range p.Combined {
		p.Combined[i] = make([]float64, n)
		p.Results[i] = make([]*PairResult, n)
	}
	grid := pairGrid(progs)
	cells := make([]typedCell[*PairResult], len(grid))
	for idx, ij := range grid {
		cells[idx] = pairCell(progs[ij[0]], progs[ij[1]])
	}
	report := sched.Progress(cfg.Progress)
	label := func(idx int) string { return cells[idx].label }
	results, err := sched.MapObserved(len(grid), cfg.Jobs, cfg.Obs, label, func(idx int) (outcome[*PairResult], error) {
		a, b := progs[grid[idx][0]], progs[grid[idx][1]]
		report(fmt.Sprintf("pair %s + %s: start", a.Name, b.Name))
		out, err := runTyped(cfg, cells[idx])
		if err != nil {
			return out, err
		}
		if out.fail != nil {
			report(fmt.Sprintf("pair %s + %s: FAILED(%s)", a.Name, b.Name, out.fail.Reason()))
		} else {
			report(fmt.Sprintf("pair %s + %s: done C_AB=%.3f", a.Name, b.Name, out.v.CombinedSpeedup()))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for idx, o := range results {
		i, j := grid[idx][0], grid[idx][1]
		if o.fail != nil {
			p.Failed = append(p.Failed, failureOf(o.fail))
			continue
		}
		res := o.v
		p.Results[i][j] = res
		p.Combined[i][j] = res.CombinedSpeedup()
		if i != j {
			// The (j,i) cell is the same co-schedule observed from
			// the other program's seat; the simulator is
			// deterministic, so the mirrored cell is measured
			// from the same run (the paper's near-perfect
			// reflective symmetry, which it attributes to fair
			// OS scheduling).
			p.Results[j][i] = res
			p.Combined[j][i] = res.CombinedSpeedup()
		}
	}
	return p, nil
}

// ok reports whether cell (i, j) completed. A Pairings built without a
// Results matrix (literal fixtures) treats every cell as complete.
func (p *Pairings) ok(i, j int) bool {
	return len(p.Results) <= i || len(p.Results[i]) <= j || p.Results[i][j] != nil
}

// RowSpeedups returns the combined speedups of row benchmark i against
// every partner (the Figure 8 box population). Failed cells are
// excluded rather than contributing zeros.
func (p *Pairings) RowSpeedups(i int) []float64 {
	var out []float64
	for j := range p.Combined[i] {
		if p.ok(i, j) {
			out = append(out, p.Combined[i][j])
		}
	}
	return out
}

// Fig8 renders the box chart of combined-speedup distributions.
func (p *Pairings) Fig8() string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Distribution of combined speedup for multiprogrammed Java benchmarks\n")
	var names []string
	var boxes []stats.Box
	lo, hi := 2.0, 0.0
	for i, n := range p.Names {
		pop := p.RowSpeedups(i)
		if len(pop) == 0 {
			continue // every cell of the row failed; the trailer reports them
		}
		bx := stats.Summarize(pop)
		names = append(names, n)
		boxes = append(boxes, bx)
		if bx.Min < lo {
			lo = bx.Min
		}
		if bx.Max > hi {
			hi = bx.Max
		}
	}
	if len(names) > 0 {
		sb.WriteString(stats.RenderBoxes(names, boxes, lo-0.05, hi+0.05, 64))
		sb.WriteString("('=' box: 25th-75th percentile, '|' median, '*' mean, '-' whiskers to min/max)\n")
		for i, n := range names {
			fmt.Fprintf(&sb, "  %-11s %s\n", n, boxes[i])
		}
	}
	sb.WriteString(renderFailures(p.Failed))
	return sb.String()
}

// Fig9 renders the combined-speedup color map and flags slowdown cells.
func (p *Pairings) Fig9() string {
	var sb strings.Builder
	sb.WriteString("Figure 9. Combined speedup color map\n")
	lo, hi := 2.0, 0.0
	for i, row := range p.Combined {
		for j, v := range row {
			if !p.ok(i, j) {
				continue // failed cells render as the low end; scale from real data
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	sb.WriteString(stats.RenderColorMap(p.Names, p.Combined, lo, hi, 1.0))
	// Slowdown audit, as the paper calls out (nine combinations of
	// jack/javac/jess on its machine). Failed cells are not slowdowns.
	var bad []string
	for i := range p.Combined {
		for j := range p.Combined[i] {
			if j < i || !p.ok(i, j) {
				continue
			}
			if p.Combined[i][j] < 1.0 {
				bad = append(bad, fmt.Sprintf("%s+%s=%.3f", p.Names[i], p.Names[j], p.Combined[i][j]))
			}
		}
	}
	sort.Strings(bad)
	fmt.Fprintf(&sb, "slowdown pairs (C_AB < 1): %d\n", len(bad))
	for _, s := range bad {
		fmt.Fprintf(&sb, "  %s\n", s)
	}
	sb.WriteString(renderFailures(p.Failed))
	return sb.String()
}

// Fig11 renders self-pairing speedups (two identical copies under HT).
func (p *Pairings) Fig11() string {
	var sb strings.Builder
	sb.WriteString("Figure 11. Impact of Hyper-Threading on multiprogrammed (self-paired) programs\n")
	fmt.Fprintf(&sb, "%-12s %16s\n", "Benchmark", "combined speedup")
	for i, n := range p.Names {
		if !p.ok(i, i) {
			fmt.Fprintf(&sb, "%-12s FAILED(%s)\n", n, p.reason(n, n))
			continue
		}
		fmt.Fprintf(&sb, "%-12s %16.3f\n", n, p.Combined[i][i])
	}
	sb.WriteString(renderFailures(p.Failed))
	return sb.String()
}

// reason returns the failure reason recorded for the (a, b) pairing cell.
func (p *Pairings) reason(a, b string) string {
	cell := "pair " + a + "+" + b
	for _, f := range p.Failed {
		if f.Cell == cell {
			return f.Reason
		}
	}
	return "cell missing"
}

// Fig10Row is one single-threaded HT-tax measurement. Failed is the
// failure reason when the campaign gave up on this benchmark's cell
// (the cycle fields are then zero).
type Fig10Row struct {
	Benchmark string
	CyclesOff uint64
	CyclesOn  uint64
	// CyclesDyn is the dynamic-partition ablation (DESIGN.md §9).
	CyclesDyn uint64
	Failed    string `json:",omitempty"`
}

// SlowdownPct returns the execution-time increase from merely enabling HT.
func (r Fig10Row) SlowdownPct() float64 {
	return 100 * (float64(r.CyclesOn)/float64(r.CyclesOff) - 1)
}

// DynSlowdownPct returns the same under dynamic partitioning.
func (r Fig10Row) DynSlowdownPct() float64 {
	return 100 * (float64(r.CyclesDyn)/float64(r.CyclesOff) - 1)
}

// RunFig10 measures the static-partition tax on each single-threaded
// program (paper §4.3), plus the dynamic-partition ablation, fanning
// the per-benchmark measurements across up to cfg.Jobs workers.
func RunFig10(cfg Config) ([]Fig10Row, error) {
	cells := fig10Cells()
	outs, err := mapCells(cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig10Row, len(outs))
	for i, o := range outs {
		if o.fail != nil {
			rows[i] = cells[i].failed(o.fail.Reason())
			continue
		}
		rows[i] = o.v
	}
	return rows, nil
}

// RenderFig10 formats the Figure 10 rows.
func RenderFig10(rows []Fig10Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 10. Impact of Hyper-Threading technology on single-threaded Java programs\n")
	fmt.Fprintf(&sb, "%-12s %12s %12s %11s %14s\n", "Benchmark", "HT-off cyc", "HT-on cyc", "slowdown", "dyn-partition")
	slower, measured := 0, 0
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(&sb, "%-12s FAILED(%s)\n", r.Benchmark, r.Failed)
			continue
		}
		measured++
		if r.CyclesOn > r.CyclesOff {
			slower++
		}
		fmt.Fprintf(&sb, "%-12s %12d %12d %10.2f%% %13.2f%%\n",
			r.Benchmark, r.CyclesOff, r.CyclesOn, r.SlowdownPct(), r.DynSlowdownPct())
	}
	fmt.Fprintf(&sb, "%d of %d programs slow down when Hyper-Threading is merely enabled\n", slower, measured)
	return sb.String()
}

// Fig12Row is an IPC measurement at one thread count. Failed is the
// failure reason when the campaign gave up on this cell.
type Fig12Row struct {
	Benchmark string
	Threads   int
	IPC       float64
	L1DPerK   float64
	Failed    string `json:",omitempty"`
}

// RunFig12 sweeps thread counts on the HT processor (paper §4.4),
// fanning the sweep grid across up to cfg.Jobs workers.
func RunFig12(cfg Config, threadCounts []int) ([]Fig12Row, error) {
	cells := fig12Cells(threadCounts)
	outs, err := mapCells(cfg, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig12Row, len(outs))
	for i, o := range outs {
		if o.fail != nil {
			rows[i] = cells[i].failed(o.fail.Reason())
			continue
		}
		rows[i] = o.v
	}
	return rows, nil
}

// RenderFig12 formats the thread sweep.
func RenderFig12(rows []Fig12Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 12. IPC vs. the number of threads (HT on)\n")
	fmt.Fprintf(&sb, "%-12s %8s %8s %10s\n", "Benchmark", "threads", "IPC", "L1D/1k")
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(&sb, "%-12s %8d FAILED(%s)\n", r.Benchmark, r.Threads, r.Failed)
			continue
		}
		fmt.Fprintf(&sb, "%-12s %8d %8.3f %10.2f\n", r.Benchmark, r.Threads, r.IPC, r.L1DPerK)
	}
	return sb.String()
}

// SweepCell is one cell of a counter sweep (cmd/sweep): a benchmark at
// one thread count with its full counter file. Failed carries the
// failure reason when the campaign gave up on the cell.
type SweepCell struct {
	Benchmark string
	Threads   int
	Counters  counters.File
	Failed    string `json:",omitempty"`
}

// RunSweep runs each target benchmark at each thread count on the HT
// processor and collects full counter files, under cfg's campaign
// policy (deadline, budget, retries, journal, fault injection).
func RunSweep(cfg Config, targets []*bench.Benchmark, threadCounts []int) ([]SweepCell, error) {
	grid := sweepCells(targets, threadCounts)
	outs, err := mapCells(cfg, grid)
	if err != nil {
		return nil, err
	}
	cells := make([]SweepCell, len(outs))
	for i, o := range outs {
		if o.fail != nil {
			cells[i] = grid[i].failed(o.fail.Reason())
			continue
		}
		cells[i] = o.v
	}
	return cells, nil
}

// GeometryCell is one cell of a machine-geometry sweep (cmd/sweep
// -geos): a benchmark run on one Cores×ContextsPerCore machine shape
// with its full counter file. Threads is how many software threads the
// run seated (the machine's total context count for multithreaded
// benchmarks, 1 for single-threaded ones). Failed carries the failure
// reason when the campaign gave up on the cell.
type GeometryCell struct {
	Benchmark string
	Geometry  core.Geometry
	Threads   int
	Counters  counters.File
	Failed    string `json:",omitempty"`
}

// RunGeometrySweep runs each target benchmark on each machine geometry —
// the headline comparison ISSUE 7 asks for: the paper's HT processor
// ({1,2}) against wider SMT ({1,4}), CMP ({2,1}, {2,2}) and beyond —
// under cfg's campaign policy. Multithreaded benchmarks get one software
// thread per hardware context so every seat is filled; single-threaded
// ones run solo on context 0, measuring the partitioning tax of each
// shape.
func RunGeometrySweep(cfg Config, targets []*bench.Benchmark, geos []core.Geometry) ([]GeometryCell, error) {
	grid := geometryCells(targets, geos)
	outs, err := mapCells(cfg, grid)
	if err != nil {
		return nil, err
	}
	cells := make([]GeometryCell, len(outs))
	for i, o := range outs {
		if o.fail != nil {
			cells[i] = grid[i].failed(o.fail.Reason())
			continue
		}
		cells[i] = o.v
	}
	return cells, nil
}

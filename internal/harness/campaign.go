// Campaign layer: every experiment cell of every driver runs through
// runCell, which composes the resilience pieces around the simulation —
// panic recovery, the wall-clock watchdog, cycle budgets, retries
// (resilience.CellPolicy), checkpoint/resume (resilience.Journal),
// always-on counter-conservation validation of completed results, and
// the deterministic fault hooks (faultinject, `faults` builds only).
//
// A failed cell becomes a Failure carried in the driver's result instead
// of aborting the campaign; only journal I/O errors (the campaign's
// memory is broken) and scheduler-level errors still abort.

package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
	"javasmt/internal/faultinject"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
)

// Failure is one experiment cell the campaign gave up on. Drivers carry
// failures in their results; renderers print them as FAILED(reason)
// entries so a degraded report is complete and self-describing.
type Failure struct {
	// Cell is the cell label ("pair jack+jess", "compress t=2 ht=true").
	Cell string
	// Kind is the resilience failure kind ("panic", "timeout", ...).
	Kind string
	// Reason is the compact one-line reason.
	Reason string
}

func failureOf(ce *resilience.CellError) Failure {
	return Failure{Cell: ce.Cell, Kind: string(ce.Kind), Reason: ce.Reason()}
}

// renderFailures formats the FAILED-cells trailer appended to figures
// when a campaign degraded; empty (no trailer at all) on clean runs, so
// failure-free output is byte-identical to pre-resilience reports.
func renderFailures(fails []Failure) string {
	if len(fails) == 0 {
		return ""
	}
	sorted := append([]Failure(nil), fails...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cell < sorted[j].Cell })
	var sb strings.Builder
	fmt.Fprintf(&sb, "FAILED cells (%d):\n", len(sorted))
	for _, f := range sorted {
		fmt.Fprintf(&sb, "  %s: %s\n", f.Cell, f.Reason)
	}
	return sb.String()
}

// outcome is one cell's result: exactly one of v (completed) or fail is
// meaningful. payload carries the completed cell's journal-payload
// bytes (the cellRecord JSON), so the service layer can ledger, cache
// and stream results without re-marshaling — and therefore without any
// chance of drifting from what a single-process campaign journals.
type outcome[T any] struct {
	v       T
	payload json.RawMessage
	fail    *resilience.CellError
}

// cellRecord is the journal payload of a completed cell: its typed
// result plus any metrics series it recorded, so a resumed campaign
// reproduces the metrics export byte-for-byte without re-simulating.
type cellRecord[T any] struct {
	V      T                `json:"v"`
	Series []*obs.RunSeries `json:"series,omitempty"`
}

// describe renders the campaign configuration a CellError reports, so a
// failure is reproducible from its message alone.
func (c Config) describe() string {
	s := fmt.Sprintf("scale=%v runs=%d", c.Scale, c.Runs)
	if faultinject.Enabled && c.Inject != nil {
		s += " inject=" + c.Inject.String()
	}
	return s
}

// cellMaxCycles is the per-cell simulated-cycle bound: the pairing
// protocol's MaxCycles tightened by the policy's CycleBudget.
func (c Config) cellMaxCycles() uint64 {
	m := c.MaxCycles
	if b := c.Policy.CycleBudget; b > 0 && (m == 0 || b < m) {
		m = b
	}
	return m
}

// runCell executes one experiment cell under the campaign's resilience
// policy. The journal is consulted first: a completed cell is decoded
// from its payload (its metrics series re-registered with the sink) and
// never re-simulated; a failed one is re-run. The returned error is a
// campaign-level fault (journal I/O, undecodable payload) that aborts
// the whole run; cell failures come back inside the outcome.
func runCell[T any](cfg Config, cell string, fn func(w *resilience.Watch) (T, error)) (outcome[T], error) {
	var out outcome[T]
	if e, ok := cfg.Journal.Lookup(cell); ok && e.Status == resilience.StatusOK {
		var rec cellRecord[T]
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			return out, fmt.Errorf("harness: journal payload for cell %q: %w", cell, err)
		}
		cfg.Obs.AddSeries(rec.Series...)
		out.v = rec.V
		out.payload = e.Payload
		return out, nil
	}

	var val T
	ce := cfg.Policy.Run(cell, cfg.describe(), func(w *resilience.Watch) error {
		// A previous attempt may have left a partial metrics series
		// (sampling stops wherever the watchdog struck); discard it so
		// only the surviving attempt's series is exported.
		cfg.Obs.DropSeriesByPrefix(cell)
		return runGuarded(cfg, cell, w, fn, &val)
	})
	if ce != nil {
		cfg.Obs.DropSeriesByPrefix(cell)
		cfg.Obs.Failure(cell, string(ce.Kind), ce.Reason())
		if err := cfg.Journal.Record(cell, resilience.StatusFailed, ce.Reason(), nil); err != nil {
			return out, err
		}
		out.fail = ce
		return out, nil
	}

	rec := cellRecord[T]{V: val}
	if cfg.Obs.MetricsEnabled() {
		rec.Series = cfg.Obs.SeriesByPrefix(cell)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return out, fmt.Errorf("harness: journal payload for cell %q: %w", cell, err)
	}
	if err := cfg.Journal.Record(cell, resilience.StatusOK, "", payload); err != nil {
		return out, err
	}
	out.v = val
	out.payload = payload
	return out, nil
}

// runGuarded is one attempt of a cell: fault hooks, the simulation, and
// the always-on conservation validation of its counters.
func runGuarded[T any](cfg Config, cell string, w *resilience.Watch, fn func(w *resilience.Watch) (T, error), val *T) error {
	fault := faultinject.None
	if faultinject.Enabled && cfg.Inject != nil {
		fault = cfg.Inject.Decide(cell)
		switch fault {
		case faultinject.Panic:
			panic(fmt.Sprintf("faultinject: injected panic in cell %s", cell))
		case faultinject.Stall:
			cfg.Inject.StallUntil(w.Canceled)
			return errors.New("faultinject: injected stall canceled by the watchdog")
		case faultinject.Slow:
			time.Sleep(cfg.Inject.SlowDelay)
		case faultinject.Transient:
			if attempt := cfg.Inject.Attempt(cell); attempt <= cfg.Inject.FailFor {
				return resilience.MarkTransient(
					fmt.Errorf("faultinject: injected transient fault in cell %s (attempt %d)", cell, attempt))
			}
		}
	}

	v, err := fn(w)
	if err != nil {
		return err
	}
	if faultinject.Enabled && fault == faultinject.Corrupt {
		for _, f := range counterFiles(&v) {
			// Phantom retirements: breaks the exact law
			// "cycles == cycles_halted + retire histogram".
			f.Add(counters.Retire1, 1_000_000)
		}
	}
	// Completed cells are validated unconditionally — corrupted
	// measurements are worse than missing ones. The laws are a handful
	// of integer comparisons, noise next to any simulation.
	for _, f := range counterFiles(&v) {
		if cerr := f.CheckConservation(); cerr != nil {
			return resilience.MarkKind(fmt.Errorf("cell %s result: %w", cell, cerr), resilience.KindCorrupt)
		}
	}
	*val = v
	return nil
}

// counterFiles returns the counter files embedded in a cell result, for
// corruption injection and conservation validation. Result shapes
// without full counter files (derived-metric rows) return nil.
func counterFiles(v any) []*counters.File {
	switch t := v.(type) {
	case **PairResult:
		if *t == nil {
			return nil
		}
		return []*counters.File{&(*t).Counters}
	case **Result:
		if *t == nil {
			return nil
		}
		return []*counters.File{&(*t).Counters}
	case *CharRun:
		if t.Result == nil {
			return nil
		}
		return []*counters.File{&t.Result.Counters}
	case *SweepCell:
		return []*counters.File{&t.Counters}
	case *GeometryCell:
		return []*counters.File{&t.Counters}
	case *PolicyCell:
		return []*counters.File{&t.Counters}
	}
	return nil
}

// RunResilient is Run under cfg's campaign policy: panics, deadline
// expiries and budget exhaustion come back as a *resilience.CellError
// instead of crashing or hanging, and a journaled cell is resumed
// rather than re-simulated. The error return is campaign-level (journal
// I/O) only.
func RunResilient(b *bench.Benchmark, opts Options, cfg Config) (*Result, *resilience.CellError, error) {
	cell := opts.ObsLabel
	if cell == "" {
		cell = b.Name
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = cfg.Policy.CycleBudget
	}
	out, err := runCell(cfg, cell, func(w *resilience.Watch) (*Result, error) {
		o := opts
		o.Cancel = w.Flag()
		return Run(b, o)
	})
	return out.v, out.fail, err
}

// RunPairCell is RunPair under cfg's campaign policy; see RunResilient.
func RunPairCell(a, b *bench.Benchmark, cfg Config) (*PairResult, *resilience.CellError, error) {
	cell := "pair " + a.Name + "+" + b.Name
	po := cfg.pairOptions()
	out, err := runCell(cfg, cell, func(w *resilience.Watch) (*PairResult, error) {
		o := po
		o.Cancel = w.Flag()
		return RunPair(a, b, o)
	})
	return out.v, out.fail, err
}

package harness

import (
	"bytes"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
	"javasmt/internal/obs"
)

// TestObsFinalSampleMatchesRunCounters is the layer's acceptance check:
// a tiny compress run observed with metrics on must end its time-series
// with exactly the run's end-of-run counter state.
func TestObsFinalSampleMatchesRunCounters(t *testing.T) {
	b := mustBench(t, "compress")
	sink := obs.New(obs.Config{Metrics: true, Stride: 50_000})
	res, err := Run(b, Options{Threads: 1, Scale: bench.Tiny, Verify: true, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	series := sink.Series("compress")
	if series == nil || len(series.Samples) == 0 {
		t.Fatal("observed run recorded no samples")
	}
	final := series.Final()
	if final.Cycle != res.Cycles {
		t.Errorf("final sample at cycle %d, run ended at %d", final.Cycle, res.Cycles)
	}
	f := &res.Counters
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"cycles", final.Cum.Cycles, f.Get(counters.Cycles)},
		{"uops", final.Cum.Uops, f.Get(counters.Instructions)},
		{"tc_misses", final.Cum.TCMisses, f.Get(counters.TCMisses)},
		{"l1d_misses", final.Cum.L1DMisses, f.Get(counters.L1DMisses)},
		{"l2_misses", final.Cum.L2Misses, f.Get(counters.L2Misses)},
		{"itlb_misses", final.Cum.ITLBMisses, f.Get(counters.ITLBMisses)},
		{"branches", final.Cum.Branches, f.Get(counters.Branches)},
		{"btb_misses", final.Cum.BTBMisses, f.Get(counters.BTBMisses)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("final sample %s = %d, run counters say %d", c.name, c.got, c.want)
		}
	}
	// Mid-run samples must exist and be strictly ordered.
	for i := 1; i < len(series.Samples); i++ {
		if series.Samples[i].Cycle <= series.Samples[i-1].Cycle {
			t.Fatalf("sample cycles not strictly increasing at %d", i)
		}
	}
}

// metricsBytes runs a reduced pairing cross product under the given job
// count with metrics on and returns the exported document.
func metricsBytes(t *testing.T, progs []*bench.Benchmark, jobs int) []byte {
	t.Helper()
	sink := obs.New(obs.Config{Metrics: true, Stride: 100_000})
	cfg := DefaultConfig()
	cfg.Runs = 2
	cfg.Jobs = jobs
	cfg.Obs = sink
	if _, err := RunPairingsOf(progs, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsMetricsDeterministicAcrossJobs extends the engine's determinism
// guarantee to the observability layer: the exported metrics document for
// the same cells must be byte-identical at -j 1 and -j 8.
func TestObsMetricsDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	var progs []*bench.Benchmark
	for _, name := range []string{"compress", "mpegaudio"} {
		progs = append(progs, mustBench(t, name))
	}
	serial := metricsBytes(t, progs, 1)
	parallel := metricsBytes(t, progs, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("metrics export diverges between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// obsSnapshot is the golden record of one observed run's series shape.
type obsSnapshot struct {
	Label     string
	Samples   int
	FinalOnly obs.Sample
}

// TestGoldenObsSeries pins the sampled time-series of a solo compress
// run: sample count and the exact final sample. Any change to sampling
// cadence, metric math or the counter plumbing shows up here.
func TestGoldenObsSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	b := mustBench(t, "compress")
	sink := obs.New(obs.Config{Metrics: true, Stride: 200_000})
	if _, err := Run(b, Options{Threads: 1, Scale: bench.Tiny, Verify: true, Obs: sink}); err != nil {
		t.Fatal(err)
	}
	series := sink.Series("compress")
	compareGolden(t, "obs_series.json", obsSnapshot{
		Label:     series.Label,
		Samples:   len(series.Samples),
		FinalOnly: series.Final(),
	})
}

// TestObsDisabledExperimentsUnchanged pins that threading a nil sink
// through the redesigned experiment API leaves results identical to the
// pre-observability path (the golden figure tables already enforce this
// end to end; this is the direct spot check on Options).
func TestObsDisabledExperimentsUnchanged(t *testing.T) {
	b := mustBench(t, "mpegaudio")
	plain, err := Run(b, Options{Threads: 1, Scale: bench.Tiny, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(b, Options{Threads: 1, Scale: bench.Tiny, Verify: true,
		Obs: obs.New(obs.Config{Metrics: true, Trace: true, Stride: 100_000})})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != observed.Cycles {
		t.Fatalf("observing a run changed its cycle count: %d vs %d", plain.Cycles, observed.Cycles)
	}
	if pr, or := plain.Counters.Report(nil), observed.Counters.Report(nil); pr != or {
		t.Fatalf("observing a run perturbed its counters:\n--- plain ---\n%s\n--- observed ---\n%s", pr, or)
	}
}

//go:build faults

// End-to-end recovery tests: every fault the injector can produce must
// be absorbed by the campaign layer — a completed report with FAILED
// cells, never a crash, a hang, or a silently wrong number. These run
// only under -tags faults (see .github/workflows and scripts/verify.sh).

package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/faultinject"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
)

// injectedCampaign runs a reduced pairing campaign with the given
// -inject spec and policy, expecting the campaign itself to succeed.
func injectedCampaign(t *testing.T, names []string, spec string, policy resilience.CellPolicy) *Pairings {
	t.Helper()
	var progs []*bench.Benchmark
	for _, n := range names {
		progs = append(progs, mustBench(t, n))
	}
	inj, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Runs = 2
	cfg.Jobs = 8
	cfg.Policy = policy
	cfg.Inject = inj
	p, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatalf("campaign crashed instead of degrading: %v", err)
	}
	return p
}

// wantAllFailed asserts every cell of the cross product failed with kind.
func wantAllFailed(t *testing.T, p *Pairings, cells int, kind resilience.Kind) {
	t.Helper()
	if len(p.Failed) != cells {
		t.Fatalf("failed = %d cells %+v, want %d", len(p.Failed), p.Failed, cells)
	}
	for _, f := range p.Failed {
		if f.Kind != string(kind) {
			t.Fatalf("failure kind = %q, want %q: %+v", f.Kind, kind, f)
		}
	}
	if !strings.Contains(p.Fig9(), "FAILED cells") {
		t.Fatal("Fig9 lacks the FAILED trailer")
	}
}

// TestInjectedPanicRecovered: rate-1 panics in every cell must surface
// as structured panic failures in a completed report.
func TestInjectedPanicRecovered(t *testing.T) {
	p := injectedCampaign(t, []string{"compress", "mpegaudio"}, "panic=1", resilience.CellPolicy{})
	wantAllFailed(t, p, 3, resilience.KindPanic)
	for _, f := range p.Failed {
		if !strings.Contains(f.Reason, "injected panic") {
			t.Fatalf("reason %q lost the panic message", f.Reason)
		}
	}
}

// TestInjectedStallKilledByWatchdog: a cell that blocks forever must be
// killed by the wall-clock watchdog and reported as a timeout.
func TestInjectedStallKilledByWatchdog(t *testing.T) {
	policy := resilience.CellPolicy{WallDeadline: 100 * time.Millisecond}
	start := time.Now()
	p := injectedCampaign(t, []string{"compress", "mpegaudio"}, "stall=1", policy)
	wantAllFailed(t, p, 3, resilience.KindTimeout)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stalled campaign took %v; watchdog did not kill promptly", elapsed)
	}
}

// TestInjectedCorruptionCaught: counter corruption after a completed
// simulation must be caught by the conservation check, never exported.
func TestInjectedCorruptionCaught(t *testing.T) {
	p := injectedCampaign(t, []string{"compress"}, "corrupt=1", resilience.CellPolicy{})
	wantAllFailed(t, p, 1, resilience.KindCorrupt)
	if !strings.Contains(p.Failed[0].Reason, "conservation") {
		t.Fatalf("reason %q does not name the conservation law", p.Failed[0].Reason)
	}
}

// TestInjectedSlowCellStillCompletes: a Slow fault delays the cell but
// must not change its result.
func TestInjectedSlowCellStillCompletes(t *testing.T) {
	clean := injectedCampaign(t, []string{"compress"}, "", resilience.CellPolicy{})
	slow := injectedCampaign(t, []string{"compress"}, "slow=1,slowms=20", resilience.CellPolicy{})
	if len(slow.Failed) != 0 {
		t.Fatalf("slow cells failed: %+v", slow.Failed)
	}
	if clean.Fig9() != slow.Fig9() {
		t.Fatal("a slow (but correct) cell changed the report")
	}
}

// TestInjectedTransientAbsorbedByRetry is the acceptance bar for the
// retry path: with retries configured, a campaign where every cell fails
// transiently once must complete with zero failures and produce a
// report and metrics export byte-identical to an uninjected run.
func TestInjectedTransientAbsorbedByRetry(t *testing.T) {
	progs := []*bench.Benchmark{mustBench(t, "compress"), mustBench(t, "mpegaudio")}

	campaign := func(spec string, policy resilience.CellPolicy) (string, []byte) {
		inj, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		sink := obs.New(obs.Config{Metrics: true, Stride: 100_000})
		cfg := DefaultConfig()
		cfg.Runs = 2
		cfg.Jobs = 8
		cfg.Policy = policy
		cfg.Inject = inj
		cfg.Obs = sink
		p, err := RunPairingsOf(progs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Failed) != 0 {
			t.Fatalf("failures despite retries: %+v", p.Failed)
		}
		var buf bytes.Buffer
		if err := sink.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return p.Fig9(), buf.Bytes()
	}

	wantFig, wantMetrics := campaign("", resilience.CellPolicy{})
	gotFig, gotMetrics := campaign("transient=1,failfor=1",
		resilience.CellPolicy{Retries: 2, Backoff: time.Millisecond})
	if gotFig != wantFig {
		t.Fatalf("retried report differs:\n--- want ---\n%s\n--- got ---\n%s", wantFig, gotFig)
	}
	if !bytes.Equal(gotMetrics, wantMetrics) {
		t.Fatal("retried metrics export is not byte-identical to the clean run")
	}
}

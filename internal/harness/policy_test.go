package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/sampling"
)

// marshalT JSON-encodes v, failing the test on error.
func marshalT(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerMixShape pins the deterministic mix construction: thread
// totals add up, PseudoJBB VMs stay within the per-VM cap, and the same
// total always builds the same mix.
func TestServerMixShape(t *testing.T) {
	for _, total := range []int{1, 4, 8, 32, 64, 128, 256} {
		m := ServerMix(total)
		if m.Threads() != total {
			t.Fatalf("ServerMix(%d).Threads() = %d", total, m.Threads())
		}
		for _, p := range m.Parts {
			if _, ok := bench.ByName(p.Benchmark); !ok {
				t.Fatalf("ServerMix(%d) names unknown benchmark %q", total, p.Benchmark)
			}
			if p.Benchmark == "PseudoJBB" && p.Threads > 32 {
				t.Fatalf("ServerMix(%d) has a %d-thread PseudoJBB VM", total, p.Threads)
			}
		}
		if !bytes.Equal(marshalT(t, m), marshalT(t, ServerMix(total))) {
			t.Fatalf("ServerMix(%d) is not deterministic", total)
		}
	}
}

// TestPolicyNaiveEquivalence pins the API redesign's compatibility
// contract: an explicit -policy naive run is byte-identical to the
// default (policy-free) run on every benchmark, in full and sampled
// mode — the nil fast path IS the naive policy.
func TestPolicyNaiveEquivalence(t *testing.T) {
	plans := []struct {
		name string
		plan sampling.Plan
	}{
		{"full", sampling.FullPlan()},
		{"sampled", sampling.DefaultSampledPlan()},
	}
	for _, pl := range plans {
		t.Run(pl.name, func(t *testing.T) {
			for _, b := range bench.All() {
				opts := Options{HT: true, Threads: 2, Scale: bench.Tiny, Verify: true, Plan: pl.plan}
				def, err := Run(b, opts)
				if err != nil {
					t.Fatalf("%s default: %v", b.Name, err)
				}
				opts.SchedPolicy = "naive"
				naive, err := Run(b, opts)
				if err != nil {
					t.Fatalf("%s naive: %v", b.Name, err)
				}
				if !bytes.Equal(marshalT(t, def), marshalT(t, naive)) {
					t.Errorf("%s: -policy naive diverges from the default run", b.Name)
				}
			}
		})
	}
}

// testMix is a small oversubscribed mix for determinism tests: five
// threads on a two-context machine keeps the run queue busy (and the
// policies deciding) without PseudoJBB-scale runtime.
func testMix() Mix {
	return Mix{Name: "det-mix", Parts: []MixPart{
		{Benchmark: "PseudoJBB", Threads: 3},
		{Benchmark: "compress", Threads: 1},
		{Benchmark: "mpegaudio", Threads: 1},
	}}
}

// TestPolicySweepDeterminism pins the engine contract for the new
// experiment: the sweep's cells are byte-identical at any worker count.
func TestPolicySweepDeterminism(t *testing.T) {
	run := func(jobs int) []PolicyCell {
		cfg := DefaultConfig()
		cfg.Jobs = jobs
		cells, err := RunPolicySweep(cfg, []string{"naive", "roundrobin-core", "symbiotic-ipc", "contention-aware"},
			[]Mix{testMix()}, []core.Geometry{{Cores: 1, ContextsPerCore: 2}})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for _, c := range cells {
			if c.Failed != "" {
				t.Fatalf("jobs=%d: cell %s policy=%s failed: %s", jobs, c.Mix, c.Policy, c.Failed)
			}
		}
		return cells
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(marshalT(t, serial), marshalT(t, parallel)) {
		t.Fatal("policy sweep cells differ between -j 1 and -j 8")
	}
}

// TestPolicySweepJournalResume pins checkpoint/resume for the new cell
// type: a resumed sweep decodes every PolicyCell from the journal
// byte-identically instead of re-simulating.
func TestPolicySweepJournalResume(t *testing.T) {
	dir := t.TempDir()
	policies := []string{"naive", "symbiotic-ipc", "contention-aware", "roundrobin-core"}
	mixes := []Mix{testMix()}
	geos := []core.Geometry{{Cores: 1, ContextsPerCore: 2}}

	cfg := DefaultConfig()
	cfg.Journal = openJournal(t, dir, false)
	want, err := RunPolicySweep(cfg, policies, mixes, geos)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Journal.Close(); err != nil {
		t.Fatal(err)
	}

	cfg = DefaultConfig()
	cfg.Journal = openJournal(t, dir, true)
	defer cfg.Journal.Close()
	if got := cfg.Journal.Resumed(); got != len(want) {
		t.Fatalf("resumed %d cells, want %d", got, len(want))
	}
	got, err := RunPolicySweep(cfg, policies, mixes, geos)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalT(t, want), marshalT(t, got)) {
		t.Fatal("resumed policy sweep diverges from the original run")
	}
}

// TestMetamorphicSymbioticBeatsNaive is the redesign's metamorphic
// check: on an oversubscribed server mix, steering co-runners by their
// measured IPC must not lose aggregate throughput against blind FIFO
// seating. (The crafted mix pairs pipeline-bound transaction threads
// with memory-bound utilities, the regime the heuristic targets.)
func TestMetamorphicSymbioticBeatsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a PseudoJBB server mix twice")
	}
	mix := ServerMix(8)
	geo := core.Geometry{Cores: 2, ContextsPerCore: 2}
	run := func(policy string) float64 {
		res, err := RunMix(mix, Options{Geometry: geo, Scale: bench.Tiny, Verify: true, SchedPolicy: policy})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		return res.IPC()
	}
	naive := run("naive")
	symb := run("symbiotic-ipc")
	if symb < naive {
		t.Fatalf("symbiotic-ipc aggregate IPC %.3f < naive %.3f on a hostile mix", symb, naive)
	}
}

// TestRunMixSampledVerifies covers the policy path under interval
// sampling: the mix must still run to completion and verify every VM's
// published results (policy decisions consult only simulation state, so
// sampled mode changes timing but never correctness).
func TestRunMixSampledVerifies(t *testing.T) {
	res, err := RunMix(testMix(), Options{Geometry: core.Geometry{Cores: 1, ContextsPerCore: 2},
		Scale: bench.Tiny, Verify: true, SchedPolicy: "symbiotic-ipc", Plan: sampling.DefaultSampledPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil {
		t.Fatal("sampled mix run carries no sampling estimate")
	}
}

// TestRunMixRejectsUnknowns pins the error paths of the new surface.
func TestRunMixRejectsUnknowns(t *testing.T) {
	if _, err := RunMix(testMix(), Options{Scale: bench.Tiny, SchedPolicy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	bad := Mix{Name: "bad", Parts: []MixPart{{Benchmark: "nope", Threads: 1}}}
	if _, err := RunMix(bad, Options{Scale: bench.Tiny}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// BenchmarkPolicySweep measures the policy-path simulation rate (MB/s
// at 1 byte per µop, comparable to BenchmarkSimSpeed): the naive fast
// path against the metric-driven policy with its SchedView scans and
// migration cost model.
func BenchmarkPolicySweep(b *testing.B) {
	mix := testMix()
	geo := core.Geometry{Cores: 2, ContextsPerCore: 2}
	for _, pol := range []string{"naive", "symbiotic-ipc"} {
		b.Run(pol, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunMix(mix, Options{Geometry: geo, Scale: bench.Tiny, SchedPolicy: pol})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(res.Counters.Get(counters.Instructions)))
			}
		})
	}
}

package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
	"javasmt/internal/sampling"
)

// Accuracy-regression suite for interval sampling (DESIGN.md §10): a
// sampled run must reproduce the checked-in golden counters of every
// benchmark within the tolerances declared below. Runnable on its own
// with `go test ./internal/harness -run Sampled`.

// Declared tolerances of the default sampled regime. The default plan
// has no unwarmed fast-forward, so everything the structures count is
// measured, not extrapolated — only cycle-denominated quantities are
// estimates.
const (
	sampledIPCTol   = 0.02 // relative IPC error vs golden
	sampledCycleTol = 0.02 // relative cycle-count error vs golden
)

// loadGoldenSolo reads the golden solo-counter snapshots the full-mode
// golden suite pins, so this file compares sampling against the exact
// blessed numbers rather than a fresh full run.
func loadGoldenSolo(t *testing.T) []soloSnapshot {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "solo_counters.json"))
	if err != nil {
		t.Fatalf("golden snapshot missing: %v", err)
	}
	var snaps []soloSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// TestSampledAccuracy runs every benchmark under the default sampled
// regime and checks the reconstruction against the golden counters:
// µop-denominated counters must match exactly, cycle-denominated ones
// within the declared tolerance, and the run must satisfy every
// conservation law.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := DefaultOptions()
	opts.Plan = sampling.DefaultSampledPlan()
	for _, want := range loadGoldenSolo(t) {
		b, ok := bench.ByName(want.Benchmark)
		if !ok {
			t.Fatalf("golden names unknown benchmark %q", want.Benchmark)
		}
		res, err := Run(b, opts)
		if err != nil {
			t.Fatalf("%s: %v", want.Benchmark, err)
		}
		if err := res.Counters.CheckConservation(); err != nil {
			t.Errorf("%s: conservation: %v", want.Benchmark, err)
		}
		if res.Sampling == nil {
			t.Fatalf("%s: sampled run carries no estimate", want.Benchmark)
		}

		relErr := func(got, golden uint64) float64 {
			if golden == 0 {
				return 0
			}
			d := float64(got) - float64(golden)
			if d < 0 {
				d = -d
			}
			return d / float64(golden)
		}
		if e := relErr(res.Cycles, want.Cycles); e > sampledCycleTol {
			t.Errorf("%s: cycles %d vs golden %d (%.2f%% > %.0f%%)",
				want.Benchmark, res.Cycles, want.Cycles, 100*e, 100*sampledCycleTol)
		}
		goldenIPC := float64(want.Uops) / float64(want.Cycles)
		gotIPC := res.IPC()
		if e := gotIPC/goldenIPC - 1; e > sampledIPCTol || e < -sampledIPCTol {
			t.Errorf("%s: IPC %.4f vs golden %.4f (%+.2f%%, tolerance %.0f%%)",
				want.Benchmark, gotIPC, goldenIPC, 100*e, 100*sampledIPCTol)
		}

		// µop-denominated counters: exact, per the default plan's
		// no-fast-forward promise.
		exact := []struct {
			name   string
			got    uint64
			golden uint64
		}{
			{"uops", res.Counters.Get(counters.Instructions), want.Uops},
			{"uops_os", res.Counters.Get(counters.InstructionsOS), want.UopsOS},
			{"tc_misses", res.Counters.Get(counters.TCMisses), want.TCMisses},
			{"l1d_misses", res.Counters.Get(counters.L1DMisses), want.L1DMisses},
			{"l2_misses", res.Counters.Get(counters.L2Misses), want.L2Misses},
			{"itlb_misses", res.Counters.Get(counters.ITLBMisses), want.ITLBMisses},
			{"dtlb_misses", res.Counters.Get(counters.DTLBMisses), want.DTLBMisses},
			{"branches", res.Counters.Get(counters.Branches), want.Branches},
			{"btb_misses", res.Counters.Get(counters.BTBMisses), want.BTBMisses},
			{"mem_reads", res.Counters.Get(counters.MemReads), want.MemReads},
			{"mem_writes", res.Counters.Get(counters.MemWrites), want.MemWrites},
			{"ctx_switches", res.Counters.Get(counters.ContextSwitches), want.CtxSwitches},
		}
		for _, c := range exact {
			if c.got != c.golden {
				t.Errorf("%s: %s = %d, golden %d (must be exact under the default plan)",
					want.Benchmark, c.name, c.got, c.golden)
			}
		}
		if res.GCCount != want.GCCount {
			t.Errorf("%s: gc_count = %d, golden %d", want.Benchmark, res.GCCount, want.GCCount)
		}

		// The run's own confidence report must exist and be populated.
		if res.Sampling.Windows == 0 || res.Sampling.WarmUops == 0 {
			t.Errorf("%s: estimate not populated: %+v", want.Benchmark, res.Sampling)
		}
	}
}

// TestSampledMetamorphicDegenerate: a sampled plan whose functional spans
// are both zero runs 100% detailed and must be byte-identical to full
// mode through the whole harness stack (VM, kernel, GC and all) — the
// end-to-end version of the controller-level degenerate test.
func TestSampledMetamorphicDegenerate(t *testing.T) {
	b := mustBench(t, "compress")
	full, err := Run(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Plan = sampling.Plan{Mode: sampling.Sampled, WindowCycles: 5_000}
	got, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != full.Counters {
		t.Errorf("degenerate sampled counters diverged from full:\n got %+v\nwant %+v", got.Counters, full.Counters)
	}
	if got.Cycles != full.Cycles || got.GCCount != full.GCCount {
		t.Errorf("degenerate sampled run: cycles %d/%d gc %d/%d",
			got.Cycles, full.Cycles, got.GCCount, full.GCCount)
	}
	if got.Sampling == nil || got.Sampling.DetailPct != 100 {
		t.Errorf("degenerate run estimate: %+v", got.Sampling)
	}
	if full.Sampling != nil {
		t.Error("full run carries a sampling estimate")
	}
}

// TestSampledPairing: the pairing protocol (solo reference runs included)
// must work under a sampled plan and produce speedups in the physically
// meaningful band; sampled solo times must come from sampled runs (cache
// keyed by plan), never mix with full-mode solo times.
func TestSampledPairing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	opts := DefaultPairOptions()
	opts.Runs = 2
	opts.Plan = sampling.DefaultSampledPlan()
	pr, err := RunPair(mustBench(t, "compress"), mustBench(t, "mpegaudio"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Sampling == nil {
		t.Fatal("sampled pairing carries no estimate")
	}
	if cs := pr.CombinedSpeedup(); cs < 0.5 || cs > 2.5 {
		t.Errorf("combined speedup %.3f outside the physical band", cs)
	}
	if err := pr.Counters.CheckConservation(); err != nil {
		t.Errorf("pairing conservation: %v", err)
	}
}

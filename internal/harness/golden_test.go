package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/counters"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden snapshots under testdata/golden")

// Golden snapshots pin the simulator's exact observable behavior: any
// change to the pipeline, caches, JVM or scheduler that moves a counter
// shows up as a golden diff and must be re-blessed with -update. The
// metamorphic tests say the model is *coherent*; the goldens say it is
// *the same model* the checked-in experiment numbers came from.

// compareGolden marshals got, then either rewrites the snapshot (with
// -update) or diffs against the checked-in bytes.
func compareGolden(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden snapshot missing (run `go test ./internal/harness -run Golden -update`): %v", err)
	}
	if string(want) != string(data) {
		t.Errorf("%s: simulator output diverged from golden snapshot.\n--- want ---\n%s\n--- got ---\n%s\nIf the change is intentional, re-bless with -update.",
			name, want, data)
	}
}

// soloSnapshot is the golden record of one solo tiny-scale run.
type soloSnapshot struct {
	Benchmark   string
	Cycles      uint64
	Uops        uint64
	UopsOS      uint64
	TCMisses    uint64
	L1DMisses   uint64
	L2Misses    uint64
	ITLBMisses  uint64
	DTLBMisses  uint64
	Branches    uint64
	BTBMisses   uint64
	MemReads    uint64
	MemWrites   uint64
	CtxSwitches uint64
	GCCount     int
}

// TestGoldenSoloCounters snapshots every benchmark's HT-off single-run
// counter file at tiny scale — the broadest cheap net over the whole
// machine (front end, caches, TLBs, DRAM, OS and GC all feed into it).
func TestGoldenSoloCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var snaps []soloSnapshot
	for _, b := range bench.All() {
		res, err := Run(b, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		f := res.Counters
		snaps = append(snaps, soloSnapshot{
			Benchmark:   b.Name,
			Cycles:      res.Cycles,
			Uops:        f.Get(counters.Instructions),
			UopsOS:      f.Get(counters.InstructionsOS),
			TCMisses:    f.Get(counters.TCMisses),
			L1DMisses:   f.Get(counters.L1DMisses),
			L2Misses:    f.Get(counters.L2Misses),
			ITLBMisses:  f.Get(counters.ITLBMisses),
			DTLBMisses:  f.Get(counters.DTLBMisses),
			Branches:    f.Get(counters.Branches),
			BTBMisses:   f.Get(counters.BTBMisses),
			MemReads:    f.Get(counters.MemReads),
			MemWrites:   f.Get(counters.MemWrites),
			CtxSwitches: f.Get(counters.ContextSwitches),
			GCCount:     res.GCCount,
		})
		if err := f.CheckConservation(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	compareGolden(t, "solo_counters.json", snaps)
}

// pairSnapshot is the golden record of one pairing cell.
type pairSnapshot struct {
	A, B         string
	TimeA, TimeB float64
	SoloA, SoloB float64
	Combined     float64
}

// TestGoldenPairingTable snapshots a reduced pairing cross product (three
// programs, every protocol feature exercised: relaunching, quota
// balancing, solo caching, end-dropping averages).
func TestGoldenPairingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	var progs []*bench.Benchmark
	for _, name := range []string{"compress", "mpegaudio", "db"} {
		progs = append(progs, mustBench(t, name))
	}
	cfg := DefaultConfig()
	cfg.Runs = 2
	p, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []pairSnapshot
	for i := range progs {
		for j := i; j < len(progs); j++ {
			r := p.Results[i][j]
			snaps = append(snaps, pairSnapshot{
				A: r.A, B: r.B,
				TimeA: r.TimeA, TimeB: r.TimeB,
				SoloA: r.SoloA, SoloB: r.SoloB,
				Combined: r.CombinedSpeedup(),
			})
		}
	}
	compareGolden(t, "pairing_table.json", snaps)
}

package harness

import (
	"strings"
	"testing"

	"javasmt/internal/counters"
)

// fakeChar builds a small synthetic characterization for render tests,
// avoiding full simulations.
func fakeChar() *Characterization {
	c := &Characterization{}
	mk := func(cycles, instr uint64) *Result {
		r := &Result{Cycles: cycles}
		r.Counters.Add(counters.Cycles, cycles)
		r.Counters.Add(counters.Instructions, instr)
		r.Counters.Add(counters.CyclesDT, cycles/2)
		r.Counters.Add(counters.CyclesOS, cycles/50)
		r.Counters.Add(counters.Retire0, cycles/2)
		r.Counters.Add(counters.Retire3, cycles/2)
		r.Counters.Add(counters.TCMisses, instr/500)
		r.Counters.Add(counters.L1DMisses, instr/100)
		r.Counters.Add(counters.L2Misses, instr/2000)
		r.Counters.Add(counters.ITLBMisses, instr/10000)
		r.Counters.Add(counters.Branches, instr/5)
		r.Counters.Add(counters.BTBMisses, instr/100)
		return r
	}
	for _, name := range []string{"MolDyn", "MonteCarlo", "RayTracer", "PseudoJBB"} {
		for _, threads := range []int{2, 8} {
			for _, ht := range []bool{false, true} {
				cycles := uint64(1000)
				if ht {
					cycles = 800 // HT "improves" the fake runs
				}
				c.Runs = append(c.Runs, CharRun{
					Benchmark: name, Threads: threads, HT: ht,
					Result: mk(cycles, 900),
				})
			}
		}
	}
	return c
}

func TestRenderTable2AndFigures(t *testing.T) {
	c := fakeChar()
	for name, out := range map[string]string{
		"table2": c.Table2(),
		"fig1":   c.Fig1(),
		"fig2":   c.Fig2(),
		"fig3":   c.Fig3(),
		"fig4":   c.Fig4(),
		"fig5":   c.Fig5(),
		"fig6":   c.Fig6(),
		"fig7":   c.Fig7(),
	} {
		if !strings.Contains(out, "MolDyn") || !strings.Contains(out, "PseudoJBB") {
			t.Fatalf("%s render missing benchmarks:\n%s", name, out)
		}
	}
	if !strings.Contains(c.Fig2(), "average") {
		t.Fatal("Fig2 must include the average rows")
	}
	if !strings.Contains(c.Fig1(), "gain") {
		t.Fatal("Fig1 must report the HT gain")
	}
}

func TestFig10RowMath(t *testing.T) {
	r := Fig10Row{Benchmark: "x", CyclesOff: 1000, CyclesOn: 1300, CyclesDyn: 1010}
	if got := r.SlowdownPct(); got < 29.9 || got > 30.1 {
		t.Fatalf("slowdown = %v, want 30", got)
	}
	if got := r.DynSlowdownPct(); got < 0.9 || got > 1.1 {
		t.Fatalf("dyn slowdown = %v, want 1", got)
	}
}

func TestPairResultMath(t *testing.T) {
	p := &PairResult{A: "a", B: "b", SoloA: 100, SoloB: 200, TimeA: 125, TimeB: 250}
	if got := p.SpeedupA(); got != 0.8 {
		t.Fatalf("speedupA = %v", got)
	}
	if got := p.SpeedupB(); got != 0.8 {
		t.Fatalf("speedupB = %v", got)
	}
	if got := p.CombinedSpeedup(); got != 1.6 {
		t.Fatalf("combined = %v", got)
	}
	var zero PairResult
	if zero.CombinedSpeedup() != 0 || zero.SpeedupA() != 0 || zero.SpeedupB() != 0 {
		t.Fatal("zero-time pair must not divide by zero")
	}
}

func TestPairingsRenderers(t *testing.T) {
	p := &Pairings{
		Names: []string{"a", "b"},
		Combined: [][]float64{
			{1.2, 0.9},
			{0.9, 1.5},
		},
	}
	f8 := p.Fig8()
	if !strings.Contains(f8, "a") || !strings.Contains(f8, "med=") {
		t.Fatalf("Fig8 incomplete:\n%s", f8)
	}
	f9 := p.Fig9()
	if !strings.Contains(f9, "slowdown pairs (C_AB < 1): 1") {
		t.Fatalf("Fig9 should count the one slowdown pair:\n%s", f9)
	}
	f11 := p.Fig11()
	if !strings.Contains(f11, "1.200") || !strings.Contains(f11, "1.500") {
		t.Fatalf("Fig11 should list the diagonal:\n%s", f11)
	}
}

func TestAvgDroppingEnds(t *testing.T) {
	if v, n := avgDroppingEnds([]uint64{100}); v != 0 || n != 0 {
		t.Fatal("too-short series must report no runs")
	}
	v, n := avgDroppingEnds([]uint64{999, 10, 20, 30, 1})
	if n != 3 || v != 20 {
		t.Fatalf("avg = %v over %d, want 20 over 3", v, n)
	}
}

func TestRenderFig12(t *testing.T) {
	out := RenderFig12([]Fig12Row{{Benchmark: "MolDyn", Threads: 4, IPC: 1.5, L1DPerK: 9.9}})
	if !strings.Contains(out, "MolDyn") || !strings.Contains(out, "9.90") {
		t.Fatalf("Fig12 render incomplete:\n%s", out)
	}
}

package harness

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
)

// testMeta is the journal identity campaign tests open journals under.
var testMeta = resilience.Meta{Tool: "harness-test", Config: "scale=tiny"}

func openJournal(t *testing.T, dir string, resume bool) *resilience.Journal {
	t.Helper()
	j, err := resilience.Open(dir, testMeta, resume)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestRunCellJournalRoundTrip pins the checkpoint/resume core: a
// completed cell is recorded, and a resumed campaign decodes it from the
// journal instead of re-simulating.
func TestRunCellJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Journal = openJournal(t, dir, false)
	want := Fig10Row{Benchmark: "x", CyclesOff: 10, CyclesOn: 13, CyclesDyn: 11}
	calls := 0
	out, err := runCell(cfg, "cell x", func(w *resilience.Watch) (Fig10Row, error) {
		calls++
		return want, nil
	})
	if err != nil || out.fail != nil {
		t.Fatalf("first run: err=%v fail=%v", err, out.fail)
	}
	if calls != 1 || out.v != want {
		t.Fatalf("first run: calls=%d v=%+v", calls, out.v)
	}
	if err := cfg.Journal.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Journal = openJournal(t, dir, true)
	defer cfg.Journal.Close()
	if cfg.Journal.Resumed() != 1 {
		t.Fatalf("resumed = %d, want 1", cfg.Journal.Resumed())
	}
	out, err = runCell(cfg, "cell x", func(w *resilience.Watch) (Fig10Row, error) {
		t.Fatal("re-simulated a journaled cell")
		return Fig10Row{}, nil
	})
	if err != nil || out.fail != nil {
		t.Fatalf("resume: err=%v fail=%v", err, out.fail)
	}
	if out.v != want {
		t.Fatalf("resume decoded %+v, want %+v", out.v, want)
	}
}

// TestRunCellPanicBecomesFailure pins panic recovery: a panicking cell
// yields a structured CellError (with the cell identity and a stack) and
// a StatusFailed journal entry, and is retried — not skipped — on resume.
func TestRunCellPanicBecomesFailure(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Journal = openJournal(t, dir, false)
	out, err := runCell(cfg, "cell boom", func(w *resilience.Watch) (int, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.fail == nil || out.fail.Kind != resilience.KindPanic {
		t.Fatalf("fail = %+v, want a panic CellError", out.fail)
	}
	if out.fail.Cell != "cell boom" || !strings.Contains(out.fail.Stack, "campaign_test") {
		t.Fatalf("CellError lost identity or stack: %+v", out.fail)
	}
	if e, ok := cfg.Journal.Lookup("cell boom"); !ok || e.Status != resilience.StatusFailed {
		t.Fatalf("journal entry = %+v, want StatusFailed", e)
	}
	if err := cfg.Journal.Close(); err != nil {
		t.Fatal(err)
	}

	// The failed cell re-runs on resume and its success supersedes.
	cfg.Journal = openJournal(t, dir, true)
	defer cfg.Journal.Close()
	out, err = runCell(cfg, "cell boom", func(w *resilience.Watch) (int, error) {
		return 7, nil
	})
	if err != nil || out.fail != nil || out.v != 7 {
		t.Fatalf("retry after failed journal entry: v=%d err=%v fail=%v", out.v, err, out.fail)
	}
	if e, ok := cfg.Journal.Lookup("cell boom"); !ok || e.Status != resilience.StatusOK {
		t.Fatalf("journal entry after retry = %+v, want StatusOK", e)
	}
}

// TestRunCellRetriesTransient pins bounded retry: a transient failure is
// re-attempted up to Retries times; a persistent one is not.
func TestRunCellRetriesTransient(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy.Retries = 2
	cfg.Policy.Backoff = time.Nanosecond
	calls := 0
	out, err := runCell(cfg, "cell flaky", func(w *resilience.Watch) (int, error) {
		calls++
		if calls < 3 {
			return 0, resilience.MarkTransient(errTransientProbe)
		}
		return 42, nil
	})
	if err != nil || out.fail != nil || out.v != 42 {
		t.Fatalf("v=%d err=%v fail=%v", out.v, err, out.fail)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (two retries)", calls)
	}

	calls = 0
	out, err = runCell(cfg, "cell broken", func(w *resilience.Watch) (int, error) {
		calls++
		return 0, errTransientProbe // unmarked: permanent
	})
	if err != nil || out.fail == nil {
		t.Fatalf("err=%v fail=%v, want a cell failure", err, out.fail)
	}
	if calls != 1 {
		t.Fatalf("permanent error attempted %d times, want 1", calls)
	}
}

var errTransientProbe = errors.New("probe failure")

// TestCampaignDegradesGracefully runs a real (reduced) pairing campaign
// under an unmeetable cycle budget: every pairing cell must come back as
// a FAILED entry in a completed report, with no error and no crash.
func TestCampaignDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	progs := []*bench.Benchmark{mustBench(t, "compress"), mustBench(t, "mpegaudio")}
	cfg := DefaultConfig()
	cfg.Runs = 2
	cfg.Jobs = 4
	cfg.Policy.CycleBudget = 50_000 // far below any pairing's runtime
	p, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatalf("campaign aborted instead of degrading: %v", err)
	}
	if len(p.Failed) != 3 { // compress+compress, compress+mpegaudio, mpegaudio+mpegaudio
		t.Fatalf("failed = %+v, want all 3 cells", p.Failed)
	}
	for _, f := range p.Failed {
		if f.Kind != string(resilience.KindCycleBudget) {
			t.Fatalf("failure kind = %q, want cycle-budget: %+v", f.Kind, f)
		}
	}
	for _, fig := range []string{p.Fig8(), p.Fig9(), p.Fig11()} {
		if !strings.Contains(fig, "FAILED cells (3):") {
			t.Fatalf("figure lacks the FAILED trailer:\n%s", fig)
		}
	}
}

// TestCampaignDeadline pins the watchdog path end to end on a real
// simulation: an unmeetable wall deadline cancels the cycle loop and the
// cell reports a timeout.
func TestCampaignDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	progs := []*bench.Benchmark{mustBench(t, "compress")}
	cfg := DefaultConfig()
	cfg.Runs = 2
	cfg.Policy.WallDeadline = time.Microsecond
	p, err := RunPairingsOf(progs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Failed) != 1 || p.Failed[0].Kind != string(resilience.KindTimeout) {
		t.Fatalf("failed = %+v, want one timeout", p.Failed)
	}
}

// TestCampaignResumeByteIdentical is the crash-safety acceptance test: a
// campaign interrupted mid-journal and resumed must produce the same
// report and the same metrics export, byte for byte, as an uninterrupted
// run.
func TestCampaignResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	progs := []*bench.Benchmark{mustBench(t, "compress"), mustBench(t, "mpegaudio"), mustBench(t, "db")}

	runCampaign := func(j *resilience.Journal) (string, []byte) {
		sink := obs.New(obs.Config{Metrics: true, Stride: 100_000})
		cfg := DefaultConfig()
		cfg.Runs = 2
		cfg.Jobs = 4
		cfg.Obs = sink
		cfg.Journal = j
		p, err := RunPairingsOf(progs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sink.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return p.Fig9(), buf.Bytes()
	}

	full := t.TempDir()
	j := openJournal(t, full, false)
	wantFig, wantMetrics := runCampaign(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash: a second campaign directory holding only a
	// prefix of the journal, with the last line torn mid-record.
	data, err := os.ReadFile(filepath.Join(full, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short to truncate meaningfully: %d lines", len(lines))
	}
	partial := bytes.Join(lines[:3], nil)
	partial = append(partial, lines[3][:len(lines[3])/2]...) // torn tail
	crashDir := t.TempDir()
	meta, err := os.ReadFile(filepath.Join(full, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashDir, "meta.json"), meta, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashDir, "journal.jsonl"), partial, 0o644); err != nil {
		t.Fatal(err)
	}

	j = openJournal(t, crashDir, true)
	if j.Resumed() != 3 {
		t.Fatalf("resumed = %d cells, want 3 intact entries", j.Resumed())
	}
	gotFig, gotMetrics := runCampaign(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if gotFig != wantFig {
		t.Fatalf("resumed report differs:\n--- want ---\n%s\n--- got ---\n%s", wantFig, gotFig)
	}
	if !bytes.Equal(gotMetrics, wantMetrics) {
		t.Fatal("resumed metrics export is not byte-identical to the uninterrupted run")
	}
}

// TestRunSweepSmoke runs the exported sweep driver over one benchmark.
func TestRunSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cells, err := RunSweep(DefaultConfig(), []*bench.Benchmark{mustBench(t, "db")}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Failed != "" || cells[0].Counters.IPC() <= 0 {
		t.Fatalf("cells = %+v", cells)
	}
}

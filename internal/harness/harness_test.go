package harness

import (
	"strings"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
)

func TestRunSingleBenchmark(t *testing.T) {
	b, _ := bench.ByName("compress")
	res, err := Run(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Counters.Get(counters.Instructions) == 0 {
		t.Fatal("empty result")
	}
	if res.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
}

func TestRunMultithreaded(t *testing.T) {
	b, _ := bench.ByName("MonteCarlo")
	res, err := Run(b, Options{HT: true, Threads: 4, Scale: bench.Tiny, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.DTModePercent() <= 10 {
		t.Fatalf("DT mode = %.1f%%, expected substantial overlap", res.Counters.DTModePercent())
	}
}

func TestSoloTimeCaching(t *testing.T) {
	b, _ := bench.ByName("mpegaudio")
	v1, err := SoloTime(b, bench.Tiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := SoloTime(b, bench.Tiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 || v1 == 0 {
		t.Fatalf("solo time unstable: %v vs %v", v1, v2)
	}
}

func TestRunPairProtocol(t *testing.T) {
	a, _ := bench.ByName("compress")
	b, _ := bench.ByName("mpegaudio")
	opts := DefaultPairOptions()
	opts.Runs = 3
	res, err := RunPair(a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunsA < opts.Runs || res.RunsB < opts.Runs {
		t.Fatalf("too few averaged runs: %d/%d", res.RunsA, res.RunsB)
	}
	cab := res.CombinedSpeedup()
	if cab < 0.4 || cab > 2.0 {
		t.Fatalf("combined speedup %.3f outside sane SMT range", cab)
	}
	// Co-scheduled times cannot beat solo times.
	if res.SpeedupA() > 1.05 || res.SpeedupB() > 1.05 {
		t.Fatalf("individual speedups exceed 1: A=%.3f B=%.3f", res.SpeedupA(), res.SpeedupB())
	}
	if res.Counters.Get(counters.CyclesDT) == 0 {
		t.Fatal("pair ran with no dual-thread cycles")
	}
}

func TestSelfPairBeatsTimeSharing(t *testing.T) {
	b, _ := bench.ByName("mpegaudio")
	opts := DefaultPairOptions()
	opts.Runs = 3
	res, err := RunPair(b, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cab := res.CombinedSpeedup(); cab <= 1.0 {
		t.Fatalf("self-pairing mpegaudio C_AB = %.3f, expected SMT gain over time sharing", cab)
	}
}

func TestFig10StaticPartitionTax(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := RunFig10(Config{Scale: bench.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	slower := 0
	for _, r := range rows {
		if r.CyclesOn > r.CyclesOff {
			slower++
		}
		// Dynamic partitioning must never be slower than static.
		if r.CyclesDyn > r.CyclesOn+r.CyclesOn/50 {
			t.Fatalf("%s: dynamic partition (%d) slower than static (%d)", r.Benchmark, r.CyclesDyn, r.CyclesOn)
		}
	}
	if slower < 5 {
		t.Fatalf("only %d of 9 programs pay the static-partition tax; paper reports 7 of 9", slower)
	}
	out := RenderFig10(rows)
	if !strings.Contains(out, "slow down when Hyper-Threading") {
		t.Fatal("render incomplete")
	}
}

func TestTable1MentionsAllBenchmarks(t *testing.T) {
	out := Table1()
	for _, b := range bench.All() {
		if !strings.Contains(out, b.Name) {
			t.Fatalf("Table 1 missing %s", b.Name)
		}
	}
}

func TestCharacterizationSmallSlice(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A reduced matrix sanity check: one benchmark, both HT modes.
	res, err := Run(mustBench(t, "MonteCarlo"), Options{Threads: 2, Scale: bench.Tiny, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	resHT, err := Run(mustBench(t, "MonteCarlo"), Options{HT: true, Threads: 2, Scale: bench.Tiny, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if resHT.Counters.IPC() <= res.Counters.IPC() {
		t.Fatalf("HT should raise MT IPC: off=%.3f on=%.3f", res.Counters.IPC(), resHT.Counters.IPC())
	}
}

func mustBench(t *testing.T, name string) *bench.Benchmark {
	t.Helper()
	b, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	return b
}

func TestOptionsPlumbing(t *testing.T) {
	cfg := cpuConfig(Options{HT: true, Partition: core.DynamicPartition, TCSharedTags: true})
	if !cfg.HT || cfg.Partition != core.DynamicPartition || !cfg.TC.SharedTags {
		t.Fatal("options not plumbed into core config")
	}
	v := vmConfig(bench.Tiny, 1)
	if v.HeapBase == vmConfig(bench.Tiny, 0).HeapBase {
		t.Fatal("co-scheduled programs must get distinct address spaces")
	}
}

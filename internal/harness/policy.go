// Symbiotic-scheduling experiments: multiprogrammed server mixes run
// under each seating policy (internal/simos.Policy) on each machine
// geometry. cmd/sweep -policies drives RunPolicySweep to produce the
// headline policy × mix × geometry table.

package harness

import (
	"fmt"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
	"javasmt/internal/sampling"
)

// MixPart is one VM of a workload mix: a benchmark instance with its
// software-thread count. Each part gets its own address space (distinct
// code base and heap base), so a mix is a multiprogrammed workload like
// the paper's pairing runs, not one big process.
type MixPart struct {
	Benchmark string
	Threads   int
}

// Mix is a named multiprogrammed workload: several VMs co-scheduled
// under one simulated kernel. Server-style mixes oversubscribe the
// machine (total threads well beyond the hardware contexts) so the
// seating policy has real decisions to make every quantum.
type Mix struct {
	Name  string
	Parts []MixPart
}

// Threads returns the mix's total software-thread count across parts.
func (m Mix) Threads() int {
	n := 0
	for _, p := range m.Parts {
		n += p.Threads
	}
	return n
}

// serverUtilities is the rotation of single-threaded utility programs
// mixed into server loads (the paper co-schedules SPECjvm98 programs
// the same way in §4.2).
var serverUtilities = []string{"javac", "jack", "compress", "mpegaudio"}

// jbbVMThreads caps one PseudoJBB VM's warehouse count; larger loads
// shard across VMs (the VM substrate caps threads per process, and real
// server deployments shard JVMs the same way).
const jbbVMThreads = 32

// ServerMix builds a PseudoJBB-heavy server mix totalling `total`
// software threads: transaction-processing VMs of up to 32 threads
// each, plus one single-threaded utility VM (javac, jack, compress,
// mpegaudio in rotation) per 32 threads of load. The construction is
// deterministic: the same total always yields the same mix.
func ServerMix(total int) Mix {
	if total < 1 {
		total = 1
	}
	utils := total / jbbVMThreads
	if total >= 8 && utils == 0 {
		utils = 1
	}
	if utils >= total {
		utils = 0
	}
	m := Mix{Name: fmt.Sprintf("server-%d", total)}
	remaining := total - utils
	for remaining > 0 {
		n := remaining
		if n > jbbVMThreads {
			n = jbbVMThreads
		}
		m.Parts = append(m.Parts, MixPart{Benchmark: "PseudoJBB", Threads: n})
		remaining -= n
	}
	for i := 0; i < utils; i++ {
		m.Parts = append(m.Parts, MixPart{Benchmark: serverUtilities[i%len(serverUtilities)], Threads: 1})
	}
	return m
}

// MixResult is one mix run's outcome.
type MixResult struct {
	Mix     string
	Threads int
	Cycles  uint64
	// Counters accumulates over the whole co-scheduled interval;
	// Migrations is its thread_migrations count, broken out because it
	// is the policy sweep's secondary headline metric.
	Counters   counters.File
	Migrations uint64
	// Sampling carries the reconstruction record of a sampled run (nil
	// for full simulation).
	Sampling *sampling.Estimate `json:",omitempty"`
}

// IPC returns the mix's aggregate retired µops per cycle — the policy
// sweep's primary metric (per-program completion times are ill-defined
// when every VM runs exactly once).
func (r *MixResult) IPC() float64 { return r.Counters.IPC() }

// RunMix co-schedules every part of the mix under one kernel on one
// machine and runs to completion. Options is interpreted as for Run,
// except Threads is ignored (the mix fixes per-part thread counts) and
// Verify checks every part's published results.
func RunMix(m Mix, opts Options) (*MixResult, error) {
	cfg := cpuConfig(opts)
	cpu := core.New(cfg)
	k, err := newKernel(cpu, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: mix %s: %w", m.Name, err)
	}
	type part struct {
		b       *bench.Benchmark
		vm      *jvm.VM
		threads int
	}
	parts := make([]part, 0, len(m.Parts))
	for slot, p := range m.Parts {
		b, ok := bench.ByName(p.Benchmark)
		if !ok {
			return nil, fmt.Errorf("harness: mix %s: unknown benchmark %q", m.Name, p.Benchmark)
		}
		threads := p.Threads
		if !b.Multithreaded {
			threads = 1
		}
		// Code bases sit above every heap lane (vmConfig places heaps at
		// 0x2000_0000 + slot GB) and well clear of simos.KernelCodeBase:
		// a 16-VM mix's seventh code lane would otherwise alias the first
		// VM's heap in the shared L2 under the pairing scheme's
		// (1+slot)<<26 spacing.
		prog := b.Build(threads, opts.Scale, 1<<40|uint64(slot)<<26)
		vm := jvm.New(prog, k, vmConfig(opts.Scale, slot))
		vm.Start()
		parts = append(parts, part{b: b, vm: vm, threads: threads})
	}
	var ro *obs.RunObs
	if opts.Obs.Enabled() {
		label := opts.ObsLabel
		if label == "" {
			label = "mix " + m.Name
		}
		ro = opts.Obs.RunFor(label, cfg.NumContexts())
		cpu.AttachObs(ro, 0)
	}
	if opts.Cancel != nil {
		cpu.AttachCancel(opts.Cancel)
	}
	ctrl := sampling.NewController(cpu, opts.Plan)
	cycles, err := ctrl.Run(opts.MaxCycles)
	if err != nil {
		return nil, fmt.Errorf("harness: mix %s: %w", m.Name, err)
	}
	if opts.MaxCycles > 0 && !cpu.Drained() {
		return nil, resilience.MarkKind(
			fmt.Errorf("harness: mix %s exceeded cycle budget of %d cycles", m.Name, opts.MaxCycles),
			resilience.KindCycleBudget)
	}
	est := ctrl.Finish()
	if est != nil {
		cycles = cpu.Counters().Get(counters.Cycles)
		ro.SetSampling(samplingInfo(est))
	}
	cpu.FinishObs()
	if opts.Verify {
		for _, p := range parts {
			if err := p.b.Verify(p.vm, p.threads, opts.Scale); err != nil {
				return nil, fmt.Errorf("harness: mix %s: %w", m.Name, err)
			}
		}
	}
	return &MixResult{
		Mix:        m.Name,
		Threads:    m.Threads(),
		Cycles:     cycles,
		Counters:   *cpu.Counters(),
		Migrations: cpu.Counters().Get(counters.ThreadMigrations),
		Sampling:   est,
	}, nil
}

// PolicyCell is one cell of a policy sweep (cmd/sweep -policies): a
// workload mix run under one seating policy on one machine geometry,
// with its full counter file. Failed carries the failure reason when
// the campaign gave up on the cell.
type PolicyCell struct {
	Mix        string
	Threads    int
	Policy     string
	Geometry   core.Geometry
	Cycles     uint64
	Migrations uint64
	Counters   counters.File
	Failed     string `json:",omitempty"`
}

// IPC returns the cell's aggregate retired µops per cycle.
func (c *PolicyCell) IPC() float64 { return c.Counters.IPC() }

// RunPolicySweep runs every mix under every seating policy on every
// machine geometry — the symbiotic-scheduling headline experiment:
// server mixes of 32-256 threads on 1×2, 2×2 and 4×4 machines, naive
// FIFO against the geometry- and metric-aware policies — under cfg's
// campaign policy (deadline, budget, retries, journal, fault
// injection). Cell order is policy-major within mix×geometry so the
// rendered table's rows group naturally.
func RunPolicySweep(cfg Config, policies []string, mixes []Mix, geos []core.Geometry) ([]PolicyCell, error) {
	grid := policyCells(policies, mixes, geos)
	outs, err := mapCells(cfg, grid)
	if err != nil {
		return nil, err
	}
	cells := make([]PolicyCell, len(outs))
	for i, o := range outs {
		if o.fail != nil {
			cells[i] = grid[i].failed(o.fail.Reason())
			continue
		}
		cells[i] = o.v
	}
	return cells, nil
}

// RenderPolicySweep formats the policy sweep as the headline table: one
// row per mix×geometry, one IPC column per policy, plus the best and
// worst policies and their IPC gap. A second block reports thread
// migrations per policy.
func RenderPolicySweep(cells []PolicyCell) string {
	type rowKey struct {
		mix string
		geo core.Geometry
	}
	var rows []rowKey
	var policies []string
	seenRow := map[rowKey]bool{}
	seenPol := map[string]bool{}
	byCell := map[rowKey]map[string]*PolicyCell{}
	for i := range cells {
		c := &cells[i]
		rk := rowKey{c.Mix, c.Geometry}
		if !seenRow[rk] {
			seenRow[rk] = true
			rows = append(rows, rk)
			byCell[rk] = map[string]*PolicyCell{}
		}
		if !seenPol[c.Policy] {
			seenPol[c.Policy] = true
			policies = append(policies, c.Policy)
		}
		byCell[rk][c.Policy] = c
	}
	var sb strings.Builder
	sb.WriteString("Symbiotic scheduling: aggregate IPC by seating policy\n")
	fmt.Fprintf(&sb, "%-14s %-8s", "Mix", "Geo")
	for _, p := range policies {
		fmt.Fprintf(&sb, " %16s", p)
	}
	fmt.Fprintf(&sb, " %10s %9s\n", "best", "gap%")
	for _, rk := range rows {
		fmt.Fprintf(&sb, "%-14s %-8v", rk.mix, rk.geo)
		best, worst := "", ""
		bestIPC, worstIPC := 0.0, 0.0
		for _, p := range policies {
			c := byCell[rk][p]
			if c == nil {
				fmt.Fprintf(&sb, " %16s", "-")
				continue
			}
			if c.Failed != "" {
				fmt.Fprintf(&sb, " %16s", "FAILED")
				continue
			}
			ipc := c.IPC()
			fmt.Fprintf(&sb, " %16.3f", ipc)
			if best == "" || ipc > bestIPC {
				best, bestIPC = p, ipc
			}
			if worst == "" || ipc < worstIPC {
				worst, worstIPC = p, ipc
			}
		}
		if best != "" && worstIPC > 0 {
			fmt.Fprintf(&sb, " %10s %8.1f%%\n", best, 100*(bestIPC-worstIPC)/worstIPC)
		} else {
			fmt.Fprintf(&sb, " %10s %9s\n", "-", "-")
		}
	}
	sb.WriteString("\nThread migrations per cell\n")
	fmt.Fprintf(&sb, "%-14s %-8s", "Mix", "Geo")
	for _, p := range policies {
		fmt.Fprintf(&sb, " %16s", p)
	}
	sb.WriteString("\n")
	for _, rk := range rows {
		fmt.Fprintf(&sb, "%-14s %-8v", rk.mix, rk.geo)
		for _, p := range policies {
			c := byCell[rk][p]
			if c == nil || c.Failed != "" {
				fmt.Fprintf(&sb, " %16s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %16d", c.Migrations)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

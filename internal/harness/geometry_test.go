package harness

import (
	"encoding/json"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/core"
	"javasmt/internal/sampling"
)

// Geometry-equivalence layer (ISSUE 7): the generalized M×N machine at
// the paper's two shapes must be THE SAME MODEL as the legacy HT flag —
// byte-identical counter files, not merely close ones — so every
// existing golden, metamorphic and conservation result carries over to
// the geometry-parameterized machine unmodified.

// counterBytes marshals a run outcome to its canonical JSON bytes.
func counterBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGeometryEquivalence runs every benchmark under the legacy HT flag
// and under the equivalent explicit geometry — HT off ≡ {1,1}, HT on ≡
// {1,2} — in both full and sampled modes, and requires the entire
// result (cycles, full counter file, GC count, sampling estimate) to
// marshal to identical bytes.
func TestGeometryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	modes := []struct {
		name string
		plan sampling.Plan
	}{
		{"full", sampling.FullPlan()},
		{"sampled", sampling.DefaultSampledPlan()},
	}
	shapes := []struct {
		name string
		ht   bool
		geo  core.Geometry
	}{
		{"htoff-1x1", false, core.Geometry{Cores: 1, ContextsPerCore: 1}},
		{"hton-1x2", true, core.Geometry{Cores: 1, ContextsPerCore: 2}},
	}
	for _, mode := range modes {
		for _, shape := range shapes {
			t.Run(mode.name+"/"+shape.name, func(t *testing.T) {
				for _, b := range bench.All() {
					threads := 1
					if b.Multithreaded && shape.ht {
						threads = 2
					}
					legacy := Options{HT: shape.ht, Threads: threads, Scale: bench.Tiny,
						Verify: true, Plan: mode.plan}
					viaGeo := legacy
					viaGeo.HT = false
					viaGeo.Geometry = shape.geo
					want, err := Run(b, legacy)
					if err != nil {
						t.Fatalf("%s legacy: %v", b.Name, err)
					}
					got, err := Run(b, viaGeo)
					if err != nil {
						t.Fatalf("%s geometry: %v", b.Name, err)
					}
					wb, gb := counterBytes(t, want), counterBytes(t, got)
					if string(wb) != string(gb) {
						t.Errorf("%s: geometry %v result diverged from ht=%v\n--- ht flag ---\n%s\n--- geometry ---\n%s",
							b.Name, shape.geo, shape.ht, wb, gb)
					}
				}
			})
		}
	}
}

// TestMetamorphicGeometryCMPMonotonicity: on a trace-cache-hostile pair
// (the paper's jack+javac slowdown cluster), two private single-context
// cores must out-throughput one shared two-context core — the pair
// stops evicting each other's front-end state and each program gets a
// whole unpartitioned ROB. The harness seats the same two programs on
// both machines; combined speedup against the common {1,1} solo
// baseline is the throughput measure.
func TestMetamorphicGeometryCMPMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	opts := DefaultPairOptions()
	opts.Runs = 2
	pairs := [][2]string{
		{"jack", "javac"}, // trace-cache-hostile (paper's slowdown cluster)
		{"db", "jess"},    // memory-bound vs allocation-heavy
	}
	for _, p := range pairs {
		a, b := mustBench(t, p[0]), mustBench(t, p[1])
		smt, err := runPairOn(core.New(cpuConfig(Options{Geometry: core.Geometry{Cores: 1, ContextsPerCore: 2}})), a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := runPairOn(core.New(cpuConfig(Options{Geometry: core.Geometry{Cores: 2, ContextsPerCore: 1}})), a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.CombinedSpeedup() < smt.CombinedSpeedup() {
			t.Errorf("%s+%s: private-core CMP 2x1 combined speedup %.3f below shared-core SMT 1x2 %.3f",
				p[0], p[1], cmp.CombinedSpeedup(), smt.CombinedSpeedup())
		}
		// A 2x1 machine is two of the paper's uniprocessors: each program
		// should run at essentially its solo rate (only L2/DRAM are
		// shared), so the pair must land near the perfect-SMP bound of 2.
		if cmp.CombinedSpeedup() < 1.5 {
			t.Errorf("%s+%s: CMP 2x1 combined speedup %.3f too far below the 2-way SMP bound",
				p[0], p[1], cmp.CombinedSpeedup())
		}
	}
}

// TestGeometryWideMachineConservation is the acceptance probe for the
// ≥4-context shapes: a multithreaded benchmark seated across a 2x2 and
// a 1x4 machine must complete with every cross-counter conservation law
// intact and all contexts actually retiring work.
func TestGeometryWideMachineConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, geo := range []core.Geometry{{Cores: 1, ContextsPerCore: 4}, {Cores: 2, ContextsPerCore: 2}} {
		b := mustBench(t, "MolDyn")
		res, err := Run(b, Options{Geometry: geo, Threads: geo.Total(), Scale: bench.Tiny, Verify: true})
		if err != nil {
			t.Fatalf("geo %v: %v", geo, err)
		}
		if err := res.Counters.CheckConservation(); err != nil {
			t.Errorf("geo %v: %v", geo, err)
		}
	}
}

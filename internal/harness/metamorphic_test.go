package harness

import (
	"math"
	"testing"

	"javasmt/internal/check"
	"javasmt/internal/core"
)

// Metamorphic tests: relations between experiment outcomes that must hold
// regardless of the absolute numbers the model produces. They catch whole
// classes of bugs (role asymmetry in the pairing protocol, state leaking
// across Reset, scheduler unfairness) that golden numbers cannot, because
// a golden file would simply be regenerated around them.

// skipIfChecks skips the most simulation-heavy protocol tests in the
// instrumented build: probes multiply simulation cost several-fold, and
// these tests validate protocol *relations*, not probe coverage — the
// probes run under the rest of the suite (including the cheaper
// metamorphic and golden tests, which stay enabled).
func skipIfChecks(t *testing.T) {
	t.Helper()
	if check.Enabled {
		t.Skip("instrumented (-tags checks) build: heavyweight protocol test skipped")
	}
}

// relErr is |a-b| / max(|a|,|b|).
func relErr(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// TestMetamorphicPairingSymmetry: RunPair(A,B) and RunPair(B,A) are the
// same physical experiment with the programs' logical contexts swapped.
// The machine is not perfectly symmetric under that swap (the two hardware
// contexts interleave differently, and context 0 boots first), so the
// paper reports *near*-perfect reflective symmetry rather than identity —
// but A's time in the (A,B) seating must closely match A's time in the
// (B,A) seating, and the combined speedup even more closely (measured
// worst case across these pairs: 4.5% on times, <2% on C_AB).
func TestMetamorphicPairingSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	pairs := [][2]string{
		{"compress", "mpegaudio"}, // small-footprint, cache-friendly
		{"jack", "javac"},         // trace-cache-hungry pair (paper's slowdown cluster)
		{"db", "jess"},            // memory-bound vs allocation-heavy
	}
	opts := DefaultPairOptions()
	opts.Runs = 2
	for _, p := range pairs {
		a, b := mustBench(t, p[0]), mustBench(t, p[1])
		ab, err := RunPair(a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := RunPair(b, a, opts)
		if err != nil {
			t.Fatal(err)
		}
		// Solo times are keyed by (benchmark, scale, runs) only, so the
		// swapped seating must observe the *identical* baselines.
		if ab.SoloA != ba.SoloB || ab.SoloB != ba.SoloA {
			t.Errorf("%s+%s: solo baselines changed under seating swap: (%v,%v) vs (%v,%v)",
				p[0], p[1], ab.SoloA, ab.SoloB, ba.SoloB, ba.SoloA)
		}
		if e := relErr(ab.TimeA, ba.TimeB); e > 0.08 {
			t.Errorf("%s+%s: %s's co-scheduled time differs %.1f%% between seatings (%v vs %v)",
				p[0], p[1], p[0], 100*e, ab.TimeA, ba.TimeB)
		}
		if e := relErr(ab.TimeB, ba.TimeA); e > 0.08 {
			t.Errorf("%s+%s: %s's co-scheduled time differs %.1f%% between seatings (%v vs %v)",
				p[0], p[1], p[1], 100*e, ab.TimeB, ba.TimeA)
		}
		if e := relErr(ab.CombinedSpeedup(), ba.CombinedSpeedup()); e > 0.05 {
			t.Errorf("%s+%s: combined speedup differs %.1f%% between seatings (%v vs %v)",
				p[0], p[1], 100*e, ab.CombinedSpeedup(), ba.CombinedSpeedup())
		}
	}
}

// TestMetamorphicSoloPairEquivalence: co-scheduling two programs on the
// HT-*off* machine is pure time-sharing of one pipeline, so the combined
// speedup C_AB = SoloA/TimeA + SoloB/TimeB cannot exceed 1 — each program
// gets at most its solo rate for its share of the cycles. Pairs whose
// working sets survive the process switches land near 1 (the two runs
// together take about as long as the two solo runs back to back); pairs
// that thrash each other's trace cache land well below. Either way the
// uniprocessor bound holds, which is exactly the "HT off equals the solo
// runs, no free lunch" equivalence.
func TestMetamorphicSoloPairEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := DefaultPairOptions()
	opts.Runs = 2
	cases := []struct {
		a, b string
		// minC is the pair-specific floor: small-footprint pairs must
		// time-share efficiently; thrashy pairs only need to stay positive.
		minC float64
	}{
		{"compress", "mpegaudio", 0.8},
		{"MolDyn", "RayTracer", 0.8},
		{"jack", "javac", 0.2},
	}
	for _, c := range cases {
		a, b := mustBench(t, c.a), mustBench(t, c.b)
		// runPairOn with an HT-off machine: two processes, one pipeline.
		res, err := runPairOn(core.New(cpuConfig(Options{})), a, b, opts)
		if err != nil {
			t.Fatal(err)
		}
		cab := res.CombinedSpeedup()
		if cab > 1.02 {
			t.Errorf("%s+%s: HT-off combined speedup %.3f exceeds the uniprocessor bound 1",
				c.a, c.b, cab)
		}
		if cab < c.minC {
			t.Errorf("%s+%s: HT-off combined speedup %.3f below %.2f — time-sharing lost too much",
				c.a, c.b, cab, c.minC)
		}
		if res.SpeedupA() > 1.02 || res.SpeedupB() > 1.02 {
			t.Errorf("%s+%s: a time-shared program ran faster than solo (%.3f, %.3f)",
				c.a, c.b, res.SpeedupA(), res.SpeedupB())
		}
	}

	// The simulator is deterministic: the same HT-off co-schedule twice
	// must be identical to the last counter.
	a, b := mustBench(t, "compress"), mustBench(t, "mpegaudio")
	r1, err := runPairOn(core.New(cpuConfig(Options{})), a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runPairOn(core.New(cpuConfig(Options{})), a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TimeA != r2.TimeA || r1.TimeB != r2.TimeB || r1.Counters != r2.Counters {
		t.Errorf("HT-off co-schedule not deterministic: (%v,%v) vs (%v,%v)",
			r1.TimeA, r1.TimeB, r2.TimeA, r2.TimeB)
	}
}

// TestMetamorphicResetGenerations: a machine that has already run a full
// pairing, once Reset, must reproduce a fresh machine's results bit for
// bit — the guarantee the pooled parallel engine rests on, probed here
// across several generations on one machine.
func TestMetamorphicResetGenerations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, b := mustBench(t, "jack"), mustBench(t, "mpegaudio")
	opts := DefaultPairOptions()
	opts.Runs = 2

	fresh, err := runPairOn(core.New(pairCPUConfig()), a, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	cpu := core.New(pairCPUConfig())
	for gen := 0; gen < 3; gen++ {
		cpu.Reset()
		got, err := runPairOn(cpu, a, b, opts)
		if err != nil {
			t.Fatalf("generation %d: %v", gen, err)
		}
		if got.TimeA != fresh.TimeA || got.TimeB != fresh.TimeB ||
			got.RunsA != fresh.RunsA || got.RunsB != fresh.RunsB ||
			got.Counters != fresh.Counters {
			t.Fatalf("generation %d diverges from fresh machine: times (%v,%v) vs (%v,%v)",
				gen, got.TimeA, got.TimeB, fresh.TimeA, fresh.TimeB)
		}
	}
}

// TestMetamorphicCrossProduct runs the paper's full 9x9 pairing cross
// product at the cheapest protocol setting and checks every relation at
// once: the rendered figure tables are byte-identical between -j 1 and
// -j 8 (scheduling independence over pooled, Reset-reused machines), the
// matrix is reflectively symmetric, every cell's counter file satisfies
// the conservation laws, and every combined speedup sits in the physical
// band (0, 2].
func TestMetamorphicCrossProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	skipIfChecks(t)
	cfg := DefaultConfig()
	cfg.Runs = 1

	cfg.Jobs = 1
	serial, err := RunPairings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 8
	parallel, err := RunPairings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cmp := range []struct {
		name           string
		serial, parall string
	}{
		{"Fig8", serial.Fig8(), parallel.Fig8()},
		{"Fig9", serial.Fig9(), parallel.Fig9()},
		{"Fig11", serial.Fig11(), parallel.Fig11()},
	} {
		if cmp.serial != cmp.parall {
			t.Errorf("%s diverges between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				cmp.name, cmp.serial, cmp.parall)
		}
	}

	n := len(serial.Names)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			res := serial.Results[i][j]
			if res == nil {
				t.Fatalf("cell %s+%s missing", serial.Names[i], serial.Names[j])
			}
			if serial.Combined[i][j] != serial.Combined[j][i] {
				t.Errorf("matrix not reflectively symmetric at %s+%s: %v vs %v",
					serial.Names[i], serial.Names[j], serial.Combined[i][j], serial.Combined[j][i])
			}
			if c := serial.Combined[i][j]; c <= 0 || c > 2 {
				t.Errorf("%s+%s: combined speedup %.3f outside (0, 2]",
					serial.Names[i], serial.Names[j], c)
			}
			if j < i {
				continue // mirrored cell shares the (i,j) counter file
			}
			if err := res.Counters.CheckConservation(); err != nil {
				t.Errorf("%s+%s: %v", serial.Names[i], serial.Names[j], err)
			}
		}
	}
}

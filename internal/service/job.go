package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"javasmt/internal/harness"
	"javasmt/internal/resilience"
	"javasmt/internal/simos"
)

// JobState is a job's lifecycle state. Running covers queued and
// executing cells alike (cells start flowing the moment a job is
// admitted); the other three are terminal and persisted to the job
// directory, so a restarted daemon never re-runs a finished, canceled
// or broken job.
type JobState string

const (
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateCanceled JobState = "canceled"
	// StateFailed is a campaign-level fault — the job's ledger broke —
	// not a cell failure; failed cells leave the job in StateDone with
	// a nonzero failed-cell count, like a degraded CLI campaign.
	StateFailed JobState = "failed"
)

// CellResult is one streamed cell outcome: the NDJSON line
// GET /jobs/{id}/results emits as each cell completes.
type CellResult struct {
	Cell   string `json:"cell"`
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	// Cached marks a result served from the daemon's digest cache
	// instead of simulation (its bytes are identical either way).
	Cached  bool            `json:"cached,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// JobStatus is the GET /jobs/{id} view of a job.
type JobStatus struct {
	ID        string   `json:"id"`
	Kind      string   `json:"kind"`
	State     JobState `json:"state"`
	Total     int      `json:"total"`
	Completed int      `json:"completed"`
	OK        int      `json:"ok"`
	Failed    int      `json:"failed"`
	Cached    int      `json:"cached"`
	// Resumed counts cells recovered from the ledger at daemon restart.
	Resumed int    `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// stateFile is the terminal-state marker inside a job directory; its
// absence means the job was still running when the daemon last died,
// and the next daemon resumes it from the ledger.
const stateFile = "state.json"

type persistedState struct {
	State  JobState `json:"state"`
	Reason string   `json:"reason,omitempty"`
}

// Job is one admitted campaign: its resolved spec, enumerated cells,
// per-job ledger, and live progress. Workers call runOne concurrently;
// everything mutable is behind mu.
type Job struct {
	id     string
	dir    string
	plan   *plan
	config string
	cells  []harness.CellSpec
	cfg    harness.Config
	ledger *resilience.Journal
	cache  *Cache
	disp   *dispatcher

	// stop is the job's cancellation signal, wired into every cell's
	// resilience policy (CellPolicy.Stop): closing it aborts running
	// attempts from inside their cycle loops and skips retry waits.
	stop     chan struct{}
	stopOnce sync.Once
	timer    *time.Timer

	mu      sync.Mutex
	state   JobState
	reason  string
	results []CellResult
	okCells int
	failed  int
	cached  int
	resumed int
	subs    []chan CellResult
	doneCh  chan struct{} // closed on any terminal transition
}

// newJob builds a Job from a resolved plan and an open ledger.
func newJob(id, dir string, p *plan, ledger *resilience.Journal, cache *Cache, disp *dispatcher) *Job {
	jb := &Job{
		id: id, dir: dir, plan: p, config: p.configString(),
		cells: p.cells(), ledger: ledger, cache: cache, disp: disp,
		stop:    make(chan struct{}),
		state:   StateRunning,
		resumed: ledger.Resumed(),
		doneCh:  make(chan struct{}),
	}
	jb.cfg = harness.Config{
		Scale:     p.scale,
		Jobs:      1,
		Runs:      p.runs,
		MaxCycles: harness.DefaultConfig().MaxCycles,
		Policy: resilience.CellPolicy{
			WallDeadline: p.cellDL,
			CycleBudget:  p.spec.CycleBudget,
			Retries:      p.spec.Retries,
			Stop:         jb.stop,
		},
		Journal:     ledger,
		Plan:        p.simPlan,
		SchedPolicy: p.spec.SchedPolicy,
		SchedParams: simos.Params{Timeslice: p.spec.Timeslice},
	}
	if p.jobDL > 0 {
		jb.timer = time.AfterFunc(p.jobDL, func() {
			jb.cancel(fmt.Sprintf("job deadline %v exceeded", p.jobDL))
		})
	}
	return jb
}

// runOne executes one cell on a dispatcher worker: ledger first (a
// recorded cell replays for free), then the cross-job digest cache,
// then real simulation under the job's full resilience stack.
func (jb *Job) runOne(i int) {
	if jb.terminal() {
		return
	}
	spec := jb.cells[i]
	if _, ok := jb.ledger.Lookup(spec.Label); !ok {
		if payload, hit := jb.cache.Get(jb.config, spec.Label); hit {
			// Record the cached bytes into this job's ledger so the
			// ledger stays the complete record of the job — identical
			// to what simulating would have written.
			if err := jb.ledger.Record(spec.Label, resilience.StatusOK, "", payload); err != nil {
				jb.fail(err)
				return
			}
			jb.finish(CellResult{Cell: spec.Label, Status: resilience.StatusOK, Cached: true, Payload: payload})
			return
		}
	}
	out, err := spec.Run(jb.cfg)
	if err != nil {
		jb.fail(err)
		return
	}
	if out.Fail != nil {
		jb.finish(CellResult{Cell: spec.Label, Status: resilience.StatusFailed, Reason: out.Fail.Reason()})
		return
	}
	jb.cache.Put(jb.config, spec.Label, out.Payload)
	jb.finish(CellResult{Cell: spec.Label, Status: resilience.StatusOK, Payload: out.Payload})
}

// finish records one completed cell, streams it to subscribers, and
// closes the job when it was the last.
func (jb *Job) finish(res CellResult) {
	jb.mu.Lock()
	jb.results = append(jb.results, res)
	switch {
	case res.Status == resilience.StatusFailed:
		jb.failed++
	case res.Cached:
		jb.cached++
		jb.okCells++
	default:
		jb.okCells++
	}
	if jb.state == StateRunning {
		for _, ch := range jb.subs {
			ch <- res // buffered to the job's cell count; never blocks
		}
		if len(jb.results) == len(jb.cells) {
			jb.terminalLocked(StateDone, "")
		}
	}
	jb.mu.Unlock()
}

// cancel cancels the job: pending cells are dropped from the
// dispatcher, running cells are aborted through the Stop channel, and
// the job goes terminal immediately.
func (jb *Job) cancel(reason string) {
	jb.stopOnce.Do(func() { close(jb.stop) })
	jb.disp.drop(jb)
	jb.mu.Lock()
	if jb.state == StateRunning {
		jb.terminalLocked(StateCanceled, reason)
	}
	jb.mu.Unlock()
}

// fail marks a campaign-level fault (broken ledger): the job cannot
// make progress and goes terminal with the error recorded.
func (jb *Job) fail(err error) {
	jb.stopOnce.Do(func() { close(jb.stop) })
	jb.disp.drop(jb)
	jb.mu.Lock()
	if jb.state == StateRunning {
		jb.terminalLocked(StateFailed, err.Error())
	}
	jb.mu.Unlock()
}

// terminalLocked transitions to a terminal state: persists the marker,
// closes subscriber streams and the done channel, stops the deadline
// timer. Caller holds mu.
func (jb *Job) terminalLocked(state JobState, reason string) {
	jb.state, jb.reason = state, reason
	for _, ch := range jb.subs {
		close(ch)
	}
	jb.subs = nil
	close(jb.doneCh)
	if jb.timer != nil {
		jb.timer.Stop()
	}
	data, err := json.Marshal(persistedState{State: state, Reason: reason})
	if err == nil {
		err = os.WriteFile(filepath.Join(jb.dir, stateFile), append(data, '\n'), 0o644)
	}
	if err != nil && jb.state != StateFailed {
		// A job whose terminal marker cannot be written will be resumed
		// (done) or re-run (canceled) by the next daemon; record the
		// degradation but keep the in-memory state authoritative.
		jb.reason = fmt.Sprintf("%s (terminal marker not persisted: %v)", reason, err)
	}
}

// terminal reports whether the job has reached a terminal state.
func (jb *Job) terminal() bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return jb.state != StateRunning
}

// status snapshots the job for the API.
func (jb *Job) status() JobStatus {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	return JobStatus{
		ID:        jb.id,
		Kind:      jb.plan.spec.Kind,
		State:     jb.state,
		Total:     len(jb.cells),
		Completed: len(jb.results),
		OK:        jb.okCells,
		Failed:    jb.failed,
		Cached:    jb.cached,
		Resumed:   jb.resumed,
		Error:     jb.reason,
	}
}

// subscribe returns the results so far plus, for a still-running job,
// a channel of the rest. The channel is buffered to the job's full
// cell count so finish never blocks on a slow reader, and is closed
// when the job goes terminal.
func (jb *Job) subscribe() ([]CellResult, <-chan CellResult) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	replay := append([]CellResult(nil), jb.results...)
	if jb.state != StateRunning {
		return replay, nil
	}
	ch := make(chan CellResult, len(jb.cells))
	jb.subs = append(jb.subs, ch)
	return replay, ch
}

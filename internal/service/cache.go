package service

import "sync"

// Cache is the in-process result cache: completed cell payloads keyed
// by the FNV-64a digest of (campaign config, cell label). A
// re-submitted identical campaign is served from here without
// re-simulating — each hit is recorded into the new job's ledger as
// the exact payload bytes the original run journaled, so a cached job's
// ledger is indistinguishable from a simulated one.
//
// The cache lives for the daemon process; restarts rebuild it from the
// ledgers of the jobs they recover. Entries keep the full key string
// alongside the digest, so a digest collision degrades to a miss
// rather than serving the wrong cell's result.
type Cache struct {
	mu      sync.Mutex
	entries map[uint64]cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	key     string
	payload []byte
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[uint64]cacheEntry{}}
}

// Get returns the cached payload for the cell under the campaign
// config, if present.
func (c *Cache) Get(config, cell string) ([]byte, bool) {
	k := config + "\x00" + cell
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cellDigest(config, cell)]
	if !ok || e.key != k {
		c.misses++
		return nil, false
	}
	c.hits++
	return e.payload, true
}

// Put stores a completed cell's payload. Failed cells are never cached
// (the fault may be environmental); callers enforce that by only
// passing OK payloads.
func (c *Cache) Put(config, cell string, payload []byte) {
	k := config + "\x00" + cell
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[cellDigest(config, cell)] = cacheEntry{key: k, payload: payload}
}

// Stats returns lifetime hit/miss counts and the entry count.
func (c *Cache) Stats() (hits, misses, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// Package service is the campaign server behind cmd/javasmtd: a
// long-running daemon that accepts experiment-campaign specs over
// HTTP/JSON, shards their cells across a bounded worker pool, journals
// every outcome to a per-job ledger (the same JSONL journal the CLI
// campaigns write, so a killed daemon resumes every in-flight job
// byte-identically on restart), and serves results as they complete.
package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/core"
	"javasmt/internal/harness"
	"javasmt/internal/sampling"
)

// JobSpec is one submitted campaign: which experiment grid to run and
// under what simulation and resilience configuration. The zero value
// of every optional field selects the CLI tools' defaults, so a spec
// naming only a kind runs the same campaign `report`/`sweep` would.
type JobSpec struct {
	// Kind selects the campaign type: characterization, pairings,
	// fig10, fig12, sweep, geometry or policy.
	Kind string `json:"kind"`
	// Benchmarks narrows the benchmark set (pairings, sweep, geometry);
	// empty selects each kind's full default set.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Threads is the thread-count axis for fig12 and sweep grids.
	Threads []int `json:"threads,omitempty"`
	// Geometries is the machine-shape axis ("1x2,2x2") for geometry and
	// policy grids.
	Geometries []string `json:"geometries,omitempty"`
	// Policies is the seating-policy axis of a policy sweep.
	Policies []string `json:"policies,omitempty"`
	// Mixes lists server-mix sizes (total software threads) for a
	// policy sweep; each becomes harness.ServerMix(n).
	Mixes []int `json:"mixes,omitempty"`
	// Scale is the input scale: tiny (default), small or medium.
	Scale string `json:"scale,omitempty"`
	// Runs is the pairing-protocol depth (completed runs per program).
	Runs int `json:"runs,omitempty"`
	// SimMode selects full (default) or sampled simulation.
	SimMode string `json:"sim_mode,omitempty"`
	// SchedPolicy and Timeslice configure the simulated OS scheduler,
	// as the CLI -policy/-timeslice flags do.
	SchedPolicy string `json:"sched_policy,omitempty"`
	Timeslice   uint64 `json:"timeslice,omitempty"`
	// CycleBudget bounds each cell in simulated cycles (0 = none).
	CycleBudget uint64 `json:"cycle_budget,omitempty"`
	// CellDeadline is the per-cell wall-clock deadline as a Go duration
	// string ("30s"); empty means none.
	CellDeadline string `json:"cell_deadline,omitempty"`
	// Retries is how many times a transiently failed cell is retried.
	Retries int `json:"retries,omitempty"`
	// JobDeadline is the whole job's wall-clock deadline as a Go
	// duration string; the job is canceled when it expires.
	JobDeadline string `json:"job_deadline,omitempty"`
}

// specKinds lists the accepted Kind values.
var specKinds = []string{"characterization", "pairings", "fig10", "fig12", "sweep", "geometry", "policy"}

// plan is the resolved, validated form of a JobSpec: everything a job
// needs to enumerate cells and build its harness configuration.
type plan struct {
	spec       JobSpec
	scale      bench.Scale
	runs       int
	benchmarks []*bench.Benchmark
	threads    []int
	geos       []core.Geometry
	policies   []string
	mixes      []harness.Mix
	simPlan    sampling.Plan
	cellDL     time.Duration
	jobDL      time.Duration
}

// resolve validates the spec and fills in defaults.
func resolve(spec JobSpec) (*plan, error) {
	p := &plan{spec: spec, runs: spec.Runs}
	ok := false
	for _, k := range specKinds {
		if spec.Kind == k {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("unknown kind %q (want %s)", spec.Kind, strings.Join(specKinds, "|"))
	}

	scaleStr := spec.Scale
	if scaleStr == "" {
		scaleStr = "tiny"
	}
	scale, err := cli.ParseScale(scaleStr)
	if err != nil {
		return nil, err
	}
	p.scale = scale
	if p.runs == 0 {
		p.runs = harness.DefaultConfig().Runs
	}
	if p.runs < 1 {
		return nil, fmt.Errorf("runs %d must be positive", spec.Runs)
	}
	if spec.Retries < 0 {
		return nil, fmt.Errorf("retries %d is negative", spec.Retries)
	}

	for _, name := range spec.Benchmarks {
		b, found := bench.ByName(name)
		if !found {
			return nil, fmt.Errorf("unknown benchmark %q", name)
		}
		p.benchmarks = append(p.benchmarks, b)
	}
	p.threads = spec.Threads
	for _, t := range p.threads {
		if t < 1 {
			return nil, fmt.Errorf("thread count %d must be positive", t)
		}
	}
	if len(spec.Geometries) > 0 {
		p.geos, err = cli.ParseGeometries(strings.Join(spec.Geometries, ","))
		if err != nil {
			return nil, err
		}
	}
	p.policies = spec.Policies
	for _, n := range spec.Mixes {
		if n < 1 {
			return nil, fmt.Errorf("mix size %d must be positive", n)
		}
		p.mixes = append(p.mixes, harness.ServerMix(n))
	}

	p.simPlan = sampling.FullPlan()
	switch spec.SimMode {
	case "", "full":
	case "sampled":
		p.simPlan = sampling.DefaultSampledPlan()
	default:
		return nil, fmt.Errorf("unknown sim_mode %q (want full|sampled)", spec.SimMode)
	}
	if spec.CellDeadline != "" {
		if p.cellDL, err = time.ParseDuration(spec.CellDeadline); err != nil || p.cellDL < 0 {
			return nil, fmt.Errorf("bad cell_deadline %q", spec.CellDeadline)
		}
	}
	if spec.JobDeadline != "" {
		if p.jobDL, err = time.ParseDuration(spec.JobDeadline); err != nil || p.jobDL <= 0 {
			return nil, fmt.Errorf("bad job_deadline %q", spec.JobDeadline)
		}
	}

	// Kind-specific axis defaults and requirements.
	switch spec.Kind {
	case "pairings":
		if len(p.benchmarks) == 0 {
			p.benchmarks = bench.SingleThreaded()
		}
	case "sweep":
		if len(p.benchmarks) == 0 {
			p.benchmarks = bench.All()
		}
		if len(p.threads) == 0 {
			p.threads = []int{1, 2}
		}
	case "fig12":
		if len(p.threads) == 0 {
			p.threads = []int{1, 2, 4, 8}
		}
	case "geometry":
		if len(p.benchmarks) == 0 {
			p.benchmarks = bench.All()
		}
		if len(p.geos) == 0 {
			return nil, fmt.Errorf("kind geometry needs geometries")
		}
	case "policy":
		if len(p.policies) == 0 || len(p.mixes) == 0 || len(p.geos) == 0 {
			return nil, fmt.Errorf("kind policy needs policies, mixes and geometries")
		}
	}
	return p, nil
}

// cells enumerates the campaign's cell specs through the harness's
// shared enumerators — the same cells, same labels, same payloads a
// one-shot CLI campaign of this spec produces.
func (p *plan) cells() []harness.CellSpec {
	switch p.spec.Kind {
	case "characterization":
		return harness.CharacterizationCellSpecs()
	case "pairings":
		return harness.PairingCellSpecs(p.benchmarks)
	case "fig10":
		return harness.Fig10CellSpecs()
	case "fig12":
		return harness.Fig12CellSpecs(p.threads)
	case "sweep":
		return harness.SweepCellSpecs(p.benchmarks, p.threads)
	case "geometry":
		return harness.GeometryCellSpecs(p.benchmarks, p.geos)
	case "policy":
		return harness.PolicyCellSpecs(p.policies, p.mixes, p.geos)
	}
	return nil
}

// configString is the canonical simulation-relevant configuration of
// the campaign: it becomes the ledger's Meta.Config (so a restarted
// daemon refuses to resume a job whose spec file was tampered into a
// different campaign) and, joined with a cell label, the result-cache
// digest. Execution-only knobs — deadlines, retries, the job deadline —
// are deliberately absent: they shape how cells run, not what a
// completed cell's bytes are.
func (p *plan) configString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind=%s scale=%v", p.spec.Kind, p.scale)
	if len(p.benchmarks) > 0 {
		names := make([]string, len(p.benchmarks))
		for i, b := range p.benchmarks {
			names[i] = b.Name
		}
		fmt.Fprintf(&sb, " benches=%s", strings.Join(names, ","))
	}
	if len(p.threads) > 0 {
		fmt.Fprintf(&sb, " threads=%v", p.threads)
	}
	if len(p.geos) > 0 {
		geos := make([]string, len(p.geos))
		for i, g := range p.geos {
			geos[i] = fmt.Sprintf("%v", g)
		}
		fmt.Fprintf(&sb, " geos=%s", strings.Join(geos, ","))
	}
	if len(p.policies) > 0 {
		fmt.Fprintf(&sb, " policies=%s", strings.Join(p.policies, ","))
	}
	if len(p.mixes) > 0 {
		fmt.Fprintf(&sb, " mixes=%v", p.spec.Mixes)
	}
	if p.spec.Kind == "pairings" {
		fmt.Fprintf(&sb, " runs=%d", p.runs)
	}
	if p.spec.CycleBudget > 0 {
		fmt.Fprintf(&sb, " cycle-budget=%d", p.spec.CycleBudget)
	}
	sb.WriteString(p.simPlan.Tag())
	if p.spec.SchedPolicy != "" {
		sb.WriteString(" policy=" + p.spec.SchedPolicy)
	}
	if p.spec.Timeslice != 0 {
		fmt.Fprintf(&sb, " timeslice=%d", p.spec.Timeslice)
	}
	return sb.String()
}

// cellDigest is the result-cache key of one cell under one campaign
// configuration: FNV-64a over (configString, cell label).
func cellDigest(config, cell string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(config))
	h.Write([]byte{0})
	h.Write([]byte(cell))
	return h.Sum64()
}

// canonicalSpec re-marshals the spec with sorted keys for spec.json;
// encoding/json already sorts struct fields by declaration, so this is
// a plain indent-marshal kept in one place.
func canonicalSpec(spec JobSpec) ([]byte, error) {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"javasmt/internal/resilience"
)

// Config configures the campaign server.
type Config struct {
	// DataDir is the daemon's state root; each job lives in
	// DataDir/jobs/<id>/ (spec.json + ledger + terminal marker).
	DataDir string
	// Workers bounds how many cells simulate concurrently (min 1).
	Workers int
	// MaxQueuedCells bounds the total pending cells across all jobs;
	// a submission that would exceed it is rejected with 429. 0 = no
	// bound.
	MaxQueuedCells int
	// MaxJobs bounds concurrently active (non-terminal) jobs; 0 = no
	// bound.
	MaxJobs int
	// JournalSync fsyncs every ledger append (resilience.WithSync).
	JournalSync bool
	// Logf receives one line per lifecycle event; nil disables logging.
	Logf func(format string, args ...any)
}

// Server owns the dispatcher, the digest cache and the job table. It
// is constructed with New (which also recovers jobs a previous daemon
// left unfinished) and exposed over HTTP via Handler.
type Server struct {
	cfg   Config
	disp  *dispatcher
	cache *Cache

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int
	draining bool
}

// New builds the server, starts its workers, and recovers every job
// found under DataDir: terminal jobs load read-only, interrupted ones
// resume from their ledgers (re-simulating only cells the ledger does
// not hold).
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:   cfg,
		disp:  newDispatcher(cfg.Workers, cfg.MaxQueuedCells),
		cache: NewCache(),
		jobs:  map[string]*Job{},
	}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) jobsDir() string { return filepath.Join(s.cfg.DataDir, "jobs") }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ledgerOptions builds the resilience options every job ledger opens
// with.
func (s *Server) ledgerOptions() []resilience.Option {
	if s.cfg.JournalSync {
		return []resilience.Option{resilience.WithSync()}
	}
	return nil
}

// recover scans the jobs directory and reloads every job: jobs with a
// terminal marker come back read-only (results replayable from their
// ledgers); the rest re-enter the dispatcher, where ledgered cells
// replay instantly and only genuinely unfinished cells simulate. A
// ledger torn mid-append by kill -9 is truncated to its valid prefix
// by resilience.Open, so the resumed run continues from exactly the
// cells that fully committed.
func (s *Server) recover() error {
	dirs, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	var ids []string
	for _, d := range dirs {
		if d.IsDir() {
			ids = append(ids, d.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := s.recoverJob(id); err != nil {
			// A damaged job directory must not take the daemon down
			// with it — log and keep recovering the rest.
			s.logf("job %s: not recovered: %v", id, err)
			continue
		}
		if n := jobSeq(id); n > s.seq {
			s.seq = n
		}
	}
	return nil
}

// jobSeq extracts the numeric part of a job ID ("j0007" → 7); 0 for
// foreign names.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// recoverJob reloads one job directory.
func (s *Server) recoverJob(id string) error {
	dir := filepath.Join(s.jobsDir(), id)
	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return err
	}
	var spec JobSpec
	if err := json.Unmarshal(specData, &spec); err != nil {
		return fmt.Errorf("spec.json: %w", err)
	}
	p, err := resolve(spec)
	if err != nil {
		return err
	}
	meta := resilience.Meta{Tool: "javasmtd", Config: p.configString()}

	var st persistedState
	if data, err := os.ReadFile(filepath.Join(dir, stateFile)); err == nil {
		if err := json.Unmarshal(data, &st); err != nil {
			return fmt.Errorf("%s: %w", stateFile, err)
		}
	}

	// The daemon may have died between writing spec.json and opening
	// the ledger; a job with no meta.json starts fresh.
	resume := true
	if _, err := os.Stat(filepath.Join(dir, "meta.json")); errors.Is(err, os.ErrNotExist) {
		resume = false
	}
	ledger, err := resilience.Open(dir, meta, resume, s.ledgerOptions()...)
	if err != nil {
		return err
	}
	jb := newJob(id, dir, p, ledger, s.cache, s.disp)
	s.seedCache(jb)

	if st.State != "" && st.State != StateRunning {
		// Terminal before the crash: restore the state and the ledgered
		// results read-only; nothing re-runs.
		loadResults(jb)
		jb.mu.Lock()
		jb.state, jb.reason = st.State, st.Reason
		close(jb.doneCh)
		if jb.timer != nil {
			jb.timer.Stop()
		}
		jb.mu.Unlock()
		ledger.Close()
	} else if !s.disp.submit(jb, len(jb.cells)) {
		return fmt.Errorf("queue full while recovering")
	}
	// A resumed job's cells all re-enter the dispatcher: the ledgered
	// ones replay from the journal in microseconds (runCell's lookup
	// path) and flow through finish like any other completion, so
	// progress counting and the done transition need no resume-specific
	// arithmetic.
	s.jobs[id] = jb
	s.order = append(s.order, id)
	s.logf("job %s: recovered (%s, %d/%d cells in ledger)", id, jb.status().State, jb.resumed, len(jb.cells))
	return nil
}

// seedCache loads a recovered job's completed payloads into the digest
// cache, so an identical campaign submitted after the restart is
// served without simulating.
func (s *Server) seedCache(jb *Job) {
	for _, c := range jb.cells {
		if e, ok := jb.ledger.Lookup(c.Label); ok && e.Status == resilience.StatusOK {
			s.cache.Put(jb.config, e.Cell, e.Payload)
		}
	}
}

// loadResults rebuilds a terminal job's results list from its ledger,
// in cell order, for replay over the results endpoint.
func loadResults(jb *Job) {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	for _, c := range jb.cells {
		e, ok := jb.ledger.Lookup(c.Label)
		if !ok {
			continue
		}
		jb.results = append(jb.results, CellResult{Cell: e.Cell, Status: e.Status, Reason: e.Reason, Payload: e.Payload})
		if e.Status == resilience.StatusOK {
			jb.okCells++
		} else {
			jb.failed++
		}
	}
}

// Submit admits a campaign: validates the spec, persists it, opens the
// job's ledger and enqueues its cells. A queue-full rejection returns
// errBusy; validation problems return errBadSpec.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	p, err := resolve(spec)
	if err != nil {
		return nil, &specError{err}
	}
	cells := p.cells()
	if len(cells) == 0 {
		return nil, &specError{fmt.Errorf("campaign has no cells")}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errDraining
	}
	if s.cfg.MaxJobs > 0 && s.activeLocked() >= s.cfg.MaxJobs {
		s.mu.Unlock()
		return nil, errBusy
	}
	s.seq++
	id := fmt.Sprintf("j%04d", s.seq)
	s.mu.Unlock()

	dir := filepath.Join(s.jobsDir(), id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	specData, err := canonicalSpec(spec)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), specData, 0o644); err != nil {
		return nil, err
	}
	ledger, err := resilience.Open(dir, resilience.Meta{Tool: "javasmtd", Config: p.configString()}, false, s.ledgerOptions()...)
	if err != nil {
		return nil, err
	}
	jb := newJob(id, dir, p, ledger, s.cache, s.disp)
	if !s.disp.submit(jb, len(jb.cells)) {
		// Admission refused: undo the directory so the rejected job
		// leaves no trace to recover.
		ledger.Close()
		os.RemoveAll(dir)
		return nil, errBusy
	}
	s.mu.Lock()
	s.jobs[id] = jb
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.logf("job %s: admitted (%s, %d cells)", id, spec.Kind, len(cells))
	return jb, nil
}

// activeLocked counts non-terminal jobs; caller holds s.mu.
func (s *Server) activeLocked() int {
	n := 0
	for _, jb := range s.jobs {
		if !jb.terminal() {
			n++
		}
	}
	return n
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	return jb, ok
}

// Jobs returns all jobs' statuses in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Drain gracefully stops the server: new submissions are refused,
// in-flight cells finish and commit to their ledgers, queued cells are
// left for the next daemon to resume. Call before process exit on
// SIGTERM.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.disp.drain()
	s.logf("drained: in-flight cells committed, %d jobs still resumable", s.unfinished())
}

// unfinished counts non-terminal jobs.
func (s *Server) unfinished() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeLocked()
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	errBusy     = errors.New("service: at capacity")
	errDraining = errors.New("service: draining, not accepting jobs")
)

// specError wraps a spec-validation error (HTTP 400).
type specError struct{ err error }

func (e *specError) Error() string { return e.err.Error() }

// Handler returns the HTTP API:
//
//	POST   /jobs              submit a campaign spec, 202 + status
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/results stream results as NDJSON (replay + live)
//	DELETE /jobs/{id}         cancel a job
//	GET    /healthz           liveness + queue depth
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"queued_cells": s.disp.pending(),
		"active_jobs":  s.unfinished(),
		"cache":        map[string]int{"hits": hits, "misses": misses, "entries": size},
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	jb, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, jb.status())
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		var se *specError
		if errors.As(err, &se) {
			writeError(w, http.StatusBadRequest, "%v", se)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	jb.cancel("canceled by client")
	s.logf("job %s: canceled by client", jb.id)
	writeJSON(w, http.StatusOK, jb.status())
}

// handleResults streams a job's cell results as NDJSON: everything
// completed so far, then live results as workers finish them, until
// the job goes terminal or the client disconnects.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	jb, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	replay, live := jb.subscribe()
	for _, res := range replay {
		enc.Encode(res)
	}
	if flusher != nil {
		flusher.Flush()
	}
	if live == nil {
		return
	}
	for {
		select {
		case res, open := <-live:
			if !open {
				return
			}
			enc.Encode(res)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

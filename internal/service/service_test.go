package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"javasmt/internal/resilience"
)

// smallSweep is the test campaign: three single-threaded benchmarks at
// one thread each — three quick cells with deterministic payloads.
func smallSweep() JobSpec {
	return JobSpec{Kind: "sweep", Benchmarks: []string{"compress", "db", "jess"}, Threads: []int{1}}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

func waitDone(t *testing.T, jb *Job) JobStatus {
	t.Helper()
	select {
	case <-jb.doneCh:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish: %+v", jb.id, jb.status())
	}
	return jb.status()
}

func readLedger(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sortLines order-normalizes a ledger: workers interleave cell
// completions differently across runs, but the set of lines must be
// byte-identical.
func sortLines(data []byte) []byte {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	sort.Strings(lines)
	return []byte(strings.Join(lines, "\n") + "\n")
}

func TestSubmitRunsCampaignToDone(t *testing.T) {
	s := newTestServer(t, Config{})
	jb, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, jb)
	if st.State != StateDone || st.Total != 3 || st.OK != 3 || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}
	entries, _, err := resilience.Parse(readLedger(t, jb.dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ledger holds %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		if e.Status != resilience.StatusOK || len(e.Payload) == 0 {
			t.Fatalf("entry %+v not an OK payload", e)
		}
	}
	// The terminal marker must exist so a restart loads the job
	// read-only instead of resubmitting it.
	if _, err := os.Stat(filepath.Join(jb.dir, stateFile)); err != nil {
		t.Fatalf("terminal marker: %v", err)
	}
}

// TestResubmitServedFromCache re-submits an identical campaign and
// checks every cell is served from the digest cache — and that the
// cached job's ledger is byte-identical to the simulated one.
func TestResubmitServedFromCache(t *testing.T) {
	s := newTestServer(t, Config{})
	first, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)

	second, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, second)
	if st.State != StateDone || st.OK != 3 {
		t.Fatalf("status = %+v", st)
	}
	if st.Cached != 3 {
		t.Fatalf("cached = %d, want all 3 cells from cache", st.Cached)
	}
	a := sortLines(readLedger(t, first.dir))
	b := sortLines(readLedger(t, second.dir))
	if !bytes.Equal(a, b) {
		t.Fatalf("cached ledger differs from simulated ledger:\n%s\n---\n%s", a, b)
	}
	// A different campaign configuration must not hit the cache.
	third, err := s.Submit(JobSpec{Kind: "sweep", Benchmarks: []string{"compress"}, Threads: []int{1}, SimMode: "sampled"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, third); st.Cached != 0 {
		t.Fatalf("sampled-mode job hit the full-mode cache: %+v", st)
	}
}

// TestRecoveryResumesTornLedger is the crash-recovery contract: a job
// directory with a partial ledger — last line torn mid-append, as
// kill -9 leaves it — resumes to completion, and the resumed ledger's
// lines are byte-identical to an uninterrupted run's.
func TestRecoveryResumesTornLedger(t *testing.T) {
	// Reference: an uninterrupted run of the same campaign.
	ref := newTestServer(t, Config{})
	refJob, err := ref.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, refJob)
	refLedger := readLedger(t, refJob.dir)
	refLines := strings.SplitAfter(strings.TrimRight(string(refLedger), "\n"), "\n")
	if len(refLines) != 3 {
		t.Fatalf("reference ledger has %d lines", len(refLines))
	}

	// Hand-build a crashed daemon's state: spec + meta intact, ledger
	// holding one committed cell plus a torn tail, no terminal marker.
	dataDir := t.TempDir()
	dir := filepath.Join(dataDir, "jobs", "j0001")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"spec.json", "meta.json"} {
		data, err := os.ReadFile(filepath.Join(refJob.dir, f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, f), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	torn := refLines[0] + refLines[1][:len(refLines[1])/2]
	if err := os.WriteFile(filepath.Join(dir, "journal.jsonl"), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{DataDir: dataDir})
	jb, ok := s.Job("j0001")
	if !ok {
		t.Fatal("crashed job not recovered")
	}
	st := waitDone(t, jb)
	if st.State != StateDone || st.OK != 3 || st.Failed != 0 {
		t.Fatalf("resumed status = %+v", st)
	}
	if st.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1 (the committed cell; the torn one re-runs)", st.Resumed)
	}
	if !bytes.Equal(sortLines(readLedger(t, jb.dir)), sortLines(refLedger)) {
		t.Fatalf("resumed ledger differs from uninterrupted reference:\n%s\n---\n%s",
			readLedger(t, jb.dir), refLedger)
	}
	// New job IDs must not collide with the recovered one.
	next, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if next.id == "j0001" {
		t.Fatal("recovered job ID reused")
	}
	waitDone(t, next)
}

// TestRecoveryRestoresTerminalJobs restarts a server over a data
// directory whose job already finished: the job must come back done,
// with results replayable, without re-running anything — and its
// payloads must seed the new daemon's cache.
func TestRecoveryRestoresTerminalJobs(t *testing.T) {
	dataDir := t.TempDir()
	s1 := newTestServer(t, Config{DataDir: dataDir})
	jb1, err := s1.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jb1)
	s1.Drain()

	s2 := newTestServer(t, Config{DataDir: dataDir})
	jb2, ok := s2.Job(jb1.id)
	if !ok {
		t.Fatal("finished job not loaded after restart")
	}
	st := jb2.status()
	if st.State != StateDone || st.Completed != 3 || st.OK != 3 {
		t.Fatalf("restored status = %+v", st)
	}
	replay, live := jb2.subscribe()
	if len(replay) != 3 || live != nil {
		t.Fatalf("subscribe on restored job: %d results, live=%v", len(replay), live != nil)
	}
	resub, err := s2.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, resub); st.Cached != 3 {
		t.Fatalf("restart lost the cache seed: %+v", st)
	}
}

// TestAdmissionControl fills the job bound and checks the next
// submission is refused with errBusy while the admitted job still
// completes.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	jb, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(smallSweep()); !errors.Is(err, errBusy) {
		t.Fatalf("over-bound submit returned %v, want errBusy", err)
	}
	if st := waitDone(t, jb); st.State != StateDone {
		t.Fatalf("admitted job degraded by rejected one: %+v", st)
	}
	// Capacity freed: the same spec is admitted now (and cache-served).
	again, err := s.Submit(smallSweep())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, again)
}

func TestCancel(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// characterization has enough cells that cancellation lands while
	// most are still queued.
	jb, err := s.Submit(JobSpec{Kind: "characterization"})
	if err != nil {
		t.Fatal(err)
	}
	jb.cancel("test cancel")
	st := waitDone(t, jb)
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if st.Completed == st.Total {
		t.Fatal("cancel ran the whole campaign anyway")
	}
	// The terminal marker persists the cancellation across restarts.
	data, err := os.ReadFile(filepath.Join(jb.dir, stateFile))
	if err != nil {
		t.Fatal(err)
	}
	var ps persistedState
	if err := json.Unmarshal(data, &ps); err != nil {
		t.Fatal(err)
	}
	if ps.State != StateCanceled {
		t.Fatalf("persisted state = %+v", ps)
	}
}

func TestDrainRefusesSubmissions(t *testing.T) {
	s := newTestServer(t, Config{})
	s.Drain()
	if _, err := s.Submit(smallSweep()); !errors.Is(err, errDraining) {
		t.Fatalf("submit during drain returned %v, want errDraining", err)
	}
}

// TestHTTPAPI drives the full HTTP surface: submit, status, list,
// NDJSON results, cancel, and the error paths.
func TestHTTPAPI(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Bad specs are 400 with a JSON error body.
	for _, body := range []string{
		"{not json",
		`{"kind":"frobnicate"}`,
		`{"kind":"sweep","unknown_knob":1}`,
	} {
		resp := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp := post(`{"kind":"sweep","benchmarks":["compress","db","jess"],"threads":[1]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" || st.Total != 3 {
		t.Fatalf("submit status = %+v", st)
	}

	// Stream results: the NDJSON connection stays open until the job is
	// terminal and carries one line per cell.
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var res CellResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if res.Cell == "" || res.Status != resilience.StatusOK {
			t.Fatalf("streamed result %+v", res)
		}
		lines++
	}
	resp.Body.Close()
	if lines != 3 {
		t.Fatalf("streamed %d results, want 3", lines)
	}

	// Status and list reflect the finished job.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != StateDone || st.OK != 3 {
		t.Fatalf("status = %+v", st)
	}
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	// Unknown job IDs are 404 everywhere.
	for _, path := range []string{"/jobs/j9999", "/jobs/j9999/results"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Health endpoint is live.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Cancel over HTTP: submit a fresh campaign, delete it.
	resp = post(`{"kind":"characterization"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var st2 JobStatus
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st2.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if st2.State != StateCanceled {
		t.Fatalf("canceled status = %+v", st2)
	}
}

// TestHTTPBusy maps admission rejection to 429 + Retry-After.
func TestHTTPBusy(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec, _ := json.Marshal(smallSweep())
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if jb, ok := s.Job(fmt.Sprintf("j%04d", 1)); ok {
		waitDone(t, jb)
	}
}

package service

import (
	"bytes"
	"testing"
)

func TestCacheRoundtrip(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("cfg", "cell"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("cfg", "cell", []byte(`{"v":1}`))
	got, ok := c.Get("cfg", "cell")
	if !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Same cell under a different campaign configuration must miss.
	if _, ok := c.Get("other-cfg", "cell"); ok {
		t.Fatal("hit across configs")
	}
	if _, ok := c.Get("cfg", "other-cell"); ok {
		t.Fatal("hit across cells")
	}
	c.Put("cfg", "cell", []byte(`{"v":2}`))
	if got, _ := c.Get("cfg", "cell"); !bytes.Equal(got, []byte(`{"v":2}`)) {
		t.Fatalf("overwrite not visible: %q", got)
	}
	hits, misses, size := c.Stats()
	if hits != 2 || misses != 3 || size != 1 {
		t.Fatalf("Stats = %d hits, %d misses, %d entries; want 2, 3, 1", hits, misses, size)
	}
}

func TestCellDigestSeparatesConfigAndCell(t *testing.T) {
	// The NUL separator keeps (config, cell) unambiguous: moving a
	// character across the boundary must change the digest.
	if cellDigest("ab", "c") == cellDigest("a", "bc") {
		t.Fatal("digest collides across the config/cell boundary")
	}
	if cellDigest("cfg", "cell") != cellDigest("cfg", "cell") {
		t.Fatal("digest not deterministic")
	}
}

package service

import "sync"

// cellRunner executes one cell by index. *Job implements it; tests
// substitute stubs to exercise the dispatcher alone.
type cellRunner interface {
	runOne(cell int)
}

// dispatcher fans campaign cells across a bounded worker pool. Each
// active job is one shard holding its pending cell indexes; every
// worker has a home shard (worker index modulo live shards) it drains
// front-to-back, and steals from the back of a far-fuller shard to
// even the finish line. Home-shard affinity keeps one job's cells
// flowing roughly in submission order; stealing keeps all workers busy
// when jobs have uneven cell counts.
type dispatcher struct {
	mu     sync.Mutex
	cond   *sync.Cond
	shards []*shard
	queued int
	// maxQueued bounds the total pending cells across jobs; submissions
	// beyond it are refused (admission control). 0 means unbounded.
	maxQueued int
	draining  bool
	wg        sync.WaitGroup
}

// shard is one job's pending work: cell indexes not yet handed to a
// worker. Cells the job's ledger already holds are still enqueued —
// running them is a journal lookup, effectively free — so restart
// recovery needs no special dispatch path.
type shard struct {
	job   cellRunner
	cells []int
}

type task struct {
	job  cellRunner
	cell int
}

// newDispatcher starts `workers` workers (minimum 1).
func newDispatcher(workers, maxQueued int) *dispatcher {
	if workers < 1 {
		workers = 1
	}
	d := &dispatcher{maxQueued: maxQueued}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go d.worker(i)
	}
	return d
}

// submit enqueues a job's n cells as one shard. It refuses (false)
// when the queue bound would be exceeded or the dispatcher is draining
// — the caller turns that into an explicit 429-style rejection,
// keeping the daemon responsive for the jobs already admitted.
func (d *dispatcher) submit(jb cellRunner, n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining || (d.maxQueued > 0 && d.queued+n > d.maxQueued) {
		return false
	}
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i
	}
	d.shards = append(d.shards, &shard{job: jb, cells: cells})
	d.queued += n
	d.cond.Broadcast()
	return true
}

// drop removes a job's pending cells (cancellation). In-flight cells
// are not waited for here; the job's Stop channel aborts them from
// inside their cycle loops.
func (d *dispatcher) drop(jb cellRunner) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, s := range d.shards {
		if s.job == jb {
			d.queued -= len(s.cells)
			d.shards = append(d.shards[:i], d.shards[i+1:]...)
			break
		}
	}
}

// drain stops handing out new cells and waits for in-flight ones to
// finish. Pending cells stay pending: their jobs remain non-terminal
// on disk and the next daemon run resumes them from their ledgers.
func (d *dispatcher) drain() {
	d.mu.Lock()
	d.draining = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}

// pending returns the queued cell count (for /healthz and tests).
func (d *dispatcher) pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queued
}

// worker pulls cells until drain.
func (d *dispatcher) worker(i int) {
	defer d.wg.Done()
	for {
		t, ok := d.next(i)
		if !ok {
			return
		}
		t.job.runOne(t.cell)
	}
}

// next blocks until a cell is available (returning it) or the
// dispatcher drains (returning false). The drain check comes first:
// once draining, queued cells are deliberately left unrun.
func (d *dispatcher) next(worker int) (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.draining {
			return task{}, false
		}
		if t, ok := d.takeLocked(worker); ok {
			d.queued--
			return t, true
		}
		d.cond.Wait()
	}
}

// takeLocked picks the worker's next cell: front of its home shard,
// or a steal from the back of a far-fuller shard (more than twice the
// home's backlog). Empty shards are retired as a side effect.
func (d *dispatcher) takeLocked(worker int) (task, bool) {
	live := d.shards[:0]
	for _, s := range d.shards {
		if len(s.cells) > 0 {
			live = append(live, s)
		}
	}
	d.shards = live
	if len(d.shards) == 0 {
		return task{}, false
	}
	home := d.shards[worker%len(d.shards)]
	var victim *shard
	for _, s := range d.shards {
		if s != home && len(s.cells) > 2*len(home.cells) && (victim == nil || len(s.cells) > len(victim.cells)) {
			victim = s
		}
	}
	if victim != nil {
		t := task{job: victim.job, cell: victim.cells[len(victim.cells)-1]}
		victim.cells = victim.cells[:len(victim.cells)-1]
		return t, true
	}
	t := task{job: home.job, cell: home.cells[0]}
	home.cells = home.cells[1:]
	return t, true
}

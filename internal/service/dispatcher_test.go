package service

import (
	"sync"
	"testing"
	"time"
)

// stubRunner implements cellRunner for dispatcher tests: it records
// which cells ran, optionally blocking each run until release is
// closed, and signals each start on started.
type stubRunner struct {
	mu      sync.Mutex
	ran     []int
	release chan struct{} // if non-nil, runOne blocks until closed
	started chan struct{} // if non-nil, receives one send per runOne entry
	wg      sync.WaitGroup
}

func newStubRunner(n int, blocking bool) *stubRunner {
	r := &stubRunner{started: make(chan struct{}, n)}
	if blocking {
		r.release = make(chan struct{})
	}
	r.wg.Add(n)
	return r
}

func (r *stubRunner) runOne(cell int) {
	r.started <- struct{}{}
	if r.release != nil {
		<-r.release
	}
	r.mu.Lock()
	r.ran = append(r.ran, cell)
	r.mu.Unlock()
	r.wg.Done()
}

func (r *stubRunner) cells() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.ran...)
}

// waitDone fails the test if the runner's cells don't all complete.
func (r *stubRunner) waitDone(t *testing.T) {
	t.Helper()
	done := make(chan struct{})
	go func() { r.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for runner cells")
	}
}

// TestDispatcherRunsEveryCellOnce fans three jobs of uneven sizes over
// several workers and checks each cell ran exactly once.
func TestDispatcherRunsEveryCellOnce(t *testing.T) {
	d := newDispatcher(4, 0)
	sizes := []int{5, 1, 9}
	runners := make([]*stubRunner, len(sizes))
	for i, n := range sizes {
		runners[i] = newStubRunner(n, false)
		if !d.submit(runners[i], n) {
			t.Fatalf("submit %d refused", i)
		}
	}
	for i, r := range runners {
		r.waitDone(t)
		got := r.cells()
		if len(got) != sizes[i] {
			t.Fatalf("runner %d: ran %d cells, want %d", i, len(got), sizes[i])
		}
		seen := map[int]bool{}
		for _, c := range got {
			if seen[c] {
				t.Fatalf("runner %d: cell %d ran twice", i, c)
			}
			seen[c] = true
			if c < 0 || c >= sizes[i] {
				t.Fatalf("runner %d: cell %d out of range", i, c)
			}
		}
	}
	d.drain()
	if d.pending() != 0 {
		t.Fatalf("pending = %d after everything ran", d.pending())
	}
}

// TestDispatcherAdmission checks the queued-cell bound: submissions
// that would exceed it are refused while smaller ones are admitted.
func TestDispatcherAdmission(t *testing.T) {
	d := newDispatcher(1, 5)
	r1 := newStubRunner(3, true)
	if !d.submit(r1, 3) {
		t.Fatal("first submit refused with empty queue")
	}
	<-r1.started // worker took one cell; two remain queued
	r2 := newStubRunner(4, false)
	if d.submit(r2, 4) {
		t.Fatal("submit admitted past the queue bound (2+4 > 5)")
	}
	r3 := newStubRunner(3, false)
	if !d.submit(r3, 3) {
		t.Fatal("submit refused within the queue bound (2+3 <= 5)")
	}
	close(r1.release)
	r1.waitDone(t)
	r3.waitDone(t)
	d.drain()
	if got := len(r2.cells()); got != 0 {
		t.Fatalf("refused runner ran %d cells", got)
	}
}

// TestDispatcherDropCancelsPending checks drop removes a job's queued
// cells without touching other jobs.
func TestDispatcherDropCancelsPending(t *testing.T) {
	d := newDispatcher(1, 0)
	r1 := newStubRunner(2, true)
	if !d.submit(r1, 2) {
		t.Fatal("submit refused")
	}
	<-r1.started // worker blocked inside r1 cell 0
	r2 := newStubRunner(3, false)
	if !d.submit(r2, 3) {
		t.Fatal("submit refused")
	}
	d.drop(r2)
	close(r1.release)
	r1.waitDone(t)
	d.drain()
	if got := len(r2.cells()); got != 0 {
		t.Fatalf("dropped runner ran %d cells", got)
	}
	if got := r1.cells(); len(got) != 2 {
		t.Fatalf("surviving runner ran %d cells, want 2", len(got))
	}
}

// TestDispatcherDrainLeavesQueuedCells checks drain finishes the
// in-flight cell but hands out nothing more — queued cells stay
// pending for the next daemon to resume.
func TestDispatcherDrainLeavesQueuedCells(t *testing.T) {
	d := newDispatcher(1, 0)
	r := newStubRunner(3, true)
	r.wg.Add(-2) // only the in-flight cell will complete
	if !d.submit(r, 3) {
		t.Fatal("submit refused")
	}
	<-r.started // worker blocked inside cell 0
	drained := make(chan struct{})
	go func() { d.drain(); close(drained) }()
	// Wait for drain to flip the flag, then release the in-flight cell.
	for {
		d.mu.Lock()
		draining := d.draining
		d.mu.Unlock()
		if draining {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(r.release)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not return")
	}
	if got := len(r.cells()); got != 1 {
		t.Fatalf("ran %d cells across drain, want exactly the in-flight one", got)
	}
	if d.pending() != 2 {
		t.Fatalf("pending = %d after drain, want 2", d.pending())
	}
	if d.submit(newStubRunner(1, false), 1) {
		t.Fatal("submit admitted while draining")
	}
}

// TestDispatcherSteals exercises takeLocked directly: a worker whose
// home shard is near-empty steals from the back of a far-fuller shard.
func TestDispatcherSteals(t *testing.T) {
	d := &dispatcher{}
	d.cond = sync.NewCond(&d.mu)
	small := &stubRunner{}
	big := &stubRunner{}
	d.shards = []*shard{
		{job: small, cells: []int{0}},
		{job: big, cells: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}
	d.mu.Lock()
	tk, ok := d.takeLocked(0) // home = shard 0 (1 cell); shard 1 has 8 > 2
	d.mu.Unlock()
	if !ok || tk.job != cellRunner(big) || tk.cell != 7 {
		t.Fatalf("takeLocked = job=%v cell=%d ok=%v, want steal of big's back cell 7", tk.job == cellRunner(big), tk.cell, ok)
	}
	d.mu.Lock()
	tk, ok = d.takeLocked(1) // home = shard 1; no shard is >2x fuller
	d.mu.Unlock()
	if !ok || tk.job != cellRunner(big) || tk.cell != 0 {
		t.Fatalf("takeLocked = cell=%d ok=%v, want big's front cell 0", tk.cell, ok)
	}
}

package service

import (
	"strings"
	"testing"
)

func TestResolveRejectsBadSpecs(t *testing.T) {
	bad := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown kind", JobSpec{Kind: "frobnicate"}, "unknown kind"},
		{"unknown benchmark", JobSpec{Kind: "sweep", Benchmarks: []string{"nope"}}, "unknown benchmark"},
		{"bad scale", JobSpec{Kind: "sweep", Scale: "huge"}, "scale"},
		{"zero thread", JobSpec{Kind: "sweep", Threads: []int{0}}, "thread count"},
		{"negative runs", JobSpec{Kind: "pairings", Runs: -1}, "runs"},
		{"negative retries", JobSpec{Kind: "sweep", Retries: -1}, "retries"},
		{"bad sim mode", JobSpec{Kind: "sweep", SimMode: "approximate"}, "sim_mode"},
		{"bad cell deadline", JobSpec{Kind: "sweep", CellDeadline: "soon"}, "cell_deadline"},
		{"bad job deadline", JobSpec{Kind: "sweep", JobDeadline: "-3s"}, "job_deadline"},
		{"geometry without geometries", JobSpec{Kind: "geometry"}, "needs geometries"},
		{"policy without axes", JobSpec{Kind: "policy", Policies: []string{"greedy"}}, "needs policies"},
		{"bad geometry", JobSpec{Kind: "geometry", Geometries: []string{"2by2"}}, "geometry"},
		{"zero mix", JobSpec{Kind: "policy", Policies: []string{"greedy"}, Mixes: []int{0}, Geometries: []string{"2x2"}}, "mix size"},
	}
	for _, tc := range bad {
		if _, err := resolve(tc.spec); err == nil {
			t.Errorf("%s: resolve accepted %+v", tc.name, tc.spec)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestResolveDefaults(t *testing.T) {
	p, err := resolve(JobSpec{Kind: "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.benchmarks) == 0 {
		t.Fatal("sweep did not default to the full benchmark set")
	}
	if len(p.threads) != 2 {
		t.Fatalf("sweep threads defaulted to %v", p.threads)
	}
	if len(p.cells()) == 0 {
		t.Fatal("default sweep enumerated no cells")
	}

	p, err = resolve(JobSpec{Kind: "fig12"})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.threads) != 4 {
		t.Fatalf("fig12 threads defaulted to %v", p.threads)
	}
}

func TestConfigStringCanonical(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Benchmarks: []string{"compress"}, Threads: []int{1}}
	p1, err := resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p1.configString() != p2.configString() {
		t.Fatalf("configString not deterministic: %q vs %q", p1.configString(), p2.configString())
	}

	// Simulation-relevant knobs must change the string...
	other, _ := resolve(JobSpec{Kind: "sweep", Benchmarks: []string{"compress"}, Threads: []int{2}})
	if other.configString() == p1.configString() {
		t.Fatal("different thread axis, same configString")
	}
	// ...execution-only knobs must not: the same cells produce the same
	// bytes whatever the deadline, so they share cache entries.
	timed, _ := resolve(JobSpec{Kind: "sweep", Benchmarks: []string{"compress"}, Threads: []int{1},
		CellDeadline: "30s", Retries: 2, JobDeadline: "5m"})
	if timed.configString() != p1.configString() {
		t.Fatalf("deadlines leaked into configString:\n%q\n%q", timed.configString(), p1.configString())
	}
}

package resilience

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestGuardRecoversPanic(t *testing.T) {
	var p CellPolicy
	ce := p.Run("pair jack+jess", "scale=tiny runs=6", func(*Watch) error {
		panic("boom")
	})
	if ce == nil {
		t.Fatal("panicking cell reported success")
	}
	if ce.Kind != KindPanic {
		t.Fatalf("kind = %v, want %v", ce.Kind, KindPanic)
	}
	if ce.Cell != "pair jack+jess" || ce.Config != "scale=tiny runs=6" || ce.Attempts != 1 {
		t.Fatalf("identity not preserved: %+v", ce)
	}
	if !strings.Contains(ce.Stack, "resilience") {
		t.Fatalf("stack missing: %q", ce.Stack)
	}
	if got := ce.Reason(); got != "panic: panic: boom" && got != "panic: boom" {
		// panicError formats as "panic: boom"; Reason prefixes the kind.
		t.Fatalf("reason = %q", got)
	}
}

func TestRuntimePanicRecovered(t *testing.T) {
	var p CellPolicy
	ce := p.Run("cell", "", func(*Watch) error {
		var s []int
		_ = s[3] // index out of range
		return nil
	})
	if ce == nil || ce.Kind != KindPanic {
		t.Fatalf("runtime panic not converted: %+v", ce)
	}
	if !strings.Contains(ce.Err.Error(), "out of range") {
		t.Fatalf("err = %v", ce.Err)
	}
}

func TestWatchdogTimeout(t *testing.T) {
	p := CellPolicy{WallDeadline: 5 * time.Millisecond}
	start := time.Now()
	ce := p.Run("stall", "", func(w *Watch) error {
		for !w.Canceled() {
			time.Sleep(time.Millisecond)
		}
		return errors.New("canceled mid-simulation")
	})
	if ce == nil || ce.Kind != KindTimeout {
		t.Fatalf("stalled cell = %+v, want timeout", ce)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
	if !strings.Contains(ce.Err.Error(), "deadline") {
		t.Fatalf("err = %v", ce.Err)
	}
}

func TestWatchPerAttemptIsFresh(t *testing.T) {
	// Each retry attempt gets a fresh, unexpired watch.
	p := CellPolicy{WallDeadline: time.Minute, Retries: 1, Backoff: -1}
	calls := 0
	ce := p.Run("cell", "", func(w *Watch) error {
		calls++
		if w.Canceled() || w.Fired() {
			return errors.New("stale watch")
		}
		if calls == 1 {
			return MarkTransient(errors.New("first attempt fails"))
		}
		return nil
	})
	if ce != nil || calls != 2 {
		t.Fatalf("ce=%v calls=%d", ce, calls)
	}
}

func TestRetryTransient(t *testing.T) {
	p := CellPolicy{Retries: 2, Backoff: -1}
	calls := 0
	ce := p.Run("flaky", "", func(*Watch) error {
		calls++
		if calls <= 2 {
			return MarkTransient(errors.New("transient fault"))
		}
		return nil
	})
	if ce != nil {
		t.Fatalf("retried cell still failed: %v", ce)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

func TestRetryExhausted(t *testing.T) {
	p := CellPolicy{Retries: 1, Backoff: -1}
	calls := 0
	ce := p.Run("flaky", "", func(*Watch) error {
		calls++
		return MarkTransient(errors.New("always transient"))
	})
	if ce == nil || ce.Kind != KindTransient {
		t.Fatalf("ce = %+v, want transient failure", ce)
	}
	if calls != 2 || ce.Attempts != 2 {
		t.Fatalf("calls=%d attempts=%d, want 2/2", calls, ce.Attempts)
	}
}

func TestNonTransientNotRetried(t *testing.T) {
	p := CellPolicy{Retries: 5, Backoff: -1}
	calls := 0
	ce := p.Run("broken", "", func(*Watch) error {
		calls++
		return errors.New("deterministic failure")
	})
	if ce == nil || ce.Kind != KindError || calls != 1 {
		t.Fatalf("ce=%+v calls=%d; plain errors must not burn retries", ce, calls)
	}
}

func TestMarkKindAndKindOf(t *testing.T) {
	base := errors.New("base")
	if KindOf(base) != KindError {
		t.Errorf("untagged error kind = %v", KindOf(base))
	}
	tagged := MarkKind(base, KindCycleBudget)
	if KindOf(tagged) != KindCycleBudget {
		t.Errorf("tagged kind = %v", KindOf(tagged))
	}
	if !errors.Is(tagged, base) {
		t.Error("MarkKind broke the unwrap chain")
	}
	wrapped := MarkKind(errors.New("outer"), KindCorrupt)
	if KindOf(wrapped) != KindCorrupt {
		t.Errorf("kind = %v", KindOf(wrapped))
	}
	if MarkKind(nil, KindPanic) != nil {
		t.Error("MarkKind(nil) != nil")
	}
	if !IsTransient(MarkTransient(base)) || IsTransient(base) {
		t.Error("IsTransient misclassifies")
	}
}

func TestCellErrorReasonFirstLineOnly(t *testing.T) {
	ce := &CellError{Cell: "c", Kind: KindError, Attempts: 1,
		Err: errors.New("first line\nsecond line")}
	if got := ce.Reason(); got != "error: first line" {
		t.Fatalf("Reason = %q", got)
	}
	if !strings.Contains(ce.Error(), "cell c") {
		t.Fatalf("Error = %q", ce.Error())
	}
}

func TestBackoffStopCutsWaitShort(t *testing.T) {
	// Regression: a canceled campaign (or a draining daemon) must not
	// hang out the full backoff delay between retry attempts. With a
	// 30-second base backoff and the Stop signal firing after the first
	// attempt, Run must return almost immediately with that attempt's
	// transient failure instead of sleeping toward attempt two.
	stop := make(chan struct{})
	p := CellPolicy{Retries: 5, Backoff: 30 * time.Second, Stop: stop}
	calls := 0
	start := time.Now()
	ce := p.Run("flaky", "", func(*Watch) error {
		calls++
		close(stop)
		return MarkTransient(errors.New("transient fault"))
	})
	if ce == nil || ce.Kind != KindTransient {
		t.Fatalf("ce = %+v, want the interrupted transient failure", ce)
	}
	if calls != 1 || ce.Attempts != 1 {
		t.Fatalf("calls=%d attempts=%d, want 1/1 (no attempt after Stop)", calls, ce.Attempts)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run took %v; Stop must cut the 30s backoff short", elapsed)
	}
}

func TestStopCancelsRunningAttempt(t *testing.T) {
	// The Stop signal must reach into a running attempt through its
	// Watch, the same flag the simulator's cycle loop polls.
	stop := make(chan struct{})
	p := CellPolicy{Stop: stop}
	start := time.Now()
	ce := p.Run("stall", "", func(w *Watch) error {
		close(stop)
		for !w.Canceled() {
			time.Sleep(time.Millisecond)
		}
		return errors.New("canceled mid-simulation")
	})
	if ce == nil || ce.Kind != KindError {
		t.Fatalf("ce = %+v, want the cell's own error", ce)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("attempt ran %v after Stop", elapsed)
	}
}

func TestStopBeforeRetrySkipsAttempt(t *testing.T) {
	// Stop firing between attempts (here: during a zero-delay backoff)
	// must prevent the next attempt from starting.
	stop := make(chan struct{})
	close(stop)
	p := CellPolicy{Retries: 5, Backoff: -1, Stop: stop}
	calls := 0
	ce := p.Run("flaky", "", func(*Watch) error {
		calls++
		return MarkTransient(errors.New("transient fault"))
	})
	if ce == nil || calls != 1 {
		t.Fatalf("ce=%v calls=%d; a stopped policy must not retry", ce, calls)
	}
}

func TestBackoffDeterministic(t *testing.T) {
	p := CellPolicy{Backoff: 3 * time.Millisecond}
	for i, want := range []time.Duration{3, 6, 12, 24} {
		if got := p.backoff(i + 1); got != want*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	if (CellPolicy{}).backoff(1) != DefaultBackoff {
		t.Error("zero Backoff must default")
	}
	if (CellPolicy{Backoff: -1}).backoff(3) != 0 {
		t.Error("negative Backoff must disable the delay")
	}
}

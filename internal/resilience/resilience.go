// Package resilience is the fault-tolerance layer of the experiment
// engine. A measurement campaign (the 9x9 pairing grids, parameter
// sweeps, the full report) is hours of independent simulations; at that
// scale partial failure is normal, and one panicking or wedged cell must
// not take down the run or discard completed work. This package provides
// the pieces the harness composes around every cell:
//
//   - CellPolicy.Run executes one cell under panic recovery (a crash
//     becomes a structured *CellError carrying the cell label, config,
//     attempt count and stack instead of killing the process), a
//     wall-clock watchdog (a Watch whose cancellation flag the core's
//     cycle loop polls — see core.AttachCancel), and bounded retry with
//     deterministic exponential backoff for transient failures.
//
//   - Journal is a crash-safe campaign log: an append-only JSONL file of
//     completed cells with digests over their payloads, so an
//     interrupted campaign can -resume and skip finished cells while
//     reproducing byte-identical output.
//
// The package is deliberately simulator-agnostic: it knows nothing about
// CPUs or benchmarks, only cells, errors and payload bytes. The harness
// maps simulator outcomes onto failure kinds with MarkKind.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"
)

// Kind classifies why a cell failed. The taxonomy is the one DESIGN.md
// §8 documents; Reason strings embed it so FAILED(reason) entries in
// reports are self-describing.
type Kind string

const (
	// KindPanic is a recovered panic in the cell's simulation.
	KindPanic Kind = "panic"
	// KindTimeout is a wall-clock watchdog expiry.
	KindTimeout Kind = "timeout"
	// KindCycleBudget is a simulated-cycle budget expiry.
	KindCycleBudget Kind = "cycle-budget"
	// KindCorrupt is a counter-conservation violation in the cell's
	// result: the simulation finished but its measurements cannot be
	// trusted.
	KindCorrupt Kind = "corrupt"
	// KindTransient marks failures worth retrying (injected transient
	// faults; in principle, resource exhaustion). A cell fails with this
	// kind only when its retry budget is exhausted.
	KindTransient Kind = "transient"
	// KindError is any other cell error (verification failures, wedged
	// machines).
	KindError Kind = "error"
)

// kinded attaches a Kind to an error without disturbing its message or
// unwrap chain.
type kinded struct {
	kind Kind
	err  error
}

func (k *kinded) Error() string { return k.err.Error() }
func (k *kinded) Unwrap() error { return k.err }

// MarkKind tags err with a failure kind. KindOf recovers the tag
// anywhere in the wrap chain; errors.Is/As still see the original error.
func MarkKind(err error, kind Kind) error {
	if err == nil {
		return nil
	}
	return &kinded{kind: kind, err: err}
}

// MarkTransient tags err as transient, making it eligible for retry
// under a CellPolicy with a retry budget.
func MarkTransient(err error) error { return MarkKind(err, KindTransient) }

// KindOf returns the failure kind tagged onto err, or KindError when
// untagged.
func KindOf(err error) Kind {
	var k *kinded
	if errors.As(err, &k) {
		return k.kind
	}
	return KindError
}

// IsTransient reports whether err is tagged KindTransient.
func IsTransient(err error) bool { return KindOf(err) == KindTransient }

// panicError is the error form of a recovered panic.
type panicError struct {
	val   any
	stack string
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// CellError is the structured failure of one experiment cell. It
// replaces a crashed, wedged or corrupted simulation in campaign
// results: reports render it as a FAILED(reason) entry and the campaign
// continues.
type CellError struct {
	// Cell is the cell label ("pair jack+jess", "fig10 compress").
	Cell string
	// Kind classifies the failure.
	Kind Kind
	// Config describes the experiment configuration the cell ran under
	// (scale, runs, injection seed) so a failure is reproducible from
	// its error alone.
	Config string
	// Attempts is how many times the cell was tried (retries included).
	Attempts int
	// Stack is the recovered goroutine stack for panics, empty otherwise.
	Stack string
	// Err is the underlying error.
	Err error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s [%s, attempt %d]: %s: %v", e.Cell, e.Config, e.Attempts, e.Kind, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Reason is the compact, deterministic form reports embed in
// FAILED(reason) entries: the kind plus the first line of the error.
func (e *CellError) Reason() string {
	msg := e.Err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if strings.HasPrefix(msg, string(e.Kind)+": ") {
		return msg
	}
	return string(e.Kind) + ": " + msg
}

// Watch is the watchdog of one cell attempt: a cancellation flag the
// simulator's cycle loop polls (core.AttachCancel), armed with an
// optional wall-clock deadline. Fault hooks that stall outside the
// cycle loop poll Canceled directly.
type Watch struct {
	flag  atomic.Bool
	fired atomic.Bool
	timer *time.Timer
}

// newWatch arms a watch; wall <= 0 means no deadline.
func newWatch(wall time.Duration) *Watch {
	w := &Watch{}
	if wall > 0 {
		w.timer = time.AfterFunc(wall, func() {
			w.fired.Store(true)
			w.flag.Store(true)
		})
	}
	return w
}

// Flag exposes the cancellation flag for core.AttachCancel.
func (w *Watch) Flag() *atomic.Bool { return &w.flag }

// Canceled reports whether the watch has requested cancellation.
func (w *Watch) Canceled() bool { return w.flag.Load() }

// Fired reports whether the wall deadline elapsed.
func (w *Watch) Fired() bool { return w.fired.Load() }

// Cancel requests cancellation without a deadline (campaign shutdown).
func (w *Watch) Cancel() { w.flag.Store(true) }

// stop disarms the deadline timer.
func (w *Watch) stop() {
	if w.timer != nil {
		w.timer.Stop()
	}
}

// DefaultBackoff is the base retry delay when a CellPolicy leaves
// Backoff zero. Attempt k waits Backoff << (k-1): deterministic, no
// jitter, so retried campaigns behave identically run to run.
const DefaultBackoff = 10 * time.Millisecond

// CellPolicy bounds one experiment cell: how long it may run and how
// often a transient failure is retried. The zero value applies panic
// recovery only.
type CellPolicy struct {
	// WallDeadline is the per-attempt wall-clock bound (0 = none).
	WallDeadline time.Duration
	// CycleBudget is the per-attempt simulated-cycle bound (0 = none).
	// The policy does not enforce it itself — the harness plumbs it into
	// the simulator's MaxCycles bound, which reports exhaustion as a
	// KindCycleBudget error — but it travels with the policy so one
	// value configures a whole campaign.
	CycleBudget uint64
	// Retries is how many times a transient failure is re-attempted.
	Retries int
	// Backoff is the base retry delay (0 = DefaultBackoff; negative =
	// no delay, for tests).
	Backoff time.Duration
	// Stop, when non-nil, is an external cancellation signal (a canceled
	// campaign, a draining daemon): when it closes, the running attempt's
	// Watch is canceled — aborting the simulation from inside its cycle
	// loop — and any retry backoff wait returns immediately instead of
	// sleeping out its full delay. The interrupted attempt's failure is
	// returned as-is; no further attempts start.
	Stop <-chan struct{}
}

// Stopped reports whether the policy's external Stop signal has fired.
func (p CellPolicy) Stopped() bool {
	if p.Stop == nil {
		return false
	}
	select {
	case <-p.Stop:
		return true
	default:
		return false
	}
}

// Run executes one cell under the policy: fn runs under panic recovery
// with a fresh armed Watch per attempt; transient failures are retried
// up to p.Retries times with deterministic exponential backoff; any
// final failure comes back as a structured *CellError (nil on success).
// A closed Stop channel cancels the running attempt and cuts every
// backoff wait short.
func (p CellPolicy) Run(cell, config string, fn func(w *Watch) error) *CellError {
	for attempt := 1; ; attempt++ {
		w := newWatch(p.WallDeadline)
		var stopDone chan struct{}
		if p.Stop != nil {
			stopDone = make(chan struct{})
			go func() {
				select {
				case <-p.Stop:
					w.Cancel()
				case <-stopDone:
				}
			}()
		}
		err := guard(fn, w)
		w.stop()
		if stopDone != nil {
			close(stopDone)
		}
		if err == nil {
			return nil
		}
		ce := p.classify(cell, config, attempt, err, w)
		if ce.Kind == KindTransient && attempt <= p.Retries {
			if d := p.backoff(attempt); d > 0 && !p.wait(d) {
				return ce
			}
			if p.Stopped() {
				return ce
			}
			continue
		}
		return ce
	}
}

// wait sleeps the backoff delay, returning early (false) when the
// policy's Stop signal fires mid-wait.
func (p CellPolicy) wait(d time.Duration) bool {
	if p.Stop == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.Stop:
		return false
	}
}

// backoff returns the delay before re-attempting after attempt failures.
func (p CellPolicy) backoff(attempt int) time.Duration {
	base := p.Backoff
	if base == 0 {
		base = DefaultBackoff
	}
	if base < 0 {
		return 0
	}
	return base << (attempt - 1)
}

// guard runs one attempt, converting a panic into a *panicError that
// preserves the panicking goroutine's stack.
func guard(fn func(w *Watch) error, w *Watch) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: string(debug.Stack())}
		}
	}()
	return fn(w)
}

// classify builds the CellError for one failed attempt. A fired wall
// deadline dominates whatever error the canceled simulation surfaced;
// panics dominate everything (a panic after expiry is still a panic).
func (p CellPolicy) classify(cell, config string, attempt int, err error, w *Watch) *CellError {
	ce := &CellError{Cell: cell, Config: config, Attempts: attempt, Err: err}
	var pe *panicError
	switch {
	case errors.As(err, &pe):
		ce.Kind = KindPanic
		ce.Stack = pe.stack
	case w.Fired():
		ce.Kind = KindTimeout
		ce.Err = fmt.Errorf("wall deadline %v exceeded: %w", p.WallDeadline, err)
	default:
		ce.Kind = KindOf(err)
	}
	return ce
}

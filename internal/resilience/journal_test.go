package resilience

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var testMeta = Meta{Tool: "pairings", Config: "scale=tiny runs=6"}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("pair a+b", StatusOK, "", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("pair a+c", StatusFailed, "panic: boom", nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testMeta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Resumed() != 2 {
		t.Fatalf("resumed %d cells, want 2", r.Resumed())
	}
	e, ok := r.Lookup("pair a+b")
	if !ok || e.Status != StatusOK || string(e.Payload) != `{"v":1}` {
		t.Fatalf("ok entry = %+v %v", e, ok)
	}
	e, ok = r.Lookup("pair a+c")
	if !ok || e.Status != StatusFailed || e.Reason != "panic: boom" {
		t.Fatalf("failed entry = %+v %v", e, ok)
	}
	if _, ok := r.Lookup("pair a+d"); ok {
		t.Fatal("phantom cell found")
	}
}

func TestJournalMetaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("c", StatusOK, "", nil)
	j.Close()
	if _, err := Open(dir, Meta{Tool: "pairings", Config: "scale=small runs=6"}, true); err == nil {
		t.Fatal("resume under a different config was accepted")
	} else if !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalFreshOpenRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("c", StatusOK, "", nil)
	j.Close()
	if _, err := Open(dir, testMeta, false); err == nil {
		t.Fatal("fresh open silently adopted an existing campaign")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalResumeWithoutCampaign(t *testing.T) {
	if _, err := Open(t.TempDir(), testMeta, true); err == nil {
		t.Fatal("-resume on an empty directory was accepted")
	}
}

func TestJournalTruncatedTailDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("cell-1", StatusOK, "", json.RawMessage(`{"v":1}`))
	j.Record("cell-2", StatusOK, "", json.RawMessage(`{"v":2}`))
	j.Close()

	// Simulate a crash mid-append: chop bytes off the last line.
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testMeta, true)
	if err != nil {
		t.Fatalf("resume over a truncated tail: %v", err)
	}
	if r.Resumed() != 1 {
		t.Fatalf("resumed %d cells, want 1 (partial line dropped)", r.Resumed())
	}
	// The file must have been truncated back to its valid prefix so the
	// next append produces a clean journal.
	if err := r.Record("cell-2", StatusOK, "", json.RawMessage(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, _ = os.ReadFile(path)
	entries, valid, err := Parse(data)
	if err != nil || valid != len(data) || len(entries) != 2 {
		t.Fatalf("post-repair journal unclean: entries=%d valid=%d/%d err=%v", len(entries), valid, len(data), err)
	}
}

func TestJournalCorruptInteriorLineRejected(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, testMeta, false)
	j.Record("cell-1", StatusOK, "", json.RawMessage(`{"v":1}`))
	j.Record("cell-2", StatusOK, "", json.RawMessage(`{"v":2}`))
	j.Close()
	path := filepath.Join(dir, journalFile)
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF // flip a byte inside the first line
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, testMeta, true); err == nil {
		t.Fatal("corrupt interior line was accepted")
	}
}

func TestJournalDigestMismatchRejected(t *testing.T) {
	e := Entry{Cell: "c", Status: StatusOK, Payload: json.RawMessage(`{"v":1}`)}
	e.Digest = e.digest()
	line, _ := json.Marshal(e)
	// Tamper with the payload without refreshing the digest.
	tampered := strings.Replace(string(line), `{"v":1}`, `{"v":2}`, 1)
	if _, _, err := Parse([]byte(tampered + "\n")); err == nil {
		t.Fatal("digest mismatch not detected")
	} else if !strings.Contains(err.Error(), "digest") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalDuplicateCompletedCellRejected(t *testing.T) {
	e := Entry{Cell: "c", Status: StatusOK}
	e.Digest = e.digest()
	line, _ := json.Marshal(e)
	doubled := string(line) + "\n" + string(line) + "\n"
	if _, _, err := Parse([]byte(doubled)); err == nil {
		t.Fatal("duplicated completed cell not detected")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestJournalFailedCellSuperseded(t *testing.T) {
	fail := Entry{Cell: "c", Status: StatusFailed, Reason: "timeout: wall"}
	fail.Digest = fail.digest()
	ok := Entry{Cell: "c", Status: StatusOK, Payload: json.RawMessage(`{"v":3}`)}
	ok.Digest = ok.digest()
	l1, _ := json.Marshal(fail)
	l2, _ := json.Marshal(ok)
	entries, valid, err := Parse([]byte(string(l1) + "\n" + string(l2) + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if valid != len(l1)+len(l2)+2 {
		t.Fatalf("valid = %d", valid)
	}
	if len(entries) != 1 || entries[0].Status != StatusOK {
		t.Fatalf("entries = %+v; retry must supersede the failed entry", entries)
	}
}

func TestJournalSyncDurable(t *testing.T) {
	// WithSync changes durability, not format: a synced journal must be
	// byte-compatible with an unsynced one and resume identically.
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell-1", StatusOK, "", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell-2", StatusFailed, "panic: boom", nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	r, err := Open(dir, testMeta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Resumed() != 2 {
		t.Fatalf("resumed %d cells, want 2", r.Resumed())
	}
	data, _ := os.ReadFile(filepath.Join(dir, journalFile))
	if _, valid, err := Parse(data); err != nil || valid != len(data) {
		t.Fatalf("synced journal unclean: valid=%d/%d err=%v", valid, len(data), err)
	}
}

func TestJournalConcurrentWriters(t *testing.T) {
	// The dispatcher's shape: many workers complete cells and Record
	// them on one shared ledger at once. The file must parse with zero
	// torn or interleaved lines and the exact entry count.
	const writers, perWriter = 16, 64
	dir := t.TempDir()
	j, err := Open(dir, testMeta, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				cell := fmt.Sprintf("cell-%02d-%02d", w, i)
				payload := json.RawMessage(fmt.Sprintf(`{"v":{"worker":%d,"i":%d}}`, w, i))
				status, reason := StatusOK, ""
				if i%7 == 3 {
					status, reason, payload = StatusFailed, "timeout: injected", nil
				}
				if err := j.Record(cell, status, reason, payload); err != nil {
					errs <- err
					return
				}
				// Interleave reads with writes: Lookup must be safe too.
				if _, ok := j.Lookup(cell); !ok {
					errs <- fmt.Errorf("cell %s not visible after Record", cell)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	entries, valid, err := Parse(data)
	if err != nil {
		t.Fatalf("concurrently written journal corrupt: %v", err)
	}
	if valid != len(data) {
		t.Fatalf("torn bytes: valid=%d of %d", valid, len(data))
	}
	if len(entries) != writers*perWriter {
		t.Fatalf("entries = %d, want %d", len(entries), writers*perWriter)
	}
	r, err := Open(dir, testMeta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Resumed() != writers*perWriter {
		t.Fatalf("resumed %d, want %d", r.Resumed(), writers*perWriter)
	}
}

func TestParseEmpty(t *testing.T) {
	entries, valid, err := Parse(nil)
	if err != nil || valid != 0 || len(entries) != 0 {
		t.Fatalf("Parse(nil) = %v %d %v", entries, valid, err)
	}
}

// benchRecord measures the per-cell ledger append cost, the price a
// daemon pays on every completed cell. Run with -bench JournalRecord
// to see the fsync overhead WithSync adds.
func benchRecord(b *testing.B, opts ...Option) {
	j, err := Open(b.TempDir(), testMeta, false, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	payload := json.RawMessage(`{"v":{"Benchmark":"compress","Threads":2,"Cycles":123456789}}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Record(fmt.Sprintf("cell-%d", i), StatusOK, "", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJournalRecord(b *testing.B)     { benchRecord(b) }
func BenchmarkJournalRecordSync(b *testing.B) { benchRecord(b, WithSync()) }

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	if err := j.Record("c", StatusOK, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("c"); ok {
		t.Fatal("nil journal found a cell")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Resumed() != 0 {
		t.Fatal("nil journal resumed cells")
	}
}

package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// FuzzJournal hammers the journal parser with arbitrary bytes. The
// properties under test:
//
//  1. Parse never panics, whatever the input (truncated, duplicated,
//     bit-flipped, binary garbage).
//  2. valid never exceeds len(data), and the valid prefix reparses to
//     the same entries with no truncation — the invariant Open relies
//     on when it truncates a crash-damaged journal before resuming.
//  3. Every surviving entry is integrity-checked: digest valid, known
//     status, unique completed cell.
//  4. Entries re-serialized the way Record writes them reparse to an
//     equal set (the append/parse pair is lossless).
func FuzzJournal(f *testing.F) {
	ok := Entry{Cell: "pair jack+jess", Status: StatusOK, Payload: json.RawMessage(`{"v":{"A":"jack"}}`)}
	ok.Digest = ok.digest()
	okLine, _ := json.Marshal(ok)
	failed := Entry{Cell: "pair db+javac", Status: StatusFailed, Reason: "panic: boom"}
	failed.Digest = failed.digest()
	failedLine, _ := json.Marshal(failed)

	f.Add([]byte(string(okLine) + "\n"))
	f.Add([]byte(string(okLine) + "\n" + string(failedLine) + "\n"))
	f.Add([]byte(string(okLine) + "\n" + string(okLine)[:20]))       // truncated tail
	f.Add([]byte(string(okLine) + "\n" + string(okLine) + "\n"))     // duplicate
	f.Add([]byte(string(failedLine) + "\n" + string(okLine) + "\n")) // retry supersedes
	f.Add([]byte("{\"cell\":\"x\",\"status\":\"ok\",\"digest\":\"0000000000000000\"}\n"))
	f.Add([]byte("not json at all\n\x00\x01\x02"))
	f.Add([]byte(""))

	// Interleaved-writer artifacts: the completion order a concurrent
	// dispatcher produces — entries from different workers striped
	// through the file rather than grouped, with retries superseding
	// failures across the stripes, and a crash-torn final line from yet
	// another writer.
	var interleaved bytes.Buffer
	for i := 0; i < 4; i++ {
		for w := 0; w < 3; w++ {
			e := Entry{
				Cell:    fmt.Sprintf("cell-%02d-%02d", w, i),
				Status:  StatusOK,
				Payload: json.RawMessage(fmt.Sprintf(`{"v":{"worker":%d,"i":%d}}`, w, i)),
			}
			if (w+i)%5 == 2 {
				e.Status, e.Reason, e.Payload = StatusFailed, "timeout: wall deadline 1s exceeded", nil
			}
			e.Digest = e.digest()
			line, _ := json.Marshal(e)
			interleaved.Write(line)
			interleaved.WriteByte('\n')
		}
	}
	f.Add(interleaved.Bytes())
	retry := Entry{Cell: "cell-01-01", Status: StatusOK, Payload: json.RawMessage(`{"v":{"retried":true}}`)}
	retry.Digest = retry.digest()
	retryLine, _ := json.Marshal(retry)
	f.Add(append(append([]byte{}, interleaved.Bytes()...), append(retryLine, '\n')...))
	f.Add(append(append([]byte{}, interleaved.Bytes()...), okLine[:len(okLine)/2]...)) // torn mid-append

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, valid, err := Parse(data)
		if valid > len(data) || valid < 0 {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, e := range entries {
			if e.Cell == "" {
				t.Fatal("entry without a cell survived")
			}
			if e.Status != StatusOK && e.Status != StatusFailed {
				t.Fatalf("unknown status %q survived", e.Status)
			}
			if e.digest() != e.Digest {
				t.Fatalf("digest-mismatched entry survived: %+v", e)
			}
			if seen[e.Cell] && e.Status == StatusOK {
				t.Fatalf("duplicate cell %q survived", e.Cell)
			}
			seen[e.Cell] = true
		}
		// The valid prefix must reparse cleanly and identically.
		again, validAgain, err2 := Parse(data[:valid])
		if err2 != nil || validAgain != valid {
			t.Fatalf("valid prefix unstable: valid=%d again=%d err=%v", valid, validAgain, err2)
		}
		if len(again) != len(entries) {
			t.Fatalf("reparse entry count %d != %d", len(again), len(entries))
		}
		// Round-trip through Record's serialization.
		var buf bytes.Buffer
		for _, e := range entries {
			line, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		rt, rtValid, err := Parse(buf.Bytes())
		if err != nil || rtValid != buf.Len() {
			t.Fatalf("round-trip parse failed: %v (valid %d/%d)", err, rtValid, buf.Len())
		}
		if len(rt) != len(entries) {
			t.Fatalf("round-trip entry count %d != %d", len(rt), len(entries))
		}
		for i := range rt {
			if rt[i].Cell != entries[i].Cell || rt[i].Digest != entries[i].Digest {
				t.Fatalf("round-trip entry %d diverged: %+v vs %+v", i, rt[i], entries[i])
			}
		}
	})
}

package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Journal file layout inside the campaign directory:
//
//	meta.json     — the campaign identity (tool + canonical config);
//	                resuming under a different config is refused.
//	journal.jsonl — append-only, one Entry per completed cell, each line
//	                carrying an FNV-64a digest over its own fields.
//
// Appends are a single write of line+'\n', so a campaign killed at any
// instant (SIGINT, OOM, power) leaves at worst one truncated trailing
// line, which Parse detects and Open drops before resuming. Anything
// else that fails to parse — a corrupt middle line, a digest mismatch,
// a duplicated completed cell — is an integrity error, not something to
// silently skip: the journal is the campaign's memory and a damaged one
// must not masquerade as a healthy one.

// Entry statuses.
const (
	// StatusOK marks a cell that completed; its Payload holds the result.
	StatusOK = "ok"
	// StatusFailed marks a cell that failed; Reason holds the compact
	// CellError reason. Failed cells are re-run on resume (the fault may
	// have been environmental), so a later entry for the same cell may
	// supersede a failed one — but never an ok one.
	StatusFailed = "failed"
)

// Entry is one completed cell in the journal.
type Entry struct {
	Cell    string          `json:"cell"`
	Status  string          `json:"status"`
	Reason  string          `json:"reason,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Digest is the FNV-64a hash over (cell, status, reason, payload) —
	// for result payloads that is a digest over the cell's counters.
	Digest string `json:"digest"`
}

// digest computes the entry's integrity hash.
func (e *Entry) digest() string {
	h := fnv.New64a()
	io.WriteString(h, e.Cell)
	h.Write([]byte{0})
	io.WriteString(h, e.Status)
	h.Write([]byte{0})
	io.WriteString(h, e.Reason)
	h.Write([]byte{0})
	h.Write(e.Payload)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Meta identifies the campaign a journal belongs to. Every field must
// match exactly for a resume to proceed.
type Meta struct {
	// Tool is the command that owns the journal ("pairings", "report").
	Tool string `json:"tool"`
	// Config is the tool's canonical configuration string (scale, runs,
	// cell set, injection seed).
	Config string `json:"config"`
}

// Parse decodes journal bytes into entries. It returns the number of
// bytes holding valid entries; valid < len(data) means the tail is a
// crash-truncated partial line, which callers should discard (Open
// truncates the file). Corruption anywhere else — a malformed or
// digest-mismatched interior line, an unknown status, a duplicate of a
// completed cell — returns an error. A failed cell may be superseded by
// a later entry for the same cell (a resumed campaign retrying it); the
// later entry replaces the earlier in the returned slice.
func Parse(data []byte) (entries []Entry, valid int, err error) {
	index := map[string]int{}
	lineNo := 0
	off := 0
	for off < len(data) {
		lineNo++
		nl := bytes.IndexByte(data[off:], '\n')
		final := nl < 0
		var line []byte
		if final {
			line = data[off:]
		} else {
			line = data[off : off+nl]
		}
		e, perr := parseLine(line)
		if perr != nil {
			if final {
				// Crash-truncated tail: drop it, keep what parsed.
				return entries, off, nil
			}
			return nil, 0, fmt.Errorf("resilience: journal line %d: %w", lineNo, perr)
		}
		if prev, dup := index[e.Cell]; dup {
			if entries[prev].Status != StatusFailed {
				return nil, 0, fmt.Errorf("resilience: journal line %d: duplicate entry for completed cell %q", lineNo, e.Cell)
			}
			entries[prev] = e
		} else {
			index[e.Cell] = len(entries)
			entries = append(entries, e)
		}
		if final {
			off = len(data)
		} else {
			off += nl + 1
		}
	}
	return entries, off, nil
}

// parseLine decodes and integrity-checks one journal line.
func parseLine(line []byte) (Entry, error) {
	var e Entry
	if len(line) == 0 {
		return e, fmt.Errorf("blank line")
	}
	if err := json.Unmarshal(line, &e); err != nil {
		return e, fmt.Errorf("corrupt: %w", err)
	}
	if e.Cell == "" {
		return e, fmt.Errorf("corrupt: entry without a cell")
	}
	if e.Status != StatusOK && e.Status != StatusFailed {
		return e, fmt.Errorf("corrupt: unknown status %q", e.Status)
	}
	if got := e.digest(); got != e.Digest {
		return e, fmt.Errorf("digest mismatch for cell %q: recorded %s, computed %s", e.Cell, e.Digest, got)
	}
	return e, nil
}

// Journal is the open campaign journal. Record is safe for concurrent
// use by parallel experiment workers and daemon shards: the mutex
// serializes appends, each of which is one Write of line+'\n', so a
// journal written by any number of goroutines parses with zero torn or
// interleaved lines (TestJournalConcurrentWriters).
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	fsync bool
	done  map[string]Entry
	// resumed counts cells loaded from disk at Open (reporting only).
	resumed int
}

// Option configures Open beyond the resume flag.
type Option func(*Journal)

// WithSync makes the journal fsync after every Record, so the ledger
// survives power loss and kernel crashes, not just process death. The
// overhead is one fdatasync per completed cell (BenchmarkJournalRecordSync
// measures it) — noise next to any simulation, but off by default
// because short CLI campaigns don't need it.
func WithSync() Option { return func(j *Journal) { j.fsync = true } }

// journalFile and metaFile are the fixed names inside the journal dir.
const (
	journalFile = "journal.jsonl"
	metaFile    = "meta.json"
)

// Open creates (resume=false) or reopens (resume=true) the campaign
// journal in dir.
//
// A fresh open refuses a directory that already holds journal entries —
// losing a previous campaign's work silently would defeat the point —
// and records meta for future resumes. A resume verifies meta matches
// exactly, loads the completed cells (dropping a crash-truncated
// trailing line, truncating the file back to its valid prefix), and
// appends from there.
func Open(dir string, meta Meta, resume bool, opts ...Option) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilience: journal: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	mpath := filepath.Join(dir, metaFile)
	j := &Journal{done: map[string]Entry{}}
	for _, o := range opts {
		o(j)
	}

	if resume {
		mdata, err := os.ReadFile(mpath)
		if err != nil {
			return nil, fmt.Errorf("resilience: journal: -resume without a prior campaign in %s: %w", dir, err)
		}
		var got Meta
		if err := json.Unmarshal(mdata, &got); err != nil {
			return nil, fmt.Errorf("resilience: journal: %s corrupt: %w", mpath, err)
		}
		if got != meta {
			return nil, fmt.Errorf("resilience: journal: campaign mismatch: journal holds %s %q, this run is %s %q",
				got.Tool, got.Config, meta.Tool, meta.Config)
		}
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("resilience: journal: %w", err)
		}
		entries, valid, err := Parse(data)
		if err != nil {
			return nil, err
		}
		if valid < len(data) {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, fmt.Errorf("resilience: journal: dropping truncated tail: %w", err)
			}
		}
		for _, e := range entries {
			j.done[e.Cell] = e
		}
		j.resumed = len(entries)
	} else {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return nil, fmt.Errorf("resilience: journal: %s already holds a campaign; pass -resume to continue it or use a fresh directory", dir)
		}
		mdata, err := json.MarshalIndent(meta, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("resilience: journal: %w", err)
		}
		if err := os.WriteFile(mpath, append(mdata, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("resilience: journal: %w", err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the journaled entry for cell, if any. Callers resume
// StatusOK entries from their payload and re-run StatusFailed ones.
func (j *Journal) Lookup(cell string) (Entry, bool) {
	if j == nil {
		return Entry{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[cell]
	return e, ok
}

// Resumed returns how many completed cells were loaded at Open.
func (j *Journal) Resumed() int {
	if j == nil {
		return 0
	}
	return j.resumed
}

// Record appends one completed cell. The line is written in a single
// Write call so an interrupt can truncate it but never interleave it.
func (j *Journal) Record(cell, status, reason string, payload json.RawMessage) error {
	if j == nil {
		return nil
	}
	e := Entry{Cell: cell, Status: status, Reason: reason, Payload: payload}
	e.Digest = e.digest()
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if prev, dup := j.done[cell]; dup && prev.Status != StatusFailed {
		return fmt.Errorf("resilience: journal: cell %q recorded twice", cell)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("resilience: journal: %w", err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("resilience: journal: sync: %w", err)
		}
	}
	j.done[cell] = e
	return nil
}

// Close closes the journal file. Nil-safe (a campaign without -journal
// carries a nil *Journal everywhere).
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

package bytecode_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/bytecode"
	"javasmt/internal/bytecode/fuzzcodec"
)

var updateCorpus = flag.Bool("update", false, "regenerate the seed fuzz corpus from the benchmark programs")

// FuzzVerify throws arbitrary method bodies at the linker/verifier. The
// contract under test: Link never panics — it either rejects the program
// with an error or accepts it, and an accepted program's linked layout is
// internally consistent (offsets monotone, trace-line aligned, MaxStack
// sane, disassembly total).
func FuzzVerify(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzcodec.Encode([]bytecode.Instr{{Op: bytecode.Ret}}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{
		{Op: bytecode.Iconst, A: 41},
		{Op: bytecode.Iconst, A: 1},
		{Op: bytecode.Iadd},
		{Op: bytecode.RetVal},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{ // balanced monitor pair: must verify
		{Op: bytecode.New, A: 0},
		{Op: bytecode.Istore, A: 0},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonEnter},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonExit},
		{Op: bytecode.Ret},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{ // unbalanced monitor: must be rejected
		{Op: bytecode.New, A: 0},
		{Op: bytecode.MonEnter},
		{Op: bytecode.Ret},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{ // volatile round trip + CAS
		{Op: bytecode.Iconst, A: 7},
		{Op: bytecode.PutVolatile, A: 2},
		{Op: bytecode.GetVolatile, A: 2},
		{Op: bytecode.Iconst, A: 9},
		{Op: bytecode.Cas, A: 2},
		{Op: bytecode.RetVal},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		code := fuzzcodec.Decode(data, 4096)
		prog := fuzzcodec.HarnessProgram(code)
		if err := prog.Link(0); err != nil {
			return // rejected: the verifier did its job
		}
		// Re-verifying a linked program must stay clean (idempotence).
		if err := prog.Verify(); err != nil {
			t.Fatalf("program verified at link time failed re-verification: %v", err)
		}
		for _, m := range prog.Methods {
			if m.MaxStack < 0 {
				t.Fatalf("method %s: negative MaxStack %d", m.Name, m.MaxStack)
			}
			if m.CodeBase%6 != 0 {
				t.Fatalf("method %s: code base %d not trace-line aligned", m.Name, m.CodeBase)
			}
			if len(m.UopOff) != len(m.Code)+1 {
				t.Fatalf("method %s: %d offsets for %d instructions", m.Name, len(m.UopOff), len(m.Code))
			}
			for i, ins := range m.Code {
				want := m.UopOff[i] + uint32(bytecode.UopCost(ins.Op))
				if m.UopOff[i+1] != want {
					t.Fatalf("method %s instr %d: offset %d, want %d", m.Name, i, m.UopOff[i+1], want)
				}
			}
			if m.UopLen != m.UopOff[len(m.Code)] {
				t.Fatalf("method %s: UopLen %d != final offset %d", m.Name, m.UopLen, m.UopOff[len(m.Code)])
			}
		}
		if prog.Disassemble() == "" {
			t.Fatal("linked program disassembled to nothing")
		}
	})
}

// TestDecodeEncodeRoundTrip: corpus seeds built from real programs must
// decode back to the exact instruction sequence they encode.
func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, b := range append(bench.All(), bench.Sync()...) {
		prog := b.Build(1, bench.Tiny, 0)
		for _, m := range prog.Methods {
			got := fuzzcodec.Decode(fuzzcodec.Encode(m.Code), 0)
			if len(got) != len(m.Code) {
				t.Fatalf("%s/%s: round trip length %d != %d", b.Name, m.Name, len(got), len(m.Code))
			}
			for i := range got {
				if got[i] != m.Code[i] {
					t.Fatalf("%s/%s instr %d: %v != %v", b.Name, m.Name, i, got[i], m.Code[i])
				}
			}
		}
	}
}

// seedMethods picks each program's entry method and its largest method —
// the bodies worth replaying as regression inputs.
func seedMethods(prog *bytecode.Program) []*bytecode.Method {
	entry := prog.Methods[prog.Entry]
	largest := entry
	for _, m := range prog.Methods {
		if len(m.Code) > len(largest.Code) {
			largest = m
		}
	}
	if largest == entry {
		return []*bytecode.Method{entry}
	}
	return []*bytecode.Method{entry, largest}
}

// writeSeedCorpus writes one corpus file per seed method of every
// benchmark program into dir (internal/jvm has a twin for its own
// corpus; test packages cannot share helpers across module boundaries).
func writeSeedCorpus(t *testing.T, dir string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, b := range append(bench.All(), bench.Sync()...) {
		prog := b.Build(1, bench.Tiny, 0)
		for _, m := range seedMethods(prog) {
			name := fmt.Sprintf("seed-%s-%s", b.Name, m.Name)
			if err := os.WriteFile(filepath.Join(dir, name), fuzzcodec.SeedFile(m.Code), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestUpdateFuzzCorpus regenerates the checked-in seed corpus when run
// with -update; without the flag it verifies the corpus exists, so a
// fresh checkout cannot silently lose its regression inputs.
func TestUpdateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzVerify")
	if *updateCorpus {
		writeSeedCorpus(t, dir)
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("seed corpus missing at %s (run `go test ./internal/bytecode -run UpdateFuzzCorpus -update`): %v", dir, err)
	}
}

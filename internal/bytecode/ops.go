// Package bytecode defines the stack-machine instruction set executed by
// the JVM substrate (internal/jvm), together with a method builder,
// program linker, verifier and disassembler.
//
// The ISA is a compact analogue of Java bytecode: typed arithmetic over a
// value stack, local variable slots, objects with fields, arrays,
// static/virtual calls, monitors and thread intrinsics. The ten paper
// benchmarks (internal/bench) are real programs written against it, and
// the interpreter translates each executed instruction into the µops the
// SMT core consumes — so the instruction footprint, branch behaviour and
// data traffic of every benchmark come from genuine program structure.
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// The instruction set.
const (
	// Nop does nothing.
	Nop Op = iota

	// Iconst pushes the immediate A as an int.
	Iconst
	// Fconst pushes the method's float pool entry A.
	Fconst
	// Iload pushes local slot A.
	Iload
	// Istore pops into local slot A.
	Istore

	// Integer arithmetic. Binary ops pop b, then a, and push the result.
	Iadd
	Isub
	Imul
	Idiv // panics (VM error) on division by zero in verified code paths
	Irem
	Ineg
	Iand
	Ior
	Ixor
	Ishl
	Ishr

	// Float arithmetic.
	Fadd
	Fsub
	Fmul
	Fdiv
	Fneg
	// Fmath applies the unary math intrinsic selected by A (see MathFn).
	Fmath
	// I2f and F2i convert the top of stack.
	I2f
	F2i

	// Conditional branches pop b, then a, and jump to instruction index
	// A when the comparison holds.
	IfEq
	IfNe
	IfLt
	IfLe
	IfGt
	IfGe
	// IfFLt / IfFGt compare floats.
	IfFLt
	IfFGt
	// IfNull / IfNonNull pop one reference.
	IfNull
	IfNonNull
	// Goto jumps unconditionally to instruction index A.
	Goto

	// Dup duplicates the top of stack; Pop discards it; Swap exchanges
	// the top two slots.
	Dup
	Pop
	Swap

	// New allocates an instance of class A and pushes the reference.
	New
	// GetField pops a reference and pushes field slot A.
	GetField
	// PutField pops a value then a reference and stores field slot A.
	PutField
	// GetStatic / PutStatic access global slot A.
	GetStatic
	PutStatic
	// NewArray pops a length and pushes a new array; A selects the
	// element kind (0 = int, 1 = float, 2 = reference).
	NewArray
	// ALoad pops an index then an array reference and pushes the element.
	ALoad
	// AStore pops a value, an index, then an array reference.
	AStore
	// ArrayLen pops an array reference and pushes its length.
	ArrayLen

	// Call invokes method A directly: the callee's declared arguments
	// are popped (last argument on top) into its locals.
	Call
	// CallVirt is Call through a dispatch table — it costs an indirect
	// branch in the front end, like Java virtual/interface dispatch.
	CallVirt
	// Ret returns void; RetVal returns the top of stack.
	Ret
	RetVal

	// MonEnter / MonExit pop an object reference and acquire/release its
	// monitor; contended acquisition blocks the thread in the OS.
	MonEnter
	MonExit
	// GetVolatile / PutVolatile access global slot A with Java
	// volatile semantics: the store drains the thread's store buffer
	// (release), and both lower with a trailing Fence µop so the JMM
	// ordering has a pipeline cost.
	GetVolatile
	PutVolatile
	// Cas pops a new value then an expected value and atomically
	// compare-and-swaps global slot A, pushing 1 on success and 0 on
	// failure. It is a full fence (x86 lock cmpxchg).
	Cas
	// ThreadStart pops the declared arguments of method A and spawns a
	// new Java thread executing it, pushing the thread's id as an int.
	ThreadStart
	// ThreadJoin pops a thread id and blocks until that thread exits.
	ThreadJoin

	// Halt ends the thread (same as returning from its root frame).
	Halt

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// MathFn selects the intrinsic applied by Fmath.
type MathFn = int32

// Fmath intrinsic selectors.
const (
	MathSqrt MathFn = iota
	MathSin
	MathCos
	MathExp
	MathLog
	MathAbs
)

var opNames = [...]string{
	Nop: "nop", Iconst: "iconst", Fconst: "fconst", Iload: "iload", Istore: "istore",
	Iadd: "iadd", Isub: "isub", Imul: "imul", Idiv: "idiv", Irem: "irem", Ineg: "ineg",
	Iand: "iand", Ior: "ior", Ixor: "ixor", Ishl: "ishl", Ishr: "ishr",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv", Fneg: "fneg", Fmath: "fmath",
	I2f: "i2f", F2i: "f2i",
	IfEq: "ifeq", IfNe: "ifne", IfLt: "iflt", IfLe: "ifle", IfGt: "ifgt", IfGe: "ifge",
	IfFLt: "ifflt", IfFGt: "iffgt", IfNull: "ifnull", IfNonNull: "ifnonnull", Goto: "goto",
	Dup: "dup", Pop: "pop", Swap: "swap",
	New: "new", GetField: "getfield", PutField: "putfield",
	GetStatic: "getstatic", PutStatic: "putstatic",
	NewArray: "newarray", ALoad: "aload", AStore: "astore", ArrayLen: "arraylen",
	Call: "call", CallVirt: "callvirt", Ret: "ret", RetVal: "retval",
	MonEnter: "monenter", MonExit: "monexit",
	GetVolatile: "getvolatile", PutVolatile: "putvolatile", Cas: "cas",
	ThreadStart: "threadstart", ThreadJoin: "threadjoin",
	Halt: "halt",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one bytecode instruction; A's meaning depends on the opcode
// (immediate, local slot, field slot, branch target, method index, ...).
type Instr struct {
	Op Op
	A  int32
}

// String renders the instruction.
func (i Instr) String() string {
	switch i.Op {
	case Nop, Iadd, Isub, Imul, Idiv, Irem, Ineg, Iand, Ior, Ixor, Ishl, Ishr,
		Fadd, Fsub, Fmul, Fdiv, Fneg, I2f, F2i, Dup, Pop, Swap, ALoad, AStore,
		ArrayLen, Ret, RetVal, MonEnter, MonExit, ThreadJoin, Halt, GetField, PutField:
		if i.Op == GetField || i.Op == PutField {
			return fmt.Sprintf("%s %d", i.Op, i.A)
		}
		return i.Op.String()
	default:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	}
}

// stackEffect returns how many slots op pops and pushes. Call/CallVirt/
// ThreadStart depend on the callee and are handled specially by the
// verifier.
func stackEffect(op Op) (pops, pushes int) {
	switch op {
	case Nop, Goto, Halt, Ret:
		return 0, 0
	case Iconst, Fconst, Iload, GetStatic, GetVolatile:
		return 0, 1
	case Istore, Pop, PutStatic, PutVolatile, MonEnter, MonExit, ThreadJoin, RetVal:
		return 1, 0
	case Cas:
		return 2, 1
	case Iadd, Isub, Imul, Idiv, Irem, Iand, Ior, Ixor, Ishl, Ishr,
		Fadd, Fsub, Fmul, Fdiv:
		return 2, 1
	case Ineg, Fneg, Fmath, I2f, F2i, ArrayLen, NewArray, GetField:
		return 1, 1
	case IfEq, IfNe, IfLt, IfLe, IfGt, IfGe, IfFLt, IfFGt:
		return 2, 0
	case IfNull, IfNonNull:
		return 1, 0
	case Dup:
		return 1, 2
	case Swap:
		return 2, 2
	case New:
		return 0, 1
	case PutField:
		return 2, 0
	case ALoad:
		return 2, 1
	case AStore:
		return 3, 0
	default:
		return 0, 0
	}
}

// isBranch reports whether op's A operand is a branch target.
func isBranch(op Op) bool {
	switch op {
	case IfEq, IfNe, IfLt, IfLe, IfGt, IfGe, IfFLt, IfFGt, IfNull, IfNonNull, Goto:
		return true
	}
	return false
}

// UopCost returns the number of µops the interpreter emits for op. It is
// the static code-layout unit: instruction i of a method occupies µop PCs
// [offset(i), offset(i)+UopCost(op)). The costs approximate what a JIT
// would emit for the construct on a P4-class machine.
func UopCost(op Op) int {
	switch op {
	case Nop:
		return 1
	case Iconst, Fconst, Iload, Istore, Dup, Pop, Swap, Ineg, Fneg, I2f, F2i:
		return 1
	case Iadd, Isub, Iand, Ior, Ixor, Ishl, Ishr:
		return 1
	case Imul, Idiv, Irem:
		return 1
	case Fadd, Fsub, Fmul, Fdiv:
		return 1
	case Fmath:
		return 3 // argument shuffling + the long-latency unit
	case IfEq, IfNe, IfLt, IfLe, IfGt, IfGe, IfFLt, IfFGt, IfNull, IfNonNull:
		return 2 // compare + branch
	case Goto:
		return 1
	case GetField, GetStatic, ALoad:
		return 2 // address generation + load
	case PutField, PutStatic, AStore:
		return 2 // address generation + store
	case ArrayLen:
		return 1
	case New, NewArray:
		return 4 // bump-pointer check, advance, header store
	case Call, CallVirt:
		return 3 // spill + (indirect) call
	case Ret, RetVal:
		return 2 // reload + return
	case MonEnter, MonExit:
		return 3 // lock word load + fenced update
	case GetVolatile:
		return 3 // address generation + load + acquire fence
	case PutVolatile:
		return 3 // address generation + store + release fence
	case Cas:
		return 4 // address generation + load + fence + locked store
	case ThreadStart, ThreadJoin:
		return 2 // runtime call stub (plus kernel µops at run time)
	case Halt:
		return 1
	default:
		return 1
	}
}

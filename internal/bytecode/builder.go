package bytecode

import "fmt"

// Label is a forward-patchable branch target issued by a MethodBuilder.
type Label int

// MethodBuilder assembles one method with symbolic labels.
//
//	b := NewMethod("sum", 1, 3)
//	loop := b.NewLabel()
//	...
//	b.Bind(loop)
//	b.Op(Iload, 0)
//	b.Br(IfLt, loop)
//	m := b.Finish()
type MethodBuilder struct {
	m       *Method
	labels  []int // instruction index or -1 while unbound
	patches []patch
	fpool   map[float64]int32
}

type patch struct {
	instr int
	label Label
}

// NewMethod starts a method with nargs arguments and nlocals total local
// slots (nlocals >= nargs).
func NewMethod(name string, nargs, nlocals int) *MethodBuilder {
	if nlocals < nargs {
		panic(fmt.Sprintf("bytecode: method %q: nlocals %d < nargs %d", name, nlocals, nargs))
	}
	return &MethodBuilder{
		m:     &Method{Name: name, NArgs: nargs, NLocals: nlocals},
		fpool: make(map[float64]int32),
	}
}

// ArgRefs marks which argument slots carry references.
func (b *MethodBuilder) ArgRefs(mask uint64) *MethodBuilder {
	b.m.ArgRefMask = mask
	return b
}

// ReturnsRef marks the method as returning a reference.
func (b *MethodBuilder) ReturnsRef() *MethodBuilder {
	b.m.ReturnsRef = true
	return b
}

// Op appends an instruction. The operand is optional; at most one is used.
func (b *MethodBuilder) Op(op Op, operand ...int32) *MethodBuilder {
	a := int32(0)
	if len(operand) > 0 {
		a = operand[0]
	}
	if len(operand) > 1 {
		panic("bytecode: Op takes at most one operand")
	}
	if isBranch(op) {
		panic(fmt.Sprintf("bytecode: use Br for branch op %v", op))
	}
	b.m.Code = append(b.m.Code, Instr{Op: op, A: a})
	return b
}

// Const pushes an int constant.
func (b *MethodBuilder) Const(v int32) *MethodBuilder { return b.Op(Iconst, v) }

// FConst pushes a float constant, interning it in the method's pool.
func (b *MethodBuilder) FConst(v float64) *MethodBuilder {
	idx, ok := b.fpool[v]
	if !ok {
		idx = int32(len(b.m.FPool))
		b.m.FPool = append(b.m.FPool, v)
		b.fpool[v] = idx
	}
	return b.Op(Fconst, idx)
}

// Load pushes local slot i; Store pops into local slot i.
func (b *MethodBuilder) Load(i int32) *MethodBuilder  { return b.Op(Iload, i) }
func (b *MethodBuilder) Store(i int32) *MethodBuilder { return b.Op(Istore, i) }

// NewLabel creates an unbound label.
func (b *MethodBuilder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind anchors l at the next instruction.
func (b *MethodBuilder) Bind(l Label) *MethodBuilder {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("bytecode: label %d bound twice in %q", l, b.m.Name))
	}
	b.labels[l] = len(b.m.Code)
	return b
}

// Br appends a branch to label l.
func (b *MethodBuilder) Br(op Op, l Label) *MethodBuilder {
	if !isBranch(op) {
		panic(fmt.Sprintf("bytecode: %v is not a branch", op))
	}
	b.patches = append(b.patches, patch{instr: len(b.m.Code), label: l})
	b.m.Code = append(b.m.Code, Instr{Op: op})
	return b
}

// Finish resolves labels and returns the method. The builder must not be
// reused afterwards.
func (b *MethodBuilder) Finish() *Method {
	for _, p := range b.patches {
		tgt := b.labels[p.label]
		if tgt < 0 {
			panic(fmt.Sprintf("bytecode: unbound label %d in %q", p.label, b.m.Name))
		}
		b.m.Code[p.instr].A = int32(tgt)
	}
	return b.m
}

// ProgramBuilder accumulates classes, methods and globals.
type ProgramBuilder struct {
	p *Program
}

// NewProgram starts a program.
func NewProgram(name string) *ProgramBuilder {
	return &ProgramBuilder{p: &Program{Name: name, Entry: -1}}
}

// Class registers a class and returns its index.
func (pb *ProgramBuilder) Class(name string, numFields int, refMask uint64) int32 {
	pb.p.Classes = append(pb.p.Classes, Class{Name: name, NumFields: numFields, RefMask: refMask})
	return int32(len(pb.p.Classes) - 1)
}

// Globals declares the static-field slots.
func (pb *ProgramBuilder) Globals(n int, refMask uint64) {
	pb.p.NumGlobals = n
	pb.p.GlobalRefMask = refMask
}

// Add registers a method and returns its index.
func (pb *ProgramBuilder) Add(m *Method) int32 {
	pb.p.Methods = append(pb.p.Methods, m)
	return int32(len(pb.p.Methods) - 1)
}

// Count returns how many methods have been added so far — the index the
// next Add will assign, which lets builders wire self-recursive methods.
func (pb *ProgramBuilder) Count() int32 { return int32(len(pb.p.Methods)) }

// Replace swaps the method at index i for m. Mutually recursive method
// groups register a placeholder first (fixing the index), then replace it
// once the methods it calls have indices.
func (pb *ProgramBuilder) Replace(i int32, m *Method) {
	if i < 0 || int(i) >= len(pb.p.Methods) {
		panic(fmt.Sprintf("bytecode: Replace index %d out of range", i))
	}
	pb.p.Methods[i] = m
}

// Entry marks method index i as the program entry point.
func (pb *ProgramBuilder) Entry(i int32) { pb.p.Entry = int(i) }

// Link finalizes the program at the given code base (0 = UserCodeBase).
func (pb *ProgramBuilder) Link(base uint64) (*Program, error) {
	if err := pb.p.Link(base); err != nil {
		return nil, err
	}
	return pb.p, nil
}

// MustLink is Link that panics on error, for statically-known-good
// programs (the benchmark suite).
func (pb *ProgramBuilder) MustLink(base uint64) *Program {
	p, err := pb.Link(base)
	if err != nil {
		panic(err)
	}
	return p
}

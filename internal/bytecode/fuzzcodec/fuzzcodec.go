// Package fuzzcodec is the byte encoding the fuzz targets use to move
// method bodies through `go test`'s []byte-valued fuzz corpus: a flat
// 5-byte record per instruction (opcode byte, then the A operand as
// little-endian int32). Decode(Encode(code)) == code for every valid
// method body, so corpora seeded from the real benchmark programs replay
// those exact programs, while arbitrary mutated bytes still decode to
// *some* instruction sequence for the verifier and interpreter to face.
package fuzzcodec

import (
	"encoding/binary"
	"strconv"

	"javasmt/internal/bytecode"
)

// recordLen is the encoded size of one instruction.
const recordLen = 5

// Encode flattens a method body into corpus bytes.
func Encode(code []bytecode.Instr) []byte {
	out := make([]byte, 0, len(code)*recordLen)
	for _, ins := range code {
		var rec [recordLen]byte
		rec[0] = byte(ins.Op)
		binary.LittleEndian.PutUint32(rec[1:], uint32(ins.A))
		out = append(out, rec[:]...)
	}
	return out
}

// SeedFile renders a method body as a `go test fuzz v1` corpus file for a
// []byte-valued fuzz target, the format the toolchain reads from
// testdata/fuzz/<FuzzName>/. The corpus-update tests use it to seed the
// fuzz targets with the ten benchmark programs' real method bodies.
func SeedFile(code []bytecode.Instr) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(Encode(code))) + ")\n")
}

// Harness-program shape: the fuzzed body becomes the entry method of a
// fixed scaffold rich enough that bodies lifted from the real benchmarks
// often still verify — generous locals and float pool, a bank of globals,
// a couple of classes, and callable stub methods at indices 1..NumStubs.
const (
	// NLocals is the fuzzed method's local-slot count.
	NLocals = 64
	// NumStubs is how many callable stub methods follow the entry.
	NumStubs = 15
	// NumGlobals is the scaffold's static-slot count.
	NumGlobals = 32
)

// HarnessProgram wraps a fuzzed method body in the standard scaffold. The
// returned program is not linked; callers run Link (which verifies) and
// treat an error as "input rejected", never as a crash.
func HarnessProgram(code []bytecode.Instr) *bytecode.Program {
	fpool := make([]float64, 16)
	for i := range fpool {
		fpool[i] = float64(i) * 0.5
	}
	methods := []*bytecode.Method{{
		Name:    "fuzzed",
		NLocals: NLocals,
		Code:    code,
		FPool:   fpool,
	}}
	for i := 1; i <= NumStubs; i++ {
		m := &bytecode.Method{
			Name:    "stub" + string(rune('a'+i-1)),
			NArgs:   i % 3, // a mix of arities so Call pops 0, 1 or 2
			NLocals: 4,
		}
		if i%2 == 0 {
			m.Code = []bytecode.Instr{
				{Op: bytecode.Iconst, A: int32(i)},
				{Op: bytecode.RetVal},
			}
		} else {
			m.Code = []bytecode.Instr{{Op: bytecode.Ret}}
		}
		methods = append(methods, m)
	}
	return &bytecode.Program{
		Name:    "fuzz",
		Classes: []bytecode.Class{{Name: "A", NumFields: 4}, {Name: "B", NumFields: 8, RefMask: 0x3}},
		Methods: methods,
		// Globals: the low two slots are references (GC roots), the rest
		// plain words.
		NumGlobals:    NumGlobals,
		GlobalRefMask: 0x3,
		Entry:         0,
	}
}

// Decode reconstructs a method body from corpus bytes. The opcode byte is
// reduced modulo NumOps so every input decodes (mutation can produce any
// byte); trailing bytes short of a full record are ignored. MaxInstrs
// bounds the body so a huge input cannot balloon the harness; 0 means no
// bound.
func Decode(data []byte, maxInstrs int) []bytecode.Instr {
	n := len(data) / recordLen
	if maxInstrs > 0 && n > maxInstrs {
		n = maxInstrs
	}
	code := make([]bytecode.Instr, n)
	for i := 0; i < n; i++ {
		rec := data[i*recordLen : (i+1)*recordLen]
		code[i] = bytecode.Instr{
			Op: bytecode.Op(int(rec[0]) % bytecode.NumOps),
			A:  int32(binary.LittleEndian.Uint32(rec[1:])),
		}
	}
	return code
}

package bytecode

import (
	"strings"
	"testing"
	"testing/quick"
)

// sumMethod builds: sum(n) { s=0; for i=0..n-1 { s+=i }; return s }
func sumMethod() *Method {
	b := NewMethod("sum", 1, 3) // 0=n, 1=s, 2=i
	loop := b.NewLabel()
	done := b.NewLabel()
	b.Const(0).Store(1)
	b.Const(0).Store(2)
	b.Bind(loop)
	b.Load(2).Load(0)
	b.Br(IfGe, done)
	b.Load(1).Load(2).Op(Iadd).Store(1)
	b.Load(2).Const(1).Op(Iadd).Store(2)
	b.Br(Goto, loop)
	b.Bind(done)
	b.Load(1)
	b.Op(RetVal)
	return b.Finish()
}

func mainCalling(callee int32) *Method {
	b := NewMethod("main", 0, 1)
	b.Const(10)
	b.Op(Call, callee)
	b.Op(Pop)
	b.Op(Ret)
	return b.Finish()
}

func linkedProgram(t *testing.T) *Program {
	t.Helper()
	pb := NewProgram("test")
	sum := pb.Add(sumMethod())
	main := pb.Add(mainCalling(sum))
	pb.Entry(main)
	p, err := pb.Link(0)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func TestLinkAssignsDisjointAlignedCode(t *testing.T) {
	p := linkedProgram(t)
	m0, m1 := p.Methods[0], p.Methods[1]
	if m0.CodeBase < UserCodeBase || m0.CodeBase >= UserCodeBase+6 {
		t.Fatalf("first method base = %d, want trace-line-aligned base just above %d", m0.CodeBase, UserCodeBase)
	}
	if m0.CodeBase%6 != 0 || m1.CodeBase%6 != 0 {
		t.Fatal("methods must be trace-line aligned")
	}
	if m1.CodeBase < m0.CodeBase+uint64(m0.UopLen) {
		t.Fatal("method code ranges overlap")
	}
	if p.CodeUops == 0 {
		t.Fatal("program code footprint not computed")
	}
	// Per-instruction offsets are strictly increasing by UopCost.
	for i, ins := range m0.Code {
		if got := m0.UopOff[i+1] - m0.UopOff[i]; got != uint32(UopCost(ins.Op)) {
			t.Fatalf("instr %d (%v): offset delta %d != UopCost %d", i, ins.Op, got, UopCost(ins.Op))
		}
	}
}

func TestVerifyComputesMaxStack(t *testing.T) {
	p := linkedProgram(t)
	if ms := p.Methods[0].MaxStack; ms != 2 {
		t.Fatalf("sum MaxStack = %d, want 2", ms)
	}
}

func TestMethodByName(t *testing.T) {
	p := linkedProgram(t)
	if m, ok := p.MethodByName("sum"); !ok || m.Name != "sum" {
		t.Fatal("MethodByName failed")
	}
	if _, ok := p.MethodByName("nope"); ok {
		t.Fatal("unknown method must not resolve")
	}
}

func TestFConstInterning(t *testing.T) {
	b := NewMethod("f", 0, 0)
	b.FConst(3.14).Op(Pop).FConst(3.14).Op(Pop).FConst(2.71).Op(Pop).Op(Ret)
	m := b.Finish()
	if len(m.FPool) != 2 {
		t.Fatalf("fpool size = %d, want 2 (interned)", len(m.FPool))
	}
}

func mustFail(t *testing.T, name string, build func(pb *ProgramBuilder)) {
	t.Helper()
	pb := NewProgram(name)
	build(pb)
	if _, err := pb.Link(0); err == nil {
		t.Fatalf("%s: Link should have failed", name)
	}
}

func TestVerifyRejections(t *testing.T) {
	mustFail(t, "underflow", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 0)
		b.Op(Iadd).Op(Pop).Op(Ret) // pops from empty stack
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "fallthrough", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 0)
		b.Const(1).Op(Pop) // no terminator
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "bad-local", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 1)
		b.Load(3).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "ret-nonempty", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 0)
		b.Const(1).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "mixed-returns", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 1)
		done := b.NewLabel()
		b.Load(0).Const(0)
		b.Br(IfEq, done)
		b.Const(1).Op(RetVal)
		b.Bind(done)
		b.Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "inconsistent-depth", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 1)
		merge := b.NewLabel()
		b.Load(0).Const(0)
		b.Br(IfEq, merge) // path A reaches merge with depth 0
		b.Const(7)        // path B reaches merge with depth 1
		b.Bind(merge)
		b.Op(Pop)
		b.Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "bad-global", func(pb *ProgramBuilder) {
		pb.Globals(2, 0)
		b := NewMethod("main", 0, 0)
		b.Op(GetStatic, 5).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "entry-with-args", func(pb *ProgramBuilder) {
		pb.Entry(pb.Add(sumMethod()))
	})
	mustFail(t, "bad-entry", func(pb *ProgramBuilder) {
		pb.Add(sumMethod())
		pb.Entry(7)
	})
	mustFail(t, "empty", func(pb *ProgramBuilder) {})
	mustFail(t, "dup-names", func(pb *ProgramBuilder) {
		a := NewMethod("m", 0, 0)
		a.Op(Ret)
		c := NewMethod("m", 0, 0)
		c.Op(Ret)
		pb.Add(a.Finish())
		pb.Entry(pb.Add(c.Finish()))
	})
	mustFail(t, "bad-call-target", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 0)
		b.Op(Call, 9).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "bad-array-kind", func(pb *ProgramBuilder) {
		b := NewMethod("main", 0, 0)
		b.Const(4).Op(NewArray, 9).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "bad-volatile-slot", func(pb *ProgramBuilder) {
		pb.Globals(2, 0)
		b := NewMethod("main", 0, 0)
		b.Op(GetVolatile, 4).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "bad-cas-slot", func(pb *ProgramBuilder) {
		pb.Globals(1, 0)
		b := NewMethod("main", 0, 0)
		b.Const(0).Const(1).Op(Cas, 3).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "monexit-without-enter", func(pb *ProgramBuilder) {
		cls := pb.Class("O", 1, 0)
		b := NewMethod("main", 0, 1)
		b.Op(New, cls).Store(0)
		b.Load(0).Op(MonExit)
		b.Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "ret-holding-monitor", func(pb *ProgramBuilder) {
		cls := pb.Class("O", 1, 0)
		b := NewMethod("main", 0, 1)
		b.Op(New, cls).Store(0)
		b.Load(0).Op(MonEnter)
		b.Op(Ret)
		pb.Entry(pb.Add(b.Finish()))
	})
	mustFail(t, "retval-holding-monitor", func(pb *ProgramBuilder) {
		cls := pb.Class("O", 1, 0)
		b := NewMethod("m", 0, 1)
		b.Op(New, cls).Store(0)
		b.Load(0).Op(MonEnter)
		b.Const(1).Op(RetVal)
		pb.Add(b.Finish())
		m := NewMethod("main", 0, 0)
		m.Op(Call, 0).Op(Pop).Op(Ret)
		pb.Entry(pb.Add(m.Finish()))
	})
	mustFail(t, "inconsistent-monitor-depth", func(pb *ProgramBuilder) {
		cls := pb.Class("O", 1, 0)
		b := NewMethod("main", 1, 2)
		merge := b.NewLabel()
		b.Op(New, cls).Store(1)
		b.Load(0).Const(0)
		b.Br(IfEq, merge) // path A reaches merge with no monitor held
		b.Load(1).Op(MonEnter)
		b.Bind(merge) // path B arrives holding one
		b.Load(1).Op(MonExit)
		b.Op(Ret)
		pb.Add(b.Finish())
		m := NewMethod("main2", 0, 0)
		m.Const(0).Op(Call, 0).Op(Ret)
		pb.Entry(pb.Add(m.Finish()))
	})
}

func TestVerifyAcceptsBalancedMonitors(t *testing.T) {
	pb := NewProgram("balanced")
	cls := pb.Class("O", 1, 0)
	pb.Globals(1, 0)
	b := NewMethod("main", 0, 1)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Op(New, cls).Store(0)
	b.Bind(loop)
	b.Op(GetStatic, 0).Const(3)
	b.Br(IfGe, done)
	b.Load(0).Op(MonEnter)
	b.Op(GetStatic, 0).Const(1).Op(Iadd).Op(PutStatic, 0)
	b.Load(0).Op(MonExit)
	b.Br(Goto, loop)
	b.Bind(done)
	b.Op(Ret)
	pb.Entry(pb.Add(b.Finish()))
	if _, err := pb.Link(0); err != nil {
		t.Fatalf("balanced monitor loop should verify: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("locals<args", func() { NewMethod("m", 3, 1) })
	assertPanics("branch-via-Op", func() { NewMethod("m", 0, 0).Op(Goto, 0) })
	assertPanics("nonbranch-via-Br", func() {
		b := NewMethod("m", 0, 0)
		b.Br(Iadd, b.NewLabel())
	})
	assertPanics("unbound-label", func() {
		b := NewMethod("m", 0, 0)
		b.Br(Goto, b.NewLabel())
		b.Finish()
	})
	assertPanics("double-bind", func() {
		b := NewMethod("m", 0, 0)
		l := b.NewLabel()
		b.Bind(l)
		b.Bind(l)
	})
	assertPanics("two-operands", func() { NewMethod("m", 0, 0).Op(Iconst, 1, 2) })
}

func TestDisassembleMentionsEverything(t *testing.T) {
	p := linkedProgram(t)
	d := p.Disassemble()
	for _, want := range []string{"sum", "main", "iadd", "ifge", "retval", "call"} {
		if !strings.Contains(d, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for o := Op(0); int(o) < NumOps; o++ {
		if strings.HasPrefix(o.String(), "op(") {
			t.Fatalf("opcode %d lacks a name", o)
		}
		if UopCost(o) < 1 {
			t.Fatalf("opcode %v has non-positive µop cost", o)
		}
	}
}

// Property: for any opcode, stackEffect pops/pushes are small and
// non-negative, and branch ops never push.
func TestStackEffectSanity(t *testing.T) {
	f := func(raw uint8) bool {
		o := Op(raw % uint8(NumOps))
		pops, pushes := stackEffect(o)
		if pops < 0 || pushes < 0 || pops > 3 || pushes > 2 {
			return false
		}
		if isBranch(o) && pushes != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

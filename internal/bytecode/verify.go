package bytecode

import "fmt"

// Verify statically checks every method: operands in range, branch targets
// valid, stack depth consistent along all control-flow paths, and no
// fall-through past the last instruction. It also computes each method's
// MaxStack. Link calls it automatically.
func (p *Program) Verify() error {
	for _, m := range p.Methods {
		if err := p.verifyMethod(m); err != nil {
			return fmt.Errorf("bytecode: %s: %w", m.Name, err)
		}
	}
	return nil
}

func (p *Program) verifyMethod(m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}

	// Operand validity.
	for i, ins := range m.Code {
		a := ins.A
		switch ins.Op {
		case Iload, Istore:
			if a < 0 || int(a) >= m.NLocals {
				return fmt.Errorf("instr %d: local %d out of range [0,%d)", i, a, m.NLocals)
			}
		case Fconst:
			if a < 0 || int(a) >= len(m.FPool) {
				return fmt.Errorf("instr %d: fpool %d out of range", i, a)
			}
		case New:
			if a < 0 || int(a) >= len(p.Classes) {
				return fmt.Errorf("instr %d: class %d out of range", i, a)
			}
		case GetField, PutField:
			if a < 0 {
				return fmt.Errorf("instr %d: negative field slot", i)
			}
		case GetStatic, PutStatic, GetVolatile, PutVolatile, Cas:
			if a < 0 || int(a) >= p.NumGlobals {
				return fmt.Errorf("instr %d: global %d out of range [0,%d)", i, a, p.NumGlobals)
			}
		case NewArray:
			if a != KindInt && a != KindFloat && a != KindRef {
				return fmt.Errorf("instr %d: bad array kind %d", i, a)
			}
		case Call, CallVirt, ThreadStart:
			if a < 0 || int(a) >= len(p.Methods) {
				return fmt.Errorf("instr %d: method %d out of range", i, a)
			}
		case Fmath:
			if a < MathSqrt || a > MathAbs {
				return fmt.Errorf("instr %d: bad math fn %d", i, a)
			}
		}
		if isBranch(ins.Op) {
			if a < 0 || int(a) >= n {
				return fmt.Errorf("instr %d: branch target %d out of range", i, a)
			}
		}
	}

	// A method must not mix Ret and RetVal: its callers' stack depth
	// would become path-dependent.
	hasRet, hasRetVal := false, false
	for _, ins := range m.Code {
		if ins.Op == Ret {
			hasRet = true
		}
		if ins.Op == RetVal {
			hasRetVal = true
		}
	}
	if hasRet && hasRetVal {
		return fmt.Errorf("mixes ret and retval")
	}

	// Stack-depth and monitor-depth dataflow: every path must agree on
	// both depths at each instruction, neither may go negative, and the
	// method must terminate via Ret/RetVal/Halt with every MonEnter
	// matched by a MonExit. The monitor dataflow is what turns an
	// unbalanced MonEnter/MonExit pair into a structured link-time error
	// instead of a runtime deadlock-by-cycle-budget.
	depth := make([]int, n)
	mons := make([]int, n)
	for i := range depth {
		depth[i] = -1 // unvisited
	}
	type item struct{ pc, d, md int }
	work := []item{{0, 0, 0}}
	maxStack := 0
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		pc, d, md := it.pc, it.d, it.md
		for {
			if pc >= n {
				return fmt.Errorf("fall-through past end of code (depth %d)", d)
			}
			if depth[pc] != -1 {
				if depth[pc] != d {
					return fmt.Errorf("instr %d: inconsistent stack depth (%d vs %d)", pc, depth[pc], d)
				}
				if mons[pc] != md {
					return fmt.Errorf("instr %d: inconsistent monitor depth (%d vs %d)", pc, mons[pc], md)
				}
				break
			}
			depth[pc] = d
			mons[pc] = md
			ins := m.Code[pc]

			switch ins.Op {
			case MonEnter:
				md++
			case MonExit:
				if md == 0 {
					return fmt.Errorf("instr %d: monexit without a matching monenter", pc)
				}
				md--
			}

			pops, pushes := stackEffect(ins.Op)
			switch ins.Op {
			case Call, CallVirt:
				callee := p.Methods[ins.A]
				pops = callee.NArgs
				pushes = 0
				if hasReturnValue(callee) {
					pushes = 1
				}
			case ThreadStart:
				callee := p.Methods[ins.A]
				pops = callee.NArgs
				pushes = 1
			}
			if d < pops {
				return fmt.Errorf("instr %d (%v): stack underflow (depth %d, pops %d)", pc, ins.Op, d, pops)
			}
			d = d - pops + pushes
			if d > maxStack {
				maxStack = d
			}

			switch ins.Op {
			case Ret, Halt:
				if ins.Op == Ret && d != 0 {
					return fmt.Errorf("instr %d: ret with non-empty stack (depth %d)", pc, d)
				}
				if md != 0 {
					return fmt.Errorf("instr %d: %v with %d unreleased monitors", pc, ins.Op, md)
				}
			case RetVal:
				// The return value was popped by the stack effect
				// above; nothing else may remain.
				if d != 0 {
					return fmt.Errorf("instr %d: retval with extra values on the stack (depth %d)", pc, d)
				}
				if md != 0 {
					return fmt.Errorf("instr %d: retval with %d unreleased monitors", pc, md)
				}
			case Goto:
				work = append(work, item{int(ins.A), d, md})
			default:
				if isBranch(ins.Op) {
					work = append(work, item{int(ins.A), d, md})
				}
				pc++
				continue
			}
			break
		}
	}
	// RetVal leaves depth 1 conceptually, but the value transfers to the
	// caller; MaxStack already accounts for it.
	m.MaxStack = maxStack
	return nil
}

// hasReturnValue inspects a method's exits: it returns a value iff any
// reachable exit is RetVal. Mixing Ret and RetVal in one method is
// rejected here because the caller's stack depth would become ambiguous.
func hasReturnValue(m *Method) bool {
	hasVal := false
	for _, ins := range m.Code {
		if ins.Op == RetVal {
			hasVal = true
		}
	}
	return hasVal
}

package bytecode

import (
	"fmt"
	"strings"
)

// ArrayKind selects array element representation for NewArray.
const (
	KindInt = iota
	KindFloat
	KindRef
)

// Class describes an object layout.
type Class struct {
	Name string
	// NumFields is the number of one-slot fields.
	NumFields int
	// RefMask marks which field slots hold references (bit i = slot i);
	// the garbage collector traces exactly these.
	RefMask uint64
}

// Method is one compiled method.
type Method struct {
	Name string
	// NArgs arguments arrive in local slots [0, NArgs); ArgRefMask marks
	// which of them are references (for GC root scanning).
	NArgs      int
	ArgRefMask uint64
	// NLocals is the total local slot count (>= NArgs).
	NLocals int
	// ReturnsRef marks a method whose return value is a reference.
	ReturnsRef bool
	Code       []Instr
	// FPool holds float constants referenced by Fconst.
	FPool []float64

	// Linked layout (filled by Program.Link): CodeBase is the method's
	// first µop PC; UopOff[i] is instruction i's µop offset within the
	// method; UopLen is the method's total µop footprint.
	CodeBase uint64
	UopOff   []uint32
	UopLen   uint32
	// MaxStack is computed by the verifier.
	MaxStack int
	index    int
}

// Index returns the method's index within its linked program.
func (m *Method) Index() int { return m.index }

// Program is a linked set of classes, methods and globals — the unit the
// JVM loads.
type Program struct {
	Name    string
	Classes []Class
	Methods []*Method
	// NumGlobals is the static-field slot count; GlobalRefMask marks
	// reference slots (GC roots).
	NumGlobals    int
	GlobalRefMask uint64
	// Entry is the index of the main method (must take 0 args).
	Entry int

	// CodeUops is the total linked code footprint in µops.
	CodeUops uint64
	byName   map[string]int
}

// UserCodeBase is the µop PC where user programs are linked. It sits well
// below simos.KernelCodeBase so user and kernel code never collide.
const UserCodeBase = 1 << 22

// MethodByName returns the linked method with the given name.
func (p *Program) MethodByName(name string) (*Method, bool) {
	i, ok := p.byName[name]
	if !ok {
		return nil, false
	}
	return p.Methods[i], true
}

// Link assigns code addresses to every method (sequentially from base),
// verifies the program, and freezes it. base is in µop-PC units; pass 0
// to use UserCodeBase. Programs run as separate simulated processes
// should be linked at distinct bases so their code does not alias.
func (p *Program) Link(base uint64) error {
	if base == 0 {
		base = UserCodeBase
	}
	if len(p.Methods) == 0 {
		return fmt.Errorf("bytecode: program %q has no methods", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Methods) {
		return fmt.Errorf("bytecode: program %q entry %d out of range", p.Name, p.Entry)
	}
	p.byName = make(map[string]int, len(p.Methods))
	// Trace lines hold 6 µops; align the whole image like the methods.
	pc := (base + 5) / 6 * 6
	for i, m := range p.Methods {
		if _, dup := p.byName[m.Name]; dup {
			return fmt.Errorf("bytecode: duplicate method name %q", m.Name)
		}
		p.byName[m.Name] = i
		m.index = i
		m.CodeBase = pc
		m.UopOff = make([]uint32, len(m.Code)+1)
		off := uint32(0)
		for j, ins := range m.Code {
			m.UopOff[j] = off
			off += uint32(UopCost(ins.Op))
		}
		m.UopOff[len(m.Code)] = off
		m.UopLen = off
		pc += uint64(off)
		// Methods start on fresh trace lines, as compilers align them.
		pc = (pc + 5) / 6 * 6
	}
	p.CodeUops = pc - base
	if err := p.Verify(); err != nil {
		return err
	}
	if p.Methods[p.Entry].NArgs != 0 {
		return fmt.Errorf("bytecode: entry method %q must take no arguments", p.Methods[p.Entry].Name)
	}
	return nil
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, m := range p.Methods {
		fmt.Fprintf(&b, "%s (args=%d locals=%d stack=%d code=%d uops)\n",
			m.Name, m.NArgs, m.NLocals, m.MaxStack, m.UopLen)
		for i, ins := range m.Code {
			fmt.Fprintf(&b, "  %4d: %s\n", i, ins)
		}
	}
	return b.String()
}

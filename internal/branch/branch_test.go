package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAlwaysTakenLoopLearns(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := uint64(100), uint64(40)
	warmup, steady := 0, 0
	for i := 0; i < 100; i++ {
		ok, _ := p.Predict(pc, true, target, false, 0)
		if !ok {
			if i < 50 {
				warmup++
			} else {
				steady++
			}
		}
	}
	// Gshare needs ~HistoryBits predictions for the history register to
	// saturate before the PHT index stabilizes; after that, a
	// monomorphic taken branch must never mispredict.
	if warmup > 20 {
		t.Fatalf("warmup misses = %d, want <= 20", warmup)
	}
	if steady != 0 {
		t.Fatalf("steady-state misses = %d, want 0", steady)
	}
	s := p.Stats()
	if s.Branches[0] != 100 {
		t.Fatalf("branches = %d, want 100", s.Branches[0])
	}
	if s.BTBMisses[0] != 1 {
		t.Fatalf("BTB misses = %d, want 1 (cold only)", s.BTBMisses[0])
	}
}

func TestNotTakenDefaultWithoutBTBEntry(t *testing.T) {
	p := New(DefaultConfig())
	// A never-taken branch never allocates a BTB entry, is predicted
	// fall-through, and is always correct — but counts as a BTB miss
	// every time (no entry exists), matching P4 event semantics.
	for i := 0; i < 50; i++ {
		ok, pen := p.Predict(200, false, 0, false, 0)
		if !ok || pen != 0 {
			t.Fatalf("iteration %d: not-taken branch should predict correctly", i)
		}
	}
	if m := p.Stats().BTBMisses[0]; m != 50 {
		t.Fatalf("BTB misses = %d, want 50", m)
	}
}

func TestIndirectTargetChangesMispredict(t *testing.T) {
	p := New(DefaultConfig())
	// Interpreter-style dispatch: same PC, rotating targets.
	targets := []uint64{10, 20, 30, 40}
	mis := 0
	for i := 0; i < 400; i++ {
		if ok, _ := p.Predict(300, true, targets[i%len(targets)], true, 0); !ok {
			mis++
		}
	}
	if mis < 200 {
		t.Fatalf("rotating indirect targets should mispredict heavily, got %d/400", mis)
	}
}

func TestMispredictPenalty(t *testing.T) {
	p := New(DefaultConfig())
	_, pen := p.Predict(100, true, 50, false, 0) // cold: no BTB entry, taken => wrong
	if pen != DefaultConfig().MispredictPenalty {
		t.Fatalf("penalty = %d, want %d", pen, DefaultConfig().MispredictPenalty)
	}
}

func TestBTBEntriesArePerContext(t *testing.T) {
	p := New(DefaultConfig())
	pc, tgt := uint64(64), uint64(8)
	// Warm context 0.
	for i := 0; i < 10; i++ {
		p.Predict(pc, true, tgt, false, 0)
	}
	before := p.Stats().BTBMisses[1]
	p.Predict(pc, true, tgt, false, 1)
	if p.Stats().BTBMisses[1] != before+1 {
		t.Fatal("context 1 must not hit on context 0's BTB entry (thread-tagged)")
	}
}

func TestSharedCapacityIsDestructive(t *testing.T) {
	cfg := DefaultConfig()
	run := func(dual bool) float64 {
		p := New(cfg)
		rng := rand.New(rand.NewSource(42))
		// Enough distinct branch PCs to stress a 4096-entry BTB when doubled.
		pcs := make([]uint64, 3000)
		for i := range pcs {
			pcs[i] = uint64(rng.Intn(1 << 20))
		}
		for iter := 0; iter < 20; iter++ {
			for _, pc := range pcs {
				p.Predict(pc, true, pc+1, false, 0)
				if dual {
					p.Predict(pc, true, pc+1, false, 1)
				}
			}
		}
		s := p.Stats()
		return float64(s.BTBMisses[0]) / float64(s.Branches[0])
	}
	solo, dual := run(false), run(true)
	if dual <= solo {
		t.Fatalf("BTB miss ratio should rise when a second context shares capacity: solo=%.4f dual=%.4f", solo, dual)
	}
}

func TestFlushThread(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.Predict(128, true, 4, false, 0)
		p.Predict(129, true, 4, false, 1)
	}
	p.FlushThread(0)
	p.ResetStats()
	p.Predict(128, true, 4, false, 0)
	p.Predict(129, true, 4, false, 1)
	s := p.Stats()
	if s.BTBMisses[0] != 1 {
		t.Fatal("context 0 BTB entry should have been flushed")
	}
	if s.BTBMisses[1] != 0 {
		t.Fatal("context 1 BTB entry should survive a context 0 flush")
	}
}

func TestStatsInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		p := New(DefaultConfig())
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			p.Predict(uint64(rng.Intn(512)), rng.Intn(2) == 0, uint64(rng.Intn(512)), rng.Intn(4) == 0, rng.Intn(2))
		}
		s := p.Stats()
		return s.TotalBranches() == uint64(n) &&
			s.TotalBTBMisses() <= s.TotalBranches() &&
			s.Mispredicts[0] <= s.Branches[0] && s.Mispredicts[1] <= s.Branches[1] &&
			s.MissRatio() >= 0 && s.MissRatio() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatioEmpty(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty stats must have zero miss ratio")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{BTBEntries: 12, BTBAssoc: 4, HistoryBits: 4})
}

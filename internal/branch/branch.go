// Package branch models the Pentium 4 front-end branch machinery: a
// gshare-style direction predictor and a Branch Target Buffer.
//
// Per the paper, "the Pentium 4 ... treats the BTB as a shared structure
// with entries that are tagged with a logical processor ID. This sharing
// will cause destructive interferences and thus increase BTB miss ratios"
// under Hyper-Threading — the design reproduced here. The direction
// history table is likewise shared (untagged), so cross-thread aliasing
// additionally perturbs direction prediction.
package branch

// Config sizes the predictor structures.
type Config struct {
	// BTBEntries is the number of BTB entries (4096 on the P4 class
	// machines of the era).
	BTBEntries int
	// BTBAssoc is the BTB associativity.
	BTBAssoc int
	// HistoryBits sizes the gshare pattern-history table (2^bits
	// two-bit counters) and the global history register.
	HistoryBits uint
	// MispredictPenalty is the pipeline refill cost in cycles. The P4's
	// 20-stage Netburst pipeline pays roughly this on each mispredict.
	MispredictPenalty int
}

// DefaultConfig returns the paper machine's predictor geometry.
func DefaultConfig() Config {
	return Config{BTBEntries: 4096, BTBAssoc: 4, HistoryBits: 12, MispredictPenalty: 32}
}

// Stats accumulates prediction outcomes per context.
type Stats struct {
	// Branches counts conditional and indirect control transfers seen.
	Branches [2]uint64
	// BTBMisses counts lookups that found no matching entry (the
	// paper's Figure 7 metric is BTBMisses/Branches).
	BTBMisses [2]uint64
	// Mispredicts counts direction or target mispredictions, which cost
	// the pipeline a flush.
	Mispredicts [2]uint64
}

// TotalBranches sums branches over both contexts.
func (s Stats) TotalBranches() uint64 { return s.Branches[0] + s.Branches[1] }

// TotalBTBMisses sums BTB misses over both contexts.
func (s Stats) TotalBTBMisses() uint64 { return s.BTBMisses[0] + s.BTBMisses[1] }

// TotalMispredicts sums direction/target mispredictions over both
// contexts (the numerator of the observability layer's MPKI series).
func (s Stats) TotalMispredicts() uint64 { return s.Mispredicts[0] + s.Mispredicts[1] }

// MissRatio returns BTB misses per branch across both contexts.
func (s Stats) MissRatio() float64 {
	if b := s.TotalBranches(); b > 0 {
		return float64(s.TotalBTBMisses()) / float64(b)
	}
	return 0
}

type btbEntry struct {
	tag    uint64
	target uint64
	lru    uint64
	tid    int8
	valid  bool
}

// Predictor is the combined direction predictor + BTB.
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters, shared across contexts
	history []uint64
	btb     [][]btbEntry
	setMask uint64
	tick    uint64
	stats   Stats
}

// New builds a predictor from cfg serving the paper machine's two
// logical processors.
func New(cfg Config) *Predictor { return NewFor(cfg, 2) }

// NewFor builds a predictor from cfg serving nctx logical processors:
// each context carries its own global history register and BTB thread
// tag; the PHT and BTB capacity stay shared, exactly as on the P4.
func NewFor(cfg Config, nctx int) *Predictor {
	sets := cfg.BTBEntries / cfg.BTBAssoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("branch: BTB sets must be a positive power of two")
	}
	if nctx < 1 {
		nctx = 1
	}
	p := &Predictor{cfg: cfg, setMask: uint64(sets - 1), history: make([]uint64, nctx)}
	p.pht = make([]uint8, 1<<cfg.HistoryBits)
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	p.btb = make([][]btbEntry, sets)
	backing := make([]btbEntry, sets*cfg.BTBAssoc)
	for i := range p.btb {
		p.btb[i] = backing[i*cfg.BTBAssoc : (i+1)*cfg.BTBAssoc]
	}
	return p
}

// Config returns the predictor geometry.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns a snapshot of the statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes statistics, preserving learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// Reset returns the predictor to its just-built state — PHT counters to
// weakly not-taken, BTB invalidated, histories and statistics cleared —
// while reusing the table allocations. A reset predictor behaves
// bit-identically to a fresh New(cfg).
func (p *Predictor) Reset() {
	for i := range p.pht {
		p.pht[i] = 1
	}
	for _, set := range p.btb {
		for i := range set {
			set[i] = btbEntry{}
		}
	}
	for i := range p.history {
		p.history[i] = 0
	}
	p.tick = 0
	p.stats = Stats{}
}

// FlushThread invalidates context ctx's BTB entries and clears its history
// (address-space switch on that logical processor).
func (p *Predictor) FlushThread(ctx int) {
	for _, set := range p.btb {
		for i := range set {
			if set[i].valid && set[i].tid == int8(ctx) {
				set[i].valid = false
			}
		}
	}
	p.history[ctx] = 0
}

// phtIndex folds the PC with the per-context global history. The PHT
// itself is shared (no thread ID), so contexts alias each other there.
func (p *Predictor) phtIndex(pc uint64, ctx int) uint64 {
	return (pc ^ p.history[ctx]) & uint64(len(p.pht)-1)
}

// Predict runs one control transfer through the predictor and returns
// whether the front end predicted it correctly and the cycle penalty to
// charge (0 when correct, MispredictPenalty otherwise).
//
// taken/target are the resolved outcome carried on the µop; indirect
// reports target-varying transfers (interpreter dispatch), which miss
// whenever the BTB target is stale even if found.
func (p *Predictor) Predict(pc uint64, taken bool, target uint64, indirect bool, ctx int) (correct bool, penalty int) {
	// Statistics fold contexts beyond the first two in by parity; the
	// predictor state itself (history, BTB tags) is exact per context.
	c := ctx & 1
	p.tick++
	p.stats.Branches[c]++

	// BTB lookup (thread-tagged, shared capacity).
	set := p.btb[pc&p.setMask]
	var hit *btbEntry
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == pc && e.tid == int8(ctx) {
			hit = e
			break
		}
	}
	btbTarget := uint64(0)
	if hit == nil {
		p.stats.BTBMisses[c]++
	} else {
		hit.lru = p.tick
		btbTarget = hit.target
	}

	// Direction prediction via the shared PHT.
	idx := p.phtIndex(pc, ctx)
	predTaken := p.pht[idx] >= 2
	if hit == nil {
		// Without a BTB entry the front end cannot redirect fetch; it
		// effectively predicts not-taken/fall-through.
		predTaken = false
	}

	correct = predTaken == taken
	if correct && taken {
		// Direction right, but the target must match too.
		if btbTarget != target {
			correct = false
		}
	}

	// Update PHT.
	if taken && p.pht[idx] < 3 {
		p.pht[idx]++
	} else if !taken && p.pht[idx] > 0 {
		p.pht[idx]--
	}
	// Update history.
	p.history[ctx] = (p.history[ctx] << 1) & ((1 << p.cfg.HistoryBits) - 1)
	if taken {
		p.history[ctx] |= 1
	}
	// Install/update BTB on taken transfers.
	if taken || indirect {
		if hit != nil {
			hit.target = target
		} else {
			victim := 0
			for i := 1; i < len(set); i++ {
				if !set[i].valid {
					victim = i
					break
				}
				if set[i].lru < set[victim].lru {
					victim = i
				}
			}
			set[victim] = btbEntry{tag: pc, target: target, lru: p.tick, tid: int8(ctx), valid: true}
		}
	}

	if !correct {
		p.stats.Mispredicts[c]++
		return false, p.cfg.MispredictPenalty
	}
	return true, 0
}

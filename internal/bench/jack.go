package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// jack — "a Java parser generator that is based on an earlier version of
// JavaCC". Like a real parser generator, the build step takes a grammar
// (deterministically derived from the scale) and *generates code from
// it*: one derivation method and one parse method per nonterminal, plus
// big dispatch methods, exactly the shape of JavaCC output. At run time
// the program computes the grammar's FIRST sets to a fixpoint from baked
// production tables, generates a token stream by grammar expansion, and
// parses it back with the generated recursive-descent parser — repeated
// over several passes (the SPEC harness runs jack 16 times). The result
// is the suite's largest, branchiest instruction footprint: the paper's
// worst "bad partner".
//
// Globals: 0 = checksum, 1 = tokens generated, 2 = parse nodes,
// 3 = parse errors (must be 0), 4 = FIRST-set checksum.
const (
	jkTerms    = 32
	jkGenDepth = 10
)

func jackParams(s Scale) (nts, passes int32) {
	return s.pick(46, 50, 56), s.pick(5, 10, 16)
}

// jack globals.
const (
	jkgChk, jkgTokens, jkgNodes, jkgErrors, jkgFirstChk = 0, 1, 2, 3, 4
	jkgTok, jkgNTok, jkgPos, jkgSeed                    = 5, 6, 7, 8
	jkGlobals                                           = 9
	jkGlobalRefs                                        = 1 << jkgTok
)

// jackGrammar is the build-time grammar: for each nonterminal, two
// alternatives; alternative 0 is all-terminal (guaranteeing bounded
// derivations) and both alternatives start with distinct terminals
// (making the generated parser deterministic). Symbols: 0..jkTerms-1 are
// terminals; jkTerms+n is nonterminal n.
type jackGrammar struct {
	nts  int32
	alt0 [][]int32
	alt1 [][]int32
}

func makeJackGrammar(nts int32) *jackGrammar {
	g := &jackGrammar{nts: nts}
	seed := int64(911)
	rnd := func(bound int64) int64 {
		seed = lcgNextGo(seed)
		return lcgIntGo(seed, bound)
	}
	for n := int32(0); n < nts; n++ {
		// Distinct leading terminals per NT keep the parser LL(1).
		lead0 := (2 * n) % jkTerms
		lead1 := (2*n + 1) % jkTerms
		s0 := []int32{lead0}
		for k := rnd(2) + 2; k > 0; k-- {
			s0 = append(s0, int32(rnd(jkTerms)))
		}
		s1 := []int32{lead1}
		for k := rnd(3) + 3; k > 0; k-- {
			if rnd(100) < 60 {
				s1 = append(s1, jkTerms+int32(rnd(int64(nts))))
			} else {
				s1 = append(s1, int32(rnd(jkTerms)))
			}
		}
		g.alt0 = append(g.alt0, s0)
		g.alt1 = append(g.alt1, s1)
	}
	return g
}

// Jack returns the benchmark descriptor.
func Jack() *Benchmark {
	return &Benchmark{
		Name:        "jack",
		Description: "A Java parser generator that is based on an earlier version of JavaCC",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildJack,
		Verify:      verifyJack,
	}
}

func buildJack(_ int, scale Scale, base uint64) *bytecode.Program {
	nts, passes := jackParams(scale)
	g := makeJackGrammar(nts)
	pb := bytecode.NewProgram("jack")
	pb.Globals(jkGlobals, jkGlobalRefs)

	emitIdx := jkEmit(pb)
	matchIdx := jkMatch(pb)

	// Per-NT methods are mutually recursive through the dispatchers:
	// register placeholders for the dispatchers first.
	genDispatch := pb.Add(jkPlaceholder("genAny", 2))
	parseDispatch := pb.Add(jkPlaceholder("parseAny", 1))

	genIdxs := make([]int32, nts)
	parseIdxs := make([]int32, nts)
	for n := int32(0); n < nts; n++ {
		genIdxs[n] = jkGenNT(pb, g, n, emitIdx, genDispatch)
		parseIdxs[n] = jkParseNT(pb, g, n, matchIdx, parseDispatch)
	}
	jkPatchDispatch(pb, genDispatch, "genAny", 2, genIdxs, true)
	jkPatchDispatch(pb, parseDispatch, "parseAny", 1, parseIdxs, false)

	firstIdx := jkFirstSets(pb, g)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lPass, lChk, lI, lN = 0, 1, 2, 3
	)
	maxTok := int32(1) << 16
	b.Const(0).Store(lChk)
	// Phase 1: FIRST sets from the baked production tables.
	b.Op(bytecode.Call, firstIdx)
	forConst(b, lPass, passes, func() {
		b.Const(maxTok).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jkgTok)
		b.Const(0).Op(bytecode.PutStatic, jkgNTok)
		b.Const(0).Op(bytecode.PutStatic, jkgPos)
		b.Load(lPass).Const(131).Op(bytecode.Imul).Const(9973).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgSeed)
		// Phase 2: derive a token stream from the start symbol.
		b.Const(0).Const(jkGenDepth).Op(bytecode.Call, genDispatch)
		b.Op(bytecode.GetStatic, jkgTokens).Op(bytecode.GetStatic, jkgNTok).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgTokens)
		// Phase 3: parse it back with the generated parser.
		b.Const(0).Op(bytecode.Call, parseDispatch)
		// Mix the token stream into the checksum.
		b.Op(bytecode.GetStatic, jkgNTok).Store(lN)
		forVar(b, lI, lN, func() {
			b.Op(bytecode.GetStatic, jkgTok).Load(lI).Op(bytecode.ALoad)
			emitMix(b, lChk)
		})
	})
	b.Load(lChk).Op(bytecode.PutStatic, jkgChk)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// jkPlaceholder registers an empty method with the given arg count so
// mutually recursive groups can be wired before their bodies exist.
func jkPlaceholder(name string, nargs int) *bytecode.Method {
	b := bytecode.NewMethod(name, nargs, nargs)
	b.Op(bytecode.Ret)
	return b.Finish()
}

// jkEmit builds emit(t): appends a token.
func jkEmit(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("emit", 1, scratchLocals)
	const lT, lN = 0, 1
	b.Op(bytecode.GetStatic, jkgNTok).Store(lN)
	b.Op(bytecode.GetStatic, jkgTok).Load(lN).Load(lT).Op(bytecode.AStore)
	b.Load(lN).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgNTok)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jkMatch builds match(t): consumes the current token, counting a parse
// error if it is not t.
func jkMatch(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("match", 1, scratchLocals)
	const lT = 0
	ok := b.NewLabel()
	b.Op(bytecode.GetStatic, jkgTok).Op(bytecode.GetStatic, jkgPos).Op(bytecode.ALoad)
	b.Load(lT)
	b.Br(bytecode.IfEq, ok)
	b.Op(bytecode.GetStatic, jkgErrors).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgErrors)
	b.Bind(ok)
	b.Op(bytecode.GetStatic, jkgPos).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgPos)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jkRand pushes a bounded pseudo-random value using the shared seed
// global (same idiom as javac).
func jkRand(b *mb, bound int32) {
	const lTmp = 62
	b.Op(bytecode.GetStatic, jkgSeed).Store(lTmp)
	emitLCGInt(b, lTmp, bound)
	b.Load(lTmp).Op(bytecode.PutStatic, jkgSeed)
}

// jkGenNT builds gen<NT n>(depth): emits one derivation of n. Terminal
// symbols are emitted; nonterminals recurse through the dispatcher with
// depth-1. At depth 0 the all-terminal alternative is forced.
func jkGenNT(pb *bytecode.ProgramBuilder, g *jackGrammar, n int32, emitIdx, genDispatch int32) int32 {
	b := bytecode.NewMethod(fmt.Sprintf("gen_%d", n), 1, scratchLocals)
	const lDepth = 0
	alt0 := b.NewLabel()
	done := b.NewLabel()
	b.Load(lDepth).Const(0)
	b.Br(bytecode.IfLe, alt0)
	jkRand(b, 100)
	b.Const(40)
	b.Br(bytecode.IfLt, alt0)
	for _, sym := range g.alt1[n] {
		if sym < jkTerms {
			b.Const(sym).Op(bytecode.Call, emitIdx)
		} else {
			b.Const(sym - jkTerms)
			b.Load(lDepth).Const(1).Op(bytecode.Isub)
			b.Op(bytecode.Call, genDispatch)
		}
	}
	b.Br(bytecode.Goto, done)
	b.Bind(alt0)
	for _, sym := range g.alt0[n] {
		b.Const(sym).Op(bytecode.Call, emitIdx)
	}
	b.Bind(done)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jkParseNT builds parse<NT n>(): inspects the current token to select
// the alternative (the leading terminals are distinct by construction)
// and consumes it, recursing through the dispatcher for nonterminals —
// the exact shape of JavaCC-generated parse methods.
func jkParseNT(pb *bytecode.ProgramBuilder, g *jackGrammar, n int32, matchIdx, parseDispatch int32) int32 {
	b := bytecode.NewMethod(fmt.Sprintf("parse_%d", n), 0, scratchLocals)
	lead1 := g.alt1[n][0]
	useAlt1, done := b.NewLabel(), b.NewLabel()
	b.Op(bytecode.GetStatic, jkgNodes).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jkgNodes)
	b.Op(bytecode.GetStatic, jkgTok).Op(bytecode.GetStatic, jkgPos).Op(bytecode.ALoad)
	b.Const(lead1)
	b.Br(bytecode.IfEq, useAlt1)
	for _, sym := range g.alt0[n] {
		b.Const(sym).Op(bytecode.Call, matchIdx)
	}
	b.Br(bytecode.Goto, done)
	b.Bind(useAlt1)
	for _, sym := range g.alt1[n] {
		if sym < jkTerms {
			b.Const(sym).Op(bytecode.Call, matchIdx)
		} else {
			b.Const(sym-jkTerms).Op(bytecode.Call, parseDispatch)
		}
	}
	b.Bind(done)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jkPatchDispatch fills a dispatcher: a long if-chain over the NT id,
// virtually dispatching to each per-NT method.
func jkPatchDispatch(pb *bytecode.ProgramBuilder, self int32, name string, nargs int, targets []int32, passDepth bool) {
	b := bytecode.NewMethod(name, nargs, scratchLocals)
	for n, tgt := range targets {
		skip := b.NewLabel()
		b.Load(0).Const(int32(n))
		b.Br(bytecode.IfNe, skip)
		if passDepth {
			b.Load(1)
		}
		b.Op(bytecode.CallVirt, tgt)
		b.Op(bytecode.Ret)
		b.Bind(skip)
	}
	b.Op(bytecode.Ret)
	jcReplace(pb, self, b.Finish())
}

// jkFirstSets builds firstSets(): computes FIRST for every nonterminal to
// a fixpoint from baked production tables and publishes a checksum. Sets
// are bitmasks over the 32 terminals.
func jkFirstSets(pb *bytecode.ProgramBuilder, g *jackGrammar) int32 {
	b := bytecode.NewMethod("firstSets", 0, scratchLocals)
	const (
		lFirst, lRhs, lOff, lChanged, lN, lI, lSym, lBefore, lChk = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	nts := g.nts
	// Bake the grammar tables: flat RHS array + per-alternative offsets.
	var flat []int32
	var offs []int32
	for n := int32(0); n < nts; n++ {
		for _, alt := range [][]int32{g.alt0[n], g.alt1[n]} {
			offs = append(offs, int32(len(flat)))
			flat = append(flat, alt...)
			flat = append(flat, -1) // alternative terminator
		}
	}
	b.Const(int32(len(flat))).Op(bytecode.NewArray, bytecode.KindInt).Store(lRhs)
	for i, v := range flat {
		b.Load(lRhs).Const(int32(i)).Const(v).Op(bytecode.AStore)
	}
	b.Const(int32(len(offs))).Op(bytecode.NewArray, bytecode.KindInt).Store(lOff)
	for i, v := range offs {
		b.Load(lOff).Const(int32(i)).Const(v).Op(bytecode.AStore)
	}
	b.Const(nts).Op(bytecode.NewArray, bytecode.KindInt).Store(lFirst)
	// Fixpoint: FIRST(n) |= bit(lead) or FIRST(lead NT) for each alt.
	outer, fixed := b.NewLabel(), b.NewLabel()
	b.Bind(outer)
	b.Const(0).Store(lChanged)
	forConst(b, lN, nts, func() {
		b.Load(lFirst).Load(lN).Op(bytecode.ALoad).Store(lBefore)
		forConst(b, lI, 2, func() {
			// sym = rhs[off[2n+i]]
			b.Load(lRhs)
			b.Load(lOff)
			b.Load(lN).Const(2).Op(bytecode.Imul).Load(lI).Op(bytecode.Iadd)
			b.Op(bytecode.ALoad)
			b.Op(bytecode.ALoad)
			b.Store(lSym)
			term := b.NewLabel()
			merged := b.NewLabel()
			b.Load(lSym).Const(jkTerms)
			b.Br(bytecode.IfLt, term)
			// Nonterminal: union in its FIRST.
			b.Load(lFirst).Load(lN)
			b.Load(lFirst).Load(lN).Op(bytecode.ALoad)
			b.Load(lFirst).Load(lSym).Const(jkTerms).Op(bytecode.Isub).Op(bytecode.ALoad)
			b.Op(bytecode.Ior)
			b.Op(bytecode.AStore)
			b.Br(bytecode.Goto, merged)
			b.Bind(term)
			b.Load(lFirst).Load(lN)
			b.Load(lFirst).Load(lN).Op(bytecode.ALoad)
			b.Const(1).Load(lSym).Op(bytecode.Ishl)
			b.Op(bytecode.Ior)
			b.Op(bytecode.AStore)
			b.Bind(merged)
		})
		same := b.NewLabel()
		b.Load(lFirst).Load(lN).Op(bytecode.ALoad).Load(lBefore)
		b.Br(bytecode.IfEq, same)
		b.Const(1).Store(lChanged)
		b.Bind(same)
	})
	b.Load(lChanged).Const(0)
	b.Br(bytecode.IfEq, fixed)
	b.Br(bytecode.Goto, outer)
	b.Bind(fixed)
	b.Const(0).Store(lChk)
	forConst(b, lN, nts, func() {
		b.Load(lFirst).Load(lN).Op(bytecode.ALoad)
		emitMix(b, lChk)
	})
	b.Load(lChk).Op(bytecode.PutStatic, jkgFirstChk)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// --- Go mirror ---

type jkMirror struct {
	g      *jackGrammar
	seed   int64
	tok    []int64
	pos    int
	nodes  int64
	errors int64
}

func (m *jkMirror) rand(bound int64) int64 {
	m.seed = lcgNextGo(m.seed)
	return lcgIntGo(m.seed, bound)
}

func (m *jkMirror) gen(n int32, depth int64) {
	useAlt0 := depth <= 0
	if !useAlt0 {
		useAlt0 = m.rand(100) < 40
	}
	if useAlt0 {
		for _, sym := range m.g.alt0[n] {
			m.tok = append(m.tok, int64(sym))
		}
		return
	}
	for _, sym := range m.g.alt1[n] {
		if sym < jkTerms {
			m.tok = append(m.tok, int64(sym))
		} else {
			m.gen(sym-jkTerms, depth-1)
		}
	}
}

func (m *jkMirror) match(t int32) {
	if m.pos >= len(m.tok) || m.tok[m.pos] != int64(t) {
		m.errors++
	}
	m.pos++
}

func (m *jkMirror) parse(n int32) {
	m.nodes++
	cur := int64(-1)
	if m.pos < len(m.tok) {
		cur = m.tok[m.pos]
	}
	if cur == int64(m.g.alt1[n][0]) {
		for _, sym := range m.g.alt1[n] {
			if sym < jkTerms {
				m.match(sym)
			} else {
				m.parse(sym - jkTerms)
			}
		}
		return
	}
	for _, sym := range m.g.alt0[n] {
		m.match(sym)
	}
}

func jackGo(nts, passes int32) (chk, tokens, nodes, errors, firstChk int64) {
	g := makeJackGrammar(nts)
	// FIRST sets.
	first := make([]int64, nts)
	for changed := true; changed; {
		changed = false
		for n := int32(0); n < nts; n++ {
			before := first[n]
			for _, alt := range [][]int32{g.alt0[n], g.alt1[n]} {
				sym := alt[0]
				if sym < jkTerms {
					first[n] |= 1 << uint(sym)
				} else {
					first[n] |= first[sym-jkTerms]
				}
			}
			if first[n] != before {
				changed = true
			}
		}
	}
	for n := int32(0); n < nts; n++ {
		firstChk = mix64Go(firstChk, first[n])
	}
	for pass := int32(0); pass < passes; pass++ {
		m := &jkMirror{g: g, seed: int64(pass)*131 + 9973}
		m.gen(0, jkGenDepth)
		tokens += int64(len(m.tok))
		m.parse(0)
		nodes += m.nodes
		errors += m.errors
		for _, t := range m.tok {
			chk = mix64Go(chk, t)
		}
	}
	return chk, tokens, nodes, errors, firstChk
}

func verifyJack(vm *jvm.VM, _ int, scale Scale) error {
	nts, passes := jackParams(scale)
	chk, tokens, nodes, errors, firstChk := jackGo(nts, passes)
	if got := int64(vm.Global(jkgErrors)); got != errors || errors != 0 {
		return fmt.Errorf("jack: %d parse errors (mirror %d)", got, errors)
	}
	if got := int64(vm.Global(jkgTokens)); got != tokens {
		return fmt.Errorf("jack: %d tokens, want %d", got, tokens)
	}
	if got := int64(vm.Global(jkgNodes)); got != nodes {
		return fmt.Errorf("jack: %d parse nodes, want %d", got, nodes)
	}
	if got := int64(vm.Global(jkgFirstChk)); got != firstChk {
		return fmt.Errorf("jack: FIRST checksum %d, want %d", got, firstChk)
	}
	if got := int64(vm.Global(jkgChk)); got != chk {
		return fmt.Errorf("jack: token checksum %d, want %d", got, chk)
	}
	return nil
}

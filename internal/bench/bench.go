// Package bench implements the paper's ten Java benchmarks as real
// programs for the bytecode VM (Table 1 of the paper):
//
//	SPECjvm98 (single-threaded): compress, jess, db, javac, mpegaudio, jack
//	Java Grande (multithreaded):  MolDyn, MonteCarlo, RayTracer
//	SPECjbb2000 variant:          PseudoJBB
//
// Each benchmark is a genuine implementation of the workload's algorithm
// (an LZW codec, a rule engine, a recursive-descent compiler, a polyphase
// filter bank, an N-body kernel, ...) so its instruction footprint,
// branch behaviour, data traffic and allocation profile arise from real
// program structure rather than from synthetic knobs. Every program
// publishes checksums in its globals and Verify recomputes them in Go,
// so the simulation stack is end-to-end checked for correctness.
//
// Input sizes are scaled down from the paper's (DESIGN.md §5) so whole
// runs take ~10^5-10^7 µops; Scale selects the band.
package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// Scale selects the input-size band.
type Scale int

// Scales. Tiny is for the 81-pairing cross product, Small for ordinary
// characterization runs, Medium for detailed single runs.
const (
	Tiny Scale = iota
	Small
	Medium
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// pick indexes a per-scale value table.
func (s Scale) pick(tiny, small, medium int32) int32 {
	switch s {
	case Tiny:
		return tiny
	case Medium:
		return medium
	default:
		return small
	}
}

// Benchmark describes one workload.
type Benchmark struct {
	// Name as the paper spells it.
	Name string
	// Description and Input mirror Table 1.
	Description string
	Input       string
	// Multithreaded marks the four benchmarks that accept a thread
	// count (they run single-threaded with threads=1, as the paper does
	// for the pairing experiments).
	Multithreaded bool
	// Build constructs and links the program for the given thread count
	// and scale at code base `base` (0 = default; multiprogrammed runs
	// pass distinct bases).
	Build func(threads int, scale Scale, base uint64) *bytecode.Program
	// Verify checks the program's published results after a run.
	Verify func(vm *jvm.VM, threads int, scale Scale) error
}

// All returns the benchmark suite in Table 1 order.
func All() []*Benchmark {
	return []*Benchmark{
		Compress(), Jess(), DB(), Javac(), Mpegaudio(), Jack(),
		MolDyn(), MonteCarlo(), RayTracer(), PseudoJBB(),
	}
}

// SingleThreaded returns the nine programs usable as single-threaded
// workloads (six SPECjvm98 plus the three Java Grande kernels at
// threads=1) — the paper's Figure 8-11 population.
func SingleThreaded() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Name != "PseudoJBB" {
			out = append(out, b)
		}
	}
	return out
}

// Multithreaded returns the four thread-scalable benchmarks (Table 2,
// Figures 1-7, 12).
func Multithreaded() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.Multithreaded {
			out = append(out, b)
		}
	}
	return out
}

// ByName resolves a benchmark by name, searching the Table 1 suite and
// then the synchronization-stress family (Sync).
func ByName(name string) (*Benchmark, bool) {
	for _, b := range append(All(), Sync()...) {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// --- builder helpers shared by the benchmark programs ---

// mb abbreviates the builder type in this package.
type mb = bytecode.MethodBuilder

// forConst emits: for iVar = 0; iVar < n; iVar++ { body() }.
func forConst(b *mb, iVar, n int32, body func()) {
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(iVar)
	b.Bind(loop)
	b.Load(iVar).Const(n)
	b.Br(bytecode.IfGe, done)
	body()
	b.Load(iVar).Const(1).Op(bytecode.Iadd).Store(iVar)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
}

// forVar emits: for iVar = fromVar... no: for iVar = 0; iVar < limitVar;
// iVar++ { body() } where limitVar is a local slot.
func forVar(b *mb, iVar, limitVar int32, body func()) {
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(iVar)
	b.Bind(loop)
	b.Load(iVar).Load(limitVar)
	b.Br(bytecode.IfGe, done)
	body()
	b.Load(iVar).Const(1).Op(bytecode.Iadd).Store(iVar)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
}

// forFromTo emits: for iVar = lo(local); iVar < hi(local); iVar++ {body()}.
func forFromTo(b *mb, iVar, loVar, hiVar int32, body func()) {
	loop, done := b.NewLabel(), b.NewLabel()
	b.Load(loVar).Store(iVar)
	b.Bind(loop)
	b.Load(iVar).Load(hiVar)
	b.Br(bytecode.IfGe, done)
	body()
	b.Load(iVar).Const(1).Op(bytecode.Iadd).Store(iVar)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
}

// lcgA/lcgC are the java.util.Random LCG constants; lcgMask truncates to
// 48 bits as Java does.
const (
	lcgA    = 25214903917
	lcgC    = 11
	lcgMask = (1 << 48) - 1
)

// lcgNextGo advances the LCG in Go (the verification mirror).
func lcgNextGo(state int64) int64 {
	return (state*lcgA + lcgC) & lcgMask
}

// lcgIntGo draws a bounded value in Go exactly as the bytecode does.
func lcgIntGo(state int64, bound int64) int64 {
	return ((state >> 17) & 0x7FFFFFFF) % bound
}

// emitLCGConsts pushes the LCG multiplier as a 64-bit value. Iconst is
// 32-bit, so the constant is assembled as hi<<32 | lo.
func emitConst64(b *mb, v int64) {
	hi := int32(v >> 32)
	lo := v & 0xFFFFFFFF
	b.Const(hi)
	b.Const(32)
	b.Op(bytecode.Ishl)
	// lo may not fit in an int32 as a signed value; split it further.
	b.Const(int32(lo >> 16)).Const(16).Op(bytecode.Ishl)
	b.Const(int32(lo & 0xFFFF))
	b.Op(bytecode.Ior)
	b.Op(bytecode.Ior)
}

// emitLCGNext emits: state = (state*A + C) & mask, for the state local.
func emitLCGNext(b *mb, stateVar int32) {
	b.Load(stateVar)
	emitConst64(b, lcgA)
	b.Op(bytecode.Imul)
	b.Const(lcgC)
	b.Op(bytecode.Iadd)
	emitConst64(b, lcgMask)
	b.Op(bytecode.Iand)
	b.Store(stateVar)
}

// emitLCGInt emits: push ((state >> 17) & 0x7FFFFFFF) % bound, advancing
// the state first.
func emitLCGInt(b *mb, stateVar, bound int32) {
	emitLCGNext(b, stateVar)
	b.Load(stateVar).Const(17).Op(bytecode.Ishr)
	b.Const(0x7FFFFFFF).Op(bytecode.Iand)
	b.Const(bound).Op(bytecode.Irem)
}

// mix64Go is the checksum mixer used by several benchmarks, mirrored in
// Go and bytecode: h = (h*31 + v) wrapped to 63 bits to stay positive.
func mix64Go(h, v int64) int64 {
	return (h*31 + v) & 0x7FFF_FFFF_FFFF_FFFF
}

// emitMix emits: hVar = (hVar*31 + <top of stack>) & 0x7FFF.... The value
// to mix must already be on the stack.
func emitMix(b *mb, hVar int32) {
	b.Store(63) // scratch: every benchmark reserves local 63
	b.Load(hVar).Const(31).Op(bytecode.Imul)
	b.Load(63).Op(bytecode.Iadd)
	emitConst64(b, 0x7FFF_FFFF_FFFF_FFFF)
	b.Op(bytecode.Iand)
	b.Store(hVar)
}

// scratchLocals is the local-count floor ensuring emitMix's scratch slot
// exists; benchmark methods that mix checksums use at least this many.
const scratchLocals = 64

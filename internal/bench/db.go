package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// db — "performs a series of functions on a small database". The database
// is an in-memory table of records (parallel key/payload arrays) with a
// position index kept sorted by key: it is shell-sorted once at startup,
// then a driver executes a random mix of lookups (binary search),
// updates, inserts (with in-place index shifting) and deletes — the same
// operation set the SPEC benchmark performs on its address database.
// Data-dependent branches and scattered index traffic dominate, as on the
// original.
//
// Globals: 0 = operations checksum, 1 = final record count, 2 = index
// order violations (must be 0).
func dbParams(s Scale) (records, ops int32) {
	return s.pick(1200, 6000, 20000), s.pick(4000, 20000, 60000)
}

// DB returns the benchmark descriptor.
func DB() *Benchmark {
	return &Benchmark{
		Name:        "db",
		Description: "Performs a series of functions on a small database",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildDB,
		Verify:      verifyDB,
	}
}

func buildDB(_ int, scale Scale, base uint64) *bytecode.Program {
	records, ops := dbParams(scale)
	capacity := records + ops // worst case all inserts
	pb := bytecode.NewProgram("db")
	pb.Globals(3, 0)

	sortIdx := dbShellSort(pb)
	findIdx := dbBinarySearch(pb)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lKeys, lVals, lIdx, lCount = 0, 1, 2, 3
		lSeed, lOp, lI, lK, lP     = 4, 5, 6, 7, 8
		lChk, lR, lJ               = 9, 10, 11
		// lSlot is the next free record slot: deletes drop index
		// entries but never recycle slots, so a fresh insert cannot
		// overwrite a record the index still references.
		lSlot = 13
	)
	b.Const(capacity).Op(bytecode.NewArray, bytecode.KindInt).Store(lKeys)
	b.Const(capacity).Op(bytecode.NewArray, bytecode.KindInt).Store(lVals)
	b.Const(capacity).Op(bytecode.NewArray, bytecode.KindInt).Store(lIdx)
	b.Const(777).Store(lSeed)
	b.Const(0).Store(lChk)
	// Populate: keys are pseudo-random, values derived; index = identity.
	forConst(b, lI, records, func() {
		emitLCGInt(b, lSeed, 1<<30)
		b.Store(lK)
		b.Load(lKeys).Load(lI).Load(lK).Op(bytecode.AStore)
		b.Load(lVals).Load(lI).Load(lK).Const(7).Op(bytecode.Irem).Op(bytecode.AStore)
		b.Load(lIdx).Load(lI).Load(lI).Op(bytecode.AStore)
	})
	b.Const(records).Store(lCount)
	b.Const(records).Store(lSlot)
	// Sort the index by key (shell sort).
	b.Load(lKeys).Load(lIdx).Load(lCount).Op(bytecode.Call, sortIdx).Op(bytecode.Pop)

	// Operation mix.
	forConst(b, lOp, ops, func() {
		emitLCGInt(b, lSeed, 100)
		b.Store(lR)
		lookup, update, insert, remove, after := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Load(lR).Const(50)
		b.Br(bytecode.IfLt, lookup)
		b.Load(lR).Const(75)
		b.Br(bytecode.IfLt, update)
		b.Load(lR).Const(90)
		b.Br(bytecode.IfLt, insert)
		b.Br(bytecode.Goto, remove)

		// lookup: chk mix= find(random key)
		b.Bind(lookup)
		emitLCGInt(b, lSeed, 1<<30)
		b.Store(lK)
		b.Load(lKeys).Load(lIdx).Load(lCount).Load(lK)
		b.Op(bytecode.Call, findIdx)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// update: p = find; if p >= 0: vals[idx[p]] += 1; chk mix= p
		b.Bind(update)
		emitLCGInt(b, lSeed, 1<<30)
		b.Store(lK)
		b.Load(lKeys).Load(lIdx).Load(lCount).Load(lK)
		b.Op(bytecode.Call, findIdx).Store(lP)
		noUpd := b.NewLabel()
		b.Load(lP).Const(0)
		b.Br(bytecode.IfLt, noUpd)
		b.Load(lVals).Load(lIdx).Load(lP).Op(bytecode.ALoad)
		b.Load(lVals).Load(lIdx).Load(lP).Op(bytecode.ALoad).Op(bytecode.ALoad)
		b.Const(1).Op(bytecode.Iadd)
		b.Op(bytecode.AStore)
		b.Bind(noUpd)
		b.Load(lP)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// insert: new key into a fresh slot; shift index to keep sorted.
		b.Bind(insert)
		emitLCGInt(b, lSeed, 1<<30)
		b.Store(lK)
		b.Load(lKeys).Load(lSlot).Load(lK).Op(bytecode.AStore)
		b.Load(lVals).Load(lSlot).Load(lK).Const(13).Op(bytecode.Irem).Op(bytecode.AStore)
		// find insertion point p = first index with key > k (linear from
		// binary-search hint): use find's insertion encoding (-pos-1).
		b.Load(lKeys).Load(lIdx).Load(lCount).Load(lK)
		b.Op(bytecode.Call, findIdx).Store(lP)
		neg := b.NewLabel()
		haveP := b.NewLabel()
		b.Load(lP).Const(0)
		b.Br(bytecode.IfLt, neg)
		b.Br(bytecode.Goto, haveP)
		b.Bind(neg)
		b.Const(-1).Load(lP).Op(bytecode.Isub).Store(lP) // p = -p-1
		b.Bind(haveP)
		// shift idx[p..count) right by one
		shiftLoop, shiftDone := b.NewLabel(), b.NewLabel()
		b.Load(lCount).Store(lJ)
		b.Bind(shiftLoop)
		b.Load(lJ).Load(lP)
		b.Br(bytecode.IfLe, shiftDone)
		b.Load(lIdx).Load(lJ)
		b.Load(lIdx).Load(lJ).Const(1).Op(bytecode.Isub).Op(bytecode.ALoad)
		b.Op(bytecode.AStore)
		b.Load(lJ).Const(1).Op(bytecode.Isub).Store(lJ)
		b.Br(bytecode.Goto, shiftLoop)
		b.Bind(shiftDone)
		b.Load(lIdx).Load(lP).Load(lSlot).Op(bytecode.AStore)
		b.Load(lSlot).Const(1).Op(bytecode.Iadd).Store(lSlot)
		b.Load(lCount).Const(1).Op(bytecode.Iadd).Store(lCount)
		b.Load(lK)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// remove: delete the record at a random index position (shift
		// index left); the record slot itself is tombstoned.
		b.Bind(remove)
		noDel := b.NewLabel()
		b.Load(lCount).Const(2)
		b.Br(bytecode.IfLt, noDel)
		emitLCGNext(b, lSeed)
		b.Load(lSeed).Const(17).Op(bytecode.Ishr).Const(0x7FFFFFFF).Op(bytecode.Iand)
		b.Load(lCount).Op(bytecode.Irem).Store(lP)
		// chk mix= keys[idx[p]]
		b.Load(lKeys).Load(lIdx).Load(lP).Op(bytecode.ALoad).Op(bytecode.ALoad)
		emitMix(b, lChk)
		// shift idx[p..count-1) left
		delLoop, delDone := b.NewLabel(), b.NewLabel()
		b.Bind(delLoop)
		b.Load(lP).Load(lCount).Const(1).Op(bytecode.Isub)
		b.Br(bytecode.IfGe, delDone)
		b.Load(lIdx).Load(lP)
		b.Load(lIdx).Load(lP).Const(1).Op(bytecode.Iadd).Op(bytecode.ALoad)
		b.Op(bytecode.AStore)
		b.Load(lP).Const(1).Op(bytecode.Iadd).Store(lP)
		b.Br(bytecode.Goto, delLoop)
		b.Bind(delDone)
		b.Load(lCount).Const(1).Op(bytecode.Isub).Store(lCount)
		b.Bind(noDel)
		b.Br(bytecode.Goto, after)

		b.Bind(after)
	})

	// Publish: checksum, count, and a sortedness audit of the index.
	b.Load(lChk).Op(bytecode.PutStatic, 0)
	b.Load(lCount).Op(bytecode.PutStatic, 1)
	violations, vloop, vdone := int32(12), b.NewLabel(), b.NewLabel()
	b.Const(0).Store(violations)
	b.Const(1).Store(lI)
	b.Bind(vloop)
	b.Load(lI).Load(lCount)
	b.Br(bytecode.IfGe, vdone)
	ok := b.NewLabel()
	b.Load(lKeys).Load(lIdx).Load(lI).Const(1).Op(bytecode.Isub).Op(bytecode.ALoad).Op(bytecode.ALoad)
	b.Load(lKeys).Load(lIdx).Load(lI).Op(bytecode.ALoad).Op(bytecode.ALoad)
	b.Br(bytecode.IfLe, ok)
	b.Load(violations).Const(1).Op(bytecode.Iadd).Store(violations)
	b.Bind(ok)
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, vloop)
	b.Bind(vdone)
	b.Load(violations).Op(bytecode.PutStatic, 2)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// dbShellSort builds shellSort(keys, idx, n): int — sorts idx by keys.
func dbShellSort(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("shellSort", 3, scratchLocals).ArgRefs(0b011)
	const (
		lKeys, lIdx, lN, lGap, lI, lJ, lTmp = 0, 1, 2, 3, 4, 5, 6
	)
	gapLoop, gapDone := b.NewLabel(), b.NewLabel()
	b.Load(lN).Const(2).Op(bytecode.Idiv).Store(lGap)
	b.Bind(gapLoop)
	b.Load(lGap).Const(0)
	b.Br(bytecode.IfLe, gapDone)
	{
		iLoop, iDone := b.NewLabel(), b.NewLabel()
		b.Load(lGap).Store(lI)
		b.Bind(iLoop)
		b.Load(lI).Load(lN)
		b.Br(bytecode.IfGe, iDone)
		{
			b.Load(lIdx).Load(lI).Op(bytecode.ALoad).Store(lTmp)
			b.Load(lI).Store(lJ)
			jLoop, jDone := b.NewLabel(), b.NewLabel()
			b.Bind(jLoop)
			b.Load(lJ).Load(lGap)
			b.Br(bytecode.IfLt, jDone)
			// keys[idx[j-gap]] <= keys[tmp] -> stop
			b.Load(lKeys).Load(lIdx).Load(lJ).Load(lGap).Op(bytecode.Isub).Op(bytecode.ALoad).Op(bytecode.ALoad)
			b.Load(lKeys).Load(lTmp).Op(bytecode.ALoad)
			b.Br(bytecode.IfLe, jDone)
			b.Load(lIdx).Load(lJ)
			b.Load(lIdx).Load(lJ).Load(lGap).Op(bytecode.Isub).Op(bytecode.ALoad)
			b.Op(bytecode.AStore)
			b.Load(lJ).Load(lGap).Op(bytecode.Isub).Store(lJ)
			b.Br(bytecode.Goto, jLoop)
			b.Bind(jDone)
			b.Load(lIdx).Load(lJ).Load(lTmp).Op(bytecode.AStore)
		}
		b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
		b.Br(bytecode.Goto, iLoop)
		b.Bind(iDone)
	}
	b.Load(lGap).Const(2).Op(bytecode.Idiv).Store(lGap)
	b.Br(bytecode.Goto, gapLoop)
	b.Bind(gapDone)
	b.Const(0).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// dbBinarySearch builds find(keys, idx, n, k): int — the position of k in
// the sorted index, or -(insertion point)-1 when absent (Java
// Arrays.binarySearch encoding).
func dbBinarySearch(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("find", 4, scratchLocals).ArgRefs(0b0011)
	const (
		lKeys, lIdx, lN, lK, lLo, lHi, lMid, lV = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Const(0).Store(lLo)
	b.Load(lN).Const(1).Op(bytecode.Isub).Store(lHi)
	loop, miss := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	b.Load(lLo).Load(lHi)
	b.Br(bytecode.IfGt, miss)
	b.Load(lLo).Load(lHi).Op(bytecode.Iadd).Const(2).Op(bytecode.Idiv).Store(lMid)
	b.Load(lKeys).Load(lIdx).Load(lMid).Op(bytecode.ALoad).Op(bytecode.ALoad).Store(lV)
	lt, gt := b.NewLabel(), b.NewLabel()
	b.Load(lV).Load(lK)
	b.Br(bytecode.IfLt, lt)
	b.Load(lV).Load(lK)
	b.Br(bytecode.IfGt, gt)
	b.Load(lMid).Op(bytecode.RetVal)
	b.Bind(lt)
	b.Load(lMid).Const(1).Op(bytecode.Iadd).Store(lLo)
	b.Br(bytecode.Goto, loop)
	b.Bind(gt)
	b.Load(lMid).Const(1).Op(bytecode.Isub).Store(lHi)
	b.Br(bytecode.Goto, loop)
	b.Bind(miss)
	b.Const(-1).Load(lLo).Op(bytecode.Isub).Op(bytecode.RetVal) // -lo-1
	return pb.Add(b.Finish())
}

// dbGo mirrors the whole benchmark.
func dbGo(records, ops int32) (chk, count, violations int64) {
	capacity := records + ops
	keys := make([]int64, capacity)
	vals := make([]int64, capacity)
	idx := make([]int64, capacity)
	seed := int64(777)
	for i := int32(0); i < records; i++ {
		seed = lcgNextGo(seed)
		k := lcgIntGo(seed, 1<<30)
		keys[i] = k
		vals[i] = k % 7
		idx[i] = int64(i)
	}
	n := int64(records)
	slot := int64(records)
	// Shell sort.
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			tmp := idx[i]
			j := i
			for j >= gap && keys[idx[j-gap]] > keys[tmp] {
				idx[j] = idx[j-gap]
				j -= gap
			}
			idx[j] = tmp
		}
	}
	find := func(k int64) int64 {
		lo, hi := int64(0), n-1
		for lo <= hi {
			mid := (lo + hi) / 2
			v := keys[idx[mid]]
			switch {
			case v < k:
				lo = mid + 1
			case v > k:
				hi = mid - 1
			default:
				return mid
			}
		}
		return -lo - 1
	}
	for op := int32(0); op < ops; op++ {
		seed = lcgNextGo(seed)
		r := lcgIntGo(seed, 100)
		switch {
		case r < 50:
			seed = lcgNextGo(seed)
			k := lcgIntGo(seed, 1<<30)
			chk = mix64Go(chk, find(k))
		case r < 75:
			seed = lcgNextGo(seed)
			k := lcgIntGo(seed, 1<<30)
			p := find(k)
			if p >= 0 {
				vals[idx[p]]++
			}
			chk = mix64Go(chk, p)
		case r < 90:
			seed = lcgNextGo(seed)
			k := lcgIntGo(seed, 1<<30)
			keys[slot] = k
			vals[slot] = k % 13
			p := find(k)
			if p < 0 {
				p = -p - 1
			}
			copy(idx[p+1:n+1], idx[p:n])
			idx[p] = slot
			slot++
			n++
			chk = mix64Go(chk, k)
		default:
			if n < 2 {
				break
			}
			seed = lcgNextGo(seed)
			p := ((seed >> 17) & 0x7FFFFFFF) % n
			chk = mix64Go(chk, keys[idx[p]])
			copy(idx[p:n-1], idx[p+1:n])
			n--
		}
	}
	for i := int64(1); i < n; i++ {
		if keys[idx[i-1]] > keys[idx[i]] {
			violations++
		}
	}
	return chk, n, violations
}

func verifyDB(vm *jvm.VM, _ int, scale Scale) error {
	records, ops := dbParams(scale)
	chk, count, violations := dbGo(records, ops)
	if got := int64(vm.Global(2)); got != violations || violations != 0 {
		return fmt.Errorf("db: %d index order violations (mirror %d)", got, violations)
	}
	if got := int64(vm.Global(1)); got != count {
		return fmt.Errorf("db: record count %d, want %d", got, count)
	}
	if got := int64(vm.Global(0)); got != chk {
		return fmt.Errorf("db: checksum %d, want %d", got, chk)
	}
	return nil
}

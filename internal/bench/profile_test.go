package bench

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"
)

func TestProfileSizes(t *testing.T) {
	for _, b := range All() {
		threads := 1
		if b.Multithreaded {
			threads = 2
		}
		prog := b.Build(threads, Tiny, 0)
		cpu := core.New(core.DefaultConfig(true))
		k := simos.NewKernel(cpu, simos.DefaultParams())
		vm := jvm.New(prog, k, jvm.DefaultConfig())
		vm.Start()
		cycles, err := cpu.Run(0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		f := cpu.Counters()
		rp := f.RetirementProfile()
		t.Logf("%-11s code=%6d uops  instr=%9d  cycles=%9d  IPC=%.2f  tc/1k=%5.1f l1d/1k=%5.1f l2/1k=%5.2f btbmr=%.3f os%%=%4.1f gc=%d ret0/1/2/3=%.2f/%.2f/%.2f/%.2f",
			b.Name, prog.CodeUops, f.Get(counters.Instructions), cycles, f.IPC(),
			f.PerKiloInstr(counters.TCMisses), f.PerKiloInstr(counters.L1DMisses),
			f.PerKiloInstr(counters.L2Misses), f.Rate(counters.BTBMisses, counters.Branches),
			f.OSCyclePercent(), vm.GCCount(), rp[0], rp[1], rp[2], rp[3])
	}
}

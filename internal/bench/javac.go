package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// javac — "the Java compiler from the JDK 1.0.2". A full (small)
// compiler pipeline runs here: a grammar-driven source generator produces
// a token stream of assignment statements, a recursive-descent parser
// builds an AST of heap-allocated nodes, a constant-folding pass rewrites
// it, a code generator emits stack-machine code, and an interpreter
// executes that code to produce the program's observable results. The
// profile matches the paper's javac: many small methods (large
// instruction footprint — javac is a "bad partner"), heavy recursion,
// allocation churn and data-dependent branching.
//
// Globals: 0 = variable checksum, 1 = tokens, 2 = AST nodes, 3 = folds.
const (
	jcNUM = iota
	jcPLUS
	jcMINUS
	jcSTAR
	jcSLASH
	jcLPAREN
	jcRPAREN
	jcSEMI
	jcIDENT
	jcASSIGN
	jcEOF
)

const (
	jcVars     = 16
	jcGenDepth = 4
)

func javacParams(s Scale) (stmts, iters int32) {
	return s.pick(30, 150, 500), s.pick(2, 2, 3)
}

// Javac returns the benchmark descriptor.
func Javac() *Benchmark {
	return &Benchmark{
		Name:        "javac",
		Description: "The Java compiler from the JDK 1.0.2",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildJavac,
		Verify:      verifyJavac,
	}
}

// javac globals.
const (
	jcgChk, jcgTokens, jcgNodes, jcgFolds = 0, 1, 2, 3
	jcgTokKind, jcgTokVal                 = 4, 5
	jcgPos, jcgSeed                       = 6, 7
	jcgCodeOp, jcgCodeArg, jcgCodeLen     = 8, 9, 10
	jcgNTok                               = 11
	jcGlobals                             = 12
	jcGlobalRefs                          = 1<<jcgTokKind | 1<<jcgTokVal | 1<<jcgCodeOp | 1<<jcgCodeArg
)

// Node class field slots.
const (
	jcfKind, jcfValue, jcfLeft, jcfRight = 0, 1, 2, 3
)

// Stack-machine opcodes emitted by the code generator.
const (
	jcOpPush = iota + 1
	jcOpLoad
	jcOpAdd
	jcOpSub
	jcOpMul
	jcOpDiv
	jcOpStore
)

func buildJavac(_ int, scale Scale, base uint64) *bytecode.Program {
	stmts, iters := javacParams(scale)
	pb := bytecode.NewProgram("javac")
	pb.Globals(jcGlobals, jcGlobalRefs)
	node := pb.Class("Node", 4, 1<<jcfLeft|1<<jcfRight)

	emitTok := jcEmitTok(pb)
	// Mutually recursive method groups register placeholders first to
	// fix their indices, then are patched once callees exist.
	genExprFwd := pb.Add(jcForwardGenExpr(node))
	genTermIdx := jcGenTerm(pb, emitTok, genExprFwd)
	jcPatchGenExpr(pb, genExprFwd, emitTok, genTermIdx)

	newNodeIdx := jcNewNode(pb, node)
	peekIdx := jcPeek(pb)
	advanceIdx := jcAdvance(pb)
	parseExprFwd := pb.Add(jcForwardParseExpr())
	parseFactorIdx := jcParseFactor(pb, node, newNodeIdx, peekIdx, advanceIdx, parseExprFwd)
	parseTermIdx := jcParseTerm(pb, newNodeIdx, peekIdx, advanceIdx, parseFactorIdx)
	jcPatchParseExpr(pb, parseExprFwd, newNodeIdx, peekIdx, advanceIdx, parseTermIdx)

	foldIdx := jcFold(pb, node, newNodeIdx)
	// Semantic-check passes: real compilers run many distinct AST
	// walks (type checking, reachability, constant-range checks, ...);
	// each generated pass here is its own compiled method, giving javac
	// the many-small-methods instruction footprint the paper observes.
	var checkIdxs []int32
	for k := 0; k < 90; k++ {
		checkIdxs = append(checkIdxs, jcCheckPass(pb, k))
	}
	emitCodeIdx := jcEmitCode(pb)
	genCodeFwd := pb.Add(jcForwardGenCode())
	jcPatchGenCode(pb, genCodeFwd, emitCodeIdx)
	evalIdx := jcEval(pb)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lIter, lS, lVarsArr, lAST, lV, lI, lChk = 0, 1, 2, 3, 4, 5, 6
	)
	maxTok := stmts * 80
	b.Const(0).Store(lChk)
	forConst(b, lIter, iters, func() {
		// Fresh token/code buffers per compile.
		b.Const(maxTok).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jcgTokKind)
		b.Const(maxTok).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jcgTokVal)
		b.Const(maxTok*2).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jcgCodeOp)
		b.Const(maxTok*2).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jcgCodeArg)
		b.Const(0).Op(bytecode.PutStatic, jcgNTok)
		b.Const(0).Op(bytecode.PutStatic, jcgCodeLen)
		b.Const(0).Op(bytecode.PutStatic, jcgPos)
		b.Load(lIter).Const(7717).Op(bytecode.Imul).Const(5551).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgSeed)
		// Generate source: stmts assignments.
		forConst(b, lS, stmts, func() {
			// ident = expr ;
			b.Const(jcIDENT)
			jcEmitRand(b, jcVars)
			b.Op(bytecode.Call, emitTok)
			b.Const(jcASSIGN).Const(0).Op(bytecode.Call, emitTok)
			b.Const(jcGenDepth).Op(bytecode.Call, genExprFwd)
			b.Const(jcSEMI).Const(0).Op(bytecode.Call, emitTok)
		})
		b.Const(jcEOF).Const(0).Op(bytecode.Call, emitTok)
		b.Op(bytecode.GetStatic, jcgTokens)
		b.Op(bytecode.GetStatic, jcgNTok).Op(bytecode.Iadd)
		b.Op(bytecode.PutStatic, jcgTokens)

		// Parse + fold + codegen, statement by statement.
		b.Const(jcVars).Op(bytecode.NewArray, bytecode.KindInt).Store(lVarsArr)
		forConst(b, lS, stmts, func() {
			// v = token value of the IDENT; skip IDENT and '='.
			b.Op(bytecode.GetStatic, jcgTokVal).Op(bytecode.GetStatic, jcgPos).Op(bytecode.ALoad).Store(lV)
			b.Op(bytecode.Call, advanceIdx)
			b.Op(bytecode.Call, advanceIdx)
			b.Op(bytecode.Call, parseExprFwd).Store(lAST)
			// Each semantic pass walks the fresh AST and returns a
			// diagnostic count, mixed into the program checksum.
			for _, ci := range checkIdxs {
				b.Load(lAST).Op(bytecode.CallVirt, ci)
				emitMix(b, lChk)
			}
			b.Load(lAST).Op(bytecode.Call, foldIdx).Store(lAST)
			b.Load(lAST).Op(bytecode.Call, genCodeFwd)
			// STOREV v terminates the statement's code.
			b.Const(jcOpStore).Load(lV).Op(bytecode.Call, emitCodeIdx)
			b.Op(bytecode.Call, advanceIdx) // ';'
		})
		// Execute the generated code.
		b.Load(lVarsArr).Op(bytecode.Call, evalIdx)
		// Fold the variable state into the checksum.
		forConst(b, lI, jcVars, func() {
			b.Load(lVarsArr).Load(lI).Op(bytecode.ALoad)
			emitMix(b, lChk)
		})
	})
	b.Load(lChk).Op(bytecode.PutStatic, jcgChk)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// jcEmitRand pushes a bounded pseudo-random value using the shared seed
// global (inline, because the seed lives in a global, not a local).
func jcEmitRand(b *mb, bound int32) {
	const lTmp = 62 // scratch local reserved in every javac method
	b.Op(bytecode.GetStatic, jcgSeed).Store(lTmp)
	emitLCGInt(b, lTmp, bound) // advances lTmp, pushes the bounded value
	b.Load(lTmp).Op(bytecode.PutStatic, jcgSeed)
	// The bounded value stays on the stack for the caller.
}

// jcEmitTok builds emitTok(kind, val): appends one token.
func jcEmitTok(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("emitTok", 2, scratchLocals)
	const lKind, lVal, lN = 0, 1, 2
	b.Op(bytecode.GetStatic, jcgNTok).Store(lN)
	b.Op(bytecode.GetStatic, jcgTokKind).Load(lN).Load(lKind).Op(bytecode.AStore)
	b.Op(bytecode.GetStatic, jcgTokVal).Load(lN).Load(lVal).Op(bytecode.AStore)
	b.Load(lN).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgNTok)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// The generator methods are mutually recursive (genExpr -> genTerm ->
// genFactor -> genExpr), so genExpr is registered first as a placeholder
// and patched once genTerm's index is known. jcForwardGenExpr returns the
// placeholder method whose Code is replaced by jcPatchGenExpr.
func jcForwardGenExpr(node int32) *bytecode.Method {
	b := bytecode.NewMethod("genExpr", 1, scratchLocals)
	b.Op(bytecode.Ret)
	_ = node
	return b.Finish()
}

// jcPatchGenExpr fills in genExpr(depth): genTerm { (+|-) genTerm }*.
func jcPatchGenExpr(pb *bytecode.ProgramBuilder, self int32, emitTok, genTerm int32) {
	b := bytecode.NewMethod("genExpr", 1, scratchLocals)
	const lDepth, lR = 0, 1
	b.Load(lDepth).Op(bytecode.Call, genTerm)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	jcEmitRand(b, 100)
	b.Store(lR)
	b.Load(lR).Const(40)
	b.Br(bytecode.IfGe, done)
	plus := b.NewLabel()
	after := b.NewLabel()
	b.Load(lR).Const(20)
	b.Br(bytecode.IfLt, plus)
	b.Const(jcMINUS).Const(0).Op(bytecode.Call, emitTok)
	b.Br(bytecode.Goto, after)
	b.Bind(plus)
	b.Const(jcPLUS).Const(0).Op(bytecode.Call, emitTok)
	b.Bind(after)
	b.Load(lDepth).Op(bytecode.Call, genTerm)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Op(bytecode.Ret)
	jcReplace(pb, self, b.Finish())
}

// jcGenTerm builds genTerm(depth): genFactor { (*|/) genFactor }*, with
// genFactor inlined (NUM | IDENT | '(' genExpr(depth-1) ')').
func jcGenTerm(pb *bytecode.ProgramBuilder, emitTok, genExpr int32) int32 {
	factor := func(b *mb, lDepth, lR int32) {
		leaf, num, doneF := b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Load(lDepth).Const(0)
		b.Br(bytecode.IfLe, leaf)
		jcEmitRand(b, 100)
		b.Store(lR)
		b.Load(lR).Const(70)
		b.Br(bytecode.IfLt, leaf)
		// Parenthesized subexpression.
		b.Const(jcLPAREN).Const(0).Op(bytecode.Call, emitTok)
		b.Load(lDepth).Const(1).Op(bytecode.Isub).Op(bytecode.Call, genExpr)
		b.Const(jcRPAREN).Const(0).Op(bytecode.Call, emitTok)
		b.Br(bytecode.Goto, doneF)
		b.Bind(leaf)
		jcEmitRand(b, 100)
		b.Store(lR)
		b.Load(lR).Const(55)
		b.Br(bytecode.IfLt, num)
		b.Const(jcIDENT)
		jcEmitRand(b, jcVars)
		b.Op(bytecode.Call, emitTok)
		b.Br(bytecode.Goto, doneF)
		b.Bind(num)
		b.Const(jcNUM)
		jcEmitRand(b, 97)
		b.Const(1).Op(bytecode.Iadd)
		b.Op(bytecode.Call, emitTok)
		b.Bind(doneF)
	}
	b := bytecode.NewMethod("genTerm", 1, scratchLocals)
	const lDepth, lR = 0, 1
	factor(b, lDepth, lR)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	jcEmitRand(b, 100)
	b.Store(lR)
	b.Load(lR).Const(35)
	b.Br(bytecode.IfGe, done)
	star := b.NewLabel()
	after := b.NewLabel()
	b.Load(lR).Const(15)
	b.Br(bytecode.IfLt, star)
	b.Const(jcSLASH).Const(0).Op(bytecode.Call, emitTok)
	b.Br(bytecode.Goto, after)
	b.Bind(star)
	b.Const(jcSTAR).Const(0).Op(bytecode.Call, emitTok)
	b.Bind(after)
	factor(b, lDepth, lR)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jcNewNode builds newNode(kind, value, left, right): Node.
func jcNewNode(pb *bytecode.ProgramBuilder, node int32) int32 {
	b := bytecode.NewMethod("newNode", 4, scratchLocals).ArgRefs(0b1100).ReturnsRef()
	const lKind, lVal, lL, lR, lN = 0, 1, 2, 3, 4
	b.Op(bytecode.New, node).Store(lN)
	b.Load(lN).Load(lKind).Op(bytecode.PutField, jcfKind)
	b.Load(lN).Load(lVal).Op(bytecode.PutField, jcfValue)
	b.Load(lN).Load(lL).Op(bytecode.PutField, jcfLeft)
	b.Load(lN).Load(lR).Op(bytecode.PutField, jcfRight)
	b.Op(bytecode.GetStatic, jcgNodes).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgNodes)
	b.Load(lN).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcPeek builds peek(): current token kind.
func jcPeek(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("peek", 0, scratchLocals)
	b.Op(bytecode.GetStatic, jcgTokKind).Op(bytecode.GetStatic, jcgPos).Op(bytecode.ALoad)
	b.Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcAdvance builds advance(): consumes one token.
func jcAdvance(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("advance", 0, scratchLocals)
	b.Op(bytecode.GetStatic, jcgPos).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgPos)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

func jcForwardParseExpr() *bytecode.Method {
	b := bytecode.NewMethod("parseExpr", 0, scratchLocals).ReturnsRef()
	b.Const(0).Op(bytecode.RetVal)
	return b.Finish()
}

// jcParseFactor builds parseFactor(): NUM | IDENT | '(' expr ')'.
func jcParseFactor(pb *bytecode.ProgramBuilder, node, newNode, peek, advance, parseExpr int32) int32 {
	b := bytecode.NewMethod("parseFactor", 0, scratchLocals).ReturnsRef()
	const lK, lV, lN = 0, 1, 2
	_ = node
	b.Op(bytecode.Call, peek).Store(lK)
	paren, ident := b.NewLabel(), b.NewLabel()
	b.Load(lK).Const(jcLPAREN)
	b.Br(bytecode.IfEq, paren)
	b.Load(lK).Const(jcIDENT)
	b.Br(bytecode.IfEq, ident)
	// NUM leaf.
	b.Op(bytecode.GetStatic, jcgTokVal).Op(bytecode.GetStatic, jcgPos).Op(bytecode.ALoad).Store(lV)
	b.Op(bytecode.Call, advance)
	b.Const(jcNUM).Load(lV).Const(0).Const(0).Op(bytecode.Call, newNode)
	b.Op(bytecode.RetVal)
	b.Bind(ident)
	b.Op(bytecode.GetStatic, jcgTokVal).Op(bytecode.GetStatic, jcgPos).Op(bytecode.ALoad).Store(lV)
	b.Op(bytecode.Call, advance)
	b.Const(jcIDENT).Load(lV).Const(0).Const(0).Op(bytecode.Call, newNode)
	b.Op(bytecode.RetVal)
	b.Bind(paren)
	b.Op(bytecode.Call, advance)
	b.Op(bytecode.Call, parseExpr).Store(lN)
	b.Op(bytecode.Call, advance) // ')'
	b.Load(lN).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcParseTerm builds parseTerm(): factor { (*|/) factor }*.
func jcParseTerm(pb *bytecode.ProgramBuilder, newNode, peek, advance, parseFactor int32) int32 {
	b := bytecode.NewMethod("parseTerm", 0, scratchLocals).ReturnsRef()
	const lLeft, lK = 0, 1
	b.Op(bytecode.Call, parseFactor).Store(lLeft)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	b.Op(bytecode.Call, peek).Store(lK)
	isOp := b.NewLabel()
	b.Load(lK).Const(jcSTAR)
	b.Br(bytecode.IfEq, isOp)
	b.Load(lK).Const(jcSLASH)
	b.Br(bytecode.IfEq, isOp)
	b.Br(bytecode.Goto, done)
	b.Bind(isOp)
	b.Op(bytecode.Call, advance)
	b.Load(lK).Const(0).Load(lLeft)
	b.Op(bytecode.Call, parseFactor)
	b.Op(bytecode.Call, newNode).Store(lLeft)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(lLeft).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcPatchParseExpr fills in parseExpr(): term { (+|-) term }*.
func jcPatchParseExpr(pb *bytecode.ProgramBuilder, self, newNode, peek, advance, parseTerm int32) {
	b := bytecode.NewMethod("parseExpr", 0, scratchLocals).ReturnsRef()
	const lLeft, lK = 0, 1
	b.Op(bytecode.Call, parseTerm).Store(lLeft)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	b.Op(bytecode.Call, peek).Store(lK)
	isOp := b.NewLabel()
	b.Load(lK).Const(jcPLUS)
	b.Br(bytecode.IfEq, isOp)
	b.Load(lK).Const(jcMINUS)
	b.Br(bytecode.IfEq, isOp)
	b.Br(bytecode.Goto, done)
	b.Bind(isOp)
	b.Op(bytecode.Call, advance)
	b.Load(lK).Const(0).Load(lLeft)
	b.Op(bytecode.Call, parseTerm)
	b.Op(bytecode.Call, newNode).Store(lLeft)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(lLeft).Op(bytecode.RetVal)
	jcReplace(pb, self, b.Finish())
}

// jcFold builds fold(n): Node — constant-folds the AST bottom-up,
// allocating replacement NUM nodes for foldable operators.
func jcFold(pb *bytecode.ProgramBuilder, node, newNode int32) int32 {
	_ = node
	b := bytecode.NewMethod("fold", 1, scratchLocals).ArgRefs(0b1).ReturnsRef()
	const lN, lL, lR, lK, lV = 0, 1, 2, 3, 4
	leaf := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfLeft)
	b.Br(bytecode.IfNull, leaf)
	// Fold children (self-recursive: our own index is len(methods) when
	// added; computed by the caller and patched via the placeholder
	// trick being unnecessary here — recursion targets our own index,
	// which equals the index this method receives at Add time. We use
	// the helper jcSelfIndex to predict it.)
	self := jcSelfIndex(pb)
	b.Load(lN)
	b.Load(lN).Op(bytecode.GetField, jcfLeft).Op(bytecode.Call, self).Op(bytecode.PutField, jcfLeft)
	b.Load(lN)
	b.Load(lN).Op(bytecode.GetField, jcfRight).Op(bytecode.Call, self).Op(bytecode.PutField, jcfRight)
	// If both children are NUM leaves, fold.
	noFold := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfLeft).Op(bytecode.GetField, jcfKind).Const(jcNUM)
	b.Br(bytecode.IfNe, noFold)
	b.Load(lN).Op(bytecode.GetField, jcfRight).Op(bytecode.GetField, jcfKind).Const(jcNUM)
	b.Br(bytecode.IfNe, noFold)
	b.Load(lN).Op(bytecode.GetField, jcfLeft).Op(bytecode.GetField, jcfValue).Store(lL)
	b.Load(lN).Op(bytecode.GetField, jcfRight).Op(bytecode.GetField, jcfValue).Store(lR)
	b.Load(lN).Op(bytecode.GetField, jcfKind).Store(lK)
	sub, mul, div, have := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Load(lK).Const(jcMINUS)
	b.Br(bytecode.IfEq, sub)
	b.Load(lK).Const(jcSTAR)
	b.Br(bytecode.IfEq, mul)
	b.Load(lK).Const(jcSLASH)
	b.Br(bytecode.IfEq, div)
	b.Load(lL).Load(lR).Op(bytecode.Iadd).Store(lV)
	b.Br(bytecode.Goto, have)
	b.Bind(sub)
	b.Load(lL).Load(lR).Op(bytecode.Isub).Store(lV)
	b.Br(bytecode.Goto, have)
	b.Bind(mul)
	b.Load(lL).Load(lR).Op(bytecode.Imul).Store(lV)
	b.Br(bytecode.Goto, have)
	b.Bind(div)
	// Guarded division, as the generated language defines x/0 = x/1.
	nz := b.NewLabel()
	b.Load(lR).Const(0)
	b.Br(bytecode.IfNe, nz)
	b.Const(1).Store(lR)
	b.Bind(nz)
	b.Load(lL).Load(lR).Op(bytecode.Idiv).Store(lV)
	b.Bind(have)
	b.Op(bytecode.GetStatic, jcgFolds).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgFolds)
	b.Const(jcNUM).Load(lV).Const(0).Const(0).Op(bytecode.Call, newNode)
	b.Op(bytecode.RetVal)
	b.Bind(noFold)
	b.Load(lN).Op(bytecode.RetVal)
	b.Bind(leaf)
	b.Load(lN).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcCheckPass builds checkPass<k>(n): int — one semantic-analysis walk.
// Pass k counts the nodes satisfying its own predicate: leaves whose
// value exceeds a per-pass threshold and interior nodes of a per-pass
// operator kind.
func jcCheckPass(pb *bytecode.ProgramBuilder, k int) int32 {
	kind, thresh := jcCheckParams(k)
	b := bytecode.NewMethod(fmt.Sprintf("checkPass%d", k), 1, scratchLocals).ArgRefs(0b1)
	const lN, lCnt = 0, 1
	self := jcSelfIndex(pb)
	leaf := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfLeft)
	b.Br(bytecode.IfNull, leaf)
	// Interior: count(left) + count(right) + (kind matches ? 1 : 0).
	b.Load(lN).Op(bytecode.GetField, jcfLeft).Op(bytecode.Call, self)
	b.Load(lN).Op(bytecode.GetField, jcfRight).Op(bytecode.Call, self)
	b.Op(bytecode.Iadd).Store(lCnt)
	skip := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfKind).Const(kind)
	b.Br(bytecode.IfNe, skip)
	b.Load(lCnt).Const(1).Op(bytecode.Iadd).Store(lCnt)
	b.Bind(skip)
	b.Load(lCnt).Op(bytecode.RetVal)
	b.Bind(leaf)
	hot := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfValue).Const(thresh)
	b.Br(bytecode.IfGt, hot)
	b.Const(0).Op(bytecode.RetVal)
	b.Bind(hot)
	b.Const(1).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jcCheckParams derives pass k's predicate parameters.
func jcCheckParams(k int) (kind, thresh int32) {
	kinds := []int32{jcPLUS, jcMINUS, jcSTAR, jcSLASH, jcIDENT}
	return kinds[k%len(kinds)], int32(5 + 7*k)
}

// jcCheckPassGo mirrors checkPass<k>.
func jcCheckPassGo(k int, n *jcNode) int64 {
	kind, thresh := jcCheckParams(k)
	if n.left == nil {
		if n.value > int64(thresh) {
			return 1
		}
		return 0
	}
	cnt := jcCheckPassGo(k, n.left) + jcCheckPassGo(k, n.right)
	if n.kind == int64(kind) {
		cnt++
	}
	return cnt
}

// jcEmitCode builds emitCode(op, arg): appends one stack-machine instr.
func jcEmitCode(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("emitCode", 2, scratchLocals)
	const lOp, lArg, lN = 0, 1, 2
	b.Op(bytecode.GetStatic, jcgCodeLen).Store(lN)
	b.Op(bytecode.GetStatic, jcgCodeOp).Load(lN).Load(lOp).Op(bytecode.AStore)
	b.Op(bytecode.GetStatic, jcgCodeArg).Load(lN).Load(lArg).Op(bytecode.AStore)
	b.Load(lN).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jcgCodeLen)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

func jcForwardGenCode() *bytecode.Method {
	b := bytecode.NewMethod("genCode", 1, scratchLocals).ArgRefs(0b1)
	b.Op(bytecode.Ret)
	return b.Finish()
}

// jcPatchGenCode fills in genCode(n): post-order walk emitting code.
func jcPatchGenCode(pb *bytecode.ProgramBuilder, self, emitCode int32) {
	b := bytecode.NewMethod("genCode", 1, scratchLocals).ArgRefs(0b1)
	const lN, lK = 0, 1
	leaf := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfLeft)
	b.Br(bytecode.IfNull, leaf)
	b.Load(lN).Op(bytecode.GetField, jcfLeft).Op(bytecode.Call, self)
	b.Load(lN).Op(bytecode.GetField, jcfRight).Op(bytecode.Call, self)
	b.Load(lN).Op(bytecode.GetField, jcfKind).Store(lK)
	sub, mul, div, fin := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Load(lK).Const(jcMINUS)
	b.Br(bytecode.IfEq, sub)
	b.Load(lK).Const(jcSTAR)
	b.Br(bytecode.IfEq, mul)
	b.Load(lK).Const(jcSLASH)
	b.Br(bytecode.IfEq, div)
	b.Const(jcOpAdd).Const(0).Op(bytecode.Call, emitCode)
	b.Br(bytecode.Goto, fin)
	b.Bind(sub)
	b.Const(jcOpSub).Const(0).Op(bytecode.Call, emitCode)
	b.Br(bytecode.Goto, fin)
	b.Bind(mul)
	b.Const(jcOpMul).Const(0).Op(bytecode.Call, emitCode)
	b.Br(bytecode.Goto, fin)
	b.Bind(div)
	b.Const(jcOpDiv).Const(0).Op(bytecode.Call, emitCode)
	b.Bind(fin)
	b.Op(bytecode.Ret)
	b.Bind(leaf)
	num := b.NewLabel()
	b.Load(lN).Op(bytecode.GetField, jcfKind).Const(jcNUM)
	b.Br(bytecode.IfEq, num)
	b.Const(jcOpLoad).Load(lN).Op(bytecode.GetField, jcfValue).Op(bytecode.Call, emitCode)
	b.Op(bytecode.Ret)
	b.Bind(num)
	b.Const(jcOpPush).Load(lN).Op(bytecode.GetField, jcfValue).Op(bytecode.Call, emitCode)
	b.Op(bytecode.Ret)
	jcReplace(pb, self, b.Finish())
}

// jcEval builds eval(vars): executes the generated stack code. Values are
// kept within int64 by masking after multiplication.
func jcEval(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("eval", 1, scratchLocals).ArgRefs(0b1)
	const (
		lVars, lStack, lSp, lPc, lOp, lArg, lA, lB2, lLen = 0, 1, 2, 3, 4, 5, 6, 7, 8
	)
	b.Const(256).Op(bytecode.NewArray, bytecode.KindInt).Store(lStack)
	b.Const(0).Store(lSp)
	b.Op(bytecode.GetStatic, jcgCodeLen).Store(lLen)
	forVar(b, lPc, lLen, func() {
		b.Op(bytecode.GetStatic, jcgCodeOp).Load(lPc).Op(bytecode.ALoad).Store(lOp)
		b.Op(bytecode.GetStatic, jcgCodeArg).Load(lPc).Op(bytecode.ALoad).Store(lArg)
		push, load, store, binop, next := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Load(lOp).Const(jcOpPush)
		b.Br(bytecode.IfEq, push)
		b.Load(lOp).Const(jcOpLoad)
		b.Br(bytecode.IfEq, load)
		b.Load(lOp).Const(jcOpStore)
		b.Br(bytecode.IfEq, store)
		b.Br(bytecode.Goto, binop)

		b.Bind(push)
		b.Load(lStack).Load(lSp).Load(lArg).Op(bytecode.AStore)
		b.Load(lSp).Const(1).Op(bytecode.Iadd).Store(lSp)
		b.Br(bytecode.Goto, next)

		b.Bind(load)
		b.Load(lStack).Load(lSp)
		b.Load(lVars).Load(lArg).Op(bytecode.ALoad)
		b.Op(bytecode.AStore)
		b.Load(lSp).Const(1).Op(bytecode.Iadd).Store(lSp)
		b.Br(bytecode.Goto, next)

		b.Bind(store)
		b.Load(lSp).Const(1).Op(bytecode.Isub).Store(lSp)
		b.Load(lVars).Load(lArg)
		b.Load(lStack).Load(lSp).Op(bytecode.ALoad)
		b.Op(bytecode.AStore)
		b.Br(bytecode.Goto, next)

		b.Bind(binop)
		b.Load(lSp).Const(1).Op(bytecode.Isub).Store(lSp)
		b.Load(lStack).Load(lSp).Op(bytecode.ALoad).Store(lB2)
		b.Load(lSp).Const(1).Op(bytecode.Isub).Store(lSp)
		b.Load(lStack).Load(lSp).Op(bytecode.ALoad).Store(lA)
		sub, mul, div, have := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Load(lOp).Const(jcOpSub)
		b.Br(bytecode.IfEq, sub)
		b.Load(lOp).Const(jcOpMul)
		b.Br(bytecode.IfEq, mul)
		b.Load(lOp).Const(jcOpDiv)
		b.Br(bytecode.IfEq, div)
		b.Load(lA).Load(lB2).Op(bytecode.Iadd).Store(lA)
		b.Br(bytecode.Goto, have)
		b.Bind(sub)
		b.Load(lA).Load(lB2).Op(bytecode.Isub).Store(lA)
		b.Br(bytecode.Goto, have)
		b.Bind(mul)
		b.Load(lA).Load(lB2).Op(bytecode.Imul)
		b.Const(0xFFFFF).Op(bytecode.Iand).Store(lA) // keep values bounded
		b.Br(bytecode.Goto, have)
		b.Bind(div)
		nz := b.NewLabel()
		b.Load(lB2).Const(0)
		b.Br(bytecode.IfNe, nz)
		b.Const(1).Store(lB2)
		b.Bind(nz)
		b.Load(lA).Load(lB2).Op(bytecode.Idiv).Store(lA)
		b.Bind(have)
		b.Load(lStack).Load(lSp).Load(lA).Op(bytecode.AStore)
		b.Load(lSp).Const(1).Op(bytecode.Iadd).Store(lSp)
		b.Bind(next)
	})
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jcSelfIndex predicts the index the next-added method will get,
// enabling direct self-recursion.
func jcSelfIndex(pb *bytecode.ProgramBuilder) int32 { return pb.Count() }

// jcReplace swaps a placeholder method's body for the real one.
func jcReplace(pb *bytecode.ProgramBuilder, idx int32, m *bytecode.Method) { pb.Replace(idx, m) }

// --- Go mirror ---

type jcNode struct {
	kind, value int64
	left, right *jcNode
}

type jcMirror struct {
	seed            int64
	tokKind, tokVal []int64
	pos             int
	codeOp, codeArg []int64
	tokens, nodes   int64
	folds           int64
}

func (m *jcMirror) rand(bound int64) int64 {
	m.seed = lcgNextGo(m.seed)
	return lcgIntGo(m.seed, bound)
}

func (m *jcMirror) emitTok(kind, val int64) {
	m.tokKind = append(m.tokKind, kind)
	m.tokVal = append(m.tokVal, val)
}

func (m *jcMirror) genExpr(depth int64) {
	m.genTerm(depth)
	for {
		r := m.rand(100)
		if r >= 40 {
			return
		}
		if r < 20 {
			m.emitTok(jcPLUS, 0)
		} else {
			m.emitTok(jcMINUS, 0)
		}
		m.genTerm(depth)
	}
}

func (m *jcMirror) genFactor(depth int64) {
	if depth > 0 {
		if r := m.rand(100); r >= 70 {
			m.emitTok(jcLPAREN, 0)
			m.genExpr(depth - 1)
			m.emitTok(jcRPAREN, 0)
			return
		}
	}
	if r := m.rand(100); r >= 55 {
		m.emitTok(jcIDENT, m.rand(jcVars))
	} else {
		m.emitTok(jcNUM, m.rand(97)+1)
	}
}

func (m *jcMirror) genTerm(depth int64) {
	m.genFactor(depth)
	for {
		r := m.rand(100)
		if r >= 35 {
			return
		}
		if r < 15 {
			m.emitTok(jcSTAR, 0)
		} else {
			m.emitTok(jcSLASH, 0)
		}
		m.genFactor(depth)
	}
}

func (m *jcMirror) newNode(kind, value int64, l, r *jcNode) *jcNode {
	m.nodes++
	return &jcNode{kind: kind, value: value, left: l, right: r}
}

func (m *jcMirror) peek() int64 { return m.tokKind[m.pos] }

func (m *jcMirror) parseFactor() *jcNode {
	switch m.peek() {
	case jcLPAREN:
		m.pos++
		n := m.parseExpr()
		m.pos++
		return n
	case jcIDENT:
		v := m.tokVal[m.pos]
		m.pos++
		return m.newNode(jcIDENT, v, nil, nil)
	default:
		v := m.tokVal[m.pos]
		m.pos++
		return m.newNode(jcNUM, v, nil, nil)
	}
}

func (m *jcMirror) parseTerm() *jcNode {
	left := m.parseFactor()
	for {
		k := m.peek()
		if k != jcSTAR && k != jcSLASH {
			return left
		}
		m.pos++
		left = m.newNode(k, 0, left, m.parseFactor())
	}
}

func (m *jcMirror) parseExpr() *jcNode {
	left := m.parseTerm()
	for {
		k := m.peek()
		if k != jcPLUS && k != jcMINUS {
			return left
		}
		m.pos++
		left = m.newNode(k, 0, left, m.parseTerm())
	}
}

func (m *jcMirror) fold(n *jcNode) *jcNode {
	if n.left == nil {
		return n
	}
	n.left = m.fold(n.left)
	n.right = m.fold(n.right)
	if n.left.kind != jcNUM || n.right.kind != jcNUM {
		return n
	}
	l, r := n.left.value, n.right.value
	var v int64
	switch n.kind {
	case jcMINUS:
		v = l - r
	case jcSTAR:
		v = l * r
	case jcSLASH:
		if r == 0 {
			r = 1
		}
		v = l / r
	default:
		v = l + r
	}
	m.folds++
	return m.newNode(jcNUM, v, nil, nil)
}

func (m *jcMirror) genCode(n *jcNode) {
	if n.left == nil {
		if n.kind == jcNUM {
			m.codeOp = append(m.codeOp, jcOpPush)
			m.codeArg = append(m.codeArg, n.value)
		} else {
			m.codeOp = append(m.codeOp, jcOpLoad)
			m.codeArg = append(m.codeArg, n.value)
		}
		return
	}
	m.genCode(n.left)
	m.genCode(n.right)
	op := int64(jcOpAdd)
	switch n.kind {
	case jcMINUS:
		op = jcOpSub
	case jcSTAR:
		op = jcOpMul
	case jcSLASH:
		op = jcOpDiv
	}
	m.codeOp = append(m.codeOp, op)
	m.codeArg = append(m.codeArg, 0)
}

func javacGo(stmts, iters int32) (chk, tokens, nodes, folds int64) {
	chkAcc := int64(0)
	var totTokens, totNodes, totFolds int64
	for iter := int32(0); iter < iters; iter++ {
		m := &jcMirror{seed: int64(iter)*7717 + 5551}
		for s := int32(0); s < stmts; s++ {
			m.emitTok(jcIDENT, m.rand(jcVars))
			m.emitTok(jcASSIGN, 0)
			m.genExpr(jcGenDepth)
			m.emitTok(jcSEMI, 0)
		}
		m.emitTok(jcEOF, 0)
		m.tokens = int64(len(m.tokKind))
		vars := make([]int64, jcVars)
		for s := int32(0); s < stmts; s++ {
			v := m.tokVal[m.pos]
			m.pos += 2
			ast := m.parseExpr()
			for k := 0; k < 90; k++ {
				chkAcc = mix64Go(chkAcc, jcCheckPassGo(k, ast))
			}
			ast = m.fold(ast)
			m.genCode(ast)
			m.codeOp = append(m.codeOp, jcOpStore)
			m.codeArg = append(m.codeArg, v)
			m.pos++
		}
		// Eval.
		stack := make([]int64, 256)
		sp := 0
		for pc := range m.codeOp {
			op, arg := m.codeOp[pc], m.codeArg[pc]
			switch op {
			case jcOpPush:
				stack[sp] = arg
				sp++
			case jcOpLoad:
				stack[sp] = vars[arg]
				sp++
			case jcOpStore:
				sp--
				vars[arg] = stack[sp]
			default:
				sp--
				b2 := stack[sp]
				sp--
				a := stack[sp]
				switch op {
				case jcOpSub:
					a -= b2
				case jcOpMul:
					a = (a * b2) & 0xFFFFF
				case jcOpDiv:
					if b2 == 0 {
						b2 = 1
					}
					a /= b2
				default:
					a += b2
				}
				stack[sp] = a
				sp++
			}
		}
		for i := 0; i < jcVars; i++ {
			chkAcc = mix64Go(chkAcc, vars[i])
		}
		totTokens += m.tokens
		totNodes += m.nodes
		totFolds += m.folds
	}
	return chkAcc, totTokens, totNodes, totFolds
}

func verifyJavac(vm *jvm.VM, _ int, scale Scale) error {
	stmts, iters := javacParams(scale)
	chk, tokens, nodes, folds := javacGo(stmts, iters)
	if got := int64(vm.Global(jcgTokens)); got != tokens {
		return fmt.Errorf("javac: %d tokens, want %d", got, tokens)
	}
	if got := int64(vm.Global(jcgNodes)); got != nodes {
		return fmt.Errorf("javac: %d AST nodes, want %d", got, nodes)
	}
	if got := int64(vm.Global(jcgFolds)); got != folds {
		return fmt.Errorf("javac: %d folds, want %d", got, folds)
	}
	if got := int64(vm.Global(jcgChk)); got != chk {
		return fmt.Errorf("javac: checksum %d, want %d", got, chk)
	}
	return nil
}

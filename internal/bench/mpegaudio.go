package bench

import (
	"fmt"
	"math"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// mpegaudio — "an ISO MPEG Layer-3 audio decoder". The computational
// heart of Layer-3 decoding is the 32-subband polyphase synthesis filter
// bank: per frame, 32 subband samples are matrixed through a 64x32
// cosine modulation into a sliding vector, then windowed by a 512-tap
// filter into 32 PCM samples. That kernel is implemented here in full:
// dense float multiply-accumulate loops with high ILP over a small data
// set — which is exactly the micro-architectural character the paper's
// mpegaudio exhibits (FP-bound, cache-friendly).
//
// Globals: 0 = PCM checksum (float bits), 1 = frames processed.
const (
	mpegBands  = 32
	mpegMatrix = 64
	mpegTaps   = 512
	mpegVRing  = 1024
)

func mpegParams(s Scale) int32 { return s.pick(8, 60, 240) } // frames

// Mpegaudio returns the benchmark descriptor.
func Mpegaudio() *Benchmark {
	return &Benchmark{
		Name:        "mpegaudio",
		Description: "An ISO MPEG Layer-3 audio decoder (polyphase synthesis filter bank)",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildMpegaudio,
		Verify:      verifyMpegaudio,
	}
}

func buildMpegaudio(_ int, scale Scale, base uint64) *bytecode.Program {
	frames := mpegParams(scale)
	pb := bytecode.NewProgram("mpegaudio")
	pb.Globals(2, 0)

	cosIdx := mpegCosTable(pb)
	winIdx := mpegWindowTable(pb)
	frameIdx := mpegFrame(pb)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lCos, lWin, lV, lS, lF, lPos, lSum, lK = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Op(bytecode.Call, cosIdx).Store(lCos)
	b.Op(bytecode.Call, winIdx).Store(lWin)
	b.Const(mpegVRing).Op(bytecode.NewArray, bytecode.KindFloat).Store(lV)
	b.Const(mpegBands).Op(bytecode.NewArray, bytecode.KindFloat).Store(lS)
	b.Const(0).Store(lPos)
	b.FConst(0).Store(lSum)
	forConst(b, lF, frames, func() {
		// Subband samples for this frame: s[k] = sin(0.02*(f*32+k)).
		forConst(b, lK, mpegBands, func() {
			b.Load(lS).Load(lK)
			b.Load(lF).Const(mpegBands).Op(bytecode.Imul).Load(lK).Op(bytecode.Iadd)
			b.Op(bytecode.I2f).FConst(0.02).Op(bytecode.Fmul)
			b.Op(bytecode.Fmath, bytecode.MathSin)
			b.Op(bytecode.AStore)
		})
		// sum += frame(cos, win, v, s, pos); pos advances by 64 mod ring.
		b.Load(lSum)
		b.Load(lCos).Load(lWin).Load(lV).Load(lS).Load(lPos)
		b.Op(bytecode.Call, frameIdx)
		b.Op(bytecode.Fadd).Store(lSum)
		b.Load(lPos).Const(mpegMatrix).Op(bytecode.Iadd)
		b.Const(mpegVRing - 1).Op(bytecode.Iand).Store(lPos)
		b.Op(bytecode.GetStatic, 1).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, 1)
	})
	b.Load(lSum).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// mpegCosTable builds cosTable(): float[64*32] with
// n[i][k] = cos((16+i)*(2k+1)*pi/64).
func mpegCosTable(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("cosTable", 0, scratchLocals).ReturnsRef()
	const (
		lArr, lI, lK = 0, 1, 2
	)
	b.Const(mpegMatrix*mpegBands).Op(bytecode.NewArray, bytecode.KindFloat).Store(lArr)
	forConst(b, lI, mpegMatrix, func() {
		forConst(b, lK, mpegBands, func() {
			b.Load(lArr)
			b.Load(lI).Const(mpegBands).Op(bytecode.Imul).Load(lK).Op(bytecode.Iadd)
			// (16+i)*(2k+1)*pi/64
			b.Load(lI).Const(16).Op(bytecode.Iadd)
			b.Load(lK).Const(2).Op(bytecode.Imul).Const(1).Op(bytecode.Iadd)
			b.Op(bytecode.Imul).Op(bytecode.I2f)
			b.FConst(math.Pi / 64).Op(bytecode.Fmul)
			b.Op(bytecode.Fmath, bytecode.MathCos)
			b.Op(bytecode.AStore)
		})
	})
	b.Load(lArr).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// mpegWindowTable builds window(): float[512] with
// d[i] = sin(pi*i/512)*exp(-i/256).
func mpegWindowTable(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("windowTable", 0, scratchLocals).ReturnsRef()
	const (
		lArr, lI = 0, 1
	)
	b.Const(mpegTaps).Op(bytecode.NewArray, bytecode.KindFloat).Store(lArr)
	forConst(b, lI, mpegTaps, func() {
		b.Load(lArr).Load(lI)
		b.Load(lI).Op(bytecode.I2f).FConst(math.Pi / mpegTaps).Op(bytecode.Fmul)
		b.Op(bytecode.Fmath, bytecode.MathSin)
		b.Load(lI).Op(bytecode.I2f).FConst(-1.0 / 256).Op(bytecode.Fmul)
		b.Op(bytecode.Fmath, bytecode.MathExp)
		b.Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
	})
	b.Load(lArr).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// mpegFrame builds frame(cos, win, v, s, pos): float — one synthesis
// step: matrixing (64x32 MACs) into the sliding vector, then 32 windowed
// output samples (16 taps each), returning their sum.
func mpegFrame(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("frame", 5, scratchLocals).ArgRefs(0b01111)
	const (
		lCos, lWin, lV, lS, lPos         = 0, 1, 2, 3, 4
		lI, lK, lAcc, lOut, lJ, lT, lIdx = 5, 6, 7, 8, 9, 10, 11
	)
	// Matrixing: v[(pos+i) & ring] = sum_k cos[i*32+k]*s[k]
	forConst(b, lI, mpegMatrix, func() {
		b.FConst(0).Store(lAcc)
		forConst(b, lK, mpegBands, func() {
			b.Load(lAcc)
			b.Load(lCos)
			b.Load(lI).Const(mpegBands).Op(bytecode.Imul).Load(lK).Op(bytecode.Iadd)
			b.Op(bytecode.ALoad)
			b.Load(lS).Load(lK).Op(bytecode.ALoad)
			b.Op(bytecode.Fmul).Op(bytecode.Fadd).Store(lAcc)
		})
		b.Load(lV)
		b.Load(lPos).Load(lI).Op(bytecode.Iadd).Const(mpegVRing - 1).Op(bytecode.Iand)
		b.Load(lAcc)
		b.Op(bytecode.AStore)
	})
	// Windowing: out = sum_j sum_t v[(pos+j+64t)&ring] * win[(j+32t)&511]
	b.FConst(0).Store(lOut)
	forConst(b, lJ, mpegBands, func() {
		forConst(b, lT, 16, func() {
			b.Load(lOut)
			b.Load(lV)
			b.Load(lPos).Load(lJ).Op(bytecode.Iadd)
			b.Load(lT).Const(mpegMatrix).Op(bytecode.Imul).Op(bytecode.Iadd)
			b.Const(mpegVRing - 1).Op(bytecode.Iand)
			b.Op(bytecode.ALoad)
			b.Load(lWin)
			b.Load(lJ).Load(lT).Const(mpegBands).Op(bytecode.Imul).Op(bytecode.Iadd)
			b.Const(mpegTaps - 1).Op(bytecode.Iand)
			b.Op(bytecode.ALoad)
			b.Op(bytecode.Fmul).Op(bytecode.Fadd).Store(lOut)
		})
	})
	_ = lIdx
	b.Load(lOut).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// mpegGo mirrors the whole benchmark in Go.
func mpegGo(frames int32) float64 {
	cos := make([]float64, mpegMatrix*mpegBands)
	for i := 0; i < mpegMatrix; i++ {
		for k := 0; k < mpegBands; k++ {
			cos[i*mpegBands+k] = math.Cos(float64((16+i)*(2*k+1)) * math.Pi / 64)
		}
	}
	win := make([]float64, mpegTaps)
	for i := range win {
		win[i] = math.Sin(float64(i)*math.Pi/mpegTaps) * math.Exp(float64(i)*(-1.0/256))
	}
	v := make([]float64, mpegVRing)
	s := make([]float64, mpegBands)
	pos := 0
	sum := 0.0
	for f := int32(0); f < frames; f++ {
		for k := 0; k < mpegBands; k++ {
			s[k] = math.Sin(float64(int(f)*mpegBands+k) * 0.02)
		}
		for i := 0; i < mpegMatrix; i++ {
			acc := 0.0
			for k := 0; k < mpegBands; k++ {
				acc += cos[i*mpegBands+k] * s[k]
			}
			v[(pos+i)&(mpegVRing-1)] = acc
		}
		out := 0.0
		for j := 0; j < mpegBands; j++ {
			for t := 0; t < 16; t++ {
				out += v[(pos+j+t*mpegMatrix)&(mpegVRing-1)] * win[(j+t*mpegBands)&(mpegTaps-1)]
			}
		}
		sum += out
		pos = (pos + mpegMatrix) & (mpegVRing - 1)
	}
	return sum
}

func verifyMpegaudio(vm *jvm.VM, _ int, scale Scale) error {
	frames := mpegParams(scale)
	if got := int64(vm.Global(1)); got != int64(frames) {
		return fmt.Errorf("mpegaudio: %d frames, want %d", got, frames)
	}
	want := mpegGo(frames)
	got := vm.GlobalFloat(0)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		return fmt.Errorf("mpegaudio: PCM checksum %v, want %v", got, want)
	}
	return nil
}

package bench

import (
	"fmt"
	"math"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// MonteCarlo — "a product price deriving program based on Monte Carlo
// techniques" (Java Grande). Each path evolves a price through T
// geometric-Brownian steps whose normal increments come from the
// Box-Muller transform; paths are partitioned across Java threads, each
// accumulating a partial sum in its own cell, and the main thread joins
// and reduces. FP-heavy with long-latency sqrt/log/exp per step and
// fully independent parallel work — the paper's best-scaling shape.
//
// Globals: 0 = mean price (float bits), 1 = paths completed.
const mcSteps = 40

func mcParams(s Scale) int32 { return s.pick(60, 400, 2000) } // paths

// MonteCarlo returns the benchmark descriptor.
func MonteCarlo() *Benchmark {
	return &Benchmark{
		Name:          "MonteCarlo",
		Description:   "A product price deriving program based on Monte Carlo techniques",
		Input:         "N = 10,000 (scaled)",
		Multithreaded: true,
		Build:         buildMonteCarlo,
		Verify:        verifyMonteCarlo,
	}
}

func buildMonteCarlo(threads int, scale Scale, base uint64) *bytecode.Program {
	paths := mcParams(scale)
	pb := bytecode.NewProgram("MonteCarlo")
	pb.Globals(2, 0)
	// Per-path result objects, as the JGF original returns a result
	// object per priced path.
	result := pb.Class("PathResult", 1, 0)

	workerIdx := mcWorker(pb, result)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lRes, lTids, lW, lLo, lHi, lSum = 0, 1, 2, 3, 4, 5
	)
	nt := int32(threads)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindFloat).Store(lRes)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		// lo = w*paths/nt ; hi = (w+1)*paths/nt
		b.Load(lW).Const(paths).Op(bytecode.Imul).Const(nt).Op(bytecode.Idiv).Store(lLo)
		b.Load(lW).Const(1).Op(bytecode.Iadd).Const(paths).Op(bytecode.Imul).Const(nt).Op(bytecode.Idiv).Store(lHi)
		b.Load(lTids).Load(lW)
		b.Load(lRes).Load(lW).Load(lLo).Load(lHi)
		b.Op(bytecode.ThreadStart, workerIdx)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.FConst(0).Store(lSum)
	forConst(b, lW, nt, func() {
		b.Load(lSum).Load(lRes).Load(lW).Op(bytecode.ALoad).Op(bytecode.Fadd).Store(lSum)
	})
	b.Load(lSum).Const(paths).Op(bytecode.I2f).Op(bytecode.Fdiv).Op(bytecode.PutStatic, 0)
	b.Const(paths).Op(bytecode.PutStatic, 1)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// mcWorker builds worker(results, tid, lo, hi): prices paths [lo,hi) and
// stores the partial sum in results[tid].
func mcWorker(pb *bytecode.ProgramBuilder, result int32) int32 {
	b := bytecode.NewMethod("worker", 4, scratchLocals).ArgRefs(0b0001)
	const (
		lRes, lTid, lLo, lHi = 0, 1, 2, 3
		lP, lT, lSeed, lS    = 4, 5, 6, 7
		lU1, lU2, lZ, lSum   = 8, 9, 10, 11
		lObj                 = 12
	)
	b.FConst(0).Store(lSum)
	forFromTo(b, lP, lLo, lHi, func() {
		// seed = (p+1) * 2654435761 (fits in 48-bit LCG space)
		b.Load(lP).Const(1).Op(bytecode.Iadd)
		emitConst64(b, 2654435761)
		b.Op(bytecode.Imul)
		emitConst64(b, lcgMask)
		b.Op(bytecode.Iand)
		b.Store(lSeed)
		b.FConst(1.0).Store(lS)
		forConst(b, lT, mcSteps, func() {
			// u1, u2 in (0,1]: ((bits & 0x7FFFFFFF)+1) / 2^31
			for _, dst := range []int32{lU1, lU2} {
				emitLCGNext(b, lSeed)
				b.Load(lSeed).Const(17).Op(bytecode.Ishr)
				b.Const(0x7FFFFFFF).Op(bytecode.Iand)
				b.Const(1).Op(bytecode.Iadd)
				b.Op(bytecode.I2f)
				b.FConst(1.0 / (1 << 31)).Op(bytecode.Fmul)
				b.Store(dst)
			}
			// z = sqrt(-2 ln u1) * cos(2 pi u2)
			b.Load(lU1).Op(bytecode.Fmath, bytecode.MathLog)
			b.FConst(-2.0).Op(bytecode.Fmul)
			b.Op(bytecode.Fmath, bytecode.MathSqrt)
			b.Load(lU2).FConst(2 * math.Pi).Op(bytecode.Fmul)
			b.Op(bytecode.Fmath, bytecode.MathCos)
			b.Op(bytecode.Fmul).Store(lZ)
			// S *= exp(mu + sigma z)
			b.Load(lS)
			b.Load(lZ).FConst(0.05).Op(bytecode.Fmul).FConst(0.001).Op(bytecode.Fadd)
			b.Op(bytecode.Fmath, bytecode.MathExp)
			b.Op(bytecode.Fmul).Store(lS)
		})
		// Box the path result (JGF-style churn) and accumulate from it.
		b.Op(bytecode.New, result).Store(lObj)
		b.Load(lObj).Load(lS).Op(bytecode.PutField, 0)
		b.Load(lSum).Load(lObj).Op(bytecode.GetField, 0).Op(bytecode.Fadd).Store(lSum)
	})
	b.Load(lRes).Load(lTid).Load(lSum).Op(bytecode.AStore)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// mcGo mirrors the benchmark for the given thread count.
func mcGo(paths int32, threads int) float64 {
	nt := int32(threads)
	partial := make([]float64, nt)
	for w := int32(0); w < nt; w++ {
		lo := int64(w) * int64(paths) / int64(nt)
		hi := int64(w+1) * int64(paths) / int64(nt)
		sum := 0.0
		for p := lo; p < hi; p++ {
			seed := ((p + 1) * 2654435761) & lcgMask
			s := 1.0
			for t := 0; t < mcSteps; t++ {
				seed = lcgNextGo(seed)
				u1 := float64(((seed>>17)&0x7FFFFFFF)+1) * (1.0 / (1 << 31))
				seed = lcgNextGo(seed)
				u2 := float64(((seed>>17)&0x7FFFFFFF)+1) * (1.0 / (1 << 31))
				z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
				s *= math.Exp(0.001 + 0.05*z)
			}
			sum += s
		}
		partial[w] = sum
	}
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total / float64(paths)
}

func verifyMonteCarlo(vm *jvm.VM, threads int, scale Scale) error {
	paths := mcParams(scale)
	if got := int64(vm.Global(1)); got != int64(paths) {
		return fmt.Errorf("MonteCarlo: %d paths, want %d", got, paths)
	}
	want := mcGo(paths, threads)
	got := vm.GlobalFloat(0)
	if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		return fmt.Errorf("MonteCarlo: mean %v, want %v", got, want)
	}
	return nil
}

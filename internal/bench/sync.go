package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// This file is the synchronization-stress suite (DESIGN.md §14): four
// kernels whose performance is dominated by the JMM primitives rather
// than by computation. They are deliberately small programs with heavy
// monitor, volatile and CAS traffic, built to light up the new
// lock_acquires / lock_contended / fence_* / cas_* counters and to give
// the SMT seating policies lock-convoy behavior to react to. They live
// in their own Sync() family — the paper's Table 1 population in All()
// is unchanged — and are addressable through ByName like any other
// benchmark.

// Sync returns the synchronization-stress workloads.
func Sync() []*Benchmark {
	return []*Benchmark{SyncLock(), SyncQueue(), SyncCAS(), SyncFalse()}
}

// --- SyncLock: lock convoy on a single shared counter ---

func syncLockParams(s Scale) int32 { return s.pick(150, 600, 2400) }

// SyncLock returns the lock-convoy benchmark: every thread increments
// one monitor-guarded counter, so the lock is the whole workload.
func SyncLock() *Benchmark {
	return &Benchmark{
		Name:          "SyncLock",
		Description:   "Lock convoy: all threads increment one monitor-guarded counter",
		Input:         "150 increments/thread (scaled)",
		Multithreaded: true,
		Build:         buildSyncLock,
		Verify:        verifySyncLock,
	}
}

func buildSyncLock(threads int, scale Scale, base uint64) *bytecode.Program {
	iters := syncLockParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("SyncLock")
	pb.Globals(1, 0) // 0 = final counter value
	cls := pb.Class("Counter", 1, 0)

	w := bytecode.NewMethod("lockWorker", 2, scratchLocals).ArgRefs(0b01)
	const lObj, lIters, lJ = 0, 1, 2
	forVar(w, lJ, lIters, func() {
		w.Load(lObj).Op(bytecode.MonEnter)
		w.Load(lObj)
		w.Load(lObj).Op(bytecode.GetField, 0)
		w.Const(1).Op(bytecode.Iadd)
		w.Op(bytecode.PutField, 0)
		w.Load(lObj).Op(bytecode.MonExit)
	})
	w.Op(bytecode.Ret)
	wi := pb.Add(w.Finish())

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const lShared, lTids, lW = 0, 1, 2
	b.Op(bytecode.New, cls).Store(lShared)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Load(lShared).Const(iters)
		b.Op(bytecode.ThreadStart, wi)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.Load(lShared).Op(bytecode.GetField, 0).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

func verifySyncLock(vm *jvm.VM, threads int, scale Scale) error {
	want := int64(threads) * int64(syncLockParams(scale))
	if got := int64(vm.Global(0)); got != want {
		return fmt.Errorf("counter = %d, want %d (lost updates => broken monitors)", got, want)
	}
	return nil
}

// --- SyncQueue: monitor-guarded bounded producer/consumer ring ---

func syncQueueParams(s Scale) (items, cap int32) { return s.pick(60, 240, 960), 8 }

// Q field layout.
const (
	qfHead = 0
	qfTail = 1
	qfBuf  = 2 // ref
	qfSum  = 3
	qfCnt  = 4
)

// SyncQueue returns the producer/consumer benchmark: N producers and N
// consumers hand integers through an 8-slot monitor-guarded ring.
func SyncQueue() *Benchmark {
	return &Benchmark{
		Name:          "SyncQueue",
		Description:   "Producer/consumer pairs around a bounded monitor-guarded ring buffer",
		Input:         "60 items/producer, 8-slot ring (scaled)",
		Multithreaded: true,
		Build:         buildSyncQueue,
		Verify:        verifySyncQueue,
	}
}

func buildSyncQueue(threads int, scale Scale, base uint64) *bytecode.Program {
	items, qcap := syncQueueParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("SyncQueue")
	pb.Globals(2, 0) // 0 = consumed sum, 1 = consumed count
	cls := pb.Class("Q", 5, 1<<qfBuf)

	// producer(q, id, items): enqueue id*items+j for j in [0,items).
	p := bytecode.NewMethod("producer", 3, scratchLocals).ArgRefs(0b001)
	{
		const lQ, lID, lItems, lJ, lV = 0, 1, 2, 3, 4
		forVar(p, lJ, lItems, func() {
			p.Load(lID).Load(lItems).Op(bytecode.Imul)
			p.Load(lJ).Op(bytecode.Iadd).Store(lV)
			retry, enq := p.NewLabel(), p.NewLabel()
			p.Bind(retry)
			p.Load(lQ).Op(bytecode.MonEnter)
			// full when tail-head == cap (indices are monotonic)
			p.Load(lQ).Op(bytecode.GetField, qfTail)
			p.Load(lQ).Op(bytecode.GetField, qfHead)
			p.Op(bytecode.Isub).Const(qcap)
			p.Br(bytecode.IfLt, enq)
			p.Load(lQ).Op(bytecode.MonExit)
			p.Br(bytecode.Goto, retry)
			p.Bind(enq)
			// buf[tail % cap] = v; tail++
			p.Load(lQ).Op(bytecode.GetField, qfBuf)
			p.Load(lQ).Op(bytecode.GetField, qfTail).Const(qcap).Op(bytecode.Irem)
			p.Load(lV)
			p.Op(bytecode.AStore)
			p.Load(lQ)
			p.Load(lQ).Op(bytecode.GetField, qfTail).Const(1).Op(bytecode.Iadd)
			p.Op(bytecode.PutField, qfTail)
			p.Load(lQ).Op(bytecode.MonExit)
		})
		p.Op(bytecode.Ret)
	}
	pi := pb.Add(p.Finish())

	// consumer(q, items): dequeue exactly items values, then publish the
	// local sum into the queue's result fields under the same lock.
	c := bytecode.NewMethod("consumer", 2, scratchLocals).ArgRefs(0b01)
	{
		const lQ, lItems, lJ, lSum, lV = 0, 1, 2, 3, 4
		c.Const(0).Store(lSum)
		forVar(c, lJ, lItems, func() {
			retry, deq := c.NewLabel(), c.NewLabel()
			c.Bind(retry)
			c.Load(lQ).Op(bytecode.MonEnter)
			c.Load(lQ).Op(bytecode.GetField, qfTail)
			c.Load(lQ).Op(bytecode.GetField, qfHead)
			c.Br(bytecode.IfNe, deq)
			c.Load(lQ).Op(bytecode.MonExit)
			c.Br(bytecode.Goto, retry)
			c.Bind(deq)
			c.Load(lQ).Op(bytecode.GetField, qfBuf)
			c.Load(lQ).Op(bytecode.GetField, qfHead).Const(qcap).Op(bytecode.Irem)
			c.Op(bytecode.ALoad).Store(lV)
			c.Load(lQ)
			c.Load(lQ).Op(bytecode.GetField, qfHead).Const(1).Op(bytecode.Iadd)
			c.Op(bytecode.PutField, qfHead)
			c.Load(lQ).Op(bytecode.MonExit)
			c.Load(lSum).Load(lV).Op(bytecode.Iadd).Store(lSum)
		})
		c.Load(lQ).Op(bytecode.MonEnter)
		c.Load(lQ)
		c.Load(lQ).Op(bytecode.GetField, qfSum).Load(lSum).Op(bytecode.Iadd)
		c.Op(bytecode.PutField, qfSum)
		c.Load(lQ)
		c.Load(lQ).Op(bytecode.GetField, qfCnt).Load(lItems).Op(bytecode.Iadd)
		c.Op(bytecode.PutField, qfCnt)
		c.Load(lQ).Op(bytecode.MonExit)
		c.Op(bytecode.Ret)
	}
	ci := pb.Add(c.Finish())

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const lQ, lTids, lW = 0, 1, 2
	b.Op(bytecode.New, cls).Store(lQ)
	b.Load(lQ).Const(qcap).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutField, qfBuf)
	b.Const(2*nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Load(lQ).Load(lW).Const(items)
		b.Op(bytecode.ThreadStart, pi)
		b.Op(bytecode.AStore)
		b.Load(lTids).Const(nt).Load(lW).Op(bytecode.Iadd)
		b.Load(lQ).Const(items)
		b.Op(bytecode.ThreadStart, ci)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, 2*nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.Load(lQ).Op(bytecode.GetField, qfSum).Op(bytecode.PutStatic, 0)
	b.Load(lQ).Op(bytecode.GetField, qfCnt).Op(bytecode.PutStatic, 1)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

func verifySyncQueue(vm *jvm.VM, threads int, scale Scale) error {
	items, _ := syncQueueParams(scale)
	var sum, cnt int64
	for p := int64(0); p < int64(threads); p++ {
		for j := int64(0); j < int64(items); j++ {
			sum += p*int64(items) + j
			cnt++
		}
	}
	if got := int64(vm.Global(1)); got != cnt {
		return fmt.Errorf("consumed %d items, want %d", got, cnt)
	}
	if got := int64(vm.Global(0)); got != sum {
		return fmt.Errorf("consumed sum = %d, want %d (corrupted handoff)", got, sum)
	}
	return nil
}

// --- SyncCAS: lock-free counter via compare-and-swap retry loops ---

func syncCASParams(s Scale) int32 { return s.pick(200, 800, 3200) }

// SyncCAS returns the CAS-counter benchmark: every thread bumps one
// volatile global with a classic load/CAS retry loop.
func SyncCAS() *Benchmark {
	return &Benchmark{
		Name:          "SyncCAS",
		Description:   "Lock-free shared counter: volatile read + CAS retry loop per increment",
		Input:         "200 increments/thread (scaled)",
		Multithreaded: true,
		Build:         buildSyncCAS,
		Verify:        verifySyncCAS,
	}
}

func buildSyncCAS(threads int, scale Scale, base uint64) *bytecode.Program {
	iters := syncCASParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("SyncCAS")
	pb.Globals(1, 0) // 0 = shared counter (volatile/CAS)

	w := bytecode.NewMethod("casWorker", 1, scratchLocals)
	const lIters, lJ, lOld = 0, 1, 2
	forVar(w, lJ, lIters, func() {
		retry := w.NewLabel()
		w.Bind(retry)
		w.Op(bytecode.GetVolatile, 0).Store(lOld)
		w.Load(lOld)
		w.Load(lOld).Const(1).Op(bytecode.Iadd)
		w.Op(bytecode.Cas, 0)
		w.Const(0)
		w.Br(bytecode.IfEq, retry) // CAS returned 0: lost the race, retry
	})
	w.Op(bytecode.Ret)
	wi := pb.Add(w.Finish())

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const lTids, lW = 0, 1
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Const(iters)
		b.Op(bytecode.ThreadStart, wi)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

func verifySyncCAS(vm *jvm.VM, threads int, scale Scale) error {
	want := int64(threads) * int64(syncCASParams(scale))
	if got := int64(vm.Global(0)); got != want {
		return fmt.Errorf("counter = %d, want %d (lost CAS update)", got, want)
	}
	return nil
}

// --- SyncFalse: false sharing on adjacent array slots ---

func syncFalseParams(s Scale) int32 { return s.pick(400, 1600, 6400) }

// SyncFalse returns the false-sharing kernel: each thread privately
// increments its own element of one shared int array, so every slot is
// thread-local data but neighbors share a 64-byte line — all the
// coherence traffic with none of the communication.
func SyncFalse() *Benchmark {
	return &Benchmark{
		Name:          "SyncFalse",
		Description:   "False sharing: per-thread counters packed into adjacent slots of one cache line",
		Input:         "400 increments/thread, stride-1 slots (scaled)",
		Multithreaded: true,
		Build:         buildSyncFalse,
		Verify:        verifySyncFalse,
	}
}

func buildSyncFalse(threads int, scale Scale, base uint64) *bytecode.Program {
	iters := syncFalseParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("SyncFalse")
	pb.Globals(1, 0) // 0 = sum of all slots

	w := bytecode.NewMethod("fsWorker", 3, scratchLocals).ArgRefs(0b001)
	const lArr, lIdx, lIters, lJ = 0, 1, 2, 3
	forVar(w, lJ, lIters, func() {
		w.Load(lArr).Load(lIdx)
		w.Load(lArr).Load(lIdx).Op(bytecode.ALoad)
		w.Const(1).Op(bytecode.Iadd)
		w.Op(bytecode.AStore)
	})
	w.Op(bytecode.Ret)
	wi := pb.Add(w.Finish())

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const lArr2, lTids, lW, lSum = 0, 1, 2, 3
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lArr2)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Load(lArr2).Load(lW).Const(iters)
		b.Op(bytecode.ThreadStart, wi)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.Const(0).Store(lSum)
	forConst(b, lW, nt, func() {
		b.Load(lSum)
		b.Load(lArr2).Load(lW).Op(bytecode.ALoad)
		b.Op(bytecode.Iadd).Store(lSum)
	})
	b.Load(lSum).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

func verifySyncFalse(vm *jvm.VM, threads int, scale Scale) error {
	want := int64(threads) * int64(syncFalseParams(scale))
	if got := int64(vm.Global(0)); got != want {
		return fmt.Errorf("slot sum = %d, want %d", got, want)
	}
	return nil
}

package bench

import (
	"testing"

	"javasmt/internal/core"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"
)

// runBench executes one benchmark on a fresh machine and verifies it.
func runBench(t *testing.T, b *Benchmark, threads int, scale Scale, ht bool) *jvm.VM {
	t.Helper()
	prog := b.Build(threads, scale, 0)
	cpu := core.New(core.DefaultConfig(ht))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := jvm.New(prog, k, jvm.DefaultConfig())
	vm.Start()
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("%s: Run: %v", b.Name, err)
	}
	if err := b.Verify(vm, threads, scale); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return vm
}

func TestCompressTiny(t *testing.T) {
	runBench(t, Compress(), 1, Tiny, false)
}

func TestCompressSmallHT(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runBench(t, Compress(), 1, Small, true)
}

func TestMpegaudioTiny(t *testing.T) {
	runBench(t, Mpegaudio(), 1, Tiny, false)
}

func TestDBTiny(t *testing.T) {
	runBench(t, DB(), 1, Tiny, false)
}

func TestMonteCarloTinyThreads(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		runBench(t, MonteCarlo(), threads, Tiny, true)
	}
}

func TestMolDynTinyThreads(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		runBench(t, MolDyn(), threads, Tiny, true)
	}
}

func TestRayTracerTinyThreads(t *testing.T) {
	for _, threads := range []int{1, 2} {
		runBench(t, RayTracer(), threads, Tiny, true)
	}
}

func TestJessTiny(t *testing.T) {
	runBench(t, Jess(), 1, Tiny, false)
}

func TestJavacTiny(t *testing.T) {
	runBench(t, Javac(), 1, Tiny, false)
}

func TestJackTiny(t *testing.T) {
	runBench(t, Jack(), 1, Tiny, false)
}

func TestJackDerivationsBounded(t *testing.T) {
	// The bytecode token buffer is 1<<16; every scale must fit.
	for _, s := range []Scale{Tiny, Small, Medium} {
		nts, passes := jackParams(s)
		g := makeJackGrammar(nts)
		for pass := int32(0); pass < passes; pass++ {
			m := &jkMirror{g: g, seed: int64(pass)*131 + 9973}
			m.gen(0, jkGenDepth)
			if len(m.tok) >= 1<<16 {
				t.Fatalf("scale %v pass %d: %d tokens overflow the buffer", s, pass, len(m.tok))
			}
			if len(m.tok) == 0 {
				t.Fatalf("scale %v pass %d: empty derivation", s, pass)
			}
		}
	}
}

func TestPseudoJBBTinyThreads(t *testing.T) {
	for _, threads := range []int{1, 2} {
		runBench(t, PseudoJBB(), threads, Tiny, true)
	}
}

// TestAllBenchmarksTiny runs every benchmark end to end at Tiny scale in
// both HT modes and verifies its published results.
func TestAllBenchmarksTiny(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			threads := 1
			if b.Multithreaded {
				threads = 2
			}
			runBench(t, b, threads, Tiny, false)
			runBench(t, b, threads, Tiny, true)
		})
	}
}

// TestSuitePartitioning checks the registry invariants the harness
// depends on.
func TestSuitePartitioning(t *testing.T) {
	if got := len(All()); got != 10 {
		t.Fatalf("suite has %d benchmarks, want 10", got)
	}
	if got := len(SingleThreaded()); got != 9 {
		t.Fatalf("%d single-threaded programs, want 9", got)
	}
	if got := len(Multithreaded()); got != 4 {
		t.Fatalf("%d multithreaded programs, want 4", got)
	}
	for _, b := range All() {
		if _, ok := ByName(b.Name); !ok {
			t.Fatalf("ByName(%q) failed", b.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

package bench

import (
	"fmt"
	"math"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// RayTracer — "a 3D raytracer, which renders 64 spheres with configurable
// resolutions" (Java Grande). Primary rays are cast orthographically
// through every pixel and intersected against all 64 spheres (real
// quadratic solve with sqrt); hits are shaded by distance plus an
// occlusion test along the shadow segment. As the paper notes, "each of
// its threads maintains a copy of scene data as the temporary storage for
// parallelization" — workers here copy the sphere arrays before
// rendering their row stripes, which is what gives RayTracer its higher
// OS/allocation activity and poorer DT-mode share.
//
// Globals: 0 = image checksum (float bits), 1 = rays traced.
const rtSpheres = 64

func rtParams(s Scale) int32 { return s.pick(16, 40, 80) } // image width

// RayTracer returns the benchmark descriptor.
func RayTracer() *Benchmark {
	return &Benchmark{
		Name:          "RayTracer",
		Description:   "A 3D raytracer, which renders 64 spheres with configurable resolutions",
		Input:         "N = 150 (scaled)",
		Multithreaded: true,
		Build:         buildRayTracer,
		Verify:        verifyRayTracer,
	}
}

func buildRayTracer(threads int, scale Scale, base uint64) *bytecode.Program {
	w := rtParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("RayTracer")
	pb.Globals(2, 0)
	// Per-ray hit records, as the JGF original allocates Vec/Isect
	// objects per intersection — the allocation churn behind RayTracer's
	// memory/OS profile.
	hit := pb.Class("HitRecord", 3, 0) // t, sphere, value

	sceneIdx := rtScene(pb)
	copyIdx := rtCopy(pb)
	workerIdx := rtWorker(pb, w, nt, copyIdx, hit)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lCX, lCY, lCZ, lR, lB     = 0, 1, 2, 3, 4
		lRes, lTids, lW, lSum, lI = 5, 6, 7, 8, 9
	)
	for _, v := range []int32{lCX, lCY, lCZ, lR, lB} {
		b.Const(rtSpheres).Op(bytecode.NewArray, bytecode.KindFloat).Store(v)
	}
	b.Load(lCX).Load(lCY).Load(lCZ).Load(lR).Load(lB)
	b.Op(bytecode.Call, sceneIdx)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindFloat).Store(lRes)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Load(lCX).Load(lCY).Load(lCZ).Load(lR).Load(lB)
		b.Load(lRes).Load(lW)
		b.Op(bytecode.ThreadStart, workerIdx)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.FConst(0).Store(lSum)
	forConst(b, lI, nt, func() {
		b.Load(lSum).Load(lRes).Load(lI).Op(bytecode.ALoad).Op(bytecode.Fadd).Store(lSum)
	})
	b.Load(lSum).Op(bytecode.PutStatic, 0)
	b.Const(w*w).Op(bytecode.PutStatic, 1)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// rtScene builds scene(cx,cy,cz,r,bright): fills the master sphere arrays.
func rtScene(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("scene", 5, scratchLocals).ArgRefs(0b11111)
	const (
		lCX, lCY, lCZ, lR, lB, lI, lSeed = 0, 1, 2, 3, 4, 5, 6
	)
	b.Const(99991).Store(lSeed)
	forConst(b, lI, rtSpheres, func() {
		for _, v := range []int32{lCX, lCY, lCZ} {
			b.Load(v).Load(lI)
			emitLCGInt(b, lSeed, 8000)
			b.Op(bytecode.I2f).FConst(0.001).Op(bytecode.Fmul)
			b.Op(bytecode.AStore)
		}
		b.Load(lR).Load(lI)
		emitLCGInt(b, lSeed, 500)
		b.Op(bytecode.I2f).FConst(0.001).Op(bytecode.Fmul).FConst(0.3).Op(bytecode.Fadd)
		b.Op(bytecode.AStore)
		b.Load(lB).Load(lI)
		emitLCGInt(b, lSeed, 1000)
		b.Op(bytecode.I2f).FConst(0.001).Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
	})
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// rtCopy builds copyArr(src): float[] — a worker-private scene copy.
func rtCopy(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("copyArr", 1, scratchLocals).ArgRefs(0b1).ReturnsRef()
	const (
		lSrc, lDst, lI, lN = 0, 1, 2, 3
	)
	b.Load(lSrc).Op(bytecode.ArrayLen).Store(lN)
	b.Load(lN).Op(bytecode.NewArray, bytecode.KindFloat).Store(lDst)
	forVar(b, lI, lN, func() {
		b.Load(lDst).Load(lI)
		b.Load(lSrc).Load(lI).Op(bytecode.ALoad)
		b.Op(bytecode.AStore)
	})
	b.Load(lDst).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// rtWorker builds worker(mcx,mcy,mcz,mr,mb,res,tid): copies the scene,
// renders rows tid, tid+nt, ... and stores its pixel sum in res[tid].
func rtWorker(pb *bytecode.ProgramBuilder, w, nt int32, copyIdx, hitClass int32) int32 {
	b := bytecode.NewMethod("rtWorker", 7, scratchLocals).ArgRefs(0b0111111)
	const (
		lMCX, lMCY, lMCZ, lMR, lMB, lRes, lTid = 0, 1, 2, 3, 4, 5, 6
		lCX, lCY, lCZ, lR, lB                  = 7, 8, 9, 10, 11
		lPY, lPX, lS, lSum                     = 12, 13, 14, 15
		lOX, lOY                               = 16, 17
		lOCX, lOCY, lOCZ, lQB, lQC, lDisc      = 18, 19, 20, 21, 22, 23
		lT, lTMin, lHit, lVal                  = 24, 25, 26, 27
		lHX, lHY, lHZ, lMX, lMY, lMZ           = 28, 29, 30, 31, 32, 33
		lDX2, lDY2, lDZ2                       = 34, 35, 36
	)
	// Private scene copies (the paper's per-thread scene data).
	for i, pair := range [][2]int32{{lMCX, lCX}, {lMCY, lCY}, {lMCZ, lCZ}, {lMR, lR}, {lMB, lB}} {
		_ = i
		b.Load(pair[0]).Op(bytecode.Call, copyIdx).Store(pair[1])
	}
	b.FConst(0).Store(lSum)
	scalePix := 8.0 / float64(w)
	// for py = tid; py < w; py += nt
	pyLoop, pyDone := b.NewLabel(), b.NewLabel()
	b.Load(lTid).Store(lPY)
	b.Bind(pyLoop)
	b.Load(lPY).Const(w)
	b.Br(bytecode.IfGe, pyDone)
	{
		forConst(b, lPX, w, func() {
			// Ray origin (ox, oy, -10), direction (0,0,1).
			b.Load(lPX).Op(bytecode.I2f).FConst(scalePix).Op(bytecode.Fmul).Store(lOX)
			b.Load(lPY).Op(bytecode.I2f).FConst(scalePix).Op(bytecode.Fmul).Store(lOY)
			b.FConst(1e30).Store(lTMin)
			b.Const(-1).Store(lHit)
			forConst(b, lS, rtSpheres, func() {
				// oc = o - c ; quadratic: t² + qb·t + qc = 0 with
				// qb = 2*ocz, qc = oc·oc - r².
				b.Load(lOX).Load(lCX).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lOCX)
				b.Load(lOY).Load(lCY).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lOCY)
				b.FConst(-10.0).Load(lCZ).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lOCZ)
				b.Load(lOCZ).FConst(2.0).Op(bytecode.Fmul).Store(lQB)
				b.Load(lOCX).Load(lOCX).Op(bytecode.Fmul)
				b.Load(lOCY).Load(lOCY).Op(bytecode.Fmul).Op(bytecode.Fadd)
				b.Load(lOCZ).Load(lOCZ).Op(bytecode.Fmul).Op(bytecode.Fadd)
				b.Load(lR).Load(lS).Op(bytecode.ALoad)
				b.Load(lR).Load(lS).Op(bytecode.ALoad)
				b.Op(bytecode.Fmul)
				b.Op(bytecode.Fsub).Store(lQC)
				// disc = qb² - 4qc
				b.Load(lQB).Load(lQB).Op(bytecode.Fmul)
				b.Load(lQC).FConst(4.0).Op(bytecode.Fmul)
				b.Op(bytecode.Fsub).Store(lDisc)
				miss := b.NewLabel()
				b.Load(lDisc).FConst(0)
				b.Br(bytecode.IfFLt, miss)
				// t = (-qb - sqrt(disc)) / 2
				b.FConst(0).Load(lQB).Op(bytecode.Fsub)
				b.Load(lDisc).Op(bytecode.Fmath, bytecode.MathSqrt)
				b.Op(bytecode.Fsub).FConst(0.5).Op(bytecode.Fmul).Store(lT)
				b.Load(lT).FConst(0.001)
				b.Br(bytecode.IfFLt, miss)
				b.Load(lT).Load(lTMin)
				b.Br(bytecode.IfFGt, miss)
				b.Load(lT).Store(lTMin)
				b.Load(lS).Store(lHit)
				b.Bind(miss)
			})
			noHit := b.NewLabel()
			pixelDone := b.NewLabel()
			b.Load(lHit).Const(0)
			b.Br(bytecode.IfLt, noHit)
			// val = bright[hit] / (1 + 0.1*tmin)
			b.Load(lB).Load(lHit).Op(bytecode.ALoad)
			b.FConst(1.0).Load(lTMin).FConst(0.1).Op(bytecode.Fmul).Op(bytecode.Fadd)
			b.Op(bytecode.Fdiv).Store(lVal)
			// Shadow probe: midpoint between hit point and the light
			// (4,4,-10); if inside any sphere, halve the value.
			b.Load(lOX).Store(lHX)
			b.Load(lOY).Store(lHY)
			b.FConst(-10.0).Load(lTMin).Op(bytecode.Fadd).Store(lHZ)
			b.Load(lHX).FConst(4.0).Op(bytecode.Fadd).FConst(0.5).Op(bytecode.Fmul).Store(lMX)
			b.Load(lHY).FConst(4.0).Op(bytecode.Fadd).FConst(0.5).Op(bytecode.Fmul).Store(lMY)
			b.Load(lHZ).FConst(-10.0).Op(bytecode.Fadd).FConst(0.5).Op(bytecode.Fmul).Store(lMZ)
			// Materialize the hit as a heap record (JGF-style churn)
			// and read the shading inputs back from it.
			const lRec = 37
			b.Op(bytecode.New, hitClass).Store(lRec)
			b.Load(lRec).Load(lTMin).Op(bytecode.PutField, 0)
			b.Load(lRec).Load(lHit).Op(bytecode.PutField, 1)
			b.Load(lRec).Load(lVal).Op(bytecode.PutField, 2)
			b.Load(lRec).Op(bytecode.GetField, 2).Store(lVal)
			forConst(b, lS, rtSpheres, func() {
				lit := b.NewLabel()
				b.Load(lMX).Load(lCX).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lDX2)
				b.Load(lMY).Load(lCY).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lDY2)
				b.Load(lMZ).Load(lCZ).Load(lS).Op(bytecode.ALoad).Op(bytecode.Fsub).Store(lDZ2)
				b.Load(lDX2).Load(lDX2).Op(bytecode.Fmul)
				b.Load(lDY2).Load(lDY2).Op(bytecode.Fmul).Op(bytecode.Fadd)
				b.Load(lDZ2).Load(lDZ2).Op(bytecode.Fmul).Op(bytecode.Fadd)
				b.Load(lR).Load(lS).Op(bytecode.ALoad)
				b.Load(lR).Load(lS).Op(bytecode.ALoad)
				b.Op(bytecode.Fmul)
				b.Br(bytecode.IfFGt, lit)
				b.Load(lVal).FConst(0.5).Op(bytecode.Fmul).Store(lVal)
				b.Bind(lit)
			})
			b.Load(lSum).Load(lVal).Op(bytecode.Fadd).Store(lSum)
			b.Br(bytecode.Goto, pixelDone)
			b.Bind(noHit)
			b.Bind(pixelDone)
		})
	}
	b.Load(lPY).Const(nt).Op(bytecode.Iadd).Store(lPY)
	b.Br(bytecode.Goto, pyLoop)
	b.Bind(pyDone)
	b.Load(lRes).Load(lTid).Load(lSum).Op(bytecode.AStore)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// rtGo mirrors the benchmark.
func rtGo(w int32, threads int) float64 {
	cx := make([]float64, rtSpheres)
	cy := make([]float64, rtSpheres)
	cz := make([]float64, rtSpheres)
	r := make([]float64, rtSpheres)
	br := make([]float64, rtSpheres)
	seed := int64(99991)
	for i := 0; i < rtSpheres; i++ {
		for _, a := range []*[]float64{&cx, &cy, &cz} {
			seed = lcgNextGo(seed)
			(*a)[i] = float64(lcgIntGo(seed, 8000)) * 0.001
		}
		seed = lcgNextGo(seed)
		r[i] = float64(lcgIntGo(seed, 500))*0.001 + 0.3
		seed = lcgNextGo(seed)
		br[i] = float64(lcgIntGo(seed, 1000)) * 0.001
	}
	scalePix := 8.0 / float64(w)
	total := 0.0
	for tid := 0; tid < threads; tid++ {
		sum := 0.0
		for py := int64(tid); py < int64(w); py += int64(threads) {
			for px := int64(0); px < int64(w); px++ {
				ox := float64(px) * scalePix
				oy := float64(py) * scalePix
				tMin := 1e30
				hit := -1
				for s := 0; s < rtSpheres; s++ {
					ocx := ox - cx[s]
					ocy := oy - cy[s]
					ocz := -10.0 - cz[s]
					qb := ocz * 2.0
					qc := ocx*ocx + ocy*ocy + ocz*ocz - r[s]*r[s]
					disc := qb*qb - qc*4.0
					if disc < 0 {
						continue
					}
					t := (0 - qb - math.Sqrt(disc)) * 0.5
					if t < 0.001 || t > tMin {
						continue
					}
					tMin = t
					hit = s
				}
				if hit < 0 {
					continue
				}
				val := br[hit] / (1.0 + tMin*0.1)
				hx, hy, hz := ox, oy, -10.0+tMin
				mx := (hx + 4.0) * 0.5
				my := (hy + 4.0) * 0.5
				mz := (hz + -10.0) * 0.5
				for s := 0; s < rtSpheres; s++ {
					dx := mx - cx[s]
					dy := my - cy[s]
					dz := mz - cz[s]
					if dx*dx+dy*dy+dz*dz > r[s]*r[s] {
						continue
					}
					val *= 0.5
				}
				sum += val
			}
		}
		total += sum
	}
	return total
}

func verifyRayTracer(vm *jvm.VM, threads int, scale Scale) error {
	w := rtParams(scale)
	if got := int64(vm.Global(1)); got != int64(w)*int64(w) {
		return fmt.Errorf("RayTracer: %d rays, want %d", got, int64(w)*int64(w))
	}
	want := rtGo(w, threads)
	got := vm.GlobalFloat(0)
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		return fmt.Errorf("RayTracer: image checksum %v, want %v", got, want)
	}
	return nil
}

package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// jess — "a Java expert shell system based on NASA's CLIPS expert
// system". The engine here is a forward-chaining rule system over a
// working memory of (subject, relation, object) facts: each of 96 rules
// joins two relations and asserts derived facts, with a hash-set
// duplicate check, iterated to fixpoint. Like the real jess — whose Rete
// network compiles into many distinct match routines — every rule's
// matcher is its own generated method, giving the benchmark the large,
// branchy instruction footprint that makes jess one of the paper's three
// "bad partner" programs (Figure 9).
//
// Globals: 0 = fact-key checksum, 1 = final fact count, 2 = passes run.
const (
	jessRels  = 8
	jessRules = 96
	jessHCap  = 8192
	jessPass  = 3
)

func jessParams(s Scale) (v, initial, cap int32) {
	return s.pick(14, 24, 40), s.pick(42, 72, 120), s.pick(350, 900, 2200)
}

// jessRule returns rule k's (in1, in2, out) relations; derived relations
// (3..7) feed back into later joins so chains actually cascade.
func jessRule(k int) (in1, in2, out int32) {
	return int32(k % 4), int32((k / 3) % 4), int32(3 + k%5)
}

// Jess returns the benchmark descriptor.
func Jess() *Benchmark {
	return &Benchmark{
		Name:        "jess",
		Description: "A Java expert shell system based on NASA's CLIPS expert system",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildJess,
		Verify:      verifyJess,
	}
}

// Jess globals.
const (
	jgChk, jgCount, jgPasses          = 0, 1, 2
	jgFactS, jgFactR, jgFactO, jgHash = 3, 4, 5, 6
	jgN, jgAdded                      = 7, 8
	// jgLists is a ref-array of per-relation fact-index arrays (the
	// engine's alpha memories); jgListCnt their lengths. Both are
	// rebuilt at each pass start, so matchers join pass-start
	// snapshots — as Rete activations would.
	jgLists, jgListCnt = 9, 10
	jessGlobals        = 11
	jessGlobalRefs     = 1<<jgFactS | 1<<jgFactR | 1<<jgFactO | 1<<jgHash | 1<<jgLists | 1<<jgListCnt
)

func buildJess(_ int, scale Scale, base uint64) *bytecode.Program {
	v, initial, factCap := jessParams(scale)
	pb := bytecode.NewProgram("jess")
	pb.Globals(jessGlobals, jessGlobalRefs)

	assertIdx := jessAssert(pb, v, factCap)
	rebuildIdx := jessRebuildLists(pb, factCap)
	var ruleIdxs []int32
	for k := 0; k < jessRules; k++ {
		ruleIdxs = append(ruleIdxs, jessMatcher(pb, k, assertIdx))
	}

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lI, lSeed, lS, lR, lO, lPass = 0, 1, 2, 3, 4, 5
	)
	// Working memory.
	for _, g := range []int32{jgFactS, jgFactR, jgFactO} {
		b.Const(factCap).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, g)
	}
	b.Const(jessHCap).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jgHash)
	b.Const(0).Op(bytecode.PutStatic, jgN)
	// Seed facts over the base relations 0..2.
	b.Const(31337).Store(lSeed)
	forConst(b, lI, initial, func() {
		emitLCGInt(b, lSeed, v)
		b.Store(lS)
		emitLCGInt(b, lSeed, 3)
		b.Store(lR)
		emitLCGInt(b, lSeed, v)
		b.Store(lO)
		b.Load(lS).Load(lR).Load(lO)
		b.Op(bytecode.Call, assertIdx).Op(bytecode.Pop)
	})
	// Alpha-memory arrays.
	b.Const(jessRels).Op(bytecode.NewArray, bytecode.KindRef).Op(bytecode.PutStatic, jgLists)
	b.Const(jessRels).Op(bytecode.NewArray, bytecode.KindInt).Op(bytecode.PutStatic, jgListCnt)
	forConst(b, lI, jessRels, func() {
		b.Op(bytecode.GetStatic, jgLists).Load(lI)
		b.Const(factCap).Op(bytecode.NewArray, bytecode.KindInt)
		b.Op(bytecode.AStore)
	})
	// Fixpoint passes: fact-driven propagation, as in a Rete network —
	// every fact is pushed through every rule's matcher, so the whole
	// generated match network stays hot in the front end.
	done := b.NewLabel()
	const lFact, lSnap = 8, 9
	forConst(b, lPass, jessPass, func() {
		b.Const(0).Op(bytecode.PutStatic, jgAdded)
		b.Op(bytecode.Call, rebuildIdx)
		b.Op(bytecode.GetStatic, jgN).Store(lSnap)
		forVar(b, lFact, lSnap, func() {
			for _, r := range ruleIdxs {
				b.Load(lFact).Op(bytecode.Call, r)
			}
		})
		b.Op(bytecode.GetStatic, jgPasses).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jgPasses)
		b.Op(bytecode.GetStatic, jgAdded).Const(0)
		b.Br(bytecode.IfEq, done)
	})
	b.Bind(done)
	// Checksum over working memory in insertion order.
	const lChk, lN = 6, 7
	b.Const(0).Store(lChk)
	b.Op(bytecode.GetStatic, jgN).Store(lN)
	forVar(b, lI, lN, func() {
		b.Op(bytecode.GetStatic, jgFactS).Load(lI).Op(bytecode.ALoad)
		b.Const(v * jessRels).Op(bytecode.Imul)
		b.Op(bytecode.GetStatic, jgFactR).Load(lI).Op(bytecode.ALoad)
		b.Const(v).Op(bytecode.Imul).Op(bytecode.Iadd)
		b.Op(bytecode.GetStatic, jgFactO).Load(lI).Op(bytecode.ALoad)
		b.Op(bytecode.Iadd)
		emitMix(b, lChk)
	})
	b.Load(lChk).Op(bytecode.PutStatic, jgChk)
	b.Op(bytecode.GetStatic, jgN).Op(bytecode.PutStatic, jgCount)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// jessAssert builds assert(s, r, o): int — hash-deduplicated insertion
// into working memory; returns 1 when a new fact was added.
func jessAssert(pb *bytecode.ProgramBuilder, v, factCap int32) int32 {
	b := bytecode.NewMethod("assertFact", 3, scratchLocals)
	const (
		lS, lR, lO, lKey, lH, lN = 0, 1, 2, 3, 4, 5
	)
	// key = (s*rels + r)*v + o + 1 (0 marks an empty hash slot)
	b.Load(lS).Const(jessRels).Op(bytecode.Imul).Load(lR).Op(bytecode.Iadd)
	b.Const(v).Op(bytecode.Imul).Load(lO).Op(bytecode.Iadd)
	b.Const(1).Op(bytecode.Iadd).Store(lKey)
	// h = key*2654435761 & (HCAP-1)
	b.Load(lKey)
	emitConst64(b, 2654435761)
	b.Op(bytecode.Imul)
	b.Const(jessHCap - 1).Op(bytecode.Iand).Store(lH)
	probe, empty, dup := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Bind(probe)
	b.Op(bytecode.GetStatic, jgHash).Load(lH).Op(bytecode.ALoad).Const(0)
	b.Br(bytecode.IfEq, empty)
	b.Op(bytecode.GetStatic, jgHash).Load(lH).Op(bytecode.ALoad).Load(lKey)
	b.Br(bytecode.IfEq, dup)
	b.Load(lH).Const(1).Op(bytecode.Iadd).Const(jessHCap - 1).Op(bytecode.Iand).Store(lH)
	b.Br(bytecode.Goto, probe)

	b.Bind(empty)
	// Capacity saturation keeps the run bounded (and deterministic).
	full := b.NewLabel()
	b.Op(bytecode.GetStatic, jgN).Const(factCap)
	b.Br(bytecode.IfGe, full)
	b.Op(bytecode.GetStatic, jgHash).Load(lH).Load(lKey).Op(bytecode.AStore)
	b.Op(bytecode.GetStatic, jgN).Store(lN)
	b.Op(bytecode.GetStatic, jgFactS).Load(lN).Load(lS).Op(bytecode.AStore)
	b.Op(bytecode.GetStatic, jgFactR).Load(lN).Load(lR).Op(bytecode.AStore)
	b.Op(bytecode.GetStatic, jgFactO).Load(lN).Load(lO).Op(bytecode.AStore)
	b.Load(lN).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jgN)
	b.Op(bytecode.GetStatic, jgAdded).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, jgAdded)
	b.Const(1).Op(bytecode.RetVal)
	b.Bind(full)
	b.Const(0).Op(bytecode.RetVal)
	b.Bind(dup)
	b.Const(0).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// jessRebuildLists builds rebuildLists(): refills the per-relation alpha
// memories from the working memory at pass start.
func jessRebuildLists(pb *bytecode.ProgramBuilder, factCap int32) int32 {
	_ = factCap
	b := bytecode.NewMethod("rebuildLists", 0, scratchLocals)
	const (
		lI, lN, lR, lC = 0, 1, 2, 3
	)
	forConst(b, lI, jessRels, func() {
		b.Op(bytecode.GetStatic, jgListCnt).Load(lI).Const(0).Op(bytecode.AStore)
	})
	b.Op(bytecode.GetStatic, jgN).Store(lN)
	forVar(b, lI, lN, func() {
		b.Op(bytecode.GetStatic, jgFactR).Load(lI).Op(bytecode.ALoad).Store(lR)
		b.Op(bytecode.GetStatic, jgListCnt).Load(lR).Op(bytecode.ALoad).Store(lC)
		b.Op(bytecode.GetStatic, jgLists).Load(lR).Op(bytecode.ALoad)
		b.Load(lC).Load(lI).Op(bytecode.AStore)
		b.Op(bytecode.GetStatic, jgListCnt).Load(lR)
		b.Load(lC).Const(1).Op(bytecode.Iadd)
		b.Op(bytecode.AStore)
	})
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jessMatcher builds matchRule<k>(fi): one Rete activation — if fact fi
// matches rule k's first input relation, join it against the alpha
// memory of the second input and assert the derived facts.
func jessMatcher(pb *bytecode.ProgramBuilder, k int, assertIdx int32) int32 {
	in1, in2, out := jessRule(k)
	b := bytecode.NewMethod(fmt.Sprintf("matchRule%d", k), 1, scratchLocals)
	const (
		lFi, lL2, lN2, lJ, lFj, lOi = 0, 1, 2, 3, 4, 5
	)
	reject := b.NewLabel()
	b.Op(bytecode.GetStatic, jgFactR).Load(lFi).Op(bytecode.ALoad).Const(in1)
	b.Br(bytecode.IfNe, reject)
	b.Op(bytecode.GetStatic, jgLists).Const(in2).Op(bytecode.ALoad).Store(lL2)
	b.Op(bytecode.GetStatic, jgListCnt).Const(in2).Op(bytecode.ALoad).Store(lN2)
	b.Op(bytecode.GetStatic, jgFactO).Load(lFi).Op(bytecode.ALoad).Store(lOi)
	forVar(b, lJ, lN2, func() {
		skip := b.NewLabel()
		b.Load(lL2).Load(lJ).Op(bytecode.ALoad).Store(lFj)
		b.Op(bytecode.GetStatic, jgFactS).Load(lFj).Op(bytecode.ALoad)
		b.Load(lOi)
		b.Br(bytecode.IfNe, skip)
		b.Op(bytecode.GetStatic, jgFactS).Load(lFi).Op(bytecode.ALoad)
		b.Const(out)
		b.Op(bytecode.GetStatic, jgFactO).Load(lFj).Op(bytecode.ALoad)
		b.Op(bytecode.Call, assertIdx).Op(bytecode.Pop)
		b.Bind(skip)
	})
	b.Bind(reject)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jessGo mirrors the engine.
func jessGo(v, initial, factCap int32) (chk, count, passes int64) {
	type wm struct {
		s, r, o []int64
		hash    []int64
		n       int64
		added   int64
	}
	m := &wm{
		s:    make([]int64, factCap),
		r:    make([]int64, factCap),
		o:    make([]int64, factCap),
		hash: make([]int64, jessHCap),
	}
	assert := func(s, r, o int64) {
		key := (s*jessRels+r)*int64(v) + o + 1
		h := (key * 2654435761) & (jessHCap - 1)
		for {
			switch m.hash[h] {
			case 0:
				if m.n >= int64(factCap) {
					return
				}
				m.hash[h] = key
				m.s[m.n], m.r[m.n], m.o[m.n] = s, r, o
				m.n++
				m.added++
				return
			case key:
				return
			}
			h = (h + 1) & (jessHCap - 1)
		}
	}
	seed := int64(31337)
	for i := int32(0); i < initial; i++ {
		seed = lcgNextGo(seed)
		s := lcgIntGo(seed, int64(v))
		seed = lcgNextGo(seed)
		r := lcgIntGo(seed, 3)
		seed = lcgNextGo(seed)
		o := lcgIntGo(seed, int64(v))
		assert(s, r, o)
	}
	for pass := 0; pass < jessPass; pass++ {
		m.added = 0
		// Pass-start alpha memories.
		lists := make([][]int64, jessRels)
		for i := int64(0); i < m.n; i++ {
			lists[m.r[i]] = append(lists[m.r[i]], i)
		}
		snap := m.n
		for fi := int64(0); fi < snap; fi++ {
			for k := 0; k < jessRules; k++ {
				in1, in2, out := jessRule(k)
				if m.r[fi] != int64(in1) {
					continue
				}
				for _, fj := range lists[in2] {
					if m.s[fj] != m.o[fi] {
						continue
					}
					assert(m.s[fi], int64(out), m.o[fj])
				}
			}
		}
		passes++
		if m.added == 0 {
			break
		}
	}
	for i := int64(0); i < m.n; i++ {
		chk = mix64Go(chk, m.s[i]*int64(v)*jessRels+m.r[i]*int64(v)+m.o[i])
	}
	return chk, m.n, passes
}

func verifyJess(vm *jvm.VM, _ int, scale Scale) error {
	v, initial, factCap := jessParams(scale)
	chk, count, passes := jessGo(v, initial, factCap)
	if got := int64(vm.Global(jgPasses)); got != passes {
		return fmt.Errorf("jess: %d passes, want %d", got, passes)
	}
	if got := int64(vm.Global(jgCount)); got != count {
		return fmt.Errorf("jess: %d facts, want %d", got, count)
	}
	if got := int64(vm.Global(jgChk)); got != chk {
		return fmt.Errorf("jess: checksum %d, want %d", got, chk)
	}
	return nil
}

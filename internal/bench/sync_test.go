package bench

import (
	"testing"

	"javasmt/internal/counters"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"

	"javasmt/internal/core"
)

// runBenchCounters is runBench plus access to the machine's counters.
func runBenchCounters(t *testing.T, b *Benchmark, threads int, scale Scale, ht bool) (*jvm.VM, *counters.File) {
	t.Helper()
	prog := b.Build(threads, scale, 0)
	cpu := core.New(core.DefaultConfig(ht))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := jvm.New(prog, k, jvm.DefaultConfig())
	vm.Start()
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("%s: Run: %v", b.Name, err)
	}
	if err := b.Verify(vm, threads, scale); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
	return vm, cpu.Counters()
}

// TestSyncBenchmarksTiny runs the synchronization-stress family end to
// end in both HT modes at several thread counts.
func TestSyncBenchmarksTiny(t *testing.T) {
	for _, b := range Sync() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, threads := range []int{1, 2, 4} {
				runBench(t, b, threads, Tiny, false)
				runBench(t, b, threads, Tiny, true)
			}
		})
	}
}

// TestSyncLockContendsUnderHT asserts the convoy actually convoys: with
// four threads on two contexts the monitor must block, and every block
// shows up in the lock counters.
func TestSyncLockContendsUnderHT(t *testing.T) {
	_, f := runBenchCounters(t, SyncLock(), 4, Tiny, true)
	if f.Get(counters.LockAcquires) == 0 {
		t.Fatal("no lock acquisitions recorded")
	}
	if f.Get(counters.LockContended) == 0 {
		t.Fatal("4 threads hammering one monitor never contended")
	}
	if f.Get(counters.FenceUops) == 0 {
		t.Fatal("monitor operations must emit fence µops")
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

// TestSyncCASFailsUnderHT asserts concurrent CAS loops genuinely race:
// some compare-and-swaps must lose.
func TestSyncCASFailsUnderHT(t *testing.T) {
	_, f := runBenchCounters(t, SyncCAS(), 4, Tiny, true)
	if ops := f.Get(counters.CASOps); ops == 0 {
		t.Fatal("no CAS operations recorded")
	}
	if f.Get(counters.CASFailures) == 0 {
		t.Fatal("4 racing CAS loops on 2 contexts never failed a CAS")
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
}

// TestSyncRegistry checks the Sync family stays out of All() (the
// paper's Table 1 population feeds goldens) while remaining reachable
// through ByName.
func TestSyncRegistry(t *testing.T) {
	if got := len(Sync()); got != 4 {
		t.Fatalf("sync family has %d benchmarks, want 4", got)
	}
	for _, s := range Sync() {
		if !s.Multithreaded {
			t.Fatalf("%s must be multithreaded", s.Name)
		}
		if _, ok := ByName(s.Name); !ok {
			t.Fatalf("ByName(%q) failed", s.Name)
		}
		for _, b := range All() {
			if b.Name == s.Name {
				t.Fatalf("%s leaked into the Table 1 suite", s.Name)
			}
		}
	}
}

package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// PseudoJBB — "a variant of SPECjbb2000 with fixed size of working set"
// running a fixed number of transactions in multiple warehouses, so
// execution time is comparable across configurations (the device the
// paper adopts from the literature). Each warehouse is one Java thread
// owning its stock, customer and order-ring data; transactions follow the
// TPC-C-flavoured SPECjbb mix (NewOrder / Payment / OrderStatus /
// Delivery / StockLevel plus a lightly-contended company audit).
// NewOrder allocates order objects and line arrays and Delivery drops
// them — the allocation churn that makes PseudoJBB the suite's GC-heavy
// benchmark — and the item/stock tables give it the only working set
// larger than the 1 MB L2, which is why its L2 and ITLB behaviour under
// Hyper-Threading inverts the other benchmarks' (Figures 5, 6).
//
// Globals: 0 = combined checksum, 1 = transactions executed, 2 = ledger.
const (
	jbbCusts  = 256
	jbbOrders = 256
)

func jbbParams(s Scale) (items, txPerWh int32) {
	return s.pick(4096, 40960, 65536), s.pick(900, 3500, 9000)
}

// PseudoJBB returns the benchmark descriptor.
func PseudoJBB() *Benchmark {
	return &Benchmark{
		Name:          "PseudoJBB",
		Description:   "A variant of SPECjbb2000 with fixed size of working set",
		Input:         "100,000 trans. (scaled)",
		Multithreaded: true,
		Build:         buildPseudoJBB,
		Verify:        verifyPseudoJBB,
	}
}

// Order class fields.
const (
	jbbOID, jbbOCust, jbbOTotal, jbbOLines = 0, 1, 2, 3
)

func buildPseudoJBB(threads int, scale Scale, base uint64) *bytecode.Program {
	items, txPerWh := jbbParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("PseudoJBB")
	pb.Globals(3, 0)
	order := pb.Class("Order", 4, 1<<jbbOLines)
	ledger := pb.Class("Ledger", 1, 0)

	workerIdx := jbbWorker(pb, order, items, txPerWh)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lPrices, lRes, lTids, lLedger, lW, lSeed, lI, lChk = 0, 1, 2, 3, 4, 5, 6, 7
	)
	b.Const(items).Op(bytecode.NewArray, bytecode.KindFloat).Store(lPrices)
	b.Const(54321).Store(lSeed)
	forConst(b, lI, items, func() {
		b.Load(lPrices).Load(lI)
		emitLCGInt(b, lSeed, 9900)
		b.Const(100).Op(bytecode.Iadd).Op(bytecode.I2f)
		b.FConst(0.01).Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
	})
	b.Op(bytecode.New, ledger).Store(lLedger)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lRes)
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW)
		b.Load(lPrices).Load(lRes).Load(lLedger).Load(lW)
		b.Op(bytecode.ThreadStart, workerIdx)
		b.Op(bytecode.AStore)
	})
	forConst(b, lW, nt, func() {
		b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	})
	b.Const(0).Store(lChk)
	forConst(b, lW, nt, func() {
		b.Load(lRes).Load(lW).Op(bytecode.ALoad)
		emitMix(b, lChk)
	})
	b.Load(lLedger).Op(bytecode.GetField, 0)
	emitMix(b, lChk)
	b.Load(lChk).Op(bytecode.PutStatic, 0)
	b.Const(txPerWh*nt).Op(bytecode.PutStatic, 1)
	b.Load(lLedger).Op(bytecode.GetField, 0).Op(bytecode.PutStatic, 2)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// jbbWorker builds worker(prices, results, ledger, tid): one warehouse.
func jbbWorker(pb *bytecode.ProgramBuilder, order int32, items, txPerWh int32) int32 {
	b := bytecode.NewMethod("warehouse", 4, scratchLocals).ArgRefs(0b0111)
	const (
		lPrices, lRes, lLedger, lTid = 0, 1, 2, 3
		lStock, lBal, lRing          = 4, 5, 6
		lHead, lCount, lSeed, lChk   = 7, 8, 9, 10
		lTx, lR, lI                  = 11, 12, 13
		lLines, lNL, lItem, lQty     = 14, 15, 16, 17
		lTotal, lOrd, lCust          = 18, 19, 20
		lOld, lLow, lWin             = 21, 22, 23
	)
	b.Const(items).Op(bytecode.NewArray, bytecode.KindInt).Store(lStock)
	forConst(b, lI, items, func() {
		b.Load(lStock).Load(lI).Const(50).Op(bytecode.AStore)
	})
	b.Const(jbbCusts).Op(bytecode.NewArray, bytecode.KindFloat).Store(lBal)
	b.Const(jbbOrders).Op(bytecode.NewArray, bytecode.KindRef).Store(lRing)
	b.Const(0).Store(lHead)
	b.Const(0).Store(lCount)
	b.Const(0).Store(lChk)
	// seed = (tid+1)*48271 + 1234
	b.Load(lTid).Const(1).Op(bytecode.Iadd).Const(48271).Op(bytecode.Imul).Const(1234).Op(bytecode.Iadd).Store(lSeed)

	forConst(b, lTx, txPerWh, func() {
		emitLCGInt(b, lSeed, 100)
		b.Store(lR)
		newOrder, payment, status, delivery, stockLvl, audit, after :=
			b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Load(lR).Const(45)
		b.Br(bytecode.IfLt, newOrder)
		b.Load(lR).Const(85)
		b.Br(bytecode.IfLt, payment)
		b.Load(lR).Const(90)
		b.Br(bytecode.IfLt, status)
		b.Load(lR).Const(95)
		b.Br(bytecode.IfLt, delivery)
		b.Load(lR).Const(98)
		b.Br(bytecode.IfLt, stockLvl)
		b.Br(bytecode.Goto, audit)

		// --- NewOrder ---
		b.Bind(newOrder)
		emitLCGInt(b, lSeed, 10)
		b.Const(5).Op(bytecode.Iadd).Store(lNL)
		b.Load(lNL).Op(bytecode.NewArray, bytecode.KindInt).Store(lLines)
		b.FConst(0).Store(lTotal)
		forVar(b, lI, lNL, func() {
			emitLCGInt(b, lSeed, items)
			b.Store(lItem)
			emitLCGInt(b, lSeed, 5)
			b.Const(1).Op(bytecode.Iadd).Store(lQty)
			// stock[item] -= qty; restock when depleted
			b.Load(lStock).Load(lItem)
			b.Load(lStock).Load(lItem).Op(bytecode.ALoad)
			b.Load(lQty).Op(bytecode.Isub)
			b.Op(bytecode.AStore)
			restocked := b.NewLabel()
			b.Load(lStock).Load(lItem).Op(bytecode.ALoad).Const(0)
			b.Br(bytecode.IfGe, restocked)
			b.Load(lStock).Load(lItem)
			b.Load(lStock).Load(lItem).Op(bytecode.ALoad)
			b.Const(91).Op(bytecode.Iadd)
			b.Op(bytecode.AStore)
			b.Bind(restocked)
			// total += prices[item] * qty
			b.Load(lTotal)
			b.Load(lPrices).Load(lItem).Op(bytecode.ALoad)
			b.Load(lQty).Op(bytecode.I2f).Op(bytecode.Fmul)
			b.Op(bytecode.Fadd).Store(lTotal)
			b.Load(lLines).Load(lI).Load(lItem).Op(bytecode.AStore)
		})
		// Allocate the order and insert it into the ring.
		b.Op(bytecode.New, order).Store(lOrd)
		b.Load(lOrd).Load(lTx).Op(bytecode.PutField, jbbOID)
		emitLCGInt(b, lSeed, jbbCusts)
		b.Store(lCust)
		b.Load(lOrd).Load(lCust).Op(bytecode.PutField, jbbOCust)
		b.Load(lOrd).Load(lTotal).Op(bytecode.PutField, jbbOTotal)
		b.Load(lOrd).Load(lLines).Op(bytecode.PutField, jbbOLines)
		b.Load(lRing).Load(lHead).Const(jbbOrders).Op(bytecode.Irem).Load(lOrd).Op(bytecode.AStore)
		b.Load(lHead).Const(1).Op(bytecode.Iadd).Store(lHead)
		ringFull := b.NewLabel()
		b.Load(lCount).Const(jbbOrders)
		b.Br(bytecode.IfGe, ringFull)
		b.Load(lCount).Const(1).Op(bytecode.Iadd).Store(lCount)
		b.Bind(ringFull)
		// chk mix= int(total*100)
		b.Load(lTotal).FConst(100).Op(bytecode.Fmul).Op(bytecode.F2i)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// --- Payment ---
		b.Bind(payment)
		emitLCGInt(b, lSeed, jbbCusts)
		b.Store(lCust)
		emitLCGInt(b, lSeed, items)
		b.Store(lItem)
		b.Load(lBal).Load(lCust)
		b.Load(lBal).Load(lCust).Op(bytecode.ALoad)
		b.Load(lPrices).Load(lItem).Op(bytecode.ALoad)
		b.Op(bytecode.Fadd)
		b.Op(bytecode.AStore)
		b.Load(lBal).Load(lCust).Op(bytecode.ALoad).FConst(100).Op(bytecode.Fmul).Op(bytecode.F2i)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// --- OrderStatus: read the newest live order ---
		b.Bind(status)
		noOrder := b.NewLabel()
		b.Load(lCount).Const(0)
		b.Br(bytecode.IfLe, noOrder)
		b.Load(lRing)
		b.Load(lHead).Const(1).Op(bytecode.Isub).Const(jbbOrders).Op(bytecode.Irem)
		b.Op(bytecode.ALoad)
		b.Op(bytecode.GetField, jbbOTotal).FConst(100).Op(bytecode.Fmul).Op(bytecode.F2i)
		emitMix(b, lChk)
		b.Bind(noOrder)
		b.Br(bytecode.Goto, after)

		// --- Delivery: retire up to 10 oldest orders ---
		b.Bind(delivery)
		forConst(b, lI, 10, func() {
			empty := b.NewLabel()
			b.Load(lCount).Const(0)
			b.Br(bytecode.IfLe, empty)
			// old = (head - count) mod ORDERS
			b.Load(lHead).Load(lCount).Op(bytecode.Isub)
			b.Const(jbbOrders).Op(bytecode.Iadd) // head-count can be negative only if count>head; head>=count always, but keep safe
			b.Const(jbbOrders).Op(bytecode.Irem)
			b.Store(lOld)
			b.Load(lRing).Load(lOld).Op(bytecode.ALoad)
			b.Op(bytecode.GetField, jbbOTotal).FConst(100).Op(bytecode.Fmul).Op(bytecode.F2i)
			emitMix(b, lChk)
			// Drop the reference: the order and its lines become garbage.
			b.Load(lRing).Load(lOld).Const(0).Op(bytecode.AStore)
			b.Load(lCount).Const(1).Op(bytecode.Isub).Store(lCount)
			b.Bind(empty)
		})
		b.Br(bytecode.Goto, after)

		// --- StockLevel: scan a 100-item window ---
		b.Bind(stockLvl)
		emitLCGInt(b, lSeed, items-100)
		b.Store(lWin)
		b.Const(0).Store(lLow)
		forConst(b, lI, 100, func() {
			enough := b.NewLabel()
			b.Load(lStock).Load(lWin).Load(lI).Op(bytecode.Iadd).Op(bytecode.ALoad)
			b.Const(25)
			b.Br(bytecode.IfGe, enough)
			b.Load(lLow).Const(1).Op(bytecode.Iadd).Store(lLow)
			b.Bind(enough)
		})
		b.Load(lLow)
		emitMix(b, lChk)
		b.Br(bytecode.Goto, after)

		// --- Company audit: the only cross-warehouse sync ---
		b.Bind(audit)
		b.Load(lLedger).Op(bytecode.MonEnter)
		b.Load(lLedger)
		b.Load(lLedger).Op(bytecode.GetField, 0)
		b.Load(lChk).Const(0xFFFF).Op(bytecode.Iand).Op(bytecode.Iadd)
		b.Op(bytecode.PutField, 0)
		b.Load(lLedger).Op(bytecode.MonExit)
		b.Br(bytecode.Goto, after)

		b.Bind(after)
	})
	b.Load(lRes).Load(lTid).Load(lChk).Op(bytecode.AStore)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// jbbGo mirrors one whole run.
func jbbGo(items, txPerWh int32, threads int) (chk, tx, ledgerV int64) {
	prices := make([]float64, items)
	seed := int64(54321)
	for i := range prices {
		seed = lcgNextGo(seed)
		prices[i] = float64(lcgIntGo(seed, 9900)+100) * 0.01
	}
	type orderRec struct{ total float64 }
	var ledger int64
	whChk := make([]int64, threads)
	for tid := 0; tid < threads; tid++ {
		stock := make([]int64, items)
		for i := range stock {
			stock[i] = 50
		}
		bal := make([]float64, jbbCusts)
		ring := make([]*orderRec, jbbOrders)
		head, count := int64(0), int64(0)
		s := int64(tid+1)*48271 + 1234
		rnd := func(bound int64) int64 {
			s = lcgNextGo(s)
			return lcgIntGo(s, bound)
		}
		var c int64
		for t := int32(0); t < txPerWh; t++ {
			r := rnd(100)
			switch {
			case r < 45:
				nl := rnd(10) + 5
				total := 0.0
				for i := int64(0); i < nl; i++ {
					item := rnd(int64(items))
					qty := rnd(5) + 1
					stock[item] -= qty
					if stock[item] < 0 {
						stock[item] += 91
					}
					total += prices[item] * float64(qty)
				}
				cust := rnd(jbbCusts)
				_ = cust
				ring[head%jbbOrders] = &orderRec{total: total}
				head++
				if count < jbbOrders {
					count++
				}
				c = mix64Go(c, int64(total*100))
			case r < 85:
				cust := rnd(jbbCusts)
				item := rnd(int64(items))
				bal[cust] += prices[item]
				c = mix64Go(c, int64(bal[cust]*100))
			case r < 90:
				if count > 0 {
					c = mix64Go(c, int64(ring[(head-1)%jbbOrders].total*100))
				}
			case r < 95:
				for i := 0; i < 10; i++ {
					if count <= 0 {
						continue
					}
					old := (head - count + jbbOrders) % jbbOrders
					c = mix64Go(c, int64(ring[old].total*100))
					ring[old] = nil
					count--
				}
			case r < 98:
				win := rnd(int64(items - 100))
				low := int64(0)
				for i := int64(0); i < 100; i++ {
					if stock[win+i] < 25 {
						low++
					}
				}
				c = mix64Go(c, low)
			default:
				ledger += c & 0xFFFF
			}
		}
		whChk[tid] = c
	}
	var out int64
	for _, c := range whChk {
		out = mix64Go(out, c)
	}
	out = mix64Go(out, ledger)
	return out, int64(txPerWh) * int64(threads), ledger
}

func verifyPseudoJBB(vm *jvm.VM, threads int, scale Scale) error {
	items, txPerWh := jbbParams(scale)
	chk, tx, ledger := jbbGo(items, txPerWh, threads)
	if got := int64(vm.Global(1)); got != tx {
		return fmt.Errorf("PseudoJBB: %d transactions, want %d", got, tx)
	}
	if got := int64(vm.Global(2)); got != ledger {
		return fmt.Errorf("PseudoJBB: ledger %d, want %d", got, ledger)
	}
	if got := int64(vm.Global(0)); got != chk {
		return fmt.Errorf("PseudoJBB: checksum %d, want %d", got, chk)
	}
	return nil
}

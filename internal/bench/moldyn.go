package bench

import (
	"fmt"
	"math"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// MolDyn — "an N-body program modeling particles interacting under a
// Lennard-Jones potential" (Java Grande). The O(N²) force loop evaluates
// the LJ force with a cutoff; rows are striped across Java threads, and —
// exactly as in the JGF original — every worker accumulates into its own
// *replicated* force arrays which the main thread reduces after the join.
// That replication is why the paper sees MolDyn's L1 data misses blow up
// as the thread count grows past the hardware contexts (Figures 4, 12).
//
// Globals: 0 = kinetic-energy checksum (float bits), 1 = position
// checksum (float bits), 2 = steps completed.
func moldynParams(s Scale) (n, steps int32) {
	return s.pick(160, 320, 560), s.pick(2, 3, 4)
}

const (
	mdDt     = 0.0005
	mdCutoff = 4.0 // squared cutoff radius
	mdBox    = 8.0
)

// MolDyn returns the benchmark descriptor.
func MolDyn() *Benchmark {
	return &Benchmark{
		Name:          "MolDyn",
		Description:   "An N-body program modeling particles interacting under a Lennard-Jones potential",
		Input:         "N = 2,048 (scaled)",
		Multithreaded: true,
		Build:         buildMolDyn,
		Verify:        verifyMolDyn,
	}
}

func buildMolDyn(threads int, scale Scale, base uint64) *bytecode.Program {
	n, steps := moldynParams(scale)
	nt := int32(threads)
	pb := bytecode.NewProgram("MolDyn")
	pb.Globals(3, 0)

	initIdx := mdInit(pb, n)
	workerIdx := mdWorker(pb, n, nt)

	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lX, lY, lZ, lVX, lVY, lVZ  = 0, 1, 2, 3, 4, 5
		lFXs, lFYs, lFZs           = 6, 7, 8
		lTids, lStep, lW, lI, lAcc = 9, 10, 11, 12, 13
		lFx                        = 14
	)
	// Position/velocity arrays.
	for _, v := range []int32{lX, lY, lZ, lVX, lVY, lVZ} {
		b.Const(n).Op(bytecode.NewArray, bytecode.KindFloat).Store(v)
	}
	b.Load(lX).Load(lY).Load(lZ).Load(lVX).Load(lVY).Load(lVZ)
	b.Op(bytecode.Call, initIdx)
	// Replicated per-worker force arrays.
	for _, v := range []int32{lFXs, lFYs, lFZs} {
		b.Const(nt).Op(bytecode.NewArray, bytecode.KindRef).Store(v)
		forConst(b, lW, nt, func() {
			b.Load(v).Load(lW)
			b.Const(n).Op(bytecode.NewArray, bytecode.KindFloat)
			b.Op(bytecode.AStore)
		})
	}
	b.Const(nt).Op(bytecode.NewArray, bytecode.KindInt).Store(lTids)

	forConst(b, lStep, steps, func() {
		// Fan out the force computation.
		forConst(b, lW, nt, func() {
			b.Load(lTids).Load(lW)
			b.Load(lX).Load(lY).Load(lZ)
			b.Load(lFXs).Load(lW).Op(bytecode.ALoad)
			b.Load(lFYs).Load(lW).Op(bytecode.ALoad)
			b.Load(lFZs).Load(lW).Op(bytecode.ALoad)
			b.Load(lW)
			b.Op(bytecode.ThreadStart, workerIdx)
			b.Op(bytecode.AStore)
		})
		forConst(b, lW, nt, func() {
			b.Load(lTids).Load(lW).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
		})
		// Reduce forces and integrate: per axis, v += F*dt; pos += v*dt.
		axes := [][3]int32{{lFXs, lVX, lX}, {lFYs, lVY, lY}, {lFZs, lVZ, lZ}}
		for _, ax := range axes {
			fs, vel, pos := ax[0], ax[1], ax[2]
			forConst(b, lI, n, func() {
				b.FConst(0).Store(lAcc)
				forConst(b, lFx, nt, func() {
					b.Load(lAcc)
					b.Load(fs).Load(lFx).Op(bytecode.ALoad)
					b.Load(lI).Op(bytecode.ALoad)
					b.Op(bytecode.Fadd).Store(lAcc)
				})
				b.Load(vel).Load(lI)
				b.Load(vel).Load(lI).Op(bytecode.ALoad)
				b.Load(lAcc).FConst(mdDt).Op(bytecode.Fmul)
				b.Op(bytecode.Fadd)
				b.Op(bytecode.AStore)
				b.Load(pos).Load(lI)
				b.Load(pos).Load(lI).Op(bytecode.ALoad)
				b.Load(vel).Load(lI).Op(bytecode.ALoad).FConst(mdDt).Op(bytecode.Fmul)
				b.Op(bytecode.Fadd)
				b.Op(bytecode.AStore)
			})
		}
		b.Op(bytecode.GetStatic, 2).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, 2)
	})

	// Checksums: kinetic energy and position sums.
	b.FConst(0).Store(lAcc)
	forConst(b, lI, n, func() {
		for _, vel := range []int32{lVX, lVY, lVZ} {
			b.Load(lAcc)
			b.Load(vel).Load(lI).Op(bytecode.ALoad)
			b.Load(vel).Load(lI).Op(bytecode.ALoad)
			b.Op(bytecode.Fmul).Op(bytecode.Fadd).Store(lAcc)
		}
	})
	b.Load(lAcc).Op(bytecode.PutStatic, 0)
	b.FConst(0).Store(lAcc)
	forConst(b, lI, n, func() {
		for _, pos := range []int32{lX, lY, lZ} {
			b.Load(lAcc)
			b.Load(pos).Load(lI).Op(bytecode.ALoad)
			b.Op(bytecode.Fadd).Store(lAcc)
		}
	})
	b.Load(lAcc).Op(bytecode.PutStatic, 1)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// mdInit builds init(x,y,z,vx,vy,vz): lattice positions, LCG velocities.
func mdInit(pb *bytecode.ProgramBuilder, n int32) int32 {
	b := bytecode.NewMethod("mdInit", 6, scratchLocals).ArgRefs(0b111111)
	const (
		lX, lY, lZ, lVX, lVY, lVZ = 0, 1, 2, 3, 4, 5
		lI, lSeed                 = 6, 7
	)
	side := int32(math.Ceil(math.Cbrt(float64(n))))
	b.Const(424242).Store(lSeed)
	forConst(b, lI, n, func() {
		// Lattice coordinates i%side, (i/side)%side, i/side².
		b.Load(lX).Load(lI)
		b.Load(lI).Const(side).Op(bytecode.Irem).Op(bytecode.I2f)
		b.FConst(mdBox / float64(side)).Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
		b.Load(lY).Load(lI)
		b.Load(lI).Const(side).Op(bytecode.Idiv).Const(side).Op(bytecode.Irem).Op(bytecode.I2f)
		b.FConst(mdBox / float64(side)).Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
		b.Load(lZ).Load(lI)
		b.Load(lI).Const(side * side).Op(bytecode.Idiv).Op(bytecode.I2f)
		b.FConst(mdBox / float64(side)).Op(bytecode.Fmul)
		b.Op(bytecode.AStore)
		for _, vel := range []int32{lVX, lVY, lVZ} {
			b.Load(vel).Load(lI)
			emitLCGInt(b, lSeed, 2001)
			b.Const(1000).Op(bytecode.Isub).Op(bytecode.I2f)
			b.FConst(0.0001).Op(bytecode.Fmul)
			b.Op(bytecode.AStore)
		}
	})
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// mdWorker builds worker(tids... ) — worker(x,y,z,fx,fy,fz,tid): zero its
// replicated force arrays, then accumulate LJ pair forces for rows
// i ≡ tid (mod nt).
func mdWorker(pb *bytecode.ProgramBuilder, n, nt int32) int32 {
	b := bytecode.NewMethod("mdWorker", 7, scratchLocals).ArgRefs(0b0111111)
	const (
		lX, lY, lZ, lFX, lFY, lFZ, lTid = 0, 1, 2, 3, 4, 5, 6
		lI, lJ                          = 7, 8
		lDX, lDY, lDZ, lR2, lInv, lInv3 = 9, 10, 11, 12, 13, 14
		lF                              = 15
	)
	forConst(b, lI, n, func() {
		for _, fa := range []int32{lFX, lFY, lFZ} {
			b.Load(fa).Load(lI).FConst(0).Op(bytecode.AStore)
		}
	})
	// for i = tid; i < n; i += nt
	iLoop, iDone := b.NewLabel(), b.NewLabel()
	b.Load(lTid).Store(lI)
	b.Bind(iLoop)
	b.Load(lI).Const(n)
	b.Br(bytecode.IfGe, iDone)
	{
		// for j = i+1; j < n; j++
		jLoop, jDone := b.NewLabel(), b.NewLabel()
		b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lJ)
		b.Bind(jLoop)
		b.Load(lJ).Const(n)
		b.Br(bytecode.IfGe, jDone)
		{
			for _, d := range [][3]int32{{lX, lDX, 0}, {lY, lDY, 0}, {lZ, lDZ, 0}} {
				arr, dst := d[0], d[1]
				b.Load(arr).Load(lI).Op(bytecode.ALoad)
				b.Load(arr).Load(lJ).Op(bytecode.ALoad)
				b.Op(bytecode.Fsub).Store(dst)
			}
			b.Load(lDX).Load(lDX).Op(bytecode.Fmul)
			b.Load(lDY).Load(lDY).Op(bytecode.Fmul).Op(bytecode.Fadd)
			b.Load(lDZ).Load(lDZ).Op(bytecode.Fmul).Op(bytecode.Fadd)
			b.Store(lR2)
			skip := b.NewLabel()
			b.Load(lR2).FConst(mdCutoff)
			b.Br(bytecode.IfFGt, skip)
			// inv = 1/r2; inv3 = inv^3; f = 48*inv3*(inv3-0.5)*inv
			b.FConst(1.0).Load(lR2).Op(bytecode.Fdiv).Store(lInv)
			b.Load(lInv).Load(lInv).Op(bytecode.Fmul).Load(lInv).Op(bytecode.Fmul).Store(lInv3)
			b.FConst(48.0).Load(lInv3).Op(bytecode.Fmul)
			b.Load(lInv3).FConst(0.5).Op(bytecode.Fsub).Op(bytecode.Fmul)
			b.Load(lInv).Op(bytecode.Fmul)
			b.Store(lF)
			for _, d := range [][2]int32{{lFX, lDX}, {lFY, lDY}, {lFZ, lDZ}} {
				fa, delta := d[0], d[1]
				// fa[i] += f*delta
				b.Load(fa).Load(lI)
				b.Load(fa).Load(lI).Op(bytecode.ALoad)
				b.Load(lF).Load(delta).Op(bytecode.Fmul)
				b.Op(bytecode.Fadd)
				b.Op(bytecode.AStore)
				// fa[j] -= f*delta
				b.Load(fa).Load(lJ)
				b.Load(fa).Load(lJ).Op(bytecode.ALoad)
				b.Load(lF).Load(delta).Op(bytecode.Fmul)
				b.Op(bytecode.Fsub)
				b.Op(bytecode.AStore)
			}
			b.Bind(skip)
		}
		b.Load(lJ).Const(1).Op(bytecode.Iadd).Store(lJ)
		b.Br(bytecode.Goto, jLoop)
		b.Bind(jDone)
	}
	b.Load(lI).Const(nt).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, iLoop)
	b.Bind(iDone)
	b.Op(bytecode.Ret)
	return pb.Add(b.Finish())
}

// mdGo mirrors the benchmark for the given thread count.
func mdGo(n, steps int32, threads int) (ke, possum float64) {
	nt := threads
	side := int(math.Ceil(math.Cbrt(float64(n))))
	N := int(n)
	x := make([]float64, N)
	y := make([]float64, N)
	z := make([]float64, N)
	vx := make([]float64, N)
	vy := make([]float64, N)
	vz := make([]float64, N)
	seed := int64(424242)
	spacing := mdBox / float64(side)
	for i := 0; i < N; i++ {
		x[i] = float64(i%side) * spacing
		y[i] = float64((i/side)%side) * spacing
		z[i] = float64(i/(side*side)) * spacing
		for _, v := range []*[]float64{&vx, &vy, &vz} {
			seed = lcgNextGo(seed)
			(*v)[i] = float64(lcgIntGo(seed, 2001)-1000) * 0.0001
		}
	}
	fx := make([][]float64, nt)
	fy := make([][]float64, nt)
	fz := make([][]float64, nt)
	for w := 0; w < nt; w++ {
		fx[w] = make([]float64, N)
		fy[w] = make([]float64, N)
		fz[w] = make([]float64, N)
	}
	for s := int32(0); s < steps; s++ {
		for w := 0; w < nt; w++ {
			for i := range fx[w] {
				fx[w][i], fy[w][i], fz[w][i] = 0, 0, 0
			}
			for i := w; i < N; i += nt {
				for j := i + 1; j < N; j++ {
					dx, dy, dz := x[i]-x[j], y[i]-y[j], z[i]-z[j]
					r2 := dx*dx + dy*dy + dz*dz
					if r2 > mdCutoff {
						continue
					}
					inv := 1.0 / r2
					inv3 := inv * inv * inv
					f := 48.0 * inv3 * (inv3 - 0.5) * inv
					fx[w][i] += f * dx
					fx[w][j] -= f * dx
					fy[w][i] += f * dy
					fy[w][j] -= f * dy
					fz[w][i] += f * dz
					fz[w][j] -= f * dz
				}
			}
		}
		reduce := func(fs [][]float64, vel, pos []float64) {
			for i := 0; i < N; i++ {
				acc := 0.0
				for w := 0; w < nt; w++ {
					acc += fs[w][i]
				}
				vel[i] += acc * mdDt
				pos[i] += vel[i] * mdDt
			}
		}
		reduce(fx, vx, x)
		reduce(fy, vy, y)
		reduce(fz, vz, z)
	}
	// Accumulate one term at a time, matching the bytecode's FP order.
	for i := 0; i < N; i++ {
		ke += vx[i] * vx[i]
		ke += vy[i] * vy[i]
		ke += vz[i] * vz[i]
	}
	for i := 0; i < N; i++ {
		possum += x[i]
		possum += y[i]
		possum += z[i]
	}
	return ke, possum
}

func verifyMolDyn(vm *jvm.VM, threads int, scale Scale) error {
	n, steps := moldynParams(scale)
	if got := int64(vm.Global(2)); got != int64(steps) {
		return fmt.Errorf("MolDyn: %d steps, want %d", got, steps)
	}
	ke, possum := mdGo(n, steps, threads)
	if got := vm.GlobalFloat(0); math.Abs(got-ke) > 1e-9*(1+math.Abs(ke)) {
		return fmt.Errorf("MolDyn: kinetic energy %v, want %v", got, ke)
	}
	if got := vm.GlobalFloat(1); math.Abs(got-possum) > 1e-9*(1+math.Abs(possum)) {
		return fmt.Errorf("MolDyn: position sum %v, want %v", got, possum)
	}
	return nil
}

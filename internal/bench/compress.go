package bench

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/jvm"
)

// compress — "Java port of the SPEC95 compress program using modified LZW
// method". This is a real LZW codec: compression builds a (prefix, char)
// dictionary in an open-addressing hash table; decompression rebuilds it
// and the program verifies round-trip equality itself. Like the original
// it is a tight integer loop with hash-table probes and serial dependency
// chains.
//
// Globals: 0 = round-trip valid (must equal iterations), 1 = compressed
// length of the last iteration, 2 = running checksum of emitted codes,
// 3 = iterations completed.
const (
	lzwNSym    = 64
	lzwHSize   = 2048 // power of two, open addressing
	lzwDictMax = 1024
)

// compressParams returns (symbols, iterations) per scale.
func compressParams(s Scale) (int32, int32) {
	return s.pick(2000, 12000, 48000), s.pick(2, 3, 4)
}

// Compress returns the benchmark descriptor.
func Compress() *Benchmark {
	return &Benchmark{
		Name:        "compress",
		Description: "Java port of the SPEC95 compress program using modified LZW method",
		Input:       "-s100 -m1 -M1 (scaled)",
		Build:       buildCompress,
		Verify:      verifyCompress,
	}
}

func buildCompress(_ int, scale Scale, base uint64) *bytecode.Program {
	n, iters := compressParams(scale)
	pb := bytecode.NewProgram("compress")
	pb.Globals(4, 0)

	genIdx := compressGen(pb, n)
	cmpIdx := compressCompress(pb)
	expIdx := compressExpand(pb)
	decIdx := compressDecompress(pb, expIdx)
	eqIdx := compressEqual(pb)

	// main: in = gen(); out/codes arrays; loop iterations.
	b := bytecode.NewMethod("main", 0, scratchLocals)
	const (
		lIn, lCodes, lBack, lIter, lM, lK, lI = 0, 1, 2, 3, 4, 5, 6
		lChk                                  = 7
	)
	b.Op(bytecode.Call, genIdx).Store(lIn)
	b.Const(n+16).Op(bytecode.NewArray, bytecode.KindInt).Store(lCodes)
	b.Const(n+16).Op(bytecode.NewArray, bytecode.KindInt).Store(lBack)
	b.Const(0).Store(lChk)
	forConst(b, lIter, iters, func() {
		// m = compress(in, codes, n)
		b.Load(lIn).Load(lCodes).Const(n)
		b.Op(bytecode.Call, cmpIdx).Store(lM)
		// checksum += codes[j] mixing
		forVar(b, lI, lM, func() {
			b.Load(lCodes).Load(lI).Op(bytecode.ALoad)
			emitMix(b, lChk)
		})
		// k = decompress(codes, m, back)
		b.Load(lCodes).Load(lM).Load(lBack)
		b.Op(bytecode.Call, decIdx).Store(lK)
		// valid += equal(in, back, n, k)
		b.Op(bytecode.GetStatic, 0)
		b.Load(lIn).Load(lBack).Const(n).Load(lK)
		b.Op(bytecode.Call, eqIdx)
		b.Op(bytecode.Iadd).Op(bytecode.PutStatic, 0)
		b.Load(lM).Op(bytecode.PutStatic, 1)
		b.Op(bytecode.GetStatic, 3).Const(1).Op(bytecode.Iadd).Op(bytecode.PutStatic, 3)
	})
	b.Load(lChk).Op(bytecode.PutStatic, 2)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(base)
}

// compressGen builds gen(): int[] — the synthetic corpus: skewed symbols
// min(r1, r2) so LZW finds repeats, exactly mirrored in Go by
// compressInputGo.
func compressGen(pb *bytecode.ProgramBuilder, n int32) int32 {
	b := bytecode.NewMethod("genInput", 0, scratchLocals).ReturnsRef()
	const (
		lArr, lI, lSeed, lA, lB = 0, 1, 2, 3, 4
	)
	b.Const(n).Op(bytecode.NewArray, bytecode.KindInt).Store(lArr)
	b.Const(12345).Store(lSeed)
	forConst(b, lI, n, func() {
		emitLCGInt(b, lSeed, lzwNSym)
		b.Store(lA)
		emitLCGInt(b, lSeed, lzwNSym)
		b.Store(lB)
		big := b.NewLabel()
		store := b.NewLabel()
		b.Load(lA).Load(lB)
		b.Br(bytecode.IfGt, big)
		b.Load(lArr).Load(lI).Load(lA).Op(bytecode.AStore)
		b.Br(bytecode.Goto, store)
		b.Bind(big)
		b.Load(lArr).Load(lI).Load(lB).Op(bytecode.AStore)
		b.Bind(store)
	})
	b.Load(lArr).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// compressInputGo mirrors genInput.
func compressInputGo(n int32) []int64 {
	in := make([]int64, n)
	seed := int64(12345)
	for i := range in {
		seed = lcgNextGo(seed)
		a := lcgIntGo(seed, lzwNSym)
		seed = lcgNextGo(seed)
		c := lcgIntGo(seed, lzwNSym)
		if a <= c {
			in[i] = a
		} else {
			in[i] = c
		}
	}
	return in
}

// compressCompress builds compress(in, out, n): int — LZW encode.
func compressCompress(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("compress", 3, scratchLocals).ArgRefs(0b011)
	const (
		lIn, lOut, lN                   = 0, 1, 2
		lHP, lHC, lHV                   = 3, 4, 5 // hash prefix/char/value(code)
		lNext, lW, lI, lC, lH, lPos, lF = 6, 7, 8, 9, 10, 11, 12
	)
	b.Const(lzwHSize).Op(bytecode.NewArray, bytecode.KindInt).Store(lHP)
	b.Const(lzwHSize).Op(bytecode.NewArray, bytecode.KindInt).Store(lHC)
	b.Const(lzwHSize).Op(bytecode.NewArray, bytecode.KindInt).Store(lHV)
	b.Const(lzwNSym).Store(lNext)
	b.Const(0).Store(lPos)
	// w = in[0]
	b.Load(lIn).Const(0).Op(bytecode.ALoad).Store(lW)
	// for i = 1..n-1
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(1).Store(lI)
	b.Bind(loop)
	b.Load(lI).Load(lN)
	b.Br(bytecode.IfGe, done)
	{
		b.Load(lIn).Load(lI).Op(bytecode.ALoad).Store(lC)
		// h = (w*31 + c) & (HSIZE-1); probe
		b.Load(lW).Const(31).Op(bytecode.Imul).Load(lC).Op(bytecode.Iadd)
		b.Const(lzwHSize - 1).Op(bytecode.Iand).Store(lH)
		probe, found, notfound, after := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
		b.Bind(probe)
		// empty slot? hv[h] == 0 -> notfound
		b.Load(lHV).Load(lH).Op(bytecode.ALoad).Const(0)
		b.Br(bytecode.IfEq, notfound)
		// match? hp[h]==w && hc[h]==c -> found
		miss := b.NewLabel()
		b.Load(lHP).Load(lH).Op(bytecode.ALoad).Load(lW)
		b.Br(bytecode.IfNe, miss)
		b.Load(lHC).Load(lH).Op(bytecode.ALoad).Load(lC)
		b.Br(bytecode.IfEq, found)
		b.Bind(miss)
		b.Load(lH).Const(1).Op(bytecode.Iadd).Const(lzwHSize - 1).Op(bytecode.Iand).Store(lH)
		b.Br(bytecode.Goto, probe)

		b.Bind(found)
		b.Load(lHV).Load(lH).Op(bytecode.ALoad).Store(lW)
		b.Br(bytecode.Goto, after)

		b.Bind(notfound)
		// out[pos++] = w
		b.Load(lOut).Load(lPos).Load(lW).Op(bytecode.AStore)
		b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
		// insert if room: hv[h]=next, hp[h]=w, hc[h]=c, next++
		full := b.NewLabel()
		b.Load(lNext).Const(lzwDictMax)
		b.Br(bytecode.IfGe, full)
		b.Load(lHV).Load(lH).Load(lNext).Op(bytecode.AStore)
		b.Load(lHP).Load(lH).Load(lW).Op(bytecode.AStore)
		b.Load(lHC).Load(lH).Load(lC).Op(bytecode.AStore)
		b.Load(lNext).Const(1).Op(bytecode.Iadd).Store(lNext)
		b.Bind(full)
		b.Load(lC).Store(lW)
		b.Bind(after)
		_ = lF
	}
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	// out[pos++] = w
	b.Load(lOut).Load(lPos).Load(lW).Op(bytecode.AStore)
	b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
	b.Load(lPos).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// compressExpand builds expand(code, prefix, char, buf): int — walks the
// dictionary chain writing symbols into buf in reverse and returns the
// count; buf[0] after reversal... the caller re-reverses, so this returns
// the chain length with buf holding [last..first].
func compressExpand(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("expand", 4, scratchLocals).ArgRefs(0b1110)
	const (
		lCode, lPre, lChr, lBuf, lSp = 0, 1, 2, 3, 4
	)
	b.Const(0).Store(lSp)
	loop, base := b.NewLabel(), b.NewLabel()
	b.Bind(loop)
	b.Load(lCode).Const(lzwNSym)
	b.Br(bytecode.IfLt, base)
	b.Load(lBuf).Load(lSp).Load(lChr).Load(lCode).Op(bytecode.ALoad).Op(bytecode.AStore)
	b.Load(lSp).Const(1).Op(bytecode.Iadd).Store(lSp)
	b.Load(lPre).Load(lCode).Op(bytecode.ALoad).Store(lCode)
	b.Br(bytecode.Goto, loop)
	b.Bind(base)
	b.Load(lBuf).Load(lSp).Load(lCode).Op(bytecode.AStore)
	b.Load(lSp).Const(1).Op(bytecode.Iadd).Store(lSp)
	b.Load(lSp).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// compressDecompress builds decompress(codes, m, out): int — LZW decode
// with the KwKwK case, verifying the encoder end to end.
func compressDecompress(pb *bytecode.ProgramBuilder, expandIdx int32) int32 {
	b := bytecode.NewMethod("decompress", 3, scratchLocals).ArgRefs(0b101)
	const (
		lCodes, lM, lOut                 = 0, 1, 2
		lPre, lChr, lBuf                 = 3, 4, 5
		lNext, lPrev, lI, lC, lPos, lLen = 6, 7, 8, 9, 10, 11
		lJ, lFirst                       = 12, 13
	)
	b.Const(lzwDictMax).Op(bytecode.NewArray, bytecode.KindInt).Store(lPre)
	b.Const(lzwDictMax).Op(bytecode.NewArray, bytecode.KindInt).Store(lChr)
	b.Const(lzwDictMax).Op(bytecode.NewArray, bytecode.KindInt).Store(lBuf)
	b.Const(lzwNSym).Store(lNext)
	b.Const(0).Store(lPos)
	// prev = codes[0]; out[pos++] = prev
	b.Load(lCodes).Const(0).Op(bytecode.ALoad).Store(lPrev)
	b.Load(lOut).Load(lPos).Load(lPrev).Op(bytecode.AStore)
	b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
	// for i = 1..m-1
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(1).Store(lI)
	b.Bind(loop)
	b.Load(lI).Load(lM)
	b.Br(bytecode.IfGe, done)
	{
		b.Load(lCodes).Load(lI).Op(bytecode.ALoad).Store(lC)
		known, emit := b.NewLabel(), b.NewLabel()
		b.Load(lC).Load(lNext)
		b.Br(bytecode.IfLt, known)
		// KwKwK: expand prev, then append its first symbol.
		b.Load(lPrev).Load(lPre).Load(lChr).Load(lBuf)
		b.Op(bytecode.Call, expandIdx).Store(lLen)
		// first = buf[len-1]; buf shifts: emulate append by writing
		// buf[len] is free; we emit buf reversed then first again.
		b.Load(lBuf).Load(lLen).Const(1).Op(bytecode.Isub).Op(bytecode.ALoad).Store(lFirst)
		// emit reversed buf
		forVar(b, lJ, lLen, func() {
			b.Load(lOut).Load(lPos)
			b.Load(lBuf)
			b.Load(lLen).Const(1).Op(bytecode.Isub).Load(lJ).Op(bytecode.Isub)
			b.Op(bytecode.ALoad)
			b.Op(bytecode.AStore)
			b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
		})
		// then the extra first symbol
		b.Load(lOut).Load(lPos).Load(lFirst).Op(bytecode.AStore)
		b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
		b.Br(bytecode.Goto, emit)

		b.Bind(known)
		b.Load(lC).Load(lPre).Load(lChr).Load(lBuf)
		b.Op(bytecode.Call, expandIdx).Store(lLen)
		b.Load(lBuf).Load(lLen).Const(1).Op(bytecode.Isub).Op(bytecode.ALoad).Store(lFirst)
		forVar(b, lJ, lLen, func() {
			b.Load(lOut).Load(lPos)
			b.Load(lBuf)
			b.Load(lLen).Const(1).Op(bytecode.Isub).Load(lJ).Op(bytecode.Isub)
			b.Op(bytecode.ALoad)
			b.Op(bytecode.AStore)
			b.Load(lPos).Const(1).Op(bytecode.Iadd).Store(lPos)
		})

		b.Bind(emit)
		// dict insert: pre[next]=prev, chr[next]=first, next++ (if room)
		full := b.NewLabel()
		b.Load(lNext).Const(lzwDictMax)
		b.Br(bytecode.IfGe, full)
		b.Load(lPre).Load(lNext).Load(lPrev).Op(bytecode.AStore)
		b.Load(lChr).Load(lNext).Load(lFirst).Op(bytecode.AStore)
		b.Load(lNext).Const(1).Op(bytecode.Iadd).Store(lNext)
		b.Bind(full)
		b.Load(lC).Store(lPrev)
	}
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(lPos).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// compressEqual builds equal(a, b, n, k): int — 1 when k==n and the
// arrays match elementwise.
func compressEqual(pb *bytecode.ProgramBuilder) int32 {
	b := bytecode.NewMethod("equalArrays", 4, scratchLocals).ArgRefs(0b0011)
	const (
		lA, lB, lN, lK, lI = 0, 1, 2, 3, 4
	)
	bad := b.NewLabel()
	b.Load(lN).Load(lK)
	b.Br(bytecode.IfNe, bad)
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(lI)
	b.Bind(loop)
	b.Load(lI).Load(lN)
	b.Br(bytecode.IfGe, done)
	b.Load(lA).Load(lI).Op(bytecode.ALoad)
	b.Load(lB).Load(lI).Op(bytecode.ALoad)
	b.Br(bytecode.IfNe, bad)
	b.Load(lI).Const(1).Op(bytecode.Iadd).Store(lI)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Const(1).Op(bytecode.RetVal)
	b.Bind(bad)
	b.Const(0).Op(bytecode.RetVal)
	return pb.Add(b.Finish())
}

// lzwCompressGo mirrors the bytecode encoder exactly.
func lzwCompressGo(in []int64) []int64 {
	hp := make([]int64, lzwHSize)
	hc := make([]int64, lzwHSize)
	hv := make([]int64, lzwHSize)
	next := int64(lzwNSym)
	var out []int64
	w := in[0]
	for i := 1; i < len(in); i++ {
		c := in[i]
		h := (w*31 + c) & (lzwHSize - 1)
		for {
			if hv[h] == 0 {
				out = append(out, w)
				if next < lzwDictMax {
					hv[h], hp[h], hc[h] = next, w, c
					next++
				}
				w = c
				break
			}
			if hp[h] == w && hc[h] == c {
				w = hv[h]
				break
			}
			h = (h + 1) & (lzwHSize - 1)
		}
	}
	out = append(out, w)
	return out
}

func verifyCompress(vm *jvm.VM, _ int, scale Scale) error {
	n, iters := compressParams(scale)
	in := compressInputGo(n)
	codes := lzwCompressGo(in)
	if got := int64(vm.Global(0)); got != int64(iters) {
		return fmt.Errorf("compress: %d/%d iterations round-tripped", got, iters)
	}
	if got := int64(vm.Global(1)); got != int64(len(codes)) {
		return fmt.Errorf("compress: compressed length %d, want %d", got, len(codes))
	}
	chk := int64(0)
	for iter := int32(0); iter < iters; iter++ {
		for _, c := range codes {
			chk = mix64Go(chk, c)
		}
	}
	if got := int64(vm.Global(2)); got != chk {
		return fmt.Errorf("compress: code checksum %d, want %d", got, chk)
	}
	return nil
}

//go:build checks

package core

import (
	"strings"
	"testing"

	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// The checks-tagged tests reuse mixedStream from reset_test.go: it
// exercises every occupancy-tracked structure (ALU chains, loads, stores,
// branches).

// TestProbesFireDuringRun proves that a checks-tagged run actually
// evaluates the invariant probes (a regression here would make the whole
// checks test pass vacuous) and that the whole-program flow audit
// balances: fed == allocated == retired, in agreement with the counter.
func TestProbesFireDuringRun(t *testing.T) {
	check.ResetProbes()
	cfg := DefaultConfig(true)
	cpu := New(cfg)
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(20_000)}})
	cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: mixedStream(20_000)}})
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := check.Probes(); got < 1000 {
		t.Fatalf("only %d probe evaluations in a 40k-µop run; probes are not firing", got)
	}
	if cpu.ckFed != cpu.ckAlloc || cpu.ckAlloc != cpu.ckRetired {
		t.Fatalf("flow audit unbalanced: fed %d, alloc %d, retired %d",
			cpu.ckFed, cpu.ckAlloc, cpu.ckRetired)
	}
	if got := cpu.Counters().Get(counters.Instructions); got != cpu.ckRetired {
		t.Fatalf("uops_retired %d != audit %d", got, cpu.ckRetired)
	}
	if cpu.ckRetired != 40_000 {
		t.Fatalf("retired %d µops, want 40000", cpu.ckRetired)
	}
}

// TestResetClearsAudit: the Reset-reuse contract extends to the audit
// counters — a reset machine must start its flow audit from zero.
func TestResetClearsAudit(t *testing.T) {
	cfg := DefaultConfig(false)
	cpu := New(cfg)
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(5_000)}})
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cpu.Reset()
	if cpu.ckFed != 0 || cpu.ckAlloc != 0 || cpu.ckRetired != 0 {
		t.Fatalf("Reset left audit counters at fed %d / alloc %d / retired %d",
			cpu.ckFed, cpu.ckAlloc, cpu.ckRetired)
	}
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(5_000)}})
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
	if cpu.ckRetired != 5_000 {
		t.Fatalf("retired %d after Reset, want 5000", cpu.ckRetired)
	}
}

// wantCheckPanic runs f and requires it to panic with a tagged invariant
// diagnostic mentioning substr.
func wantCheckPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("corrupted state was not detected (wanted panic mentioning %q)", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "check[") {
			t.Fatalf("panic %v is not a check diagnostic", r)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("diagnostic %q does not mention %q", msg, substr)
		}
	}()
	f()
}

// TestCheckerDetectsCorruption injects the bug classes the recount exists
// for — incremental totals drifting from the real structure contents —
// and requires the checker to catch each one.
func TestCheckerDetectsCorruption(t *testing.T) {
	build := func() *CPU {
		cpu := New(DefaultConfig(true))
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(10_000)}})
		cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: mixedStream(10_000)}})
		if _, err := cpu.Run(500); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return cpu
	}

	t.Run("rob total drift", func(t *testing.T) {
		cpu := build()
		cpu.cores[0].totRob++
		wantCheckPanic(t, "incremental total", cpu.verifyRecount)
	})
	t.Run("load count drift", func(t *testing.T) {
		cpu := build()
		cpu.ctxs[0].loadsOut++
		cpu.cores[0].totLoads++
		wantCheckPanic(t, "incremental loadsOut", cpu.verifyRecount)
	})
	t.Run("partition cap violation", func(t *testing.T) {
		cpu := build()
		cpu.ctxs[0].robCount = cpu.robCapV + 1
		wantCheckPanic(t, "partition cap", cpu.verifyStep)
	})
	t.Run("counter divergence", func(t *testing.T) {
		cpu := build()
		cpu.file.Add(counters.Instructions, 7)
		wantCheckPanic(t, "diverged", cpu.verifyStep)
	})
}

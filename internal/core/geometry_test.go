package core

import (
	"strings"
	"testing"

	"javasmt/internal/isa"
	"javasmt/internal/tlb"
)

// Geometry tests (ISSUE 7): the generalized M-cores × N-contexts machine
// must behave as a set of paper machines — context seating is symmetric,
// degenerate shapes are rejected before they can panic a constructor,
// and arbitrary geometry inputs never crash a run.

// TestGeometryContextPermutation: a solo µop stream seated on context 1
// of the two-context core is the same physical experiment as seating it
// on context 0 — the arbiter serves the only active context either way,
// and every per-context structure partition is the same size. Machine
// totals must be identical to the bit; only the per-context retirement
// attribution moves seats.
func TestGeometryContextPermutation(t *testing.T) {
	uops := mixedStream(30_000)
	run := func(ctx int) *CPU {
		cfg := DefaultConfig(false)
		cfg.Geometry = Geometry{Cores: 1, ContextsPerCore: 2}
		cpu := New(cfg)
		cpu.AttachFeed(ctx, &feed{src: &isa.SliceSource{Uops: uops}})
		if _, err := cpu.Run(0); err != nil {
			t.Fatalf("ctx %d: %v", ctx, err)
		}
		return cpu
	}
	on0, on1 := run(0), run(1)
	if *on0.Counters() != *on1.Counters() {
		t.Errorf("machine totals differ between context seatings:\nctx0: %+v\nctx1: %+v",
			on0.Counters(), on1.Counters())
	}
	r0 := on0.RetiredByLP(nil)
	r1 := on1.RetiredByLP(nil)
	if r0[0] != r1[1] || r0[1] != r1[0] {
		t.Errorf("per-context retirement did not swap with the seating: ctx0 run %v, ctx1 run %v", r0, r1)
	}
	if r0[0] != uint64(len(uops)) || r0[1] != 0 {
		t.Errorf("per-context retirement misattributed: %v, want [%d 0]", r0, len(uops))
	}
}

// TestGeometryCMPPrivateState: the same solo stream on a {2,1} machine
// must take exactly as many cycles as on the {1,1} machine when seated
// on either core — a second idle core with private structures cannot
// perturb a core-local run.
func TestGeometryCMPPrivateState(t *testing.T) {
	uops := mixedStream(30_000)
	base, baseCycles := runStream(t, DefaultConfig(false), uops)
	for ctx := 0; ctx < 2; ctx++ {
		cfg := DefaultConfig(false)
		cfg.Geometry = Geometry{Cores: 2, ContextsPerCore: 1}
		cpu := New(cfg)
		cpu.AttachFeed(ctx, &feed{src: &isa.SliceSource{Uops: uops}})
		cycles, err := cpu.Run(0)
		if err != nil {
			t.Fatalf("core %d: %v", ctx, err)
		}
		if cycles != baseCycles {
			t.Errorf("core %d of the 2x1 machine took %d cycles, single-core machine took %d",
				ctx, cycles, baseCycles)
		}
		_ = base
	}
}

// TestConfigValidate rejects every degenerate geometry the constructors
// would panic on, and accepts the machine shapes the sweep uses.
func TestConfigValidate(t *testing.T) {
	mk := func(mutate func(*Config)) Config {
		cfg := DefaultConfig(false)
		mutate(&cfg)
		return cfg
	}
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // empty = must validate clean
	}{
		{"default ht off", DefaultConfig(false), ""},
		{"default ht on", DefaultConfig(true), ""},
		{"explicit 1x1", mk(func(c *Config) { c.Geometry = Geometry{1, 1} }), ""},
		{"explicit 1x2", mk(func(c *Config) { c.Geometry = Geometry{1, 2} }), ""},
		{"smt4", mk(func(c *Config) { c.Geometry = Geometry{1, 4} }), ""},
		{"cmp 4x4", mk(func(c *Config) { c.Geometry = Geometry{4, 4} }), ""},
		{"niagara-ish 8x8", mk(func(c *Config) { c.Geometry = Geometry{8, 8} }), ""},
		{"zero cores only", mk(func(c *Config) { c.Geometry = Geometry{0, 2} }), "only one dimension"},
		{"zero contexts only", mk(func(c *Config) { c.Geometry = Geometry{4, 0} }), "only one dimension"},
		{"negative cores", mk(func(c *Config) { c.Geometry = Geometry{-1, 2} }), "at least one core"},
		{"negative contexts", mk(func(c *Config) { c.Geometry = Geometry{1, -2} }), "at least one core"},
		{"too many contexts per core", mk(func(c *Config) { c.Geometry = Geometry{1, 17} }), "contexts per core"},
		{"contexts exceed store partition", mk(func(c *Config) {
			c.Geometry = Geometry{1, 16}
			c.Params.StoreBufs = 12
		}), "static partition capacity"},
		{"dynamic pool tolerates narrow buffers", mk(func(c *Config) {
			c.Geometry = Geometry{1, 16}
			c.Params.StoreBufs = 12
			c.Partition = DynamicPartition
		}), ""},
		{"zero retire width", mk(func(c *Config) { c.Params.RetireWidth = 0 }), "retire widths"},
		{"zero fetch width", mk(func(c *Config) { c.Params.FetchUops = 0 }), "retire widths"},
		{"zero rob", mk(func(c *Config) { c.Params.ROBSize = 0 }), "must be positive"},
		{"negative latency", mk(func(c *Config) { c.Params.ALULat = -1 }), "latencies"},
		{"zero fill batch", mk(func(c *Config) { c.Params.FillBatch = 0 }), "FillBatch"},
		{"non-pow2 L1D sets", mk(func(c *Config) { c.Hier.L1D.Size = 3 * 1024 }), "L1D sets"},
		{"zero tc line", mk(func(c *Config) { c.TC.LineUops = 0 }), "trace cache"},
		{"itlb not divisible", mk(func(c *Config) { c.ITLB.Entries = 127 }), "not divisible"},
		{"itlb partition not pow2", mk(func(c *Config) {
			// 128 entries / 4-way partitioned over 3 contexts: 42 entries
			// per partition is not a power-of-two set count.
			c.Geometry = Geometry{1, 3}
		}), "sets must be a positive power of two"},
		{"zero btb", mk(func(c *Config) { c.Branch.BTBEntries = 0 }), "BTB"},
		{"history bits", mk(func(c *Config) { c.Branch.HistoryBits = 31 }), "history bits"},
		{"zero banks", mk(func(c *Config) { c.Mem.Banks = 0 }), "bank"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateMirrorsConstructors: a Validate-clean config must build
// without panicking, across the geometry corner cases the fuzz target
// seeds. (The fuzz target extends this to arbitrary field combinations.)
func TestValidateMirrorsConstructors(t *testing.T) {
	for _, g := range []Geometry{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {1, 16}, {8, 4}} {
		cfg := DefaultConfig(false)
		cfg.Geometry = g
		if err := cfg.Validate(); err != nil {
			t.Fatalf("geometry %v: %v", g, err)
		}
		cpu := New(cfg)
		if got := len(cpu.ctxs); got != g.Total() {
			t.Fatalf("geometry %v built %d contexts, want %d", g, got, g.Total())
		}
		if got := len(cpu.cores); got != g.Cores {
			t.Fatalf("geometry %v built %d cores, want %d", g, got, g.Cores)
		}
	}
}

// FuzzConfigGeometry: for any geometry and sizing input, Validate either
// rejects the config or the machine builds and survives a tiny run — no
// input may panic. This is the contract the CLI and harness rely on
// when they pass user-supplied -cores/-contexts straight through.
func FuzzConfigGeometry(f *testing.F) {
	f.Add(1, 1, 126, 48, 24, 3, false)
	f.Add(1, 2, 126, 48, 24, 3, false)
	f.Add(2, 2, 126, 48, 24, 3, true)
	f.Add(4, 4, 126, 48, 24, 3, false)
	f.Add(1, 16, 16, 16, 16, 1, false)
	f.Add(0, 2, 126, 48, 24, 3, false)
	f.Add(-3, -5, 126, 48, 24, 3, false)
	f.Add(1, 17, 126, 48, 24, 3, false)
	f.Add(3, 3, 7, 2, 1, 2, true)
	f.Fuzz(func(t *testing.T, cores, cpc, rob, loads, stores, width int, dynamic bool) {
		// Bound the machine the fuzzer may ask for: Validate accepts any
		// core count, but building thousands of cores is an OOM, not a
		// model bug.
		if cores > 16 || cpc > 64 || rob > 4096 || loads > 4096 || stores > 4096 || width > 64 {
			t.Skip("oversized machine")
		}
		cfg := DefaultConfig(false)
		cfg.Geometry = Geometry{Cores: cores, ContextsPerCore: cpc}
		cfg.Params.ROBSize = rob
		cfg.Params.LoadBufs = loads
		cfg.Params.StoreBufs = stores
		cfg.Params.FetchUops = width
		cfg.Params.IssueWidth = width
		cfg.Params.RetireWidth = width
		if dynamic {
			cfg.Partition = DynamicPartition
		}
		if err := cfg.Validate(); err != nil {
			return // rejected: the constructors are never reached
		}
		cpu := New(cfg)
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(2_000)}})
		if last := cfg.NumContexts() - 1; last > 0 {
			cpu.AttachFeed(last, &feed{src: &isa.SliceSource{Uops: mixedStream(2_000)}})
		}
		if _, err := cpu.Run(0); err != nil {
			t.Fatalf("geometry %v: %v", cfg.Geo(), err)
		}
	})
}

// TestGeometrySharedDTLBOccupancy pins the structure-instancing rules on
// a wider machine: the DTLB is shared within a core (one partition), the
// ITLB is partitioned per context.
func TestGeometrySharedDTLBOccupancy(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.Geometry = Geometry{Cores: 1, ContextsPerCore: 4}
	if cfg.ITLB.Partitioned == (tlb.Config{}).Partitioned {
		t.Fatalf("default ITLB config lost its Partitioned marker")
	}
	cpu := New(cfg)
	cb := cpu.cores[0]
	if got := len(cb.itlb.OccupancyInto(make([]int, 4))); got != 4 {
		t.Errorf("ITLB occupancy lanes = %d, want 4", got)
	}
}

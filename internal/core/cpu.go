package core

import (
	"fmt"
	"sync/atomic"

	"javasmt/internal/branch"
	"javasmt/internal/cache"
	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
	"javasmt/internal/mem"
	"javasmt/internal/obs"
	"javasmt/internal/tlb"
)

// Feed supplies the µop stream of one logical processor. The OS substrate
// implements it by multiplexing software threads; tests implement it
// directly from isa sources.
type Feed interface {
	// Fill writes up to len(buf) µops for cycle now and returns how
	// many were written. Returning 0 means nothing is runnable right
	// now on this logical CPU.
	Fill(now uint64, buf []isa.Uop) int
	// Runnable reports whether the feed could produce µops at cycle now.
	Runnable(now uint64) bool
	// Done reports that the feed will never produce µops again.
	Done() bool
}

// calendar bounds the number of µops beginning execution on any one cycle
// (the issue-port model). Slots are tagged with their cycle so the ring
// self-cleans lazily as the schedule advances.
type calendar struct {
	cycle []uint64
	count []uint16
	mask  uint64
	width uint16
}

func newCalendar(width int) *calendar {
	const slots = 1 << 16
	return &calendar{
		cycle: make([]uint64, slots),
		count: make([]uint16, slots),
		mask:  slots - 1,
		width: uint16(width),
	}
}

// schedule returns the first cycle >= want with a free issue slot and
// claims it. Cycles beyond the ring horizon are admitted unconstrained
// (they are rare, deeply memory-bound cases where ports are not the
// bottleneck).
func (c *calendar) schedule(want, now uint64) uint64 {
	for {
		if want-now > c.mask {
			return want
		}
		i := want & c.mask
		if c.cycle[i] != want {
			c.cycle[i] = want
			c.count[i] = 1
			return want
		}
		if c.count[i] < c.width {
			c.count[i]++
			return want
		}
		want++
	}
}

// robEntry is one in-flight µop: its completion cycle and the attributes
// retirement accounting needs.
type robEntry struct {
	done   uint64
	kernel bool
	load   bool
	store  bool
}

const depMask = 255 // dependency history window per context (power of two - 1)

// coreBlock is one physical core: the pipeline resources and private
// level-1 structures its SMT contexts share. On a one-core machine it is
// exactly the paper's P4; a multi-core machine replicates it per core
// over one shared L2 and DRAM channel.
type coreBlock struct {
	id int // core index
	lo int // global index of this core's first context
	// ctxs are the core's contexts, in local order (global index lo+i).
	ctxs []*context

	cal  *calendar
	tc   *cache.TraceCache
	hier *cache.Hierarchy // private L1D over the shared L2
	itlb *tlb.TLB
	dtlb *tlb.TLB
	pred *branch.Predictor

	// decodeBusyUntil models the core's single shared x86 decode pipeline
	// that rebuilds traces after a trace-cache miss: while it is busy, the
	// core's *other* contexts cannot fetch either. Solo runs are
	// unaffected (the missing context is already stalled longer), but two
	// co-scheduled trace-thrashing programs serialize each other — the
	// coupling behind the paper's bad-partner slowdowns.
	decodeBusyUntil uint64

	// Occupancy totals across the core's contexts, maintained
	// incrementally at allocate/retire so dynamic partitioning needs no
	// per-µop scan.
	totRob, totLoads, totStores int
}

// context is the per-logical-processor state.
type context struct {
	feed Feed

	// cb is the owning physical core; lid the context's local index on
	// it. Structure lookups use lid (a core's private caches know nothing
	// of other cores' contexts); the harness and OS use the global index
	// cb.lo + lid.
	cb  *coreBlock
	lid int

	// retired counts µops retired by this context (detailed retirement
	// plus functional execution), for per-context attribution.
	retired uint64

	// Front-end buffer of fetched-but-not-allocated µops.
	buf    []isa.Uop
	bufPos int
	bufLen int

	// blockedUntil stalls fetch/allocate (TC miss, mispredict refill,
	// syscall drain).
	blockedUntil uint64

	// Trace-line tracking: a TC lookup happens only when fetch crosses
	// into a new trace line. lineBase is the first µop PC of the current
	// line, so the crossing test is a subtract-and-compare instead of a
	// divide per µop (trace lines hold 6 µops — not a power of two).
	lineBase uint64
	haveLine bool

	// ROB ring buffer.
	rob        []robEntry
	robHead    int
	robTail    int
	robCount   int
	loadsOut   int
	storesOut  int
	maxDone    uint64 // completion time of the latest-finishing µop in flight
	lastAlloc  uint64 // completion time of the most recently allocated µop
	inKernel   bool
	deps       [depMask + 1]uint64
	depIdx     uint64
	drainFence bool // serialize: no allocation until ROB empties
}

func (x *context) robEmpty() bool { return x.robCount == 0 }

func (x *context) robPush(e robEntry) {
	x.rob[x.robTail] = e
	x.robTail++
	if x.robTail == len(x.rob) {
		x.robTail = 0
	}
	x.robCount++
}

// CPU is the simulated processor: Geometry.Cores coreBlocks over one
// shared L2 and DRAM channel. The flat ctxs slice indexes every logical
// processor machine-wide (core-major: core i owns contexts
// [i*ContextsPerCore, (i+1)*ContextsPerCore)).
type CPU struct {
	cfg   Config
	now   uint64
	ctxs  []*context
	cores []*coreBlock

	// Hot-path constants hoisted out of the per-µop allocate loop: the
	// partition caps and trace-line geometry never change during a run.
	robCapV, loadCapV, storeCapV int
	dynPart                      bool
	tcLineUops                   uint64

	// Per-cycle scratch state, allocated once: per-context activity and
	// per-core active-context counts (Step), per-core occupancy snapshot
	// buffer (observe.go).
	actBuf  []bool
	nActBuf []int
	occBuf  []int

	// Pipeline-flow audit counters for the invariant layer (see
	// invariants.go): µops delivered by feeds, allocated into the ROB,
	// and retired. Updated only when the `checks` build tag is active.
	ckFed, ckAlloc, ckRetired uint64
	// ckFunc counts µops executed by the functional path (functional.go):
	// they pass through all three flow stages in one step, so they appear
	// in every audit above but never in the retirement histogram, which
	// only detailed cycles advance.
	ckFunc uint64

	// l2 is the chip-wide unified L2 every core's hierarchy drains into;
	// dram the memory channel behind it.
	l2   *cache.Cache
	dram *mem.DRAM

	file counters.File

	// Observability hooks (see observe.go): nextSample is parked at
	// noSample when detached, so the per-cycle cost of disabled
	// observability is one always-false compare.
	obs          *obs.RunObs
	sampleStride uint64
	nextSample   uint64

	// Cancellation hook (see cancel.go): same parked-trigger pattern as
	// observability, polled from Run every cancelStride cycles.
	cancelFlag *atomic.Bool
	nextCancel uint64

	// Functional-mode clock rate in 16.16 fixed-point cycles per µop and
	// its fractional carry (see functional.go, SetFuncCPI).
	funcCPQ  uint64
	funcFrac uint64
}

// New builds a CPU from cfg: Geometry.Cores identical cores — each with
// its own calendar, trace cache, L1D, TLBs and predictor, reconfigured
// for ContextsPerCore SMT contexts — over one shared L2 and DRAM.
func New(cfg Config) *CPU {
	geo := cfg.Geo()
	dram := mem.New(cfg.Mem)
	c := &CPU{
		cfg:  cfg,
		l2:   cache.New(cfg.Hier.L2),
		dram: dram,

		nextSample: noSample,
		nextCancel: noSample,
		funcCPQ:    funcCPQDefault,
	}
	for coreID := 0; coreID < geo.Cores; coreID++ {
		cb := &coreBlock{
			id:   coreID,
			lo:   coreID * geo.ContextsPerCore,
			cal:  newCalendar(cfg.Params.IssueWidth),
			tc:   cache.NewTraceCache(cfg.TC),
			hier: cache.NewHierarchyShared(cfg.Hier, c.l2, dram),
			itlb: tlb.New(cfg.ITLB),
			dtlb: tlb.New(cfg.DTLB),
			pred: branch.NewFor(cfg.Branch, geo.ContextsPerCore),
		}
		cb.itlb.SetContexts(geo.ContextsPerCore)
		cb.dtlb.SetContexts(geo.ContextsPerCore)
		for l := 0; l < geo.ContextsPerCore; l++ {
			x := &context{
				buf: make([]isa.Uop, cfg.Params.FillBatch),
				rob: make([]robEntry, cfg.Params.ROBSize+1),
				cb:  cb,
				lid: l,
			}
			cb.ctxs = append(cb.ctxs, x)
			c.ctxs = append(c.ctxs, x)
		}
		c.cores = append(c.cores, cb)
	}
	c.actBuf = make([]bool, len(c.ctxs))
	c.nActBuf = make([]int, len(c.cores))
	c.occBuf = make([]int, geo.ContextsPerCore)
	c.robCapV = c.robCap()
	c.loadCapV = c.loadCap()
	c.storeCapV = c.storeCap()
	c.dynPart = cfg.Partition == DynamicPartition
	c.tcLineUops = uint64(cfg.TC.LineUops)
	return c
}

// Reset returns the CPU to its just-built state while reusing every
// large allocation: the calendar rings, ROB rings, fetch buffers, cache
// and predictor arrays, and TLB entries. A reset CPU behaves
// bit-identically to a fresh New(cfg) — all cache/TLB/predictor
// contents, DRAM row and bus state, counters and pipeline state are
// cleared. Feeds are detached; reattach with AttachFeed. Observers are
// likewise detached; reattach with AttachObs.
func (c *CPU) Reset() {
	c.now = 0
	c.obs = nil
	c.sampleStride = 0
	c.nextSample = noSample
	c.cancelFlag = nil
	c.nextCancel = noSample
	c.funcCPQ = funcCPQDefault
	c.funcFrac = 0
	c.ckFed, c.ckAlloc, c.ckRetired, c.ckFunc = 0, 0, 0, 0
	for _, cb := range c.cores {
		cb.decodeBusyUntil = 0
		cb.totRob, cb.totLoads, cb.totStores = 0, 0, 0
		for i := range cb.cal.cycle {
			cb.cal.cycle[i] = 0
			cb.cal.count[i] = 0
		}
		cb.tc.Reset()
		cb.hier.Reset() // resets the private L1D and the shared L2 (idempotent)
		cb.itlb.Reset()
		cb.dtlb.Reset()
		cb.pred.Reset()
	}
	for _, x := range c.ctxs {
		buf, rob, cb, lid := x.buf, x.rob, x.cb, x.lid
		*x = context{buf: buf, rob: rob, cb: cb, lid: lid}
	}
	c.dram.Reset()
	c.file.Reset()
}

// AttachFeed binds a µop feed to logical processor ctx (global index).
func (c *CPU) AttachFeed(ctx int, f Feed) {
	if ctx < 0 || ctx >= len(c.ctxs) {
		panic(fmt.Sprintf("core: context %d out of range (geometry %v)", ctx, c.cfg.Geo()))
	}
	c.ctxs[ctx].feed = f
}

// Config returns the processor configuration.
func (c *CPU) Config() Config { return c.cfg }

// Now returns the current cycle.
func (c *CPU) Now() uint64 { return c.now }

// robCap returns the per-context ROB allocation limit under the active
// partition policy, and similarly loadCap/storeCap below. Static
// partitioning divides each core's buffers evenly among its contexts
// (the P4's halving is the two-context case); a single-context core, and
// any core under dynamic partitioning, exposes the full structure.
func (c *CPU) robCap() int {
	if cpc := c.cfg.Geo().ContextsPerCore; cpc > 1 && c.cfg.Partition == StaticPartition {
		return c.cfg.Params.ROBSize / cpc
	}
	return c.cfg.Params.ROBSize
}

func (c *CPU) loadCap() int {
	if cpc := c.cfg.Geo().ContextsPerCore; cpc > 1 && c.cfg.Partition == StaticPartition {
		return c.cfg.Params.LoadBufs / cpc
	}
	return c.cfg.Params.LoadBufs
}

func (c *CPU) storeCap() int {
	if cpc := c.cfg.Geo().ContextsPerCore; cpc > 1 && c.cfg.Partition == StaticPartition {
		return c.cfg.Params.StoreBufs / cpc
	}
	return c.cfg.Params.StoreBufs
}

// active reports whether context i has present or imminent work.
func (c *CPU) active(i int) bool {
	x := c.ctxs[i]
	if x.feed == nil {
		return false
	}
	return x.robCount > 0 || x.bufPos < x.bufLen || x.feed.Runnable(c.now)
}

// done reports whether context i can never produce work again.
func (c *CPU) ctxDone(i int) bool {
	x := c.ctxs[i]
	if x.feed == nil {
		return true
	}
	return x.robCount == 0 && x.bufPos >= x.bufLen && x.feed.Done()
}

// Step advances the machine one cycle. It returns false once every feed
// is done and all pipelines have drained.
func (c *CPU) Step() bool {
	// One pass over the contexts computes done/active/kernel state; the
	// activity flags are reused by the front end below so each feed's
	// Runnable/Done is consulted at most once per cycle.
	act := c.actBuf
	nAct := c.nActBuf
	for k := range nAct {
		nAct[k] = 0
	}
	allDone := true
	nActive := 0
	osCycle := false
	dualThread := false
	for i := range c.ctxs {
		act[i] = false
		if !c.ctxDone(i) {
			allDone = false
		}
		if c.active(i) {
			act[i] = true
			nActive++
			x := c.ctxs[i]
			nAct[x.cb.id]++
			if nAct[x.cb.id] == 2 {
				dualThread = true
			}
			if x.inKernel {
				osCycle = true
			}
		}
	}
	if allDone {
		if check.Enabled && check.On {
			c.verifyDrained()
		}
		return false
	}

	c.file.Inc(counters.Cycles)
	if nActive == 0 {
		// Every thread is blocked; time must still pass for the
		// unblocker (a timer, another context) — but with no timers
		// in the model a fully-blocked machine cannot recover.
		c.file.Inc(counters.CyclesHalted)
		c.now++
		return true
	}
	if dualThread {
		// Some core is genuinely multi-threaded this cycle (two or more
		// of its contexts active) — the paper's "dual-thread mode".
		c.file.Inc(counters.CyclesDT)
	}
	if osCycle {
		c.file.Inc(counters.CyclesOS)
	}

	for _, cb := range c.cores {
		if nAct[cb.id] > 0 {
			c.fetchAllocate(cb, nAct[cb.id], act)
		}
	}
	c.retire()

	if c.now >= c.nextSample {
		c.obsSample()
	}
	if check.Enabled && check.On {
		c.verifyStep()
	}
	c.now++
	return true
}

// fetchAllocate runs one core's merged front end for this cycle: pick the
// context to serve (round-robin over the core's contexts when several are
// active — the P4's alternation generalized to N), pull µops from its
// feed and allocate them into the back end, consulting the trace cache,
// ITLB, predictor and data hierarchy along the way.
func (c *CPU) fetchAllocate(cb *coreBlock, nActCore int, act []bool) {
	n := len(cb.ctxs)
	serve := -1
	if nActCore >= 2 {
		// The front end serves one context per cycle, rotating; if the
		// preferred one is stalled the slot goes to the next in rotation
		// order — SMT's latency hiding in one line.
		pref := int(c.now % uint64(n))
		for k := 0; k < n; k++ {
			i := pref + k
			if i >= n {
				i -= n
			}
			if c.canFetch(cb.ctxs[i], act[cb.lo+i]) {
				serve = i
				break
			}
		}
		if serve < 0 {
			serve = pref // blocked; still charge its stall accounting
		}
	} else {
		for i := range cb.ctxs {
			if act[cb.lo+i] {
				serve = i
				break
			}
		}
	}
	if serve < 0 {
		return
	}
	if got := c.fetchInto(cb.ctxs[serve]); got == 0 {
		c.file.Inc(counters.FetchStallCycles)
	}
}

// canFetch reports whether context x could deliver at least one µop this
// cycle (active, not front-end blocked, decoder free, with buffered or
// producible work).
func (c *CPU) canFetch(x *context, active bool) bool {
	if !active || x.blockedUntil > c.now || x.drainFence || x.cb.decodeBusyUntil > c.now {
		return false
	}
	return true
}

// fetchInto delivers up to FetchUops µops from context x's feed into its
// back end and returns how many were allocated. Structure accesses use
// the context's core-local index: each core's private caches, TLBs and
// predictor see only that core's contexts.
func (c *CPU) fetchInto(x *context) int {
	cb := x.cb
	if x.blockedUntil > c.now || cb.decodeBusyUntil > c.now {
		return 0
	}
	if x.drainFence {
		if !x.robEmpty() {
			// One flavor of fetch stall: the caller charges
			// FetchStallCycles for the same zero-µop cycle, so
			// fence_stall_cycles <= fetch_stall_cycles stays exact.
			c.file.Inc(counters.FenceStallCycles)
			return 0
		}
		x.drainFence = false
	}
	allocated := 0
	p := &c.cfg.Params
	for allocated < p.FetchUops {
		if x.bufPos >= x.bufLen {
			if x.feed == nil {
				break
			}
			n := x.feed.Fill(c.now, x.buf)
			if n == 0 {
				break
			}
			if check.Enabled && check.On {
				check.Assert(n <= len(x.buf), "core",
					"feed overfilled the fetch buffer: %d > %d", n, len(x.buf))
				c.ckFed += uint64(n)
			}
			x.bufPos, x.bufLen = 0, n
		}
		u := &x.buf[x.bufPos]

		// Back-end space checks, against the incrementally-maintained
		// per-core totals under dynamic partitioning and the hoisted
		// per-context caps under static.
		if c.dynPart {
			if cb.totRob >= p.ROBSize {
				c.file.Inc(counters.ROBStallCycles)
				break
			}
		} else if x.robCount >= c.robCapV {
			c.file.Inc(counters.ROBStallCycles)
			break
		}
		if u.Class == isa.Load {
			if c.dynPart {
				if cb.totLoads >= p.LoadBufs {
					c.file.Inc(counters.LSQStallCycles)
					break
				}
			} else if x.loadsOut >= c.loadCapV {
				c.file.Inc(counters.LSQStallCycles)
				break
			}
		}
		if u.Class == isa.Store {
			if c.dynPart {
				if cb.totStores >= p.StoreBufs {
					c.file.Inc(counters.LSQStallCycles)
					break
				}
			} else if x.storesOut >= c.storeCapV {
				c.file.Inc(counters.LSQStallCycles)
				break
			}
		}

		// Trace-cache lookup on line crossings. The window test avoids
		// the µop-index division except when fetch actually leaves the
		// current line (backward jumps underflow and also trigger it).
		if !x.haveLine || u.PC-x.lineBase >= c.tcLineUops {
			hit, lat := cb.tc.Lookup(u.PC, x.lid)
			x.lineBase, x.haveLine = u.PC-u.PC%c.tcLineUops, true
			if !hit {
				// Rebuild the trace from the unified L2 via the
				// ITLB — the paper: "ITLB is responsible for
				// translating instruction addresses ... to access
				// the L2 cache when the machine misses the trace
				// cache."
				if !cb.itlb.Access(u.PC*4, x.lid) {
					lat += c.cfg.ITLB.MissPenalty
				}
				lat += cb.hier.Fill(codeByteAddr(u.PC), x.lid, c.now)
				x.blockedUntil = c.now + uint64(lat)
				// The decode/rebuild portion occupies the core's shared
				// front end, stalling its other contexts too.
				busy := c.now + uint64(c.cfg.TC.MissPenalty)
				if busy > cb.decodeBusyUntil {
					cb.decodeBusyUntil = busy
				}
				break
			}
		}

		// From here the µop is definitely allocated this cycle.
		x.bufPos++
		allocated++
		x.inKernel = u.Kernel

		start := c.now + 1
		if u.DepDist > 0 && uint64(u.DepDist) <= x.depIdx {
			if d := x.deps[(x.depIdx-uint64(u.DepDist))&depMask]; d > start {
				start = d
			}
		}

		lat := 0
		kernelEntry := false
		switch u.Class {
		case isa.Nop:
			lat = 1
		case isa.ALU, isa.Branch, isa.Call, isa.Ret:
			lat = p.ALULat
		case isa.Mul:
			lat = p.MulLat
		case isa.FP:
			lat = p.FPLat
		case isa.FPDiv:
			lat = p.FPDivLat
		case isa.Load, isa.Store:
			if !cb.dtlb.Access(u.Addr, x.lid) {
				lat += c.cfg.DTLB.MissPenalty
			}
			lat += cb.hier.Data(u.Addr, u.Class == isa.Store, x.lid, c.now)
			if u.Class == isa.Load {
				x.loadsOut++
				cb.totLoads++
			} else {
				x.storesOut++
				cb.totStores++
			}
		case isa.Syscall:
			lat = p.SyscallLatency
			kernelEntry = true
		case isa.Fence:
			lat = p.ALULat
			if x.maxDone > start {
				start = x.maxDone
			}
			c.file.Inc(counters.FenceUops)
		}

		start = cb.cal.schedule(start, c.now)
		done := start + uint64(lat)
		if u.Class == isa.Fence || u.Class == isa.Syscall {
			x.drainFence = true
		}
		x.robPush(robEntry{done: done, kernel: u.Kernel || kernelEntry, load: u.Class == isa.Load, store: u.Class == isa.Store})
		cb.totRob++
		if check.Enabled && check.On {
			c.ckAlloc++
			check.Assert(done >= start && start > c.now, "core",
				"µop scheduled backwards: now %d, start %d, done %d", c.now, start, done)
		}
		x.deps[x.depIdx&depMask] = done
		x.depIdx++
		x.lastAlloc = done
		if done > x.maxDone {
			x.maxDone = done
		}

		// Control flow: consult the predictor; a mispredict stalls this
		// context's front end until the branch resolves and the
		// pipeline refills.
		if u.Class.IsCtl() {
			taken := u.Taken || u.Class == isa.Call || u.Class == isa.Ret
			correct, pen := cb.pred.Predict(u.PC, taken, u.Target, u.Indirect, x.lid)
			if !correct {
				x.blockedUntil = done + uint64(pen)
				break
			}
		}
		if u.Class == isa.Syscall {
			break
		}
	}
	return allocated
}

// retire completes up to RetireWidth µops per core, in order within each
// context, and records the Figure-2 retirement histogram. Like the P4,
// each core's retirement serves one logical processor per cycle, rotating,
// when more than one has work in flight; idle contexts' slots pass to the
// busy one. The histogram counts machine-wide retirement per cycle; on a
// multi-core machine cycles retiring more than three µops clamp into the
// Retire3 bucket (the weighted histogram law becomes a lower bound there;
// it stays exact on one core).
func (c *CPU) retire() {
	retired, osRetired := 0, 0
	for _, cb := range c.cores {
		r, os := c.retireCore(cb)
		retired += r
		osRetired += os
	}
	c.file.Add(counters.Instructions, uint64(retired))
	c.file.Add(counters.InstructionsOS, uint64(osRetired))
	switch retired {
	case 0:
		c.file.Inc(counters.Retire0)
	case 1:
		c.file.Inc(counters.Retire1)
	case 2:
		c.file.Inc(counters.Retire2)
	default:
		c.file.Inc(counters.Retire3)
	}
}

// retireCore retires up to RetireWidth µops from one core this cycle.
func (c *CPU) retireCore(cb *coreBlock) (retired, osRetired int) {
	budget := c.cfg.Params.RetireWidth
	n := len(cb.ctxs)
	first := 0
	serve := n
	if n > 1 {
		first = int(c.now % uint64(n))
		busy := 0
		for _, x := range cb.ctxs {
			if x.robCount > 0 {
				busy++
			}
		}
		if busy > 1 {
			// Contention: one context per cycle, the first busy one in
			// rotation order (an idle context's turn passes).
			serve = 1
			for k := 0; k < n; k++ {
				i := first + k
				if i >= n {
					i -= n
				}
				if cb.ctxs[i].robCount > 0 {
					first = i
					break
				}
			}
		}
	}
	for k := 0; k < serve && budget > 0; k++ {
		i := first + k
		if i >= n {
			i -= n
		}
		x := cb.ctxs[i]
		for budget > 0 && x.robCount > 0 && x.rob[x.robHead].done <= c.now {
			e := &x.rob[x.robHead]
			x.robHead++
			if x.robHead == len(x.rob) {
				x.robHead = 0
			}
			x.robCount--
			if e.load {
				x.loadsOut--
				cb.totLoads--
			}
			if e.store {
				x.storesOut--
				cb.totStores--
			}
			if e.kernel {
				osRetired++
			}
			x.retired++
			budget--
			retired++
		}
	}
	cb.totRob -= retired
	if check.Enabled && check.On {
		c.ckRetired += uint64(retired)
		check.Assert(retired <= c.cfg.Params.RetireWidth, "core",
			"core %d retired %d µops in one cycle, width is %d", cb.id, retired, c.cfg.Params.RetireWidth)
	}
	return retired, osRetired
}

// codeByteAddr maps a µop-granular PC into the byte address space used by
// the unified L2, far above any data address so code and data contend in
// L2 without aliasing.
func codeByteAddr(pc uint64) uint64 { return 1<<40 | pc*4 }

// Run steps the machine until all feeds complete or maxCycles elapse
// (0 = no limit). It returns the number of cycles executed by this call
// and an error if the machine wedged with every thread blocked, or
// ErrCanceled once an attached cancellation flag (AttachCancel) is
// observed set.
func (c *CPU) Run(maxCycles uint64) (uint64, error) {
	start := c.now
	haltStreak := uint64(0)
	for {
		if maxCycles > 0 && c.now-start >= maxCycles {
			return c.now - start, nil
		}
		if c.now >= c.nextCancel {
			c.nextCancel = c.now + cancelStride
			if c.cancelFlag.Load() {
				return c.now - start, ErrCanceled
			}
		}
		before := c.file.Get(counters.CyclesHalted)
		if !c.Step() {
			return c.now - start, nil
		}
		if c.file.Get(counters.CyclesHalted) != before {
			haltStreak++
			if haltStreak > 1_000_000 {
				return c.now - start, fmt.Errorf("core: machine halted for 1M cycles with undone feeds (deadlock)")
			}
		} else {
			haltStreak = 0
		}
	}
}

// Counters synchronizes the structure statistics (caches, TLBs, predictor,
// DRAM) into the counter file and returns a pointer to it. Per-core
// private structures are summed across cores; the shared L2 and DRAM are
// read once. The returned file remains owned by the CPU; snapshot it
// (copy the value) to window measurements.
func (c *CPU) Counters() *counters.File {
	var tcA, tcM, l1A, l1M, itA, itM, dtA, dtM, brB, brBM, brMP uint64
	for _, cb := range c.cores {
		tc := cb.tc.Stats()
		tcA += tc.TotalAccesses()
		tcM += tc.TotalMisses()
		l1 := cb.hier.L1D.Stats()
		l1A += l1.TotalAccesses()
		l1M += l1.TotalMisses()
		it := cb.itlb.Stats()
		itA += it.TotalAccesses()
		itM += it.TotalMisses()
		dt := cb.dtlb.Stats()
		dtA += dt.TotalAccesses()
		dtM += dt.TotalMisses()
		br := cb.pred.Stats()
		brB += br.TotalBranches()
		brBM += br.TotalBTBMisses()
		brMP += br.TotalMispredicts()
	}
	c.file.Set(counters.TCAccesses, tcA)
	c.file.Set(counters.TCMisses, tcM)
	c.file.Set(counters.L1DAccesses, l1A)
	c.file.Set(counters.L1DMisses, l1M)
	l2 := c.l2.Stats()
	c.file.Set(counters.L2Accesses, l2.TotalAccesses())
	c.file.Set(counters.L2Misses, l2.TotalMisses())
	c.file.Set(counters.ITLBAccesses, itA)
	c.file.Set(counters.ITLBMisses, itM)
	c.file.Set(counters.DTLBAccesses, dtA)
	c.file.Set(counters.DTLBMisses, dtM)
	c.file.Set(counters.Branches, brB)
	c.file.Set(counters.BTBMisses, brBM)
	c.file.Set(counters.BranchMispredicts, brMP)
	dr := c.dram.Stats()
	c.file.Set(counters.MemReads, dr.Reads)
	c.file.Set(counters.MemWrites, dr.Writes)
	return &c.file
}

// CountersFile exposes the live counter file for components (the OS
// substrate, the JVM) that record their own events (context switches,
// syscalls, GC cycles).
func (c *CPU) CountersFile() *counters.File { return &c.file }

// FlushThreadState invalidates context i's thread-tagged front-end state
// (trace lines, BTB entries, ITLB partition) on its owning core. The OS
// calls it when a different process is switched onto the context;
// same-process thread switches keep the state warm.
func (c *CPU) FlushThreadState(i int) {
	x := c.ctxs[i]
	x.cb.tc.FlushThread(x.lid)
	x.cb.pred.FlushThread(x.lid)
	x.cb.itlb.FlushContext(x.lid)
	x.haveLine = false
}

// RetiredByLP writes each logical processor's cumulative retired-µop
// count (detailed retirement plus functional execution) into out, growing
// it as needed, and returns it. The sampling layer diffs successive
// snapshots to attribute window IPC per context.
func (c *CPU) RetiredByLP(out []uint64) []uint64 {
	if cap(out) < len(c.ctxs) {
		out = make([]uint64, len(c.ctxs))
	}
	out = out[:len(c.ctxs)]
	for i, x := range c.ctxs {
		out[i] = x.retired
	}
	return out
}

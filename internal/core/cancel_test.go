package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"javasmt/internal/check"
)

// TestCancelStopsRun pins the watchdog contract: a set cancellation flag
// stops Run with ErrCanceled within one polling stride of cycles, and
// the machine is left mid-workload (not drained).
func TestCancelStopsRun(t *testing.T) {
	cpu, _, _, rewind := obsWorkload(100_000)
	rewind()
	var flag atomic.Bool
	flag.Store(true)
	cpu.AttachCancel(&flag)
	ran, err := cpu.Run(0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run = %d cycles, err %v; want ErrCanceled", ran, err)
	}
	if ran > cancelStride {
		t.Fatalf("canceled run executed %d cycles, want <= stride %d", ran, cancelStride)
	}
	if cpu.Drained() {
		t.Fatal("machine reports drained after an early cancel")
	}

	// Clearing the flag lets the same machine resume and finish.
	flag.Store(false)
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	if !cpu.Drained() {
		t.Fatal("machine not drained after completing its feeds")
	}
}

// TestCancelMidRun checks that a flag set while the machine is running
// (as the wall-clock watchdog does from its timer goroutine) is noticed:
// run in bounded chunks, set the flag partway, and expect ErrCanceled
// within one stride of the set point.
func TestCancelMidRun(t *testing.T) {
	cpu, _, _, rewind := obsWorkload(100_000)
	rewind()
	var flag atomic.Bool
	cpu.AttachCancel(&flag)
	if _, err := cpu.Run(3 * cancelStride); err != nil {
		t.Fatal(err)
	}
	flag.Store(true)
	ran, err := cpu.Run(0)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran > cancelStride {
		t.Fatalf("cancel noticed after %d cycles, want <= %d", ran, cancelStride)
	}
}

// TestCancelResetDetaches pins the pooling contract: Reset must detach
// the cancellation flag so a pooled machine cannot be killed by a
// previous cell's expired watchdog.
func TestCancelResetDetaches(t *testing.T) {
	cpu, _, _, rewind := obsWorkload(20_000)
	var stale atomic.Bool
	stale.Store(true)
	cpu.AttachCancel(&stale)
	cpu.Reset()
	rewind()
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("reset machine still canceled: %v", err)
	}

	// AttachCancel(nil) is the explicit detach spelling.
	cpu.Reset()
	rewind()
	cpu.AttachCancel(&stale)
	cpu.AttachCancel(nil)
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("AttachCancel(nil) left the flag armed: %v", err)
	}
}

// TestCancelDisabledAllocFree extends the zero-cost acceptance criterion
// to the cancellation hook: with no flag attached, Reset + Run must not
// allocate, exactly like the observability hook's disabled path.
func TestCancelDisabledAllocFree(t *testing.T) {
	if check.Enabled {
		t.Skip("instrumented (-tags checks) build: probes allocate by design")
	}
	cpu, _, _, rewind := obsWorkload(100_000)
	var runErr error
	allocs := testing.AllocsPerRun(3, func() {
		cpu.Reset()
		rewind()
		if _, err := cpu.Run(0); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Fatalf("disabled cancellation path allocates %.0f per run, want 0", allocs)
	}
}

// TestCancelArmedAllocFree pins that even the armed path allocates
// nothing: polling an atomic every stride must not add allocations, so
// watchdog-guarded campaign cells pay no per-cell GC pressure.
func TestCancelArmedAllocFree(t *testing.T) {
	if check.Enabled {
		t.Skip("instrumented (-tags checks) build: probes allocate by design")
	}
	cpu, _, _, rewind := obsWorkload(100_000)
	var flag atomic.Bool
	var runErr error
	allocs := testing.AllocsPerRun(3, func() {
		cpu.Reset()
		rewind()
		cpu.AttachCancel(&flag)
		if _, err := cpu.Run(0); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Fatalf("armed cancellation path allocates %.0f per run, want 0", allocs)
	}
}

package core

import (
	"testing"

	"javasmt/internal/isa"
)

func benchUops() []isa.Uop {
	uops := make([]isa.Uop, 1_000_000)
	for i := range uops {
		c := isa.ALU
		switch i % 5 {
		case 1:
			c = isa.Load
		case 3:
			c = isa.Branch
		}
		uops[i] = isa.Uop{PC: uint64(i % 3000), Class: c, Addr: 0x2000_0000 + uint64(i*64)%(1<<21), DepDist: uint8(i % 3), Taken: i%3 == 0, Target: 5}
	}
	return uops
}

// BenchmarkSimSpeed measures the cycle loop end to end, building a fresh
// machine per run — the shape of the serial harness path.
func BenchmarkSimSpeed(b *testing.B) {
	uops := benchUops()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cpu := New(DefaultConfig(true))
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.Run(0)
	}
	b.SetBytes(2_000_000)
}

// BenchmarkFunctionalSpeed measures the fast functional mode on the exact
// workload of BenchmarkSimSpeed, so the ns/op ratio against that entry in
// BENCH_core.json is the functional-mode speedup (the sampling layer's
// fast-forward rate, DESIGN.md §10). The warm variant keeps every cache,
// TLB and predictor structure exact; the ff variant is the unwarmed
// fast-forward tier that skips structure accesses wholesale.
func BenchmarkFunctionalSpeed(b *testing.B) {
	uops := benchUops()
	for _, mode := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"ff", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cpu := New(DefaultConfig(true))
				cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
				cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
				if _, _, err := cpu.RunFunctional(^uint64(0), mode.warm); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(2_000_000)
		})
	}
}

// BenchmarkGeometryScaling measures the cycle loop at the paper's HT
// shape against a 16-context CMP, every context fed the same stream —
// how much wall-clock one simulated machine-cycle costs as the geometry
// widens. SetBytes scales with the seated contexts, so the MB/s column
// stays 1 byte per µop and comparable across shapes.
func BenchmarkGeometryScaling(b *testing.B) {
	uops := benchUops()
	for _, geo := range []Geometry{{Cores: 1, ContextsPerCore: 2}, {Cores: 4, ContextsPerCore: 4}} {
		b.Run(geo.String(), func(b *testing.B) {
			cfg := DefaultConfig(false)
			cfg.Geometry = geo
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				cpu := New(cfg)
				for i := 0; i < geo.Total(); i++ {
					cpu.AttachFeed(i, &feed{src: &isa.SliceSource{Uops: uops}})
				}
				cpu.Run(0)
			}
			b.SetBytes(int64(geo.Total()) * 1_000_000)
		})
	}
}

// BenchmarkSimSpeedReset measures the same workload on a pooled machine
// reused via Reset — the shape of the parallel pairing engine's hot
// path. The delta in allocs/op against BenchmarkSimSpeed is the setup
// cost the pool amortises away.
func BenchmarkSimSpeedReset(b *testing.B) {
	uops := benchUops()
	cpu := New(DefaultConfig(true))
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cpu.Reset()
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.Run(0)
	}
	b.SetBytes(2_000_000)
}

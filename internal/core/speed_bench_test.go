package core

import (
	"testing"

	"javasmt/internal/isa"
)

func BenchmarkSimSpeed(b *testing.B) {
	uops := make([]isa.Uop, 1_000_000)
	for i := range uops {
		c := isa.ALU
		switch i % 5 {
		case 1:
			c = isa.Load
		case 3:
			c = isa.Branch
		}
		uops[i] = isa.Uop{PC: uint64(i % 3000), Class: c, Addr: 0x2000_0000 + uint64(i*64)%(1<<21), DepDist: uint8(i % 3), Taken: i%3 == 0, Target: 5}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		cpu := New(DefaultConfig(true))
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.Run(0)
	}
	b.SetBytes(2_000_000)
}

package core

import (
	"fmt"

	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// This file is the fast functional execution mode (DESIGN.md §10): the
// machine executes µops at full architectural fidelity — every trace-cache,
// ITLB/DTLB, L1D/L2/DRAM and branch-predictor access happens exactly as it
// would under the detailed engine, in the same program order, keeping all
// stateful structures warm and their statistics exact — but the per-cycle
// fetch/allocate/issue/retire pipeline model is skipped entirely. Structure
// counters and µop counts out of a functional phase are therefore
// bit-identical to detailed execution for the same µop stream; only
// cycle-denominated counters (cycles, retirement histogram, stall and mode
// cycles) are left for the sampling layer to estimate from its detailed
// windows (internal/sampling).

// The functional-mode time base is adjustable: the clock advances
// funcCPQ cycles per executed µop, in 16.16 fixed point. Time must still
// pass during fast-forward — the OS quantum, DRAM bus/row state and
// observability sampling are all keyed to c.now — and the sampling driver
// feeds the live CPI estimate from its detailed windows back into the
// clock (SetFuncCPI) so completion times measured across functional spans
// stay in real-cycle units. The default of one cycle per µop sits in the
// middle of the golden solo IPC range (0.3–2.6).
const (
	funcCPQDefault = 1 << funcCPQShift
	funcCPQShift   = 16
	// funcCPIMax guards against a degenerate window estimate walking the
	// clock far past anything the detailed model can produce.
	funcCPIMax = 16.0
)

// funcCPIMin is the retire-bandwidth bound: the machine cannot sustain
// more than MaxRetirePerCycle (RetireWidth per core, 3 on the paper
// machine) µops per cycle, and the reconstruction's retirement histogram
// needs at least ceil(F/MaxRetirePerCycle) cycles for F µops.
func (c *CPU) funcCPIMin() float64 { return 1.0 / float64(c.cfg.MaxRetirePerCycle()) }

// SetFuncCPI sets the functional-mode clock rate to cpi cycles per µop,
// clamped to the machine's representable IPC band. The sampling driver
// calls it after each detailed window with its pooled CPI estimate.
func (c *CPU) SetFuncCPI(cpi float64) {
	if min := c.funcCPIMin(); cpi < min {
		cpi = min
	}
	if cpi > funcCPIMax {
		cpi = funcCPIMax
	}
	c.funcCPQ = uint64(cpi*float64(funcCPQDefault) + 0.5)
}

// funcChunk is how many µops one context executes before the functional
// loop rotates to the next: the fast-forward analogue of the alternating
// front end. Smaller chunks interleave shared-structure accesses more
// finely under HT at slightly higher loop overhead.
const funcChunk = 64

// drainCap bounds the retire-only drain that precedes a functional phase.
// A full ROB of worst-case DRAM misses drains in tens of thousands of
// cycles; anything past this cap is a wedged pipeline, not a slow one.
const drainCap = 10_000_000

// RunFunctional executes up to maxUops µops functionally across all
// contexts and returns how many were executed, plus how many cycles
// elapsed with every context blocked (the caller folds those into its
// halted-cycle estimate). Returning fewer than maxUops with a nil error
// means every feed completed. Like Run, it returns ErrCanceled when an
// attached cancellation flag is observed set, and an error if the machine
// wedges with every thread blocked.
//
// warm selects the structure-warming discipline. With warm=true every
// trace-cache, TLB, cache-hierarchy and predictor access happens exactly
// as under the detailed engine, so structure statistics stay exact
// (bit-identical for the same µop stream) at the cost of walking those
// structures per µop. With warm=false the µops are executed at purely
// architectural fidelity — program semantics, scheduling, µop and OS-µop
// counts all advance identically, but no stateful structure is touched:
// this is the sampling driver's long fast-forward tier (DESIGN.md §10),
// several times faster again, whose structure statistics the driver
// extrapolates from its measured spans.
//
// Any µops still in flight from a preceding detailed phase are first
// retired by a retire-only drain (honest detailed cycles: the retirement
// histogram and cycle counter advance normally), so the pipeline is empty
// throughout functional execution and a later detailed phase starts from
// a clean front end.
func (c *CPU) RunFunctional(maxUops uint64, warm bool) (executed, halted uint64, err error) {
	if err := c.drainPipeline(); err != nil {
		return 0, 0, err
	}
	haltStreak := uint64(0)
	for executed < maxUops {
		if c.now >= c.nextCancel {
			c.nextCancel = c.now + cancelStride
			if c.cancelFlag.Load() {
				return executed, halted, ErrCanceled
			}
		}
		progressed := false
		allDone := true
		for i := range c.ctxs {
			if executed >= maxUops {
				break
			}
			if c.ctxDone(i) {
				continue
			}
			allDone = false
			x := c.ctxs[i]
			// The pipeline is empty between functional µops, so a
			// serializing fence left by a detailed phase is satisfied.
			x.drainFence = false
			if x.bufPos >= x.bufLen {
				if x.feed == nil || !x.feed.Runnable(c.now) {
					continue
				}
				n := x.feed.Fill(c.now, x.buf)
				if n == 0 {
					continue
				}
				if check.Enabled && check.On {
					check.Assert(n <= len(x.buf), "core",
						"feed overfilled the fetch buffer: %d > %d", n, len(x.buf))
					c.ckFed += uint64(n)
				}
				x.bufPos, x.bufLen = 0, n
			}
			want := uint64(funcChunk)
			if rem := maxUops - executed; rem < want {
				want = rem
			}
			if n := c.funcExec(i, int(want), warm); n > 0 {
				executed += uint64(n)
				// Advance the clock by n µops at the configured CPI,
				// carrying the sub-cycle remainder across chunks.
				adv := uint64(n)*c.funcCPQ + c.funcFrac
				c.now += adv >> funcCPQShift
				c.funcFrac = adv & (funcCPQDefault - 1)
				progressed = true
			}
		}
		if allDone {
			return executed, halted, nil
		}
		if progressed {
			haltStreak = 0
			continue
		}
		// Every thread is blocked; time must still pass for the unblocker,
		// exactly as in Step — and with no timers a fully-blocked machine
		// cannot recover.
		halted++
		c.now++
		haltStreak++
		if haltStreak > 1_000_000 {
			return executed, halted, fmt.Errorf("core: machine halted for 1M cycles with undone feeds (deadlock)")
		}
	}
	return executed, halted, nil
}

// funcExec executes up to max buffered µops of context i functionally and
// returns how many ran. With warm set it mirrors fetchInto's architectural
// access sequence µop for µop — trace-cache lookup on line crossings with
// ITLB + L2 refill on a miss, DTLB + data-hierarchy access per memory µop,
// predictor consultation per control µop — while ignoring every latency.
// Without warm the structure accesses are skipped wholesale and only the
// architectural state (µop counts, kernel mode, dependency completion
// times) advances.
func (c *CPU) funcExec(i, max int, warm bool) int {
	x := c.ctxs[i]
	cb := x.cb
	n := 0
	osUops := uint64(0)
	for n < max && x.bufPos < x.bufLen {
		u := &x.buf[x.bufPos]
		if warm {
			if !x.haveLine || u.PC-x.lineBase >= c.tcLineUops {
				hit, _ := cb.tc.Lookup(u.PC, x.lid)
				x.lineBase, x.haveLine = u.PC-u.PC%c.tcLineUops, true
				if !hit {
					cb.itlb.Access(u.PC*4, x.lid)
					cb.hier.Fill(codeByteAddr(u.PC), x.lid, c.now)
				}
			}
			switch {
			case u.Class.IsMem():
				cb.dtlb.Access(u.Addr, x.lid)
				cb.hier.Data(u.Addr, u.Class == isa.Store, x.lid, c.now)
			case u.Class.IsCtl():
				taken := u.Taken || u.Class == isa.Call || u.Class == isa.Ret
				cb.pred.Predict(u.PC, taken, u.Target, u.Indirect, x.lid)
			}
		}
		x.bufPos++
		x.inKernel = u.Kernel
		// Syscall µops retire in kernel mode even from user code (the
		// detailed path tags them kernelEntry at allocation).
		if u.Kernel || u.Class == isa.Syscall {
			osUops++
		}
		// Fence µops are counted per µop entering the machine, exactly
		// as the detailed engine counts them at allocation, so
		// fence_uops stays bit-identical across simulation modes.
		if u.Class == isa.Fence {
			c.file.Inc(counters.FenceUops)
		}
		// Completion times for the dependency window: a functionally
		// executed producer is already done, so a consumer allocated in a
		// later detailed window sees no stall from it.
		x.deps[x.depIdx&depMask] = c.now
		x.depIdx++
		n++
	}
	if !warm {
		// The trace-line cursor is stale after a span that never consulted
		// the trace cache; force the next warm or detailed µop to re-look
		// up its line so behavior after the span is deterministic.
		x.haveLine = false
	}
	x.retired += uint64(n)
	c.file.Add(counters.Instructions, uint64(n))
	c.file.Add(counters.InstructionsOS, osUops)
	if check.Enabled && check.On {
		c.ckAlloc += uint64(n)
		c.ckRetired += uint64(n)
		c.ckFunc += uint64(n)
	}
	return n
}

// inFlight returns the machine-wide ROB occupancy across all cores.
func (c *CPU) inFlight() int {
	n := 0
	for _, cb := range c.cores {
		n += cb.totRob
	}
	return n
}

// drainPipeline retires every in-flight µop left by a preceding detailed
// phase, charging honest detailed cycles (retirement histogram included)
// but fetching nothing new.
func (c *CPU) drainPipeline() error {
	for spent := 0; c.inFlight() > 0; spent++ {
		if spent > drainCap {
			return fmt.Errorf("core: pipeline failed to drain within %d cycles", drainCap)
		}
		c.file.Inc(counters.Cycles)
		c.retire()
		if check.Enabled && check.On {
			c.verifyStep()
		}
		c.now++
	}
	return nil
}

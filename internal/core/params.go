// Package core implements the SMT (Hyper-Threading) execution engine — the
// simulated stand-in for the paper's 2.8 GHz Pentium 4.
//
// The model is trace-driven and cycle-level: workload front ends (the JVM,
// the OS substrate) supply the resolved µop stream of each logical
// processor, and the core replays it against timing models of the front
// end (trace cache, ITLB, branch predictor/BTB), the out-of-order window
// (ROB and load/store buffers, statically partitioned under HT exactly as
// on the P4), the execution ports (an issue-bandwidth calendar plus
// dependency chains carried on the µops), the data hierarchy (L1D/L2/DRAM)
// and in-order retirement (up to 3 µops per cycle).
//
// Everything the paper measures falls out of this structure:
//
//   - the static-partition tax on single-threaded programs (§4.3) comes
//     from halving ROB/LSQ partitions whenever HT is enabled;
//   - trace-cache/L1D degradation vs. L2/constructive improvement under
//     HT (§4.1) comes from the per-structure sharing disciplines;
//   - the retirement profile (Fig. 2) is counted directly at retire.
package core

import (
	"fmt"

	"javasmt/internal/branch"
	"javasmt/internal/cache"
	"javasmt/internal/mem"
	"javasmt/internal/tlb"
)

// Geometry describes the machine's hardware-thread topology: how many
// physical cores the chip has and how many SMT contexts (logical
// processors) each core exposes. The paper machine is Geometry{1, 2} with
// Hyper-Threading on and Geometry{1, 1} with it off; a Niagara-class chip
// is Geometry{8, 4} or beyond. Every core carries its own private
// front-end and level-1 state (trace cache, L1D, ITLB, DTLB, branch
// predictor) and its own issue/retire bandwidth; all cores share one L2
// and one DRAM channel behind it.
type Geometry struct {
	// Cores is the number of physical cores.
	Cores int
	// ContextsPerCore is the number of SMT contexts per core. Contexts
	// on the same core share its pipeline and private caches exactly as
	// the two HT contexts share the paper's P4.
	ContextsPerCore int
}

// Total returns the number of logical processors the geometry exposes.
func (g Geometry) Total() int { return g.Cores * g.ContextsPerCore }

// String renders the geometry as "CxN", e.g. "4x4".
func (g Geometry) String() string { return fmt.Sprintf("%dx%d", g.Cores, g.ContextsPerCore) }

// maxContextsPerCore bounds the per-core SMT width: the packed cache-line
// key reserves four owner bits (cache.go), so a core can expose at most
// 16 contexts. Machines larger than that scale by adding cores.
const maxContextsPerCore = 16

// PartitionPolicy selects how the major pipeline buffers are divided
// between the two logical processors when Hyper-Threading is on.
type PartitionPolicy int

const (
	// StaticPartition is the Pentium 4 design evaluated by the paper:
	// the ROB, load buffers and store buffers are split in half the
	// moment HT is enabled, whether or not a second thread exists.
	StaticPartition PartitionPolicy = iota
	// DynamicPartition is the alternative the paper suggests in §4.3:
	// both contexts allocate from one shared pool, so a lone thread can
	// use the whole machine.
	DynamicPartition
)

// String returns the policy name.
func (p PartitionPolicy) String() string {
	if p == DynamicPartition {
		return "dynamic"
	}
	return "static"
}

// Params sizes the execution core.
type Params struct {
	// ROBSize is the reorder-buffer capacity in µops (126 on the P4).
	ROBSize int
	// LoadBufs and StoreBufs bound outstanding memory µops (48/24).
	LoadBufs  int
	StoreBufs int
	// FetchUops is the trace-cache delivery bandwidth per cycle (3).
	// Under HT the front end serves one logical processor per cycle,
	// alternating — so each context sees half the fetch bandwidth when
	// both are active.
	FetchUops int
	// IssueWidth bounds µops beginning execution per cycle. The P4 can
	// theoretically dispatch 6 µops/cycle, but its sustained rate on
	// integer code is far lower (narrow trace-cache delivery, replay,
	// port conflicts); the default models the sustained rate.
	IssueWidth int
	// RetireWidth bounds retirement per cycle across both contexts (3).
	RetireWidth int
	// ALULat, MulLat, FPLat, FPDivLat are execution latencies by class.
	ALULat, MulLat, FPLat, FPDivLat int
	// SyscallLatency is the kernel-entry drain cost in cycles.
	SyscallLatency int
	// FillBatch is how many µops the core requests from a Feed at a
	// time; it bounds OS preemption granularity.
	FillBatch int
}

// DefaultParams returns the paper machine's core parameters.
func DefaultParams() Params {
	return Params{
		ROBSize:        126,
		LoadBufs:       48,
		StoreBufs:      24,
		FetchUops:      3,
		IssueWidth:     3,
		RetireWidth:    3,
		ALULat:         2,
		MulLat:         14,
		FPLat:          9,
		FPDivLat:       44,
		SyscallLatency: 60,
		FillBatch:      128,
	}
}

// Config assembles a whole processor.
type Config struct {
	// HT enables the second logical processor (and, under
	// StaticPartition, halves the buffer partitions). It is the legacy
	// spelling of the paper machine's two geometries and is consulted
	// only when Geometry is zero: HT=false ≡ Geometry{1,1}, HT=true ≡
	// Geometry{1,2}.
	HT bool
	// Geometry, when non-zero, selects the machine topology explicitly
	// and overrides HT. The zero value defers to HT so every existing
	// configuration (and its golden counters) is untouched.
	Geometry Geometry
	// Partition selects static (P4) or dynamic (ablation) partitioning.
	// Static divides the ROB and load/store buffers evenly among a
	// core's contexts (the P4 halves them at two); dynamic shares the
	// full pool per core.
	Partition PartitionPolicy
	Params    Params
	TC        cache.TraceCacheConfig
	Hier      cache.HierarchyConfig
	ITLB      tlb.Config
	DTLB      tlb.Config
	Branch    branch.Config
	Mem       mem.Config
}

// DefaultConfig returns the full paper-machine configuration with
// Hyper-Threading set as requested.
func DefaultConfig(ht bool) Config {
	return Config{
		HT:        ht,
		Partition: StaticPartition,
		Params:    DefaultParams(),
		TC:        cache.DefaultTraceCacheConfig(),
		Hier:      cache.DefaultHierarchyConfig(),
		ITLB:      tlb.DefaultITLBConfig(),
		DTLB:      tlb.DefaultDTLBConfig(),
		Branch:    branch.DefaultConfig(),
		Mem:       mem.DefaultConfig(),
	}
}

// Geo returns the effective machine geometry: the explicit Geometry when
// set, otherwise the legacy HT mapping (HT on ≡ {1,2}, off ≡ {1,1}).
func (c Config) Geo() Geometry {
	if c.Geometry.Cores != 0 || c.Geometry.ContextsPerCore != 0 {
		return c.Geometry
	}
	if c.HT {
		return Geometry{Cores: 1, ContextsPerCore: 2}
	}
	return Geometry{Cores: 1, ContextsPerCore: 1}
}

// NumContexts returns how many logical processors the config exposes.
func (c Config) NumContexts() int { return c.Geo().Total() }

// MaxRetirePerCycle is the machine-wide retirement bandwidth: RetireWidth
// per core. The sampled-mode reconstruction uses it to bound how few
// cycles a functional span can plausibly have taken.
func (c Config) MaxRetirePerCycle() int { return c.Params.RetireWidth * c.Geo().Cores }

// Validate rejects configurations that the constructors would panic on or
// that could not make forward progress (deadlocking the simulation). It
// mirrors every constructor precondition in internal/cache, internal/tlb
// and internal/branch plus the core's own sizing constraints, so a
// Validate-clean config is safe to hand to New.
func (c Config) Validate() error {
	g := c.Geometry
	if (g.Cores == 0) != (g.ContextsPerCore == 0) {
		return fmt.Errorf("core: geometry %v sets only one dimension (both or neither must be zero)", g)
	}
	g = c.Geo()
	if g.Cores < 1 || g.ContextsPerCore < 1 {
		return fmt.Errorf("core: geometry %v needs at least one core and one context per core", g)
	}
	if g.ContextsPerCore > maxContextsPerCore {
		return fmt.Errorf("core: geometry %v exceeds %d contexts per core", g, maxContextsPerCore)
	}
	p := c.Params
	if p.ROBSize < 1 || p.LoadBufs < 1 || p.StoreBufs < 1 {
		return fmt.Errorf("core: ROB/load/store buffers must be positive (%d/%d/%d)",
			p.ROBSize, p.LoadBufs, p.StoreBufs)
	}
	if c.Partition == StaticPartition && g.ContextsPerCore > 1 {
		if p.ROBSize/g.ContextsPerCore < 1 || p.LoadBufs/g.ContextsPerCore < 1 ||
			p.StoreBufs/g.ContextsPerCore < 1 {
			return fmt.Errorf("core: %d contexts exceed the static partition capacity of ROB/load/store %d/%d/%d",
				g.ContextsPerCore, p.ROBSize, p.LoadBufs, p.StoreBufs)
		}
	}
	if p.FetchUops < 1 || p.IssueWidth < 1 || p.RetireWidth < 1 {
		return fmt.Errorf("core: fetch/issue/retire widths must be positive (%d/%d/%d)",
			p.FetchUops, p.IssueWidth, p.RetireWidth)
	}
	if p.FillBatch < 1 {
		return fmt.Errorf("core: FillBatch must be positive (%d)", p.FillBatch)
	}
	if p.ALULat < 0 || p.MulLat < 0 || p.FPLat < 0 || p.FPDivLat < 0 || p.SyscallLatency < 0 {
		return fmt.Errorf("core: execution latencies must be non-negative")
	}
	if c.TC.LineUops < 1 || c.TC.Assoc < 1 {
		return fmt.Errorf("core: trace cache needs positive LineUops and Assoc (%d/%d)",
			c.TC.LineUops, c.TC.Assoc)
	}
	if err := validateCacheGeom("TC", c.TC.CapacityUops/c.TC.LineUops, 1, c.TC.Assoc); err != nil {
		return err
	}
	if err := validateCacheGeom("L1D", c.Hier.L1D.Size, c.Hier.L1D.LineSize, c.Hier.L1D.Assoc); err != nil {
		return err
	}
	if err := validateCacheGeom("L2", c.Hier.L2.Size, c.Hier.L2.LineSize, c.Hier.L2.Assoc); err != nil {
		return err
	}
	if err := validateTLBGeom(c.ITLB, g.ContextsPerCore); err != nil {
		return err
	}
	if err := validateTLBGeom(c.DTLB, g.ContextsPerCore); err != nil {
		return err
	}
	b := c.Branch
	if b.BTBAssoc < 1 || b.BTBEntries < 1 {
		return fmt.Errorf("core: BTB needs positive entries and associativity (%d/%d)",
			b.BTBEntries, b.BTBAssoc)
	}
	if sets := b.BTBEntries / b.BTBAssoc; sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("core: BTB sets must be a positive power of two (%d entries / %d ways)",
			b.BTBEntries, b.BTBAssoc)
	}
	if b.HistoryBits < 1 || b.HistoryBits > 30 {
		return fmt.Errorf("core: branch history bits out of range (%d)", b.HistoryBits)
	}
	if c.Mem.Banks < 1 {
		return fmt.Errorf("core: DRAM needs at least one bank (%d)", c.Mem.Banks)
	}
	return nil
}

func validateCacheGeom(name string, size, lineSize, assoc int) error {
	if lineSize < 1 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("core: %s line size must be a positive power of two (%d)", name, lineSize)
	}
	if assoc < 1 {
		return fmt.Errorf("core: %s associativity must be positive (%d)", name, assoc)
	}
	sets := size / (lineSize * assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("core: %s sets must be a positive power of two (size %d, line %d, %d ways)",
			name, size, lineSize, assoc)
	}
	return nil
}

func validateTLBGeom(cfg tlb.Config, contextsPerCore int) error {
	if cfg.Assoc < 1 || cfg.Entries < 1 {
		return fmt.Errorf("core: %s needs positive entries and associativity (%d/%d)",
			cfg.Name, cfg.Entries, cfg.Assoc)
	}
	if cfg.Entries%cfg.Assoc != 0 {
		return fmt.Errorf("core: %s entries %d not divisible by associativity %d",
			cfg.Name, cfg.Entries, cfg.Assoc)
	}
	if cfg.PageSize < 1 || cfg.PageSize&(cfg.PageSize-1) != 0 {
		return fmt.Errorf("core: %s page size must be a positive power of two (%d)", cfg.Name, cfg.PageSize)
	}
	entries := cfg.Entries
	if cfg.Partitioned && contextsPerCore > 1 {
		entries /= contextsPerCore
	}
	if sets := entries / cfg.Assoc; sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("core: %s sets must be a positive power of two (%d entries / %d ways / %d contexts)",
			cfg.Name, cfg.Entries, cfg.Assoc, contextsPerCore)
	}
	return nil
}

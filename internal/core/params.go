// Package core implements the SMT (Hyper-Threading) execution engine — the
// simulated stand-in for the paper's 2.8 GHz Pentium 4.
//
// The model is trace-driven and cycle-level: workload front ends (the JVM,
// the OS substrate) supply the resolved µop stream of each logical
// processor, and the core replays it against timing models of the front
// end (trace cache, ITLB, branch predictor/BTB), the out-of-order window
// (ROB and load/store buffers, statically partitioned under HT exactly as
// on the P4), the execution ports (an issue-bandwidth calendar plus
// dependency chains carried on the µops), the data hierarchy (L1D/L2/DRAM)
// and in-order retirement (up to 3 µops per cycle).
//
// Everything the paper measures falls out of this structure:
//
//   - the static-partition tax on single-threaded programs (§4.3) comes
//     from halving ROB/LSQ partitions whenever HT is enabled;
//   - trace-cache/L1D degradation vs. L2/constructive improvement under
//     HT (§4.1) comes from the per-structure sharing disciplines;
//   - the retirement profile (Fig. 2) is counted directly at retire.
package core

import (
	"javasmt/internal/branch"
	"javasmt/internal/cache"
	"javasmt/internal/mem"
	"javasmt/internal/tlb"
)

// PartitionPolicy selects how the major pipeline buffers are divided
// between the two logical processors when Hyper-Threading is on.
type PartitionPolicy int

const (
	// StaticPartition is the Pentium 4 design evaluated by the paper:
	// the ROB, load buffers and store buffers are split in half the
	// moment HT is enabled, whether or not a second thread exists.
	StaticPartition PartitionPolicy = iota
	// DynamicPartition is the alternative the paper suggests in §4.3:
	// both contexts allocate from one shared pool, so a lone thread can
	// use the whole machine.
	DynamicPartition
)

// String returns the policy name.
func (p PartitionPolicy) String() string {
	if p == DynamicPartition {
		return "dynamic"
	}
	return "static"
}

// Params sizes the execution core.
type Params struct {
	// ROBSize is the reorder-buffer capacity in µops (126 on the P4).
	ROBSize int
	// LoadBufs and StoreBufs bound outstanding memory µops (48/24).
	LoadBufs  int
	StoreBufs int
	// FetchUops is the trace-cache delivery bandwidth per cycle (3).
	// Under HT the front end serves one logical processor per cycle,
	// alternating — so each context sees half the fetch bandwidth when
	// both are active.
	FetchUops int
	// IssueWidth bounds µops beginning execution per cycle. The P4 can
	// theoretically dispatch 6 µops/cycle, but its sustained rate on
	// integer code is far lower (narrow trace-cache delivery, replay,
	// port conflicts); the default models the sustained rate.
	IssueWidth int
	// RetireWidth bounds retirement per cycle across both contexts (3).
	RetireWidth int
	// ALULat, MulLat, FPLat, FPDivLat are execution latencies by class.
	ALULat, MulLat, FPLat, FPDivLat int
	// SyscallLatency is the kernel-entry drain cost in cycles.
	SyscallLatency int
	// FillBatch is how many µops the core requests from a Feed at a
	// time; it bounds OS preemption granularity.
	FillBatch int
}

// DefaultParams returns the paper machine's core parameters.
func DefaultParams() Params {
	return Params{
		ROBSize:        126,
		LoadBufs:       48,
		StoreBufs:      24,
		FetchUops:      3,
		IssueWidth:     3,
		RetireWidth:    3,
		ALULat:         2,
		MulLat:         14,
		FPLat:          9,
		FPDivLat:       44,
		SyscallLatency: 60,
		FillBatch:      128,
	}
}

// Config assembles a whole processor.
type Config struct {
	// HT enables the second logical processor (and, under
	// StaticPartition, halves the buffer partitions).
	HT bool
	// Partition selects static (P4) or dynamic (ablation) partitioning.
	Partition PartitionPolicy
	Params    Params
	TC        cache.TraceCacheConfig
	Hier      cache.HierarchyConfig
	ITLB      tlb.Config
	DTLB      tlb.Config
	Branch    branch.Config
	Mem       mem.Config
}

// DefaultConfig returns the full paper-machine configuration with
// Hyper-Threading set as requested.
func DefaultConfig(ht bool) Config {
	return Config{
		HT:        ht,
		Partition: StaticPartition,
		Params:    DefaultParams(),
		TC:        cache.DefaultTraceCacheConfig(),
		Hier:      cache.DefaultHierarchyConfig(),
		ITLB:      tlb.DefaultITLBConfig(),
		DTLB:      tlb.DefaultDTLBConfig(),
		Branch:    branch.DefaultConfig(),
		Mem:       mem.DefaultConfig(),
	}
}

// NumContexts returns how many logical processors the config exposes.
func (c Config) NumContexts() int {
	if c.HT {
		return 2
	}
	return 1
}

package core

import (
	"testing"

	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// feed adapts an isa.Source to the core.Feed interface for tests.
type feed struct {
	src  isa.Source
	done bool
}

func (f *feed) Fill(_ uint64, buf []isa.Uop) int {
	if f.done {
		return 0
	}
	n, done := f.src.Fill(buf)
	if done {
		f.done = true
	}
	return n
}
func (f *feed) Runnable(uint64) bool { return !f.done }
func (f *feed) Done() bool           { return f.done }

func aluStream(n int, dep uint8) []isa.Uop {
	uops := make([]isa.Uop, n)
	for i := range uops {
		uops[i] = isa.Uop{PC: uint64(i % 600), Class: isa.ALU, DepDist: dep}
	}
	return uops
}

func loadStream(n int, stride, span uint64) []isa.Uop {
	uops := make([]isa.Uop, n)
	for i := range uops {
		uops[i] = isa.Uop{
			PC:    uint64(i % 60),
			Class: isa.Load,
			Addr:  0x2000_0000 + (uint64(i)*stride)%span,
		}
	}
	return uops
}

func runStream(t *testing.T, cfg Config, uops []isa.Uop) (*CPU, uint64) {
	t.Helper()
	cpu := New(cfg)
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
	cycles, err := cpu.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cpu, cycles
}

func TestAllUopsRetire(t *testing.T) {
	cpu, cycles := runStream(t, DefaultConfig(false), aluStream(10_000, 0))
	f := cpu.Counters()
	if got := f.Get(counters.Instructions); got != 10_000 {
		t.Fatalf("retired %d µops, want 10000", got)
	}
	if cycles == 0 || f.Get(counters.Cycles) != cycles {
		t.Fatalf("cycle accounting mismatch: run=%d file=%d", cycles, f.Get(counters.Cycles))
	}
	if ipc := f.IPC(); ipc <= 0 || ipc > float64(DefaultParams().RetireWidth) {
		t.Fatalf("IPC %v out of (0,%d]", ipc, DefaultParams().RetireWidth)
	}
}

func TestRetirementHistogramSumsToCycles(t *testing.T) {
	cpu, cycles := runStream(t, DefaultConfig(false), aluStream(5_000, 1))
	f := cpu.Counters()
	sum := f.Get(counters.Retire0) + f.Get(counters.Retire1) + f.Get(counters.Retire2) + f.Get(counters.Retire3)
	if sum != cycles {
		t.Fatalf("histogram cycles %d != total cycles %d", sum, cycles)
	}
	// Weighted retirement must equal instructions... only if nothing
	// retires past width 3, which the histogram guarantees by clamping;
	// with RetireWidth=3 the "default" bucket is exactly 3.
	w := f.Get(counters.Retire1) + 2*f.Get(counters.Retire2) + 3*f.Get(counters.Retire3)
	if w != f.Get(counters.Instructions) {
		t.Fatalf("weighted histogram %d != instructions %d", w, f.Get(counters.Instructions))
	}
}

func TestDependencyChainsLowerIPC(t *testing.T) {
	_, ilp := runStream(t, DefaultConfig(false), aluStream(20_000, 0))
	_, serial := runStream(t, DefaultConfig(false), aluStream(20_000, 1))
	if serial <= ilp {
		t.Fatalf("serial chain (%d cycles) should be slower than independent stream (%d)", serial, ilp)
	}
}

func TestStaticPartitionTaxOnSingleThread(t *testing.T) {
	// A memory-level-parallelism-hungry stream: independent loads over a
	// >L2 span. Halving the load buffers and ROB (HT on, static) must
	// slow it down even though no second thread exists — Figure 10.
	loads := loadStream(30_000, 64, 8<<20)
	_, off := runStream(t, DefaultConfig(false), loads)
	_, on := runStream(t, DefaultConfig(true), loads)
	if float64(on) < float64(off)*1.02 {
		t.Fatalf("HT-on single thread (%d cycles) should pay a partition tax vs HT-off (%d)", on, off)
	}
	// The paper's proposed fix: dynamic partitioning removes the tax.
	dyn := DefaultConfig(true)
	dyn.Partition = DynamicPartition
	_, dynCycles := runStream(t, dyn, loads)
	if float64(dynCycles) > float64(off)*1.05 {
		t.Fatalf("dynamic partition (%d cycles) should be within 5%% of HT-off (%d)", dynCycles, off)
	}
}

func TestSMTThroughputGainOnStallHeavyPair(t *testing.T) {
	// Two independent stall-heavy threads (serial FP chains) sharing the
	// core should finish in well under 2x the solo time.
	mk := func() []isa.Uop {
		uops := make([]isa.Uop, 20_000)
		for i := range uops {
			uops[i] = isa.Uop{PC: uint64(i % 120), Class: isa.FP, DepDist: 1}
		}
		return uops
	}
	_, solo := runStream(t, DefaultConfig(false), mk())

	cpu := New(DefaultConfig(true))
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mk()}})
	cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: mk()}})
	both, err := cpu.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(both) > 1.5*float64(solo) {
		t.Fatalf("SMT pair took %d cycles vs solo %d; expected clear latency hiding", both, solo)
	}
	f := cpu.Counters()
	if f.Get(counters.CyclesDT) == 0 {
		t.Fatal("dual-thread cycles should be counted when both contexts are active")
	}
	if f.Get(counters.Instructions) != 40_000 {
		t.Fatalf("retired %d, want 40000", f.Get(counters.Instructions))
	}
}

func TestDTModeZeroWhenSingleThread(t *testing.T) {
	cpu, _ := runStream(t, DefaultConfig(true), aluStream(5_000, 0))
	if dt := cpu.Counters().Get(counters.CyclesDT); dt != 0 {
		t.Fatalf("CyclesDT = %d for a lone thread, want 0", dt)
	}
}

func TestSyscallCountsOSCycles(t *testing.T) {
	uops := aluStream(2_000, 0)
	uops = append(uops, isa.Uop{PC: 900, Class: isa.Syscall})
	for i := 0; i < 500; i++ {
		uops = append(uops, isa.Uop{PC: 1 << 30, Class: isa.ALU, Kernel: true})
	}
	uops = append(uops, aluStream(2_000, 0)...)
	cpu, _ := runStream(t, DefaultConfig(false), uops)
	f := cpu.Counters()
	if f.Get(counters.CyclesOS) == 0 {
		t.Fatal("kernel µops should produce OS cycles")
	}
	if f.Get(counters.InstructionsOS) < 500 {
		t.Fatalf("kernel retirements = %d, want >= 500", f.Get(counters.InstructionsOS))
	}
	if f.OSCyclePercent() >= 100 {
		t.Fatalf("OS%% = %v, want < 100", f.OSCyclePercent())
	}
}

func TestFenceSerializes(t *testing.T) {
	// long FP op, then fence, then dependent-free ALU: the ALU µop must
	// not complete before the FP op does.
	uops := []isa.Uop{
		{PC: 0, Class: isa.FPDiv},
		{PC: 1, Class: isa.Fence},
		{PC: 2, Class: isa.ALU},
	}
	cpu, cycles := runStream(t, DefaultConfig(false), uops)
	minCycles := uint64(DefaultParams().FPDivLat)
	if cycles <= minCycles {
		t.Fatalf("fenced sequence finished in %d cycles, want > %d", cycles, minCycles)
	}
	if cpu.Counters().Get(counters.Instructions) != 3 {
		t.Fatal("all µops must retire")
	}
}

func TestMispredictsSlowExecution(t *testing.T) {
	// Alternating taken/not-taken branch with a short period is
	// predictable; a pseudo-random direction stream is not.
	mk := func(pattern func(i int) bool) []isa.Uop {
		uops := make([]isa.Uop, 20_000)
		for i := range uops {
			uops[i] = isa.Uop{PC: uint64(i%7) * 3, Class: isa.Branch, Taken: pattern(i), Target: 100}
		}
		return uops
	}
	_, predictable := runStream(t, DefaultConfig(false), mk(func(i int) bool { return true }))
	lcg := uint32(12345)
	_, random := runStream(t, DefaultConfig(false), mk(func(i int) bool {
		lcg = lcg*1664525 + 1013904223
		return lcg&0x10000 != 0
	}))
	if random <= predictable {
		t.Fatalf("random branches (%d cycles) should be slower than monomorphic (%d)", random, predictable)
	}
	cpu, _ := runStream(t, DefaultConfig(false), mk(func(i int) bool { return true }))
	if cpu.Counters().Get(counters.Branches) != 20_000 {
		t.Fatal("all branches should be counted")
	}
}

func TestCacheMissesSlowLoads(t *testing.T) {
	_, fits := runStream(t, DefaultConfig(false), loadStream(20_000, 64, 4<<10))
	_, thrash := runStream(t, DefaultConfig(false), loadStream(20_000, 64, 16<<20))
	if thrash <= fits {
		t.Fatalf("L2-thrashing loads (%d cycles) should be slower than L1-resident (%d)", thrash, fits)
	}
}

func TestAttachFeedOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cpu := New(DefaultConfig(false))
	cpu.AttachFeed(1, &feed{})
}

func TestMaxCyclesBound(t *testing.T) {
	cpu := New(DefaultConfig(false))
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: aluStream(1_000_000, 1)}})
	n, err := cpu.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("Run(500) executed %d cycles", n)
	}
}

func TestCountersStructureSync(t *testing.T) {
	cpu, _ := runStream(t, DefaultConfig(false), loadStream(5_000, 64, 1<<20))
	f := cpu.Counters()
	if f.Get(counters.L1DAccesses) == 0 || f.Get(counters.L1DMisses) == 0 {
		t.Fatal("L1D stats should be synced")
	}
	if f.Get(counters.TCAccesses) == 0 {
		t.Fatal("TC stats should be synced")
	}
	if f.Get(counters.MemReads) == 0 {
		t.Fatal("DRAM stats should be synced")
	}
	if f.Get(counters.L1DMisses) > f.Get(counters.L1DAccesses) {
		t.Fatal("misses cannot exceed accesses")
	}
}

func TestDeadlockDetection(t *testing.T) {
	cpu := New(DefaultConfig(false))
	blocked := &blockedFeed{}
	cpu.AttachFeed(0, blocked)
	if _, err := cpu.Run(0); err == nil {
		t.Fatal("a permanently blocked feed must be reported as a deadlock")
	}
}

type blockedFeed struct{}

func (b *blockedFeed) Fill(uint64, []isa.Uop) int { return 0 }
func (b *blockedFeed) Runnable(uint64) bool       { return false }
func (b *blockedFeed) Done() bool                 { return false }

package core

import (
	"testing"

	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
	"javasmt/internal/obs"
)

// obsWorkload builds a machine plus reusable feeds so repeated runs do
// no per-run allocation of their own.
func obsWorkload(n int) (*CPU, *feed, *feed, func()) {
	uops := benchUops()[:n]
	cpu := New(DefaultConfig(true))
	f0 := &feed{src: &isa.SliceSource{Uops: uops}}
	f1 := &feed{src: &isa.SliceSource{Uops: uops}}
	rewind := func() {
		f0.done, f1.done = false, false
		f0.src.(*isa.SliceSource).Reset()
		f1.src.(*isa.SliceSource).Reset()
		cpu.AttachFeed(0, f0)
		cpu.AttachFeed(1, f1)
	}
	return cpu, f0, f1, rewind
}

// TestObsDisabledAllocFree pins the acceptance criterion that disabled
// observability adds zero allocations to a simulation: with no observer
// attached, Reset + Run on a pooled machine must not allocate at all.
// scripts/verify.sh runs this test as the disabled-path allocation gate.
func TestObsDisabledAllocFree(t *testing.T) {
	if check.Enabled {
		t.Skip("instrumented (-tags checks) build: probes allocate by design")
	}
	cpu, _, _, rewind := obsWorkload(100_000)
	var runErr error
	allocs := testing.AllocsPerRun(3, func() {
		cpu.Reset()
		rewind()
		if _, err := cpu.Run(0); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.0f per run, want 0", allocs)
	}
}

// TestObsSamplingStride checks that an attached observer samples every
// stride cycles and that FinishObs lands the final sample exactly at the
// machine's last cycle with the end-of-run counter state.
func TestObsSamplingStride(t *testing.T) {
	cpu, _, _, rewind := obsWorkload(50_000)
	rewind()
	const stride = 5_000
	sink := obs.New(obs.Config{Metrics: true, Stride: stride})
	cpu.AttachObs(sink.Run("workload"), 0)
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	cpu.FinishObs()

	series := sink.Series("workload")
	if series == nil || len(series.Samples) < 3 {
		t.Fatalf("got %d samples, want several at stride %d", len(series.Samples), stride)
	}
	for i := 1; i < len(series.Samples); i++ {
		delta := series.Samples[i].Cycle - series.Samples[i-1].Cycle
		if delta == 0 {
			t.Fatalf("duplicate sample cycle %d", series.Samples[i].Cycle)
		}
		if i < len(series.Samples)-1 && delta < stride {
			t.Fatalf("samples %d cycles apart, want >= stride %d", delta, stride)
		}
	}
	final := series.Final()
	if final.Cycle != cpu.Now() {
		t.Errorf("final sample at cycle %d, machine stopped at %d", final.Cycle, cpu.Now())
	}
	f := cpu.Counters()
	if final.Cum.Cycles != f.Get(counters.Cycles) {
		t.Errorf("final cumulative cycles %d != counter file %d", final.Cum.Cycles, f.Get(counters.Cycles))
	}
	if final.Cum.Uops == 0 {
		t.Error("final sample carries no retired µops")
	}
	if final.Core.TCLines[0]+final.Core.TCLines[1] == 0 {
		t.Error("trace-cache occupancy empty after a 100k-µop run")
	}
}

// TestObsResetDetaches pins the pooling contract: Reset must detach the
// observer so a reused machine cannot leak samples into the previous
// experiment's series.
func TestObsResetDetaches(t *testing.T) {
	cpu, _, _, rewind := obsWorkload(20_000)
	sink := obs.New(obs.Config{Metrics: true, Stride: 1_000})
	cpu.AttachObs(sink.Run("first"), 0)
	cpu.Reset()
	if cpu.Obs() != nil {
		t.Fatal("Reset left the observer attached")
	}
	rewind()
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	cpu.FinishObs() // must be a no-op when detached
	if series := sink.Series("first"); len(series.Samples) != 0 {
		t.Fatalf("detached machine recorded %d samples", len(series.Samples))
	}

	// AttachObs(nil) is the explicit detach spelling.
	cpu.AttachObs(sink.Run("second"), 0)
	cpu.AttachObs(nil, 0)
	if cpu.Obs() != nil {
		t.Fatal("AttachObs(nil) left the observer attached")
	}
}

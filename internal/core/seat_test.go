package core

import "testing"

func TestSeatIndexRoundTrip(t *testing.T) {
	for _, g := range []Geometry{
		{Cores: 1, ContextsPerCore: 2},
		{Cores: 2, ContextsPerCore: 2},
		{Cores: 4, ContextsPerCore: 4},
		{Cores: 3, ContextsPerCore: 1},
	} {
		seats := g.Seats()
		if len(seats) != g.Total() {
			t.Fatalf("geo %v: %d seats, want %d", g, len(seats), g.Total())
		}
		for lp := 0; lp < g.Total(); lp++ {
			s := g.SeatOf(lp)
			if s != seats[lp] {
				t.Fatalf("geo %v: SeatOf(%d) = %v, Seats()[%d] = %v", g, lp, s, lp, seats[lp])
			}
			if got := g.Index(s); got != lp {
				t.Fatalf("geo %v: Index(SeatOf(%d)) = %d", g, lp, got)
			}
			if s.Core < 0 || s.Core >= g.Cores || s.Ctx < 0 || s.Ctx >= g.ContextsPerCore {
				t.Fatalf("geo %v: seat %v out of range", g, s)
			}
		}
	}
}

func TestSeatString(t *testing.T) {
	if got := (Seat{Core: 2, Ctx: 1}).String(); got != "c2.t1" {
		t.Fatalf("Seat string = %q, want c2.t1", got)
	}
}

func TestSeatDynIsPureRead(t *testing.T) {
	cpu := New(DefaultConfig(true))
	g := cpu.cfg.Geo()
	for lp := 0; lp < g.Total(); lp++ {
		before := cpu.Counters().Get(0)
		d1 := cpu.SeatDyn(g.SeatOf(lp))
		d2 := cpu.SeatDyn(g.SeatOf(lp))
		if d1 != d2 {
			t.Fatalf("lp %d: repeated SeatDyn reads differ: %+v vs %+v", lp, d1, d2)
		}
		if after := cpu.Counters().Get(0); after != before {
			t.Fatalf("lp %d: SeatDyn perturbed counters", lp)
		}
	}
}

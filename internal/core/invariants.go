package core

import (
	"javasmt/internal/check"
	"javasmt/internal/counters"
)

// This file is the core pipeline's invariant catalogue (DESIGN.md §6).
// Every probe is guarded by `check.Enabled && check.On`, so in a default
// build (no `checks` tag) the calls below are dead code and the cycle
// loop pays nothing for them.
//
// Cheap flow checks run every cycle; the O(ROB) occupancy recount runs
// every recountPeriod cycles and at drain, which keeps a checks-tagged
// test run within a small factor of the default build while still
// re-deriving the incremental state thousands of times per run.

// recountPeriod is the cycle interval between full occupancy recounts.
// A power of two so the trigger test is a mask.
const recountPeriod = 1024

// verifyStep runs after fetch/allocate/retire each cycle (checks builds
// only). now has not yet advanced past the cycle being verified.
func (c *CPU) verifyStep() {
	// Pipeline flow conservation: µops enter from the feeds, are
	// allocated into the ROB, and retire — each stage is a subset of the
	// one before it.
	check.Assert(c.ckFed >= c.ckAlloc, "core",
		"allocated %d µops but feeds only delivered %d", c.ckAlloc, c.ckFed)
	check.Assert(c.ckAlloc >= c.ckRetired, "core",
		"retired %d µops but only %d were allocated", c.ckRetired, c.ckAlloc)
	check.Assert(c.file.Get(counters.Instructions) == c.ckRetired, "core",
		"uops_retired counter %d diverged from retirement audit %d",
		c.file.Get(counters.Instructions), c.ckRetired)

	// Occupancy caps on the incrementally-maintained state. Under static
	// partitioning each context is limited to its half; under dynamic
	// partitioning (and with HT off) the whole structure bounds the total.
	p := &c.cfg.Params
	for i, x := range c.ctxs {
		if !c.dynPart {
			check.Assert(x.robCount <= c.robCapV, "core",
				"ctx %d ROB occupancy %d exceeds partition cap %d", i, x.robCount, c.robCapV)
			check.Assert(x.loadsOut <= c.loadCapV, "core",
				"ctx %d load-buffer occupancy %d exceeds partition cap %d", i, x.loadsOut, c.loadCapV)
			check.Assert(x.storesOut <= c.storeCapV, "core",
				"ctx %d store-buffer occupancy %d exceeds partition cap %d", i, x.storesOut, c.storeCapV)
		}
		check.Assert(x.robCount >= 0 && x.loadsOut >= 0 && x.storesOut >= 0, "core",
			"ctx %d occupancy went negative (rob %d, loads %d, stores %d)",
			i, x.robCount, x.loadsOut, x.storesOut)
	}
	for _, cb := range c.cores {
		check.Assert(cb.totRob <= p.ROBSize, "core",
			"core %d ROB occupancy %d exceeds core size %d", cb.id, cb.totRob, p.ROBSize)
		check.Assert(cb.totLoads <= p.LoadBufs, "core",
			"core %d load-buffer occupancy %d exceeds core size %d", cb.id, cb.totLoads, p.LoadBufs)
		check.Assert(cb.totStores <= p.StoreBufs, "core",
			"core %d store-buffer occupancy %d exceeds core size %d", cb.id, cb.totStores, p.StoreBufs)
	}

	if c.now&(recountPeriod-1) == 0 {
		c.verifyRecount()
	}
}

// verifyRecount re-derives every occupancy figure from scratch by walking
// the ROB rings and compares against the incremental bookkeeping the hot
// path maintains (the class of bug PR 1's stale-LRU incident came from:
// state that is only ever updated incrementally and never re-checked).
func (c *CPU) verifyRecount() {
	for _, cb := range c.cores {
		totRob, totLoads, totStores := 0, 0, 0
		for l, x := range cb.ctxs {
			i := cb.lo + l
			rob, loads, stores := 0, 0, 0
			idx := x.robHead
			for k := 0; k < x.robCount; k++ {
				e := &x.rob[idx]
				rob++
				if e.load {
					loads++
				}
				if e.store {
					stores++
				}
				idx++
				if idx == len(x.rob) {
					idx = 0
				}
			}
			check.Assert(loads == x.loadsOut, "core",
				"ctx %d load recount %d != incremental loadsOut %d", i, loads, x.loadsOut)
			check.Assert(stores == x.storesOut, "core",
				"ctx %d store recount %d != incremental storesOut %d", i, stores, x.storesOut)
			// Ring-shape consistency: head/tail distance must agree with count.
			span := x.robTail - x.robHead
			if span < 0 {
				span += len(x.rob)
			}
			check.Assert(span == x.robCount%len(x.rob), "core",
				"ctx %d ROB ring head %d / tail %d inconsistent with count %d",
				i, x.robHead, x.robTail, x.robCount)
			totRob += rob
			totLoads += loads
			totStores += stores
		}
		check.Assert(totRob == cb.totRob, "core",
			"core %d ROB recount %d != incremental total %d", cb.id, totRob, cb.totRob)
		check.Assert(totLoads == cb.totLoads, "core",
			"core %d load-buffer recount %d != incremental total %d", cb.id, totLoads, cb.totLoads)
		check.Assert(totStores == cb.totStores, "core",
			"core %d store-buffer recount %d != incremental total %d", cb.id, totStores, cb.totStores)
	}
}

// verifyDrained runs when every feed has completed and the pipelines have
// emptied: the whole-program conservation laws.
func (c *CPU) verifyDrained() {
	for i, x := range c.ctxs {
		check.Assert(x.robCount == 0, "core",
			"ctx %d drained with %d µops still in the ROB", i, x.robCount)
		check.Assert(x.loadsOut == 0 && x.storesOut == 0, "core",
			"ctx %d drained with loads %d / stores %d outstanding", i, x.loadsOut, x.storesOut)
		check.Assert(x.bufPos >= x.bufLen, "core",
			"ctx %d drained with %d fetched µops never allocated", i, x.bufLen-x.bufPos)
	}
	for _, cb := range c.cores {
		check.Assert(cb.totRob == 0 && cb.totLoads == 0 && cb.totStores == 0, "core",
			"drained core %d reports occupancy rob %d / loads %d / stores %d",
			cb.id, cb.totRob, cb.totLoads, cb.totStores)
	}
	c.verifyRecount()

	// Retired µops == program µops: everything the feeds produced was
	// allocated, and everything allocated retired.
	check.Assert(c.ckFed == c.ckAlloc, "core",
		"feeds delivered %d µops but only %d were allocated", c.ckFed, c.ckAlloc)
	check.Assert(c.ckAlloc == c.ckRetired, "core",
		"%d µops allocated but %d retired", c.ckAlloc, c.ckRetired)

	// With the paper machine's retire width of 3 the histogram determines
	// retirement exactly (the default bucket is exactly three). µops
	// executed by the functional path (functional.go) never enter the
	// histogram — the flow audit scopes the law to detailed cycles by
	// accounting for them explicitly, so the probe stays exact in sampled
	// runs instead of being skipped. On multi-core machines cycles
	// retiring more than three µops clamp into the Retire3 bucket, so the
	// law is exact only at one core (it degrades to a lower bound
	// otherwise, which CheckConservation still enforces).
	if len(c.cores) == 1 && c.cfg.Params.RetireWidth == 3 {
		hist := c.file.Get(counters.Retire1) + 2*c.file.Get(counters.Retire2) + 3*c.file.Get(counters.Retire3)
		check.Assert(c.file.Get(counters.Instructions) == hist+c.ckFunc, "core",
			"uops_retired %d != retirement histogram sum %d + functional µops %d",
			c.file.Get(counters.Instructions), hist, c.ckFunc)
	}

	// The counter file must satisfy every cross-counter conservation law.
	// Counters() first, so the structure statistics are synchronized.
	if err := c.Counters().CheckConservation(); err != nil {
		check.Failf("core", "at drain: %v", err)
	}
}

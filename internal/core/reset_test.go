package core

import (
	"testing"

	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// mixedStream exercises every structure Reset must clear: ALU dependency
// chains, loads walking the cache/DTLB/DRAM, branches training the
// predictor, and enough distinct PCs to churn the trace cache.
func mixedStream(n int) []isa.Uop {
	uops := make([]isa.Uop, n)
	for i := range uops {
		u := isa.Uop{PC: uint64(i % 5000), Class: isa.ALU, DepDist: uint8(i % 4)}
		switch i % 7 {
		case 1, 4:
			u.Class = isa.Load
			u.Addr = 0x2000_0000 + uint64(i*96)%(1<<22)
		case 2:
			u.Class = isa.Store
			u.Addr = 0x2000_0000 + uint64(i*160)%(1<<22)
		case 5:
			u.Class = isa.Branch
			u.Taken = i%3 == 0
			u.Target = uint64((i * 13) % 5000)
		}
		uops[i] = u
	}
	return uops
}

// TestResetBitIdentical is the contract the pairing engine's CPU pool
// depends on: running a workload on a Reset machine must reproduce the
// fresh machine's cycle count and every counter, for both HT modes and
// both partition policies.
func TestResetBitIdentical(t *testing.T) {
	uops := mixedStream(60_000)
	for _, cfg := range []Config{
		DefaultConfig(false),
		DefaultConfig(true),
		func() Config { c := DefaultConfig(true); c.Partition = DynamicPartition; return c }(),
	} {
		run := func(cpu *CPU) (uint64, counters.File) {
			cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
			if cfg.HT {
				cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
			}
			cycles, err := cpu.Run(0)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			return cycles, *cpu.Counters()
		}

		fresh := New(cfg)
		wantCycles, wantFile := run(fresh)

		// Dirty a second machine with a different workload, then Reset.
		dirty := New(cfg)
		dirty.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(20_000)}})
		if _, err := dirty.Run(0); err != nil {
			t.Fatalf("dirtying run: %v", err)
		}
		dirty.Reset()
		gotCycles, gotFile := run(dirty)

		if gotCycles != wantCycles {
			t.Errorf("HT=%v %v: reset CPU ran %d cycles, fresh ran %d", cfg.HT, cfg.Partition, gotCycles, wantCycles)
		}
		for e := counters.Event(0); int(e) < counters.NumEvents; e++ {
			if gotFile.Get(e) != wantFile.Get(e) {
				t.Errorf("HT=%v %v: counter %v: reset=%d fresh=%d",
					cfg.HT, cfg.Partition, e, gotFile.Get(e), wantFile.Get(e))
			}
		}
	}
}

// TestResetReusableRepeatedly guards against state leaking across many
// reuse generations (the pool hands a CPU to many pairs in sequence).
func TestResetReusableRepeatedly(t *testing.T) {
	uops := mixedStream(30_000)
	cpu := New(DefaultConfig(true))
	var first uint64
	for gen := 0; gen < 4; gen++ {
		cpu.Reset()
		cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: uops}})
		cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: uops}})
		cycles, err := cpu.Run(0)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if gen == 0 {
			first = cycles
		} else if cycles != first {
			t.Fatalf("gen %d ran %d cycles, gen 0 ran %d — Reset leaks state", gen, cycles, first)
		}
	}
}

// TestDynamicPartitionTotals cross-checks the incrementally-maintained
// occupancy totals: after a full run drains, they must all be zero.
func TestDynamicPartitionTotals(t *testing.T) {
	cfg := DefaultConfig(true)
	cfg.Partition = DynamicPartition
	cpu := New(cfg)
	cpu.AttachFeed(0, &feed{src: &isa.SliceSource{Uops: mixedStream(50_000)}})
	cpu.AttachFeed(1, &feed{src: &isa.SliceSource{Uops: mixedStream(50_000)}})
	if _, err := cpu.Run(0); err != nil {
		t.Fatal(err)
	}
	cb := cpu.cores[0]
	if cb.totRob != 0 || cb.totLoads != 0 || cb.totStores != 0 {
		t.Fatalf("occupancy totals nonzero after drain: rob=%d loads=%d stores=%d",
			cb.totRob, cb.totLoads, cb.totStores)
	}
}

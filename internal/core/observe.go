package core

import "javasmt/internal/obs"

// noSample parks the sampling trigger beyond any reachable cycle, so the
// disabled path costs exactly one always-false integer compare per cycle
// and zero allocations (asserted by TestObsDisabledAllocFree and the
// BenchmarkSimSpeed budget in BENCH_core.json).
const noSample = ^uint64(0)

// AttachObs directs periodic observability samples from this machine to
// r, every stride cycles (0 = the observer's configured stride). A nil r
// detaches. Reset also detaches, so pooled machines never leak samples
// into a later experiment's series.
func (c *CPU) AttachObs(r *obs.RunObs, stride uint64) {
	c.obs = r
	if r == nil {
		c.nextSample = noSample
		return
	}
	if stride == 0 {
		stride = r.Stride()
	}
	c.sampleStride = stride
	c.nextSample = c.now + stride
}

// Obs returns the attached run observer, nil when observability is off.
// The OS substrate reads it to emit per-context thread slices.
func (c *CPU) Obs() *obs.RunObs { return c.obs }

// FinishObs records the run's final sample at the current cycle, so the
// series always ends with the end-of-run counter state (the golden tests
// pin that the final sample equals the run's counter file). No-op when
// detached.
func (c *CPU) FinishObs() {
	if c.obs == nil {
		return
	}
	c.obsSample()
}

// obsSample records one sample and schedules the next.
func (c *CPU) obsSample() {
	c.nextSample = c.now + c.sampleStride
	st := c.coreState()
	c.obs.Sample(c.now, c.Counters(), &st)
}

// coreState snapshots the instantaneous per-context pipeline occupancy.
// Each sample gets freshly allocated slices: the observer stores the
// struct by value, so reusing a scratch CoreState would alias every
// recorded sample to the last one. Sampling is infrequent (default
// stride 100k cycles) so the allocation never shows on the hot path,
// and the disabled path never reaches here at all.
func (c *CPU) coreState() obs.CoreState {
	st := obs.NewCoreState(len(c.ctxs))
	for i, x := range c.ctxs {
		st.ROB[i] = x.robCount
		st.Loads[i] = x.loadsOut
		st.Stores[i] = x.storesOut
	}
	for _, cb := range c.cores {
		occ := cb.tc.OccupancyInto(c.occBuf)
		copy(st.TCLines[cb.lo:cb.lo+len(cb.ctxs)], occ)
		occ = cb.itlb.OccupancyInto(c.occBuf)
		copy(st.ITLBEntries[cb.lo:cb.lo+len(cb.ctxs)], occ)
	}
	return st
}

package core

import "fmt"

// Seat identifies one hardware context by its geometry coordinates: the
// physical core and the SMT context slot on that core. It is the
// geometry-aware spelling of the flat logical-processor index — the OS
// substrate schedules software threads onto seats, and scheduling
// policies reason about which seats share a core (and therefore its
// private trace cache, L1D, TLBs and pipeline bandwidth).
type Seat struct {
	// Core is the physical core index, [0, Geometry.Cores).
	Core int
	// Ctx is the SMT context slot on that core,
	// [0, Geometry.ContextsPerCore).
	Ctx int
}

// String renders the seat as "cC.tN" (core C, context slot N).
func (s Seat) String() string { return fmt.Sprintf("c%d.t%d", s.Core, s.Ctx) }

// SeatOf maps a flat (core-major) logical-processor index to its seat.
func (g Geometry) SeatOf(lp int) Seat {
	return Seat{Core: lp / g.ContextsPerCore, Ctx: lp % g.ContextsPerCore}
}

// Index maps a seat to the flat (core-major) logical-processor index —
// the compatibility shim between seat-keyed callers and the CPU's flat
// context slice (AttachFeed, RetiredByLP, obs tracks).
func (g Geometry) Index(s Seat) int { return s.Core*g.ContextsPerCore + s.Ctx }

// Seats returns every seat of the geometry in flat (core-major) order.
func (g Geometry) Seats() []Seat {
	out := make([]Seat, 0, g.Total())
	for lp := 0; lp < g.Total(); lp++ {
		out = append(out, g.SeatOf(lp))
	}
	return out
}

// FlushSeat is the seat-keyed spelling of FlushThreadState: it
// invalidates the context's thread-tagged front-end state (trace lines,
// BTB entries, ITLB partition) on the seat's owning core.
func (c *CPU) FlushSeat(s Seat) { c.FlushThreadState(c.cfg.Geo().Index(s)) }

// SeatDyn is a live metrics snapshot of one hardware context, read by
// scheduling policies at quantum boundaries. Retired and ROB are exact
// per-context values; the core-level cache-miss totals are shared by
// every context of the seat's core (the caches keep no full per-context
// breakdown), so callers attribute them to co-resident threads as
// shared blame.
type SeatDyn struct {
	// Retired is the context's cumulative retired-µop count (detailed
	// retirement plus functional execution).
	Retired uint64
	// ROB is the context's current reorder-buffer occupancy in µops.
	ROB int
	// CoreTCMisses and CoreL1DMisses are the owning core's cumulative
	// trace-cache and L1D miss totals across all of its contexts.
	CoreTCMisses  uint64
	CoreL1DMisses uint64
}

// SeatDyn returns the live scheduling metrics of one seat. It is a pure
// read: calling it never perturbs simulation state, so schedulers may
// consult it at any frequency without breaking determinism or golden
// byte-identity.
func (c *CPU) SeatDyn(s Seat) SeatDyn {
	x := c.ctxs[c.cfg.Geo().Index(s)]
	return SeatDyn{
		Retired:       x.retired,
		ROB:           x.robCount,
		CoreTCMisses:  x.cb.tc.Stats().TotalMisses(),
		CoreL1DMisses: x.cb.hier.L1D.Stats().TotalMisses(),
	}
}

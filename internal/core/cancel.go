package core

import (
	"errors"
	"sync/atomic"
)

// ErrCanceled is returned by Run when an attached cancellation flag is
// observed set. The machine stops between cycles, so its state and
// counters are consistent — just incomplete — and callers (the
// resilience watchdog) classify the abort from their own deadline state.
var ErrCanceled = errors.New("core: run canceled")

// cancelStride is how many cycles may elapse between polls of the
// cancellation flag. Polling an atomic from the cycle loop every cycle
// would put a cross-core cache hit on the hot path; every 2^14 cycles
// the cost vanishes into noise while a watchdog expiry is still noticed
// within tens of microseconds of simulated work.
const cancelStride = 1 << 14

// AttachCancel arms cooperative cancellation: Run polls flag every
// cancelStride cycles and returns ErrCanceled once it is set. A nil
// flag detaches. Like the observability hook, the detached trigger is
// parked at noSample so the disabled path costs one always-false
// compare per cycle and zero allocations (TestCancelDisabledAllocFree).
// Reset also detaches, so pooled machines never observe a previous
// cell's watchdog.
func (c *CPU) AttachCancel(flag *atomic.Bool) {
	c.cancelFlag = flag
	if flag == nil {
		c.nextCancel = noSample
		return
	}
	c.nextCancel = c.now
}

// Drained reports whether every feed has completed and all pipelines
// have emptied — i.e. whether a bounded Run finished its workload or
// stopped at the bound with work still in flight.
func (c *CPU) Drained() bool {
	for i := range c.ctxs {
		if !c.ctxDone(i) {
			return false
		}
	}
	return true
}

package tlb

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	tl := New(DefaultITLBConfig())
	if tl.Access(0x400000, 0) {
		t.Fatal("cold translation should miss")
	}
	if !tl.Access(0x400000, 0) {
		t.Fatal("second translation should hit")
	}
	if !tl.Access(0x400ffc, 0) {
		t.Fatal("same-page address should hit")
	}
	if tl.Access(0x401000, 0) {
		t.Fatal("next page should miss")
	}
}

func TestPartitioningHalvesReach(t *testing.T) {
	// Working set of 128 pages fits the full ITLB but not a half ITLB.
	pages := make([]uint64, 128)
	for i := range pages {
		pages[i] = uint64(i) << 12
	}
	warm := func(tl *TLB) (missesAfterWarm uint64) {
		for pass := 0; pass < 4; pass++ {
			for _, p := range pages {
				tl.Access(p, 0)
			}
			if pass == 0 {
				tl.ResetStats()
			}
		}
		return tl.Stats().Misses[0]
	}
	htOff := New(DefaultITLBConfig())
	if m := warm(htOff); m != 0 {
		t.Fatalf("HT off: 128-page set should fit 128-entry ITLB, got %d misses", m)
	}
	htOn := New(DefaultITLBConfig())
	htOn.SetHT(true)
	if m := warm(htOn); m == 0 {
		t.Fatal("HT on: partitioned ITLB must thrash on a 128-page working set")
	}
}

func TestUnpartitionedSharedUnderHT(t *testing.T) {
	tl := New(DefaultDTLBConfig())
	tl.SetHT(true)
	tl.Access(0x8000, 0)
	if !tl.Access(0x8000, 1) {
		t.Fatal("shared DTLB should hit across contexts")
	}
}

func TestPartitionedIsPrivateUnderHT(t *testing.T) {
	tl := New(DefaultITLBConfig())
	tl.SetHT(true)
	tl.Access(0x8000, 0)
	if tl.Access(0x8000, 1) {
		t.Fatal("partitioned ITLB context 1 must not see context 0 translations")
	}
}

func TestFlushContext(t *testing.T) {
	tl := New(DefaultITLBConfig())
	tl.SetHT(true)
	tl.Access(0x1000, 0)
	tl.Access(0x2000, 1)
	tl.FlushContext(0)
	if tl.Access(0x1000, 0) {
		t.Fatal("context 0 translation should be flushed")
	}
	if !tl.Access(0x2000, 1) {
		t.Fatal("context 1 translation should survive")
	}
	// Unpartitioned (or HT-off): FlushContext flushes everything.
	sh := New(DefaultDTLBConfig())
	sh.Access(0x1000, 0)
	sh.FlushContext(1)
	if sh.Access(0x1000, 0) {
		t.Fatal("shared TLB FlushContext should drop all translations")
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	f := func(addrs []uint32, ht bool) bool {
		tl := New(DefaultITLBConfig())
		tl.SetHT(ht)
		for i, a := range addrs {
			tl.Access(uint64(a), i&1)
		}
		s := tl.Stats()
		return s.Misses[0] <= s.Accesses[0] && s.Misses[1] <= s.Accesses[1] &&
			s.TotalAccesses() == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", Entries: 12, Assoc: 5, PageSize: 4096})
}

// Package tlb models the Pentium 4 translation look-aside buffers.
//
// The detail that matters for the paper is the ITLB sharing discipline:
// "In the Pentium 4, the ITLB is partitioned among hardware contexts to
// support Hyper-Threading. Each logical processor has its own ITLB" —
// so enabling HT halves the ITLB reach of each context even when only the
// code footprint of one thread is active, and benchmarks with large code
// footprints (PseudoJBB) degrade sharply. The DTLB, by contrast, is a
// shared structure.
package tlb

import "javasmt/internal/check"

// Config describes one TLB.
type Config struct {
	// Name appears in counter reports ("ITLB", "DTLB").
	Name string
	// Entries is the total entry count across both contexts.
	Entries int
	// Assoc is the set associativity; Entries/Assoc sets must be a
	// power of two.
	Assoc int
	// PageSize in bytes (4 KiB on the paper machine).
	PageSize int
	// MissPenalty is the page-walk cost in cycles.
	MissPenalty int
	// Partitioned statically splits the entries between the two logical
	// processors when HT is enabled (the P4 ITLB design). When false
	// the structure is fully shared (the DTLB design).
	Partitioned bool
}

// DefaultITLBConfig is the paper machine's instruction TLB: 128 entries,
// fully partitioned per logical processor under HT.
func DefaultITLBConfig() Config {
	return Config{Name: "ITLB", Entries: 128, Assoc: 4, PageSize: 4096, MissPenalty: 30, Partitioned: true}
}

// DefaultDTLBConfig is the paper machine's shared data TLB (64 entries).
func DefaultDTLBConfig() Config {
	return Config{Name: "DTLB", Entries: 64, Assoc: 4, PageSize: 4096, MissPenalty: 30, Partitioned: false}
}

// Stats accumulates per-context access and miss counts.
type Stats struct {
	Accesses [2]uint64
	Misses   [2]uint64
}

// TotalAccesses sums accesses over both contexts.
func (s Stats) TotalAccesses() uint64 { return s.Accesses[0] + s.Accesses[1] }

// TotalMisses sums misses over both contexts.
func (s Stats) TotalMisses() uint64 { return s.Misses[0] + s.Misses[1] }

// entry is one translation, packed to 16 bytes so a 4-way set is one
// host cache line (this is the second-hottest structure walk after the
// caches). key holds vpn<<1|valid; invalidation clears only the valid
// bit, so — as in the previous representation — the LRU stamp of a
// dropped translation survives and continues to steer victim selection.
type entry struct {
	key uint64
	lru uint64
}

// TLB is a set-associative translation buffer with optional static
// partitioning between the two logical processors.
type TLB struct {
	cfg       Config
	entries   []entry // flat [partition*sets*assoc + set*assoc + way]
	assoc     int
	nsets     int // sets per partition
	pageBits  uint
	tick      uint64
	partitons int
	ht        bool
	stats     Stats
	// ckHits counts hit-path exits, maintained only under -tags checks so
	// hits+misses==accesses can be asserted without touching the default
	// build's hot path.
	ckHits uint64
}

// New builds a TLB from cfg.
func New(cfg Config) *TLB {
	if cfg.Entries%cfg.Assoc != 0 {
		panic("tlb: entries must divide evenly into ways: " + cfg.Name)
	}
	t := &TLB{cfg: cfg}
	for cfg.PageSize>>t.pageBits > 1 {
		t.pageBits++
	}
	t.rebuild(1)
	return t
}

// rebuild lays out the entry array for the given number of contexts. A
// partitioned TLB serving n > 1 contexts becomes n structures of 1/n the
// entries each; otherwise one full-size structure serves all requests.
func (t *TLB) rebuild(nctx int) {
	t.ht = nctx > 1
	parts := 1
	entries := t.cfg.Entries
	if t.cfg.Partitioned && nctx > 1 {
		parts = nctx
		entries /= nctx
	}
	sets := entries / t.cfg.Assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("tlb: sets must be a positive power of two: " + t.cfg.Name)
	}
	t.partitons = parts
	t.assoc = t.cfg.Assoc
	t.nsets = sets
	t.entries = make([]entry, parts*sets*t.cfg.Assoc)
}

// SetHT reconfigures the TLB for Hyper-Threading on/off. Contents are
// discarded (the machine in the paper is rebooted between HT modes).
func (t *TLB) SetHT(ht bool) {
	if ht {
		t.rebuild(2)
	} else {
		t.rebuild(1)
	}
}

// SetContexts reconfigures the TLB for n logical processors: a
// partitioned structure becomes n equal slices, a shared one is
// unaffected beyond dropping its contents. SetContexts(2) is identical to
// SetHT(true).
func (t *TLB) SetContexts(n int) { t.rebuild(n) }

// Config returns the TLB geometry.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a snapshot of the statistics.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes statistics without dropping translations.
func (t *TLB) ResetStats() {
	t.stats = Stats{}
	t.ckHits = 0
}

// Reset returns the TLB to its just-built state in the current HT mode:
// translations dropped, LRU clock and statistics zeroed. Entries are
// zeroed outright (not just invalidated) because victim selection reads
// the LRU stamps of slots it fills over; the entry arrays are reused.
func (t *TLB) Reset() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.tick = 0
	t.stats = Stats{}
	t.ckHits = 0
}

// Occupancy returns the number of valid translations visible to each
// logical processor: per-partition counts when statically partitioned,
// otherwise every valid entry under index 0 (the structure is shared).
// The observability layer samples it to show TLB reach shrinking when HT
// halves each context's partition. Partitions beyond the first two fold
// in by parity; wider machines use OccupancyInto.
func (t *TLB) Occupancy() (out [2]int) {
	n := len(t.entries) / t.partitons
	for i := range t.entries {
		if t.entries[i].key&1 != 0 {
			out[(i/n)&1]++
		}
	}
	return out
}

// OccupancyInto counts valid translations per partition into out (all
// under index 0 for a shared structure) and returns it.
func (t *TLB) OccupancyInto(out []int) []int {
	for i := range out {
		out[i] = 0
	}
	n := len(t.entries) / t.partitons
	for i := range t.entries {
		if t.entries[i].key&1 != 0 {
			if p := i / n; p < len(out) {
				out[p]++
			}
		}
	}
	return out
}

// Flush drops every translation (address-space switch).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].key &^= 1
	}
}

// FlushContext drops translations visible to logical processor ctx: its
// partition if partitioned, everything otherwise.
func (t *TLB) FlushContext(ctx int) {
	if t.partitons == 1 {
		t.Flush()
		return
	}
	part := ctx % t.partitons
	n := len(t.entries) / t.partitons
	for i := part * n; i < (part+1)*n; i++ {
		t.entries[i].key &^= 1
	}
}

// Access translates addr for logical processor ctx. It returns true on a
// hit; on a miss the translation is installed and the caller should charge
// Config().MissPenalty cycles.
func (t *TLB) Access(addr uint64, ctx int) bool {
	t.tick++
	t.stats.Accesses[ctx&1]++
	vpn := addr >> t.pageBits
	part := 0
	if t.partitons > 1 {
		part = ctx % t.partitons
	}
	if check.Enabled && check.On && t.cfg.Partitioned && t.partitons > 1 {
		// Partition isolation: a context's lookups must stay inside its
		// own slice of a statically-partitioned structure.
		check.Assert(part == ctx%t.partitons, t.cfg.Name,
			"ctx %d routed to partition %d", ctx, part)
	}
	base := (part*t.nsets + int(vpn)&(t.nsets-1)) * t.assoc
	set := t.entries[base : base+t.assoc]
	want := vpn<<1 | 1
	for i := range set {
		if set[i].key == want {
			set[i].lru = t.tick
			if check.Enabled && check.On {
				t.ckHits++
				check.Assert(t.ckHits+t.stats.TotalMisses() == t.stats.TotalAccesses(),
					t.cfg.Name, "hits %d + misses %d != accesses %d",
					t.ckHits, t.stats.TotalMisses(), t.stats.TotalAccesses())
			}
			return true
		}
	}
	t.stats.Misses[ctx&1]++
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].key&1 == 0 {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = entry{key: want, lru: t.tick}
	if check.Enabled && check.On {
		// The translation just installed must be visible to an immediate
		// replay of the same lookup.
		found := false
		for i := range set {
			if set[i].key == want {
				found = true
				break
			}
		}
		check.Assert(found, t.cfg.Name,
			"vpn %#x not resident immediately after a miss fill (ctx %d)", vpn, ctx)
		check.Assert(t.ckHits+t.stats.TotalMisses() == t.stats.TotalAccesses(),
			t.cfg.Name, "hits %d + misses %d != accesses %d",
			t.ckHits, t.stats.TotalMisses(), t.stats.TotalAccesses())
	}
	return false
}

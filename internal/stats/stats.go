// Package stats provides the summary statistics the paper's figures use:
// means, quartile box summaries (Figure 8's box chart) and an ASCII
// color-map renderer (Figure 9's combined-speedup grid).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Box is the five-number summary plus the mean — exactly what the paper's
// box chart displays (median and mean marks, 25th/75th percentile box,
// min/max whiskers).
type Box struct {
	Min, Q1, Median, Mean, Q3, Max float64
}

// Summarize computes the box summary of xs.
func Summarize(xs []float64) Box {
	if len(xs) == 0 {
		return Box{}
	}
	return Box{
		Min:    Percentile(xs, 0),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Mean:   Mean(xs),
		Q3:     Percentile(xs, 75),
		Max:    Percentile(xs, 100),
	}
}

// String renders the box on one line.
func (b Box) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f mean=%.3f q3=%.3f max=%.3f",
		b.Min, b.Q1, b.Median, b.Mean, b.Q3, b.Max)
}

// RenderBoxes draws an ASCII box chart: one row per named box, a shared
// horizontal axis spanning [lo, hi], quartile box rendered with '=',
// whiskers with '-', the median as '|' and the mean as '*'.
func RenderBoxes(names []string, boxes []Box, lo, hi float64, width int) string {
	if len(names) != len(boxes) {
		panic("stats: names/boxes length mismatch")
	}
	if width < 20 {
		width = 20
	}
	col := func(v float64) int {
		if hi <= lo {
			return 0
		}
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, b := range boxes {
		row := make([]byte, width)
		for j := range row {
			row[j] = ' '
		}
		for j := col(b.Min); j <= col(b.Max); j++ {
			row[j] = '-'
		}
		for j := col(b.Q1); j <= col(b.Q3); j++ {
			row[j] = '='
		}
		row[col(b.Median)] = '|'
		row[col(b.Mean)] = '*'
		fmt.Fprintf(&sb, "%-*s %s\n", nameW, names[i], string(row))
	}
	// Axis with the endpoints and midpoint labelled.
	axis := make([]byte, width)
	for j := range axis {
		axis[j] = '.'
	}
	sb.WriteString(strings.Repeat(" ", nameW+1) + string(axis) + "\n")
	mid := (lo + hi) / 2
	label := fmt.Sprintf("%-*.2f%*s%*.2f", width/2, lo, 0, fmt.Sprintf("%.2f", mid), width-width/2-len(fmt.Sprintf("%.2f", mid)), hi)
	sb.WriteString(strings.Repeat(" ", nameW+1) + label + "\n")
	return sb.String()
}

// RenderColorMap draws the Figure 9 grid as ASCII: one cell per (row,
// column) pair, shaded by value using a black-to-white ramp, exactly as
// the paper's gray-scale color map. Cells below `bad` are flagged with
// '!' (the paper's dashed rectangles around slowdowns).
func RenderColorMap(names []string, grid [][]float64, lo, hi, bad float64) string {
	ramp := []byte(" .:-=+*#%@")
	shade := func(v float64) byte {
		if hi <= lo {
			return ramp[0]
		}
		t := (v - lo) / (hi - lo)
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return ramp[int(t*float64(len(ramp)-1))]
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%*s ", nameW, "")
	for j := range names {
		fmt.Fprintf(&sb, "%3d ", j)
	}
	sb.WriteString("\n")
	for i, row := range grid {
		fmt.Fprintf(&sb, "%-*s ", nameW, names[i])
		for _, v := range row {
			mark := byte(' ')
			if v < bad {
				mark = '!'
			}
			fmt.Fprintf(&sb, "%c%c%c ", shade(v), shade(v), mark)
		}
		fmt.Fprintf(&sb, "\n")
	}
	fmt.Fprintf(&sb, "legend: '%c'=%.2f .. '%c'=%.2f, '!' marks C_AB < %.2f\n",
		ramp[0], lo, ramp[len(ramp)-1], hi, bad)
	for j, n := range names {
		fmt.Fprintf(&sb, "  col %d = %s\n", j, n)
	}
	return sb.String()
}

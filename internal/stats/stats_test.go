package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-10, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile must not reorder its input")
	}
}

func TestSummarizeOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep magnitudes summable: the mean of ±1e308 values
				// overflows float64, which is not what this property
				// is about.
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := Summarize(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return b.Min == sorted[0] && b.Max == sorted[len(sorted)-1] &&
			b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Mean >= b.Min && b.Mean <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// cleanSample narrows arbitrary quick-generated floats to finite,
// summable magnitudes, the same way TestSummarizeOrdering does.
func cleanSample(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw))
	for _, x := range raw {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			xs = append(xs, math.Mod(x, 1e6))
		}
	}
	return xs
}

// TestPercentileMonotoneInP: for a fixed sample, the percentile function
// must be non-decreasing in p — the defining property of a quantile.
func TestPercentileMonotoneInP(t *testing.T) {
	f := func(raw []float64, pa, pb uint16) bool {
		xs := cleanSample(raw)
		if len(xs) == 0 {
			return true
		}
		// Map the generated values onto [0,100] with both orderings tried.
		lo := float64(pa % 101)
		hi := float64(pb % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Percentile(xs, lo) <= Percentile(xs, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMeanWithinRange: the mean of any finite sample lies between its
// minimum and maximum.
func TestMeanWithinRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := cleanSample(raw)
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		m := Mean(xs)
		return sorted[0] <= m && m <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeSingleElement: every box statistic of a one-element sample
// collapses onto that element.
func TestSummarizeSingleElement(t *testing.T) {
	b := Summarize([]float64{1.37})
	want := Box{Min: 1.37, Q1: 1.37, Median: 1.37, Mean: 1.37, Q3: 1.37, Max: 1.37}
	if b != want {
		t.Fatalf("single-element box = %+v, want %+v", b, want)
	}
}

// TestSummarizeAllEqual: a constant sample has a degenerate box — all six
// statistics equal the constant, regardless of length.
func TestSummarizeAllEqual(t *testing.T) {
	for _, n := range []int{2, 3, 7, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = -4.25
		}
		b := Summarize(xs)
		want := Box{Min: -4.25, Q1: -4.25, Median: -4.25, Mean: -4.25, Q3: -4.25, Max: -4.25}
		if b != want {
			t.Fatalf("n=%d all-equal box = %+v, want %+v", n, b, want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if b := Summarize(nil); b != (Box{}) {
		t.Fatalf("empty summary = %+v", b)
	}
}

func TestBoxString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3}).String()
	for _, want := range []string{"min=", "med=", "mean=", "max="} {
		if !strings.Contains(s, want) {
			t.Fatalf("box string %q missing %q", s, want)
		}
	}
}

func TestRenderBoxes(t *testing.T) {
	names := []string{"alpha", "b"}
	boxes := []Box{
		{Min: 1, Q1: 1.1, Median: 1.2, Mean: 1.25, Q3: 1.3, Max: 1.4},
		{Min: 0.9, Q1: 1.0, Median: 1.05, Mean: 1.02, Q3: 1.1, Max: 1.2},
	}
	out := RenderBoxes(names, boxes, 0.8, 1.6, 60)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "=") ||
		!strings.Contains(out, "*") || !strings.Contains(out, "|") {
		t.Fatalf("box render missing elements:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(names)+2 {
		t.Fatalf("expected %d lines, got %d", len(names)+2, len(lines))
	}
}

func TestRenderBoxesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderBoxes([]string{"a"}, nil, 0, 1, 40)
}

func TestRenderColorMap(t *testing.T) {
	names := []string{"x", "y"}
	grid := [][]float64{{1.5, 0.9}, {1.1, 1.3}}
	out := RenderColorMap(names, grid, 0.8, 1.6, 1.0)
	if !strings.Contains(out, "!") {
		t.Fatal("slowdown cells must be flagged with '!'")
	}
	if !strings.Contains(out, "legend") || !strings.Contains(out, "col 1 = y") {
		t.Fatalf("color map missing legend:\n%s", out)
	}
}

func TestRenderColorMapDegenerateRange(t *testing.T) {
	out := RenderColorMap([]string{"x"}, [][]float64{{1}}, 1, 1, 0.5)
	if out == "" {
		t.Fatal("degenerate range should still render")
	}
}

// Package mem models the main-memory subsystem of the paper machine:
// 1 GB of dual-channel DDR-400 behind an 800 MHz front-side bus feeding a
// 2.8 GHz core.
//
// The model is deliberately coarse — a base access latency, an open-row
// bonus, and FSB occupancy that queues concurrent misses — because the
// paper's observations depend on memory being (a) slow relative to the
// pipeline and (b) a shared, contended resource under Hyper-Threading.
package mem

// Config parameterizes the DRAM/FSB model.
type Config struct {
	// BaseLatency is the row-miss access time in core cycles. At
	// 2.8 GHz, ~70 ns of DRAM latency is ~200 cycles.
	BaseLatency int
	// RowHitLatency is the access time when the request falls in the
	// most recently opened row of its bank.
	RowHitLatency int
	// RowBits is log2 of the row size in bytes (open-page granularity).
	RowBits uint
	// Banks is the number of independent DRAM banks.
	Banks int
	// BusCycles is the FSB occupancy of one 64-byte transfer in core
	// cycles; back-to-back misses queue behind each other by this much.
	// The default is small (pipelined dual-channel DDR behind the
	// 800 MHz FSB) so that memory-bound workloads are limited by how
	// many misses the out-of-order window can overlap — the property
	// the static-partition results of the paper depend on — rather
	// than by a serialized bus.
	BusCycles int
}

// DefaultConfig returns the paper machine's memory parameters.
func DefaultConfig() Config {
	return Config{BaseLatency: 280, RowHitLatency: 170, RowBits: 13, Banks: 8, BusCycles: 2}
}

// Stats accumulates memory-system event counts.
type Stats struct {
	Reads    uint64
	Writes   uint64
	RowHits  uint64
	BusWaits uint64 // accesses delayed by FSB occupancy
}

// Accesses returns the total number of DRAM accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// DRAM is the memory model. It satisfies cache.Memory.
type DRAM struct {
	cfg     Config
	openRow []uint64
	hasRow  []bool
	busFree uint64
	stats   Stats
}

// New builds a DRAM model from cfg.
func New(cfg Config) *DRAM {
	return &DRAM{cfg: cfg, openRow: make([]uint64, cfg.Banks), hasRow: make([]bool, cfg.Banks)}
}

// Config returns the memory parameters.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of the statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// ResetStats zeroes statistics, preserving open-row state.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Reset returns the DRAM model to its just-built state: banks closed,
// bus idle, statistics zeroed. Required before reusing a machine whose
// cycle clock restarts at zero (busFree is an absolute cycle number).
func (d *DRAM) Reset() {
	for i := range d.openRow {
		d.openRow[i] = 0
		d.hasRow[i] = false
	}
	d.busFree = 0
	d.stats = Stats{}
}

// Access services a 64-byte fill at core-cycle now and returns its total
// latency in core cycles, including any FSB queueing delay.
func (d *DRAM) Access(addr uint64, write bool, now uint64) int {
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	row := addr >> d.cfg.RowBits
	bank := int(row) % d.cfg.Banks
	lat := d.cfg.BaseLatency
	if d.hasRow[bank] && d.openRow[bank] == row {
		lat = d.cfg.RowHitLatency
		d.stats.RowHits++
	}
	d.openRow[bank] = row
	d.hasRow[bank] = true

	// FSB occupancy: this transfer cannot start before the bus frees.
	start := now
	if d.busFree > now {
		d.stats.BusWaits++
		lat += int(d.busFree - now)
		start = d.busFree
	}
	d.busFree = start + uint64(d.cfg.BusCycles)
	return lat
}

package mem

import (
	"testing"
	"testing/quick"
)

func TestRowHitIsFaster(t *testing.T) {
	d := New(DefaultConfig())
	cold := d.Access(0x10000, false, 0)
	warm := d.Access(0x10040, false, 10_000) // same 8 KiB row, bus long free
	if warm >= cold {
		t.Fatalf("row hit (%d) should be faster than row miss (%d)", warm, cold)
	}
	if d.Stats().RowHits != 1 {
		t.Fatalf("row hits = %d, want 1", d.Stats().RowHits)
	}
}

func TestRowConflictReopens(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0x0, false, 0)
	// Same bank, different row: rows are addr>>13, banks row%8, so row 8
	// (addr 8<<13) maps to bank 0 like row 0.
	lat := d.Access(8<<13, false, 10_000)
	if lat != DefaultConfig().BaseLatency {
		t.Fatalf("row conflict latency = %d, want %d", lat, DefaultConfig().BaseLatency)
	}
}

func TestBusQueueing(t *testing.T) {
	d := New(DefaultConfig())
	first := d.Access(0x10000, false, 100)
	second := d.Access(0x20000, false, 100) // same cycle: must queue behind the first transfer
	if second <= first-100 && second <= first {
		t.Fatalf("second concurrent access (%d) should pay bus occupancy beyond the first (%d)", second, first)
	}
	if d.Stats().BusWaits != 1 {
		t.Fatalf("bus waits = %d, want 1", d.Stats().BusWaits)
	}
	// A later access with an idle bus pays no queueing.
	d2 := New(DefaultConfig())
	d2.Access(0x0, false, 0)
	// Row 8 maps to bank 0 like row 0, so this closes row 0: full latency.
	if lat := d2.Access(8<<13, false, 1_000); lat != DefaultConfig().BaseLatency {
		t.Fatalf("idle-bus access latency = %d, want %d", lat, DefaultConfig().BaseLatency)
	}
}

func TestReadWriteCounting(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, false, 0)
	d.Access(64, true, 1000)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Accesses() != 2 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	if d.Stats().Accesses() != 0 {
		t.Fatal("ResetStats failed")
	}
}

// Property: latency is always at least RowHitLatency and monotone in bus
// pressure — and never negative or zero.
func TestLatencyBounds(t *testing.T) {
	f := func(addrs []uint32) bool {
		d := New(DefaultConfig())
		now := uint64(0)
		for _, a := range addrs {
			lat := d.Access(uint64(a), false, now)
			if lat < DefaultConfig().RowHitLatency {
				return false
			}
			now += 3 // dense request stream
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package cli

import (
	"flag"
	"io"
	"strings"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/obs"
)

// parse registers the common block on a throwaway flag set, parses args
// and resolves them.
func parse(t *testing.T, opt Options, args ...string) (*Common, error) {
	t.Helper()
	fs := flag.NewFlagSet("testtool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register("testtool", fs, opt)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Finish()
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]bench.Scale{
		"tiny": bench.Tiny, "small": bench.Small, "medium": bench.Medium,
		"Small": bench.Small, "TINY": bench.Tiny,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
}

func TestDefaults(t *testing.T) {
	c, err := parse(t, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Tiny {
		t.Errorf("default scale = %v, want tiny", c.Scale)
	}
	if c.Jobs != 1 {
		t.Errorf("jobs without -j registered = %d, want 1 (serial)", c.Jobs)
	}
	if c.Obs != nil {
		t.Error("observability sink built without -metrics/-trace")
	}
	if err := c.WriteObs(); err != nil {
		t.Errorf("WriteObs with nothing requested: %v", err)
	}
}

func TestScaleFlag(t *testing.T) {
	c, err := parse(t, Options{}, "-scale", "small")
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Small {
		t.Errorf("scale = %v, want small", c.Scale)
	}
}

func TestSmallDeprecatedAlias(t *testing.T) {
	c, err := parse(t, Options{}, "-small")
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Small {
		t.Errorf("-small resolved to %v, want small", c.Scale)
	}
	// Redundant but consistent spelling is accepted.
	if c, err = parse(t, Options{}, "-small", "-scale", "small"); err != nil || c.Scale != bench.Small {
		t.Errorf("-small -scale small = %v, %v", c, err)
	}
	// Conflicting explicit -scale is a usage error.
	if _, err = parse(t, Options{}, "-small", "-scale", "medium"); err == nil {
		t.Error("-small -scale medium did not error")
	} else if !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflict error = %v", err)
	}
}

func TestJobsAndQuiet(t *testing.T) {
	c, err := parse(t, Options{Jobs: true, Quiet: true}, "-j", "3", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if c.Jobs != 3 || !c.Quiet {
		t.Errorf("jobs=%d quiet=%v, want 3 true", c.Jobs, c.Quiet)
	}
	if c.Progress() != nil {
		t.Error("quiet tool still got a progress callback")
	}
	loud, err := parse(t, Options{Jobs: true, Quiet: true}, "-j", "2")
	if err != nil {
		t.Fatal(err)
	}
	if loud.Progress() == nil {
		t.Error("non-quiet tool got no progress callback")
	}
}

func TestObsFlags(t *testing.T) {
	c, err := parse(t, Options{}, "-metrics", t.TempDir()+"/m.json", "-sample", "12345")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Obs.MetricsEnabled() || c.Obs.TraceEnabled() {
		t.Errorf("-metrics built metrics=%v trace=%v", c.Obs.MetricsEnabled(), c.Obs.TraceEnabled())
	}
	if got := c.Obs.Stride(); got != 12345 {
		t.Errorf("stride = %d, want 12345", got)
	}
	if err := c.WriteObs(); err != nil {
		t.Errorf("WriteObs: %v", err)
	}

	c, err = parse(t, Options{}, "-trace", t.TempDir()+"/t.json")
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs.MetricsEnabled() || !c.Obs.TraceEnabled() {
		t.Errorf("-trace built metrics=%v trace=%v", c.Obs.MetricsEnabled(), c.Obs.TraceEnabled())
	}
	if got := c.Obs.Stride(); got != obs.DefaultStride {
		t.Errorf("default stride = %d, want %d", got, obs.DefaultStride)
	}
}

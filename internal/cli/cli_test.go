package cli

import (
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/faultinject"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
	"javasmt/internal/sampling"
)

// parse registers the common block on a throwaway flag set, parses args
// and resolves them.
func parse(t *testing.T, opt Options, args ...string) (*Common, error) {
	t.Helper()
	fs := flag.NewFlagSet("testtool", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register("testtool", fs, opt)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Finish()
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]bench.Scale{
		"tiny": bench.Tiny, "small": bench.Small, "medium": bench.Medium,
		"Small": bench.Small, "TINY": bench.Tiny,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
}

func TestDefaults(t *testing.T) {
	c, err := parse(t, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Tiny {
		t.Errorf("default scale = %v, want tiny", c.Scale)
	}
	if c.Jobs != 1 {
		t.Errorf("jobs without -j registered = %d, want 1 (serial)", c.Jobs)
	}
	if c.Obs != nil {
		t.Error("observability sink built without -metrics/-trace")
	}
	if err := c.WriteObs(); err != nil {
		t.Errorf("WriteObs with nothing requested: %v", err)
	}
}

func TestScaleFlag(t *testing.T) {
	c, err := parse(t, Options{}, "-scale", "small")
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Small {
		t.Errorf("scale = %v, want small", c.Scale)
	}
}

func TestSmallDeprecatedAlias(t *testing.T) {
	c, err := parse(t, Options{}, "-small")
	if err != nil {
		t.Fatal(err)
	}
	if c.Scale != bench.Small {
		t.Errorf("-small resolved to %v, want small", c.Scale)
	}
	// Redundant but consistent spelling is accepted.
	if c, err = parse(t, Options{}, "-small", "-scale", "small"); err != nil || c.Scale != bench.Small {
		t.Errorf("-small -scale small = %v, %v", c, err)
	}
	// Conflicting explicit -scale is a usage error.
	if _, err = parse(t, Options{}, "-small", "-scale", "medium"); err == nil {
		t.Error("-small -scale medium did not error")
	} else if !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("conflict error = %v", err)
	}
}

func TestJobsAndQuiet(t *testing.T) {
	c, err := parse(t, Options{Jobs: true, Quiet: true}, "-j", "3", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if c.Jobs != 3 || !c.Quiet {
		t.Errorf("jobs=%d quiet=%v, want 3 true", c.Jobs, c.Quiet)
	}
	if c.Progress() != nil {
		t.Error("quiet tool still got a progress callback")
	}
	loud, err := parse(t, Options{Jobs: true, Quiet: true}, "-j", "2")
	if err != nil {
		t.Fatal(err)
	}
	if loud.Progress() == nil {
		t.Error("non-quiet tool got no progress callback")
	}
}

func TestObsFlags(t *testing.T) {
	c, err := parse(t, Options{}, "-metrics", t.TempDir()+"/m.json", "-sample", "12345")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Obs.MetricsEnabled() || c.Obs.TraceEnabled() {
		t.Errorf("-metrics built metrics=%v trace=%v", c.Obs.MetricsEnabled(), c.Obs.TraceEnabled())
	}
	if got := c.Obs.Stride(); got != 12345 {
		t.Errorf("stride = %d, want 12345", got)
	}
	if err := c.WriteObs(); err != nil {
		t.Errorf("WriteObs: %v", err)
	}

	c, err = parse(t, Options{}, "-trace", t.TempDir()+"/t.json")
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs.MetricsEnabled() || !c.Obs.TraceEnabled() {
		t.Errorf("-trace built metrics=%v trace=%v", c.Obs.MetricsEnabled(), c.Obs.TraceEnabled())
	}
	if got := c.Obs.Stride(); got != obs.DefaultStride {
		t.Errorf("default stride = %d, want %d", got, obs.DefaultStride)
	}
}

// TestErrorPaths pins the usage errors Finish must reject rather than
// letting a long campaign start under a nonsensical configuration.
func TestErrorPaths(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the error
	}{
		{[]string{"-sample", "0"}, "-sample"},
		{[]string{"-j", "-2"}, "-j"},
		{[]string{"-retries", "-1"}, "-retries"},
		{[]string{"-deadline", "-5s"}, "-deadline"},
		{[]string{"-resume"}, "-journal"},
		{[]string{"-scale", "huge"}, "unknown scale"},
	}
	for _, tc := range cases {
		_, err := parse(t, Options{Jobs: true}, tc.args...)
		if err == nil {
			t.Errorf("%v: accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestInjectFlag pins that -inject follows the build tag: parse errors
// (including the untagged-build refusal) surface as usage errors, and an
// empty spec means no injector.
func TestInjectFlag(t *testing.T) {
	c, err := parse(t, Options{})
	if err != nil || c.Inject != nil {
		t.Fatalf("no -inject: c.Inject=%v err=%v", c.Inject, err)
	}
	c, err = parse(t, Options{}, "-inject", "panic=0.5")
	if faultinject.Enabled {
		if err != nil || c.Inject == nil {
			t.Fatalf("faults build rejected a valid spec: %v", err)
		}
		if _, err := parse(t, Options{}, "-inject", "panic=2"); err == nil {
			t.Error("rate > 1 accepted")
		}
	} else {
		if err == nil || !strings.Contains(err.Error(), "faults") {
			t.Fatalf("untagged build accepted -inject (err=%v); injection would silently not happen", err)
		}
	}
}

// TestCampaignFlags pins the policy block and the journal lifecycle.
func TestCampaignFlags(t *testing.T) {
	c, err := parse(t, Options{}, "-deadline", "30s", "-cycle-budget", "5000000000", "-retries", "2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy.WallDeadline != 30*time.Second || c.Policy.CycleBudget != 5_000_000_000 || c.Policy.Retries != 2 {
		t.Fatalf("policy = %+v", c.Policy)
	}
	if j, err := c.OpenJournal("cfg"); j != nil || err != nil {
		t.Fatalf("no -journal: journal=%v err=%v", j, err)
	}

	dir := t.TempDir()
	c, err = parse(t, Options{}, "-journal", dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.OpenJournal("cfg")
	if err != nil || j == nil {
		t.Fatalf("fresh journal: %v", err)
	}
	if err := j.Record("cell", resilience.StatusOK, "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-running without -resume over a used journal must refuse.
	if _, err := c.OpenJournal("cfg"); err == nil {
		t.Fatal("fresh open over an existing journal did not refuse")
	}
	c, err = parse(t, Options{}, "-journal", dir, "-resume")
	if err != nil {
		t.Fatal(err)
	}
	j, err = c.OpenJournal("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if j.Resumed() != 1 {
		t.Fatalf("resumed = %d, want 1", j.Resumed())
	}
	j.Close()
	// Resuming under a different campaign configuration must refuse.
	if _, err := c.OpenJournal("other-config"); err == nil {
		t.Fatal("resume with a different config did not refuse")
	}
}

// TestJournalSyncFlag pins the -journal-sync wiring: it needs -journal,
// and a synced journal stays resumable by an unsynced run (durability
// is not campaign identity).
func TestJournalSyncFlag(t *testing.T) {
	if _, err := parse(t, Options{}, "-journal-sync"); err == nil {
		t.Fatal("-journal-sync without -journal was accepted")
	}
	dir := t.TempDir()
	c, err := parse(t, Options{}, "-journal", dir, "-journal-sync")
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.OpenJournal("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("cell", resilience.StatusOK, "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	c, err = parse(t, Options{}, "-journal", dir, "-resume")
	if err != nil {
		t.Fatal(err)
	}
	j, err = c.OpenJournal("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if j.Resumed() != 1 {
		t.Fatalf("resumed = %d, want 1", j.Resumed())
	}
	j.Close()
}

// TestSmallWarningText pins the deprecation warning wording (and that it
// goes to the flag set's output, where tests and wrappers can see it).
func TestSmallWarningText(t *testing.T) {
	fs := flag.NewFlagSet("testtool", flag.ContinueOnError)
	var out strings.Builder
	fs.SetOutput(&out)
	f := Register("testtool", fs, Options{})
	if err := fs.Parse([]string{"-small"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "testtool: -small is deprecated; use -scale small") {
		t.Fatalf("warning = %q", got)
	}
}

// TestSamplingFlags pins the -sim-mode flag block: full is the default
// (zero-value plan, byte-identical path), sampled picks up the default
// regime, the knobs override it, and nonsense is rejected before a
// campaign starts.
func TestSamplingFlags(t *testing.T) {
	c, err := parse(t, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan.Sampled() || c.Plan != sampling.FullPlan() {
		t.Errorf("default plan = %+v, want full", c.Plan)
	}

	c, err = parse(t, Options{}, "-sim-mode", "sampled")
	if err != nil {
		t.Fatal(err)
	}
	if c.Plan != sampling.DefaultSampledPlan() {
		t.Errorf("-sim-mode sampled plan = %+v, want default sampled regime", c.Plan)
	}

	c, err = parse(t, Options{}, "-sim-mode", "sampled",
		"-ff-interval", "300000", "-warmup", "50000", "-window", "20000")
	if err != nil {
		t.Fatal(err)
	}
	want := sampling.Plan{Mode: sampling.Sampled, FFUops: 300_000, WarmupUops: 50_000, WindowCycles: 20_000}
	if c.Plan != want {
		t.Errorf("knobs resolved to %+v, want %+v", c.Plan, want)
	}

	for _, args := range [][]string{
		{"-sim-mode", "turbo"},                   // unknown mode
		{"-sim-mode", "sampled", "-window", "0"}, // no detailed window
		{"-ff-interval", "1000"},                 // stray knob without sampled
		{"-warmup", "1000"},
		{"-window", "1000"},
	} {
		if _, err := parse(t, Options{}, args...); err == nil {
			t.Errorf("%v: accepted", args)
		}
	}
}

// TestSampledJournalCrossMode pins the resume guard in both directions:
// a journal written by a full-mode campaign refuses a sampled resume, a
// sampled journal refuses a full resume (and a differently-tuned sampled
// resume), and only the identical regime resumes.
func TestSampledJournalCrossMode(t *testing.T) {
	record := func(c *Common) {
		t.Helper()
		j, err := c.OpenJournal("cfg")
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Record("cell", resilience.StatusOK, "", []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Full-mode journal: sampled resume must refuse.
	dir := t.TempDir()
	c, err := parse(t, Options{}, "-journal", dir)
	if err != nil {
		t.Fatal(err)
	}
	record(c)
	c, err = parse(t, Options{}, "-journal", dir, "-resume", "-sim-mode", "sampled")
	if err != nil {
		t.Fatal(err)
	}
	if j, err := c.OpenJournal("cfg"); err == nil {
		j.Close()
		t.Fatal("sampled resume over a full-mode journal did not refuse")
	}

	// Sampled journal: full resume and a different regime must refuse;
	// the identical regime resumes.
	dir = t.TempDir()
	c, err = parse(t, Options{}, "-journal", dir, "-sim-mode", "sampled")
	if err != nil {
		t.Fatal(err)
	}
	record(c)
	c, err = parse(t, Options{}, "-journal", dir, "-resume")
	if err != nil {
		t.Fatal(err)
	}
	if j, err := c.OpenJournal("cfg"); err == nil {
		j.Close()
		t.Fatal("full resume over a sampled journal did not refuse")
	}
	c, err = parse(t, Options{}, "-journal", dir, "-resume", "-sim-mode", "sampled", "-window", "123")
	if err != nil {
		t.Fatal(err)
	}
	if j, err := c.OpenJournal("cfg"); err == nil {
		j.Close()
		t.Fatal("resume under a different sampled regime did not refuse")
	}
	c, err = parse(t, Options{}, "-journal", dir, "-resume", "-sim-mode", "sampled")
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.OpenJournal("cfg")
	if err != nil {
		t.Fatalf("identical sampled regime failed to resume: %v", err)
	}
	if j.Resumed() != 1 {
		t.Errorf("resumed = %d, want 1", j.Resumed())
	}
	j.Close()
}

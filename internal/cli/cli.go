// Package cli is the flag surface shared by the repository's commands:
// scale selection, engine parallelism, quiet mode, invariant checks,
// the observability outputs (-metrics, -trace, -sample), and the
// campaign resilience block (-deadline, -cycle-budget, -retries,
// -inject, -journal, -resume, -journal-sync). Each tool registers the
// block once,
// parses, and resolves it into a Common that carries the scale, job
// count, resilience policy and (possibly nil) obs.Sink.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"javasmt/internal/bench"
	"javasmt/internal/check"
	"javasmt/internal/core"
	"javasmt/internal/faultinject"
	"javasmt/internal/harness"
	"javasmt/internal/obs"
	"javasmt/internal/resilience"
	"javasmt/internal/sampling"
	"javasmt/internal/sched"
	"javasmt/internal/simos"
)

// ParseGeometries maps a comma-separated list of MxN machine shapes
// ("1x2,2x2,4x4") to geometries.
func ParseGeometries(s string) ([]core.Geometry, error) {
	var geos []core.Geometry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var g core.Geometry
		if n, err := fmt.Sscanf(part, "%dx%d", &g.Cores, &g.ContextsPerCore); n != 2 || err != nil ||
			fmt.Sprintf("%dx%d", g.Cores, g.ContextsPerCore) != part {
			return nil, fmt.Errorf("bad geometry %q (want CORESxCONTEXTS, e.g. 2x2)", part)
		}
		if g.Cores < 1 || g.ContextsPerCore < 1 {
			return nil, fmt.Errorf("bad geometry %q: counts must be positive", part)
		}
		geos = append(geos, g)
	}
	return geos, nil
}

// ParseScale maps a -scale argument to a bench.Scale.
func ParseScale(s string) (bench.Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return bench.Tiny, nil
	case "small":
		return bench.Small, nil
	case "medium":
		return bench.Medium, nil
	}
	return 0, fmt.Errorf("unknown scale %q (tiny|small|medium)", s)
}

// Options selects which optional flags a tool registers on top of the
// always-present block (-scale, -small, -checks, -metrics, -trace,
// -sample).
type Options struct {
	// Jobs registers -j for tools that fan experiments out.
	Jobs bool
	// Quiet registers -q for tools with progress output.
	Quiet bool
}

// Flags holds the registered flag values until Finish resolves them.
type Flags struct {
	tool string
	fs   *flag.FlagSet

	scale   *string
	small   *bool
	jobs    *int
	quiet   *bool
	checks  *bool
	metrics *string
	trace   *string
	sample  *uint64

	deadline    *time.Duration
	budget      *uint64
	retries     *int
	inject      *string
	journal     *string
	resume      *bool
	journalSync *bool

	simMode    *string
	ffInterval *uint64
	warmup     *uint64
	window     *uint64

	cores    *int
	contexts *int

	policy    *string
	timeslice *uint64
}

// Register installs the common flag block on fs (normally
// flag.CommandLine) for the named tool. Call before fs.Parse; resolve
// with Finish after.
func Register(tool string, fs *flag.FlagSet, opt Options) *Flags {
	f := &Flags{tool: tool, fs: fs}
	f.scale = fs.String("scale", "tiny", "input scale: tiny|small|medium")
	f.small = fs.Bool("small", false, "deprecated: use -scale small")
	f.checks = fs.Bool("checks", check.Enabled, "enable runtime invariant probes (needs a -tags checks build)")
	f.metrics = fs.String("metrics", "", "write sampled metrics time-series JSON to `file`")
	f.trace = fs.String("trace", "", "write Chrome trace-event JSON to `file` (chrome://tracing, Perfetto)")
	f.sample = fs.Uint64("sample", obs.DefaultStride, "metrics sample interval in `cycles`")
	f.deadline = fs.Duration("deadline", 0, "wall-clock deadline per experiment cell (0 = none)")
	f.budget = fs.Uint64("cycle-budget", 0, "simulated-cycle budget per experiment cell (0 = none)")
	f.retries = fs.Int("retries", 0, "retries per failed experiment cell (transient failures only)")
	f.inject = fs.String("inject", "", "fault-injection `spec`, e.g. seed=42,panic=0.1 (needs a -tags faults build)")
	f.journal = fs.String("journal", "", "campaign journal `dir` for checkpoint/resume")
	f.resume = fs.Bool("resume", false, "resume the campaign recorded in -journal, skipping finished cells")
	f.journalSync = fs.Bool("journal-sync", false, "fsync the -journal after every cell (survives power loss, not just crashes)")
	def := sampling.DefaultSampledPlan()
	f.simMode = fs.String("sim-mode", "full", "simulation mode: full|sampled (interval sampling, DESIGN.md §10)")
	f.ffInterval = fs.Uint64("ff-interval", def.FFUops, "sampled mode: unwarmed fast-forward `uops` per interval")
	f.warmup = fs.Uint64("warmup", def.WarmupUops, "sampled mode: warmed functional `uops` before each detailed window")
	f.window = fs.Uint64("window", def.WindowCycles, "sampled mode: detailed-window length in `cycles`")
	f.cores = fs.Int("cores", 0, "machine geometry: physical cores (with -contexts; 0 = the classic -ht machine)")
	f.contexts = fs.Int("contexts", 0, "machine geometry: hardware contexts per core (with -cores)")
	f.policy = fs.String("policy", "",
		"seating `policy`: "+strings.Join(simos.PolicyNames(), "|")+" (default naive, the seed FIFO)")
	f.timeslice = fs.Uint64("timeslice", 0, "scheduler timeslice in `cycles` (0 = built-in default)")
	if opt.Jobs {
		f.jobs = fs.Int("j", sched.DefaultWorkers(), "concurrent experiments (1 = serial)")
	}
	if opt.Quiet {
		f.quiet = fs.Bool("q", false, "suppress progress output")
	}
	return f
}

// Common is the resolved common configuration. Obs is nil unless
// -metrics or -trace was given, so untraced runs pay nothing.
type Common struct {
	Scale bench.Scale
	Jobs  int
	Quiet bool
	Obs   *obs.Sink
	// Policy is the per-cell resilience policy from -deadline,
	// -cycle-budget and -retries (zero value when none given).
	Policy resilience.CellPolicy
	// Inject is the parsed -inject fault injector, nil when absent.
	Inject *faultinject.Injector
	// Plan is the simulation regime from -sim-mode/-ff-interval/-warmup/
	// -window; the zero value (full detailed simulation) when -sim-mode
	// is absent or "full".
	Plan sampling.Plan
	// Geometry is the machine shape from -cores/-contexts; the zero value
	// (neither flag given) defers to each tool's HT flag, keeping legacy
	// invocations byte-identical.
	Geometry core.Geometry
	// SchedPolicy is the -policy seating policy name ("" = naive, the
	// seed FIFO); Timeslice is the -timeslice override in cycles (0 =
	// the scheduler's built-in default).
	SchedPolicy string
	Timeslice   uint64

	tool        string
	metricsPath string
	tracePath   string
	journalDir  string
	resume      bool
	journalSync bool
}

// Finish validates the parsed flags and builds the Common. It must be
// called after the flag set has been parsed. Errors are usage errors
// (the caller should exit 2, or use MustFinish).
func (f *Flags) Finish() (*Common, error) {
	if err := check.SetOn(*f.checks); err != nil {
		return nil, err
	}
	if *f.sample == 0 {
		return nil, fmt.Errorf("-sample must be a positive cycle count")
	}
	if f.jobs != nil && *f.jobs < 0 {
		return nil, fmt.Errorf("-j %d is negative; use -j 1 for serial or omit for all CPUs", *f.jobs)
	}
	if *f.retries < 0 {
		return nil, fmt.Errorf("-retries %d is negative", *f.retries)
	}
	if *f.deadline < 0 {
		return nil, fmt.Errorf("-deadline %v is negative", *f.deadline)
	}
	if *f.resume && *f.journal == "" {
		return nil, fmt.Errorf("-resume needs -journal to say which campaign to resume")
	}
	if *f.journalSync && *f.journal == "" {
		return nil, fmt.Errorf("-journal-sync needs -journal to say which journal to sync")
	}
	inject, err := faultinject.Parse(*f.inject)
	if err != nil {
		return nil, err
	}
	mode, err := sampling.ParseMode(*f.simMode)
	if err != nil {
		return nil, err
	}
	plan := sampling.FullPlan()
	if mode == sampling.Sampled {
		plan = sampling.Plan{
			Mode:         sampling.Sampled,
			FFUops:       *f.ffInterval,
			WarmupUops:   *f.warmup,
			WindowCycles: *f.window,
		}
	} else {
		// Sampling knobs without -sim-mode sampled are a mistake, not a
		// silent no-op.
		var stray string
		f.fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "ff-interval", "warmup", "window":
				stray = fl.Name
			}
		})
		if stray != "" {
			return nil, fmt.Errorf("-%s only applies with -sim-mode sampled", stray)
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if _, err := simos.NewPolicy(*f.policy); err != nil {
		return nil, err
	}
	geo := core.Geometry{Cores: *f.cores, ContextsPerCore: *f.contexts}
	if (geo != core.Geometry{}) {
		if geo.Cores <= 0 || geo.ContextsPerCore <= 0 {
			return nil, fmt.Errorf("-cores and -contexts must be given together as positive counts (got %dx%d)",
				geo.Cores, geo.ContextsPerCore)
		}
	}
	scaleStr := *f.scale
	if *f.small {
		scaleSet := false
		f.fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "scale" {
				scaleSet = true
			}
		})
		if scaleSet && !strings.EqualFold(scaleStr, "small") {
			return nil, fmt.Errorf("-small conflicts with -scale %s", scaleStr)
		}
		fmt.Fprintf(f.fs.Output(), "%s: -small is deprecated; use -scale small\n", f.tool)
		scaleStr = "small"
	}
	scale, err := ParseScale(scaleStr)
	if err != nil {
		return nil, err
	}
	c := &Common{
		Scale: scale,
		Jobs:  1,
		Policy: resilience.CellPolicy{
			WallDeadline: *f.deadline,
			CycleBudget:  *f.budget,
			Retries:      *f.retries,
		},
		Inject:      inject,
		Plan:        plan,
		Geometry:    geo,
		SchedPolicy: *f.policy,
		Timeslice:   *f.timeslice,
		tool:        f.tool,
		metricsPath: *f.metrics,
		tracePath:   *f.trace,
		journalDir:  *f.journal,
		resume:      *f.resume,
		journalSync: *f.journalSync,
	}
	if f.jobs != nil {
		c.Jobs = *f.jobs
	}
	if f.quiet != nil {
		c.Quiet = *f.quiet
	}
	if c.metricsPath != "" || c.tracePath != "" {
		c.Obs = obs.New(obs.Config{
			Metrics: c.metricsPath != "",
			Trace:   c.tracePath != "",
			Stride:  *f.sample,
		})
	}
	return c, nil
}

// MustFinish is Finish, exiting 2 on a usage error.
func (f *Flags) MustFinish() *Common {
	c, err := f.Finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", f.tool, err)
		os.Exit(2)
	}
	return c
}

// Progress returns the tool's progress callback: a stderr line printer,
// or nil when -q was given (experiment drivers treat nil as disabled).
func (c *Common) Progress() func(string) {
	if c.Quiet {
		return nil
	}
	return func(msg string) { fmt.Fprintf(os.Stderr, "... %s\n", msg) }
}

// WriteObs writes whichever observability files were requested on the
// command line; with neither -metrics nor -trace it writes nothing.
func (c *Common) WriteObs() error {
	if c.metricsPath != "" {
		if err := c.Obs.WriteMetricsFile(c.metricsPath); err != nil {
			return err
		}
	}
	if c.tracePath != "" {
		if err := c.Obs.WriteTraceFile(c.tracePath); err != nil {
			return err
		}
	}
	return nil
}

// GeometryTag is the journal-config descriptor of the machine shape:
// empty with no -cores/-contexts (so journals written before geometry
// existed keep their exact config strings) and a canonical " geo=MxN"
// clause otherwise.
func (c *Common) GeometryTag() string {
	if (c.Geometry == core.Geometry{}) {
		return ""
	}
	return fmt.Sprintf(" geo=%v", c.Geometry)
}

// PolicyTag is the journal-config descriptor of the scheduling
// configuration: empty with no -policy/-timeslice (so journals written
// before policies existed keep their exact config strings) and
// canonical " policy=NAME"/" timeslice=N" clauses otherwise.
func (c *Common) PolicyTag() string {
	tag := ""
	if c.SchedPolicy != "" {
		tag += " policy=" + c.SchedPolicy
	}
	if c.Timeslice != 0 {
		tag += fmt.Sprintf(" timeslice=%d", c.Timeslice)
	}
	return tag
}

// SchedParams returns the simos scheduler tuning from the flags: the
// zero value unless -timeslice was given (simos.New fills unset fields
// from DefaultParams).
func (c *Common) SchedParams() simos.Params {
	return simos.Params{Timeslice: c.Timeslice}
}

// OpenJournal opens the campaign journal selected by -journal/-resume,
// or returns nil when no journal was requested. config is the tool's
// campaign identity string; the sampling plan's Tag and the geometry
// tag are appended to it here, so resuming under a different
// configuration — including a different simulation mode, sampling
// regime or machine shape, whose cells would not be comparable — is
// refused in one place for every tool. On resume it reports how many
// completed cells will be skipped.
func (c *Common) OpenJournal(config string) (*resilience.Journal, error) {
	if c.journalDir == "" {
		return nil, nil
	}
	config += c.Plan.Tag() + c.GeometryTag() + c.PolicyTag()
	var opts []resilience.Option
	if c.journalSync {
		opts = append(opts, resilience.WithSync())
	}
	j, err := resilience.Open(c.journalDir, resilience.Meta{Tool: c.tool, Config: config}, c.resume, opts...)
	if err != nil {
		return nil, err
	}
	if c.resume && !c.Quiet {
		fmt.Fprintf(os.Stderr, "%s: resuming: %d completed cells in journal\n", c.tool, j.Resumed())
	}
	return j, nil
}

// ExitFailures prints a campaign-failure summary and exits 1 — the
// degraded-but-complete ending: the report above it is fully rendered,
// and the exit status tells scripts some cells are missing. A call with
// no failures returns without exiting.
func (c *Common) ExitFailures(failures []harness.Failure) {
	if len(failures) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %d cells FAILED:\n", c.tool, len(failures))
	for _, f := range failures {
		fmt.Fprintf(os.Stderr, "  %s: %s\n", f.Cell, f.Reason)
	}
	os.Exit(1)
}

// Fatal reports a runtime error and exits 1.
func (c *Common) Fatal(err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", c.tool, err)
	os.Exit(1)
}

// Usagef reports a usage error and exits 2.
func (c *Common) Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, c.tool+": "+format+"\n", args...)
	os.Exit(2)
}

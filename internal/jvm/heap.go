package jvm

import "fmt"

// Object kinds stored in header word 1.
const (
	kindObject = iota
	kindIntArray
	kindFloatArray
	kindRefArray
	// kindFree marks a swept hole so the next sweep walk can traverse
	// the heap object-by-object without a side table.
	kindFree = 0x7FFF_FFFF
)

// headerWords is the per-object header size: word 0 holds the size in
// words (header included); word 1 packs kind, class id and the mark bit.
const headerWords = 2

const markBit = uint64(1) << 63

// heap is the simulated Java heap: a single word array with a bump
// allocator fed by a first-fit free list that the mark-sweep collector
// rebuilds. Simulated addresses are byte addresses:
// addr = base + wordIndex*8, so every field/element access the
// interpreter performs lands on a unique cacheable address.
type heap struct {
	base  uint64
	words []uint64
	// bump is the high-water mark in words; free holds swept holes.
	bump int
	free []span
	// liveWords tracks allocated-minus-freed words for GC triggering.
	liveWords int
}

type span struct{ off, size int }

func newHeap(base uint64, capWords int) *heap {
	return &heap{base: base, words: make([]uint64, capWords)}
}

// addrToIdx converts a simulated address to a word index, panicking on a
// wild pointer — which in a verified program indicates a VM bug, not a
// recoverable condition.
func (h *heap) addrToIdx(addr uint64) int {
	if addr < h.base || addr&7 != 0 {
		panic(fmt.Sprintf("jvm: wild heap address %#x", addr))
	}
	idx := int((addr - h.base) >> 3)
	if idx >= len(h.words) {
		panic(fmt.Sprintf("jvm: heap address %#x beyond heap end", addr))
	}
	return idx
}

func (h *heap) idxToAddr(idx int) uint64 { return h.base + uint64(idx)<<3 }

// alloc reserves size data words plus the header and returns the object's
// base word index, or -1 if the heap cannot satisfy the request (caller
// triggers GC). kind/class initialize the header; contents are zeroed.
func (h *heap) alloc(dataWords int, kind, class int32) int {
	need := dataWords + headerWords
	// First fit from the free list. A remainder too small to carry a
	// free header is absorbed into the allocation rather than leaked.
	for i, s := range h.free {
		if s.size >= need {
			idx := s.off
			take := need
			if s.size-need < headerWords {
				take = s.size
			}
			if s.size == take {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				rest := span{off: s.off + take, size: s.size - take}
				h.free[i] = rest
				h.writeFreeHeader(rest)
			}
			h.initObject(idx, take, kind, class)
			return idx
		}
	}
	if h.bump+need <= len(h.words) {
		idx := h.bump
		h.bump += need
		h.initObject(idx, need, kind, class)
		return idx
	}
	return -1
}

func (h *heap) initObject(idx, sizeWords int, kind, class int32) {
	h.words[idx] = uint64(sizeWords)
	h.words[idx+1] = uint64(uint32(kind))<<32 | uint64(uint32(class))
	for i := idx + headerWords; i < idx+sizeWords; i++ {
		h.words[i] = 0
	}
	h.liveWords += sizeWords
}

// objSize returns the total size in words of the object at idx.
func (h *heap) objSize(idx int) int { return int(h.words[idx]) }

// objKind returns the object kind. The low header half-word is the class
// id for plain objects and the element count for arrays (arrays need no
// class, and an explicit length stays exact even when the allocator
// absorbs free-list slack into the object).
func (h *heap) objKind(idx int) int32  { return int32(h.words[idx+1] >> 32 & 0x7FFF_FFFF) }
func (h *heap) objClass(idx int) int32 { return int32(uint32(h.words[idx+1])) }
func (h *heap) arrayLen(idx int) int32 { return h.objClass(idx) }

func (h *heap) marked(idx int) bool { return h.words[idx+1]&markBit != 0 }
func (h *heap) setMark(idx int)     { h.words[idx+1] |= markBit }
func (h *heap) clearMark(idx int)   { h.words[idx+1] &^= markBit }

// occupancy returns live words as a fraction of capacity.
func (h *heap) occupancy() float64 { return float64(h.liveWords) / float64(len(h.words)) }

// beginSweep resets the free list; the collector then walks the bump
// region with sweepSpan, which rebuilds it with coalescing.
func (h *heap) beginSweep() { h.free = h.free[:0] }

// sweepSpan scans heap words [from, to): live objects get their mark
// cleared; dead objects and pre-existing holes become (coalesced) free
// spans. It returns the words newly freed and the resume index. The
// caller iterates in chunks so sweep work can be metered into µops.
func (h *heap) sweepSpan(from, to int) (freed int, next int) {
	idx := from
	for idx < to && idx < h.bump {
		size := h.objSize(idx)
		if size <= 0 || idx+size > h.bump {
			panic(fmt.Sprintf("jvm: corrupt heap header at word %d (size %d)", idx, size))
		}
		switch {
		case h.objKind(idx) == kindFree:
			h.addFree(span{off: idx, size: size})
		case h.marked(idx):
			h.clearMark(idx)
		default:
			freed += size
			h.liveWords -= size
			h.addFree(span{off: idx, size: size})
		}
		idx += size
	}
	return freed, idx
}

// addFree registers a hole, coalescing with the immediately preceding
// hole (sweep visits the heap in address order, so adjacency is always
// with the list tail) and stamping a free header so later sweeps can walk
// over it.
func (h *heap) addFree(s span) {
	if n := len(h.free); n > 0 {
		last := &h.free[n-1]
		if last.off+last.size == s.off {
			last.size += s.size
			h.writeFreeHeader(*last)
			return
		}
	}
	h.free = append(h.free, s)
	h.writeFreeHeader(s)
}

func (h *heap) writeFreeHeader(s span) {
	h.words[s.off] = uint64(s.size)
	h.words[s.off+1] = uint64(kindFree) << 32
}

package jvm

import (
	"math/rand"
	"testing"

	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/simos"
)

// TestRandomProgramsMatchGoEvaluation is the interpreter's property test:
// pseudo-random straight-line integer programs are built with the
// assembler, executed on the full simulation stack, and compared against
// direct Go evaluation of the same operations. Any divergence in
// arithmetic, locals handling, array element addressing or call/return
// value plumbing fails here.
func TestRandomProgramsMatchGoEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 30; trial++ {
		prog, want := randomProgram(rng)
		cpu := core.New(core.DefaultConfig(trial%2 == 0))
		k := simos.NewKernel(cpu, simos.DefaultParams())
		vm := New(prog, k, DefaultConfig())
		vm.Start()
		if _, err := cpu.Run(0); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := int64(vm.Global(0)); got != want {
			t.Fatalf("trial %d: VM computed %d, Go mirror %d\n%s",
				trial, got, want, prog.Disassemble())
		}
	}
}

// randomProgram builds a random but verifiable program: a sequence of
// operations over 8 locals and an 8-element array, with helper-method
// round trips, finishing with a checksum into global 0. It returns the
// program and the Go-evaluated expected checksum.
func randomProgram(rng *rand.Rand) (*bytecode.Program, int64) {
	pb := bytecode.NewProgram("randprog")
	pb.Globals(1, 0)

	// Helper: twist(x) = x*3 ^ (x>>2), exercising call/return plumbing.
	h := bytecode.NewMethod("twist", 1, 2)
	h.Load(0).Const(3).Op(bytecode.Imul)
	h.Load(0).Const(2).Op(bytecode.Ishr)
	h.Op(bytecode.Ixor)
	h.Op(bytecode.RetVal)
	twist := pb.Add(h.Finish())
	twistGo := func(x int64) int64 { return (x * 3) ^ (x >> 2) }

	const nLocals, arrLen = 8, 8
	b := bytecode.NewMethod("main", 0, nLocals+2)
	lArr := int32(nLocals) // locals 0..7 are ints, 8 is the array
	locals := make([]int64, nLocals)
	arr := make([]int64, arrLen)

	b.Const(arrLen).Op(bytecode.NewArray, bytecode.KindInt).Store(lArr)
	for i := int32(0); i < nLocals; i++ {
		v := int32(rng.Intn(1000) - 500)
		b.Const(v).Store(i)
		locals[i] = int64(v)
	}

	steps := 20 + rng.Intn(40)
	for s := 0; s < steps; s++ {
		a := int32(rng.Intn(nLocals))
		c := int32(rng.Intn(nLocals))
		dst := int32(rng.Intn(nLocals))
		switch rng.Intn(7) {
		case 0: // dst = a + c
			b.Load(a).Load(c).Op(bytecode.Iadd).Store(dst)
			locals[dst] = locals[a] + locals[c]
		case 1: // dst = a - c
			b.Load(a).Load(c).Op(bytecode.Isub).Store(dst)
			locals[dst] = locals[a] - locals[c]
		case 2: // dst = (a * c) masked to stay bounded
			b.Load(a).Load(c).Op(bytecode.Imul).Const(0xFFFFF).Op(bytecode.Iand).Store(dst)
			locals[dst] = (locals[a] * locals[c]) & 0xFFFFF
		case 3: // dst = a ^ c
			b.Load(a).Load(c).Op(bytecode.Ixor).Store(dst)
			locals[dst] = locals[a] ^ locals[c]
		case 4: // arr[i] = a
			idx := int32(rng.Intn(arrLen))
			b.Load(lArr).Const(idx).Load(a).Op(bytecode.AStore)
			arr[idx] = locals[a]
		case 5: // dst = arr[i]
			idx := int32(rng.Intn(arrLen))
			b.Load(lArr).Const(idx).Op(bytecode.ALoad).Store(dst)
			locals[dst] = arr[idx]
		case 6: // dst = twist(a)
			b.Load(a).Op(bytecode.Call, twist).Store(dst)
			locals[dst] = twistGo(locals[a])
		}
	}

	// Checksum locals and array into global 0.
	const lChk = nLocals + 1
	b.Const(0).Store(lChk)
	chk := int64(0)
	for i := int32(0); i < nLocals; i++ {
		b.Load(lChk).Const(31).Op(bytecode.Imul).Load(i).Op(bytecode.Iadd).Store(lChk)
		chk = chk*31 + locals[i]
	}
	for i := int32(0); i < arrLen; i++ {
		b.Load(lChk).Const(31).Op(bytecode.Imul)
		b.Load(lArr).Const(i).Op(bytecode.ALoad)
		b.Op(bytecode.Iadd).Store(lChk)
		chk = chk*31 + arr[i]
	}
	b.Load(lChk).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(0), chk
}

package jvm

import (
	"javasmt/internal/counters"
	"javasmt/internal/isa"
)

// gcCodeBase is the µop PC region of the collector's mark/sweep loops.
const gcCodeBase = runtimeCodeBase + 4096

// GC phases.
const (
	gcIdle = iota
	gcMark
	gcSweep
)

// gcState drives the stop-the-world mark-sweep collection. It runs as a
// dedicated Java-level helper thread — the reason "the whole JVM usually
// is a multithreaded application even when the Java applications on the
// top of it are single-threaded" — and emits Load µops at the addresses
// of the objects it actually traverses, so collections drag the live
// object graph through the simulated caches just as real collections do.
type gcState struct {
	vm *VM
	t  *Thread

	phase int
	// work is the mark stack: object word index + scan offset, so huge
	// arrays can be scanned across multiple Fill calls.
	work     []gcWorkItem
	sweepPos int
	// freedWords accumulates per-collection reclaim for stats.
	freedWords int
}

type gcWorkItem struct{ idx, off int }

// newGCThread builds the collector thread.
func (vm *VM) newGCThread() *Thread {
	t := &Thread{vm: vm, id: len(vm.threads), name: "gc"}
	t.stackBase = vm.stacksBase + uint64(t.id)*stackBytesPer
	t.gc = &gcState{vm: vm, t: t}
	vm.threads = append(vm.threads, t)
	t.osThread = vm.proc.Spawn("gc", t)
	return t
}

// fill is the collector's µop source.
func (g *gcState) fill(buf []isa.Uop) (int, bool) {
	vm := g.vm
	if vm.shutdown && g.phase == gcIdle {
		return 0, true
	}
	if !vm.gcRunning {
		// Spurious wakeup: park again.
		vm.blockThread(g.t, blockGCIdle)
		return 0, false
	}

	n := 0
	budget := len(buf) - 16
	switch g.phase {
	case gcIdle:
		g.collectRoots()
		g.phase = gcMark
		// Root-scan stub µops.
		for i := 0; i < 32 && n < budget; i++ {
			g.emit(buf, &n, isa.Uop{PC: gcCodeBase + uint64(i%64), Class: isa.ALU})
		}

	case gcMark:
		h := vm.heap
		for n < budget && len(g.work) > 0 {
			// Pop before scanning: scanObject appends children, so
			// holding an index (or pointer) into the stack across the
			// scan would corrupt the traversal.
			item := g.work[len(g.work)-1]
			g.work = g.work[:len(g.work)-1]
			if !g.scanObject(h, &item, buf, &n, budget) {
				// Budget exhausted mid-object: resume it next Fill.
				g.work = append(g.work, item)
				break
			}
		}
		if len(g.work) == 0 {
			h.beginSweep()
			g.sweepPos = 0
			g.freedWords = 0
			g.phase = gcSweep
			if n == 0 {
				// A collection with an empty root set reaches here without
				// marking anything; a fill must never return zero µops for
				// a runnable thread, so emit the transition bookkeeping.
				g.emit(buf, &n, isa.Uop{PC: gcCodeBase + 255, Class: isa.ALU})
			}
		}

	case gcSweep:
		h := vm.heap
		for n < budget && g.sweepPos < h.bump {
			freed, next := h.sweepSpan(g.sweepPos, g.sweepPos+vm.cfg.GCWorkChunk)
			g.freedWords += freed
			// The sweep loop touches each header line.
			for i := 0; i < 48 && n < budget; i++ {
				pc := gcCodeBase + 256 + uint64(i%32)
				if i%3 == 0 {
					g.emit(buf, &n, isa.Uop{PC: pc, Class: isa.Load,
						Addr: h.idxToAddr(g.sweepPos + i*vm.cfg.GCWorkChunk/48)})
				} else {
					g.emit(buf, &n, isa.Uop{PC: pc, Class: isa.ALU})
				}
			}
			g.sweepPos = next
		}
		if g.sweepPos >= h.bump {
			g.phase = gcIdle
			vm.file.Add(counters.GCCycles, 64)
			vm.gcFinished()
			if vm.shutdown {
				return n, true
			}
			vm.blockThread(g.t, blockGCIdle)
			return n, false
		}
	}
	return n, false
}

func (g *gcState) emit(buf []isa.Uop, n *int, u isa.Uop) {
	g.t.uopIdx++
	buf[*n] = u
	*n++
	g.vm.file.Inc(counters.GCCycles)
}

// collectRoots seeds the mark stack from globals and every thread's
// frames (locals and operand stacks, via their reference bitmaps).
func (g *gcState) collectRoots() {
	vm := g.vm
	for i, v := range vm.globals {
		if vm.prog.GlobalRefMask&(1<<uint(i)) != 0 {
			g.markAddr(v)
		}
	}
	for _, t := range vm.threads {
		if t.gc != nil || t.exited {
			continue
		}
		for fi := 0; fi < t.depth; fi++ {
			f := &t.frames[fi]
			limit := f.m.NLocals + f.sp
			for i := 0; i < limit; i++ {
				if f.refs[i] {
					g.markAddr(f.regs[i])
				}
			}
		}
	}
}

// markAddr marks the object at addr (0 = null) and queues it for scanning.
func (g *gcState) markAddr(addr uint64) {
	if addr == 0 {
		return
	}
	h := g.vm.heap
	idx := h.addrToIdx(addr)
	if h.marked(idx) {
		return
	}
	h.setMark(idx)
	g.work = append(g.work, gcWorkItem{idx: idx})
}

// scanObject scans the object's reference slots from item.off, marking
// children and emitting Load µops at the addresses it reads. It returns
// true when the object is fully scanned; otherwise item.off records the
// resume point (budget exhausted).
func (g *gcState) scanObject(h *heap, item *gcWorkItem, buf []isa.Uop, n *int, budget int) bool {
	idx := item.idx
	kind := h.objKind(idx)
	switch kind {
	case kindRefArray:
		length := int(h.arrayLen(idx))
		for item.off < length {
			if *n >= budget {
				return false
			}
			w := idx + headerWords + item.off
			g.emit(buf, n, isa.Uop{PC: gcCodeBase + 128, Class: isa.Load, Addr: h.idxToAddr(w)})
			g.markAddr(h.words[w])
			item.off++
		}
		return true
	case kindObject:
		cls := g.vm.prog.Classes[h.objClass(idx)]
		if cls.RefMask == 0 {
			// Header touch only.
			g.emit(buf, n, isa.Uop{PC: gcCodeBase + 130, Class: isa.Load, Addr: h.idxToAddr(idx)})
			return true
		}
		for item.off < cls.NumFields {
			if *n >= budget {
				return false
			}
			if cls.RefMask&(1<<uint(item.off)) != 0 {
				w := idx + headerWords + item.off
				g.emit(buf, n, isa.Uop{PC: gcCodeBase + 132, Class: isa.Load, Addr: h.idxToAddr(w)})
				g.markAddr(h.words[w])
			}
			item.off++
		}
		return true
	default:
		// Primitive arrays have no children; touch the header.
		g.emit(buf, n, isa.Uop{PC: gcCodeBase + 134, Class: isa.Load, Addr: h.idxToAddr(idx)})
		return true
	}
}

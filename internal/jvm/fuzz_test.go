// The fuzz tests live in the external test package so they can import
// internal/bench (which itself imports jvm) for corpus seeding.
package jvm_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"javasmt/internal/bench"
	"javasmt/internal/bytecode"
	"javasmt/internal/bytecode/fuzzcodec"
	"javasmt/internal/core"
	"javasmt/internal/jvm"
	"javasmt/internal/simos"
)

var updateCorpus = flag.Bool("update", false, "regenerate the seed fuzz corpus from the benchmark programs")

// fuzzMaxCycles bounds each fuzz execution. Programs that loop forever or
// deadlock simply run out of budget; neither is a defect.
const fuzzMaxCycles = 1_000_000

// FuzzInterp throws arbitrary *verified* method bodies at the interpreter
// and the whole machine under it. The contract: code the verifier accepts
// never crashes the interpreter. Defined VM errors (division by zero,
// wild references, out-of-memory, monitor misuse, bad joins) surface as
// panics with the "jvm: " prefix and are part of that contract; any other
// panic is an interpreter bug. When a run completes, its counter file
// must satisfy every conservation law.
func FuzzInterp(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzcodec.Encode([]bytecode.Instr{{Op: bytecode.Halt}}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{
		{Op: bytecode.Iconst, A: 3},
		{Op: bytecode.Iconst, A: 0},
		{Op: bytecode.Idiv}, // defined VM error: division by zero
		{Op: bytecode.RetVal},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{
		{Op: bytecode.Iconst, A: 8},
		{Op: bytecode.NewArray, A: bytecode.KindInt},
		{Op: bytecode.ArrayLen},
		{Op: bytecode.RetVal},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{ // recursive monitor + volatile publish
		{Op: bytecode.New, A: 0},
		{Op: bytecode.Istore, A: 0},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonEnter},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonEnter},
		{Op: bytecode.Iconst, A: 5},
		{Op: bytecode.PutVolatile, A: 3},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonExit},
		{Op: bytecode.Iload, A: 0},
		{Op: bytecode.MonExit},
		{Op: bytecode.Ret},
	}))
	f.Add(fuzzcodec.Encode([]bytecode.Instr{ // CAS spin loop: exercises spin-then-block
		{Op: bytecode.GetVolatile, A: 2},
		{Op: bytecode.Iconst, A: 1},
		{Op: bytecode.Cas, A: 2},
		{Op: bytecode.Pop},
		{Op: bytecode.GetVolatile, A: 2},
		{Op: bytecode.RetVal},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		code := fuzzcodec.Decode(data, 2048)
		prog := fuzzcodec.HarnessProgram(code)
		if err := prog.Link(0); err != nil {
			return // the verifier rejected it; nothing to execute
		}
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if msg, ok := r.(string); ok && strings.HasPrefix(msg, "jvm: ") {
				return // defined VM error — the documented failure mode
			}
			panic(r) // anything else is an interpreter/machine bug
		}()
		cpu := core.New(core.DefaultConfig(false))
		k := simos.NewKernel(cpu, simos.DefaultParams())
		cfg := jvm.DefaultConfig()
		cfg.HeapBytes = 1 << 20
		vm := jvm.New(prog, k, cfg)
		vm.Start()
		if _, err := cpu.Run(fuzzMaxCycles); err != nil {
			return // deadlock detection is an error return, not a crash
		}
		if err := cpu.Counters().CheckConservation(); err != nil {
			t.Fatalf("conservation violated after fuzzed run: %v", err)
		}
	})
}

// TestUpdateFuzzCorpus regenerates the checked-in FuzzInterp seed corpus
// (the ten benchmarks' entry and largest method bodies) when run with
// -update; without the flag it verifies the corpus is present.
func TestUpdateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzInterp")
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, b := range append(bench.All(), bench.Sync()...) {
			prog := b.Build(1, bench.Tiny, 0)
			entry := prog.Methods[prog.Entry]
			largest := entry
			for _, m := range prog.Methods {
				if len(m.Code) > len(largest.Code) {
					largest = m
				}
			}
			seeds := []*bytecode.Method{entry}
			if largest != entry {
				seeds = append(seeds, largest)
			}
			for _, m := range seeds {
				name := fmt.Sprintf("seed-%s-%s", b.Name, m.Name)
				if err := os.WriteFile(filepath.Join(dir, name), fuzzcodec.SeedFile(m.Code), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("seed corpus missing at %s (run `go test ./internal/jvm -run UpdateFuzzCorpus -update`): %v", dir, err)
	}
}

package jvm

import (
	"strings"
	"testing"

	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/simos"
)

// expectVMErrorHT is expectVMError on a hyper-threaded machine, so two
// Java threads genuinely interleave on separate contexts.
func expectVMErrorHT(t *testing.T, prog *bytecode.Program, fragment string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected VM error containing %q", fragment)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, fragment) {
			t.Fatalf("panic %v does not contain %q", r, fragment)
		}
	}()
	cpu := core.New(core.DefaultConfig(true))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, DefaultConfig())
	vm.Start()
	_, _ = cpu.Run(0)
}

func TestStoreBufferForwardingAndDrain(t *testing.T) {
	prog := sumProgram(1)
	cpu := core.New(core.DefaultConfig(false))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, DefaultConfig())
	th := vm.Start()

	th.sbPut(0, 42)
	if v, ok := th.sbLoad(0); !ok || v != 42 {
		t.Fatalf("sbLoad = %d,%v; want forwarded 42", v, ok)
	}
	if vm.globals[0] != 0 {
		t.Fatal("buffered store must not be globally visible before a drain")
	}
	th.sbDrain()
	if vm.globals[0] != 42 {
		t.Fatalf("globals[0] = %d after drain, want 42", vm.globals[0])
	}
	if _, ok := th.sbLoad(0); ok {
		t.Fatal("drain must empty the buffer")
	}

	// Same-slot forwarding returns the newest entry, and overflowing the
	// capacity publishes the backlog rather than dropping it.
	for i := 0; i < sbCap; i++ {
		th.sbPut(0, uint64(100+i))
	}
	if v, _ := th.sbLoad(0); v != uint64(100+sbCap-1) {
		t.Fatalf("forwarded %d, want newest %d", v, 100+sbCap-1)
	}
	th.sbPut(1, 7) // 9th entry: drains all eight, then buffers itself
	if vm.globals[0] != uint64(100+sbCap-1) {
		t.Fatalf("globals[0] = %d after overflow drain, want %d", vm.globals[0], 100+sbCap-1)
	}
	if th.sbLen != 1 {
		t.Fatalf("sbLen = %d after overflow, want 1", th.sbLen)
	}
}

func TestVolatileRoundtrip(t *testing.T) {
	pb := bytecode.NewProgram("vol")
	pb.Globals(2, 0)
	b := bytecode.NewMethod("main", 0, 0)
	b.Const(123).Op(bytecode.PutVolatile, 0)
	b.Op(bytecode.GetVolatile, 0).Op(bytecode.PutStatic, 1)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	vm, cpu := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(1)); got != 123 {
		t.Fatalf("global[1] = %d, want 123", got)
	}
	if n := cpu.Counters().Get(counters.FenceUops); n < 2 {
		t.Fatalf("fence_uops = %d, want >= 2 (one per volatile op)", n)
	}
}

func TestCasSemantics(t *testing.T) {
	pb := bytecode.NewProgram("cas")
	pb.Globals(3, 0)
	b := bytecode.NewMethod("main", 0, 0)
	// Successful swap 0 -> 5, then a failing swap (expected 0, now 5).
	b.Const(0).Const(5).Op(bytecode.Cas, 0).Op(bytecode.PutStatic, 1)
	b.Const(0).Const(7).Op(bytecode.Cas, 0).Op(bytecode.PutStatic, 2)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	vm, cpu := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 5 {
		t.Fatalf("global[0] = %d, want 5 (failed CAS must not overwrite)", got)
	}
	if s, f := int64(vm.Global(1)), int64(vm.Global(2)); s != 1 || f != 0 {
		t.Fatalf("cas results = %d,%d; want 1,0", s, f)
	}
	cf := cpu.Counters()
	if ops, fails := cf.Get(counters.CASOps), cf.Get(counters.CASFailures); ops != 2 || fails != 1 {
		t.Fatalf("cas_ops=%d cas_failures=%d, want 2,1", ops, fails)
	}
}

func TestCasSpinThenBlockYields(t *testing.T) {
	pb := bytecode.NewProgram("casspin")
	pb.Globals(1, 0)
	b := bytecode.NewMethod("main", 0, 1)
	// global[0] starts at 9, so CAS(0 -> 1) fails every iteration:
	// 2*casSpinLimit consecutive failures must charge two kernel yields.
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(9).Op(bytecode.PutVolatile, 0)
	b.Const(0).Store(0)
	b.Bind(loop)
	b.Load(0).Const(int32(2 * casSpinLimit))
	b.Br(bytecode.IfGe, done)
	b.Const(0).Const(1).Op(bytecode.Cas, 0).Op(bytecode.Pop)
	b.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	vm, cpu := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 9 {
		t.Fatalf("global[0] = %d, want 9", got)
	}
	cf := cpu.Counters()
	if fails := cf.Get(counters.CASFailures); fails != uint64(2*casSpinLimit) {
		t.Fatalf("cas_failures = %d, want %d", fails, 2*casSpinLimit)
	}
	if sys := cf.Get(counters.Syscalls); sys != 2 {
		t.Fatalf("syscalls = %d, want exactly 2 spin-to-block yields", sys)
	}
}

// deadlockProgram: main locks A then B, a worker locks B then A, with a
// volatile handshake forcing the interleaving. Whichever thread blocks
// second closes the waits-for cycle.
func deadlockProgram() *bytecode.Program {
	pb := bytecode.NewProgram("deadlock")
	cls := pb.Class("O", 1, 0)
	pb.Globals(3, 0b11) // 0=objA(ref), 1=objB(ref), 2=flag

	w := bytecode.NewMethod("w", 0, 0)
	w.Op(bytecode.GetVolatile, 1).Op(bytecode.MonEnter) // lock B
	w.Const(1).Op(bytecode.PutVolatile, 2)              // signal: B held
	w.Op(bytecode.GetVolatile, 0).Op(bytecode.MonEnter) // lock A (cycle)
	w.Op(bytecode.GetVolatile, 0).Op(bytecode.MonExit)
	w.Op(bytecode.GetVolatile, 1).Op(bytecode.MonExit)
	w.Op(bytecode.Ret)
	wi := pb.Add(w.Finish())

	main := bytecode.NewMethod("main", 0, 1)
	main.Op(bytecode.New, cls).Op(bytecode.PutVolatile, 0)
	main.Op(bytecode.New, cls).Op(bytecode.PutVolatile, 1)
	main.Op(bytecode.GetVolatile, 0).Op(bytecode.MonEnter) // lock A
	main.Op(bytecode.ThreadStart, wi).Store(0)
	spin := main.NewLabel()
	main.Bind(spin)
	main.Op(bytecode.GetVolatile, 2).Const(1)
	main.Br(bytecode.IfNe, spin)                           // wait until worker holds B
	main.Op(bytecode.GetVolatile, 1).Op(bytecode.MonEnter) // lock B (cycle)
	main.Op(bytecode.GetVolatile, 1).Op(bytecode.MonExit)
	main.Op(bytecode.GetVolatile, 0).Op(bytecode.MonExit)
	main.Op(bytecode.Ret)
	pb.Entry(pb.Add(main.Finish()))
	return pb.MustLink(0)
}

func TestDeadlockDetected(t *testing.T) {
	expectVMErrorHT(t, deadlockProgram(), "deadlock")
}

func TestJoinSelfDeadlockDetected(t *testing.T) {
	pb := bytecode.NewProgram("selfjoin")
	b := bytecode.NewMethod("main", 0, 0)
	b.Const(0).Op(bytecode.ThreadJoin) // main is thread id 0
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	expectVMError(t, pb.MustLink(0), "deadlock")
}

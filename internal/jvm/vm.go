// Package jvm is the Java Virtual Machine substrate: a bytecode
// interpreter with a garbage-collected heap, Java monitors and Java
// threads, executing programs from internal/bytecode and emitting the
// µop streams the SMT core consumes.
//
// The design mirrors what mattered about Sun JRE 1.4.2 in the paper:
//
//   - The VM itself is multithreaded even for single-threaded programs:
//     a garbage-collector helper thread exists from startup, so "the
//     whole JVM usually is a multithreaded application" holds here too.
//   - The instruction stream has the footprint of compiled Java code:
//     each bytecode occupies real code addresses (laid out at link time)
//     and calls/returns traverse method boundaries, so big-code programs
//     (javac, jack, jess) pressure the trace cache, ITLB and BTB exactly
//     as the paper observes.
//   - Data traffic comes from a real heap: objects and arrays live at
//     simulated addresses, and the collector traverses the actual object
//     graph when it runs.
package jvm

import (
	"fmt"

	"javasmt/internal/bytecode"
	"javasmt/internal/counters"
	"javasmt/internal/simos"
)

// Config sizes one VM instance.
type Config struct {
	// HeapBytes is the collected heap size. The paper configured 512 MB;
	// simulated runs are scaled down (DESIGN.md §5) and the default is
	// 32 MB. Live sets of the benchmarks scale with their inputs, so GC
	// frequency stays in a realistic band.
	HeapBytes int
	// HeapBase is the simulated base address of the heap. Distinct VM
	// instances (multiprogrammed runs) must use distinct bases.
	HeapBase uint64
	// GCThreshold is the live-heap fraction above which allocation
	// requests a collection.
	GCThreshold float64
	// GCWorkChunk is how many mark/sweep steps the collector performs
	// per scheduling quantum slice of its µop stream.
	GCWorkChunk int
}

// DefaultConfig returns the standard VM configuration.
func DefaultConfig() Config {
	return Config{
		HeapBytes:   32 << 20,
		HeapBase:    0x2000_0000,
		GCThreshold: 0.80,
		GCWorkChunk: 4096,
	}
}

// Layout constants relative to HeapBase. Each VM carves one contiguous
// simulated region: globals, then per-thread stacks, then the heap.
const (
	globalsWords   = 8192
	stackBytesPer  = 1 << 16
	maxThreadCount = 64
)

// blockReason records why a thread is blocked, so GC-safepoint wakeups
// do not disturb monitor or join waits.
type blockReason int

const (
	notBlocked blockReason = iota
	blockMonitor
	blockJoin
	blockGCWait   // mutator waiting for a collection it requested
	blockSafept   // mutator stopped at a GC safepoint
	blockGCIdle   // the collector thread waiting for work
	blockFinished // bookkeeping for exited threads
)

// monitor is a Java object monitor.
type monitor struct {
	owner   *Thread
	depth   int
	waiters []*Thread
}

// VM is one running Java virtual machine (one simulated process).
type VM struct {
	prog   *bytecode.Program
	kernel *simos.Kernel
	proc   *simos.Process
	cfg    Config
	file   *counters.File

	heap        *heap
	globals     []uint64
	globalsBase uint64
	stacksBase  uint64

	threads  []*Thread
	gcThread *Thread

	monitors map[uint64]*monitor

	// Collector coordination.
	gcRequested bool
	gcRunning   bool
	gcWaiters   []*Thread
	safepointed []*Thread
	gcCount     int
	shutdown    bool

	// Statistics.
	allocs     uint64
	allocWords uint64
}

// New creates a VM for prog (already linked) as a fresh process under
// kernel. Call Start to spawn the main and collector threads.
func New(prog *bytecode.Program, kernel *simos.Kernel, cfg Config) *VM {
	if cfg.HeapBytes == 0 {
		cfg = DefaultConfig()
	}
	vm := &VM{
		prog:     prog,
		kernel:   kernel,
		proc:     kernel.NewProcess(prog.Name),
		cfg:      cfg,
		monitors: make(map[uint64]*monitor),
	}
	vm.file = kernelFile(kernel)
	vm.globalsBase = cfg.HeapBase
	vm.stacksBase = cfg.HeapBase + globalsWords*8
	heapStart := vm.stacksBase + maxThreadCount*stackBytesPer
	vm.heap = newHeap(heapStart, cfg.HeapBytes/8)
	vm.globals = make([]uint64, max(prog.NumGlobals, 1))
	return vm
}

// kernelFile reaches the kernel's counter file; kept in a helper so the
// jvm package touches simos internals in exactly one place.
func kernelFile(k *simos.Kernel) *counters.File { return k.File() }

// Program returns the loaded program.
func (vm *VM) Program() *bytecode.Program { return vm.prog }

// Global returns global slot i — benchmarks publish checksums there.
func (vm *VM) Global(i int) uint64 { return vm.globals[i] }

// GlobalFloat returns global slot i reinterpreted as a float64.
func (vm *VM) GlobalFloat(i int) float64 { return f64(vm.globals[i]) }

// GCCount returns how many collections have completed.
func (vm *VM) GCCount() int { return vm.gcCount }

// AllocStats returns the object count and total words allocated.
func (vm *VM) AllocStats() (objects, words uint64) { return vm.allocs, vm.allocWords }

// Start spawns the main thread (the program entry) and the collector
// thread. The simulation then runs through the kernel/CPU as usual.
func (vm *VM) Start() *Thread {
	main := vm.newThread("main", vm.prog.Methods[vm.prog.Entry], nil)
	vm.gcThread = vm.newGCThread()
	// The collector parks until a mutator requests a collection.
	vm.blockThread(vm.gcThread, blockGCIdle)
	return main
}

// newThread creates a Java thread executing m with the given arguments
// and registers it with the OS.
func (vm *VM) newThread(name string, m *bytecode.Method, args []uint64) *Thread {
	if len(vm.threads) >= maxThreadCount {
		panic("jvm: thread limit exceeded")
	}
	t := &Thread{vm: vm, id: len(vm.threads), name: name}
	t.pushFrame(m, args, argRefs(m, args))
	t.stackBase = vm.stacksBase + uint64(t.id)*stackBytesPer
	vm.threads = append(vm.threads, t)
	t.osThread = vm.proc.Spawn(name, t)
	return t
}

func argRefs(m *bytecode.Method, args []uint64) []bool {
	refs := make([]bool, len(args))
	for i := range args {
		refs[i] = m.ArgRefMask&(1<<uint(i)) != 0
	}
	return refs
}

// blockThread parks t in the OS with the given reason. Blocking is a
// full memory barrier: the thread's store buffer drains first, so a
// stopped-world collector (and every other thread) sees all of its
// global stores — buffered reference stores must be visible roots
// before a mark phase can run.
func (vm *VM) blockThread(t *Thread, why blockReason) {
	t.sbDrain()
	t.blocked = why
	vm.kernel.Block(t.osThread)
}

// unblockThread resumes t.
func (vm *VM) unblockThread(t *Thread) {
	t.blocked = notBlocked
	t.waitMon = nil
	t.waitJoin = nil
	vm.kernel.Unblock(t.osThread)
}

// --- Monitors ---

// monEnter attempts to acquire the monitor of the object at addr for t.
// It returns true on success; on contention it blocks t and returns false
// (the interpreter re-executes the instruction when rescheduled).
func (vm *VM) monEnter(t *Thread, addr uint64) bool {
	m := vm.monitors[addr]
	if m == nil {
		m = &monitor{}
		vm.monitors[addr] = m
	}
	switch m.owner {
	case nil:
		// Lock acquisition is an atomic RMW (x86 lock cmpxchg): a full
		// fence that drains the acquirer's store buffer.
		t.sbDrain()
		m.owner = t
		m.depth = 1
		vm.file.Inc(counters.LockAcquires)
		return true
	case t:
		m.depth++
		vm.file.Inc(counters.LockAcquires)
		return true
	default:
		vm.checkDeadlock(t, m)
		t.waitMon = m
		m.waiters = append(m.waiters, t)
		vm.file.Inc(counters.LockContended)
		vm.file.Inc(counters.Syscalls)
		vm.blockThread(t, blockMonitor)
		vm.maybeStartGC()
		return false
	}
}

// checkDeadlock walks the waits-for graph (thread → monitor owner or
// join target) from the monitor t is about to block on. If the walk
// returns to t, blocking would close a cycle no future wakeup can
// break, so it panics with a structured "jvm: " error — the resilience
// layer turns it into a CellError instead of a cell hung until its
// cycle budget expires.
func (vm *VM) checkDeadlock(t *Thread, m *monitor) {
	cur := m.owner
	for steps := 0; cur != nil && steps <= maxThreadCount; steps++ {
		if cur == t {
			panic(fmt.Sprintf("jvm: deadlock: thread %q blocking on monitor held across a waits-for cycle", t.name))
		}
		switch cur.blocked {
		case blockMonitor:
			if cur.waitMon == nil {
				return
			}
			cur = cur.waitMon.owner
		case blockJoin:
			cur = cur.waitJoin
		default:
			return // running or unblockable-for-other-reasons: no cycle
		}
	}
}

// checkJoinDeadlock is the join-edge analogue of checkDeadlock: t is
// about to wait for target to exit, so a waits-for path from target
// back to t can never make progress.
func (vm *VM) checkJoinDeadlock(t, target *Thread) {
	cur := target
	for steps := 0; cur != nil && steps <= maxThreadCount; steps++ {
		if cur == t {
			panic(fmt.Sprintf("jvm: deadlock: thread %q joining thread %q across a waits-for cycle", t.name, target.name))
		}
		switch cur.blocked {
		case blockMonitor:
			if cur.waitMon == nil {
				return
			}
			cur = cur.waitMon.owner
		case blockJoin:
			cur = cur.waitJoin
		default:
			return
		}
	}
}

// monExit releases the monitor of the object at addr.
func (vm *VM) monExit(t *Thread, addr uint64) {
	m := vm.monitors[addr]
	if m == nil || m.owner != t {
		panic(fmt.Sprintf("jvm: thread %q releasing monitor %#x it does not own", t.name, addr))
	}
	// Release: everything stored inside the critical section must be
	// visible before the next owner can observe the lock as free.
	t.sbDrain()
	m.depth--
	if m.depth > 0 {
		return
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	// Direct handoff to the first waiter. Depth starts at zero: the
	// waiter re-executes its MonEnter when rescheduled, and the
	// owner==self path will bump the depth to one.
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.depth = 0
	vm.unblockThread(next)
}

// --- Volatile globals and compare-and-swap ---

// putVolatile performs a volatile store to global slot: a release
// operation that drains the thread's store buffer (older plain stores
// become visible first, preserving TSO store order) and then publishes
// the value itself.
func (vm *VM) putVolatile(t *Thread, slot int32, v uint64) {
	t.sbDrain()
	vm.globals[slot] = v
}

// cas atomically compare-and-swaps global slot from expected to nv,
// reporting success. It is a full fence: the buffer drains first, and
// the read-modify-write hits the globally visible array directly.
func (vm *VM) cas(t *Thread, slot int32, expected, nv uint64) bool {
	t.sbDrain()
	vm.file.Inc(counters.CASOps)
	if vm.globals[slot] != expected {
		vm.file.Inc(counters.CASFailures)
		return false
	}
	vm.globals[slot] = nv
	return true
}

// --- Thread intrinsics ---

// threadStart spawns a Java thread running method m with args and returns
// its id.
func (vm *VM) threadStart(t *Thread, m *bytecode.Method, args []uint64) int {
	// Spawning is a release: the child must see every global store the
	// parent made before the start.
	t.sbDrain()
	nt := vm.newThread(m.Name, m, args)
	vm.file.Inc(counters.Syscalls)
	return nt.id
}

// threadJoin makes t wait for target to exit; returns true if it already
// has (no blocking needed).
func (vm *VM) threadJoin(t *Thread, targetID int) bool {
	if targetID < 0 || targetID >= len(vm.threads) {
		panic(fmt.Sprintf("jvm: join on invalid thread id %d", targetID))
	}
	target := vm.threads[targetID]
	if target.exited {
		return true
	}
	vm.checkJoinDeadlock(t, target)
	t.waitJoin = target
	target.joinWaiters = append(target.joinWaiters, t)
	vm.file.Inc(counters.Syscalls)
	vm.blockThread(t, blockJoin)
	vm.maybeStartGC()
	return false
}

// OnExit registers fn to run, on the simulation goroutine, when t exits.
// The harness uses it to drive the paper's relaunch-until-N-runs pairing
// protocol.
func OnExit(t *Thread, fn func()) { t.onExit = append(t.onExit, fn) }

// threadExited finalizes t: wakes joiners and, when the last mutator is
// gone, tells the collector to shut down so the process can terminate.
func (vm *VM) threadExited(t *Thread) {
	// Thread exit is a release: the exiting thread's plain global stores
	// become visible before any joiner resumes.
	t.sbDrain()
	t.exited = true
	t.blocked = blockFinished
	for _, w := range t.joinWaiters {
		vm.unblockThread(w)
	}
	t.joinWaiters = nil
	for _, fn := range t.onExit {
		fn()
	}
	t.onExit = nil
	if vm.liveMutators() == 0 {
		vm.shutdown = true
		if vm.gcThread != nil && vm.gcThread.blocked == blockGCIdle {
			vm.unblockThread(vm.gcThread)
		}
	} else {
		vm.maybeStartGC()
	}
}

func (vm *VM) liveMutators() int {
	n := 0
	for _, t := range vm.threads {
		if t != vm.gcThread && !t.exited {
			n++
		}
	}
	return n
}

// --- Allocation & GC coordination ---

// allocate tries to carve an object; on heap pressure it requests a
// collection and blocks t (returning -1 so the interpreter retries the
// instruction). A thread that has already waited for a collection forces
// the allocation through, so a live set above the GC threshold degrades
// into back-to-back collections rather than a livelock; if even the
// forced attempt fails the program is genuinely out of memory.
// dataWords is the payload size; kind/classOrLen fill the header.
func (vm *VM) allocate(t *Thread, dataWords int, kind, classOrLen int32) int {
	pressure := vm.heap.occupancy() > vm.cfg.GCThreshold
	if !pressure || t.gcRetried {
		if idx := vm.heap.alloc(dataWords, kind, classOrLen); idx >= 0 {
			t.gcRetried = false
			vm.allocs++
			vm.allocWords += uint64(dataWords + headerWords)
			return idx
		}
		if t.gcRetried {
			panic(fmt.Sprintf("jvm: OutOfMemoryError: %d-word allocation, live %.0f%% of %d bytes",
				dataWords, 100*vm.heap.occupancy(), vm.cfg.HeapBytes))
		}
	}
	// Request a collection and wait for it.
	t.gcRetried = true
	vm.gcRequested = true
	vm.gcWaiters = append(vm.gcWaiters, t)
	vm.file.Inc(counters.Syscalls)
	vm.blockThread(t, blockGCWait)
	vm.maybeStartGC()
	return -1
}

// enterSafepoint parks t because a collection is pending. The interpreter
// calls it from loop back-edges and method entries.
func (vm *VM) enterSafepoint(t *Thread) {
	vm.safepointed = append(vm.safepointed, t)
	vm.blockThread(t, blockSafept)
	vm.maybeStartGC()
}

// safepointPending reports whether t must stop for a collection.
func (vm *VM) safepointPending(t *Thread) bool {
	return vm.gcRequested && !vm.gcRunning && t != vm.gcThread
}

// maybeStartGC wakes the collector once every live mutator has stopped
// (at a safepoint or blocked for any other reason).
func (vm *VM) maybeStartGC() {
	if !vm.gcRequested || vm.gcRunning {
		return
	}
	for _, t := range vm.threads {
		if t == vm.gcThread || t.exited {
			continue
		}
		if t.blocked == notBlocked {
			return
		}
	}
	vm.gcRunning = true
	vm.unblockThread(vm.gcThread)
}

// gcFinished releases the stopped world.
func (vm *VM) gcFinished() {
	vm.gcRequested = false
	vm.gcRunning = false
	vm.gcCount++
	for _, t := range vm.safepointed {
		vm.unblockThread(t)
	}
	vm.safepointed = vm.safepointed[:0]
	for _, t := range vm.gcWaiters {
		vm.unblockThread(t)
	}
	vm.gcWaiters = vm.gcWaiters[:0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package jvm

import (
	"fmt"
	"math"

	"javasmt/internal/bytecode"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
	"javasmt/internal/simos"
)

// runtimeCodeBase is the µop PC region of VM runtime slow paths
// (allocation stubs, monitor contention paths, thread intrinsics). It
// sits between user code and kernel code.
const runtimeCodeBase = 1 << 28

// frame is one method activation.
type frame struct {
	m   *bytecode.Method
	pc  int
	ret uint64 // µop PC the matching Ret jumps back to

	// regs holds locals then operand stack; refs/prods are the parallel
	// reference bitmap (for GC) and producer µop indices (for DepDist).
	regs  []uint64
	refs  []bool
	prods []uint64
	sp    int // operand stack pointer, offset from m.NLocals
}

func (f *frame) push(v uint64, ref bool, prod uint64) {
	i := f.m.NLocals + f.sp
	f.regs[i], f.refs[i], f.prods[i] = v, ref, prod
	f.sp++
}

func (f *frame) pop() (v uint64, ref bool, prod uint64) {
	f.sp--
	i := f.m.NLocals + f.sp
	return f.regs[i], f.refs[i], f.prods[i]
}

func (f *frame) peek(back int) uint64 { return f.regs[f.m.NLocals+f.sp-1-back] }

// Thread is a Java thread: an isa.Source whose Fill interprets bytecode
// and emits µops.
type Thread struct {
	vm        *VM
	id        int
	name      string
	osThread  *simos.Thread
	stackBase uint64

	frames []frame
	depth  int

	// uopIdx numbers emitted µops from 1; slot producer indices refer
	// to it and DepDist is the difference at consumption time.
	uopIdx  uint64
	blocked blockReason
	exited  bool

	// Store-to-load dependency tracking: a small direct-mapped table of
	// recent stores so that loads from a just-written address depend on
	// the storing µop. This serializes the load-modify-store
	// accumulator idiom that dominates compiled Java loops, which is
	// essential for realistic (low) Java IPC on the model.
	stTag  [16]uint64
	stProd [16]uint64
	// gcRetried marks an allocation retried after a collection this
	// thread itself requested (forces the allocation through).
	gcRetried bool

	// Store buffer (x86-TSO, DESIGN.md §14): plain PutStatic stores
	// queue here and become globally visible only when the buffer
	// drains — on a fence (volatile store, CAS, monitor operation,
	// thread lifecycle, blocking), on capacity overflow, or by aging.
	// Same-thread GetStatic forwards the newest buffered value, so
	// single-threaded semantics are unchanged; other threads read the
	// stale vm.globals until the drain, which is exactly the store-
	// buffering relaxation the litmus harness probes for.
	sbSlot  [sbCap]int32
	sbVal   [sbCap]uint64
	sbLen   int
	sbStamp uint64 // t.instrs when the buffer last became non-empty

	// waitMon / waitJoin record what a blocked thread is waiting for;
	// together they form the waits-for graph deadlock detection walks.
	waitMon  *monitor
	waitJoin *Thread

	// casFailStreak counts consecutive failed Cas executions for the
	// spin-then-block policy.
	casFailStreak int

	joinWaiters []*Thread
	onExit      []func()

	// gc is non-nil on the collector helper thread, whose µop stream
	// comes from mark/sweep work instead of bytecode.
	gc *gcState

	// instrs counts executed bytecode instructions.
	instrs uint64
}

// Store-buffer geometry: sbCap matches a P4-class write-combining/store
// queue depth; sbAgeInstrs bounds how long a store can stay privately
// buffered (in executed bytecodes) so visibility is merely delayed,
// never withheld.
const (
	sbCap       = 8
	sbAgeInstrs = 256
)

// casSpinLimit is how many consecutive Cas failures a thread tolerates
// before the runtime charges a yield into the kernel (spin-then-block).
const casSpinLimit = 8

// sbDrain publishes every buffered store to vm.globals, oldest first,
// and empties the buffer. Draining whole buffers at once means other
// threads never observe a partial FIFO, which keeps the model's
// visible behavior within x86-TSO.
func (t *Thread) sbDrain() {
	for i := 0; i < t.sbLen; i++ {
		t.vm.globals[t.sbSlot[i]] = t.sbVal[i]
	}
	t.sbLen = 0
}

// sbPut appends a plain store to the buffer, draining first on
// capacity overflow.
func (t *Thread) sbPut(slot int32, v uint64) {
	if t.sbLen == sbCap {
		t.sbDrain()
	}
	if t.sbLen == 0 {
		t.sbStamp = t.instrs
	}
	t.sbSlot[t.sbLen] = slot
	t.sbVal[t.sbLen] = v
	t.sbLen++
}

// sbLoad forwards the thread's newest buffered store to slot, if any.
func (t *Thread) sbLoad(slot int32) (uint64, bool) {
	for i := t.sbLen - 1; i >= 0; i-- {
		if t.sbSlot[i] == slot {
			return t.sbVal[i], true
		}
	}
	return 0, false
}

// ID returns the Java thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Instructions returns how many bytecodes the thread has executed.
func (t *Thread) Instructions() uint64 { return t.instrs }

// pushFrame activates m with args in its first local slots. Frame storage
// is pooled per thread; hot call paths allocate nothing in steady state.
func (t *Thread) pushFrame(m *bytecode.Method, args []uint64, argRefs []bool) {
	if t.depth == len(t.frames) {
		t.frames = append(t.frames, frame{})
	}
	f := &t.frames[t.depth]
	t.depth++
	need := m.NLocals + m.MaxStack + 1
	if cap(f.regs) < need {
		f.regs = make([]uint64, need)
		f.refs = make([]bool, need)
		f.prods = make([]uint64, need)
	}
	f.regs = f.regs[:need]
	f.refs = f.refs[:need]
	f.prods = f.prods[:need]
	for i := range f.regs {
		f.regs[i], f.refs[i], f.prods[i] = 0, false, 0
	}
	copy(f.regs, args)
	copy(f.refs, argRefs)
	f.m, f.pc, f.sp, f.ret = m, 0, 0, 0
}

// vmError panics with thread/method/pc context: in a verified program it
// indicates a benchmark bug, so it is loud by design.
func (t *Thread) vmError(format string, args ...any) {
	f := &t.frames[t.depth-1]
	prefix := fmt.Sprintf("jvm: thread %q %s@%d: ", t.name, f.m.Name, f.pc)
	panic(prefix + fmt.Sprintf(format, args...))
}

// maxSlowPathUops bounds the µops one instruction can emit including
// runtime/kernel slow paths; Fill reserves this much buffer per step.
const maxSlowPathUops = 40

// Fill implements isa.Source: it interprets bytecode, translating each
// instruction into µops, until the buffer fills, the thread blocks, or
// the program exits.
func (t *Thread) Fill(buf []isa.Uop) (int, bool) {
	if t.gc != nil {
		return t.gc.fill(buf)
	}
	n := 0
	for n+maxSlowPathUops <= len(buf) {
		if t.depth == 0 {
			if !t.exited {
				t.vm.threadExited(t)
			}
			return n, true
		}
		if t.vm.safepointPending(t) {
			t.vm.enterSafepoint(t)
			return n, false
		}
		n += t.step(buf[n:])
		if t.blocked != notBlocked {
			return n, false
		}
	}
	return n, false
}

func maxProd(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func f64(v uint64) float64 { return math.Float64frombits(v) }
func u64(v float64) uint64 { return math.Float64bits(v) }

// emit writes u into buf[*n] with the producer-index dependency prod
// (0 = none) translated into a DepDist, and returns the new µop's own
// producer index. Loads pick up an additional dependency on the most
// recent store to the same address; stores record themselves.
func (t *Thread) emit(buf []isa.Uop, n *int, u isa.Uop, prod uint64) uint64 {
	buf[*n] = u
	p := t.fixDeps(&buf[*n], prod)
	*n++
	return p
}

// fixDeps resolves the dependency bookkeeping for a µop already written
// into the fill buffer, mutating only its DepDist. It is the per-µop tail
// of emit, split out and given a pointer receiver argument so the
// instruction dispatch loop pays one small inlinable call per µop instead
// of copying the 32-byte Uop through two call frames.
func (t *Thread) fixDeps(u *isa.Uop, prod uint64) uint64 {
	t.uopIdx++
	if u.Class == isa.Load {
		slot := (u.Addr >> 3) & 15
		if t.stTag[slot] == u.Addr && t.stProd[slot] > prod {
			prod = t.stProd[slot]
		}
	}
	if prod > 0 {
		if d := t.uopIdx - prod; d <= 255 {
			u.DepDist = uint8(d)
		}
	}
	if u.Class == isa.Store {
		slot := (u.Addr >> 3) & 15
		t.stTag[slot] = u.Addr
		t.stProd[slot] = t.uopIdx
	}
	return t.uopIdx
}

// step executes one bytecode instruction, emitting its µops into buf and
// returning how many were written.
func (t *Thread) step(buf []isa.Uop) int {
	f := &t.frames[t.depth-1]
	ins := f.m.Code[f.pc]
	pcBase := f.m.CodeBase + uint64(f.m.UopOff[f.pc])
	t.instrs++
	if t.sbLen > 0 && t.instrs-t.sbStamp >= sbAgeInstrs {
		t.sbDrain()
	}

	n := 0
	// put emits a µop at the instruction's next method-PC slot, writing
	// it into buf in place (see fixDeps).
	put := func(u isa.Uop, prod uint64) uint64 {
		u.PC = pcBase + uint64(n)
		buf[n] = u
		p := t.fixDeps(&buf[n], prod)
		n++
		return p
	}
	// prev returns the producer index of the most recently emitted µop.
	prev := func() uint64 { return t.uopIdx }

	next := f.pc + 1
	h := t.vm.heap

	switch ins.Op {
	case bytecode.Nop:
		put(isa.Uop{Class: isa.Nop}, 0)

	case bytecode.Iconst:
		p := put(isa.Uop{Class: isa.ALU}, 0)
		f.push(uint64(int64(ins.A)), false, p)

	case bytecode.Fconst:
		p := put(isa.Uop{Class: isa.ALU}, 0)
		f.push(u64(f.m.FPool[ins.A]), false, p)

	case bytecode.Iload:
		p := put(isa.Uop{Class: isa.ALU}, f.prods[ins.A])
		f.push(f.regs[ins.A], f.refs[ins.A], p)

	case bytecode.Istore:
		v, ref, pv := f.pop()
		p := put(isa.Uop{Class: isa.ALU}, pv)
		f.regs[ins.A], f.refs[ins.A], f.prods[ins.A] = v, ref, p

	case bytecode.Iadd, bytecode.Isub, bytecode.Imul, bytecode.Idiv, bytecode.Irem,
		bytecode.Iand, bytecode.Ior, bytecode.Ixor, bytecode.Ishl, bytecode.Ishr:
		b, _, pb := f.pop()
		a, _, pa := f.pop()
		x, y := int64(a), int64(b)
		var r int64
		cls := isa.ALU
		switch ins.Op {
		case bytecode.Iadd:
			r = x + y
		case bytecode.Isub:
			r = x - y
		case bytecode.Imul:
			r, cls = x*y, isa.Mul
		case bytecode.Idiv:
			if y == 0 {
				t.vmError("integer division by zero")
			}
			r, cls = x/y, isa.Mul
		case bytecode.Irem:
			if y == 0 {
				t.vmError("integer remainder by zero")
			}
			r, cls = x%y, isa.Mul
		case bytecode.Iand:
			r = x & y
		case bytecode.Ior:
			r = x | y
		case bytecode.Ixor:
			r = x ^ y
		case bytecode.Ishl:
			r = x << uint64(y&63)
		case bytecode.Ishr:
			r = x >> uint64(y&63)
		}
		p := put(isa.Uop{Class: cls}, maxProd(pa, pb))
		f.push(uint64(r), false, p)

	case bytecode.Ineg:
		a, _, pa := f.pop()
		p := put(isa.Uop{Class: isa.ALU}, pa)
		f.push(uint64(-int64(a)), false, p)

	case bytecode.Fadd, bytecode.Fsub, bytecode.Fmul, bytecode.Fdiv:
		b, _, pb := f.pop()
		a, _, pa := f.pop()
		x, y := f64(a), f64(b)
		var r float64
		cls := isa.FP
		switch ins.Op {
		case bytecode.Fadd:
			r = x + y
		case bytecode.Fsub:
			r = x - y
		case bytecode.Fmul:
			r = x * y
		case bytecode.Fdiv:
			r, cls = x/y, isa.FPDiv
		}
		p := put(isa.Uop{Class: cls}, maxProd(pa, pb))
		f.push(u64(r), false, p)

	case bytecode.Fneg:
		a, _, pa := f.pop()
		p := put(isa.Uop{Class: isa.ALU}, pa)
		f.push(u64(-f64(a)), false, p)

	case bytecode.Fmath:
		a, _, pa := f.pop()
		x := f64(a)
		var r float64
		switch ins.A {
		case bytecode.MathSqrt:
			r = math.Sqrt(x)
		case bytecode.MathSin:
			r = math.Sin(x)
		case bytecode.MathCos:
			r = math.Cos(x)
		case bytecode.MathExp:
			r = math.Exp(x)
		case bytecode.MathLog:
			r = math.Log(x)
		case bytecode.MathAbs:
			r = math.Abs(x)
		}
		put(isa.Uop{Class: isa.ALU}, pa)
		put(isa.Uop{Class: isa.ALU}, prev())
		p := put(isa.Uop{Class: isa.FPDiv}, prev())
		f.push(u64(r), false, p)

	case bytecode.I2f:
		a, _, pa := f.pop()
		p := put(isa.Uop{Class: isa.ALU}, pa)
		f.push(u64(float64(int64(a))), false, p)

	case bytecode.F2i:
		a, _, pa := f.pop()
		p := put(isa.Uop{Class: isa.ALU}, pa)
		f.push(uint64(int64(f64(a))), false, p)

	case bytecode.IfEq, bytecode.IfNe, bytecode.IfLt, bytecode.IfLe,
		bytecode.IfGt, bytecode.IfGe, bytecode.IfFLt, bytecode.IfFGt:
		b, _, pb := f.pop()
		a, _, pa := f.pop()
		var cond bool
		switch ins.Op {
		case bytecode.IfEq:
			cond = int64(a) == int64(b)
		case bytecode.IfNe:
			cond = int64(a) != int64(b)
		case bytecode.IfLt:
			cond = int64(a) < int64(b)
		case bytecode.IfLe:
			cond = int64(a) <= int64(b)
		case bytecode.IfGt:
			cond = int64(a) > int64(b)
		case bytecode.IfGe:
			cond = int64(a) >= int64(b)
		case bytecode.IfFLt:
			cond = f64(a) < f64(b)
		case bytecode.IfFGt:
			cond = f64(a) > f64(b)
		}
		put(isa.Uop{Class: isa.ALU}, maxProd(pa, pb))
		put(isa.Uop{Class: isa.Branch, Taken: cond,
			Target: f.m.CodeBase + uint64(f.m.UopOff[ins.A])}, prev())
		if cond {
			next = int(ins.A)
		}

	case bytecode.IfNull, bytecode.IfNonNull:
		a, _, pa := f.pop()
		cond := (a == 0) == (ins.Op == bytecode.IfNull)
		put(isa.Uop{Class: isa.ALU}, pa)
		put(isa.Uop{Class: isa.Branch, Taken: cond,
			Target: f.m.CodeBase + uint64(f.m.UopOff[ins.A])}, prev())
		if cond {
			next = int(ins.A)
		}

	case bytecode.Goto:
		put(isa.Uop{Class: isa.Branch, Taken: true,
			Target: f.m.CodeBase + uint64(f.m.UopOff[ins.A])}, 0)
		next = int(ins.A)

	case bytecode.Dup:
		i := f.m.NLocals + f.sp - 1
		p := put(isa.Uop{Class: isa.ALU}, f.prods[i])
		f.push(f.regs[i], f.refs[i], p)

	case bytecode.Pop:
		f.pop()
		put(isa.Uop{Class: isa.ALU}, 0)

	case bytecode.Swap:
		i := f.m.NLocals + f.sp - 1
		j := i - 1
		f.regs[i], f.regs[j] = f.regs[j], f.regs[i]
		f.refs[i], f.refs[j] = f.refs[j], f.refs[i]
		f.prods[i], f.prods[j] = f.prods[j], f.prods[i]
		put(isa.Uop{Class: isa.ALU}, 0)

	case bytecode.GetField:
		r, _, pr := f.pop()
		if r == 0 {
			t.vmError("null pointer dereference (getfield %d)", ins.A)
		}
		idx := h.addrToIdx(r)
		cls := t.vm.prog.Classes[h.objClass(idx)]
		if int(ins.A) >= cls.NumFields {
			t.vmError("field %d out of range for class %s", ins.A, cls.Name)
		}
		v := h.words[idx+headerWords+int(ins.A)]
		isRef := cls.RefMask&(1<<uint(ins.A)) != 0
		put(isa.Uop{Class: isa.ALU}, pr)
		p := put(isa.Uop{Class: isa.Load,
			Addr: r + uint64(headerWords+int(ins.A))*8}, prev())
		f.push(v, isRef, p)

	case bytecode.PutField:
		v, _, pv := f.pop()
		r, _, pr := f.pop()
		if r == 0 {
			t.vmError("null pointer dereference (putfield %d)", ins.A)
		}
		idx := h.addrToIdx(r)
		cls := t.vm.prog.Classes[h.objClass(idx)]
		if int(ins.A) >= cls.NumFields {
			t.vmError("field %d out of range for class %s", ins.A, cls.Name)
		}
		h.words[idx+headerWords+int(ins.A)] = v
		put(isa.Uop{Class: isa.ALU}, pr)
		put(isa.Uop{Class: isa.Store,
			Addr: r + uint64(headerWords+int(ins.A))*8}, maxProd(prev(), pv))

	case bytecode.GetStatic:
		v, fwd := t.sbLoad(ins.A)
		if !fwd {
			v = t.vm.globals[ins.A]
		}
		isRef := t.vm.prog.GlobalRefMask&(1<<uint(ins.A)) != 0
		put(isa.Uop{Class: isa.ALU}, 0)
		p := put(isa.Uop{Class: isa.Load,
			Addr: t.vm.globalsBase + uint64(ins.A)*8}, prev())
		f.push(v, isRef, p)

	case bytecode.PutStatic:
		v, _, pv := f.pop()
		t.sbPut(ins.A, v)
		put(isa.Uop{Class: isa.ALU}, pv)
		put(isa.Uop{Class: isa.Store,
			Addr: t.vm.globalsBase + uint64(ins.A)*8}, prev())

	case bytecode.GetVolatile:
		// A volatile load on TSO is an ordinary load — the trailing
		// Fence is the acquire-ordering cost (JSR-133 cookbook), not a
		// buffer drain.
		v, fwd := t.sbLoad(ins.A)
		if !fwd {
			v = t.vm.globals[ins.A]
		}
		isRef := t.vm.prog.GlobalRefMask&(1<<uint(ins.A)) != 0
		put(isa.Uop{Class: isa.ALU}, 0)
		p := put(isa.Uop{Class: isa.Load,
			Addr: t.vm.globalsBase + uint64(ins.A)*8}, prev())
		put(isa.Uop{Class: isa.Fence}, prev())
		f.push(v, isRef, p)

	case bytecode.PutVolatile:
		v, _, pv := f.pop()
		t.vm.putVolatile(t, ins.A, v)
		put(isa.Uop{Class: isa.ALU}, pv)
		put(isa.Uop{Class: isa.Store,
			Addr: t.vm.globalsBase + uint64(ins.A)*8}, prev())
		put(isa.Uop{Class: isa.Fence}, prev())

	case bytecode.Cas:
		nv, _, pn := f.pop()
		exp, _, pe := f.pop()
		ok := t.vm.cas(t, ins.A, exp, nv)
		addr := t.vm.globalsBase + uint64(ins.A)*8
		put(isa.Uop{Class: isa.ALU}, maxProd(pe, pn))
		put(isa.Uop{Class: isa.Load, Addr: addr}, prev())
		put(isa.Uop{Class: isa.Fence}, prev())
		// The store µop is emitted on failure too (lock cmpxchg writes
		// the old value back), keeping the µop layout uniform.
		p := put(isa.Uop{Class: isa.Store, Addr: addr}, prev())
		var r uint64
		if ok {
			r = 1
			t.casFailStreak = 0
		} else if t.casFailStreak++; t.casFailStreak >= casSpinLimit {
			// Spin-then-block: after casSpinLimit consecutive failures
			// the runtime yields into the kernel before the retry loop
			// continues, so a starved CAS loop costs syscalls rather
			// than monopolizing its context.
			t.casFailStreak = 0
			t.vm.file.Inc(counters.Syscalls)
			f.push(r, false, p)
			f.pc = next
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 4, Class: isa.ALU}, p)
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 5, Class: isa.Syscall}, 0)
			return n + t.emitKernelPath(buf[n:], 8)
		}
		f.push(r, false, p)

	case bytecode.New:
		cls := t.vm.prog.Classes[ins.A]
		idx := t.vm.allocate(t, cls.NumFields, kindObject, ins.A)
		if idx < 0 {
			return n + t.emitGCWaitPath(buf[n:])
		}
		addr := h.idxToAddr(idx)
		put(isa.Uop{Class: isa.ALU}, 0)
		put(isa.Uop{Class: isa.ALU}, prev())
		put(isa.Uop{Class: isa.Store, Addr: addr}, prev())
		p := put(isa.Uop{Class: isa.Store, Addr: addr + 8}, 0)
		f.push(addr, true, p)

	case bytecode.NewArray:
		length := int64(f.peek(0))
		if length < 0 {
			t.vmError("negative array size %d", length)
		}
		var kind int32
		switch ins.A {
		case bytecode.KindInt:
			kind = kindIntArray
		case bytecode.KindFloat:
			kind = kindFloatArray
		default:
			kind = kindRefArray
		}
		idx := t.vm.allocate(t, int(length), kind, int32(length))
		if idx < 0 {
			return n + t.emitGCWaitPath(buf[n:])
		}
		_, _, pl := f.pop()
		addr := h.idxToAddr(idx)
		put(isa.Uop{Class: isa.ALU}, pl)
		put(isa.Uop{Class: isa.ALU}, prev())
		put(isa.Uop{Class: isa.Store, Addr: addr}, prev())
		p := put(isa.Uop{Class: isa.Store, Addr: addr + 8}, 0)
		f.push(addr, true, p)

	case bytecode.ALoad:
		i, _, pi := f.pop()
		r, _, pr := f.pop()
		v, addr, isRef := t.arrayAccess(r, int64(i), "aload")
		put(isa.Uop{Class: isa.ALU}, maxProd(pi, pr))
		p := put(isa.Uop{Class: isa.Load, Addr: addr}, prev())
		f.push(v, isRef, p)

	case bytecode.AStore:
		v, _, pv := f.pop()
		i, _, pi := f.pop()
		r, _, pr := f.pop()
		_, addr, _ := t.arrayAccess(r, int64(i), "astore")
		h.words[h.addrToIdx(addr)] = v
		put(isa.Uop{Class: isa.ALU}, maxProd(pi, pr))
		put(isa.Uop{Class: isa.Store, Addr: addr}, maxProd(prev(), pv))

	case bytecode.ArrayLen:
		r, _, pr := f.pop()
		if r == 0 {
			t.vmError("null pointer dereference (arraylen)")
		}
		idx := h.addrToIdx(r)
		p := put(isa.Uop{Class: isa.Load, Addr: r + 8}, pr)
		f.push(uint64(int64(h.arrayLen(idx))), false, p)

	case bytecode.Call, bytecode.CallVirt:
		callee := t.vm.prog.Methods[ins.A]
		args, refs, pmax := t.popArgs(f, callee.NArgs)
		spill := t.stackBase + uint64(t.depth)*32
		put(isa.Uop{Class: isa.Store, Addr: spill}, pmax)
		put(isa.Uop{Class: isa.ALU}, 0)
		put(isa.Uop{Class: isa.Call, Target: callee.CodeBase,
			Indirect: ins.Op == bytecode.CallVirt}, 0)
		f.pc = next
		retPC := f.m.CodeBase + uint64(f.m.UopOff[f.pc])
		t.pushFrame(callee, args, refs)
		t.frames[t.depth-1].ret = retPC
		return n

	case bytecode.Ret, bytecode.RetVal:
		var v uint64
		var isRef bool
		if ins.Op == bytecode.RetVal {
			v, isRef, _ = f.pop()
		}
		spill := t.stackBase + uint64(t.depth-1)*32
		put(isa.Uop{Class: isa.Load, Addr: spill}, 0)
		put(isa.Uop{Class: isa.Ret, Target: f.ret, Indirect: true}, prev())
		t.depth--
		if t.depth == 0 {
			return n // thread exits on the next Fill iteration
		}
		if ins.Op == bytecode.RetVal {
			caller := &t.frames[t.depth-1]
			caller.push(v, isRef, t.uopIdx)
		}
		return n

	case bytecode.MonEnter:
		r := f.peek(0)
		if r == 0 {
			t.vmError("null pointer dereference (monenter)")
		}
		if !t.vm.monEnter(t, r) {
			// Contended: futex path into the kernel; the instruction
			// re-executes when the monitor is handed to this thread.
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase, Class: isa.Load, Addr: r}, 0)
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 1, Class: isa.Syscall}, 0)
			return n + t.emitKernelPath(buf[n:], 12)
		}
		_, _, pr := f.pop()
		put(isa.Uop{Class: isa.Load, Addr: r}, pr)
		put(isa.Uop{Class: isa.Fence}, prev())
		put(isa.Uop{Class: isa.Store, Addr: r}, prev())

	case bytecode.MonExit:
		r, _, pr := f.pop()
		if r == 0 {
			t.vmError("null pointer dereference (monexit)")
		}
		t.vm.monExit(t, r)
		put(isa.Uop{Class: isa.Load, Addr: r}, pr)
		put(isa.Uop{Class: isa.Fence}, prev())
		put(isa.Uop{Class: isa.Store, Addr: r}, prev())

	case bytecode.ThreadStart:
		callee := t.vm.prog.Methods[ins.A]
		args, _, pmax := t.popArgs(f, callee.NArgs)
		id := t.vm.threadStart(t, callee, args)
		put(isa.Uop{Class: isa.ALU}, pmax)
		put(isa.Uop{Class: isa.Syscall}, 0)
		k := t.emitKernelPath(buf[n:], 20)
		n += k
		f.push(uint64(id), false, t.uopIdx)

	case bytecode.ThreadJoin:
		id := int(int64(f.peek(0)))
		if !t.vm.threadJoin(t, id) {
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 2, Class: isa.ALU}, 0)
			t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 3, Class: isa.Syscall}, 0)
			return n + t.emitKernelPath(buf[n:], 8)
		}
		f.pop()
		put(isa.Uop{Class: isa.ALU}, 0)
		put(isa.Uop{Class: isa.Syscall}, 0)

	case bytecode.Halt:
		put(isa.Uop{Class: isa.Nop}, 0)
		t.depth = 0
		return n

	default:
		t.vmError("unimplemented opcode %v", ins.Op)
	}

	f.pc = next
	return n
}

// popArgs pops nargs values (last argument on top) returning them in
// declaration order plus the max producer index.
func (t *Thread) popArgs(f *frame, nargs int) ([]uint64, []bool, uint64) {
	args := make([]uint64, nargs)
	refs := make([]bool, nargs)
	var pmax uint64
	for i := nargs - 1; i >= 0; i-- {
		v, r, p := f.pop()
		args[i], refs[i] = v, r
		pmax = maxProd(pmax, p)
	}
	return args, refs, pmax
}

// arrayAccess validates r[i] and returns the element value, its simulated
// address, and whether it is a reference.
func (t *Thread) arrayAccess(r uint64, i int64, what string) (v, addr uint64, isRef bool) {
	if r == 0 {
		t.vmError("null pointer dereference (%s)", what)
	}
	h := t.vm.heap
	idx := h.addrToIdx(r)
	kind := h.objKind(idx)
	if kind != kindIntArray && kind != kindFloatArray && kind != kindRefArray {
		t.vmError("%s on non-array object", what)
	}
	length := int64(h.arrayLen(idx))
	if i < 0 || i >= length {
		t.vmError("array index %d out of bounds [0,%d) (%s)", i, length, what)
	}
	w := idx + headerWords + int(i)
	return h.words[w], h.idxToAddr(w), kind == kindRefArray
}

// emitGCWaitPath emits the allocation slow path (runtime stub + kernel
// entry) after the thread has been parked waiting for a collection.
func (t *Thread) emitGCWaitPath(buf []isa.Uop) int {
	n := 0
	t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 8, Class: isa.ALU}, 0)
	t.emit(buf, &n, isa.Uop{PC: runtimeCodeBase + 9, Class: isa.Syscall}, 0)
	return n + t.emitKernelPath(buf[n:], 10)
}

// emitKernelPath emits count kernel-mode µops (the in-kernel half of a
// syscall: futex, clone and sched-wakeup paths).
func (t *Thread) emitKernelPath(buf []isa.Uop, count int) int {
	base := uint64(simos.KernelCodeBase) + 2048
	data := uint64(0xF800_0000) + uint64(t.id)<<12
	n := 0
	for n < count {
		pc := base + uint64(n)
		switch n % 4 {
		case 0:
			t.emit(buf, &n, isa.Uop{PC: pc, Class: isa.Load, Addr: data + uint64(n)*8, Kernel: true}, 0)
		case 2:
			t.emit(buf, &n, isa.Uop{PC: pc, Class: isa.Store, Addr: data + 512 + uint64(n)*8, Kernel: true}, t.uopIdx)
		default:
			t.emit(buf, &n, isa.Uop{PC: pc, Class: isa.ALU, Kernel: true}, t.uopIdx)
		}
	}
	return n
}

package jvm

import (
	"strings"
	"testing"

	"javasmt/internal/bytecode"
	"javasmt/internal/core"
	"javasmt/internal/counters"
	"javasmt/internal/isa"
	"javasmt/internal/simos"
)

// runProgram executes prog on a fresh machine and returns the VM and the
// CPU for counter inspection.
func runProgram(t *testing.T, prog *bytecode.Program, ht bool, cfg Config) (*VM, *core.CPU) {
	t.Helper()
	cpu := core.New(core.DefaultConfig(ht))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, cfg)
	vm.Start()
	if _, err := cpu.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return vm, cpu
}

// --- small programs ---

// sumProgram: global[0] = sum of 0..n-1.
func sumProgram(n int32) *bytecode.Program {
	pb := bytecode.NewProgram("sum")
	pb.Globals(1, 0)
	b := bytecode.NewMethod("main", 0, 2) // 0=i, 1=s
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(0).Const(0).Store(1)
	b.Bind(loop)
	b.Load(0).Const(n)
	b.Br(bytecode.IfGe, done)
	b.Load(1).Load(0).Op(bytecode.Iadd).Store(1)
	b.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(1).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(0)
}

func TestSumLoop(t *testing.T) {
	vm, cpu := runProgram(t, sumProgram(1000), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 499500 {
		t.Fatalf("sum = %d, want 499500", got)
	}
	f := cpu.Counters()
	if f.Get(counters.Instructions) == 0 || f.Get(counters.Branches) < 1000 {
		t.Fatal("execution should have produced µops and branches")
	}
}

func TestRecursionFib(t *testing.T) {
	pb := bytecode.NewProgram("fib")
	pb.Globals(1, 0)
	fib := bytecode.NewMethod("fib", 1, 1)
	rec := fib.NewLabel()
	fib.Load(0).Const(2)
	fib.Br(bytecode.IfGe, rec)
	fib.Load(0).Op(bytecode.RetVal)
	fib.Bind(rec)
	fib.Load(0).Const(1).Op(bytecode.Isub).Op(bytecode.Call, 0)
	fib.Load(0).Const(2).Op(bytecode.Isub).Op(bytecode.Call, 0)
	fib.Op(bytecode.Iadd).Op(bytecode.RetVal)
	pb.Add(fib.Finish())
	main := bytecode.NewMethod("main", 0, 0)
	main.Const(15).Op(bytecode.Call, 0).Op(bytecode.PutStatic, 0).Op(bytecode.Ret)
	pb.Entry(pb.Add(main.Finish()))
	vm, _ := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestFloatMath(t *testing.T) {
	pb := bytecode.NewProgram("float")
	pb.Globals(1, 0)
	b := bytecode.NewMethod("main", 0, 0)
	// sqrt(2.0)*sqrt(2.0) + 1.0/4.0
	b.FConst(2.0).Op(bytecode.Fmath, bytecode.MathSqrt)
	b.FConst(2.0).Op(bytecode.Fmath, bytecode.MathSqrt)
	b.Op(bytecode.Fmul)
	b.FConst(1.0).FConst(4.0).Op(bytecode.Fdiv)
	b.Op(bytecode.Fadd)
	b.Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	vm, _ := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	got := vm.GlobalFloat(0)
	if got < 2.2499 || got > 2.2501 {
		t.Fatalf("result = %v, want 2.25", got)
	}
}

// listProgram builds a linked list of n nodes, then sums the values by
// pointer chasing: exercises New, PutField, GetField, IfNull.
func listProgram(n int32) *bytecode.Program {
	pb := bytecode.NewProgram("list")
	node := pb.Class("Node", 2, 0b10) // field 0 = value, field 1 = next (ref)
	pb.Globals(1, 0)
	b := bytecode.NewMethod("main", 0, 3) // 0=i, 1=head(ref), 2=sum
	build, sum, done := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Const(0).Store(0)
	b.Const(0).Store(1)
	b.Bind(build)
	b.Load(0).Const(n)
	b.Br(bytecode.IfGe, sum)
	// node = new Node; node.value = i; node.next = head; head = node
	b.Op(bytecode.New, node)
	b.Op(bytecode.Dup).Load(0).Op(bytecode.PutField, 0)
	b.Op(bytecode.Dup).Load(1).Op(bytecode.PutField, 1)
	b.Store(1)
	b.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	b.Br(bytecode.Goto, build)
	b.Bind(sum)
	b.Const(0).Store(2)
	loop := b.NewLabel()
	b.Bind(loop)
	b.Load(1)
	b.Br(bytecode.IfNull, done)
	b.Load(2).Load(1).Op(bytecode.GetField, 0).Op(bytecode.Iadd).Store(2)
	b.Load(1).Op(bytecode.GetField, 1).Store(1)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(2).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(0)
}

func TestLinkedListPointerChasing(t *testing.T) {
	vm, _ := runProgram(t, listProgram(500), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 124750 {
		t.Fatalf("list sum = %d, want 124750", got)
	}
	// Local slot 1 must have been tracked as a reference for GC.
	objs, _ := vm.AllocStats()
	if objs != 500 {
		t.Fatalf("allocated %d objects, want 500", objs)
	}
}

func TestArrays(t *testing.T) {
	pb := bytecode.NewProgram("arrays")
	pb.Globals(2, 0)
	b := bytecode.NewMethod("main", 0, 2) // 0=arr, 1=i
	fill, sum, done := b.NewLabel(), b.NewLabel(), b.NewLabel()
	b.Const(100).Op(bytecode.NewArray, bytecode.KindInt).Store(0)
	b.Const(0).Store(1)
	b.Bind(fill)
	b.Load(1).Const(100)
	b.Br(bytecode.IfGe, sum)
	b.Load(0).Load(1).Load(1).Load(1).Op(bytecode.Imul).Op(bytecode.AStore)
	b.Load(1).Const(1).Op(bytecode.Iadd).Store(1)
	b.Br(bytecode.Goto, fill)
	b.Bind(sum)
	// global0 = arr[99], global1 = arr.length
	b.Load(0).Const(99).Op(bytecode.ALoad).Op(bytecode.PutStatic, 0)
	b.Load(0).Op(bytecode.ArrayLen).Op(bytecode.PutStatic, 1)
	b.Br(bytecode.Goto, done)
	b.Bind(done)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	vm, _ := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 99*99 {
		t.Fatalf("arr[99] = %d, want %d", got, 99*99)
	}
	if got := int64(vm.Global(1)); got != 100 {
		t.Fatalf("len = %d, want 100", got)
	}
}

// gcChurnProgram allocates n garbage arrays of the given size while
// keeping one live list; forces collections on a small heap.
func gcChurnProgram(n, size int32) *bytecode.Program {
	pb := bytecode.NewProgram("gcchurn")
	pb.Globals(1, 0)
	b := bytecode.NewMethod("main", 0, 3) // 0=i, 1=tmp, 2=sum
	loop, done := b.NewLabel(), b.NewLabel()
	b.Const(0).Store(0).Const(0).Store(2)
	b.Bind(loop)
	b.Load(0).Const(n)
	b.Br(bytecode.IfGe, done)
	b.Const(size).Op(bytecode.NewArray, bytecode.KindInt).Store(1)
	// tmp[0] = i; sum += tmp[0]
	b.Load(1).Const(0).Load(0).Op(bytecode.AStore)
	b.Load(2).Load(1).Const(0).Op(bytecode.ALoad).Op(bytecode.Iadd).Store(2)
	b.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	b.Br(bytecode.Goto, loop)
	b.Bind(done)
	b.Load(2).Op(bytecode.PutStatic, 0)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	return pb.MustLink(0)
}

func TestGCReclaimsGarbage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapBytes = 1 << 20 // 1 MB heap
	// 2000 arrays x 1024 words = ~16 MB churned through a 1 MB heap.
	vm, cpu := runProgram(t, gcChurnProgram(2000, 1024), false, cfg)
	if got, want := int64(vm.Global(0)), int64(2000)*1999/2; got != want {
		t.Fatalf("checksum = %d, want %d (GC must not corrupt live data)", got, want)
	}
	if vm.GCCount() == 0 {
		t.Fatal("the churn must have forced at least one collection")
	}
	if cpu.Counters().Get(counters.GCCycles) == 0 {
		t.Fatal("collector work should be attributed to the GCCycles counter")
	}
}

func TestGCKeepsReachableGraphOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapBytes = 1 << 20
	// The list program's live list survives arbitrary GC pressure added
	// by linking it to churn: reuse the linked list with a small heap so
	// collections happen mid-build.
	vm, _ := runProgram(t, listProgram(3000), false, cfg)
	if got := int64(vm.Global(0)); got != int64(3000)*2999/2 {
		t.Fatalf("list sum after GC pressure = %d, want %d", got, int64(3000)*2999/2)
	}
}

// monitorProgram: nThreads workers each increment a shared counter field
// m times under a monitor. Exact final count proves mutual exclusion.
func monitorProgram(nThreads, m int32) *bytecode.Program {
	pb := bytecode.NewProgram("monitor")
	counter := pb.Class("Counter", 1, 0)
	pb.Globals(2, 0b1) // global0 = counter ref, global1 = result
	worker := bytecode.NewMethod("worker", 0, 1)
	loop, done := worker.NewLabel(), worker.NewLabel()
	worker.Const(0).Store(0)
	worker.Bind(loop)
	worker.Load(0).Const(m)
	worker.Br(bytecode.IfGe, done)
	worker.Op(bytecode.GetStatic, 0).Op(bytecode.MonEnter)
	worker.Op(bytecode.GetStatic, 0).Op(bytecode.Dup).Op(bytecode.GetField, 0)
	worker.Const(1).Op(bytecode.Iadd).Op(bytecode.PutField, 0)
	worker.Op(bytecode.GetStatic, 0).Op(bytecode.MonExit)
	worker.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	worker.Br(bytecode.Goto, loop)
	worker.Bind(done)
	worker.Op(bytecode.Ret)
	wIdx := pb.Add(worker.Finish())

	main := bytecode.NewMethod("main", 0, 2) // 0=i, 1=tid base store
	main.Op(bytecode.New, counter).Op(bytecode.PutStatic, 0)
	// spawn workers, keeping ids in an int array
	main.Const(nThreads).Op(bytecode.NewArray, bytecode.KindInt).Store(1)
	spawn, joined := main.NewLabel(), main.NewLabel()
	main.Const(0).Store(0)
	main.Bind(spawn)
	main.Load(0).Const(nThreads)
	main.Br(bytecode.IfGe, joined)
	main.Load(1).Load(0).Op(bytecode.ThreadStart, wIdx).Op(bytecode.AStore)
	main.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	main.Br(bytecode.Goto, spawn)
	main.Bind(joined)
	join, fin := main.NewLabel(), main.NewLabel()
	main.Const(0).Store(0)
	main.Bind(join)
	main.Load(0).Const(nThreads)
	main.Br(bytecode.IfGe, fin)
	main.Load(1).Load(0).Op(bytecode.ALoad).Op(bytecode.ThreadJoin)
	main.Load(0).Const(1).Op(bytecode.Iadd).Store(0)
	main.Br(bytecode.Goto, join)
	main.Bind(fin)
	main.Op(bytecode.GetStatic, 0).Op(bytecode.GetField, 0).Op(bytecode.PutStatic, 1)
	main.Op(bytecode.Ret)
	mIdx := pb.Add(main.Finish())
	pb.Entry(mIdx)
	return pb.MustLink(0)
}

func TestMonitorsMutualExclusion(t *testing.T) {
	const nThreads, m = 4, 500
	vm, cpu := runProgram(t, monitorProgram(nThreads, m), true, DefaultConfig())
	if got := int64(vm.Global(1)); got != nThreads*m {
		t.Fatalf("counter = %d, want %d (lost updates => broken monitors)", got, nThreads*m)
	}
	f := cpu.Counters()
	if f.Get(counters.MonitorBlocks) == 0 {
		t.Fatal("4 threads hammering one lock must block sometimes")
	}
	if f.Get(counters.CyclesDT) == 0 {
		t.Fatal("threads should have overlapped on the two contexts")
	}
}

func TestThreadJoinAlreadyExited(t *testing.T) {
	pb := bytecode.NewProgram("join")
	pb.Globals(1, 0)
	w := bytecode.NewMethod("w", 0, 0)
	w.Const(7).Op(bytecode.PutStatic, 0).Op(bytecode.Ret)
	wi := pb.Add(w.Finish())
	main := bytecode.NewMethod("main", 0, 1)
	main.Op(bytecode.ThreadStart, wi).Store(0)
	// Busy-wait a little so the worker can finish first sometimes, then join.
	for i := 0; i < 50; i++ {
		main.Const(int32(i)).Op(bytecode.Pop)
	}
	main.Load(0).Op(bytecode.ThreadJoin)
	main.Op(bytecode.Ret)
	pb.Entry(pb.Add(main.Finish()))
	vm, _ := runProgram(t, pb.MustLink(0), false, DefaultConfig())
	if got := int64(vm.Global(0)); got != 7 {
		t.Fatalf("global = %d, want 7", got)
	}
}

func expectVMError(t *testing.T, prog *bytecode.Program, fragment string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected VM error containing %q", fragment)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, fragment) {
			t.Fatalf("panic %v does not contain %q", r, fragment)
		}
	}()
	cpu := core.New(core.DefaultConfig(false))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, DefaultConfig())
	vm.Start()
	_, _ = cpu.Run(0)
}

func TestNullDereferencePanics(t *testing.T) {
	pb := bytecode.NewProgram("null")
	pb.Globals(1, 0b1)
	b := bytecode.NewMethod("main", 0, 0)
	b.Op(bytecode.GetStatic, 0).Op(bytecode.GetField, 0).Op(bytecode.Pop).Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	expectVMError(t, pb.MustLink(0), "null pointer")
}

func TestBoundsCheckPanics(t *testing.T) {
	pb := bytecode.NewProgram("bounds")
	b := bytecode.NewMethod("main", 0, 1)
	b.Const(4).Op(bytecode.NewArray, bytecode.KindInt).Store(0)
	b.Load(0).Const(9).Op(bytecode.ALoad).Op(bytecode.Pop).Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	expectVMError(t, pb.MustLink(0), "out of bounds")
}

func TestDivByZeroPanics(t *testing.T) {
	pb := bytecode.NewProgram("div0")
	b := bytecode.NewMethod("main", 0, 0)
	b.Const(5).Const(0).Op(bytecode.Idiv).Op(bytecode.Pop).Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	expectVMError(t, pb.MustLink(0), "division by zero")
}

func TestOutOfMemoryPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HeapBytes = 64 << 10
	pb := bytecode.NewProgram("oom")
	pb.Globals(1, 0b1)
	b := bytecode.NewMethod("main", 0, 1)
	// Build an ever-growing live list until the heap bursts.
	node := pb.Class("Node", 2, 0b10)
	loop := b.NewLabel()
	b.Const(0).Op(bytecode.PutStatic, 0)
	b.Bind(loop)
	b.Op(bytecode.New, node).Store(0)
	b.Load(0).Op(bytecode.GetStatic, 0).Op(bytecode.PutField, 1)
	b.Load(0).Op(bytecode.PutStatic, 0)
	b.Br(bytecode.Goto, loop)
	pb.Entry(pb.Add(b.Finish()))
	prog := pb.MustLink(0)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected OutOfMemoryError")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "OutOfMemoryError") {
			t.Fatalf("panic %v is not an OOM", r)
		}
	}()
	cpu := core.New(core.DefaultConfig(false))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, cfg)
	vm.Start()
	_, _ = cpu.Run(0)
}

func TestMonExitNotOwnerPanics(t *testing.T) {
	// Statically balanced (one enter, one exit) so the verifier accepts
	// it, but the exit releases a different object's monitor: the
	// runtime still owns the "does not own" check.
	pb := bytecode.NewProgram("badmon")
	cls := pb.Class("O", 1, 0)
	b := bytecode.NewMethod("main", 0, 2)
	b.Op(bytecode.New, cls).Store(0)
	b.Op(bytecode.New, cls).Store(1)
	b.Load(0).Op(bytecode.MonEnter)
	b.Load(1).Op(bytecode.MonExit)
	b.Op(bytecode.Ret)
	pb.Entry(pb.Add(b.Finish()))
	expectVMError(t, pb.MustLink(0), "does not own")
}

func TestUopPCsStayWithinMethodRanges(t *testing.T) {
	prog := sumProgram(50)
	cpu := core.New(core.DefaultConfig(false))
	k := simos.NewKernel(cpu, simos.DefaultParams())
	vm := New(prog, k, DefaultConfig())
	th := vm.Start()

	m := prog.Methods[prog.Entry]
	raw := make([]isa.Uop, 4096)
	n, _ := th.Fill(raw)
	for i := 0; i < n; i++ {
		pc := raw[i].PC
		if pc >= m.CodeBase && pc < m.CodeBase+uint64(m.UopLen) {
			continue
		}
		if pc >= runtimeCodeBase {
			continue // runtime/kernel slow paths are fine
		}
		t.Fatalf("µop %d PC %#x outside method range [%#x,%#x)", i, pc, m.CodeBase, m.CodeBase+uint64(m.UopLen))
	}
	if n == 0 {
		t.Fatal("Fill produced nothing")
	}
}

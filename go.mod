module javasmt

go 1.22

// Command sweep varies the Java thread count of the multithreaded
// benchmarks on the HT processor (Figure 12) and reports IPC and L1D
// behaviour at each point. Grid points are independent simulations and
// fan out across -j worker threads (default: all CPUs); output order is
// fixed regardless of -j.
//
//	sweep
//	sweep -bench MolDyn -threads 1,2,4,8,16 -scale small -j 4
//	sweep -trace t.json -metrics m.json
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/cli"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
	"javasmt/internal/sched"
)

func main() {
	var (
		name    = flag.String("bench", "", "single benchmark (default: all multithreaded)")
		threads = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
	)
	cf := cli.Register("sweep", flag.CommandLine, cli.Options{Jobs: true})
	flag.Parse()
	c := cf.MustFinish()

	var counts []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			c.Usagef("bad thread count %q", part)
		}
		counts = append(counts, n)
	}

	targets := bench.Multithreaded()
	if *name != "" {
		b, ok := bench.ByName(*name)
		if !ok || !b.Multithreaded {
			c.Usagef("%q is not a multithreaded benchmark", *name)
		}
		targets = []*bench.Benchmark{b}
	}

	type point struct {
		b       *bench.Benchmark
		threads int
	}
	var grid []point
	for _, b := range targets {
		for _, t := range counts {
			grid = append(grid, point{b, t})
		}
	}
	label := func(i int) string { return fmt.Sprintf("%s t=%d", grid[i].b.Name, grid[i].threads) }
	results, err := sched.MapObserved(len(grid), c.Jobs, c.Obs, label, func(i int) (*harness.Result, error) {
		opts := harness.Options{HT: true, Threads: grid[i].threads, Scale: c.Scale, Verify: true}
		if c.Obs.Enabled() {
			opts.Obs, opts.ObsLabel = c.Obs, label(i)
		}
		return harness.Run(grid[i].b, opts)
	})
	if err != nil {
		c.Fatal(err)
	}
	if err := c.WriteObs(); err != nil {
		c.Fatal(err)
	}

	fmt.Printf("%-12s %8s %8s %10s %10s %8s\n", "benchmark", "threads", "IPC", "L1D/1k", "OS %", "DT %")
	for i, res := range results {
		f := &res.Counters
		fmt.Printf("%-12s %8d %8.3f %10.2f %9.1f%% %7.1f%%\n",
			grid[i].b.Name, grid[i].threads, f.IPC(), f.PerKiloInstr(counters.L1DMisses),
			f.OSCyclePercent(), f.DTModePercent())
	}
}

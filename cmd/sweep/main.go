// Command sweep varies the Java thread count of the multithreaded
// benchmarks on the HT processor (Figure 12) and reports IPC and L1D
// behaviour at each point. Grid points are independent simulations and
// fan out across -j worker threads (default: all CPUs); output order is
// fixed regardless of -j.
//
//	sweep
//	sweep -bench MolDyn -threads 1,2,4,8,16 -scale small -j 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"javasmt/internal/bench"
	"javasmt/internal/check"
	"javasmt/internal/counters"
	"javasmt/internal/harness"
	"javasmt/internal/sched"
)

func main() {
	var (
		name    = flag.String("bench", "", "single benchmark (default: all multithreaded)")
		threads = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
		small   = flag.Bool("small", false, "use the small scale instead of tiny")
		jobs    = flag.Int("j", sched.DefaultWorkers(), "concurrent experiments (1 = serial)")
		checks  = flag.Bool("checks", check.Enabled, "enable runtime invariant probes (needs a -tags checks build)")
	)
	flag.Parse()
	if err := check.SetOn(*checks); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}

	scale := bench.Tiny
	if *small {
		scale = bench.Small
	}
	var counts []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "sweep: bad thread count %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	targets := bench.Multithreaded()
	if *name != "" {
		b, ok := bench.ByName(*name)
		if !ok || !b.Multithreaded {
			fmt.Fprintf(os.Stderr, "sweep: %q is not a multithreaded benchmark\n", *name)
			os.Exit(2)
		}
		targets = []*bench.Benchmark{b}
	}

	type point struct {
		b       *bench.Benchmark
		threads int
	}
	var grid []point
	for _, b := range targets {
		for _, t := range counts {
			grid = append(grid, point{b, t})
		}
	}
	results, err := sched.Map(len(grid), *jobs, func(i int) (*harness.Result, error) {
		return harness.Run(grid[i].b, harness.Options{HT: true, Threads: grid[i].threads, Scale: scale, Verify: true})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	fmt.Printf("%-12s %8s %8s %10s %10s %8s\n", "benchmark", "threads", "IPC", "L1D/1k", "OS %", "DT %")
	for i, res := range results {
		f := &res.Counters
		fmt.Printf("%-12s %8d %8.3f %10.2f %9.1f%% %7.1f%%\n",
			grid[i].b.Name, grid[i].threads, f.IPC(), f.PerKiloInstr(counters.L1DMisses),
			f.OSCyclePercent(), f.DTModePercent())
	}
}
